# Empty compiler generated dependencies file for kvs_demo.
# This may be replaced when dependencies are built.
