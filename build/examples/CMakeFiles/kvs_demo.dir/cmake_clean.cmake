file(REMOVE_RECURSE
  "CMakeFiles/kvs_demo.dir/kvs_demo.cpp.o"
  "CMakeFiles/kvs_demo.dir/kvs_demo.cpp.o.d"
  "kvs_demo"
  "kvs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
