# Empty dependencies file for test_darray.
# This may be replaced when dependencies are built.
