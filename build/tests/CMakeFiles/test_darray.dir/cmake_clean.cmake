file(REMOVE_RECURSE
  "CMakeFiles/test_darray.dir/core/darray_basic_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_basic_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_bulk_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_bulk_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_coherence_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_coherence_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_lock_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_lock_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_multirt_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_multirt_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_operate_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_operate_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_pin_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_pin_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_property_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_property_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_seqcst_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_seqcst_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_stats_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_stats_test.cpp.o.d"
  "CMakeFiles/test_darray.dir/core/darray_stress_test.cpp.o"
  "CMakeFiles/test_darray.dir/core/darray_stress_test.cpp.o.d"
  "test_darray"
  "test_darray.pdb"
  "test_darray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_darray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
