file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/csr_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/csr_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/engines_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/engines_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/gemini_ctx_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/gemini_ctx_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/rmat_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/rmat_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/traversal_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/traversal_test.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
