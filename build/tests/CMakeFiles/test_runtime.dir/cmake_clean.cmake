file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/array_meta_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/array_meta_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/cache_region_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/cache_region_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/combine_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/combine_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/dentry_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/dentry_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/lock_table_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/lock_table_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/protocol_states_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/protocol_states_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/stats_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/stats_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
