
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/array_meta_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/array_meta_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/array_meta_test.cpp.o.d"
  "/root/repo/tests/runtime/cache_region_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/cache_region_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/cache_region_test.cpp.o.d"
  "/root/repo/tests/runtime/combine_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/combine_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/combine_test.cpp.o.d"
  "/root/repo/tests/runtime/dentry_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/dentry_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/dentry_test.cpp.o.d"
  "/root/repo/tests/runtime/lock_table_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/lock_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/lock_table_test.cpp.o.d"
  "/root/repo/tests/runtime/protocol_states_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/protocol_states_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/protocol_states_test.cpp.o.d"
  "/root/repo/tests/runtime/stats_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/darray_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darray_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/darray_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/darray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
