file(REMOVE_RECURSE
  "CMakeFiles/test_rdma.dir/rdma/completion_queue_test.cpp.o"
  "CMakeFiles/test_rdma.dir/rdma/completion_queue_test.cpp.o.d"
  "CMakeFiles/test_rdma.dir/rdma/device_test.cpp.o"
  "CMakeFiles/test_rdma.dir/rdma/device_test.cpp.o.d"
  "CMakeFiles/test_rdma.dir/rdma/fabric_test.cpp.o"
  "CMakeFiles/test_rdma.dir/rdma/fabric_test.cpp.o.d"
  "test_rdma"
  "test_rdma.pdb"
  "test_rdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
