
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/barrier_test.cpp" "tests/CMakeFiles/test_common.dir/common/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/barrier_test.cpp.o.d"
  "/root/repo/tests/common/histogram_test.cpp" "tests/CMakeFiles/test_common.dir/common/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/histogram_test.cpp.o.d"
  "/root/repo/tests/common/node_mask_test.cpp" "tests/CMakeFiles/test_common.dir/common/node_mask_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/node_mask_test.cpp.o.d"
  "/root/repo/tests/common/queue_test.cpp" "tests/CMakeFiles/test_common.dir/common/queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/queue_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "/root/repo/tests/common/spsc_ring_test.cpp" "tests/CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o.d"
  "/root/repo/tests/common/wait_test.cpp" "tests/CMakeFiles/test_common.dir/common/wait_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/wait_test.cpp.o.d"
  "/root/repo/tests/common/zipf_test.cpp" "tests/CMakeFiles/test_common.dir/common/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/darray_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darray_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/darray_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/darray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
