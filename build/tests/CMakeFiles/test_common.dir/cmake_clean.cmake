file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/barrier_test.cpp.o"
  "CMakeFiles/test_common.dir/common/barrier_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/histogram_test.cpp.o"
  "CMakeFiles/test_common.dir/common/histogram_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/node_mask_test.cpp.o"
  "CMakeFiles/test_common.dir/common/node_mask_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/queue_test.cpp.o"
  "CMakeFiles/test_common.dir/common/queue_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o"
  "CMakeFiles/test_common.dir/common/spsc_ring_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/wait_test.cpp.o"
  "CMakeFiles/test_common.dir/common/wait_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/zipf_test.cpp.o"
  "CMakeFiles/test_common.dir/common/zipf_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
