# Empty dependencies file for fig13_inter_node_scaling.
# This may be replaced when dependencies are built.
