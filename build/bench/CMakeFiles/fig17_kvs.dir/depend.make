# Empty dependencies file for fig17_kvs.
# This may be replaced when dependencies are built.
