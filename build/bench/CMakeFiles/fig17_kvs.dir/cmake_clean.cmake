file(REMOVE_RECURSE
  "CMakeFiles/fig17_kvs.dir/fig17_kvs.cpp.o"
  "CMakeFiles/fig17_kvs.dir/fig17_kvs.cpp.o.d"
  "fig17_kvs"
  "fig17_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
