
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_fastpath.cpp" "bench/CMakeFiles/micro_fastpath.dir/micro_fastpath.cpp.o" "gcc" "bench/CMakeFiles/micro_fastpath.dir/micro_fastpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/darray_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kvs/CMakeFiles/darray_kvs.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/darray_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darray_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/darray_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/darray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
