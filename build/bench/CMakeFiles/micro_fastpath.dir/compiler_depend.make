# Empty compiler generated dependencies file for micro_fastpath.
# This may be replaced when dependencies are built.
