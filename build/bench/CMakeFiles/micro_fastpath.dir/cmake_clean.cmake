file(REMOVE_RECURSE
  "CMakeFiles/micro_fastpath.dir/micro_fastpath.cpp.o"
  "CMakeFiles/micro_fastpath.dir/micro_fastpath.cpp.o.d"
  "micro_fastpath"
  "micro_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
