file(REMOVE_RECURSE
  "CMakeFiles/fig16_graph.dir/fig16_graph.cpp.o"
  "CMakeFiles/fig16_graph.dir/fig16_graph.cpp.o.d"
  "fig16_graph"
  "fig16_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
