# Empty compiler generated dependencies file for fig16_graph.
# This may be replaced when dependencies are built.
