# Empty dependencies file for fig01_seq_latency.
# This may be replaced when dependencies are built.
