file(REMOVE_RECURSE
  "CMakeFiles/fig18_random_latency.dir/fig18_random_latency.cpp.o"
  "CMakeFiles/fig18_random_latency.dir/fig18_random_latency.cpp.o.d"
  "fig18_random_latency"
  "fig18_random_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_random_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
