# Empty dependencies file for fig18_random_latency.
# This may be replaced when dependencies are built.
