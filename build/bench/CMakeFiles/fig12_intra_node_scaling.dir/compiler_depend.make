# Empty compiler generated dependencies file for fig12_intra_node_scaling.
# This may be replaced when dependencies are built.
