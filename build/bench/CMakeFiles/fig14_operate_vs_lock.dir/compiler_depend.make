# Empty compiler generated dependencies file for fig14_operate_vs_lock.
# This may be replaced when dependencies are built.
