file(REMOVE_RECURSE
  "CMakeFiles/fig14_operate_vs_lock.dir/fig14_operate_vs_lock.cpp.o"
  "CMakeFiles/fig14_operate_vs_lock.dir/fig14_operate_vs_lock.cpp.o.d"
  "fig14_operate_vs_lock"
  "fig14_operate_vs_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_operate_vs_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
