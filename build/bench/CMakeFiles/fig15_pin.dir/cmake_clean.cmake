file(REMOVE_RECURSE
  "CMakeFiles/fig15_pin.dir/fig15_pin.cpp.o"
  "CMakeFiles/fig15_pin.dir/fig15_pin.cpp.o.d"
  "fig15_pin"
  "fig15_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
