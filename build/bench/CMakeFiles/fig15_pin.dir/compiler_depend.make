# Empty compiler generated dependencies file for fig15_pin.
# This may be replaced when dependencies are built.
