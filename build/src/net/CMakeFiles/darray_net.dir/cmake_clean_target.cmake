file(REMOVE_RECURSE
  "libdarray_net.a"
)
