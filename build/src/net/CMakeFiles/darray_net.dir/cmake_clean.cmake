file(REMOVE_RECURSE
  "CMakeFiles/darray_net.dir/comm_layer.cpp.o"
  "CMakeFiles/darray_net.dir/comm_layer.cpp.o.d"
  "libdarray_net.a"
  "libdarray_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
