# Empty compiler generated dependencies file for darray_net.
# This may be replaced when dependencies are built.
