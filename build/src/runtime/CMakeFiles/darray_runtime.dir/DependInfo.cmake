
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cache_region.cpp" "src/runtime/CMakeFiles/darray_runtime.dir/cache_region.cpp.o" "gcc" "src/runtime/CMakeFiles/darray_runtime.dir/cache_region.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/darray_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/darray_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/darray_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/darray_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "src/runtime/CMakeFiles/darray_runtime.dir/node.cpp.o" "gcc" "src/runtime/CMakeFiles/darray_runtime.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/darray_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/darray_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/darray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
