file(REMOVE_RECURSE
  "libdarray_runtime.a"
)
