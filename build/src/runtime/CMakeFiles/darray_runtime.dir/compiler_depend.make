# Empty compiler generated dependencies file for darray_runtime.
# This may be replaced when dependencies are built.
