file(REMOVE_RECURSE
  "CMakeFiles/darray_runtime.dir/cache_region.cpp.o"
  "CMakeFiles/darray_runtime.dir/cache_region.cpp.o.d"
  "CMakeFiles/darray_runtime.dir/cluster.cpp.o"
  "CMakeFiles/darray_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/darray_runtime.dir/engine.cpp.o"
  "CMakeFiles/darray_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/darray_runtime.dir/node.cpp.o"
  "CMakeFiles/darray_runtime.dir/node.cpp.o.d"
  "libdarray_runtime.a"
  "libdarray_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
