file(REMOVE_RECURSE
  "libdarray_kvs.a"
)
