file(REMOVE_RECURSE
  "CMakeFiles/darray_kvs.dir/slab_allocator.cpp.o"
  "CMakeFiles/darray_kvs.dir/slab_allocator.cpp.o.d"
  "libdarray_kvs.a"
  "libdarray_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
