# Empty compiler generated dependencies file for darray_kvs.
# This may be replaced when dependencies are built.
