
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/graph/CMakeFiles/darray_graph.dir/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/bfs.cpp.o.d"
  "/root/repo/src/graph/cc.cpp" "src/graph/CMakeFiles/darray_graph.dir/cc.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/cc.cpp.o.d"
  "/root/repo/src/graph/pagerank.cpp" "src/graph/CMakeFiles/darray_graph.dir/pagerank.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/pagerank.cpp.o.d"
  "/root/repo/src/graph/reference.cpp" "src/graph/CMakeFiles/darray_graph.dir/reference.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/reference.cpp.o.d"
  "/root/repo/src/graph/rmat.cpp" "src/graph/CMakeFiles/darray_graph.dir/rmat.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/rmat.cpp.o.d"
  "/root/repo/src/graph/sssp.cpp" "src/graph/CMakeFiles/darray_graph.dir/sssp.cpp.o" "gcc" "src/graph/CMakeFiles/darray_graph.dir/sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/darray_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darray_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/darray_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/darray_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
