file(REMOVE_RECURSE
  "CMakeFiles/darray_graph.dir/bfs.cpp.o"
  "CMakeFiles/darray_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/darray_graph.dir/cc.cpp.o"
  "CMakeFiles/darray_graph.dir/cc.cpp.o.d"
  "CMakeFiles/darray_graph.dir/pagerank.cpp.o"
  "CMakeFiles/darray_graph.dir/pagerank.cpp.o.d"
  "CMakeFiles/darray_graph.dir/reference.cpp.o"
  "CMakeFiles/darray_graph.dir/reference.cpp.o.d"
  "CMakeFiles/darray_graph.dir/rmat.cpp.o"
  "CMakeFiles/darray_graph.dir/rmat.cpp.o.d"
  "CMakeFiles/darray_graph.dir/sssp.cpp.o"
  "CMakeFiles/darray_graph.dir/sssp.cpp.o.d"
  "libdarray_graph.a"
  "libdarray_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
