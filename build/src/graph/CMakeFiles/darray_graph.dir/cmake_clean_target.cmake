file(REMOVE_RECURSE
  "libdarray_graph.a"
)
