# Empty compiler generated dependencies file for darray_graph.
# This may be replaced when dependencies are built.
