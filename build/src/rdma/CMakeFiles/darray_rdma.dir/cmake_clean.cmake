file(REMOVE_RECURSE
  "CMakeFiles/darray_rdma.dir/device.cpp.o"
  "CMakeFiles/darray_rdma.dir/device.cpp.o.d"
  "CMakeFiles/darray_rdma.dir/fabric.cpp.o"
  "CMakeFiles/darray_rdma.dir/fabric.cpp.o.d"
  "libdarray_rdma.a"
  "libdarray_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
