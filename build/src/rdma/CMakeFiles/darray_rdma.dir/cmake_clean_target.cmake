file(REMOVE_RECURSE
  "libdarray_rdma.a"
)
