# Empty dependencies file for darray_rdma.
# This may be replaced when dependencies are built.
