# Empty dependencies file for darray_common.
# This may be replaced when dependencies are built.
