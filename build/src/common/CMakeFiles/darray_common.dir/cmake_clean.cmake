file(REMOVE_RECURSE
  "CMakeFiles/darray_common.dir/histogram.cpp.o"
  "CMakeFiles/darray_common.dir/histogram.cpp.o.d"
  "CMakeFiles/darray_common.dir/logging.cpp.o"
  "CMakeFiles/darray_common.dir/logging.cpp.o.d"
  "CMakeFiles/darray_common.dir/zipf.cpp.o"
  "CMakeFiles/darray_common.dir/zipf.cpp.o.d"
  "libdarray_common.a"
  "libdarray_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darray_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
