file(REMOVE_RECURSE
  "libdarray_common.a"
)
