// Wire format for the client-serving plane.
//
// A serve request/response rides the fabric as a kClientReq/kClientResp
// message. The MsgHeader carries the matching state — txn_id = session id,
// addr = request sequence, chunk = key-hash spread (runtime-thread routing
// only) — and the payload carries a fixed 8-byte wire struct followed by the
// variable-length key/value bytes. Both structs are plain little-endian PODs:
// the simulated fabric never leaves the process, so no byte-swapping.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "net/payload_buf.hpp"

namespace darray::serve {

enum class ClientOp : uint8_t { kGet = 0, kPut = 1, kDelete = 2 };

inline const char* client_op_name(ClientOp op) {
  switch (op) {
    case ClientOp::kGet: return "get";
    case ClientOp::kPut: return "put";
    case ClientOp::kDelete: return "del";
  }
  return "?";
}

// What an application hands to darray::Client. `value` is ignored for
// kGet/kDelete.
struct Request {
  ClientOp op = ClientOp::kGet;
  std::string key;
  std::string value;
};

// Owner-side journey stamps that ride back with a response (obs v4). The
// origin fills t_resp_rx on receipt; the shared process clock makes the
// cross-node stamps directly comparable. All-zero when journey tracing is
// disabled or the responder shed before stamping.
struct JourneyStamps {
  uint64_t t_admit = 0;    // dispatcher admitted the job
  uint64_t t_dequeue = 0;  // a worker popped it off the accept queue
  uint64_t t_backend = 0;  // backend op finished
  uint64_t t_resp_rx = 0;  // origin received the response (never on the wire)
  uint16_t owner = 0;      // node that executed (or shed) the request
  uint8_t flags = 0;       // RequestJourney::kFlag* bits observed owner-side
};

// What comes back. `value` is only populated for a kGet that returned kOk.
struct Response {
  Status status = Status::kTimeout;  // default: "never answered"
  std::string value;
  JourneyStamps j;
};

// Keys share the KVS blob-length field downstream, so cap them the same way.
inline constexpr size_t kMaxKeyLen = 0xffff;

// --- on-wire structs --------------------------------------------------------

struct WireReq {
  uint8_t op = 0;
  uint8_t pad = 0;
  uint16_t key_len = 0;
  uint32_t val_len = 0;
};
static_assert(sizeof(WireReq) == 8);

// WireResp.flags bit 0: a 32-byte WireJourney trailer follows the value bytes.
inline constexpr uint8_t kWireHasJourney = 1;

struct WireResp {
  uint8_t status = 0;
  uint8_t flags = 0;  // was pad before obs v4; old encoders wrote 0 = no trailer
  uint16_t pad2 = 0;
  uint32_t val_len = 0;
};
static_assert(sizeof(WireResp) == 8);

// Owner-side stamps appended after the value when kWireHasJourney is set.
struct WireJourney {
  uint64_t t_admit = 0;
  uint64_t t_dequeue = 0;
  uint64_t t_backend = 0;
  uint8_t flags = 0;  // RequestJourney::kFlag* bits
  uint8_t pad = 0;
  uint16_t owner = 0;
  uint32_t pad2 = 0;
};
static_assert(sizeof(WireJourney) == 32);

// --- encode / decode --------------------------------------------------------

inline void encode_request(net::PayloadBuf& buf, ClientOp op, std::string_view key,
                           std::string_view value) {
  WireReq w;
  w.op = static_cast<uint8_t>(op);
  w.key_len = static_cast<uint16_t>(key.size());
  w.val_len = static_cast<uint32_t>(value.size());
  buf.resize(sizeof(WireReq) + key.size() + value.size());
  std::byte* p = buf.data();
  std::memcpy(p, &w, sizeof(w));
  std::memcpy(p + sizeof(w), key.data(), key.size());
  std::memcpy(p + sizeof(w) + key.size(), value.data(), value.size());
}

// Returns false on a malformed payload (truncated or inconsistent lengths).
inline bool decode_request(const net::PayloadBuf& buf, ClientOp& op, std::string& key,
                           std::string& value) {
  if (buf.size() < sizeof(WireReq)) return false;
  WireReq w;
  std::memcpy(&w, buf.data(), sizeof(w));
  if (w.op > static_cast<uint8_t>(ClientOp::kDelete)) return false;
  if (buf.size() != sizeof(WireReq) + w.key_len + w.val_len) return false;
  const char* p = reinterpret_cast<const char*>(buf.data()) + sizeof(WireReq);
  op = static_cast<ClientOp>(w.op);
  key.assign(p, w.key_len);
  value.assign(p + w.key_len, w.val_len);
  return true;
}

// `stamps` (when non-null) appends the WireJourney trailer and sets the flag
// bit; a null stamps pointer encodes the pre-v4 8-byte-header layout exactly.
inline void encode_response(net::PayloadBuf& buf, Status st, std::string_view value,
                            const JourneyStamps* stamps = nullptr) {
  WireResp w;
  w.status = static_cast<uint8_t>(st);
  if (stamps) w.flags = kWireHasJourney;
  w.val_len = static_cast<uint32_t>(value.size());
  buf.resize(sizeof(WireResp) + value.size() + (stamps ? sizeof(WireJourney) : 0));
  std::byte* p = buf.data();
  std::memcpy(p, &w, sizeof(w));
  std::memcpy(p + sizeof(w), value.data(), value.size());
  if (stamps) {
    WireJourney wj;
    wj.t_admit = stamps->t_admit;
    wj.t_dequeue = stamps->t_dequeue;
    wj.t_backend = stamps->t_backend;
    wj.flags = stamps->flags;
    wj.owner = stamps->owner;
    std::memcpy(p + sizeof(w) + value.size(), &wj, sizeof(wj));
  }
}

inline bool decode_response(const net::PayloadBuf& buf, Response& out) {
  if (buf.size() < sizeof(WireResp)) return false;
  WireResp w;
  std::memcpy(&w, buf.data(), sizeof(w));
  const size_t trailer = (w.flags & kWireHasJourney) ? sizeof(WireJourney) : 0;
  if (buf.size() != sizeof(WireResp) + w.val_len + trailer) return false;
  out.status = static_cast<Status>(w.status);
  out.value.assign(reinterpret_cast<const char*>(buf.data()) + sizeof(WireResp),
                   w.val_len);
  out.j = JourneyStamps{};
  if (trailer) {
    WireJourney wj;
    std::memcpy(&wj, buf.data() + sizeof(WireResp) + w.val_len, sizeof(wj));
    out.j.t_admit = wj.t_admit;
    out.j.t_dequeue = wj.t_dequeue;
    out.j.t_backend = wj.t_backend;
    out.j.flags = wj.flags;
    out.j.owner = wj.owner;
  }
  return true;
}

}  // namespace darray::serve
