#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/histogram.hpp"  // now_ns
#include "obs/journey.hpp"

namespace darray::serve {

Client Client::connect(KvsService& service, Options opts) {
  DARRAY_ASSERT_MSG(static_cast<bool>(service), "connect() on an empty KvsService");
  DARRAY_ASSERT_MSG(opts.window > 0, "client window must be >= 1");
  Client c;
  c.lease_ = std::make_shared<SessionLease>();
  c.lease_->svc = service.impl_ptr();
  c.lease_->core =
      c.lease_->svc->open_session(opts.node, opts.window, opts.timeout_ns);
  // Decorrelate concurrent clients' backoff without nondeterminism across
  // runs: the session id is unique and assigned deterministically.
  c.jitter_rng_.seed(0x9e3779b9u ^ (c.lease_->core->id * 2654435761u));
  return c;
}

OpHandle Client::submit(Request req) {
  auto& svc = *lease_->svc;
  auto& core = *lease_->core;
  const bool journey = svc.config().journey_enabled;
  const uint64_t trace = journey ? obs::journey_trace_id() : 0;
  uint64_t seq;
  uint64_t t0 = 0;
  {
    std::unique_lock lk(core.mu);
    core.cv.wait(lk, [&] { return core.inflight < core.window; });
    seq = core.next_seq++;
    // t_submit is stamped after the window admits us: the journey measures
    // service-side latency, not the client's own pipelining backpressure.
    if (journey) t0 = now_ns();
    PendingOp op;
    op.trace = trace;
    op.t_submit = t0;
    op.op = static_cast<uint8_t>(req.op);
    core.pending.emplace(seq, std::move(op));
    ++core.inflight;
  }
  const Status st = svc.submit(core, seq, req, trace, t0);
  if (st != Status::kOk) {
    // Guard failure or synchronous local shed: complete the slot in place so
    // the handle resolves with the typed error (kBusy counts like a wire
    // busy-reply would).
    Response r;
    r.status = st;
    if (trace && st == Status::kBusy) {
      r.j.owner = static_cast<uint16_t>(core.node);
      r.j.flags = obs::RequestJourney::kFlagShed;
    }
    core.deliver(seq, std::move(r), svc.counters());
  }
  return OpHandle(lease_->core, seq);
}

Response Client::sync_op(const Request& req) {
  const ServeConfig& cfg = lease_->svc->config();
  Response r = submit(Request(req)).get();
  if (!cfg.client_retry_enabled) return r;
  uint64_t backoff = cfg.client_retry_base_ns;
  for (uint32_t attempt = 0; attempt < cfg.client_retry_max && r.status == Status::kBusy;
       ++attempt) {
    // Half-fixed half-jittered backoff: retries from concurrent clients spread
    // over [backoff/2, backoff] instead of re-colliding in lockstep.
    const uint64_t half = backoff / 2;
    const uint64_t delay = half + (half ? jitter_rng_() % (half + 1) : backoff);
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    backoff = std::min(backoff * 2, cfg.client_retry_cap_ns);
    lease_->svc->counters().client_retries.fetch_add(1, std::memory_order_relaxed);
    r = submit(Request(req)).get();
  }
  return r;
}

Status Client::put(std::string_view key, std::string_view value) {
  return sync_op({ClientOp::kPut, std::string(key), std::string(value)}).status;
}

Status Client::get(std::string_view key, std::string& out) {
  Response r = sync_op({ClientOp::kGet, std::string(key), {}});
  if (r.status == Status::kOk) out = std::move(r.value);
  return r.status;
}

Status Client::erase(std::string_view key) {
  return sync_op({ClientOp::kDelete, std::string(key), {}}).status;
}

}  // namespace darray::serve
