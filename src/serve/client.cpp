#include "serve/client.hpp"

#include "common/assert.hpp"

namespace darray::serve {

Client Client::connect(KvsService& service, Options opts) {
  DARRAY_ASSERT_MSG(static_cast<bool>(service), "connect() on an empty KvsService");
  DARRAY_ASSERT_MSG(opts.window > 0, "client window must be >= 1");
  Client c;
  c.lease_ = std::make_shared<SessionLease>();
  c.lease_->svc = service.impl_ptr();
  c.lease_->core =
      c.lease_->svc->open_session(opts.node, opts.window, opts.timeout_ns);
  return c;
}

OpHandle Client::submit(Request req) {
  auto& svc = *lease_->svc;
  auto& core = *lease_->core;
  uint64_t seq;
  {
    std::unique_lock lk(core.mu);
    core.cv.wait(lk, [&] { return core.inflight < core.window; });
    seq = core.next_seq++;
    core.pending.emplace(seq, PendingOp{});
    ++core.inflight;
  }
  const Status st = svc.submit(core, seq, req);
  if (st != Status::kOk) {
    // Guard failure or synchronous local shed: complete the slot in place so
    // the handle resolves with the typed error (kBusy counts like a wire
    // busy-reply would).
    Response r;
    r.status = st;
    core.deliver(seq, std::move(r), svc.counters());
  }
  return OpHandle(lease_->core, seq);
}

Status Client::put(std::string_view key, std::string_view value) {
  return submit({ClientOp::kPut, std::string(key), std::string(value)}).get().status;
}

Status Client::get(std::string_view key, std::string& out) {
  Response r = submit({ClientOp::kGet, std::string(key), {}}).get();
  if (r.status == Status::kOk) out = std::move(r.value);
  return r.status;
}

Status Client::erase(std::string_view key) {
  return submit({ClientOp::kDelete, std::string(key), {}}).get().status;
}

}  // namespace darray::serve
