// serve.* counters: one shared block per front door, registered as a
// StatsRegistry source so the numbers flow through snapshots, /metrics
// (darray_serve_*_total), the telemetry sampler, and darray-top.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/stats_registry.hpp"

namespace darray::serve {

struct ServeCounters {
  std::atomic<uint64_t> accepted{0};         // admitted into a dispatcher queue
  std::atomic<uint64_t> shed{0};             // refused at admission (kBusy sent)
  std::atomic<uint64_t> completed{0};        // responses produced by workers
  std::atomic<uint64_t> busy_replies{0};     // kBusy responses observed by sessions
  std::atomic<uint64_t> hot_promotions{0};   // keys promoted into the hot cache
  std::atomic<uint64_t> hot_hits{0};         // gets answered from the hot cache
  std::atomic<uint64_t> hot_invalidations{0};// hot entries dropped by writes
  std::atomic<uint64_t> late_responses{0};   // responses after timeout/close
  std::atomic<uint64_t> client_retries{0};   // sync-API resubmits after kBusy
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> reqs_wire{0};        // requests that crossed the fabric
  std::atomic<uint64_t> reqs_local{0};       // owner-local, fabric bypassed
  std::atomic<int64_t> inflight{0};          // queued + executing, cluster-wide
};

// The source captures the shared_ptr by value: the sampler thread may snapshot
// after the service that registered it has shut down, so the counter block
// must outlive the service, not the other way around.
inline void register_serve_counters(obs::StatsRegistry& reg,
                                    std::shared_ptr<const ServeCounters> c) {
  reg.add_source([c](obs::StatsSnapshot& s) {
    auto ld = [](const std::atomic<uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    s.add("serve.accepted", ld(c->accepted));
    s.add("serve.shed", ld(c->shed));
    s.add("serve.completed", ld(c->completed));
    s.add("serve.busy_replies", ld(c->busy_replies));
    s.add("serve.hot_promotions", ld(c->hot_promotions));
    s.add("serve.hot_hits", ld(c->hot_hits));
    s.add("serve.hot_invalidations", ld(c->hot_invalidations));
    s.add("serve.late_responses", ld(c->late_responses));
    s.add("serve.client_retries", ld(c->client_retries));
    s.add("serve.sessions_opened", ld(c->sessions_opened));
    s.add("serve.reqs_wire", ld(c->reqs_wire));
    s.add("serve.reqs_local", ld(c->reqs_local));
    // ".gauge" marks a point sample: the sampler must not difference it, and
    // /metrics renders it as a gauge. Clamp transient negatives (inflight is
    // incremented and decremented on different threads) to zero.
    const int64_t inf = c->inflight.load(std::memory_order_relaxed);
    s.add("serve.inflight.gauge", inf > 0 ? static_cast<uint64_t>(inf) : 0);
  });
}

}  // namespace darray::serve
