// Storage interface the serve layer executes against. The dispatcher is
// generic over the KVS flavor (BasicKvs<DArray> vs BasicKvs<gam::GamArray>)
// through this small virtual seam, so src/serve compiles once and fig17 can
// drive both engines through the same front door.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.hpp"
#include "runtime/types.hpp"

namespace darray::serve {

class KvsBackend {
 public:
  virtual ~KvsBackend() = default;

  // All three run on dispatcher worker threads (bound to a node's thread
  // context) and may block on fabric traffic.
  virtual Status get(std::string_view key, std::string& out) = 0;
  virtual Status put(std::string_view key, std::string_view value) = 0;
  virtual Status erase(std::string_view key) = 0;

  // Deterministic serving affinity — see BasicKvs::owner_of.
  virtual rt::NodeId owner_of(std::string_view key) const = 0;
};

template <typename Kvs>
class KvsBackendAdapter final : public KvsBackend {
 public:
  explicit KvsBackendAdapter(Kvs kvs) : kvs_(std::move(kvs)) {}

  Status get(std::string_view key, std::string& out) override {
    auto v = kvs_.get(key);
    if (!v) return Status::kNotFound;
    out = std::move(*v);
    return Status::kOk;
  }

  Status put(std::string_view key, std::string_view value) override {
    // BasicKvs::put folds "too large" and "space exhausted" into one false;
    // the size guard already ran at the session, so report capacity.
    return kvs_.put(key, value) ? Status::kOk : Status::kCapacity;
  }

  Status erase(std::string_view key) override {
    return kvs_.erase(key) ? Status::kOk : Status::kNotFound;
  }

  rt::NodeId owner_of(std::string_view key) const override {
    return kvs_.owner_of(key);
  }

 private:
  Kvs kvs_;
};

}  // namespace darray::serve
