// Client-session state: the pipelined in-flight window and the seq→response
// matching that pairs a submitted request with its eventual kClientResp.
//
// One SessionCore per connected Client. Submission and completion run on
// different threads (the application thread vs a runtime thread delivering a
// response), so the core is a mutex+condvar rendezvous; the fast path is one
// short critical section per side.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/histogram.hpp"  // now_ns
#include "common/spinlock.hpp"
#include "obs/journey.hpp"
#include "runtime/types.hpp"
#include "serve/counters.hpp"
#include "serve/protocol.hpp"

namespace darray::serve {

struct PendingOp {
  bool done = false;
  Response resp;
  // Journey identity, stamped at submit. trace == 0 means "not journeyed"
  // (journeys disabled) — deliver/await skip the collector entirely then.
  uint64_t trace = 0;
  uint64_t t_submit = 0;
  uint8_t op = 0;  // ClientOp value, for the retained record
};

class SessionCore {
 public:
  SessionCore(rt::NodeId node, uint32_t id, uint32_t window, uint64_t timeout_ns)
      : node(node), id(id), window(window), timeout_ns(timeout_ns) {}

  const rt::NodeId node;      // where the session's traffic originates
  const uint32_t id;          // rides the wire as hdr.txn_id
  const uint32_t window;      // max in-flight before submit blocks
  const uint64_t timeout_ns;  // 0 = wait forever

  std::mutex mu;
  std::condition_variable cv;
  uint64_t next_seq = 0;   // guarded by mu
  uint32_t inflight = 0;   // guarded by mu: submitted, response not yet in
  std::unordered_map<uint64_t, PendingOp> pending;  // guarded by mu

  // Completion side: called with a decoded response for `seq`. Returns false
  // if nobody is waiting (the waiter timed out, or the session closed) — the
  // caller counts it as late rather than lost. Frees the window slot: the
  // window bounds ops outstanding in the service, not unharvested handles, so
  // a client may hold arbitrarily many completed OpHandles without stalling
  // its own submissions.
  bool deliver(uint64_t seq, Response&& r, ServeCounters& c) {
    std::lock_guard lk(mu);
    auto it = pending.find(seq);
    if (it == pending.end() || it->second.done) return false;
    if (r.status == Status::kBusy)
      c.busy_replies.fetch_add(1, std::memory_order_relaxed);
    finish_journey(it->second, r, seq);
    it->second.resp = std::move(r);
    it->second.done = true;
    --inflight;
    cv.notify_all();  // wake the waiter and any submit blocked on the window
    return true;
  }

  // Waiter side: blocks until `seq` completes or the session timeout lapses.
  // On timeout the pending entry is erased (a late response is dropped at
  // deliver() instead of leaking map entries) and the window slot the
  // response never freed is reclaimed here.
  Response await(uint64_t seq) {
    std::unique_lock lk(mu);
    auto it = pending.find(seq);
    if (it == pending.end()) return Response{};  // already consumed: kTimeout
    // References into an unordered_map survive rehash; iterators may not, so
    // the predicate captures the mapped value, not `it`.
    PendingOp& op = it->second;
    bool completed;
    if (timeout_ns == 0) {
      cv.wait(lk, [&] { return op.done; });
      completed = true;
    } else {
      completed =
          cv.wait_for(lk, std::chrono::nanoseconds(timeout_ns), [&] { return op.done; });
    }
    Response r = completed ? std::move(op.resp) : Response{};  // default = kTimeout
    if (!completed && op.trace) {
      // The waiter gave up: retain the partial chain (whatever stamps a late
      // response would have carried are lost — the timeout IS the evidence).
      obs::RequestJourney j;
      j.trace = op.trace;
      j.t_submit = op.t_submit;
      j.origin = static_cast<uint16_t>(node);
      j.session = id;
      j.seq = seq;
      j.op = op.op;
      j.status = static_cast<uint8_t>(Status::kTimeout);
      j.flags = obs::RequestJourney::kFlagTimeout;
      obs::journey_collector().retain_exceptional(j);
    }
    pending.erase(seq);
    if (!completed) --inflight;  // abandoned op: deliver() never freed the slot
    cv.notify_all();
    return r;
  }

 private:
  // Completion-side journey accounting (mu held): a clean response completes
  // the five-stage chain; a shed/errored one is retained unconditionally.
  void finish_journey(const PendingOp& p, const Response& r, uint64_t seq) {
    if (!p.trace) return;
    obs::RequestJourney j;
    j.trace = p.trace;
    j.t_submit = p.t_submit;
    j.t_admit = r.j.t_admit;
    j.t_dequeue = r.j.t_dequeue;
    j.t_backend = r.j.t_backend;
    j.t_resp_rx = r.j.t_resp_rx;
    j.t_deliver = now_ns();
    j.origin = static_cast<uint16_t>(node);
    j.owner = r.j.owner;
    j.session = id;
    j.seq = seq;
    j.op = p.op;
    j.status = static_cast<uint8_t>(r.status);
    j.flags = r.j.flags;
    if (r.status == Status::kOk || r.status == Status::kNotFound) {
      obs::journey_collector().complete(j);
    } else {
      j.flags |= (r.status == Status::kBusy) ? obs::RequestJourney::kFlagShed
                                             : obs::RequestJourney::kFlagError;
      obs::journey_collector().retain_exceptional(j);
    }
  }
};

// Per-node table of live sessions, consulted by the service when a
// kClientResp arrives. Sessions are shared_ptr so a response can complete
// against a core that the owning Client is concurrently destroying.
class SessionRegistry {
 public:
  std::shared_ptr<SessionCore> open(rt::NodeId node, uint32_t window,
                                    uint64_t timeout_ns) {
    std::lock_guard lk(mu_);
    const uint32_t id = next_id_++;
    auto core = std::make_shared<SessionCore>(node, id, window, timeout_ns);
    sessions_.emplace(id, core);
    return core;
  }

  void close(uint32_t id) {
    std::lock_guard lk(mu_);
    sessions_.erase(id);
  }

  std::shared_ptr<SessionCore> find(uint32_t id) {
    std::lock_guard lk(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
  }

 private:
  SpinLock mu_;
  uint32_t next_id_ = 1;  // 0 reserved: "no session"
  std::unordered_map<uint32_t, std::shared_ptr<SessionCore>> sessions_;
};

}  // namespace darray::serve
