// Per-node request dispatcher: bounded admission, per-session FIFO execution
// across a worker pool, and the owner-side hot-key cache.
//
// Runtime threads (and local session threads) call offer() — a constant-time
// admit-or-shed decision. Dedicated worker threads, bound to the node's
// thread context, pop work and execute it against the KVS backend, then hand
// the response to the service's respond callback. Per-session ordering is
// preserved even with several workers: a session's next request becomes
// runnable only after its previous one completes.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/profiler.hpp"
#include "serve/backend.hpp"
#include "serve/config.hpp"
#include "serve/counters.hpp"
#include "serve/protocol.hpp"

namespace darray::rt {
class Cluster;
}

namespace darray::serve {

struct Job {
  uint64_t session_key = 0;  // origin<<32 | session id — FIFO domain
  uint16_t origin = 0;       // node whose session issued the request
  uint32_t session = 0;
  uint64_t seq = 0;
  ClientOp op = ClientOp::kGet;
  std::string key;
  std::string value;
  // Journey stamps (obs v4): trace/t_submit arrive from the client (on the
  // wire: MsgHeader.trace + aux/rkey); the dispatcher fills the rest.
  uint64_t trace = 0;
  uint64_t t_submit = 0;
  uint64_t t_admit = 0;
  uint64_t t_dequeue = 0;
};

class RequestDispatcher {
 public:
  using RespondFn = std::function<void(const Job&, Response&&)>;

  RequestDispatcher(rt::Cluster& cluster, rt::NodeId node, const ServeConfig& cfg,
                    KvsBackend& backend, ServeCounters& counters, RespondFn respond);
  ~RequestDispatcher();

  void start();
  void stop();

  // Admission control. Returns true if the job was queued; false means the
  // dispatcher is at capacity and the caller must shed (the job is left
  // intact — capacity is checked before anything is moved). Constant-time,
  // safe from runtime threads.
  bool offer(Job&& job);

  uint64_t executed() const { return executed_; }

 private:
  struct SessionQueue {
    std::deque<Job> jobs;
    bool running = false;  // a worker is executing this session's head job
  };

  DARRAY_PROFILE_ANCHOR void worker_main(uint32_t idx);
  void execute(Job& job, Response& out);

  // Hot-key cache (owner side). `heat_` is a fixed array of hashed read
  // counters — no allocation on the count path; `hot_` holds the promoted
  // values. `hot_epoch_` bumps on every serve-path write: a promotion is only
  // installed if no write happened between the backend read and the install,
  // which closes the stale-promotion race (read old value → writer updates
  // and invalidates → stale promotion would resurrect the old value).
  bool hot_lookup(const std::string& key, std::string& out);
  void hot_note_read(const std::string& key, const std::string& value,
                     uint64_t epoch_before);
  void hot_invalidate(const std::string& key);

  rt::Cluster& cluster_;
  const rt::NodeId node_;
  const ServeConfig& cfg_;
  KvsBackend& backend_;
  ServeCounters& counters_;
  RespondFn respond_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, SessionQueue> by_session_;  // guarded by mu_
  std::deque<uint64_t> ready_;                             // guarded by mu_
  uint32_t queued_ = 0;  // jobs queued + executing, guarded by mu_
  bool stopping_ = false;

  struct HotEntry {
    std::string value;
    uint64_t hits = 0;
  };
  std::mutex hot_mu_;
  std::unordered_map<std::string, HotEntry> hot_;  // guarded by hot_mu_
  std::array<uint32_t, 1024> heat_{};              // guarded by hot_mu_
  uint64_t hot_epoch_ = 0;                         // guarded by hot_mu_

  std::vector<std::thread> workers_;
  std::atomic<uint64_t> executed_{0};
};

}  // namespace darray::serve
