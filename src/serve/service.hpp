// KvsService: the per-cluster front door. Owns one SessionRegistry and one
// RequestDispatcher per node, installs the kClientReq/kClientResp sinks on
// every NodeRuntime, and moves requests/responses between session cores and
// owner dispatchers — over the fabric when owner != origin, directly when the
// owner is local (the simulated fabric has no self-QP).
//
// One front door per cluster: the service claims every node's client-message
// sink. Create it after the cluster is up; shut it down (or let the last
// handle drop) before the cluster stops.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "serve/backend.hpp"
#include "serve/config.hpp"
#include "serve/counters.hpp"
#include "serve/dispatcher.hpp"
#include "serve/session.hpp"

namespace darray::rt {
class Cluster;
}

namespace darray::serve {

namespace detail {

class ServiceImpl {
 public:
  ServiceImpl(rt::Cluster& cluster, const ServeConfig& cfg,
              std::unique_ptr<KvsBackend> backend);
  ~ServiceImpl();

  void start();
  void shutdown();  // idempotent

  std::shared_ptr<SessionCore> open_session(rt::NodeId node, uint32_t window,
                                            uint64_t timeout_ns);
  void close_session(const SessionCore& s);

  // Route one request from session `s`. Returns kOk when the request is in
  // flight (response arrives via s.deliver), kTooLarge / kMalformed on guard
  // failures, kBusy when the local owner shed it synchronously.
  //
  // `trace`/`t_submit` are the journey identity stamped by the client; both 0
  // when journey tracing is off. On the wire they piggyback on free MsgHeader
  // fields (trace, and t_submit split across aux/rkey).
  Status submit(SessionCore& s, uint64_t seq, const Request& req, uint64_t trace = 0,
                uint64_t t_submit = 0);

  rt::Cluster& cluster() { return cluster_; }
  const ServeConfig& config() const { return cfg_; }
  ServeCounters& counters() { return *counters_; }
  std::shared_ptr<const ServeCounters> counters_ptr() const { return counters_; }

 private:
  void on_client_msg(rt::NodeId n, net::RpcMessage&& m);
  void respond(rt::NodeId from, const Job& job, Response&& r);
  void deliver_local(rt::NodeId n, uint32_t session, uint64_t seq, Response&& r);

  rt::Cluster& cluster_;
  const ServeConfig cfg_;
  std::unique_ptr<KvsBackend> backend_;
  std::shared_ptr<ServeCounters> counters_;
  size_t max_payload_ = 0;
  std::vector<std::unique_ptr<SessionRegistry>> registries_;   // per node
  std::vector<std::unique_ptr<RequestDispatcher>> dispatchers_;  // per node
  std::atomic<bool> down_{false};
};

}  // namespace detail

// Copyable handle; the service shuts down when the last handle (and last
// connected Client) drops.
class KvsService {
 public:
  KvsService() = default;

  template <typename Kvs>
  static KvsService create(rt::Cluster& cluster, Kvs kvs, const ServeConfig& cfg = {}) {
    cfg.validate();
    KvsService s;
    s.impl_ = std::make_shared<detail::ServiceImpl>(
        cluster, cfg, std::make_unique<KvsBackendAdapter<Kvs>>(std::move(kvs)));
    s.impl_->start();
    return s;
  }

  explicit operator bool() const { return impl_ != nullptr; }

  // Explicit teardown (also implicit on last-handle destruction).
  void shutdown() {
    if (impl_) impl_->shutdown();
  }

  ServeCounters& counters() { return impl_->counters(); }
  const ServeConfig& config() const { return impl_->config(); }
  rt::Cluster& cluster() { return impl_->cluster(); }

  detail::ServiceImpl& impl() { return *impl_; }
  std::shared_ptr<detail::ServiceImpl> impl_ptr() const { return impl_; }

 private:
  std::shared_ptr<detail::ServiceImpl> impl_;
};

}  // namespace darray::serve
