#include "serve/service.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "kvs/kvs.hpp"  // fnv1a
#include "obs/journey.hpp"
#include "net/comm_layer.hpp"
#include "runtime/cluster.hpp"
#include "runtime/node.hpp"

namespace darray::serve::detail {

namespace {

uint64_t session_key_of(uint16_t origin, uint32_t session) {
  return (uint64_t{origin} << 32) | session;
}

}  // namespace

ServiceImpl::ServiceImpl(rt::Cluster& cluster, const ServeConfig& cfg,
                         std::unique_ptr<KvsBackend> backend)
    : cluster_(cluster),
      cfg_(cfg),
      backend_(std::move(backend)),
      counters_(std::make_shared<ServeCounters>()) {
  max_payload_ =
      cluster_.node(0).comm().max_msg_bytes() - sizeof(net::MsgHeader);
  register_serve_counters(cluster_.stats_registry(), counters_);
  // The collector is process-global (one front door per cluster, one cluster
  // per bench/test process): the service owns its retention policy.
  obs::journey_collector().configure(cfg_.journey_enabled, cfg_.journey_retain_cap,
                                     cfg_.journey_slow_floor_ns);
}

ServiceImpl::~ServiceImpl() { shutdown(); }

void ServiceImpl::start() {
  const uint32_t n = cluster_.num_nodes();
  registries_.reserve(n);
  dispatchers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    registries_.push_back(std::make_unique<SessionRegistry>());
    dispatchers_.push_back(std::make_unique<RequestDispatcher>(
        cluster_, i, cfg_, *backend_, *counters_,
        [this, i](const Job& job, Response&& r) { respond(i, job, std::move(r)); }));
  }
  for (uint32_t i = 0; i < n; ++i) {
    dispatchers_[i]->start();
    cluster_.node(i).set_client_msg_handler(
        [this, i](net::RpcMessage&& m) { on_client_msg(i, std::move(m)); });
  }
}

void ServiceImpl::shutdown() {
  if (down_.exchange(true)) return;
  // Uninstall the sinks first: set_client_msg_handler holds the delivery
  // lock, so once it returns no runtime thread can enter on_client_msg.
  for (uint32_t i = 0; i < cluster_.num_nodes(); ++i)
    cluster_.node(i).set_client_msg_handler(nullptr);
  for (auto& d : dispatchers_) d->stop();
}

std::shared_ptr<SessionCore> ServiceImpl::open_session(rt::NodeId node,
                                                       uint32_t window,
                                                       uint64_t timeout_ns) {
  DARRAY_ASSERT_MSG(!down_.load(), "open_session on a shut-down service");
  counters_->sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return registries_[node]->open(node, window, timeout_ns);
}

void ServiceImpl::close_session(const SessionCore& s) {
  registries_[s.node]->close(s.id);
}

Status ServiceImpl::submit(SessionCore& s, uint64_t seq, const Request& req,
                           uint64_t trace, uint64_t t_submit) {
  if (down_.load(std::memory_order_relaxed)) return Status::kUnavailable;
  if (req.key.empty() || req.key.size() > kMaxKeyLen) return Status::kMalformed;
  if (sizeof(WireReq) + req.key.size() + req.value.size() > max_payload_)
    return Status::kTooLarge;

  const rt::NodeId owner = backend_->owner_of(req.key);
  if (owner == s.node) {
    // No self-QP in the simulated fabric: hand the job straight to the local
    // dispatcher. A shed is reported synchronously.
    counters_->reqs_local.fetch_add(1, std::memory_order_relaxed);
    Job job;
    job.session_key = session_key_of(static_cast<uint16_t>(s.node), s.id);
    job.origin = static_cast<uint16_t>(s.node);
    job.session = s.id;
    job.seq = seq;
    job.op = req.op;
    job.key = req.key;
    job.value = req.value;
    job.trace = trace;
    job.t_submit = t_submit;
    if (dispatchers_[owner]->offer(std::move(job))) {
      counters_->accepted.fetch_add(1, std::memory_order_relaxed);
      return Status::kOk;
    }
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    return Status::kBusy;
  }

  counters_->reqs_wire.fetch_add(1, std::memory_order_relaxed);
  net::TxRequest tx;
  tx.dst = static_cast<uint16_t>(owner);
  tx.hdr.type = net::MsgType::kClientReq;
  tx.hdr.txn_id = s.id;
  tx.hdr.addr = seq;
  tx.hdr.chunk = kvs::fnv1a(req.key);  // spreads deliveries across rx threads
  // Journey piggyback: trace rides its own field; t_submit splits across the
  // aux/rkey pair, unused by client messages. Valid cross-node because every
  // simulated node shares one monotonic clock.
  tx.hdr.trace = trace;
  tx.hdr.aux = static_cast<uint32_t>(t_submit >> 32);
  tx.hdr.rkey = static_cast<uint32_t>(t_submit);
  encode_request(tx.payload, req.op, req.key, req.value);
  cluster_.node(s.node).comm().post(std::move(tx));
  return Status::kOk;
}

void ServiceImpl::on_client_msg(rt::NodeId n, net::RpcMessage&& m) {
  if (m.hdr.type == net::MsgType::kClientResp) {
    Response r;
    if (!decode_response(m.payload, r)) return;
    deliver_local(n, m.hdr.txn_id, m.hdr.addr, std::move(r));
    return;
  }

  // kClientReq on the owner node. Runs on a runtime thread: decode, then a
  // constant-time admit-or-shed. Never executes KVS work here.
  Job job;
  job.origin = m.hdr.src_node;
  job.session = m.hdr.txn_id;
  job.seq = m.hdr.addr;
  job.session_key = session_key_of(job.origin, job.session);
  job.trace = m.hdr.trace;
  job.t_submit = (uint64_t{m.hdr.aux} << 32) | m.hdr.rkey;
  if (!decode_request(m.payload, job.op, job.key, job.value)) {
    Response r;
    r.status = Status::kMalformed;
    respond(n, job, std::move(r));
    return;
  }
  if (dispatchers_[n]->offer(std::move(job))) {
    counters_->accepted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counters_->shed.fetch_add(1, std::memory_order_relaxed);
  Response r;
  r.status = Status::kBusy;
  respond(n, job, std::move(r));  // job still valid: offer() sheds before moving
}

void ServiceImpl::respond(rt::NodeId from, const Job& job, Response&& r) {
  if (down_.load(std::memory_order_relaxed)) return;
  if (job.trace) r.j.owner = static_cast<uint16_t>(from);
  if (job.origin == from) {
    deliver_local(from, job.session, job.seq, std::move(r));
    return;
  }
  net::TxRequest tx;
  tx.dst = job.origin;
  tx.hdr.type = net::MsgType::kClientResp;
  tx.hdr.txn_id = job.session;
  tx.hdr.addr = job.seq;
  tx.hdr.chunk = job.session_key;  // keep one session's responses on one rx thread
  tx.hdr.trace = job.trace;
  const size_t trailer = job.trace ? sizeof(WireJourney) : 0;
  // Responses must always fit: the value came out of a request-sized blob.
  if (sizeof(WireResp) + r.value.size() + trailer > max_payload_) {
    r.value.clear();
    r.status = Status::kTooLarge;
  }
  encode_response(tx.payload, r.status, r.value, job.trace ? &r.j : nullptr);
  // CommLayer::post is MPSC — legal from dispatcher workers and runtime
  // threads alike.
  cluster_.node(from).comm().post(std::move(tx));
}

void ServiceImpl::deliver_local(rt::NodeId n, uint32_t session, uint64_t seq,
                                Response&& r) {
  // Journeyed response (stamps or owner-side flags present): this entry point
  // is "the origin has the bytes" — the net stage ends here.
  if (r.j.t_backend || r.j.flags || r.j.owner) r.j.t_resp_rx = now_ns();
  auto core = registries_[n]->find(session);
  if (!core || !core->deliver(seq, std::move(r), *counters_))
    counters_->late_responses.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace darray::serve::detail
