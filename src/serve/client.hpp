// darray::Client — the single client-facing entry point for KVS traffic.
//
//   auto svc = serve::KvsService::create(cluster, kvs);
//   auto cli = darray::Client::connect(svc, {.node = 0});
//   cli.put("user1", "v");                 // sync, typed Status
//   auto h = cli.async_get("user1");       // pipelined, bounded window
//   Response r = h.get();                  // r.status / r.value
//
// Every operation returns a typed Status (kOk / kNotFound / kBusy / kTimeout
// / kTooLarge / ...) instead of the mixed bool-or-assert conventions of the
// raw storage engine. Async submissions share a per-session in-flight window:
// submit blocks once `window` operations are outstanding, which is the
// client's half of the admission-control story (the server's half sheds with
// kBusy). One Client is one session; a Client is not thread-safe, but any
// number of Clients can share a service.
#pragma once

#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <utility>

#include "serve/service.hpp"
#include "serve/session.hpp"

namespace darray::serve {

// Move-only completion handle for one submitted operation. get() blocks until
// the response arrives or the session's timeout lapses; calling it consumes
// the handle. Dropping a handle without get() leaks the window slot until the
// response arrives, so harvest every handle.
class OpHandle {
 public:
  OpHandle() = default;
  OpHandle(std::shared_ptr<SessionCore> core, uint64_t seq)
      : core_(std::move(core)), seq_(seq) {}
  OpHandle(OpHandle&&) = default;
  OpHandle& operator=(OpHandle&&) = default;
  OpHandle(const OpHandle&) = delete;
  OpHandle& operator=(const OpHandle&) = delete;

  bool valid() const { return core_ != nullptr; }

  // Non-blocking: has the response already landed?
  bool ready() const {
    if (!core_) return false;
    std::lock_guard lk(core_->mu);
    auto it = core_->pending.find(seq_);
    return it != core_->pending.end() && it->second.done;
  }

  Response get() {
    Response r = core_->await(seq_);
    core_.reset();
    return r;
  }

 private:
  std::shared_ptr<SessionCore> core_;
  uint64_t seq_ = 0;
};

class Client {
 public:
  struct Options {
    rt::NodeId node = 0;      // cluster node this client's traffic enters at
    uint32_t window = 16;     // max in-flight async ops before submit blocks
    uint64_t timeout_ns = 0;  // per-op await timeout; 0 = wait forever
  };

  Client() = default;

  static Client connect(KvsService& service, Options opts);
  static Client connect(KvsService& service) { return connect(service, Options{}); }

  explicit operator bool() const { return lease_ != nullptr; }

  // --- synchronous API (submit + await) -----------------------------------
  // When ServeConfig::client_retry_enabled is set, a kBusy reply is retried
  // with bounded exponential backoff + jitter (serve.client_retries counts
  // the resubmits). The async API never retries: pipelined callers own their
  // own policy.
  Status put(std::string_view key, std::string_view value);
  // out receives the value only on kOk.
  Status get(std::string_view key, std::string& out);
  Status erase(std::string_view key);

  // --- pipelined API -------------------------------------------------------
  OpHandle submit(Request req);
  OpHandle async_get(std::string_view key) {
    return submit({ClientOp::kGet, std::string(key), {}});
  }
  OpHandle async_put(std::string_view key, std::string_view value) {
    return submit({ClientOp::kPut, std::string(key), std::string(value)});
  }
  OpHandle async_erase(std::string_view key) {
    return submit({ClientOp::kDelete, std::string(key), {}});
  }

 private:
  // Ties the session lifetime to the Client: closing deregisters the session
  // so stray responses count as late instead of matching a recycled id.
  struct SessionLease {
    std::shared_ptr<detail::ServiceImpl> svc;
    std::shared_ptr<SessionCore> core;
    ~SessionLease() { svc->close_session(*core); }
  };

  Response sync_op(const Request& req);

  std::shared_ptr<SessionLease> lease_;
  std::minstd_rand jitter_rng_{0x9e3779b9};  // reseeded per session at connect
};

}  // namespace darray::serve

namespace darray {
// The public name applications use.
using serve::Client;
}  // namespace darray
