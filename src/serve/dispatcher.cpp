#include "serve/dispatcher.hpp"

#include <chrono>
#include <cstdio>

#include "common/assert.hpp"
#include "common/histogram.hpp"  // now_ns
#include "core/context.hpp"
#include "kvs/kvs.hpp"  // fnv1a
#include "obs/journey.hpp"
#include "runtime/cluster.hpp"

namespace darray::serve {

RequestDispatcher::RequestDispatcher(rt::Cluster& cluster, rt::NodeId node,
                                     const ServeConfig& cfg, KvsBackend& backend,
                                     ServeCounters& counters, RespondFn respond)
    : cluster_(cluster),
      node_(node),
      cfg_(cfg),
      backend_(backend),
      counters_(counters),
      respond_(std::move(respond)) {}

RequestDispatcher::~RequestDispatcher() { stop(); }

void RequestDispatcher::start() {
  for (uint32_t i = 0; i < cfg_.workers_per_node; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void RequestDispatcher::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Queued jobs are abandoned: their sessions see kTimeout (or the service
  // has already shut down the session plane entirely).
}

bool RequestDispatcher::offer(Job&& job) {
  std::lock_guard lk(mu_);
  if (stopping_) return false;
  // Capacity check happens before anything is moved, so a shed leaves `job`
  // valid for the caller's kBusy reply.
  if (cfg_.accept_queue_cap != 0 && queued_ >= cfg_.accept_queue_cap) return false;
  if (job.trace) job.t_admit = now_ns();
  ++queued_;
  counters_.inflight.fetch_add(1, std::memory_order_relaxed);
  SessionQueue& sq = by_session_[job.session_key];
  const uint64_t skey = job.session_key;
  sq.jobs.push_back(std::move(job));
  // A session becomes ready only when its new head can run: nothing running
  // and this is the only queued job. Otherwise the completing worker (or an
  // earlier queued job) re-arms it.
  if (!sq.running && sq.jobs.size() == 1) {
    ready_.push_back(skey);
    cv_.notify_one();
  }
  return true;
}

void RequestDispatcher::worker_main(uint32_t idx) {
  char tname[16];
  std::snprintf(tname, sizeof tname, "disp.%u.%u", static_cast<unsigned>(node_), idx);
  obs::register_current_thread(tname);
  // Workers execute KVS ops, which issue DArray traffic — they need a bound
  // thread context like any application thread.
  bind_thread(cluster_, node_);
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      obs::set_prof_phase(obs::ProfPhase::kIdle);  // parked on the ready cv
      cv_.wait(lk, [&] { return stopping_ || !ready_.empty(); });
      if (stopping_) return;
      const uint64_t skey = ready_.front();
      ready_.pop_front();
      SessionQueue& sq = by_session_[skey];
      DARRAY_ASSERT(!sq.running && !sq.jobs.empty());
      sq.running = true;
      job = std::move(sq.jobs.front());
      sq.jobs.pop_front();
    }
    if (job.trace) job.t_dequeue = now_ns();

    Response resp;
    // Profile-context op tag: samples taken while this request executes fold
    // under (busy:get) / (busy:set) instead of the bare worker loop.
    {
      const obs::OpKind k =
          job.op == ClientOp::kGet ? obs::OpKind::kGet : obs::OpKind::kSet;
      obs::ProfOpScope prof_op(static_cast<uint8_t>(k));
      obs::set_prof_phase(obs::ProfPhase::kBusy);
      execute(job, resp);
    }
    if (job.trace) {
      resp.j.t_admit = job.t_admit;
      resp.j.t_dequeue = job.t_dequeue;
      resp.j.t_backend = now_ns();
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    counters_.inflight.fetch_sub(1, std::memory_order_relaxed);
    respond_(job, std::move(resp));

    {
      std::lock_guard lk(mu_);
      --queued_;
      auto it = by_session_.find(job.session_key);
      DARRAY_ASSERT(it != by_session_.end());
      it->second.running = false;
      if (it->second.jobs.empty()) {
        by_session_.erase(it);  // keep the table bounded by live sessions
      } else {
        ready_.push_back(job.session_key);
        cv_.notify_one();
      }
    }
  }
}

void RequestDispatcher::execute(Job& job, Response& out) {
  switch (job.op) {
    case ClientOp::kGet: {
      if (cfg_.hot_key_enabled && hot_lookup(job.key, out.value)) {
        counters_.hot_hits.fetch_add(1, std::memory_order_relaxed);
        out.status = Status::kOk;
        out.j.flags |= obs::RequestJourney::kFlagHotHit;
        return;
      }
      uint64_t epoch_before = 0;
      if (cfg_.hot_key_enabled) {
        std::lock_guard lk(hot_mu_);
        epoch_before = hot_epoch_;
      }
      if (cfg_.worker_delay_ns)
        std::this_thread::sleep_for(std::chrono::nanoseconds(cfg_.worker_delay_ns));
      out.status = backend_.get(job.key, out.value);
      if (out.status == Status::kOk && cfg_.hot_key_enabled)
        hot_note_read(job.key, out.value, epoch_before);
      return;
    }
    case ClientOp::kPut: {
      if (cfg_.worker_delay_ns)
        std::this_thread::sleep_for(std::chrono::nanoseconds(cfg_.worker_delay_ns));
      // Invalidate before the backend write becomes visible to responders:
      // a reader racing the put may still see the old value (that is just
      // read/write concurrency), but once the put's response is sent no get
      // can be served stale from the cache.
      if (cfg_.hot_key_enabled) hot_invalidate(job.key);
      out.status = backend_.put(job.key, job.value);
      if (cfg_.hot_key_enabled) hot_invalidate(job.key);
      return;
    }
    case ClientOp::kDelete: {
      if (cfg_.worker_delay_ns)
        std::this_thread::sleep_for(std::chrono::nanoseconds(cfg_.worker_delay_ns));
      if (cfg_.hot_key_enabled) hot_invalidate(job.key);
      out.status = backend_.erase(job.key);
      if (cfg_.hot_key_enabled) hot_invalidate(job.key);
      return;
    }
  }
  out.status = Status::kMalformed;
}

bool RequestDispatcher::hot_lookup(const std::string& key, std::string& out) {
  std::lock_guard lk(hot_mu_);
  auto it = hot_.find(key);
  if (it == hot_.end()) return false;
  ++it->second.hits;
  out = it->second.value;
  return true;
}

void RequestDispatcher::hot_note_read(const std::string& key, const std::string& value,
                                      uint64_t epoch_before) {
  if (value.size() > cfg_.hot_max_value_bytes) return;
  std::lock_guard lk(hot_mu_);
  uint32_t& heat = heat_[kvs::fnv1a(key) % heat_.size()];
  if (++heat < cfg_.hot_promote_threshold) return;
  heat = 0;  // re-earn promotion after eviction/invalidation
  // A write slid in between our backend read and now — `value` may be stale.
  // Skip this promotion; the key will re-qualify from fresh reads.
  if (hot_epoch_ != epoch_before) return;
  if (hot_.size() >= cfg_.hot_max_entries && !hot_.contains(key)) return;
  auto [it, inserted] = hot_.try_emplace(key);
  it->second.value = value;
  if (inserted) counters_.hot_promotions.fetch_add(1, std::memory_order_relaxed);
}

void RequestDispatcher::hot_invalidate(const std::string& key) {
  std::lock_guard lk(hot_mu_);
  ++hot_epoch_;
  if (hot_.erase(key))
    counters_.hot_invalidations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace darray::serve
