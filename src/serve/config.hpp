// Tunables for the client-serving front door.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace darray::serve {

struct ServeConfig {
  // Admission control: per-node bound on queued-plus-running requests. When
  // the dispatcher is at capacity, new arrivals are shed with an immediate
  // kBusy instead of growing the queue (bounded p99 under overload beats
  // serving every request eventually). 0 disables shedding — the queue grows
  // without bound, the baseline the serve_soak bench compares against.
  uint32_t accept_queue_cap = 256;

  // Dedicated KVS-executing worker threads per node. Runtime threads only
  // route; the blocking KVS ops run here. 0 is legal (nothing executes —
  // used by timeout tests).
  uint32_t workers_per_node = 1;

  // Owner-side hot-key cache (read lease): keys whose observed read rate
  // crosses hot_promote_threshold get their value pinned at the owner's
  // dispatcher, answering from memory without touching the KVS arrays.
  // Writes through the serve path invalidate before responding.
  bool hot_key_enabled = true;
  uint32_t hot_promote_threshold = 64;  // reads-since-decay before promotion
  uint32_t hot_max_entries = 16;        // zipfian head is tiny; keep the cache tiny
  uint32_t hot_max_value_bytes = 4096;  // never pin bulk values

  // Artificial per-request service time on the backend path (tests/bench:
  // makes capacity deterministic so overload is reproducible). Hot-cache hits
  // skip it — they model the fast path.
  uint64_t worker_delay_ns = 0;

  // Request-journey tracing (obs v4): per-request stage stamps feeding the
  // hist.stage.* histograms, with tail-based retention of full span chains
  // (slow / shed / timed-out / errored) for /slow.json and darray-trace
  // --journeys. The stamp cost is ~6 clock reads per request.
  bool journey_enabled = true;
  uint32_t journey_retain_cap = 256;   // retention-ring size (journeys kept)
  uint64_t journey_slow_floor_ns = 0;  // also retain total >= floor; 0 = p99 only

  // Client-side retry of kBusy replies in Client's synchronous API: bounded
  // exponential backoff with jitter. Off by default — retries amplify load,
  // so opting in is an application decision (docs/serving.md).
  bool client_retry_enabled = false;
  uint32_t client_retry_max = 4;             // retries after the first attempt
  uint64_t client_retry_base_ns = 100'000;   // first backoff (doubles per retry)
  uint64_t client_retry_cap_ns = 10'000'000; // backoff ceiling

  void validate() const {
    DARRAY_ASSERT_MSG(hot_promote_threshold > 0, "hot_promote_threshold must be >= 1");
    DARRAY_ASSERT_MSG(hot_max_entries > 0, "hot_max_entries must be >= 1");
    DARRAY_ASSERT_MSG(journey_retain_cap > 0, "journey_retain_cap must be >= 1");
    DARRAY_ASSERT_MSG(!client_retry_enabled || client_retry_base_ns > 0,
                      "client_retry_base_ns must be >= 1 when retries are on");
    DARRAY_ASSERT_MSG(client_retry_cap_ns >= client_retry_base_ns,
                      "client_retry_cap_ns must be >= client_retry_base_ns");
  }
};

}  // namespace darray::serve
