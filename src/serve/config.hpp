// Tunables for the client-serving front door.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace darray::serve {

struct ServeConfig {
  // Admission control: per-node bound on queued-plus-running requests. When
  // the dispatcher is at capacity, new arrivals are shed with an immediate
  // kBusy instead of growing the queue (bounded p99 under overload beats
  // serving every request eventually). 0 disables shedding — the queue grows
  // without bound, the baseline the serve_soak bench compares against.
  uint32_t accept_queue_cap = 256;

  // Dedicated KVS-executing worker threads per node. Runtime threads only
  // route; the blocking KVS ops run here. 0 is legal (nothing executes —
  // used by timeout tests).
  uint32_t workers_per_node = 1;

  // Owner-side hot-key cache (read lease): keys whose observed read rate
  // crosses hot_promote_threshold get their value pinned at the owner's
  // dispatcher, answering from memory without touching the KVS arrays.
  // Writes through the serve path invalidate before responding.
  bool hot_key_enabled = true;
  uint32_t hot_promote_threshold = 64;  // reads-since-decay before promotion
  uint32_t hot_max_entries = 16;        // zipfian head is tiny; keep the cache tiny
  uint32_t hot_max_value_bytes = 4096;  // never pin bulk values

  // Artificial per-request service time on the backend path (tests/bench:
  // makes capacity deterministic so overload is reproducible). Hot-cache hits
  // skip it — they model the fast path.
  uint64_t worker_delay_ns = 0;

  void validate() const {
    DARRAY_ASSERT_MSG(hot_promote_threshold > 0, "hot_promote_threshold must be >= 1");
    DARRAY_ASSERT_MSG(hot_max_entries > 0, "hot_max_entries must be >= 1");
  }
};

}  // namespace darray::serve
