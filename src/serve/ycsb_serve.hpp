// YCSB-style driver for the serve path: same Zipfian key/mix shape as
// kvs::run_ycsb, but traffic flows through darray::Client sessions (pipelined
// window, admission control, hot-key cache) instead of calling the storage
// engine directly.
#pragma once

#include <atomic>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "kvs/ycsb.hpp"
#include "serve/client.hpp"

namespace darray::serve {

struct ServeYcsbResult {
  double kops = 0;  // completed ops (shed kBusy replies excluded)
  uint64_t gets = 0, puts = 0, misses = 0, busy = 0;
  double elapsed_s = 0;
};

// Load phase through the front door, so even preload traffic is session
// traffic. Round-robin client nodes like ycsb_load.
inline void ycsb_load_serve(KvsService& svc, const kvs::YcsbConfig& cfg) {
  const uint32_t nodes = svc.cluster().num_nodes();
  std::vector<std::thread> ts;
  for (uint32_t n = 0; n < nodes; ++n) {
    ts.emplace_back([&, n] {
      Client cli = Client::connect(svc, {.node = n, .window = 16});
      std::deque<OpHandle> q;
      for (uint64_t k = n; k < cfg.n_keys; k += nodes) {
        q.push_back(
            cli.async_put(kvs::ycsb_key(k), kvs::ycsb_value(k, cfg.value_bytes)));
        if (q.size() >= 16) {
          const Status st = q.front().get().status;
          DARRAY_ASSERT_MSG(st == Status::kOk, "serve load phase put failed");
          q.pop_front();
        }
      }
      while (!q.empty()) {
        const Status st = q.front().get().status;
        DARRAY_ASSERT_MSG(st == Status::kOk, "serve load phase put failed");
        q.pop_front();
      }
    });
  }
  for (auto& t : ts) t.join();
}

// Closed-loop pipelined run: each thread owns one Client and keeps `window`
// ops in flight.
inline ServeYcsbResult run_ycsb_serve(KvsService& svc, const kvs::YcsbConfig& cfg,
                                      uint32_t window = 16) {
  rt::Cluster& cluster = svc.cluster();
  const uint32_t total_threads = cluster.num_nodes() * cfg.threads_per_node;
  SenseBarrier barrier(total_threads + 1);
  std::atomic<uint64_t> gets{0}, puts{0}, misses{0}, busy{0};

  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < cfg.threads_per_node; ++t) {
      ts.emplace_back([&, n, t] {
        Client cli = Client::connect(svc, {.node = n, .window = window});
        Xoshiro256 rng(cfg.seed * 1000003 + n * 131 + t);
        ZipfGenerator zipf(cfg.n_keys, cfg.zipf_theta);
        uint64_t my_gets = 0, my_puts = 0, my_misses = 0, my_busy = 0;
        std::deque<std::pair<bool, OpHandle>> q;  // (is_get, handle)
        auto harvest = [&] {
          auto [is_get, h] = std::move(q.front());
          q.pop_front();
          const Response r = h.get();
          if (r.status == Status::kBusy) {
            ++my_busy;
          } else if (is_get) {
            ++my_gets;
            if (r.status != Status::kOk) ++my_misses;
          } else {
            ++my_puts;
          }
        };
        barrier.arrive_and_wait();  // start together
        for (uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
          const uint64_t k = zipf.next(rng);
          if (rng.next_double() < cfg.get_ratio)
            q.emplace_back(true, cli.async_get(kvs::ycsb_key(k)));
          else
            q.emplace_back(false, cli.async_put(kvs::ycsb_key(k),
                                                kvs::ycsb_value(k ^ i, cfg.value_bytes)));
          if (q.size() >= window) harvest();
        }
        while (!q.empty()) harvest();
        gets.fetch_add(my_gets);
        puts.fetch_add(my_puts);
        misses.fetch_add(my_misses);
        busy.fetch_add(my_busy);
        barrier.arrive_and_wait();  // end together
      });
    }
  }

  barrier.arrive_and_wait();
  const uint64_t t0 = now_ns();
  barrier.arrive_and_wait();
  const uint64_t t1 = now_ns();
  for (auto& t : ts) t.join();

  ServeYcsbResult r;
  r.gets = gets.load();
  r.puts = puts.load();
  r.misses = misses.load();
  r.busy = busy.load();
  r.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
  r.kops = static_cast<double>(r.gets + r.puts) / r.elapsed_s / 1e3;
  return r;
}

}  // namespace darray::serve
