#include "serve/tcp_gateway.hpp"

#include <sys/socket.h>

#include <cstring>

#include "common/logging.hpp"
#include "common/status.hpp"

namespace darray::serve {

namespace {

// Reads up to one '\n'-terminated line (newline stripped, tolerates "\r\n").
// Returns false when the peer hangs up.
bool recv_line(int fd, std::string& line) {
  line.clear();
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return false;
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    line.push_back(c);
    if (line.size() > 1 << 20) return false;  // refuse absurd lines
  }
}

}  // namespace

bool TcpGateway::start() {
  net::SocketListener::Options lopts;
  lopts.bind_addr = opts_.bind_addr;
  lopts.port = opts_.port;
  lopts.name = "gateway";
  if (!listener_.start(std::move(lopts), [this](int fd) { serve_conn(fd); }))
    return false;
  DLOG_INFO("gateway: serving kvs on %s:%u", opts_.bind_addr.c_str(),
            listener_.port());
  return true;
}

void TcpGateway::serve_conn(int fd) {
  Client cli = Client::connect(service_, {.node = opts_.node, .window = 1,
                                          .timeout_ns = opts_.timeout_ns});
  std::string line;
  while (recv_line(fd, line)) {
    const size_t sp1 = line.find(' ');
    const std::string cmd = line.substr(0, sp1);
    if (cmd == "QUIT") return;
    if (sp1 == std::string::npos) {
      if (!net::send_all(fd, "ERR malformed\n")) return;
      continue;
    }
    std::string reply;
    if (cmd == "GET") {
      std::string value;
      const Status st = cli.get(line.substr(sp1 + 1), value);
      if (st == Status::kOk)
        reply = "VALUE " + std::to_string(value.size()) + "\n" + value + "\n";
      else if (st == Status::kNotFound)
        reply = "NOT_FOUND\n";
      else if (st == Status::kBusy)
        reply = "BUSY\n";
      else
        reply = std::string("ERR ") + status_name(st) + "\n";
    } else if (cmd == "PUT") {
      const size_t sp2 = line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) {
        reply = "ERR malformed\n";
      } else {
        const Status st =
            cli.put(line.substr(sp1 + 1, sp2 - sp1 - 1), line.substr(sp2 + 1));
        reply = st == Status::kOk ? "STORED\n"
                                  : std::string("ERR ") + status_name(st) + "\n";
      }
    } else if (cmd == "DEL") {
      const Status st = cli.erase(line.substr(sp1 + 1));
      if (st == Status::kOk)
        reply = "DELETED\n";
      else if (st == Status::kNotFound)
        reply = "NOT_FOUND\n";
      else
        reply = std::string("ERR ") + status_name(st) + "\n";
    } else {
      reply = "ERR unknown_command\n";
    }
    if (!net::send_all(fd, reply)) return;
  }
}

}  // namespace darray::serve
