// TcpGateway: a loopback TCP front end over darray::Client, mostly for poking
// the serve path from external tools and the gateway test. Line protocol,
// memcached-flavored:
//
//   GET <key>\n            → VALUE <len>\n<bytes>\n | NOT_FOUND\n | BUSY\n
//   PUT <key> <value>\n    → STORED\n | ERR <status>\n
//   DEL <key>\n            → DELETED\n | NOT_FOUND\n
//   QUIT\n                 → closes the connection
//
// Built on net::SocketListener (shared with the telemetry server); each
// connection gets its own Client session, handled serially on the accept
// thread.
#pragma once

#include <cstdint>
#include <string>

#include "net/socket_listener.hpp"
#include "serve/client.hpp"

namespace darray::serve {

class TcpGateway {
 public:
  struct Options {
    std::string bind_addr = "127.0.0.1";
    uint16_t port = 0;        // 0: ephemeral, read back via port()
    rt::NodeId node = 0;      // node new sessions attach to
    uint64_t timeout_ns = 2'000'000'000;  // never wedge a TCP client forever
  };

  TcpGateway(KvsService service, Options opts)
      : service_(std::move(service)), opts_(std::move(opts)) {}
  explicit TcpGateway(KvsService service)
      : TcpGateway(std::move(service), Options{}) {}
  ~TcpGateway() { stop(); }

  bool start();
  void stop() { listener_.stop(); }
  uint16_t port() const { return listener_.port(); }

 private:
  void serve_conn(int fd);

  KvsService service_;
  Options opts_;
  net::SocketListener listener_;
};

}  // namespace darray::serve
