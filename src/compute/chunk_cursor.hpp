// Chunked iteration over a DArray extent with communication/compute overlap.
//
// A ChunkCursor walks [begin, end) of a DArray in fixed-size chunks. Each
// next() hands the kernel a View into a private buffer; in overlap mode the
// cursor first issues prefetch_range() for the next `prefetch_depth` buffers,
// so the engine's Tx/Rx/runtime threads stream chunk k+1..k+d in from their
// homes while the application thread's kernel consumes chunk k. The fetch
// pipeline is the existing range/prefetch machinery — the cursor adds no
// threads of its own, it only keeps the read-ahead window full.
//
// Accounting (compute.* in the StatsRegistry): every view bumps
// compute.chunks; a view that covers at least one non-home chunk bumps
// compute.prefetch_hits when the whole extent is already cached at fill time
// and compute.prefetch_misses when the fill has to pay a demand miss.
// Home-only views count neither — local data needs no overlap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/darray.hpp"
#include "obs/compute_stats.hpp"

namespace darray::compute {

// Knobs shared by cursors and collectives. Defaults favour streaming:
// array-chunk-sized buffers with a few chunks of read-ahead in flight.
struct Options {
  uint32_t chunk_elems = 0;     // cursor buffer size in elements; 0 = array chunk size
  uint32_t prefetch_depth = 4;  // buffers of read-ahead kept in flight (overlap mode)
  bool overlap = true;          // false: pure demand fetching (the ablation baseline)
  bool deterministic = false;   // reductions: fixed tree order + pairwise summation
};

// Double buffer backing a ChunkCursor (the DistrArray BufferManager idiom):
// the view handed to the kernel lives in one half while the next fill lands
// in the other, so a view stays valid across one subsequent next().
template <typename T>
class BufferManager {
 public:
  explicit BufferManager(uint32_t elems) {
    bufs_[0].resize(elems);
    bufs_[1].resize(elems);
  }
  // The buffer to fill next; flips the halves.
  T* acquire() {
    cur_ ^= 1;
    return bufs_[cur_].data();
  }

 private:
  std::vector<T> bufs_[2];
  int cur_ = 0;
};

template <typename T>
class ChunkCursor {
 public:
  struct View {
    const T* data = nullptr;
    uint64_t first = 0;  // global index of data[0]
    uint64_t count = 0;
    std::span<const T> span() const { return {data, count}; }
  };

  ChunkCursor(const DArray<T>& a, uint64_t begin, uint64_t end, const Options& opt = {})
      : a_(a),
        pos_(begin),
        end_(end),
        buf_elems_(opt.chunk_elems ? opt.chunk_elems : a.meta().chunk_elems),
        depth_(std::max<uint32_t>(1, opt.prefetch_depth)),
        overlap_(opt.overlap),
        prefetched_to_(begin),
        bufs_(buf_elems_) {
    DARRAY_ASSERT(begin <= end && end <= a.size());
  }

  // Fills `v` with the next chunk; false once the extent is exhausted. The
  // previous view stays valid until the next-but-one call (double buffer).
  bool next(View& v) {
    if (pos_ >= end_) return false;
    const uint64_t count = std::min<uint64_t>(buf_elems_, end_ - pos_);
    if (overlap_) read_ahead(pos_ + count);
    obs::ComputeCounters& c = obs::compute_counters();
    if (covers_remote(pos_, count)) {
      if (a_.range_cached(pos_, count))
        c.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      else
        c.prefetch_misses.fetch_add(1, std::memory_order_relaxed);
    }
    T* buf = bufs_.acquire();
    a_.get_range(pos_, std::span<T>(buf, count));
    v = View{buf, pos_, count};
    pos_ += count;
    c.chunks.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  // Keep [pos, pos + depth × buffer) covered by issued prefetches.
  void read_ahead(uint64_t from) {
    const uint64_t want =
        std::min<uint64_t>(end_, from + uint64_t{depth_} * buf_elems_);
    if (prefetched_to_ < from) prefetched_to_ = from;
    if (want > prefetched_to_) {
      a_.prefetch_range(prefetched_to_, want - prefetched_to_);
      prefetched_to_ = want;
    }
  }

  bool covers_remote(uint64_t first, uint64_t count) const {
    const rt::ArrayMeta& m = a_.meta();
    const rt::NodeId self = this_thread_ctx().node;
    const rt::ChunkId c1 = m.chunk_of(first + count - 1);
    for (rt::ChunkId c = m.chunk_of(first); c <= c1; ++c)
      if (m.home_of_chunk(c) != self) return true;
    return false;
  }

  const DArray<T>& a_;
  uint64_t pos_;
  const uint64_t end_;
  const uint32_t buf_elems_;
  const uint32_t depth_;
  const bool overlap_;
  uint64_t prefetched_to_;
  BufferManager<T> bufs_;
};

}  // namespace darray::compute
