// Chunked array collectives over DArray: dot, norm2, axpy, scale, copy, and a
// row-chunked gemv. Every collective is SPMD — all nodes call it with the same
// arguments in the same order (enforced by matching ReduceBoard sequence
// numbers). Each node reduces/updates only the extents it owns, streaming any
// remote operand through a ChunkCursor so fetches of chunk k+1 overlap the
// kernel on chunk k; scalar partials then combine through a binomial reduction
// tree of kReducePart messages (small sends that ride the comm layer's
// coalescing), and the root broadcasts the total back down the same tree.
//
// Determinism: with Options::deterministic, dot/norm2 switch from one scalar
// partial per node to one partial per *array chunk*, each computed by pairwise
// summation. Chunk partials depend only on the chunk grid, and the root folds
// them in a fixed chunk-indexed pairwise order, so the result is bitwise
// identical across node counts, partitions, and tree shapes.
//
// Mutating collectives (axpy/scale/copy/gemv) end with a tree barrier, so on
// return every node's update is visible and the next collective may run
// immediately — the property power iteration leans on.
#pragma once

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "compute/chunk_cursor.hpp"
#include "runtime/cluster.hpp"
#include "runtime/node.hpp"
#include "runtime/reduce_board.hpp"

namespace darray::compute {

namespace detail {

template <typename T>
uint64_t to_bits(T v) {
  static_assert(sizeof(T) <= sizeof(uint64_t));
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(T));
  return b;
}

template <typename T>
T from_bits(uint64_t b) {
  T v;
  std::memcpy(&v, &b, sizeof(T));
  return v;
}

// One edge of the reduction tree. The sequence number rides in both txn_id
// (the board key) and chunk — the Rx thread routes protocol messages to a
// runtime thread by hdr.chunk, so consecutive collectives spread over them.
inline void send_part(rt::Cluster& cl, rt::NodeId self, rt::NodeId dst, uint32_t seq,
                      uint32_t frag, uint32_t nfrags, uint64_t bits,
                      net::PayloadBuf payload = {}) {
  net::TxRequest t;
  t.dst = static_cast<uint16_t>(dst);
  t.hdr.type = net::MsgType::kReducePart;
  t.hdr.chunk = seq;
  t.hdr.txn_id = seq;
  t.hdr.rkey = frag;
  t.hdr.aux = nfrags;
  t.hdr.addr = bits;
  t.payload = std::move(payload);
  obs::compute_counters().reduce_msgs.fetch_add(1, std::memory_order_relaxed);
  cl.node(self).comm().post(std::move(t));
}

// Binomial tree rooted at node 0: node `self` joins its parent on its lowest
// set bit; its children are self|(1<<r) for r below that bit. Children merge
// in ascending-rank order — a fixed shape for a given node count — and the
// total flows back down the same edges. Returns the combined value everywhere.
template <typename T, typename Merge>
T tree_allreduce(rt::Cluster& cl, rt::NodeId self, uint32_t seq, T value, Merge&& merge) {
  const uint32_t n = cl.num_nodes();
  rt::ReduceBoard& board = cl.node(self).reduce_board();
  uint32_t up_bit = 32;  // bit of the edge to our parent; 32 = we are the root
  for (uint32_t r = 0; (1u << r) < n; ++r) {
    if (self & (1u << r)) {
      send_part(cl, self, self ^ (1u << r), seq, 0, 1, to_bits(value));
      up_bit = r;
      break;
    }
    const uint32_t child = self | (1u << r);
    if (child < n)
      value = merge(value, from_bits<T>(board.await(rt::ReduceBoard::key(seq, child)).bits));
  }
  if (up_bit != 32)  // non-root: the total comes back from the parent
    value = from_bits<T>(board.await(rt::ReduceBoard::key(seq, self ^ (1u << up_bit))).bits);
  uint32_t top = 0;
  while ((1u << top) < n) ++top;
  for (uint32_t r = (up_bit == 32 ? top : up_bit); r-- > 0;) {
    const uint32_t child = self | (1u << r);
    if (child < n) send_part(cl, self, child, seq, 0, 1, to_bits(value));
  }
  return value;
}

// Full-tree sync: returns once every node has entered. Collectives that
// mutate an array end with one so callers may chain dependent collectives.
inline void barrier(rt::Cluster& cl, rt::NodeId self, uint32_t seq) {
  tree_allreduce<uint64_t>(cl, self, seq, 0, [](uint64_t a, uint64_t b) { return a + b; });
}

// --- deterministic mode ------------------------------------------------------

struct ChunkPartial {
  uint64_t chunk;  // array chunk id
  uint64_t bits;   // that chunk's partial, raw element bits
};
static_assert(sizeof(ChunkPartial) == 16, "wire format: 16 bytes per entry");

// Pairwise product-sum with an association fixed by n alone (sequential base
// case ≤ 16, then halving), so equal inputs give bitwise-equal sums no matter
// how the elements were distributed across nodes.
template <typename T>
T pairwise_dot(const T* a, const T* b, uint64_t n) {
  if (n <= 16) {
    T s{};
    for (uint64_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  }
  const uint64_t h = n / 2;
  return pairwise_dot(a, b, h) + pairwise_dot(a + h, b + h, n - h);
}

template <typename T>
T pairwise_fold(const T* v, uint64_t n) {
  if (n <= 16) {
    T s{};
    for (uint64_t i = 0; i < n; ++i) s += v[i];
    return s;
  }
  const uint64_t h = n / 2;
  return pairwise_fold(v, h) + pairwise_fold(v + h, n - h);
}

// Deterministic allreduce: per-chunk partials travel up the same binomial
// tree as opaque payload entries (fragmented at frag_cap entries so a message
// never exceeds the comm layer's send-buffer budget of chunk_elems × 16 B);
// the root scatters them into a dense chunk-indexed vector and folds it
// pairwise — an order independent of node count — then broadcasts the scalar
// back down.
template <typename T>
T det_allreduce(rt::Cluster& cl, rt::NodeId self, uint32_t seq,
                std::vector<ChunkPartial> parts, uint64_t n_chunks, uint32_t frag_cap) {
  const uint32_t n = cl.num_nodes();
  rt::ReduceBoard& board = cl.node(self).reduce_board();
  uint32_t up_bit = 32;
  for (uint32_t r = 0; (1u << r) < n; ++r) {
    if (self & (1u << r)) {
      const uint32_t parent = self ^ (1u << r);
      const uint32_t nfrags = parts.empty()
          ? 1
          : static_cast<uint32_t>((parts.size() + frag_cap - 1) / frag_cap);
      for (uint32_t f = 0; f < nfrags; ++f) {
        const uint64_t b0 = uint64_t{f} * frag_cap;
        const uint64_t cnt = std::min<uint64_t>(frag_cap, parts.size() - b0);
        net::PayloadBuf pl;
        if (cnt) pl.assign(reinterpret_cast<const std::byte*>(parts.data() + b0),
                           cnt * sizeof(ChunkPartial));
        send_part(cl, self, parent, seq, f, nfrags, 0, std::move(pl));
      }
      up_bit = r;
      break;
    }
    const uint32_t child = self | (1u << r);
    if (child < n) {
      uint32_t nfrags = 1;  // corrected from the first fragment's header
      for (uint32_t f = 0; f < nfrags; ++f) {
        rt::ReduceBoard::Part p = board.await(rt::ReduceBoard::key(seq, child, f));
        nfrags = p.frags;
        const uint64_t cnt = p.payload.size() / sizeof(ChunkPartial);
        const uint64_t base = parts.size();
        parts.resize(base + cnt);
        std::memcpy(parts.data() + base, p.payload.data(), cnt * sizeof(ChunkPartial));
      }
    }
  }
  T total{};
  if (up_bit == 32) {
    // Root: each chunk's partial arrived exactly once (chunks have one owner).
    std::vector<T> dense(n_chunks, T{});
    for (const ChunkPartial& e : parts) {
      DARRAY_ASSERT(e.chunk < n_chunks);
      dense[e.chunk] = from_bits<T>(e.bits);
    }
    total = pairwise_fold(dense.data(), dense.size());
  } else {
    total = from_bits<T>(board.await(rt::ReduceBoard::key(seq, self ^ (1u << up_bit))).bits);
  }
  uint32_t top = 0;
  while ((1u << top) < n) ++top;
  for (uint32_t r = (up_bit == 32 ? top : up_bit); r-- > 0;) {
    const uint32_t child = self | (1u << r);
    if (child < n) send_part(cl, self, child, seq, 0, 1, to_bits(total));
  }
  return total;
}

}  // namespace detail

// Global dot product ⟨x, y⟩. Each node streams both operands over its owned
// extent of x (y may be partitioned differently — that is where the cursor's
// overlap earns its keep) and the partials combine through the reduction tree.
template <typename T>
T dot(const DArray<T>& x, const DArray<T>& y, const Options& opt = {}) {
  DARRAY_ASSERT_MSG(x.size() == y.size(), "dot(): operand sizes differ");
  ThreadCtx& ctx = this_thread_ctx();
  rt::Cluster& cl = x.cluster();
  DARRAY_ASSERT(&cl == &y.cluster());
  const rt::NodeId self = ctx.node;
  api_detail::OpSpan span(obs::OpKind::kDot, self, x.meta().id, 0);
  obs::compute_counters().collectives.fetch_add(1, std::memory_order_relaxed);
  const uint32_t seq = cl.node(self).reduce_board().next_seq();
  const uint64_t lo = x.local_begin(self);
  const uint64_t hi = x.local_end(self);

  if (opt.deterministic) {
    // One pairwise partial per array chunk: force the cursor onto the array's
    // chunk grid so every view is exactly one chunk.
    const rt::ArrayMeta& m = x.meta();
    Options det = opt;
    det.chunk_elems = m.chunk_elems;
    ChunkCursor<T> xs(x, lo, hi, det), ys(y, lo, hi, det);
    typename ChunkCursor<T>::View xv, yv;
    std::vector<detail::ChunkPartial> parts;
    while (xs.next(xv)) {
      const bool more = ys.next(yv);
      DARRAY_ASSERT(more && yv.count == xv.count);
      parts.push_back({m.chunk_of(xv.first),
                       detail::to_bits(detail::pairwise_dot(xv.data, yv.data, xv.count))});
    }
    return detail::det_allreduce<T>(cl, self, seq, std::move(parts), m.n_chunks,
                                    m.chunk_elems);
  }

  T partial{};
  ChunkCursor<T> xs(x, lo, hi, opt), ys(y, lo, hi, opt);
  typename ChunkCursor<T>::View xv, yv;
  while (xs.next(xv)) {
    const bool more = ys.next(yv);
    DARRAY_ASSERT(more && yv.count == xv.count);
    for (uint64_t i = 0; i < xv.count; ++i) partial += xv.data[i] * yv.data[i];
  }
  return detail::tree_allreduce(cl, self, seq, partial,
                                [](T a, T b) { return a + b; });
}

// Euclidean norm ‖x‖₂ = sqrt(⟨x, x⟩).
template <typename T>
double norm2(const DArray<T>& x, const Options& opt = {}) {
  api_detail::OpSpan span(obs::OpKind::kNorm2, this_thread_ctx().node, x.meta().id, 0);
  return std::sqrt(static_cast<double>(dot(x, x, opt)));
}

// y ← α·x + y. Each node updates the y extents it owns, streaming x over the
// same index range (remote when the partitions differ). Barrier on return.
template <typename T>
void axpy(T alpha, const DArray<T>& x, const DArray<T>& y, const Options& opt = {}) {
  DARRAY_ASSERT_MSG(x.size() == y.size(), "axpy(): operand sizes differ");
  ThreadCtx& ctx = this_thread_ctx();
  rt::Cluster& cl = y.cluster();
  const rt::NodeId self = ctx.node;
  api_detail::OpSpan span(obs::OpKind::kAxpy, self, y.meta().id, 0);
  obs::compute_counters().collectives.fetch_add(1, std::memory_order_relaxed);
  const uint32_t seq = cl.node(self).reduce_board().next_seq();
  ChunkCursor<T> xs(x, y.local_begin(self), y.local_end(self), opt);
  typename ChunkCursor<T>::View xv;
  std::vector<T> yb;
  while (xs.next(xv)) {
    yb.resize(xv.count);
    y.get_range(xv.first, std::span<T>(yb));
    for (uint64_t i = 0; i < xv.count; ++i) yb[i] += alpha * xv.data[i];
    y.set_range(xv.first, std::span<const T>(yb));
  }
  detail::barrier(cl, self, seq);
}

// x ← α·x over the extents each node owns. Barrier on return.
template <typename T>
void scale(T alpha, const DArray<T>& x, const Options& opt = {}) {
  ThreadCtx& ctx = this_thread_ctx();
  rt::Cluster& cl = x.cluster();
  const rt::NodeId self = ctx.node;
  api_detail::OpSpan span(obs::OpKind::kScale, self, x.meta().id, 0);
  obs::compute_counters().collectives.fetch_add(1, std::memory_order_relaxed);
  const uint32_t seq = cl.node(self).reduce_board().next_seq();
  const uint64_t lo = x.local_begin(self);
  const uint64_t hi = x.local_end(self);
  const uint64_t step = opt.chunk_elems ? opt.chunk_elems : x.meta().chunk_elems;
  std::vector<T> buf;
  for (uint64_t i = lo; i < hi; i += step) {
    const uint64_t n = std::min<uint64_t>(step, hi - i);
    buf.resize(n);
    x.get_range(i, std::span<T>(buf));
    for (T& v : buf) v = alpha * v;
    x.set_range(i, std::span<const T>(buf));
    obs::compute_counters().chunks.fetch_add(1, std::memory_order_relaxed);
  }
  detail::barrier(cl, self, seq);
}

// dst ← src (equal sizes; partitions may differ). Barrier on return.
template <typename T>
void copy(const DArray<T>& src, const DArray<T>& dst, const Options& opt = {}) {
  DARRAY_ASSERT_MSG(src.size() == dst.size(), "copy(): operand sizes differ");
  ThreadCtx& ctx = this_thread_ctx();
  rt::Cluster& cl = dst.cluster();
  const rt::NodeId self = ctx.node;
  const uint32_t seq = cl.node(self).reduce_board().next_seq();
  ChunkCursor<T> ss(src, dst.local_begin(self), dst.local_end(self), opt);
  typename ChunkCursor<T>::View sv;
  while (ss.next(sv)) dst.set_range(sv.first, std::span<const T>(sv.data, sv.count));
  detail::barrier(cl, self, seq);
}

// y ← α·A·x + β·y for a row-major n_rows × n_cols matrix stored flat in A.
// A's partition must be row-aligned (each node owns whole rows); each node
// computes its rows' results, streaming x exactly once through a cursor while
// the rows' matrix blocks are read from the owned (local) extent. Barrier on
// return.
template <typename T>
void gemv(T alpha, const DArray<T>& A, const DArray<T>& x, T beta, const DArray<T>& y,
          uint64_t n_rows, uint64_t n_cols, const Options& opt = {}) {
  DARRAY_ASSERT_MSG(A.size() == n_rows * n_cols, "gemv(): A size != n_rows × n_cols");
  DARRAY_ASSERT_MSG(x.size() == n_cols && y.size() == n_rows,
                    "gemv(): vector sizes do not match the matrix shape");
  ThreadCtx& ctx = this_thread_ctx();
  rt::Cluster& cl = A.cluster();
  const rt::NodeId self = ctx.node;
  api_detail::OpSpan span(obs::OpKind::kGemv, self, A.meta().id, 0);
  obs::compute_counters().collectives.fetch_add(1, std::memory_order_relaxed);
  const uint32_t seq = cl.node(self).reduce_board().next_seq();
  const uint64_t alo = A.local_begin(self);
  const uint64_t ahi = A.local_end(self);
  DARRAY_ASSERT_MSG(alo % n_cols == 0 && ahi % n_cols == 0,
                    "gemv(): A's partition must be row-aligned "
                    "(size chunks so chunk_elems divides n_cols)");
  const uint64_t r0 = alo / n_cols;
  const uint64_t r1 = ahi / n_cols;

  std::vector<T> yb(r1 - r0, T{});
  if (beta != T{}) {
    y.get_range(r0, std::span<T>(yb));
    for (T& v : yb) v = beta * v;
  }
  // Row-chunked: outer loop streams x's column blocks once (overlapped);
  // the inner loop visits every owned row's matching block, which is local.
  ChunkCursor<T> xs(x, 0, n_cols, opt);
  typename ChunkCursor<T>::View xv;
  std::vector<T> ablk;
  while (xs.next(xv)) {
    ablk.resize(xv.count);
    for (uint64_t r = r0; r < r1; ++r) {
      A.read_bulk(r * n_cols + xv.first, ablk.data(), xv.count);
      T acc{};
      for (uint64_t k = 0; k < xv.count; ++k) acc += ablk[k] * xv.data[k];
      yb[r - r0] += alpha * acc;
    }
  }
  if (r1 > r0) y.set_range(r0, std::span<const T>(yb));
  detail::barrier(cl, self, seq);
}

}  // namespace darray::compute
