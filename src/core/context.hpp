// Application-thread binding. In a real deployment each process is one node;
// in the simulation an application thread declares which node it runs on via
// bind_thread(). The context also carries the thread's pinned chunks (§4.1
// Pin interface): a pinned chunk holds a dentry reference, so get/set/apply
// on it skip every atomic in the fast path.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"
#include "runtime/cluster.hpp"
#include "runtime/dentry.hpp"
#include "runtime/types.hpp"

namespace darray {

struct PinEntry {
  bool valid = false;
  rt::ArrayId array = 0;
  rt::ChunkId chunk = 0;
  std::byte* data = nullptr;
  std::byte* combine = nullptr;               // null on home/Dirty pins
  std::atomic<uint64_t>* bitmap = nullptr;
  rt::DentryState state = rt::DentryState::kInvalid;
  uint16_t op_id = rt::kNoOp;
  rt::Dentry* dentry = nullptr;
};

inline constexpr size_t kMaxPins = 8;

struct ThreadCtx {
  rt::Cluster* cluster = nullptr;
  rt::NodeId node = rt::kNoNode;
  std::array<PinEntry, kMaxPins> pins{};

  PinEntry* find_pin(rt::ArrayId array, rt::ChunkId chunk) {
    for (PinEntry& p : pins)
      if (p.valid && p.array == array && p.chunk == chunk) return &p;
    return nullptr;
  }

  PinEntry* free_pin_slot() {
    for (PinEntry& p : pins)
      if (!p.valid) return &p;
    return nullptr;
  }
};

inline ThreadCtx& this_thread_ctx() {
  thread_local ThreadCtx ctx;
  return ctx;
}

// Declare that the calling thread is an application thread of `node`.
inline void bind_thread(rt::Cluster& cluster, rt::NodeId node) {
  DARRAY_ASSERT(node < cluster.num_nodes());
  ThreadCtx& ctx = this_thread_ctx();
  ctx.cluster = &cluster;
  ctx.node = node;
}

}  // namespace darray
