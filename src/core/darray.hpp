// DArray<T>: the paper's public API (Fig. 3).
//
//   DArray<double> a = DArray<double>::create(cluster, n);        // constructor
//   a.get(i); a.set(i, v);                                        // Read/Write
//   { auto g = a.scoped_wlock(i); ... }                           // R/W locks
//   auto add = a.register_op(+[](double& x, double d){x+=d;}, 0.0);
//   a.apply(i, add, 0.5);                                         // Operate
//   { auto p = a.scoped_pin(i, PinMode::kRead); ... }             // hint
//
// The raw verbs (rlock/wlock/unlock, pin/unpin) remain for code that manages
// lifetimes itself; the scoped_* guards are the recommended form. Every op is
// traced as a span (obs/trace.hpp) when tracing is enabled: the correlation
// id minted at the API boundary rides the LocalRequest into the runtime and
// across the wire, so a slow get() can be attributed layer by layer.
//
// The handle is a cheap value type; every call uses the calling thread's
// bound node (see context.hpp). Element types must be trivially copyable and
// 1/2/4/8 bytes (DESIGN.md §6).
#pragma once

#include <concepts>
#include <cstring>
#include <span>
#include <type_traits>

#include "common/histogram.hpp"
#include "common/status.hpp"
#include "core/context.hpp"
#include "obs/inflight.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/trace.hpp"
#include "runtime/array_meta.hpp"
#include "runtime/combine.hpp"
#include "runtime/node.hpp"

namespace darray {

using rt::PinMode;

template <typename T>
class DArray;

// Typed operator id from DArray<T>::register_op. Binding the element type at
// registration makes a cross-array apply() with the wrong element type a
// compile error instead of a silent bit-reinterpretation.
template <typename T>
class OpHandle {
 public:
  OpHandle() = default;
  // The raw registry id, for the escape-hatch overloads that still take one
  // (pin()/scoped_pin() with PinMode::kOperate, apply(index, uint16_t, T)).
  uint16_t id() const { return id_; }

 private:
  friend class DArray<T>;
  explicit OpHandle(uint16_t id) : id_(id) {}
  uint16_t id_ = rt::kNoOp;
};

namespace api_detail {

// RAII trace span for one public-API op: mints the correlation id, records
// kOpBegin/kOpEnd, feeds the per-{op × node} latency histogram at span end,
// and registers the op in the in-flight registry so the slow-op watchdog can
// see it. With tracing compiled out or disabled, corr stays 0 and both ends
// cost one branch on a cached bool.
struct OpSpan {
  uint64_t corr = 0;
  obs::OpKind kind;
  uint16_t node;
  uint64_t index;
  uint64_t t0 = 0;
  bool inflight = false;

  OpSpan(obs::OpKind k, uint32_t node_id, uint32_t array, uint64_t idx)
      : kind(k), node(static_cast<uint16_t>(node_id)), index(idx) {
    if (obs::tracing_enabled()) {
      corr = obs::new_corr_id();
      t0 = now_ns();
      obs::record(obs::Ev::kOpBegin, corr, static_cast<uint8_t>(kind), node, array, index);
      inflight = obs::inflight_begin(corr, kind, node, index, t0);
    }
  }
  ~OpSpan() {
    if (corr != 0) {
      obs::record(obs::Ev::kOpEnd, corr, static_cast<uint8_t>(kind), node, 0, index);
      obs::record_op_latency(kind, node, now_ns() - t0);
      if (inflight) obs::inflight_end();
    }
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;
};

}  // namespace api_detail

template <typename T>
class DArray {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8,
                "DArray elements must be 1/2/4/8 bytes");

 public:
  DArray() = default;

  // Collective constructor (call once; the handle may be shared/copied).
  // `partition` optionally gives each node's first element offset
  // (chunk-aligned), matching the paper's partition_offset argument.
  static DArray create(rt::Cluster& cluster, uint64_t n,
                       std::span<const uint64_t> partition = {}) {
    DArray a;
    a.cluster_ = &cluster;
    a.meta_ = cluster.create_array(n, sizeof(T), partition);
    return a;
  }

  uint64_t size() const { return meta_->n_elems; }
  const rt::ArrayMeta& meta() const { return *meta_; }
  rt::Cluster& cluster() const { return *cluster_; }

  // Element range owned by `node` (for owner-parallel iteration).
  uint64_t local_begin(rt::NodeId node) const { return meta_->local_begin(node); }
  uint64_t local_end(rt::NodeId node) const { return meta_->local_end(node); }

  // --- Read / Write ----------------------------------------------------------

  T get(uint64_t index) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kGet, ctx.node, meta_->id, index);
    const rt::ChunkId c = meta_->chunk_of(index);
    const uint32_t off = meta_->offset_in_chunk(index);
    if (const PinEntry* p = ctx.find_pin(meta_->id, c)) {
      DARRAY_ASSERT_MSG(rt::dentry_readable(p->state), "get() through a non-read pin");
      return load_elem(p->data, off);
    }
    rt::Dentry& d = dentry(ctx, c);
    d.acquire_ref();  // Fig. 4 fast path
    if (rt::dentry_readable(d.state.load(std::memory_order_acquire))) {
      const T v = load_elem(d.data.load(std::memory_order_acquire), off);
      d.release_ref();
      return v;
    }
    d.release_ref();
    // Slow path: the runtime performs the read at grant time and returns the
    // value — one miss, one completed access, no retry loop.
    return from_bits(miss(ctx, rt::LocalRequest::Kind::kRead, c, index, rt::kNoOp, 0,
                          span.corr));
  }

  void set(uint64_t index, T value) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kSet, ctx.node, meta_->id, index);
    const rt::ChunkId c = meta_->chunk_of(index);
    const uint32_t off = meta_->offset_in_chunk(index);
    if (const PinEntry* p = ctx.find_pin(meta_->id, c)) {
      DARRAY_ASSERT_MSG(rt::dentry_writable(p->state), "set() through a non-write pin");
      store_elem(p->data, off, value);
      return;
    }
    rt::Dentry& d = dentry(ctx, c);
    d.acquire_ref();
    if (rt::dentry_writable(d.state.load(std::memory_order_acquire))) {
      store_elem(d.data.load(std::memory_order_acquire), off, value);
      d.release_ref();
      return;
    }
    d.release_ref();
    miss(ctx, rt::LocalRequest::Kind::kWrite, c, index, rt::kNoOp, to_bits(value),
         span.corr);
  }

  // --- bulk transfers ---------------------------------------------------------
  // Copy `count` elements starting at `index` out of / into the array,
  // acquiring each covered chunk once (not per element). Atomicity is per
  // chunk, like a sequence of get/set.

  void read_bulk(uint64_t index, T* out, uint64_t count) const {
    bulk_op(index, count, [&](std::byte* base, uint32_t off, uint64_t n, uint64_t done) {
      std::memcpy(out + done, base + size_t{off} * sizeof(T), n * sizeof(T));
    }, /*write=*/false);
  }

  void write_bulk(uint64_t index, const T* src, uint64_t count) const {
    bulk_op(index, count, [&](std::byte* base, uint32_t off, uint64_t n, uint64_t done) {
      std::memcpy(base + size_t{off} * sizeof(T), src + done, n * sizeof(T));
    }, /*write=*/true);
  }

  // Span-typed range accessors: the bounds-checked face of read_bulk /
  // write_bulk. Copy out.size() (src.size()) elements starting at `first`,
  // acquiring each covered chunk once; atomicity is per chunk.
  //
  // Out-of-bounds extents return Status::kOutOfRange instead of aborting —
  // the serving path (src/serve) reflects bad client extents as typed errors,
  // so the old DARRAY_ASSERT here would turn one malformed request into a
  // cluster-wide crash. Callers that want the fail-fast behaviour assert on
  // the returned Status.

  Status get_range(uint64_t first, std::span<T> out) const {
    if (out.size() > size() || first > size() - out.size()) return Status::kOutOfRange;
    if (out.empty()) return Status::kOk;  // no chunks touched, no op recorded
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kGetRange, ctx.node, meta_->id, first);
    bulk_op(first, out.size(),
            [&](std::byte* base, uint32_t off, uint64_t n, uint64_t done) {
              std::memcpy(out.data() + done, base + size_t{off} * sizeof(T), n * sizeof(T));
            },
            /*write=*/false, span.corr);
    return Status::kOk;
  }

  Status set_range(uint64_t first, std::span<const T> src) const {
    if (src.size() > size() || first > size() - src.size()) return Status::kOutOfRange;
    if (src.empty()) return Status::kOk;  // no chunks touched, no op recorded
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kSetRange, ctx.node, meta_->id, first);
    bulk_op(first, src.size(),
            [&](std::byte* base, uint32_t off, uint64_t n, uint64_t done) {
              std::memcpy(base + size_t{off} * sizeof(T), src.data() + done, n * sizeof(T));
            },
            /*write=*/true, span.corr);
    return Status::kOk;
  }

  // Non-blocking, chunk-granular read-ahead over [first, first+count): submit
  // a best-effort prefetch for every covered non-home chunk that is cold. The
  // engine treats these exactly like its own sequential read-ahead (they are
  // dropped if the chunk is busy or the cache is full), so a later get_range
  // over the same extent finds warm chunks instead of paying a demand miss.
  // This is the hook the compute layer's ChunkCursor overlaps fetches with
  // the user kernel through (docs/compute.md).
  void prefetch_range(uint64_t first, uint64_t count) const {
    if (count == 0) return;
    DARRAY_ASSERT_MSG(count <= size() && first <= size() - count,
                      "prefetch_range() past the end of the array");
    ThreadCtx& ctx = this_thread_ctx();
    rt::NodeRuntime& node = ctx.cluster->node(ctx.node);
    const rt::NodeArrayState* as = node.array_state(meta_->id);
    const rt::ChunkId c0 = meta_->chunk_of(first);
    const rt::ChunkId c1 = meta_->chunk_of(first + count - 1);
    for (rt::ChunkId c = c0; c <= c1; ++c) {
      if (meta_->home_of_chunk(c) == ctx.node) continue;
      // Rough pre-filter; the owning runtime thread re-checks before issuing.
      if (as->dentries[c].state.load(std::memory_order_relaxed) !=
          rt::DentryState::kInvalid)
        continue;
      auto* r = new rt::LocalRequest();  // heap-owned: no completion, engine deletes
      r->kind = rt::LocalRequest::Kind::kPrefetch;
      r->array = meta_->id;
      r->chunk = c;
      node.submit_local(r);
    }
  }

  // Advisory probe: true when every chunk covering [first, first+count) is
  // readable right now (pinned by this thread, or a readable dentry). Relaxed
  // loads, no references taken — the answer can go stale immediately, so this
  // is only good for accounting (prefetch hit/miss) and heuristics.
  bool range_cached(uint64_t first, uint64_t count) const {
    if (count == 0) return true;
    DARRAY_ASSERT(count <= size() && first <= size() - count);
    ThreadCtx& ctx = this_thread_ctx();
    const rt::NodeArrayState* as = ctx.cluster->node(ctx.node).array_state(meta_->id);
    const rt::ChunkId c0 = meta_->chunk_of(first);
    const rt::ChunkId c1 = meta_->chunk_of(first + count - 1);
    for (rt::ChunkId c = c0; c <= c1; ++c) {
      if (ctx.find_pin(meta_->id, c)) continue;
      if (!rt::dentry_readable(as->dentries[c].state.load(std::memory_order_relaxed)))
        return false;
    }
    return true;
  }

  // Set every element of [begin, end) to `value` (chunk-at-a-time).
  void fill(uint64_t begin, uint64_t end, T value) const {
    DARRAY_ASSERT(begin <= end && end <= size());
    bulk_op(begin, end - begin,
            [&](std::byte* base, uint32_t off, uint64_t n, uint64_t) {
              for (uint64_t k = 0; k < n; ++k)
                std::memcpy(base + size_t{off + k} * sizeof(T), &value, sizeof(T));
            },
            /*write=*/true);
  }

  // Fold [begin, end) left-to-right with `f`, starting from `init`
  // (chunk-at-a-time snapshot semantics, like a sequence of get()).
  template <typename F>
  T reduce(uint64_t begin, uint64_t end, T init, F&& f) const {
    DARRAY_ASSERT(begin <= end && end <= size());
    T acc = init;
    bulk_op(begin, end - begin,
            [&](std::byte* base, uint32_t off, uint64_t n, uint64_t) {
              for (uint64_t k = 0; k < n; ++k) {
                T v;
                std::memcpy(&v, base + size_t{off + k} * sizeof(T), sizeof(T));
                acc = f(acc, v);
              }
            },
            /*write=*/false);
    return acc;
  }

  // --- Operate (§4.3) ---------------------------------------------------------

  // Register an associative + commutative operator; `identity` seeds combine
  // buffers (0 for add, numeric_limits::max() for min, ...). The returned
  // handle is valid cluster-wide and carries the element type, so applying it
  // through a differently-typed array fails to compile.
  OpHandle<T> register_op(void (*fn)(T& acc, T operand), T identity) const {
    rt::OpDesc desc;
    desc.fn = [fn](void* acc, const void* operand) {
      T tmp;
      std::memcpy(&tmp, operand, sizeof(T));
      fn(*static_cast<T*>(acc), tmp);
    };
    desc.identity_bits = 0;
    std::memcpy(&desc.identity_bits, &identity, sizeof(T));
    desc.elem_size = sizeof(T);
    return OpHandle<T>(cluster_->register_op(std::move(desc)));
  }

  void apply(uint64_t index, OpHandle<T> op, T operand) const {
    apply(index, op.id(), operand);
  }

  // A handle registered for a different element type is a bug: deleting the
  // exact-match template turns it into a direct compile error naming both
  // element types instead of a missing-overload wall.
  template <typename U, typename V>
    requires(!std::same_as<U, T>)
  void apply(uint64_t index, OpHandle<U> op, V operand) const = delete;

  void apply(uint64_t index, uint16_t op_id, T operand) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kApply, ctx.node, meta_->id, index);
    const rt::ChunkId c = meta_->chunk_of(index);
    const uint32_t off = meta_->offset_in_chunk(index);
    const rt::OpDesc& op = cluster_->op(op_id);
    DARRAY_ASSERT(op.elem_size == sizeof(T));
    if (const PinEntry* p = ctx.find_pin(meta_->id, c)) {
      apply_via_pin(*p, off, op, op_id, operand);
      return;
    }
    rt::Dentry& d = dentry(ctx, c);
    d.acquire_ref();
    const rt::DentryState s = d.state.load(std::memory_order_acquire);
    if (s == rt::DentryState::kWrite) {
      // Exclusive permission: read-modify-write straight into the data.
      rt::atomic_apply(d.data.load(std::memory_order_acquire) + size_t{off} * sizeof(T),
                       op, &operand);
      d.release_ref();
      return;
    }
    if (s == rt::DentryState::kOperated &&
        d.op_id.load(std::memory_order_acquire) == op_id) {
      if (std::byte* cb = d.combine.load(std::memory_order_acquire)) {
        // Remote participant: fold into the combine buffer (Fig. 10).
        rt::CombineView view{cb, d.combine_bitmap.load(std::memory_order_acquire),
                             meta_->chunk_elems};
        rt::combine_into(view, off, op, &operand);
      } else {
        // Home participant: reduce directly into the subarray.
        rt::atomic_apply(d.data.load(std::memory_order_acquire) + size_t{off} * sizeof(T),
                         op, &operand);
      }
      d.release_ref();
      return;
    }
    d.release_ref();
    miss(ctx, rt::LocalRequest::Kind::kOperate, c, index, op_id, to_bits(operand),
         span.corr);
  }

  // --- Concurrency control -----------------------------------------------------

  void rlock(uint64_t index) const {
    lock_op(index, rt::LocalRequest::Kind::kLockAcq, false, obs::OpKind::kRlock);
  }
  void wlock(uint64_t index) const {
    lock_op(index, rt::LocalRequest::Kind::kLockAcq, true, obs::OpKind::kWlock);
  }
  void unlock(uint64_t index) const {
    lock_op(index, rt::LocalRequest::Kind::kLockRel, false, obs::OpKind::kUnlock);
  }

  // Move-only RAII guards over the raw lock/pin verbs: release on scope exit
  // (including exceptional exit), or early via unlock()/release(). The guard
  // holds a copy of this handle, so it may outlive the DArray object (though
  // not the cluster) like any other handle copy.
  class ScopedLock {
   public:
    ScopedLock(ScopedLock&& o) noexcept : a_(o.a_), index_(o.index_), held_(o.held_) {
      o.held_ = false;
    }
    ScopedLock& operator=(ScopedLock&& o) noexcept {
      if (this != &o) {
        unlock();
        a_ = o.a_;
        index_ = o.index_;
        held_ = o.held_;
        o.held_ = false;
      }
      return *this;
    }
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;
    ~ScopedLock() { unlock(); }

    uint64_t index() const { return index_; }
    bool held() const { return held_; }
    void unlock() {
      if (held_) {
        held_ = false;
        a_.unlock(index_);
      }
    }

   private:
    friend class DArray;
    ScopedLock(const DArray& a, uint64_t index) : a_(a), index_(index), held_(true) {}
    DArray a_;
    uint64_t index_;
    bool held_;
  };

  [[nodiscard]] ScopedLock scoped_rlock(uint64_t index) const {
    rlock(index);
    return ScopedLock(*this, index);
  }
  [[nodiscard]] ScopedLock scoped_wlock(uint64_t index) const {
    wlock(index);
    return ScopedLock(*this, index);
  }

  // --- Optimization hint (§4.1 Pin) ----------------------------------------------

  // Hold the chunk containing `index` in `mode` until unpin(). While pinned,
  // get/set/apply on the chunk run with zero atomics. Returns false only if
  // the thread's pin slots (kMaxPins) are exhausted.
  bool pin(uint64_t index, PinMode mode, uint16_t op_id = rt::kNoOp) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kPin, ctx.node, meta_->id, index);
    const rt::ChunkId c = meta_->chunk_of(index);
    if (ctx.find_pin(meta_->id, c)) return true;  // already pinned by this thread
    PinEntry* slot = ctx.free_pin_slot();
    if (!slot) return false;
    rt::Dentry& d = dentry(ctx, c);
    d.acquire_ref();
    const rt::DentryState s = d.state.load(std::memory_order_acquire);
    if (pin_satisfied(s, d, mode, op_id)) {
      record_pin(slot, d, c, s);
      return true;  // reference intentionally kept until unpin()
    }
    d.release_ref();
    // The runtime grants the permission, takes the reference on our behalf,
    // and reports the granted state.
    rt::LocalRequest r;
    r.kind = rt::LocalRequest::Kind::kPin;
    r.pin_mode = mode;
    r.array = meta_->id;
    r.chunk = c;
    r.index = index;
    r.op_id = op_id;
    r.trace_id = span.corr;
    ctx.cluster->node(ctx.node).submit_local(&r);
    r.done.wait();
    record_pin(slot, d, c, r.granted);
    return true;
  }

  void unpin(uint64_t index) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(obs::OpKind::kUnpin, ctx.node, meta_->id, index);
    const rt::ChunkId c = meta_->chunk_of(index);
    PinEntry* p = ctx.find_pin(meta_->id, c);
    DARRAY_ASSERT_MSG(p != nullptr, "unpin() of a chunk this thread never pinned");
    p->valid = false;
    p->dentry->release_ref();
  }

  // Move-only pin guard. Pinning can fail (the thread's pin slots are a fixed
  // budget), so the guard is truthy only when it actually holds a pin; ops
  // fall back to the normal path when it doesn't.
  class ScopedPin {
   public:
    ScopedPin(ScopedPin&& o) noexcept : a_(o.a_), index_(o.index_), held_(o.held_) {
      o.held_ = false;
    }
    ScopedPin& operator=(ScopedPin&& o) noexcept {
      if (this != &o) {
        release();
        a_ = o.a_;
        index_ = o.index_;
        held_ = o.held_;
        o.held_ = false;
      }
      return *this;
    }
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;
    ~ScopedPin() { release(); }

    explicit operator bool() const { return held_; }
    bool pinned() const { return held_; }
    uint64_t index() const { return index_; }
    void release() {
      if (held_) {
        held_ = false;
        a_.unpin(index_);
      }
    }

   private:
    friend class DArray;
    ScopedPin(const DArray& a, uint64_t index, bool held)
        : a_(a), index_(index), held_(held) {}
    DArray a_;
    uint64_t index_;
    bool held_;
  };

  [[nodiscard]] ScopedPin scoped_pin(uint64_t index, PinMode mode,
                                     uint16_t op_id = rt::kNoOp) const {
    return ScopedPin(*this, index, pin(index, mode, op_id));
  }

 private:
  // Visit [index, index+count) chunk by chunk with the chunk reference held.
  template <typename Fn>
  void bulk_op(uint64_t index, uint64_t count, Fn&& fn, bool write,
               uint64_t corr = 0) const {
    ThreadCtx& ctx = this_thread_ctx();
    uint64_t done = 0;
    while (done < count) {
      const uint64_t i = index + done;
      const rt::ChunkId c = meta_->chunk_of(i);
      const uint32_t off = meta_->offset_in_chunk(i);
      const uint64_t in_chunk = std::min<uint64_t>(count - done, meta_->chunk_elems - off);
      if (const PinEntry* p = ctx.find_pin(meta_->id, c)) {
        // A range that straddles into a chunk this thread pinned must satisfy
        // the pin's granted permission, same contract as get()/set(). Falling
        // through to the runtime instead would deadlock: the pin's own
        // reference blocks the drain the permission upgrade needs. Before
        // this check, a set_range straddling into a read-pinned chunk wrote
        // into the Shared copy and the writes were silently lost.
        DARRAY_ASSERT_MSG(write ? rt::dentry_writable(p->state)
                                : rt::dentry_readable(p->state),
                          write ? "range write through a non-write pin"
                                : "range read through a non-read pin");
        fn(p->data, off, in_chunk, done);
        done += in_chunk;
        continue;
      }
      rt::Dentry& d = dentry(ctx, c);
      d.acquire_ref();
      const rt::DentryState s = d.state.load(std::memory_order_acquire);
      if (write ? rt::dentry_writable(s) : rt::dentry_readable(s)) {
        fn(d.data.load(std::memory_order_acquire), off, in_chunk, done);
        d.release_ref();
        done += in_chunk;
        continue;
      }
      d.release_ref();
      // Pin the chunk through the runtime (which holds the reference for us),
      // run the bulk copy under it, then release.
      rt::LocalRequest r;
      r.kind = rt::LocalRequest::Kind::kPin;
      r.pin_mode = write ? PinMode::kWrite : PinMode::kRead;
      r.array = meta_->id;
      r.chunk = c;
      r.index = i;
      r.trace_id = corr;
      ctx.cluster->node(ctx.node).submit_local(&r);
      r.done.wait();
      fn(d.data.load(std::memory_order_acquire), off, in_chunk, done);
      d.release_ref();
      done += in_chunk;
    }
  }

  static T from_bits(uint64_t bits) {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }
  static uint64_t to_bits(T v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  // Element loads/stores are atomic: application fast paths, the runtime's
  // perform-at-grant path, and atomic_apply may hit the same element.
  static T load_elem(const std::byte* base, uint32_t off) {
    return from_bits(rt::atomic_load_elem(base + size_t{off} * sizeof(T), sizeof(T)));
  }
  static void store_elem(std::byte* base, uint32_t off, T v) {
    rt::atomic_store_elem(base + size_t{off} * sizeof(T), sizeof(T), to_bits(v));
  }

  rt::Dentry& dentry(ThreadCtx& ctx, rt::ChunkId c) const {
    DARRAY_ASSERT_MSG(ctx.cluster == cluster_, "thread not bound to this cluster");
    rt::NodeArrayState* as = ctx.cluster->node(ctx.node).array_state(meta_->id);
    return as->dentries[c];
  }

  // Submit a slow-path access; the runtime performs it at grant time. For
  // kRead the returned bits are the element value.
  uint64_t miss(ThreadCtx& ctx, rt::LocalRequest::Kind kind, rt::ChunkId c, uint64_t index,
                uint16_t op_id = rt::kNoOp, uint64_t operand = 0, uint64_t corr = 0) const {
    rt::LocalRequest r;
    r.kind = kind;
    r.array = meta_->id;
    r.chunk = c;
    r.index = index;
    r.op_id = op_id;
    r.operand = operand;
    r.trace_id = corr;
    ctx.cluster->node(ctx.node).submit_local(&r);
    r.done.wait();
    return r.operand;
  }

  void record_pin(PinEntry* slot, rt::Dentry& d, rt::ChunkId c, rt::DentryState granted) const {
    slot->valid = true;
    slot->array = meta_->id;
    slot->chunk = c;
    slot->data = d.data.load(std::memory_order_acquire);
    slot->combine = d.combine.load(std::memory_order_acquire);
    slot->bitmap = d.combine_bitmap.load(std::memory_order_acquire);
    slot->state = granted;
    slot->op_id = d.op_id.load(std::memory_order_acquire);
    slot->dentry = &d;
  }

  void lock_op(uint64_t index, rt::LocalRequest::Kind kind, bool write,
               obs::OpKind span_kind) const {
    ThreadCtx& ctx = this_thread_ctx();
    api_detail::OpSpan span(span_kind, ctx.node, meta_->id, index);
    rt::LocalRequest r;
    r.kind = kind;
    r.lock_write = write ? 1 : 0;
    r.array = meta_->id;
    r.chunk = meta_->chunk_of(index);
    r.index = index;
    r.trace_id = span.corr;
    ctx.cluster->node(ctx.node).submit_local(&r);
    r.done.wait();
  }

  void apply_via_pin(const PinEntry& p, uint32_t off, const rt::OpDesc& op, uint16_t op_id,
                     T operand) const {
    if (p.state == rt::DentryState::kWrite) {
      rt::atomic_apply(p.data + size_t{off} * sizeof(T), op, &operand);
      return;
    }
    DARRAY_ASSERT_MSG(p.state == rt::DentryState::kOperated && p.op_id == op_id,
                      "apply() through an incompatible pin");
    if (p.combine) {
      rt::CombineView view{p.combine, p.bitmap, meta_->chunk_elems};
      rt::combine_into(view, off, op, &operand);
    } else {
      rt::atomic_apply(p.data + size_t{off} * sizeof(T), op, &operand);
    }
  }

  static bool pin_satisfied(rt::DentryState s, rt::Dentry& d, PinMode mode, uint16_t op_id) {
    switch (mode) {
      case PinMode::kRead: return rt::dentry_readable(s);
      case PinMode::kWrite: return rt::dentry_writable(s);
      case PinMode::kOperate:
        return s == rt::DentryState::kWrite ||
               (s == rt::DentryState::kOperated &&
                d.op_id.load(std::memory_order_acquire) == op_id);
    }
    return false;
  }

  rt::Cluster* cluster_ = nullptr;
  const rt::ArrayMeta* meta_ = nullptr;
};

}  // namespace darray
