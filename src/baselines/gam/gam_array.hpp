// GAM-like baseline (Cai et al., VLDB'18): a cache-coherent distributed
// memory whose data access path is LOCK-BASED — the strawman of the paper's
// §4.1. Every get/set/atomic acquires the chunk's mutex, which (a) adds lock
// overhead to cache-hit accesses and (b) admits only one application thread
// per chunk at a time. Atomic read-modify-write operations acquire exclusive
// (write) ownership of the chunk, GAM's design that the Operate interface is
// measured against (Fig. 12c/13c/14).
//
// The coherence substrate is shared with DArray (both systems implement a
// directory protocol over RDMA; the paper's comparison is about the access
// path and the Operate semantics, not the directory plumbing).
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "common/spinlock.hpp"
#include "core/darray.hpp"

namespace darray::gam {

template <typename T>
class GamArray {
 public:
  static GamArray create(rt::Cluster& cluster, uint64_t n) {
    GamArray a;
    a.inner_ = DArray<T>::create(cluster, n);
    const uint64_t n_chunks = a.inner_.meta().n_chunks;
    a.locks_ = std::make_shared<std::vector<PerNodeLocks>>(cluster.num_nodes());
    for (auto& pl : *a.locks_) pl.mu = std::make_unique<SpinLock[]>(n_chunks);
    return a;
  }

  uint64_t size() const { return inner_.size(); }
  uint64_t local_begin(rt::NodeId n) const { return inner_.local_begin(n); }
  uint64_t local_end(rt::NodeId n) const { return inner_.local_end(n); }

  T get(uint64_t index) const {
    SpinLock& mu = chunk_lock(index);
    std::scoped_lock lk(mu);  // lock-based access path: every access pays
    return inner_.get(index);
  }

  void set(uint64_t index, T value) const {
    SpinLock& mu = chunk_lock(index);
    std::scoped_lock lk(mu);
    inner_.set(index, value);
  }

  // GAM-style atomic: take exclusive ownership of the whole chunk (write
  // permission bounces between nodes), then read-modify-write under it.
  void atomic_rmw(uint64_t index, T (*fn)(T, T), T operand) const {
    SpinLock& mu = chunk_lock(index);
    std::scoped_lock lk(mu);
    // Pin-for-write = hold exclusive ownership across the read and the write;
    // this is what makes GAM's atomics serialise cluster-wide.
    const bool pinned = inner_.pin(index, PinMode::kWrite);
    const T v = inner_.get(index);
    inner_.set(index, fn(v, operand));
    if (pinned) inner_.unpin(index);
  }

  // Bulk transfers, still paying the lock per covered chunk.
  void read_bulk(uint64_t index, T* out, uint64_t count) const {
    bulk(index, count, [&](uint64_t i, uint64_t n, uint64_t done) {
      inner_.read_bulk(i, out + done, n);
    });
  }
  void write_bulk(uint64_t index, const T* src, uint64_t count) const {
    bulk(index, count, [&](uint64_t i, uint64_t n, uint64_t done) {
      inner_.write_bulk(i, src + done, n);
    });
  }

  // GAM exposes R/W locks like DArray does; reuse the same home-side table.
  void rlock(uint64_t index) const { inner_.rlock(index); }
  void wlock(uint64_t index) const { inner_.wlock(index); }
  void unlock(uint64_t index) const { inner_.unlock(index); }

 private:
  struct PerNodeLocks {
    std::unique_ptr<SpinLock[]> mu;
  };

  template <typename Fn>
  void bulk(uint64_t index, uint64_t count, Fn&& fn) const {
    const uint32_t ce = inner_.meta().chunk_elems;
    uint64_t done = 0;
    while (done < count) {
      const uint64_t i = index + done;
      const uint64_t n = std::min<uint64_t>(count - done, ce - i % ce);
      std::scoped_lock lk(chunk_lock(i));
      fn(i, n, done);
      done += n;
    }
  }

  SpinLock& chunk_lock(uint64_t index) const {
    const ThreadCtx& ctx = this_thread_ctx();
    return (*locks_)[ctx.node].mu[inner_.meta().chunk_of(index)];
  }

  DArray<T> inner_;
  std::shared_ptr<std::vector<PerNodeLocks>> locks_;
};

}  // namespace darray::gam
