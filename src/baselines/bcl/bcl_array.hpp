// BCL-like baseline (Brock et al., ICPP'19): a distributed array WITHOUT a
// cache layer. Every remote access maps directly to a one-sided RMA operation
// (READ for get, WRITE for set) and blocks for its completion, so remote
// access latency equals the fabric round trip — the defining property the
// paper measures (Fig. 1/12/13/18). Local accesses touch memory directly.
//
// Thread scaling is deliberately modest: like MPI RMA in the paper's BCL
// runs, concurrent threads on one node serialise on the per-peer RMA channel.
#pragma once

#include <algorithm>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/spinlock.hpp"
#include "core/context.hpp"
#include "rdma/fabric.hpp"
#include "runtime/array_meta.hpp"
#include "runtime/cluster.hpp"

namespace darray::bcl {

template <typename T>
class BclArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static BclArray create(rt::Cluster& cluster, uint64_t n) {
    auto impl = std::make_shared<Impl>();
    impl->cluster = &cluster;
    impl->n_elems = n;
    const uint32_t nodes = cluster.num_nodes();
    impl->elem_begin.resize(nodes + 1);
    for (uint32_t i = 0; i <= nodes; ++i) impl->elem_begin[i] = n * i / nodes;

    impl->per_node.resize(nodes);
    for (uint32_t i = 0; i < nodes; ++i) {
      PerNode& pn = impl->per_node[i];
      const uint64_t count = impl->elem_begin[i + 1] - impl->elem_begin[i];
      pn.subarray = std::make_unique<std::byte[]>(std::max<uint64_t>(1, count * sizeof(T)));
      std::memset(pn.subarray.get(), 0, std::max<uint64_t>(1, count * sizeof(T)));
      pn.mr = cluster.node(i).device()->reg_mr(pn.subarray.get(),
                                               std::max<uint64_t>(1, count * sizeof(T)));
      pn.scratch = std::make_unique<std::byte[]>(kScratchBytes);
      pn.scratch_mr = cluster.node(i).device()->reg_mr(pn.scratch.get(), kScratchBytes);
      pn.qps.resize(nodes, nullptr);
      pn.cq = std::make_unique<rdma::CompletionQueue>();
    }
    // Dedicated RMA mesh (BCL's "window"), separate from the DArray runtime's.
    for (uint32_t a = 0; a < nodes; ++a) {
      for (uint32_t b = a + 1; b < nodes; ++b) {
        auto [qa, qb] = cluster.fabric().connect(
            cluster.node(a).device(), impl->per_node[a].cq.get(), impl->per_node[a].cq.get(),
            cluster.node(b).device(), impl->per_node[b].cq.get(), impl->per_node[b].cq.get());
        impl->per_node[a].qps[b] = qa;
        impl->per_node[b].qps[a] = qb;
      }
    }
    BclArray arr;
    arr.impl_ = std::move(impl);
    return arr;
  }

  uint64_t size() const { return impl_->n_elems; }
  uint64_t local_begin(rt::NodeId n) const { return impl_->elem_begin[n]; }
  uint64_t local_end(rt::NodeId n) const { return impl_->elem_begin[n + 1]; }

  T get(uint64_t index) const {
    const rt::NodeId me = this_thread_ctx().node;
    const rt::NodeId owner = owner_of(index);
    if (owner == me) {
      T v;
      std::memcpy(&v, local_ptr(owner, index), sizeof(T));
      return v;
    }
    // One RDMA READ per remote access — no cache, full round trip.
    PerNode& pn = impl_->per_node[me];
    std::scoped_lock lk(pn.rma_mu);  // MPI-RMA-style serialisation
    rdma::SendWr wr;
    wr.opcode = rdma::Opcode::kRead;
    wr.sge = {pn.scratch.get(), sizeof(T), pn.scratch_mr.lkey};
    wr.remote_addr = remote_addr(owner, index);
    wr.rkey = impl_->per_node[owner].mr.rkey;
    post_and_wait(pn, owner, wr);
    T v;
    std::memcpy(&v, pn.scratch.get(), sizeof(T));
    return v;
  }

  void set(uint64_t index, T value) const {
    const rt::NodeId me = this_thread_ctx().node;
    const rt::NodeId owner = owner_of(index);
    if (owner == me) {
      std::memcpy(local_ptr(owner, index), &value, sizeof(T));
      return;
    }
    PerNode& pn = impl_->per_node[me];
    std::scoped_lock lk(pn.rma_mu);
    std::memcpy(pn.scratch.get(), &value, sizeof(T));
    rdma::SendWr wr;
    wr.opcode = rdma::Opcode::kWrite;
    wr.sge = {pn.scratch.get(), sizeof(T), pn.scratch_mr.lkey};
    wr.remote_addr = remote_addr(owner, index);
    wr.rkey = impl_->per_node[owner].mr.rkey;
    post_and_wait(pn, owner, wr);
  }

 private:
  static constexpr size_t kScratchBytes = 4096;

  struct PerNode {
    std::unique_ptr<std::byte[]> subarray;
    rdma::MemoryRegion mr;
    std::unique_ptr<std::byte[]> scratch;
    rdma::MemoryRegion scratch_mr;
    std::vector<rdma::QueuePair*> qps;
    std::unique_ptr<rdma::CompletionQueue> cq;
    SpinLock rma_mu;
  };

  struct Impl {
    rt::Cluster* cluster = nullptr;
    uint64_t n_elems = 0;
    std::vector<uint64_t> elem_begin;
    std::deque<PerNode> per_node;  // deque: PerNode holds a non-movable SpinLock
  };

  rt::NodeId owner_of(uint64_t index) const {
    const auto& eb = impl_->elem_begin;
    auto it = std::upper_bound(eb.begin(), eb.end(), index);
    return static_cast<rt::NodeId>(it - eb.begin() - 1);
  }

  std::byte* local_ptr(rt::NodeId owner, uint64_t index) const {
    return impl_->per_node[owner].subarray.get() +
           (index - impl_->elem_begin[owner]) * sizeof(T);
  }

  uint64_t remote_addr(rt::NodeId owner, uint64_t index) const {
    return reinterpret_cast<uint64_t>(local_ptr(owner, index));
  }

  void post_and_wait(PerNode& pn, rt::NodeId owner, rdma::SendWr& wr) const {
    wr.signaled = true;
    const bool ok = pn.qps[owner]->post_send(wr);
    DARRAY_ASSERT(ok);
    rdma::WorkCompletion wc;
    while (pn.cq->poll({&wc, 1}) == 0) cpu_relax();
    DARRAY_ASSERT(wc.status == rdma::WcStatus::kSuccess);
  }

  std::shared_ptr<Impl> impl_;
};

}  // namespace darray::bcl
