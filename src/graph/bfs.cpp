#include "graph/bfs.hpp"

#include <atomic>
#include <deque>

#include "graph/gemini.hpp"

namespace darray::graph {

namespace {
void min_u64(uint64_t& acc, uint64_t v) {
  if (v < acc) acc = v;
}
void atomic_min_u64(uint64_t& target, uint64_t v) {
  std::atomic_ref<uint64_t> ref(target);
  uint64_t old = ref.load(std::memory_order_relaxed);
  while (old > v && !ref.compare_exchange_weak(old, v, std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
  }
}
}  // namespace

std::vector<uint64_t> bfs_reference(const Csr& g, Vertex source) {
  std::vector<uint64_t> dist(g.n_vertices(), kUnreached);
  std::deque<Vertex> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop_front();
    for (Vertex u : g.neighbors(v)) {
      if (dist[u] == kUnreached) {
        dist[u] = dist[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> bfs_darray(rt::Cluster& cluster, const Csr& g, Vertex source,
                                 const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto dist = DArray<uint64_t>::create(cluster, n);
  const auto mn = dist.register_op(&min_u64, kUnreached);

  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(dist.local_begin(node), dist.local_end(node), opt.threads_per_node, t);
    // Init: everything unreached except the source.
    for (uint64_t v = b; v < e; ++v) dist.set(v, v == source ? 0 : kUnreached);
    std::vector<uint64_t> prev(e - b, kUnreached);
    if (source >= b && source < e) prev[source - b] = 0;
    bar.arrive_and_wait();

    // Level-synchronous: in round r, vertices at depth r push r+1 to their
    // neighbors via write_min.
    for (uint64_t round = 0;; ++round) {
      for (uint64_t v = b; v < e; ++v) {
        if (prev[v - b] != round) continue;  // not on the current frontier
        for (Vertex u : g.neighbors(static_cast<Vertex>(v)))
          dist.apply(u, mn, round + 1);
      }
      bar.arrive_and_wait();
      uint64_t changed = 0;
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t dv = dist.get(v);
        if (dv != prev[v - b]) {
          prev[v - b] = dv;
          changed++;
        }
      }
      global_changed.fetch_add(changed, std::memory_order_acq_rel);
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    for (uint64_t v = b; v < e; ++v) result[v] = prev[v - b];
  });
  return result;
}

std::vector<uint64_t> bfs_gemini(rt::Cluster& cluster, const Csr& g, Vertex source,
                                 const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  GeminiContext<uint64_t> ctx(cluster, n, kUnreached);
  const uint32_t nodes = cluster.num_nodes();

  std::vector<std::vector<uint64_t>> dist(nodes);
  for (uint32_t i = 0; i < nodes; ++i) {
    dist[i].assign(ctx.end(i) - ctx.begin(i), kUnreached);
    if (source >= ctx.begin(i) && source < ctx.end(i)) dist[i][source - ctx.begin(i)] = 0;
  }

  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const uint64_t nb = ctx.begin(node), ne = ctx.end(node);
    const auto [b, e] = split_range(nb, ne, opt.threads_per_node, t);

    for (uint64_t round = 0;; ++round) {
      uint64_t* acc = ctx.acc(node);
      for (uint64_t v = b; v < e; ++v) {
        if (dist[node][v - nb] != round) continue;
        for (Vertex u : g.neighbors(static_cast<Vertex>(v)))
          atomic_min_u64(acc[u], round + 1);
      }
      bar.arrive_and_wait();
      if (t == 0) ctx.exchange_send(node);
      bar.arrive_and_wait();
      if (t == 0) {
        uint64_t* reduced =
            ctx.exchange_reduce(node, [](uint64_t a, uint64_t x) { return x < a ? x : a; });
        uint64_t changed = 0;
        for (uint64_t v = nb; v < ne; ++v) {
          const uint64_t dv = std::min(dist[node][v - nb], reduced[v]);
          if (dv != dist[node][v - nb]) {
            dist[node][v - nb] = dv;
            changed++;
          }
        }
        global_changed.fetch_add(changed, std::memory_order_acq_rel);
        ctx.reset(node);
      }
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    if (t == 0)
      for (uint64_t v = nb; v < ne; ++v) result[v] = dist[node][v - nb];
  });
  return result;
}

}  // namespace darray::graph
