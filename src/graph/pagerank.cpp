#include "graph/pagerank.hpp"

#include <atomic>

#include "baselines/gam/gam_array.hpp"
#include "graph/gemini.hpp"

namespace darray::graph {

namespace {

void add_double(double& acc, double v) { acc += v; }

void atomic_add(double& target, double v) {
  std::atomic_ref<double> ref(target);
  double old = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(old, old + v, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> pagerank_darray(rt::Cluster& cluster, const Csr& g,
                                    const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto curr = DArray<double>::create(cluster, n);
  auto next = DArray<double>::create(cluster, n);
  const auto add = next.register_op(&add_double, 0.0);
  const double base = (1.0 - kDamping) / static_cast<double>(n);

  std::vector<double> result(n);

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(curr.local_begin(node), curr.local_end(node), opt.threads_per_node, t);

    // Init: every vertex starts at 1/n; next is already zero.
    {
      ScanPin<double> pin(curr, PinMode::kWrite, opt.use_pin);
      for (uint64_t v = b; v < e; ++v) {
        pin.touch(v);
        curr.set(v, 1.0 / static_cast<double>(n));
      }
    }
    bar.arrive_and_wait();

    for (int iter = 0; iter < opt.iterations; ++iter) {
      // Scatter: push curr[v]/deg to every out-neighbor via Operate (Fig. 8).
      {
        ScanPin<double> pin(curr, PinMode::kRead, opt.use_pin);
        for (uint64_t v = b; v < e; ++v) {
          const uint64_t deg = g.out_degree(static_cast<Vertex>(v));
          if (deg == 0) continue;
          pin.touch(v);
          const double share = curr.get(v) / static_cast<double>(deg);
          for (Vertex u : g.neighbors(static_cast<Vertex>(v))) next.apply(u, add, share);
        }
      }
      bar.arrive_and_wait();

      // Gather: settle local vertices; the local reads force every remote
      // combine buffer for these chunks to flush home.
      {
        ScanPin<double> pin(next, PinMode::kWrite, opt.use_pin);
        ScanPin<double> pin2(curr, PinMode::kWrite, opt.use_pin);
        for (uint64_t v = b; v < e; ++v) {
          pin.touch(v);
          pin2.touch(v);
          const double sum = next.get(v);
          curr.set(v, base + kDamping * sum);
          next.set(v, 0.0);
        }
      }
      bar.arrive_and_wait();
    }

    // Collect this node's slice of the final ranks.
    {
      ScanPin<double> pin(curr, PinMode::kRead, opt.use_pin);
      for (uint64_t v = b; v < e; ++v) {
        pin.touch(v);
        result[v] = curr.get(v);
      }
    }
  });
  return result;
}

std::vector<double> pagerank_gam(rt::Cluster& cluster, const Csr& g,
                                 const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto curr = gam::GamArray<double>::create(cluster, n);
  auto next = gam::GamArray<double>::create(cluster, n);
  const double base = (1.0 - kDamping) / static_cast<double>(n);
  std::vector<double> result(n);

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(curr.local_begin(node), curr.local_end(node), opt.threads_per_node, t);
    for (uint64_t v = b; v < e; ++v) curr.set(v, 1.0 / static_cast<double>(n));
    bar.arrive_and_wait();

    for (int iter = 0; iter < opt.iterations; ++iter) {
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t deg = g.out_degree(static_cast<Vertex>(v));
        if (deg == 0) continue;
        const double share = curr.get(v) / static_cast<double>(deg);
        // GAM has no Operate: every accumulation is an exclusive atomic RMW.
        for (Vertex u : g.neighbors(static_cast<Vertex>(v)))
          next.atomic_rmw(u, +[](double a, double x) { return a + x; }, share);
      }
      bar.arrive_and_wait();
      for (uint64_t v = b; v < e; ++v) {
        curr.set(v, base + kDamping * next.get(v));
        next.set(v, 0.0);
      }
      bar.arrive_and_wait();
    }
    for (uint64_t v = b; v < e; ++v) result[v] = curr.get(v);
  });
  return result;
}

std::vector<double> pagerank_gemini(rt::Cluster& cluster, const Csr& g,
                                    const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  GeminiContext<double> ctx(cluster, n, 0.0);
  const double base = (1.0 - kDamping) / static_cast<double>(n);
  const uint32_t nodes = cluster.num_nodes();

  // Per-node current-rank slice (local memory: Gemini keeps vertex state
  // partitioned, not shared).
  std::vector<std::vector<double>> curr(nodes);
  for (uint32_t i = 0; i < nodes; ++i)
    curr[i].assign(ctx.end(i) - ctx.begin(i), 1.0 / static_cast<double>(n));

  std::vector<double> result(n);

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const uint64_t nb = ctx.begin(node), ne = ctx.end(node);
    const auto [b, e] = split_range(nb, ne, opt.threads_per_node, t);

    for (int iter = 0; iter < opt.iterations; ++iter) {
      double* acc = ctx.acc(node);
      // Local scatter into the dense accumulator (no network).
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t deg = g.out_degree(static_cast<Vertex>(v));
        if (deg == 0) continue;
        const double share = curr[node][v - nb] / static_cast<double>(deg);
        for (Vertex u : g.neighbors(static_cast<Vertex>(v))) atomic_add(acc[u], share);
      }
      bar.arrive_and_wait();
      if (t == 0) ctx.exchange_send(node);  // bulk per-peer slice WRITEs
      bar.arrive_and_wait();
      if (t == 0) {
        double* reduced = ctx.exchange_reduce(node, [](double a, double x) { return a + x; });
        for (uint64_t v = nb; v < ne; ++v) curr[node][v - nb] = base + kDamping * reduced[v];
        ctx.reset(node);
      }
      bar.arrive_and_wait();
    }
    if (t == 0)
      for (uint64_t v = nb; v < ne; ++v) result[v] = curr[node][v - nb];
  });
  return result;
}

}  // namespace darray::graph
