// Serial single-machine reference implementations used as ground truth by
// tests and by the distributed engines' convergence checks.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace darray::graph {

// Standard damped PageRank, `iters` synchronous iterations, damping 0.85.
// Dangling vertices keep their (1-d)/n base rank, matching the distributed
// engines here (contributions of dangling vertices are dropped, as in the
// paper's Fig. 8 sketch).
std::vector<double> pagerank_reference(const Csr& g, int iters, double damping = 0.85);

// Connected components by label propagation to a fixed point (min label wins)
// over a symmetric graph.
std::vector<uint64_t> cc_reference(const Csr& g_symmetric);

}  // namespace darray::graph
