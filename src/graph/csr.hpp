// Compressed-sparse-row graph. Vertex ids are 32-bit (the paper's largest
// graph, rMat24, has 2^24 vertices).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace darray::graph {

using Vertex = uint32_t;
using Edge = std::pair<Vertex, Vertex>;

class Csr {
 public:
  Csr() = default;

  static Csr from_edges(uint64_t n_vertices, std::vector<Edge> edges) {
    Csr g;
    g.n_ = n_vertices;
    g.offsets_.assign(n_vertices + 1, 0);
    for (const Edge& e : edges) {
      DARRAY_ASSERT(e.first < n_vertices && e.second < n_vertices);
      g.offsets_[e.first + 1]++;
    }
    for (uint64_t v = 0; v < n_vertices; ++v) g.offsets_[v + 1] += g.offsets_[v];
    g.targets_.resize(edges.size());
    std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const Edge& e : edges) g.targets_[cursor[e.first]++] = e.second;
    return g;
  }

  // Add each edge in both directions (for connected components).
  static Csr symmetric_from_edges(uint64_t n_vertices, const std::vector<Edge>& edges) {
    std::vector<Edge> both;
    both.reserve(edges.size() * 2);
    for (const Edge& e : edges) {
      both.push_back(e);
      both.emplace_back(e.second, e.first);
    }
    return from_edges(n_vertices, std::move(both));
  }

  uint64_t n_vertices() const { return n_; }
  uint64_t n_edges() const { return targets_.size(); }

  uint64_t out_degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

 private:
  uint64_t n_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<Vertex> targets_;
};

}  // namespace darray::graph
