// Breadth-first search: level propagation with write_min on a DArray, and a
// Gemini-style message-passing variant. Demonstrates the Operate interface on
// a frontier-style algorithm beyond the paper's PR/CC pair.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/engine.hpp"
#include "runtime/cluster.hpp"

namespace darray::graph {

inline constexpr uint64_t kUnreached = ~0ull;

// Distances in hops from `source` (kUnreached where unreachable).
std::vector<uint64_t> bfs_darray(rt::Cluster& cluster, const Csr& g, Vertex source,
                                 const GraphRunOptions& opt);

std::vector<uint64_t> bfs_gemini(rt::Cluster& cluster, const Csr& g, Vertex source,
                                 const GraphRunOptions& opt);

// Serial reference.
std::vector<uint64_t> bfs_reference(const Csr& g, Vertex source);

}  // namespace darray::graph
