// PageRank on the three engines the paper compares: DArray (with optional
// Pin), GAM-like, and Gemini-like. All run `iterations` synchronous damped
// iterations and return the full rank vector.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/engine.hpp"
#include "runtime/cluster.hpp"

namespace darray::graph {

inline constexpr double kDamping = 0.85;

std::vector<double> pagerank_darray(rt::Cluster& cluster, const Csr& g,
                                    const GraphRunOptions& opt);

std::vector<double> pagerank_gam(rt::Cluster& cluster, const Csr& g,
                                 const GraphRunOptions& opt);

std::vector<double> pagerank_gemini(rt::Cluster& cluster, const Csr& g,
                                    const GraphRunOptions& opt);

}  // namespace darray::graph
