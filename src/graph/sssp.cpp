#include "graph/sssp.hpp"

#include <atomic>
#include <queue>

namespace darray::graph {

namespace {
void min_u64(uint64_t& acc, uint64_t v) {
  if (v < acc) acc = v;
}
}  // namespace

std::vector<uint64_t> sssp_reference(const Csr& g, Vertex source) {
  // Dijkstra with the synthetic weights.
  std::vector<uint64_t> dist(g.n_vertices(), kInfDist);
  using Item = std::pair<uint64_t, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (Vertex u : g.neighbors(v)) {
      const uint64_t nd = d + edge_weight(v, u);
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return dist;
}

std::vector<uint64_t> sssp_darray(rt::Cluster& cluster, const Csr& g, Vertex source,
                                  const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto dist = DArray<uint64_t>::create(cluster, n);
  const auto mn = dist.register_op(&min_u64, kInfDist);

  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};
  constexpr int kMaxRounds = 500;  // Bellman-Ford: bounded by graph diameter

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(dist.local_begin(node), dist.local_end(node), opt.threads_per_node, t);
    for (uint64_t v = b; v < e; ++v) dist.set(v, v == source ? 0 : kInfDist);
    std::vector<uint64_t> prev(e - b, kInfDist);
    std::vector<uint8_t> frontier(e - b, 0);
    if (source >= b && source < e) {
      prev[source - b] = 0;
      frontier[source - b] = 1;
    }
    bar.arrive_and_wait();

    for (int round = 0; round < kMaxRounds; ++round) {
      // Relax only edges whose source distance changed last round.
      for (uint64_t v = b; v < e; ++v) {
        if (!frontier[v - b]) continue;
        const uint64_t dv = prev[v - b];
        for (Vertex u : g.neighbors(static_cast<Vertex>(v)))
          dist.apply(u, mn, dv + edge_weight(static_cast<Vertex>(v), u));
      }
      bar.arrive_and_wait();
      uint64_t changed = 0;
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t dv = dist.get(v);
        if (dv != prev[v - b]) {
          prev[v - b] = dv;
          frontier[v - b] = 1;
          changed++;
        } else {
          frontier[v - b] = 0;
        }
      }
      global_changed.fetch_add(changed, std::memory_order_acq_rel);
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    for (uint64_t v = b; v < e; ++v) result[v] = prev[v - b];
  });
  return result;
}

}  // namespace darray::graph
