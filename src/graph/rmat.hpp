// R-MAT graph generator (Chakrabarti et al., SDM'04) with the Graph500
// parameters the paper uses: a=0.57, b=0.19, c=0.19, d=0.05. rMat24 in the
// paper = scale 24 (2^24 vertices), edge factor 4 (2^26 edges).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace darray::graph {

struct RmatParams {
  uint32_t scale = 16;        // 2^scale vertices
  uint32_t edge_factor = 4;   // edges = edge_factor * vertices
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  uint64_t seed = 1;
  bool permute_vertices = true;  // Graph500-style relabeling to break locality
};

std::vector<Edge> rmat_edges(const RmatParams& p);

inline Csr rmat_graph(const RmatParams& p) {
  return Csr::from_edges(uint64_t{1} << p.scale, rmat_edges(p));
}

}  // namespace darray::graph
