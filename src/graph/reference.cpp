#include "graph/reference.hpp"

namespace darray::graph {

std::vector<double> pagerank_reference(const Csr& g, int iters, double damping) {
  const uint64_t n = g.n_vertices();
  std::vector<double> curr(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (Vertex v = 0; v < n; ++v) {
      const uint64_t deg = g.out_degree(v);
      if (deg == 0) continue;
      const double share = curr[v] / static_cast<double>(deg);
      for (Vertex u : g.neighbors(v)) next[u] += share;
    }
    for (uint64_t v = 0; v < n; ++v)
      next[v] = (1.0 - damping) / static_cast<double>(n) + damping * next[v];
    curr.swap(next);
  }
  return curr;
}

std::vector<uint64_t> cc_reference(const Csr& g) {
  const uint64_t n = g.n_vertices();
  std::vector<uint64_t> label(n);
  for (uint64_t v = 0; v < n; ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Vertex v = 0; v < n; ++v) {
      for (Vertex u : g.neighbors(v)) {
        if (label[v] < label[u]) {
          label[u] = label[v];
          changed = true;
        }
      }
    }
  }
  return label;
}

}  // namespace darray::graph
