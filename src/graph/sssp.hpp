// Single-source shortest paths (Bellman-Ford flavour) with write_min —
// distances relax concurrently from every node with no locks, the same
// pattern as the paper's PageRank sketch but with a min operator.
//
// Edge weights are synthesised deterministically from the endpoints (the CSR
// carries none): weight(u, v) = 1 + mix(u, v) % 15, identical in the
// distributed engines and the serial reference.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/engine.hpp"
#include "runtime/cluster.hpp"

namespace darray::graph {

inline constexpr uint64_t kInfDist = ~0ull;

inline uint64_t edge_weight(Vertex u, Vertex v) {
  uint64_t x = (uint64_t{u} << 32) | v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return 1 + (x % 15);
}

std::vector<uint64_t> sssp_darray(rt::Cluster& cluster, const Csr& g, Vertex source,
                                  const GraphRunOptions& opt);

std::vector<uint64_t> sssp_reference(const Csr& g, Vertex source);

}  // namespace darray::graph
