// Gemini-like baseline engine (Zhu et al., OSDI'16): computation-centric BSP
// with explicit bulk message passing instead of shared memory. Each node
// keeps a full-length local accumulator, scans its own edges purely locally,
// then exchanges per-peer slices with one bulk one-sided WRITE per peer and
// reduces the received slices — the dense communication mode of Gemini.
#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "net/rma_mesh.hpp"
#include "runtime/cluster.hpp"

namespace darray::graph {

template <typename V>
class GeminiContext {
 public:
  GeminiContext(rt::Cluster& cluster, uint64_t n, V identity)
      : n_(n), nodes_(cluster.num_nodes()), identity_(identity) {
    std::vector<rdma::Device*> devs;
    for (uint32_t i = 0; i < nodes_; ++i) devs.push_back(cluster.node(i).device());
    mesh_ = std::make_unique<net::RmaMesh>(cluster.fabric(), devs);

    begin_.resize(nodes_ + 1);
    for (uint32_t i = 0; i <= nodes_; ++i) begin_[i] = n * i / nodes_;

    per_node_.resize(nodes_);
    for (uint32_t i = 0; i < nodes_; ++i) {
      PerNode& pn = per_node_[i];
      pn.acc.assign(n, identity);
      pn.acc_mr = mesh_->reg(i, pn.acc.data(), n * sizeof(V));
      const uint64_t slice = begin_[i + 1] - begin_[i];
      pn.recv.resize(nodes_);
      pn.recv_mr.resize(nodes_);
      for (uint32_t peer = 0; peer < nodes_; ++peer) {
        if (peer == i) continue;
        pn.recv[peer].assign(std::max<uint64_t>(1, slice), identity);
        pn.recv_mr[peer] = mesh_->reg(i, pn.recv[peer].data(),
                                      std::max<uint64_t>(1, slice) * sizeof(V));
      }
    }
  }

  uint64_t begin(uint32_t node) const { return begin_[node]; }
  uint64_t end(uint32_t node) const { return begin_[node + 1]; }

  // The node's full-length local accumulator (scatter target).
  V* acc(uint32_t node) { return per_node_[node].acc.data(); }

  // Phase 1 (per node, single thread): ship each peer its slice of my
  // accumulator. Caller must barrier between phases.
  void exchange_send(uint32_t me) {
    for (uint32_t peer = 0; peer < nodes_; ++peer) {
      if (peer == me) continue;
      const uint64_t pb = begin_[peer], pe = begin_[peer + 1];
      if (pb == pe) continue;
      PerNode& mine = per_node_[me];
      PerNode& theirs = per_node_[peer];
      mesh_->write(me, peer, mine.acc.data() + pb, mine.acc_mr.lkey,
                   reinterpret_cast<uint64_t>(theirs.recv[me].data()),
                   theirs.recv_mr[me].rkey,
                   static_cast<uint32_t>((pe - pb) * sizeof(V)));
    }
  }

  // Phase 2 (per node, single thread): reduce received slices into my own
  // accumulator slice with `combine`, then return a pointer to it.
  template <typename Combine>
  V* exchange_reduce(uint32_t me, Combine&& combine) {
    PerNode& pn = per_node_[me];
    const uint64_t b = begin_[me], e = begin_[me + 1];
    for (uint32_t peer = 0; peer < nodes_; ++peer) {
      if (peer == me) continue;
      for (uint64_t v = b; v < e; ++v)
        pn.acc[v] = combine(pn.acc[v], pn.recv[peer][v - b]);
    }
    return pn.acc.data();
  }

  // Reset the accumulator (and recv areas) to the identity for the next round.
  void reset(uint32_t me) {
    PerNode& pn = per_node_[me];
    std::fill(pn.acc.begin(), pn.acc.end(), identity_);
    for (auto& r : pn.recv) std::fill(r.begin(), r.end(), identity_);
  }

 private:
  struct PerNode {
    std::vector<V> acc;
    rdma::MemoryRegion acc_mr;
    std::vector<std::vector<V>> recv;
    std::vector<rdma::MemoryRegion> recv_mr;
  };

  uint64_t n_;
  uint32_t nodes_;
  V identity_;
  std::unique_ptr<net::RmaMesh> mesh_;
  std::vector<uint64_t> begin_;
  std::vector<PerNode> per_node_;
};

}  // namespace darray::graph
