#include "graph/cc.hpp"

#include <atomic>

#include "baselines/gam/gam_array.hpp"
#include "graph/gemini.hpp"

namespace darray::graph {

namespace {

void min_u64(uint64_t& acc, uint64_t v) {
  if (v < acc) acc = v;
}

void atomic_min(uint64_t& target, uint64_t v) {
  std::atomic_ref<uint64_t> ref(target);
  uint64_t old = ref.load(std::memory_order_relaxed);
  while (old > v && !ref.compare_exchange_weak(old, v, std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
  }
}

constexpr int kMaxIters = 200;  // label propagation converges in O(diameter)

}  // namespace

std::vector<uint64_t> cc_darray(rt::Cluster& cluster, const Csr& g,
                                const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto labels = DArray<uint64_t>::create(cluster, n);
  const auto mn = labels.register_op(&min_u64, ~0ull);

  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(labels.local_begin(node), labels.local_end(node), opt.threads_per_node, t);
    std::vector<uint64_t> prev(e - b);
    {
      ScanPin<uint64_t> pin(labels, PinMode::kWrite, opt.use_pin);
      for (uint64_t v = b; v < e; ++v) {
        pin.touch(v);
        labels.set(v, v);
        prev[v - b] = v;
      }
    }
    bar.arrive_and_wait();

    for (int iter = 0; iter < kMaxIters; ++iter) {
      // Scatter: push my label (as of the last settled round — re-reading the
      // live array here would force a flush round trip per vertex) to every
      // neighbor via write_min.
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t l = prev[v - b];
        for (Vertex u : g.neighbors(static_cast<Vertex>(v))) labels.apply(u, mn, l);
      }
      bar.arrive_and_wait();
      // Detect change on the local slice.
      uint64_t changed = 0;
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t l = labels.get(v);
        if (l != prev[v - b]) {
          prev[v - b] = l;
          changed++;
        }
      }
      global_changed.fetch_add(changed, std::memory_order_acq_rel);
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();  // everyone reads before anyone resets
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    for (uint64_t v = b; v < e; ++v) result[v] = labels.get(v);
  });
  return result;
}

std::vector<uint64_t> cc_gam(rt::Cluster& cluster, const Csr& g, const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  auto labels = gam::GamArray<uint64_t>::create(cluster, n);
  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const auto [b, e] =
        split_range(labels.local_begin(node), labels.local_end(node), opt.threads_per_node, t);
    std::vector<uint64_t> prev(e - b);
    for (uint64_t v = b; v < e; ++v) {
      labels.set(v, v);
      prev[v - b] = v;
    }
    bar.arrive_and_wait();

    for (int iter = 0; iter < kMaxIters; ++iter) {
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t l = prev[v - b];
        for (Vertex u : g.neighbors(static_cast<Vertex>(v)))
          labels.atomic_rmw(u, +[](uint64_t a, uint64_t x) { return x < a ? x : a; }, l);
      }
      bar.arrive_and_wait();
      uint64_t changed = 0;
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t l = labels.get(v);
        if (l != prev[v - b]) {
          prev[v - b] = l;
          changed++;
        }
      }
      global_changed.fetch_add(changed, std::memory_order_acq_rel);
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    for (uint64_t v = b; v < e; ++v) result[v] = labels.get(v);
  });
  return result;
}

std::vector<uint64_t> cc_gemini(rt::Cluster& cluster, const Csr& g,
                                const GraphRunOptions& opt) {
  const uint64_t n = g.n_vertices();
  GeminiContext<uint64_t> ctx(cluster, n, ~0ull);
  const uint32_t nodes = cluster.num_nodes();

  std::vector<std::vector<uint64_t>> labels(nodes);
  for (uint32_t i = 0; i < nodes; ++i) {
    labels[i].resize(ctx.end(i) - ctx.begin(i));
    for (uint64_t v = ctx.begin(i); v < ctx.end(i); ++v) labels[i][v - ctx.begin(i)] = v;
  }

  std::vector<uint64_t> result(n);
  std::atomic<uint64_t> global_changed{0};

  run_bsp(cluster, opt.threads_per_node, [&](rt::NodeId node, uint32_t t, SenseBarrier& bar) {
    const uint64_t nb = ctx.begin(node), ne = ctx.end(node);
    const auto [b, e] = split_range(nb, ne, opt.threads_per_node, t);

    for (int iter = 0; iter < kMaxIters; ++iter) {
      uint64_t* acc = ctx.acc(node);
      for (uint64_t v = b; v < e; ++v) {
        const uint64_t l = labels[node][v - nb];
        for (Vertex u : g.neighbors(static_cast<Vertex>(v))) atomic_min(acc[u], l);
      }
      bar.arrive_and_wait();
      if (t == 0) ctx.exchange_send(node);
      bar.arrive_and_wait();
      if (t == 0) {
        uint64_t* reduced =
            ctx.exchange_reduce(node, [](uint64_t a, uint64_t x) { return x < a ? x : a; });
        uint64_t changed = 0;
        for (uint64_t v = nb; v < ne; ++v) {
          const uint64_t l = std::min(labels[node][v - nb], reduced[v]);
          if (l != labels[node][v - nb]) {
            labels[node][v - nb] = l;
            changed++;
          }
        }
        global_changed.fetch_add(changed, std::memory_order_acq_rel);
        ctx.reset(node);
      }
      bar.arrive_and_wait();
      const bool done = global_changed.load(std::memory_order_acquire) == 0;
      bar.arrive_and_wait();
      if (t == 0 && node == 0) global_changed.store(0, std::memory_order_release);
      bar.arrive_and_wait();
      if (done) break;
    }
    if (t == 0)
      for (uint64_t v = nb; v < ne; ++v) result[v] = labels[node][v - nb];
  });
  return result;
}

}  // namespace darray::graph
