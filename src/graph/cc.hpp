// Connected components (label propagation with write_min) on the three
// engines. The input graph must be symmetric (Csr::symmetric_from_edges).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/engine.hpp"
#include "runtime/cluster.hpp"

namespace darray::graph {

std::vector<uint64_t> cc_darray(rt::Cluster& cluster, const Csr& g_sym,
                                const GraphRunOptions& opt);

std::vector<uint64_t> cc_gam(rt::Cluster& cluster, const Csr& g_sym,
                             const GraphRunOptions& opt);

std::vector<uint64_t> cc_gemini(rt::Cluster& cluster, const Csr& g_sym,
                                const GraphRunOptions& opt);

}  // namespace darray::graph
