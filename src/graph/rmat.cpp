#include "graph/rmat.hpp"

#include <numeric>

#include "common/rng.hpp"

namespace darray::graph {

std::vector<Edge> rmat_edges(const RmatParams& p) {
  const uint64_t n = uint64_t{1} << p.scale;
  const uint64_t m = n * p.edge_factor;
  Xoshiro256 rng(p.seed);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t src = 0, dst = 0;
    for (uint32_t bit = 0; bit < p.scale; ++bit) {
      const double r = rng.next_double();
      // Recursive quadrant choice with slight parameter noise, as in the
      // original R-MAT description, to avoid exact self-similarity artifacts.
      uint32_t quadrant;
      if (r < p.a)
        quadrant = 0;
      else if (r < p.a + p.b)
        quadrant = 1;
      else if (r < p.a + p.b + p.c)
        quadrant = 2;
      else
        quadrant = 3;
      src = (src << 1) | (quadrant >> 1);
      dst = (dst << 1) | (quadrant & 1);
    }
    edges.emplace_back(static_cast<Vertex>(src), static_cast<Vertex>(dst));
  }

  if (p.permute_vertices) {
    // Fisher–Yates permutation of vertex labels so that hub vertices are not
    // clustered at small ids (Graph500 does the same).
    std::vector<Vertex> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (uint64_t i = n - 1; i > 0; --i) {
      const uint64_t j = rng.next_below(i + 1);
      std::swap(perm[i], perm[j]);
    }
    for (Edge& e : edges) {
      e.first = perm[e.first];
      e.second = perm[e.second];
    }
  }
  return edges;
}

}  // namespace darray::graph
