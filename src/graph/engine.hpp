// DArray-backed distributed graph engine: the paper's §5.1 port of a
// single-machine engine (Polymer-style) where the shared vertex arrays become
// DArrays and the scatter phase uses the Operate interface (Fig. 8).
//
// BSP structure per iteration:
//   scatter: each node scans its local vertex range and applies combined
//            updates to neighbor state via DArray::apply
//   barrier
//   gather:  each node reads/settles its local vertex range (the reads force
//            Operated → Unshared flushes, merging every node's operands)
//   barrier
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "core/darray.hpp"

namespace darray::graph {

struct GraphRunOptions {
  int iterations = 10;          // PageRank iteration count
  bool use_pin = false;         // DArray-Pin variant (§4.1)
  uint32_t threads_per_node = 1;
};

// Runs fn(node, thread, barrier) on threads_per_node app threads per node and
// joins. The barrier spans every participating thread of every node.
inline void run_bsp(rt::Cluster& cluster, uint32_t threads_per_node,
                    const std::function<void(rt::NodeId, uint32_t, SenseBarrier&)>& fn) {
  SenseBarrier barrier(cluster.num_nodes() * threads_per_node);
  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < threads_per_node; ++t) {
      ts.emplace_back([&cluster, &fn, &barrier, n, t] {
        bind_thread(cluster, n);
        fn(n, t, barrier);
      });
    }
  }
  for (auto& t : ts) t.join();
}

// Split [begin, end) into `parts` and return part `i`.
inline std::pair<uint64_t, uint64_t> split_range(uint64_t begin, uint64_t end, uint32_t parts,
                                                 uint32_t i) {
  const uint64_t len = end - begin;
  return {begin + len * i / parts, begin + len * (i + 1) / parts};
}

// RAII chunk pin that follows a sequential scan: pins the chunk containing
// each index the first time it is touched and releases the previous one.
template <typename T>
class ScanPin {
 public:
  ScanPin(const DArray<T>& a, PinMode mode, bool enabled, uint16_t op_id = rt::kNoOp)
      : a_(a), mode_(mode), enabled_(enabled), op_id_(op_id) {}

  ~ScanPin() { release(); }

  void touch(uint64_t index) {
    if (!enabled_) return;
    const uint64_t chunk = index / a_.meta().chunk_elems;
    if (chunk == cur_chunk_) return;
    release();
    if (a_.pin(index, mode_, op_id_)) {
      cur_chunk_ = chunk;
      cur_index_ = index;
    }
  }

  void release() {
    if (cur_chunk_ != ~0ull) {
      a_.unpin(cur_index_);
      cur_chunk_ = ~0ull;
    }
  }

 private:
  const DArray<T>& a_;
  PinMode mode_;
  bool enabled_;
  uint16_t op_id_;
  uint64_t cur_chunk_ = ~0ull;
  uint64_t cur_index_ = 0;
};

}  // namespace darray::graph
