#include "obs/stats_registry.hpp"

#include <cstdio>
#include <mutex>

namespace darray::obs {

void StatsSnapshot::add_histogram(const std::string& prefix, const LatencyHistogram& h) {
  add(prefix + ".count", h.count());
  add(prefix + ".mean_ns", static_cast<uint64_t>(h.mean_ns()));
  add(prefix + ".p50_ns", h.percentile_ns(0.50));
  add(prefix + ".p99_ns", h.percentile_ns(0.99));
}

const uint64_t* StatsSnapshot::find(std::string_view name) const {
  for (const StatEntry& e : entries)
    if (e.name == name) return &e.value;
  return nullptr;
}

uint64_t StatsSnapshot::value_or(std::string_view name, uint64_t def) const {
  const uint64_t* v = find(name);
  return v ? *v : def;
}

std::string StatsSnapshot::to_json(const char* line_prefix) const {
  std::string out = "{";
  char buf[32];
  for (size_t i = 0; i < entries.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += line_prefix;
    out += "  \"";
    out += entries[i].name;
    out += "\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(entries[i].value));
    out += buf;
  }
  out += "\n";
  out += line_prefix;
  out += "}";
  return out;
}

void StatsRegistry::add_source(Source src) {
  std::lock_guard lk(mu_);
  sources_.push_back(std::move(src));
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot s;
  std::lock_guard lk(mu_);
  for (const Source& src : sources_) src(s);
  return s;
}

}  // namespace darray::obs
