#include "obs/stats_registry.hpp"

#include <cstdio>
#include <mutex>

namespace darray::obs {

void StatsSnapshot::add_histogram(const std::string& prefix, const LatencyHistogram& h) {
  add(prefix + ".count", h.count());
  add(prefix + ".mean_ns", static_cast<uint64_t>(h.mean_ns()));
  add(prefix + ".p50_ns", h.percentile_ns(0.50));
  add(prefix + ".p99_ns", h.percentile_ns(0.99));
}

void StatsSnapshot::add_histogram(const std::string& prefix, const HistogramSnapshot& h) {
  add(prefix + ".count", h.count);
  add(prefix + ".sum_ns", h.sum_ns);
  add(prefix + ".mean_ns", static_cast<uint64_t>(h.mean_ns()));
  add(prefix + ".p50_ns", h.percentile_ns(0.50));
  add(prefix + ".p90_ns", h.percentile_ns(0.90));
  add(prefix + ".p99_ns", h.percentile_ns(0.99));
  add(prefix + ".p999_ns", h.percentile_ns(0.999));
  add(prefix + ".max_ns", h.max_ns());
  // Raw buckets, sparse (non-empty only) and per-bucket rather than
  // cumulative: a delta between two snapshots then subtracts bucket-wise even
  // when a bucket first appears after the baseline — cumulative entries would
  // double-count everything below a newly-occupied boundary.
  for (int i = 0; i < kHistBuckets; ++i) {
    const uint64_t c = h.buckets[static_cast<size_t>(i)];
    if (c == 0) continue;
    add(prefix + ".bkt_" + std::to_string(AtomicLatencyHistogram::bucket_upper(i)), c);
  }
}

// Percentile/mean/max entries are point samples: the current value, not the
// delta, is what a reader wants. Everything else is treated as monotonic.
bool stats_is_point_sample(std::string_view name) {
  // ".gauge" marks instantaneous levels (e.g. serve.inflight.gauge): the
  // sampler must not difference them and /metrics exposes them as gauges.
  for (const char* suffix :
       {".mean_ns", ".p50_ns", ".p90_ns", ".p99_ns", ".p999_ns", ".max_ns", ".gauge"}) {
    const std::string_view s(suffix);
    if (name.size() >= s.size() && name.substr(name.size() - s.size()) == s) return true;
  }
  return false;
}

StatsSnapshot StatsSnapshot::delta_from(const StatsSnapshot& base) const {
  StatsSnapshot out;
  out.entries.reserve(entries.size());
  for (const StatEntry& e : entries) {
    uint64_t v = e.value;
    if (!stats_is_point_sample(e.name)) {
      const uint64_t* b = base.find(e.name);
      if (b) v = v > *b ? v - *b : 0;
    }
    out.entries.push_back({e.name, v});
  }
  return out;
}

const uint64_t* StatsSnapshot::find(std::string_view name) const {
  for (const StatEntry& e : entries)
    if (e.name == name) return &e.value;
  return nullptr;
}

uint64_t StatsSnapshot::value_or(std::string_view name, uint64_t def) const {
  const uint64_t* v = find(name);
  return v ? *v : def;
}

std::string StatsSnapshot::to_json(const char* line_prefix) const {
  std::string out = "{";
  char buf[32];
  for (size_t i = 0; i < entries.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += line_prefix;
    out += "  \"";
    out += entries[i].name;
    out += "\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(entries[i].value));
    out += buf;
  }
  out += "\n";
  out += line_prefix;
  out += "}";
  return out;
}

void StatsRegistry::add_source(Source src) {
  std::lock_guard lk(mu_);
  sources_.push_back(std::move(src));
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot s;
  std::lock_guard lk(mu_);
  for (const Source& src : sources_) src(s);
  return s;
}

void StatsRegistry::mark_baseline(const std::string& tag) {
  // Take the snapshot before locking: snapshot() acquires mu_ itself and the
  // SpinLock is not reentrant.
  StatsSnapshot s = snapshot();
  std::lock_guard lk(mu_);
  for (auto& [name, snap] : baselines_) {
    if (name == tag) {
      snap = std::move(s);
      return;
    }
  }
  baselines_.emplace_back(tag, std::move(s));
}

StatsSnapshot StatsRegistry::delta_since(const std::string& tag) const {
  StatsSnapshot now = snapshot();
  std::lock_guard lk(mu_);
  for (const auto& [name, snap] : baselines_)
    if (name == tag) return now.delta_from(snap);
  return now;
}

}  // namespace darray::obs
