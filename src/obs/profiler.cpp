#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "common/logging.hpp"
#include "obs/trace.hpp"  // op_kind_name for collapsed/dump rendering

namespace darray::obs {

namespace detail {
constinit thread_local ProfCtx t_prof_ctx;
}  // namespace detail

namespace {

const char* const kPhaseNames[] = {"unknown", "busy", "idle"};
static_assert(sizeof(kPhaseNames) / sizeof(kPhaseNames[0]) ==
              static_cast<size_t>(ProfPhase::kMaxPhase));

size_t round_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* prof_phase_name(ProfPhase p) {
  return p < ProfPhase::kMaxPhase ? kPhaseNames[static_cast<size_t>(p)] : "?";
}

// --- sample ring -------------------------------------------------------------

ProfileRing::ProfileRing(size_t min_samples, uint32_t max_frames)
    : cap_(round_pow2(min_samples < 2 ? 2 : min_samples)),
      max_frames_(std::clamp<uint32_t>(max_frames, 2, kMaxFramesHard)),
      words_(new std::atomic<uint64_t>[cap_ * (max_frames_ + 1)]) {
  for (size_t i = 0; i < cap_ * (max_frames_ + 1); ++i)
    words_[i].store(0, std::memory_order_relaxed);
}

void ProfileRing::push(uint8_t phase, uint8_t op, const uintptr_t* pcs, uint32_t n) {
  if (n > max_frames_) n = max_frames_;
  const uint64_t h = head_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w = &words_[(h & (cap_ - 1)) * (max_frames_ + 1)];
  w[0].store((static_cast<uint64_t>(phase) << 16) | (static_cast<uint64_t>(op) << 8) | n,
             std::memory_order_relaxed);
  for (uint32_t i = 0; i < n; ++i)
    w[1 + i].store(static_cast<uint64_t>(pcs[i]), std::memory_order_relaxed);
  head_.store(h + 1, std::memory_order_release);
}

std::vector<ProfileRing::Sample> ProfileRing::collect() const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t n = h < cap_ ? h : cap_;
  std::vector<Sample> out;
  out.reserve(n);
  for (uint64_t i = h - n; i < h; ++i) {
    const std::atomic<uint64_t>* w = &words_[(i & (cap_ - 1)) * (max_frames_ + 1)];
    const uint64_t hdr = w[0].load(std::memory_order_relaxed);
    Sample s;
    s.phase = static_cast<uint8_t>(hdr >> 16);
    s.op = static_cast<uint8_t>(hdr >> 8);
    const uint32_t frames = std::min<uint32_t>(hdr & 0xff, max_frames_);
    s.pcs.reserve(frames);
    for (uint32_t f = 0; f < frames; ++f)
      s.pcs.push_back(static_cast<uintptr_t>(w[1 + f].load(std::memory_order_relaxed)));
    out.push_back(std::move(s));
  }
  return out;
}

// --- global state & signal handler -------------------------------------------

namespace {

struct ProfilerState {
  std::mutex session_mu;              // serializes start/stop (never the handler)
  std::atomic<bool> on{false};        // handler gate + session flag
  std::atomic<uint64_t> signals{0};
  std::atomic<uint64_t> unattributed{0};
  std::atomic<uint32_t> ring_samples{0};  // nonzero once ever configured
  std::atomic<uint32_t> max_frames{0};
  std::atomic<bool> handler_installed{false};
  ProfilerOptions opts;  // last session's options (dump header)
  std::thread ticker;    // wall mode only
  std::atomic<bool> ticker_stop{false};
};

ProfilerState& state() {
  static ProfilerState* s = new ProfilerState;  // leak: outlive static dtors
  return *s;
}

// Async-signal-safe frame-pointer walk. The leaf PC and starting frame
// pointer come from the interrupted context; every step is bounds-checked
// against the thread's registered stack and must move toward the stack base,
// so a clobbered or foreign frame chain terminates the walk instead of
// faulting inside the handler. Requires -fno-omit-frame-pointer (set
// globally in the top-level CMakeLists).
uint32_t capture_stack(void* ucv, const ThreadEntry* te, uintptr_t* pcs, uint32_t max) {
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
  uintptr_t pc = 0, fp = 0;
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;  // unknown ABI: leaf-only samples
#endif
  uint32_t n = 0;
  if (pc != 0 && n < max) pcs[n++] = pc;
  const uintptr_t lo = te->stack_lo, hi = te->stack_hi;
  if (lo == 0 || hi <= lo) return n;  // no stack bounds: leaf only
  while (n < max && fp >= lo && fp + 2 * sizeof(uintptr_t) <= hi &&
         (fp & (sizeof(uintptr_t) - 1)) == 0) {
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret = frame[1];
    const uintptr_t next = frame[0];
    if (ret < 4096) break;  // null-page "return address": corrupt frame
    pcs[n++] = ret;
    if (next <= fp) break;  // frames must march toward the stack base
    fp = next;
  }
  return n;
}

void sigprof_handler(int, siginfo_t*, void* ucv) {
  const int saved_errno = errno;  // the handler interrupts arbitrary code
  ProfilerState& s = state();
  s.signals.fetch_add(1, std::memory_order_relaxed);
  if (s.on.load(std::memory_order_relaxed)) {
    ThreadEntry* te = current_thread_entry();
    if (te == nullptr || te->ring == nullptr) {
      s.unattributed.fetch_add(1, std::memory_order_relaxed);
    } else {
      uintptr_t pcs[ProfileRing::kMaxFramesHard];
      const uint32_t n = capture_stack(ucv, te, pcs, te->ring->max_frames());
      if (n > 0)
        te->ring->push(detail::t_prof_ctx.phase, detail::t_prof_ctx.op, pcs, n);
    }
  }
  errno = saved_errno;
}

// Installed once and left in place for the process lifetime, gated by
// state().on: restoring SIG_DFL on stop would let one straggling SIGPROF
// (queued between disarm and restore) terminate the process.
void install_handler_once() {
  ProfilerState& s = state();
  if (s.handler_installed.load(std::memory_order_acquire)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, nullptr);
  s.handler_installed.store(true, std::memory_order_release);
}

void ticker_main(uint32_t hz) {
  register_current_thread("profticker");
  ProfilerState& s = state();
  const auto period = std::chrono::nanoseconds(1'000'000'000ull / (hz ? hz : 1));
  const pthread_t self = pthread_self();
  while (!s.ticker_stop.load(std::memory_order_acquire)) {
    for (ThreadEntry* te : all_thread_entries()) {
      // Re-check right before the kill: the exit hook flips alive before the
      // thread can be joined, keeping the pthread_t target valid (ESRCH at
      // worst for a zombie).
      if (te->handle == self || te->ring == nullptr) continue;
      if (!te->alive.load(std::memory_order_acquire)) continue;
      pthread_kill(te->handle, SIGPROF);
    }
    std::this_thread::sleep_for(period);
  }
}

}  // namespace

ProfileRing* profiler_make_ring_if_configured() {
  ProfilerState& s = state();
  const uint32_t samples = s.ring_samples.load(std::memory_order_acquire);
  if (samples == 0) return nullptr;
  // Leaked with the owning ThreadEntry (registry discipline).
  return new ProfileRing(samples, s.max_frames.load(std::memory_order_acquire));
}

bool profiler_start(const ProfilerOptions& opts) {
  if (opts.hz < 1 || opts.hz > 1000) {
    DLOG_ERROR("profiler: hz must be in [1, 1000], got %u", opts.hz);
    return false;
  }
  if (opts.max_frames < 2 || opts.max_frames > ProfileRing::kMaxFramesHard) {
    DLOG_ERROR("profiler: max_frames must be in [2, %u], got %u",
               ProfileRing::kMaxFramesHard, opts.max_frames);
    return false;
  }
  if (opts.ring_samples < 64) {
    DLOG_ERROR("profiler: ring_samples must be >= 64, got %u", opts.ring_samples);
    return false;
  }
  ProfilerState& s = state();
  std::lock_guard lk(s.session_mu);
  if (s.on.load(std::memory_order_acquire)) {
    DLOG_ERROR("profiler: a session is already running");
    return false;
  }
  s.opts = opts;
  // First configuration fixes the per-thread ring geometry (rings are
  // created once and leaked); later sessions reuse existing rings.
  uint32_t zero = 0;
  s.max_frames.compare_exchange_strong(zero, opts.max_frames);
  zero = 0;
  s.ring_samples.compare_exchange_strong(zero, opts.ring_samples);
  ensure_profile_rings();
  reset_profile();
  install_handler_once();
  s.on.store(true, std::memory_order_release);
  if (opts.mode == ProfileMode::kCpu) {
    itimerval itv;
    itv.it_interval.tv_sec = 0;
    itv.it_interval.tv_usec = static_cast<suseconds_t>(1'000'000 / opts.hz);
    if (itv.it_interval.tv_usec == 0) itv.it_interval.tv_usec = 1;
    itv.it_value = itv.it_interval;
    setitimer(ITIMER_PROF, &itv, nullptr);
  } else {
    s.ticker_stop.store(false, std::memory_order_release);
    s.ticker = std::thread([hz = opts.hz] { ticker_main(hz); });
  }
  return true;
}

void profiler_stop() {
  ProfilerState& s = state();
  std::lock_guard lk(s.session_mu);
  if (!s.on.load(std::memory_order_acquire)) return;
  if (s.opts.mode == ProfileMode::kCpu) {
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
  } else if (s.ticker.joinable()) {
    s.ticker_stop.store(true, std::memory_order_release);
    s.ticker.join();
  }
  // In-flight signals after the disarm hit the still-installed handler; the
  // gate makes them cheap no-ops (counted in profile.signals only).
  s.on.store(false, std::memory_order_release);
}

bool profiler_running() { return state().on.load(std::memory_order_acquire); }

ProfileTotals profile_totals() {
  ProfilerState& s = state();
  ProfileTotals t;
  t.signals = s.signals.load(std::memory_order_relaxed);
  t.unattributed = s.unattributed.load(std::memory_order_relaxed);
  for (const ThreadEntry* te : all_thread_entries()) {
    if (te->ring == nullptr) continue;
    ++t.rings;
    t.samples += te->ring->pushed();
    t.dropped += te->ring->dropped();
  }
  return t;
}

void reset_profile() {
  ProfilerState& s = state();
  s.signals.store(0, std::memory_order_relaxed);
  s.unattributed.store(0, std::memory_order_relaxed);
  for (ThreadEntry* te : all_thread_entries())
    if (te->ring != nullptr) te->ring->reset();
}

// --- collection --------------------------------------------------------------

std::vector<ProfileStack> collect_profile() {
  // Fold identical {thread, phase, op, stack} samples; map keys order
  // lexicographically over the PC vector, which is all we need.
  std::map<std::tuple<const ThreadEntry*, uint8_t, uint8_t, std::vector<uintptr_t>>,
           uint64_t>
      cells;
  for (ThreadEntry* te : all_thread_entries()) {
    if (te->ring == nullptr) continue;
    for (ProfileRing::Sample& s : te->ring->collect())
      ++cells[{te, s.phase, s.op, std::move(s.pcs)}];
  }
  std::vector<ProfileStack> out;
  out.reserve(cells.size());
  for (auto& [key, count] : cells) {
    ProfileStack ps;
    ps.thread = std::get<0>(key);
    ps.phase = std::get<1>(key);
    ps.op = std::get<2>(key);
    ps.pcs = std::get<3>(key);
    ps.count = count;
    out.push_back(std::move(ps));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileStack& a, const ProfileStack& b) { return a.count > b.count; });
  return out;
}

// --- symbolization & rendering (offline paths: dladdr + demangle are not
// signal-safe, so nothing here runs while a sample is being taken) ----------

std::string symbolize_pc(uintptr_t pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  // Function-granularity resolution on the raw PC: good enough for a
  // profiler (the ±1-byte return-address skew only matters at instruction
  // granularity).
  if (dladdr(reinterpret_cast<void*>(pc), &info) == 0 || info.dli_fbase == nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(pc));
    return buf;
  }
  if (info.dli_sname != nullptr) {
    int status = 0;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && dem != nullptr) {
      std::string out(dem);
      std::free(dem);
      return out;
    }
    if (dem != nullptr) std::free(dem);
    return info.dli_sname;
  }
  // Inside a mapped object but no dynamic symbol covers the PC (static
  // function, stripped object): module + offset keeps it attributable.
  const char* base = info.dli_fname != nullptr ? std::strrchr(info.dli_fname, '/') : nullptr;
  const char* mod = base != nullptr ? base + 1
                    : info.dli_fname != nullptr ? info.dli_fname
                                                : "?";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s+0x%llx", mod,
                static_cast<unsigned long long>(
                    pc - reinterpret_cast<uintptr_t>(info.dli_fbase)));
  return buf;
}

namespace {

// Collapsed-format frames must survive a "split on last space" parse and the
// ';' frame separator; demangled C++ names carry both.
std::string sanitize_frame(std::string s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == ' ') continue;
    out += (c == ';') ? ':' : c;
  }
  return out.empty() ? std::string("?") : out;
}

std::string phase_frame(uint8_t phase, uint8_t op) {
  std::string f = "(";
  f += prof_phase_name(static_cast<ProfPhase>(
      phase < static_cast<uint8_t>(ProfPhase::kMaxPhase) ? phase : 0));
  if (op != kProfNoOp && op < static_cast<uint8_t>(OpKind::kMaxOpKind)) {
    f += ":";
    f += op_kind_name(static_cast<OpKind>(op));
  }
  f += ")";
  return f;
}

}  // namespace

std::string profiler_collapsed() {
  const std::vector<ProfileStack> stacks = collect_profile();
  std::map<uintptr_t, std::string> syms;  // symbolize each distinct PC once
  std::string out;
  for (const ProfileStack& ps : stacks) {
    std::string line = ps.thread->name[0] != '\0' ? ps.thread->name : "[unnamed]";
    line += ";" + phase_frame(ps.phase, ps.op);
    for (size_t i = ps.pcs.size(); i-- > 0;) {  // root first
      auto it = syms.find(ps.pcs[i]);
      if (it == syms.end())
        it = syms.emplace(ps.pcs[i], sanitize_frame(symbolize_pc(ps.pcs[i]))).first;
      line += ";" + it->second;
    }
    line += " " + std::to_string(ps.count) + "\n";
    out += line;
  }
  return out;
}

bool dump_profile(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "profile dump: cannot open %s\n", path);
    return false;
  }
  ProfilerState& s = state();
  const ProfileTotals t = profile_totals();
  const std::vector<ThreadEntry*> threads = all_thread_entries();
  const std::vector<ProfileStack> stacks = collect_profile();

  std::fprintf(f, "darray_profile v1\n");
  std::fprintf(f, "mode %s hz %u max_frames %u\n",
               s.opts.mode == ProfileMode::kWall ? "wall" : "cpu", s.opts.hz,
               s.opts.max_frames);
  std::fprintf(f,
               "totals samples %llu dropped %llu signals %llu unattributed %llu "
               "rings %llu\n",
               static_cast<unsigned long long>(t.samples),
               static_cast<unsigned long long>(t.dropped),
               static_cast<unsigned long long>(t.signals),
               static_cast<unsigned long long>(t.unattributed),
               static_cast<unsigned long long>(t.rings));
  for (size_t p = 0; p < static_cast<size_t>(ProfPhase::kMaxPhase); ++p)
    std::fprintf(f, "phase %zu %s\n", p, prof_phase_name(static_cast<ProfPhase>(p)));
  for (size_t o = 0; o < static_cast<size_t>(OpKind::kMaxOpKind); ++o)
    std::fprintf(f, "op %zu %s\n", o, op_kind_name(static_cast<OpKind>(o)));
  // Thread table: stack lines refer to threads by index into this list.
  std::map<const ThreadEntry*, size_t> thread_idx;
  for (size_t i = 0; i < threads.size(); ++i) {
    thread_idx[threads[i]] = i;
    std::fprintf(f, "thread %zu tid %llu alive %d name %s\n", i,
                 static_cast<unsigned long long>(threads[i]->tid),
                 threads[i]->alive.load(std::memory_order_relaxed) ? 1 : 0,
                 threads[i]->name[0] != '\0' ? threads[i]->name : "[unnamed]");
  }
  // Raw /proc/self/maps so offline tooling can map PCs to modules even for
  // addresses dladdr could not resolve here.
  if (std::FILE* maps = std::fopen("/proc/self/maps", "r")) {
    char line[512];
    while (std::fgets(line, sizeof(line), maps) != nullptr)
      std::fprintf(f, "map %s", line);
    std::fclose(maps);
  }
  // dladdr symbol table, one entry per distinct PC (computed now, offline
  // from any signal context — "sym <pc> <name>", name may contain spaces).
  std::map<uintptr_t, std::string> syms;
  for (const ProfileStack& ps : stacks)
    for (const uintptr_t pc : ps.pcs)
      if (syms.find(pc) == syms.end()) syms.emplace(pc, symbolize_pc(pc));
  for (const auto& [pc, name] : syms)
    std::fprintf(f, "sym 0x%llx %s\n", static_cast<unsigned long long>(pc),
                 name.c_str());
  // Aggregated stacks, leaf-first PC order (matching capture order).
  for (const ProfileStack& ps : stacks) {
    std::fprintf(f, "stack t%zu p%u o%u n%llu", thread_idx[ps.thread],
                 ps.phase, ps.op, static_cast<unsigned long long>(ps.count));
    for (const uintptr_t pc : ps.pcs)
      std::fprintf(f, " 0x%llx", static_cast<unsigned long long>(pc));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

}  // namespace darray::obs
