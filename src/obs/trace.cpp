#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <cstring>

#include "common/histogram.hpp"  // now_ns()
#include "common/spinlock.hpp"
#include "obs/thread_registry.hpp"

namespace darray::obs {

namespace {

const char* const kEvNames[] = {
    "op_begin", "op_end",      "miss",  "dir_req", "dir_resp", "combine_flush",
    "wr_post",  "wr_complete", "retry", "backoff", "fault",
};
static_assert(sizeof(kEvNames) / sizeof(kEvNames[0]) == static_cast<size_t>(Ev::kMaxEv));

const char* const kOpKindNames[] = {
    "get",   "set",   "apply",     "rlock",     "wlock",
    "unlock", "pin",  "unpin",     "get_range", "set_range",
    "dot",   "axpy",  "scale",     "norm2",     "gemv",
};
static_assert(sizeof(kOpKindNames) / sizeof(kOpKindNames[0]) ==
              static_cast<size_t>(OpKind::kMaxOpKind));

size_t round_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Packs ev/kind/node/a into one word so a slot is exactly 4 stores.
uint64_t pack_meta(const TraceEvent& e) {
  return (static_cast<uint64_t>(e.ev) << 56) | (static_cast<uint64_t>(e.kind) << 48) |
         (static_cast<uint64_t>(e.node) << 32) | e.a;
}

void unpack_meta(uint64_t m, TraceEvent& e) {
  e.ev = static_cast<Ev>(m >> 56);
  e.kind = static_cast<uint8_t>(m >> 48);
  e.node = static_cast<uint16_t>(m >> 32);
  e.a = static_cast<uint32_t>(m);
}

}  // namespace

const char* ev_name(Ev e) {
  return e < Ev::kMaxEv ? kEvNames[static_cast<size_t>(e)] : "?";
}

const char* op_kind_name(OpKind k) {
  return k < OpKind::kMaxOpKind ? kOpKindNames[static_cast<size_t>(k)] : "?";
}

TraceRing::TraceRing(size_t min_capacity)
    : cap_(round_pow2(min_capacity < 2 ? 2 : min_capacity)),
      words_(new std::atomic<uint64_t>[cap_ * 4]) {
  for (size_t i = 0; i < cap_ * 4; ++i) words_[i].store(0, std::memory_order_relaxed);
}

void TraceRing::set_name(const char* name) {
  std::strncpy(name_, name != nullptr ? name : "", sizeof(name_) - 1);
  name_[sizeof(name_) - 1] = '\0';
}

void TraceRing::push(const TraceEvent& e) {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w = &words_[(h & (cap_ - 1)) * 4];
  w[0].store(e.ts_ns, std::memory_order_relaxed);
  w[1].store(e.corr, std::memory_order_relaxed);
  w[2].store(pack_meta(e), std::memory_order_relaxed);
  w[3].store(e.b, std::memory_order_relaxed);
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::collect() const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t n = h < cap_ ? h : cap_;
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (uint64_t i = h - n; i < h; ++i) {
    const std::atomic<uint64_t>* w = &words_[(i & (cap_ - 1)) * 4];
    TraceEvent e;
    e.ts_ns = w[0].load(std::memory_order_relaxed);
    e.corr = w[1].load(std::memory_order_relaxed);
    unpack_meta(w[2].load(std::memory_order_relaxed), e);
    e.b = w[3].load(std::memory_order_relaxed);
    e.ring = id_;
    out.push_back(e);
  }
  return out;
}

// --- global ring registry ----------------------------------------------------
// Rings are owned here and never destroyed while the process lives, so a dump
// after the recording thread exited (the common case: join workers, then
// report) reads valid storage.

namespace {

struct RingRegistry {
  SpinLock mu;
  std::vector<std::unique_ptr<TraceRing>> rings;
};

RingRegistry& registry() {
  static RingRegistry* r = new RingRegistry;  // leak: outlive static dtor order
  return *r;
}

std::atomic<size_t> g_ring_cap_override{0};

size_t thread_ring_capacity() {
  const size_t o = g_ring_cap_override.load(std::memory_order_relaxed);
  if (o != 0) return o;
  static const size_t cap = [] {
    const char* e = std::getenv("DARRAY_TRACE_RING");
    const size_t v = e ? std::strtoull(e, nullptr, 10) : 0;
    return v ? v : size_t{16384};
  }();
  return cap;
}

std::atomic<uint64_t> g_thread_slots{0};

#if DARRAY_TRACING
TraceRing& thread_ring() {
  thread_local TraceRing* ring = [] {
    auto owned = std::make_unique<TraceRing>(thread_ring_capacity());
    TraceRing* p = owned.get();
    // Threads register (obs/thread_registry) at loop entry, before their
    // first traced event, so the name is normally already set here.
    p->set_name(current_thread_name());
    RingRegistry& reg = registry();
    std::lock_guard lk(reg.mu);
    p->set_id(static_cast<uint16_t>(reg.rings.size()));
    reg.rings.push_back(std::move(owned));
    return p;
  }();
  return *ring;
}
#endif

}  // namespace

#if DARRAY_TRACING

namespace detail {
std::atomic<bool> g_trace_on{false};
}

void set_tracing(bool on) { detail::g_trace_on.store(on, std::memory_order_relaxed); }

uint64_t new_corr_id() {
  // 22-bit thread slot | 42-bit sequence; sequence starts at 1 so id 0 always
  // means "no correlation".
  thread_local uint64_t base =
      (g_thread_slots.fetch_add(1, std::memory_order_relaxed) + 1) << 42;
  thread_local uint64_t seq = 0;
  return base | ++seq;
}

void record(Ev ev, uint64_t corr, uint8_t kind, uint16_t node, uint32_t a, uint64_t b) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.corr = corr;
  e.ev = ev;
  e.kind = kind;
  e.node = node;
  e.a = a;
  e.b = b;
  thread_ring().push(e);
}

#endif  // DARRAY_TRACING

void set_trace_ring_capacity(size_t events) {
  g_ring_cap_override.store(events, std::memory_order_relaxed);
}

TraceTotals trace_totals() {
  TraceTotals t;
  RingRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  t.rings = reg.rings.size();
  for (const auto& r : reg.rings) {
    const uint64_t pushed = r->pushed();
    t.recorded += pushed;
    t.dropped += r->dropped();
    t.retained += pushed - r->dropped();
  }
  return t;
}

std::vector<TraceRingInfo> trace_ring_infos() {
  std::vector<TraceRingInfo> out;
  RingRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  out.reserve(reg.rings.size());
  for (const auto& r : reg.rings) {
    TraceRingInfo info;
    info.id = r->id();
    info.pushed = r->pushed();
    info.dropped = r->dropped();
    info.retained = info.pushed - info.dropped;
    info.name = r->name();
    out.push_back(info);
  }
  return out;
}

std::vector<TraceEvent> collect_trace() {
  std::vector<TraceEvent> all;
  {
    RingRegistry& reg = registry();
    std::lock_guard lk(reg.mu);
    for (const auto& r : reg.rings) {
      std::vector<TraceEvent> part = r->collect();
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& x, const TraceEvent& y) { return x.ts_ns < y.ts_ns; });
  return all;
}

bool dump_trace_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "trace dump: cannot open %s\n", path);
    return false;
  }
  const std::vector<TraceEvent> evs = collect_trace();
  const TraceTotals totals = trace_totals();
  const std::vector<TraceRingInfo> rings = trace_ring_infos();
  std::fprintf(f, "{\"trace_format\": 2, \"recorded\": %llu, \"dropped\": %llu, \"rings\": [",
               static_cast<unsigned long long>(totals.recorded),
               static_cast<unsigned long long>(totals.dropped));
  for (size_t i = 0; i < rings.size(); ++i) {
    std::fprintf(f,
                 "%s{\"id\": %u, \"name\": \"%s\", \"pushed\": %llu, \"dropped\": %llu}",
                 i == 0 ? "" : ", ", rings[i].id, rings[i].name.c_str(),
                 static_cast<unsigned long long>(rings[i].pushed),
                 static_cast<unsigned long long>(rings[i].dropped));
  }
  std::fprintf(f, "], \"events\": [\n");
  for (size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    std::fprintf(f,
                 "{\"t\": %llu, \"c\": %llu, \"ev\": \"%s\", \"k\": %u, \"node\": %u, "
                 "\"a\": %u, \"b\": %llu, \"r\": %u}%s\n",
                 static_cast<unsigned long long>(e.ts_ns),
                 static_cast<unsigned long long>(e.corr), ev_name(e.ev), e.kind, e.node, e.a,
                 static_cast<unsigned long long>(e.b), e.ring, i + 1 < evs.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

void reset_trace() {
  RingRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  for (const auto& r : reg.rings) r->reset();
}

}  // namespace darray::obs
