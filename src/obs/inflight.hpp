// In-flight op registry for the slow-op watchdog: one slot per recording
// thread holding the correlation id, start timestamp, and identity of the
// API-level op currently executing on that thread. The OpSpan (core layer)
// registers on entry and clears on exit; the Cluster's watchdog thread scans
// all slots and fires exactly once per offending correlation id.
//
// Writer protocol (the owning thread): publish start/meta/index with relaxed
// stores, then corr with release — so a reader that acquires a nonzero corr
// sees the matching fields. Readers re-check corr after sampling the fields
// and skip the slot if it changed mid-read (a torn sample of a *different*
// op is possible otherwise; a torn sample is never UB).
//
// Exactly-once: each slot carries a `reported` word touched only by the
// single watchdog thread. An offender is reported when its corr is observed
// over-deadline with reported != corr; reporting stores corr into reported,
// so subsequent scans skip it until a new op (new corr) occupies the slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "obs/trace.hpp"  // OpKind, DARRAY_TRACING

namespace darray::obs {

// One over-deadline op, as sampled by a watchdog scan.
struct SlowOp {
  uint64_t corr = 0;
  uint64_t start_ns = 0;
  uint64_t index = 0;
  OpKind kind = OpKind::kGet;
  uint16_t node = 0;
};

#if DARRAY_TRACING

// Marks the calling thread's op as in flight. Returns false (and records
// nothing) if the slot is already occupied — a nested span keeps the outer
// op as the watchdog's subject. A true return must be paired with
// inflight_end() on the same thread.
bool inflight_begin(uint64_t corr, OpKind kind, uint16_t node, uint64_t index,
                    uint64_t start_ns);
void inflight_end();

#else  // DARRAY_TRACING == 0: spans never register; scans see an empty set.

inline bool inflight_begin(uint64_t, OpKind, uint16_t, uint64_t, uint64_t) { return false; }
inline void inflight_end() {}

#endif  // DARRAY_TRACING

// Scans every slot; invokes fn for each op in flight longer than deadline_ns
// that has not been reported yet, and marks it reported. Single-caller only
// (the exactly-once bookkeeping assumes one scanning thread). Returns the
// number of new reports. Defined unconditionally so the watchdog builds with
// tracing compiled out (it then finds nothing).
size_t watchdog_scan(uint64_t now_ns, uint64_t deadline_ns,
                     const std::function<void(const SlowOp&)>& fn);

}  // namespace darray::obs
