// Process-global counters for the array-compute layer (src/compute).
//
// They live in obs rather than in src/compute so the cluster's default
// StatsRegistry sources (runtime layer) can export them without a dependency
// on the compute layer above it — the same layering trick as the payload-pool
// counters in net. Monotonic, relaxed: bumped from application threads inside
// cursors and collectives, read by the telemetry sampler and /metrics.
#pragma once

#include <atomic>
#include <cstdint>

namespace darray::obs {

struct ComputeCounters {
  std::atomic<uint64_t> chunks{0};           // cursor views handed to kernels
  std::atomic<uint64_t> prefetch_hits{0};    // remote-bearing view fully cached on arrival
  std::atomic<uint64_t> prefetch_misses{0};  // remote-bearing view paid a demand fetch
  std::atomic<uint64_t> reduce_msgs{0};      // kReducePart messages sent
  std::atomic<uint64_t> collectives{0};      // collective calls (per participating node)

  void bump(std::atomic<uint64_t> ComputeCounters::* c, uint64_t n = 1) {
    (this->*c).fetch_add(n, std::memory_order_relaxed);
  }
};

inline ComputeCounters& compute_counters() {
  static ComputeCounters c;
  return c;
}

}  // namespace darray::obs
