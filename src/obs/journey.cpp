#include "obs/journey.hpp"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace darray::obs {

const char* journey_stage_name(JourneyStage s) {
  switch (s) {
    case JourneyStage::kAdmit: return "admit";
    case JourneyStage::kQueue: return "queue";
    case JourneyStage::kBackend: return "backend";
    case JourneyStage::kNet: return "net";
    case JourneyStage::kDeliver: return "deliver";
    case JourneyStage::kMaxStage: break;
  }
  return "?";
}

// Names for the serve::ClientOp values carried in RequestJourney::op. obs sits
// below serve in the link graph, so the wire convention (get=0 put=1 delete=2)
// is mirrored here rather than included; protocol_test pins the values.
static const char* journey_op_name(uint8_t op) {
  switch (op) {
    case 0: return "get";
    case 1: return "put";
    case 2: return "del";
    default: return "?";
  }
}

uint64_t journey_trace_id() {
  if (uint64_t id = new_corr_id()) return id;
  // Tracing compiled out: keep journeys addressable with a local counter.
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void JourneyCollector::configure(bool enabled, uint32_t retain_cap, uint64_t slow_floor_ns) {
  if (retain_cap == 0) retain_cap = 1;
  retain_cap_.store(retain_cap, std::memory_order_relaxed);
  slow_floor_ns_.store(slow_floor_ns, std::memory_order_relaxed);
  enabled_.store(enabled, std::memory_order_release);
}

void JourneyCollector::complete(const RequestJourney& j) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  for (size_t i = 0; i < kNumJourneyStages; ++i) {
    const uint64_t d = j.stage_ns(static_cast<JourneyStage>(i));
    if (d) stages_[i].record(d);
  }
  const uint64_t total = j.total_ns();
  if (total) e2e_.record(total);

  const uint64_t n = completed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % kThresholdEvery == 0) {
    const uint64_t p99 = e2e_.snapshot().percentile_ns(0.99);
    const uint64_t floor = slow_floor_ns_.load(std::memory_order_relaxed);
    threshold_ns_.store(p99 > floor ? p99 : floor, std::memory_order_relaxed);
  }

  // Tail decision: a request is worth keeping if it is above the slow floor
  // or above the live p99 (once the threshold has warmed up).
  const uint64_t floor = slow_floor_ns_.load(std::memory_order_relaxed);
  const uint64_t thresh = threshold_ns_.load(std::memory_order_relaxed);
  const bool slow = (floor && total >= floor) || (thresh && total >= thresh);
  if (!slow) return;

  std::lock_guard<SpinLock> g(mu_);
  retain_locked(j);
}

void JourneyCollector::retain_exceptional(const RequestJourney& j) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  std::lock_guard<SpinLock> g(mu_);
  retain_locked(j);
}

void JourneyCollector::retain_locked(const RequestJourney& j) {
  const size_t cap = retain_cap_.load(std::memory_order_relaxed);
  if (ring_.size() < cap) {
    ring_.push_back(j);
  } else {
    if (ring_.size() > cap) ring_.resize(cap);  // cap was lowered mid-run
    ring_[ring_pos_ % cap] = j;
  }
  ring_pos_ = (ring_pos_ + 1) % cap;
  retained_.fetch_add(1, std::memory_order_relaxed);

  if (exemplars_.empty()) exemplars_.resize(kNumJourneyStages * kHistBuckets);
  for (size_t i = 0; i < kNumJourneyStages; ++i) {
    const uint64_t d = j.stage_ns(static_cast<JourneyStage>(i));
    if (!d || !j.trace) continue;
    const size_t b = static_cast<size_t>(AtomicLatencyHistogram::bucket_index(d));
    exemplars_[i * kHistBuckets + b] = Exemplar{j.trace, d};
  }
}

HistogramSnapshot JourneyCollector::stage_snapshot(JourneyStage s) const {
  if (s >= JourneyStage::kMaxStage) return {};
  return stages_[static_cast<size_t>(s)].snapshot();
}

bool JourneyCollector::exemplar_for(JourneyStage stage, int bucket, Exemplar& out) const {
  if (stage >= JourneyStage::kMaxStage || bucket < 0 || bucket >= kHistBuckets) return false;
  std::lock_guard<SpinLock> g(mu_);
  if (exemplars_.empty()) return false;
  const Exemplar& e =
      exemplars_[static_cast<size_t>(stage) * kHistBuckets + static_cast<size_t>(bucket)];
  if (!e.trace) return false;
  out = e;
  return true;
}

bool JourneyCollector::exemplar_for_upper(JourneyStage stage, uint64_t upper_ns,
                                          Exemplar& out) const {
  // The scheme's linear row is inclusive of its rendered upper while the
  // log-linear rows are exclusive, so probe both candidate indices — but only
  // accept an exemplar whose value actually renders under this upper, never
  // one bled in from a neighboring bucket (it would violate the OpenMetrics
  // "exemplar value within the bucket" rule).
  const uint64_t probes[2] = {upper_ns ? upper_ns - 1 : 0, upper_ns};
  for (const uint64_t probe : probes) {
    Exemplar e;
    if (exemplar_for(stage, AtomicLatencyHistogram::bucket_index(probe), e) &&
        AtomicLatencyHistogram::bucket_upper(
            AtomicLatencyHistogram::bucket_index(e.value_ns)) == upper_ns) {
      out = e;
      return true;
    }
  }
  return false;
}

std::vector<RequestJourney> JourneyCollector::snapshot_retained() const {
  std::lock_guard<SpinLock> g(mu_);
  std::vector<RequestJourney> out;
  out.reserve(ring_.size());
  const size_t cap = retain_cap_.load(std::memory_order_relaxed);
  if (ring_.size() < cap) {
    out = ring_;  // not yet wrapped: insertion order is already oldest-first
  } else {
    for (size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(ring_pos_ + i) % ring_.size()]);
  }
  return out;
}

std::string JourneyCollector::slow_json() const {
  const auto js = snapshot_retained();
  std::string out;
  out.reserve(256 + js.size() * 256);
  char line[512];
  std::snprintf(line, sizeof line,
                "{\"enabled\": %s, \"completed\": %" PRIu64 ", \"retained\": %" PRIu64
                ", \"threshold_ns\": %" PRIu64 ", \"journeys\": [\n",
                enabled() ? "true" : "false", completed(), retained(), threshold_ns());
  out += line;
  for (size_t i = 0; i < js.size(); ++i) {
    const RequestJourney& j = js[i];
    // One journey per line, fixed field order: line-oriented consumers
    // (darray-trace --journeys) parse this with sscanf.
    std::snprintf(
        line, sizeof line,
        "{\"trace\": \"%016" PRIx64 "\", \"origin\": %u, \"owner\": %u, \"session\": %u, "
        "\"seq\": %" PRIu64 ", \"op\": \"%s\", \"status\": \"%s\", \"flags\": %u, "
        "\"t_submit\": %" PRIu64 ", \"admit_ns\": %" PRIu64 ", \"queue_ns\": %" PRIu64
        ", \"backend_ns\": %" PRIu64 ", \"net_ns\": %" PRIu64 ", \"deliver_ns\": %" PRIu64
        ", \"total_ns\": %" PRIu64 "}%s\n",
        j.trace, j.origin, j.owner, j.session, j.seq, journey_op_name(j.op),
        status_name(static_cast<Status>(j.status)), j.flags, j.t_submit,
        j.stage_ns(JourneyStage::kAdmit), j.stage_ns(JourneyStage::kQueue),
        j.stage_ns(JourneyStage::kBackend), j.stage_ns(JourneyStage::kNet),
        j.stage_ns(JourneyStage::kDeliver), j.total_ns(),
        i + 1 < js.size() ? "," : "");
    out += line;
  }
  out += "]}\n";
  return out;
}

bool JourneyCollector::dump_json(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  const std::string payload = slow_json();
  const bool ok = std::fwrite(payload.data(), 1, payload.size(), f) == payload.size();
  return std::fclose(f) == 0 && ok;
}

void JourneyCollector::reset() {
  std::lock_guard<SpinLock> g(mu_);
  ring_.clear();
  ring_pos_ = 0;
  exemplars_.clear();
  completed_.store(0, std::memory_order_relaxed);
  retained_.store(0, std::memory_order_relaxed);
  threshold_ns_.store(0, std::memory_order_relaxed);
  for (auto& h : stages_) h.reset();
  e2e_.reset();
}

JourneyCollector& journey_collector() {
  static JourneyCollector* c = new JourneyCollector();  // leaked, like the hist registries
  return *c;
}

void JourneyCollector::reset_histograms() {
  for (auto& h : stages_) h.reset();
  e2e_.reset();
  threshold_ns_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
}

void reset_stage_histograms() { journey_collector().reset_histograms(); }

}  // namespace darray::obs
