// One stats plane over many layers: the scattered counters (FabricStats, the
// runtime cache/combine counters, payload-pool hits, chaos fault counters,
// trace-ring totals) register as named sources and a single snapshot() walks
// them all. Names are dotted — "fabric.sends", "runtime.local_read_misses",
// "pool.hits", "chaos.rnr_rejections" — so reports and tools can group by
// prefix. Counter values are monotonic per source; a snapshot taken while
// traffic is live is a consistent *sample* (each counter read once, fields of
// one source read together), not an atomic cut across layers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/spinlock.hpp"
#include "obs/latency_histogram.hpp"

namespace darray::obs {

struct StatEntry {
  std::string name;
  uint64_t value = 0;
};

// True for entries whose value is a point sample (percentiles, means, maxima:
// ".mean_ns", ".p50_ns", ..., ".max_ns") rather than a monotonic counter.
// Deltas subtract counters and pass point samples through; the telemetry
// sampler stores counters as per-interval deltas and point samples raw.
// Histogram bucket entries (".bkt_<upper>") and ".count"/".sum_ns" are
// counters — see StatsSnapshot::add_histogram.
bool stats_is_point_sample(std::string_view name);

// Percentile summary of one LatencyHistogram, flattened so snapshots stay a
// plain name→value list (".count", ".mean_ns", ".p50_ns", ".p99_ns").
struct StatsSnapshot {
  std::vector<StatEntry> entries;

  void add(std::string name, uint64_t value) { entries.push_back({std::move(name), value}); }
  void add_histogram(const std::string& prefix, const LatencyHistogram& h);
  // Richer flattening for the atomic histograms: .count/.sum_ns/.mean_ns/
  // .p50_ns/.p90_ns/.p99_ns/.p999_ns/.max_ns, plus one ".bkt_<upper_ns>"
  // entry per non-empty bucket carrying that bucket's own (non-cumulative)
  // count. Bucket entries are monotonic counters, so snapshot deltas subtract
  // them like any other counter — the /metrics renderer turns them back into
  // Prometheus' cumulative `le` form at exposition time.
  void add_histogram(const std::string& prefix, const HistogramSnapshot& h);

  const uint64_t* find(std::string_view name) const;
  uint64_t value_or(std::string_view name, uint64_t def = 0) const;

  // Per-name saturating difference (this - base); names absent from `base`
  // keep their value. Meaningful for monotonic counters — percentile entries
  // (.p50_ns etc.) are point samples, and their differences are noise, so
  // they are passed through unchanged rather than subtracted.
  StatsSnapshot delta_from(const StatsSnapshot& base) const;

  // {"a.b": 1, "a.c": 2, ...} — one entry per line, each line prefixed with
  // `line_prefix` (so reports can indent the block they embed it in).
  std::string to_json(const char* line_prefix = "") const;
};

class StatsRegistry {
 public:
  using Source = std::function<void(StatsSnapshot&)>;

  // Sources run in registration order at every snapshot(). A source must be
  // callable from any thread and must not block on the data path it observes.
  void add_source(Source src);

  StatsSnapshot snapshot() const;

  // Named baselines: mark_baseline("warmup") captures a snapshot under `tag`
  // (replacing a previous one with the same tag); delta_since("warmup")
  // returns the current snapshot minus that baseline. An unknown tag yields
  // the plain current snapshot (delta from empty).
  void mark_baseline(const std::string& tag);
  StatsSnapshot delta_since(const std::string& tag) const;

 private:
  mutable SpinLock mu_;
  std::vector<Source> sources_;
  std::vector<std::pair<std::string, StatsSnapshot>> baselines_;
};

}  // namespace darray::obs
