#include "obs/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/journey.hpp"

namespace darray::obs {

int AtomicLatencyHistogram::bucket_index(uint64_t nanos) {
  if (nanos < (1u << kHistSubBits)) return static_cast<int>(nanos);
  const int msb = 63 - std::countl_zero(nanos);
  const int sub =
      static_cast<int>((nanos >> (msb - kHistSubBits)) & ((1 << kHistSubBits) - 1));
  const int idx = ((msb - kHistSubBits + 1) << kHistSubBits) + sub;
  return std::min(idx, kHistBuckets - 1);
}

uint64_t AtomicLatencyHistogram::bucket_upper(int idx) {
  if (idx < (1 << kHistSubBits)) return static_cast<uint64_t>(idx);
  const int octave = (idx >> kHistSubBits) + kHistSubBits - 1;
  const int sub = idx & ((1 << kHistSubBits) - 1);
  const int shift = octave - kHistSubBits;
  const uint64_t base = (1ull << kHistSubBits) + static_cast<uint64_t>(sub) + 1;
  if (shift >= 60) return ~0ull;  // base <= 2^4: larger shifts would overflow
  return base << shift;
}

uint64_t HistogramSnapshot::percentile_ns(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets[static_cast<size_t>(i)];
    if (seen >= target) return AtomicLatencyHistogram::bucket_upper(i);
  }
  return AtomicLatencyHistogram::bucket_upper(kHistBuckets - 1);
}

uint64_t HistogramSnapshot::max_ns() const {
  for (int i = kHistBuckets - 1; i >= 0; --i)
    if (buckets[static_cast<size_t>(i)] != 0) return AtomicLatencyHistogram::bucket_upper(i);
  return 0;
}

std::string HistogramSnapshot::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.0fns p50=%lluns p90=%lluns p99=%lluns p999=%lluns max=%lluns",
                static_cast<unsigned long long>(count), mean_ns(),
                static_cast<unsigned long long>(percentile_ns(0.50)),
                static_cast<unsigned long long>(percentile_ns(0.90)),
                static_cast<unsigned long long>(percentile_ns(0.99)),
                static_cast<unsigned long long>(percentile_ns(0.999)),
                static_cast<unsigned long long>(max_ns()));
  return buf;
}

// --- registries --------------------------------------------------------------
// Leaked flat arrays (like the trace-ring registry): allocated on first touch,
// never destroyed, so stats sources and dumps read valid storage regardless
// of thread/cluster teardown order. ~1.5 MB total when touched.

namespace {

constexpr size_t kOpKinds = static_cast<size_t>(OpKind::kMaxOpKind);

AtomicLatencyHistogram* op_cells() {
  static AtomicLatencyHistogram* cells =
      new AtomicLatencyHistogram[kOpKinds * kHistMaxNodes]();
  return cells;
}

AtomicLatencyHistogram* msg_cells() {
  static AtomicLatencyHistogram* cells = new AtomicLatencyHistogram[kMaxMsgClasses]();
  return cells;
}

}  // namespace

AtomicLatencyHistogram& op_latency_hist(OpKind kind, uint16_t node) {
  const size_t k = std::min(static_cast<size_t>(kind), kOpKinds - 1);
  const size_t n = std::min<size_t>(node, kHistMaxNodes - 1);
  return op_cells()[k * kHistMaxNodes + n];
}

void record_op_latency(OpKind kind, uint32_t node, uint64_t nanos) {
  if (node >= kHistMaxNodes) return;  // unbound thread: no node cell to charge
  op_latency_hist(kind, static_cast<uint16_t>(node)).record(nanos);
}

AtomicLatencyHistogram& msg_class_hist(uint8_t cls) {
  return msg_cells()[std::min<size_t>(cls, kMaxMsgClasses - 1)];
}

HistogramSnapshot op_latency_snapshot(OpKind kind, uint16_t node) {
  return op_latency_hist(kind, node).snapshot();
}

HistogramSnapshot op_latency_snapshot(OpKind kind) {
  HistogramSnapshot s;
  for (uint32_t n = 0; n < kHistMaxNodes; ++n)
    s.merge(op_latency_hist(kind, static_cast<uint16_t>(n)).snapshot());
  return s;
}

HistogramSnapshot msg_class_snapshot(uint8_t cls) { return msg_class_hist(cls).snapshot(); }

void reset_latency_histograms() {
  for (size_t i = 0; i < kOpKinds * kHistMaxNodes; ++i) op_cells()[i].reset();
  for (size_t i = 0; i < kMaxMsgClasses; ++i) msg_cells()[i].reset();
  reset_stage_histograms();  // hist.stage.* cells live in the journey collector
}

}  // namespace darray::obs
