#include "obs/thread_registry.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <mutex>

#include "common/spinlock.hpp"
#include "obs/profiler.hpp"

namespace darray::obs {

namespace {

// Entries are owned here and never destroyed while the process lives (the
// trace-ring registry discipline): a profile dump taken after a worker was
// joined still reads a valid name, stack bounds, and sample ring.
struct Registry {
  SpinLock mu;
  std::vector<ThreadEntry*> entries;
};

Registry& registry() {
  static Registry* r = new Registry;  // leak: outlive static dtor order
  return *r;
}

constinit thread_local ThreadEntry* t_entry = nullptr;

// Thread-exit hook: flips alive before the thread becomes joinable-complete,
// so the wall-clock profiler stops signalling it. The pthread_t itself stays
// valid (ESRCH at worst) until the thread is joined; sessions that join
// registered threads stop the profiler first (Cluster teardown does).
struct EntryGuard {
  ~EntryGuard() {
    if (t_entry != nullptr) t_entry->alive.store(false, std::memory_order_release);
  }
};
thread_local EntryGuard t_guard;

void copy_name(ThreadEntry& e, const char* name) {
  std::strncpy(e.name, name != nullptr ? name : "", kThreadNameMax);
  e.name[kThreadNameMax] = '\0';
}

}  // namespace

ThreadEntry* register_current_thread(const char* name) {
  if (t_entry != nullptr) {  // re-registration = rename in place
    copy_name(*t_entry, name);
    pthread_setname_np(pthread_self(), t_entry->name);
    return t_entry;
  }
  (void)t_guard;  // odr-use: arm the thread-exit hook
  auto* e = new ThreadEntry;
  copy_name(*e, name);
  e->tid = static_cast<uint64_t>(::syscall(SYS_gettid));
  e->handle = pthread_self();
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      e->stack_lo = reinterpret_cast<uintptr_t>(addr);
      e->stack_hi = e->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  pthread_setname_np(pthread_self(), e->name);
  {
    Registry& reg = registry();
    std::lock_guard lk(reg.mu);
    // The ring must exist before the entry is visible to the signal handler:
    // a handler cannot allocate, so a ring-less entry would drop its samples.
    e->ring = profiler_make_ring_if_configured();
    reg.entries.push_back(e);
  }
  t_entry = e;  // publish last: the handler reads this thread_local
  return e;
}

ThreadEntry* current_thread_entry() { return t_entry; }

const char* current_thread_name() { return t_entry != nullptr ? t_entry->name : ""; }

std::vector<ThreadEntry*> all_thread_entries() {
  Registry& reg = registry();
  std::lock_guard lk(reg.mu);
  return reg.entries;
}

// Called by profiler_start() once sizes are configured: entries registered
// before any profiler existed get their rings now, serialized against
// concurrent registration by the registry lock.
void ensure_profile_rings() {
  Registry& reg = registry();
  std::lock_guard lk(reg.mu);
  for (ThreadEntry* e : reg.entries)
    if (e->ring == nullptr) e->ring = profiler_make_ring_if_configured();
}

}  // namespace darray::obs
