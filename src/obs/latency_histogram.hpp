// Lock-free HDR-style latency histograms (obs v2). Same log-linear bucket
// scheme as common/histogram.hpp but with atomic buckets, so any thread can
// record while any other thread snapshots or merges — no locks, no allocation
// on the record path. Resolution is 8 sub-buckets per octave (3 significant
// bits, ≤12.5% relative error), covering 1 ns to ~4.5 minutes before the top
// bucket clamps; the product range of interest (~1 µs – 10 s) sits well
// inside that.
//
// record() is exactly two relaxed fetch_adds (bucket + running sum). The
// count is derived by summing buckets at snapshot time and max is the upper
// bound of the highest non-empty bucket, so the hot path never pays for a
// CAS loop. Percentile queries run on a plain-value HistogramSnapshot, which
// is copyable and mergeable across {op-type × node} and message-class cells.
//
// Two process-global registries back the instrumented sites:
//   op_latency_hist(kind, node)  — per {OpKind × recording node}, fed at
//                                  OpSpan end (core/darray.hpp);
//   msg_class_hist(cls)          — per wire message class (MsgType value, or
//                                  kMaxMsgType for one-sided data WRITEs),
//                                  fed at send-completion (net/comm_layer).
// Both are leaked singletons like the trace-ring registry, so dumps after
// thread exit read valid storage. Registries are global, not per-Cluster —
// benches reset them between phases via reset_latency_histograms().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"  // OpKind

namespace darray::obs {

// 8 sub-buckets per octave; indices [0, 8) map values directly.
inline constexpr int kHistSubBits = 3;
// 36 octave rows of 8: values up to 2^38 ns (~4.6 min) resolve, larger clamp.
inline constexpr int kHistBuckets = 36 << kHistSubBits;

inline constexpr uint32_t kHistMaxNodes = 64;  // matches ClusterConfig's cap

// Plain-value summary of one histogram: copy, merge, query — no atomics.
struct HistogramSnapshot {
  std::array<uint64_t, kHistBuckets> buckets{};
  uint64_t sum_ns = 0;
  uint64_t count = 0;

  void merge(const HistogramSnapshot& o) {
    for (int i = 0; i < kHistBuckets; ++i) buckets[static_cast<size_t>(i)] += o.buckets[static_cast<size_t>(i)];
    sum_ns += o.sum_ns;
    count += o.count;
  }

  double mean_ns() const {
    return count ? static_cast<double>(sum_ns) / static_cast<double>(count) : 0.0;
  }
  // q in [0, 1]; upper bound of the bucket holding the quantile (0 if empty).
  uint64_t percentile_ns(double q) const;
  // Upper bound of the highest non-empty bucket (≤12.5% above the true max).
  uint64_t max_ns() const;

  // "n=... mean=...ns p50=... p90=... p99=... p999=... max=..."
  std::string summary() const;
};

class AtomicLatencyHistogram {
 public:
  // Two relaxed atomic RMWs; no allocation, no ordering constraints.
  void record(uint64_t nanos) {
    buckets_[static_cast<size_t>(bucket_index(nanos))].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }

  // Safe concurrently with record(); a live snapshot is a consistent sample
  // of each bucket, not an atomic cut (count/sum may disagree by in-flight
  // records — the skew is bounded by the number of racing recorders).
  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (int i = 0; i < kHistBuckets; ++i) {
      const uint64_t v = buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
      s.buckets[static_cast<size_t>(i)] = v;
      s.count += v;
    }
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

  // Quiescent use only (benches between phases).
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

  static int bucket_index(uint64_t nanos);
  static uint64_t bucket_upper(int idx);

 private:
  std::array<std::atomic<uint64_t>, kHistBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
};

// --- global registries -------------------------------------------------------

// Cell for {op-kind × recording node}; node is clamped-checked by the caller
// via record_op_latency (a site with no node context records nowhere).
AtomicLatencyHistogram& op_latency_hist(OpKind kind, uint16_t node);

// Guarded recording helper for span ends: drops samples with no usable node
// (unbound thread) instead of aliasing them onto a real node's cell.
void record_op_latency(OpKind kind, uint32_t node, uint64_t nanos);

// Cell per wire message class. The class of a SEND is its MsgType value; a
// one-sided data WRITE uses the reserved class one past the last MsgType
// (the caller owns that convention — see net/message.hpp kMsgClassDataWrite).
inline constexpr uint32_t kMaxMsgClasses = 32;
AtomicLatencyHistogram& msg_class_hist(uint8_t cls);

HistogramSnapshot op_latency_snapshot(OpKind kind, uint16_t node);
HistogramSnapshot op_latency_snapshot(OpKind kind);  // merged across nodes
HistogramSnapshot msg_class_snapshot(uint8_t cls);

// Zeroes every registry cell. Quiescent use only (between bench phases).
void reset_latency_histograms();

}  // namespace darray::obs
