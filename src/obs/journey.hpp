// Request-journey tracing (obs v4): per-request stage breakdown for the
// serving plane, with tail-based retention.
//
// A RequestJourney is stamped as one client request crosses the serve path:
//
//   t_submit   client called submit (origin node, before any encode/route)
//   t_admit    the owner's dispatcher admitted the job
//   t_dequeue  a worker popped the job off the accept queue
//   t_backend  the backend op (KVS get/put/erase or hot-cache hit) finished
//   t_resp_rx  the origin received the response (deliver_local entry)
//   t_deliver  the session matched the response and woke the waiter
//
// Consecutive differences define five stages that partition the end-to-end
// interval exactly — admit (request leg: encode + wire + admission), queue,
// backend, net (response leg), deliver (session matching + wakeup) — so the
// per-stage histograms answer "which stage ate the p99" without any residual
// bucket. All simulated nodes share one monotonic clock (common/histogram.hpp
// now_ns), which is what makes cross-"node" stamp arithmetic meaningful.
//
// The JourneyCollector is a process-global leaked singleton, like the
// latency-histogram registries: the serve path records into it lock-free (five
// AtomicLatencyHistogram cells + one end-to-end cell), and a bounded retention
// ring keeps the full span chain only for requests that are slow (end-to-end
// above max(config floor, live p99)), shed, timed out, or errored. /slow.json
// and the Prometheus exemplar hook read the ring; benches reset it between
// phases via reset().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/spinlock.hpp"
#include "obs/latency_histogram.hpp"

namespace darray::obs {

enum class JourneyStage : uint8_t {
  kAdmit = 0,   // t_admit   - t_submit
  kQueue,       // t_dequeue - t_admit
  kBackend,     // t_backend - t_dequeue
  kNet,         // t_resp_rx - t_backend
  kDeliver,     // t_deliver - t_resp_rx
  kMaxStage,
};
inline constexpr size_t kNumJourneyStages = static_cast<size_t>(JourneyStage::kMaxStage);

const char* journey_stage_name(JourneyStage s);

struct RequestJourney {
  // Flag bits (OR-able; flags != 0 marks an exceptional journey).
  static constexpr uint8_t kFlagShed = 1;     // refused by admission (kBusy)
  static constexpr uint8_t kFlagTimeout = 2;  // waiter gave up before a response
  static constexpr uint8_t kFlagError = 4;    // non-ok, non-busy terminal status
  static constexpr uint8_t kFlagHotHit = 8;   // served from the owner hot cache

  uint64_t trace = 0;      // correlation id; rides the wire in MsgHeader.trace
  uint64_t t_submit = 0;
  uint64_t t_admit = 0;
  uint64_t t_dequeue = 0;
  uint64_t t_backend = 0;
  uint64_t t_resp_rx = 0;
  uint64_t t_deliver = 0;
  uint16_t origin = 0;     // node whose session issued the request
  uint16_t owner = 0;      // node whose dispatcher executed it
  uint32_t session = 0;
  uint64_t seq = 0;
  uint8_t op = 0;          // serve::ClientOp value
  uint8_t status = 0;      // Status value of the final response
  uint8_t flags = 0;

  // Duration of one stage; 0 when either stamp is missing or out of order
  // (exceptional journeys have incomplete stamp chains by construction).
  uint64_t stage_ns(JourneyStage s) const {
    auto d = [](uint64_t a, uint64_t b) { return (a && b && b > a) ? b - a : 0; };
    switch (s) {
      case JourneyStage::kAdmit: return d(t_submit, t_admit);
      case JourneyStage::kQueue: return d(t_admit, t_dequeue);
      case JourneyStage::kBackend: return d(t_dequeue, t_backend);
      case JourneyStage::kNet: return d(t_backend, t_resp_rx);
      case JourneyStage::kDeliver: return d(t_resp_rx, t_deliver);
      case JourneyStage::kMaxStage: break;
    }
    return 0;
  }

  uint64_t total_ns() const {
    return (t_deliver > t_submit) ? t_deliver - t_submit : 0;
  }

  // The stage holding the largest share of the journey (kMaxStage when every
  // stage is zero) — "what dominated this request".
  JourneyStage dominant_stage() const {
    JourneyStage best = JourneyStage::kMaxStage;
    uint64_t best_ns = 0;
    for (size_t i = 0; i < kNumJourneyStages; ++i) {
      const uint64_t d = stage_ns(static_cast<JourneyStage>(i));
      if (d > best_ns) {
        best_ns = d;
        best = static_cast<JourneyStage>(i);
      }
    }
    return best;
  }
};

// Nonzero journey correlation id: new_corr_id() when tracing is compiled in
// (so journeys link up with the trace rings / Perfetto flows), a process-wide
// counter otherwise — journeys stay addressable in a DARRAY_TRACING=0 build.
uint64_t journey_trace_id();

class JourneyCollector {
 public:
  struct Exemplar {
    uint64_t trace = 0;
    uint64_t value_ns = 0;
  };

  // Re-arm for a serving phase. Configuring does not clear prior data (call
  // reset() for that); it only sets the retention policy.
  //   retain_cap     ring capacity (clamped to >= 1)
  //   slow_floor_ns  retain any completed journey with total >= floor (0 =
  //                  p99-threshold only)
  void configure(bool enabled, uint32_t retain_cap, uint64_t slow_floor_ns);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Completed request with a full stamp chain: feeds the five stage histograms
  // and the end-to-end cell, then retains the journey iff it is tail-slow.
  void complete(const RequestJourney& j);

  // Shed / timed-out / errored request: retained unconditionally, histograms
  // untouched (a shed has no queue/backend stages to pollute the cells with).
  void retain_exceptional(const RequestJourney& j);

  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  uint64_t retained() const { return retained_.load(std::memory_order_relaxed); }
  // Live tail threshold (ns): max(slow floor, p99 of the end-to-end cell,
  // recomputed every kThresholdEvery completions). 0 until the first recompute.
  uint64_t threshold_ns() const { return threshold_ns_.load(std::memory_order_relaxed); }

  HistogramSnapshot stage_snapshot(JourneyStage s) const;
  HistogramSnapshot e2e_snapshot() const { return e2e_.snapshot(); }

  // Most recent retained journey whose `stage` duration fell in histogram
  // bucket `bucket` — the Prometheus exemplar for that bucket. False when the
  // bucket never retained.
  bool exemplar_for(JourneyStage stage, int bucket, Exemplar& out) const;

  // Same lookup keyed by a bucket's rendered upper bound (what /metrics has in
  // hand): resolves the upper back to a bucket index, tolerating the scheme's
  // inclusive-vs-exclusive edge between the linear and log-linear rows.
  bool exemplar_for_upper(JourneyStage stage, uint64_t upper_ns, Exemplar& out) const;

  // Oldest → newest copy of the retention ring.
  std::vector<RequestJourney> snapshot_retained() const;

  // The /slow.json payload. One journey object per line (so line-oriented
  // consumers — darray-trace --journeys — can parse without a JSON library).
  std::string slow_json() const;

  // Write slow_json() to a file for offline rendering. False on I/O failure.
  bool dump_json(const char* path) const;

  // Zero the ring, counters, threshold, exemplars, and the stage/e2e
  // histograms. Quiescent use only (between bench phases).
  void reset();

  // Histogram-only reset (stage + e2e cells, completion count, threshold);
  // keeps the retention ring so a cross-phase hist reset doesn't drop
  // evidence. Backs the global reset_latency_histograms() contract.
  void reset_histograms();

 private:
  void retain_locked(const RequestJourney& j);

  static constexpr uint32_t kThresholdEvery = 64;  // completions per p99 refresh

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> retain_cap_{256};
  std::atomic<uint64_t> slow_floor_ns_{0};
  std::atomic<uint64_t> threshold_ns_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> retained_{0};

  AtomicLatencyHistogram stages_[kNumJourneyStages];
  AtomicLatencyHistogram e2e_;

  mutable SpinLock mu_;  // guards ring_, ring_pos_, exemplars_
  std::vector<RequestJourney> ring_;
  size_t ring_pos_ = 0;
  // Latest retained exemplar per {stage × histogram bucket}; trace == 0 means
  // "never filled". ~45 KB once touched — small next to the histogram cells.
  std::vector<Exemplar> exemplars_;  // kNumJourneyStages * kHistBuckets
};

// Leaked process-global instance (same lifetime discipline as the
// latency-histogram registries: dumps after thread exit read valid storage).
JourneyCollector& journey_collector();

// Zeroes only the collector's stage/e2e histogram cells; called from
// reset_latency_histograms() so "reset every histogram" keeps meaning that.
void reset_stage_histograms();

}  // namespace darray::obs
