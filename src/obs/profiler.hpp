// Continuous sampling profiler: where the cycles go, to complement the
// latency planes (histograms answer "which op is slow", journeys "which
// stage"; this answers "which function").
//
// Two modes sharing one signal handler:
//  - cpu:  setitimer(ITIMER_PROF) at `hz` — the kernel delivers SIGPROF to a
//    thread in proportion to the CPU it burns, so busy threads dominate the
//    sample population and blocked threads cost nothing;
//  - wall: a ticker thread pthread_kill()s every registered thread at `hz`,
//    so time spent blocked (locks, parks, syscalls) is sampled too.
//
// The handler is async-signal-safe by construction: it reads the thread's
// pre-registered entry (one thread_local load), walks the frame-pointer
// chain with stack-bounds checks (no unwinder, no malloc, no locks), and
// appends {phase, op, pcs[]} to the thread's pre-allocated lock-free sample
// ring — the same single-writer wrapping discipline as TraceRing. Threads
// that never called register_current_thread have no ring; their signals are
// counted (profile.unattributed) and dropped rather than risking allocation
// in the handler.
//
// Symbolization is deliberately not done at sample time: collection stores
// raw PCs. dump_profile() writes raw PCs plus a copy of /proc/self/maps and
// a dladdr-resolved symbol table (computed at dump time, outside any signal
// context); tools/darray_prof and `darray-trace --profile` turn the dump
// into top-N tables, flamegraph-collapsed folded stacks, and Perfetto
// sampling tracks without touching the live process.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/thread_registry.hpp"

namespace darray::obs {

// Keeps a function's frame out of its (sole) caller so the sampler's
// frame-pointer walk can attribute cycles to it by name. Applied to the
// long-lived loop bodies (tx/rx drain, dispatcher worker, runtime loop) that
// -O3 would otherwise inline into an anonymous std::thread lambda.
#define DARRAY_PROFILE_ANCHOR __attribute__((noinline))

enum class ProfileMode : uint8_t { kCpu = 0, kWall };

// Duty-cycle phase a sample lands in, maintained as thread-local context by
// the instrumented loops (DutyCycle park brackets set busy/idle; the serve
// dispatcher sets the op while executing a request).
enum class ProfPhase : uint8_t { kUnknown = 0, kBusy, kIdle, kMaxPhase };

const char* prof_phase_name(ProfPhase p);

inline constexpr uint8_t kProfNoOp = 0xff;  // "op" tag when no op is running

namespace detail {
struct ProfCtx {
  uint8_t phase = static_cast<uint8_t>(ProfPhase::kUnknown);
  uint8_t op = kProfNoOp;  // OpKind value while one is executing
};
extern constinit thread_local ProfCtx t_prof_ctx;
}  // namespace detail

// Hot-path context setters: one thread_local byte store each. The signal
// handler reads the same bytes; plain (non-atomic) accesses are fine because
// reader and writer are the same thread.
inline void set_prof_phase(ProfPhase p) {
  detail::t_prof_ctx.phase = static_cast<uint8_t>(p);
}
inline void set_prof_op(uint8_t op_kind) { detail::t_prof_ctx.op = op_kind; }

// RAII op tag for request-execution scopes.
struct ProfOpScope {
  explicit ProfOpScope(uint8_t op_kind) { set_prof_op(op_kind); }
  ~ProfOpScope() { set_prof_op(kProfNoOp); }
};

// --- sample ring -------------------------------------------------------------

// Single-writer wrapping ring of call-stack samples. The writer is a signal
// handler running on the owning thread; slots are relaxed atomic words so a
// concurrent reader can observe a torn sample but never UB (TraceRing rules:
// exact collection requires the profiler to be stopped).
class ProfileRing {
 public:
  static constexpr uint32_t kMaxFramesHard = 64;

  ProfileRing(size_t min_samples, uint32_t max_frames);

  // Signal-handler path: no allocation, no locks. `n` is clamped to the
  // ring's frame budget by the caller (capture writes at most max_frames()).
  void push(uint8_t phase, uint8_t op, const uintptr_t* pcs, uint32_t n);

  uint64_t pushed() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t h = pushed();
    return h > cap_ ? h - cap_ : 0;
  }
  size_t capacity() const { return cap_; }
  uint32_t max_frames() const { return max_frames_; }

  struct Sample {
    uint8_t phase = 0;
    uint8_t op = kProfNoOp;
    std::vector<uintptr_t> pcs;  // leaf first
  };
  // Retained samples, oldest first. Exact only while the writer is quiescent.
  std::vector<Sample> collect() const;
  void reset() { head_.store(0, std::memory_order_release); }

 private:
  size_t cap_;           // power of two
  uint32_t max_frames_;  // slot = 1 header word + max_frames_ PC words
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  std::atomic<uint64_t> head_{0};
};

// --- lifecycle ---------------------------------------------------------------

struct ProfilerOptions {
  ProfileMode mode = ProfileMode::kCpu;
  uint32_t hz = 97;           // off the 100 Hz beat of timer ticks
  uint32_t max_frames = 32;   // per-sample backtrace depth cap
  uint32_t ring_samples = 4096;  // per-thread ring capacity
};

// Installs the SIGPROF handler, (re)sizes missing per-thread rings, clears
// previous samples, and arms the timer (cpu) or starts the ticker (wall).
// False — with the reason logged — when a session is already running or the
// options are unusable. One session at a time, process-wide.
bool profiler_start(const ProfilerOptions& opts);

// Disarms the timer / joins the ticker and restores the previous SIGPROF
// disposition. Collected samples stay in the rings for collection/dump.
void profiler_stop();

bool profiler_running();

struct ProfileTotals {
  uint64_t samples = 0;       // backtraces recorded into rings
  uint64_t dropped = 0;       // overwritten by ring wraparound
  uint64_t signals = 0;       // SIGPROF deliveries observed
  uint64_t unattributed = 0;  // signals on threads with no registered ring
  uint64_t rings = 0;         // per-thread sample rings in existence
};
ProfileTotals profile_totals();

// Clears every ring and the signal counters. Quiescent use only.
void reset_profile();

// --- collection & in-process rendering --------------------------------------

// One aggregated cell: identical {thread, phase, op, stack} samples folded.
struct ProfileStack {
  const ThreadEntry* thread = nullptr;
  uint8_t phase = 0;
  uint8_t op = kProfNoOp;
  std::vector<uintptr_t> pcs;  // leaf first
  uint64_t count = 0;
};
std::vector<ProfileStack> collect_profile();

// dladdr-based best-effort symbolization (demangled; "module+0xoff" when the
// PC has no dynamic symbol; "0x..." when dladdr knows nothing). Not
// signal-safe — dump/report paths only.
std::string symbolize_pc(uintptr_t pc);

// Flamegraph-collapsed folded stacks, one line per aggregated cell:
//   <thread>;(<phase>[:op]);<root>;...;<leaf> <count>
// Frames are symbolized in-process and sanitized (spaces stripped, ';'
// replaced) so downstream flamegraph tooling parses them unambiguously.
std::string profiler_collapsed();

// Offline-symbolizable dump (text, "darray_profile v1"): totals, the thread
// name table, phase names, a copy of /proc/self/maps, a dladdr symbol table
// for every distinct PC, and the aggregated raw-PC stacks. Returns false on
// I/O failure.
bool dump_profile(const char* path);

// Hook for the thread registry: returns a ring for a newly registered thread
// when a profiler session is active or has ever been configured, else null
// (the ring is then created by the next profiler_start()).
ProfileRing* profiler_make_ring_if_configured();

}  // namespace darray::obs
