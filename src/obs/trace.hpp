// Cross-layer op tracing: lock-free per-thread rings of typed span events,
// stamped with a monotonic clock and a correlation id that rides a DArray op
// from the public API through LocalRequest, the runtime engine, the comm
// layer, and (via MsgHeader) across the simulated wire. A slow get() can then
// be attributed — cacheline miss vs. directory hop vs. Tx coalescing delay
// vs. injected fault — by filtering the merged trace on its correlation id.
//
// Two gates, so the disabled path costs one branch on a cached bool:
//  - compile time: build with DARRAY_TRACING=0 and every record site folds to
//    nothing (tracing_enabled() is constexpr false);
//  - run time:     set_tracing(true) flips a relaxed atomic<bool>; every
//    record site is `if (tracing_enabled()) record(...)`.
//
// Rings are single-writer (the owning thread) and wrap: the newest events
// win, drops are counted. Readers may scan concurrently — slots are relaxed
// atomic words, so a live scan can observe a torn event but never UB; exact
// dumps require the writers to be quiescent (tests join workers first).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#ifndef DARRAY_TRACING
#define DARRAY_TRACING 1
#endif

namespace darray::obs {

enum class Ev : uint8_t {
  kOpBegin = 0,    // kind = OpKind, a = array id, b = element index
  kOpEnd,          // kind = OpKind, b = element index
  kMiss,           // kind = LocalRequest::Kind, a = chunk, b = index
  kDirReq,         // kind = MsgType, a = chunk, b = home node
  kDirResp,        // kind = MsgType, a = chunk, b = src node
  kCombineFlush,   // a = chunk, b = flushed entries
  kWrPost,         // kind = Opcode, a = peer, b = wr_id
  kWrComplete,     // kind = Opcode, a = peer, b = wr_id
  kRetry,          // a = peer, b = attempt number
  kBackoff,        // a = peer, b = backoff ns
  kFault,          // kind = WcStatus, a = peer, b = wr_id
  kMaxEv,
};

// API-level op discriminator for kOpBegin/kOpEnd.
enum class OpKind : uint8_t {
  kGet = 0,
  kSet,
  kApply,
  kRlock,
  kWlock,
  kUnlock,
  kPin,
  kUnpin,
  kGetRange,
  kSetRange,
  // Array-compute collectives (src/compute): one span per collective call per
  // node, so hist.op.* gains a row per kernel.
  kDot,
  kAxpy,
  kScale,
  kNorm2,
  kGemv,
  kMaxOpKind,
};

const char* ev_name(Ev e);
const char* op_kind_name(OpKind k);

// One decoded event. Stored packed (4 machine words) inside the rings; the
// ring id is attached at collect time (it identifies the recording thread).
struct TraceEvent {
  uint64_t ts_ns = 0;
  uint64_t corr = 0;   // 0 = not attributed to an API-level op
  Ev ev = Ev::kOpBegin;
  uint8_t kind = 0;    // per-Ev discriminator, see the enum comments above
  uint16_t node = 0;   // recording node (0xffff when unknown/raw transport)
  uint32_t a = 0;
  uint64_t b = 0;
  uint16_t ring = 0;   // recording ring (≈ thread), filled by collect()
};

inline constexpr uint16_t kNoTraceNode = 0xffff;

// Single-writer wrapping event ring. Standalone so tests can exercise
// wraparound at tiny capacities; threads get one lazily via record().
class TraceRing {
 public:
  explicit TraceRing(size_t min_capacity);

  void push(const TraceEvent& e);

  uint64_t pushed() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t h = pushed();
    return h > cap_ ? h - cap_ : 0;
  }
  size_t capacity() const { return cap_; }

  // Retained events, oldest first (at most capacity()), stamped with id().
  std::vector<TraceEvent> collect() const;
  void reset() { head_.store(0, std::memory_order_release); }

  // Registry-assigned ring id, echoed into every collected event so dumps
  // can attribute events (and drops) to the recording thread.
  void set_id(uint16_t id) { id_ = id; }
  uint16_t id() const { return id_; }

  // Owning thread's registered name (obs/thread_registry), captured when the
  // ring is created so dumps stay attributable after the thread exits.
  void set_name(const char* name);
  const char* name() const { return name_; }

 private:
  size_t cap_;  // power of two
  std::unique_ptr<std::atomic<uint64_t>[]> words_;  // 4 words per slot
  std::atomic<uint64_t> head_{0};
  uint16_t id_ = 0;
  char name_[16] = {};
};

#if DARRAY_TRACING

namespace detail {
extern std::atomic<bool> g_trace_on;
}

// The hot-path gate: one relaxed load + branch when tracing is compiled in.
inline bool tracing_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

void set_tracing(bool on);

// Nonzero, unique across threads (thread slot in the top bits, a per-thread
// sequence in the low bits).
uint64_t new_corr_id();

// Appends to the calling thread's ring (registered on first use). Call only
// under tracing_enabled() — the helper below wraps the check.
void record(Ev ev, uint64_t corr, uint8_t kind, uint16_t node, uint32_t a, uint64_t b);

#else  // DARRAY_TRACING == 0: every site folds away.

inline constexpr bool tracing_enabled() { return false; }
inline void set_tracing(bool) {}
inline uint64_t new_corr_id() { return 0; }
inline void record(Ev, uint64_t, uint8_t, uint16_t, uint32_t, uint64_t) {}

#endif  // DARRAY_TRACING

// The one-liner used at every instrumentation site.
inline void trace(Ev ev, uint64_t corr, uint8_t kind = 0, uint16_t node = kNoTraceNode,
                  uint32_t a = 0, uint64_t b = 0) {
  if (tracing_enabled()) record(ev, corr, kind, node, a, b);
}

struct TraceTotals {
  uint64_t recorded = 0;  // events ever pushed, across all rings
  uint64_t retained = 0;  // events currently held
  uint64_t dropped = 0;   // overwritten by wraparound
  uint64_t rings = 0;     // per-thread rings registered
};

// Per-ring accounting, so dumps can report which threads overwrote events
// instead of a single aggregate that hides a hot ring behind quiet ones.
struct TraceRingInfo {
  uint16_t id = 0;
  uint64_t pushed = 0;
  uint64_t retained = 0;
  uint64_t dropped = 0;
  std::string name;  // recording thread's registered name ("" if unnamed)
};

// These are defined (as cheap no-ops where sensible) even with tracing
// compiled out, so dump tools and stats sources build unconditionally.
TraceTotals trace_totals();
std::vector<TraceRingInfo> trace_ring_infos();

// Overrides the per-thread ring capacity for rings created after the call
// (existing rings keep their size). 0 restores the default / DARRAY_TRACE_RING
// environment override. Set before starting traffic.
void set_trace_ring_capacity(size_t events);

// All rings merged, sorted by timestamp. Exact only while writers are
// quiescent; a live collect is a best-effort sample.
std::vector<TraceEvent> collect_trace();

// Line-oriented JSON dump, format v2: a header with totals and per-ring
// drop accounting, then one event object per line (see docs/observability.md
// for the schema). Returns false on I/O failure.
bool dump_trace_json(const char* path);

// Clears every ring and the drop counters. Quiescent use only.
void reset_trace();

}  // namespace darray::obs
