// Process-wide registry of named service threads. Every long-lived internal
// thread (runtime loops, comm Tx/Rx, dispatcher workers, accept loops,
// watchdog, sampler) announces itself once at loop entry via
// register_current_thread("name"); the registration
//  - calls pthread_setname_np so TSan reports, gdb `info threads`, and
//    /proc/<pid>/task/*/comm all show the role instead of a bare tid;
//  - records the thread's stack bounds (pthread_getattr_np), which the
//    sampling profiler's signal handler needs to validate the frame-pointer
//    chain before dereferencing it;
//  - pre-creates the thread's profiler sample ring, because a signal handler
//    cannot allocate — by the time SIGPROF fires, storage must already exist.
//
// Entries are owned by a leaked registry (same discipline as the trace-ring
// registry): a dump after the thread exited still reads valid storage. An
// entry is marked not-alive from the thread_local destructor so the
// wall-clock profiler never pthread_kill()s a dead thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <pthread.h>
#include <string>
#include <vector>

namespace darray::obs {

class ProfileRing;  // profiler.hpp; created per registration, owned there

// Linux truncates pthread names to 15 chars + NUL; the registry keeps the
// same bound so the name seen in /proc matches the name seen in dumps.
inline constexpr size_t kThreadNameMax = 15;

struct ThreadEntry {
  char name[kThreadNameMax + 1] = {};
  uint64_t tid = 0;          // gettid(): stable, meaningful in kernel traces
  pthread_t handle = 0;      // wall-clock profiler signal target
  uintptr_t stack_lo = 0;    // [lo, hi): frame pointers outside are garbage
  uintptr_t stack_hi = 0;
  ProfileRing* ring = nullptr;  // leaked with the entry
  std::atomic<bool> alive{true};
};

// Idempotent for the calling thread: the first call names it and creates its
// entry; later calls rename it (pthread name + registry entry) in place.
// Returns the entry (never null).
ThreadEntry* register_current_thread(const char* name);

// The calling thread's entry, or nullptr when it never registered. Safe to
// call from a signal handler: one thread_local pointer read.
ThreadEntry* current_thread_entry();

// The calling thread's registered name ("" when unregistered).
const char* current_thread_name();

// Snapshot of all entries ever registered (alive or exited), registration
// order. Pointers stay valid for the process lifetime.
std::vector<ThreadEntry*> all_thread_entries();

// Profiler internal (profiler_start): creates sample rings for entries that
// predate the profiler's configuration, under the registry lock.
void ensure_profile_rings();

}  // namespace darray::obs
