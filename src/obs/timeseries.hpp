// Live telemetry, stage 1 of 2 (docs/observability.md v3): fixed-size
// per-metric time-series rings fed by the Cluster's sampler thread. Every
// `telemetry_sample_ns` the sampler snapshots the StatsRegistry and pushes one
// point per metric:
//
//   - monotonic counters are stored as per-interval deltas, so a reader turns
//     a point directly into a rate (value / interval) with no bookkeeping;
//   - point samples (percentiles, means, maxima — stats_is_point_sample) are
//     stored as-is, giving p50/p99 series over time;
//   - raw histogram bucket entries (".bkt_") are skipped: buckets are exposed
//     cumulatively via /metrics, and per-bucket rings would multiply the
//     store's footprint ~10x for no dashboard value.
//
// Concurrency: record() has exactly one caller (the sampler thread). The
// per-metric rings are lock-free for readers — slots are relaxed atomics and
// a release-published head lets any thread copy the newest points while the
// writer keeps appending; entries that may have been overwritten mid-copy are
// detected via a pre-write reservation counter and dropped. The name→ring table itself is
// guarded by a spinlock (rings appear when a metric first shows up, e.g.
// hist.* cells materializing under tracing), held only for lookup.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/spinlock.hpp"
#include "obs/stats_registry.hpp"

namespace darray::obs {

struct SeriesPoint {
  uint64_t t_ns = 0;   // sample wall-clock (now_ns) — monotonic per series
  uint64_t value = 0;  // interval delta for counters, raw value for gauges
};

class TimeSeriesStore {
 public:
  // `capacity` points retained per metric (rounded up to a power of two).
  explicit TimeSeriesStore(uint32_t capacity);
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Writer side: push one sampled snapshot. Single caller (the sampler
  // thread); concurrent record() calls are a bug, not a supported mode.
  void record(uint64_t now_ns, const StatsSnapshot& snap);

  uint32_t capacity() const { return capacity_; }
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

  // Reader side — all safe concurrently with record().
  struct Series {
    std::string name;
    bool rate = false;  // true: points are per-interval counter deltas
    std::vector<SeriesPoint> points;  // oldest → newest
  };

  std::vector<std::string> names() const;
  // Newest ≤ capacity points, oldest first; false if the metric is unknown.
  bool read(std::string_view name, std::vector<SeriesPoint>& out) const;
  // Every series whose name starts with `prefix` (empty = all); when
  // `last_n` > 0 each series is truncated to its newest last_n points.
  std::vector<Series> collect(std::string_view prefix = {}, size_t last_n = 0) const;
  // {"sample_count": N, "series": [{"metric": "...", "rate": true,
  //  "points": [[t_ns, value], ...]}, ...]} — the /series.json payload.
  std::string to_json(std::string_view prefix = {}, size_t last_n = 0) const;

 private:
  struct Ring;
  Ring* find_or_create(const std::string& name);
  void read_ring(const Ring& r, size_t last_n, std::vector<SeriesPoint>& out) const;

  const uint32_t capacity_;  // power of two
  std::atomic<uint64_t> samples_{0};
  mutable SpinLock mu_;  // guards rings_ (the table, not the ring contents)
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace darray::obs
