#include "obs/telemetry_server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "net/socket_listener.hpp"
#include "obs/journey.hpp"
#include "obs/profiler.hpp"

#ifndef DARRAY_VERSION
#define DARRAY_VERSION "unknown"
#endif
#ifndef DARRAY_COMMIT
#define DARRAY_COMMIT "unknown"
#endif

namespace darray::obs {

// --- Prometheus exposition ---------------------------------------------------

namespace {

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name)
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  return out;
}

struct HistCell {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (upper_ns, own count)
};

// "hist.op.get.bkt_1024" → family "op", cell "get", suffix "bkt_1024".
bool split_hist(std::string_view name, std::string_view& family, std::string_view& cell,
                std::string_view& suffix) {
  if (name.substr(0, 5) != "hist.") return false;
  std::string_view rest = name.substr(5);
  const size_t dot1 = rest.find('.');
  if (dot1 == std::string_view::npos) return false;
  const size_t dot2 = rest.rfind('.');
  if (dot2 == dot1) return false;
  family = rest.substr(0, dot1);
  cell = rest.substr(dot1 + 1, dot2 - dot1 - 1);
  suffix = rest.substr(dot2 + 1);
  return true;
}

// When `exemplar_of` is set (stage family with exemplars on), a bucket line
// whose bucket retained a journey gains an OpenMetrics exemplar suffix:
//   ..._bucket{stage="backend",le="1048576"} 42 # {trace_id="00ab..."} 913408
using ExemplarFn =
    std::function<bool(const std::string& label, uint64_t upper, std::string& suffix)>;

void append_histogram_family(std::string& out, const std::string& metric,
                             const std::string& label_key,
                             const std::vector<std::pair<std::string, HistCell>>& cells,
                             const ExemplarFn& exemplar_of = nullptr) {
  if (cells.empty()) return;
  out += "# TYPE " + metric + " histogram\n";
  char buf[160];
  for (const auto& [label, cell] : cells) {
    uint64_t cum = 0;
    for (const auto& [upper, cnt] : cell.buckets) {
      cum += cnt;
      std::snprintf(buf, sizeof(buf), "%s_bucket{%s=\"%s\",le=\"%llu\"} %llu",
                    metric.c_str(), label_key.c_str(), label.c_str(),
                    static_cast<unsigned long long>(upper),
                    static_cast<unsigned long long>(cum));
      out += buf;
      std::string ex;
      if (exemplar_of && exemplar_of(label, upper, ex)) out += ex;
      out += '\n';
    }
    // A live histogram can gain records between the bucket loads and the count
    // entry; pin the total to whichever is larger so +Inf == _count holds.
    // One snprintf per line: the three together can exceed the buffer.
    const uint64_t total = std::max(cum, cell.count);
    std::snprintf(buf, sizeof(buf), "%s_bucket{%s=\"%s\",le=\"+Inf\"} %llu\n",
                  metric.c_str(), label_key.c_str(), label.c_str(),
                  static_cast<unsigned long long>(total));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum{%s=\"%s\"} %llu\n", metric.c_str(),
                  label_key.c_str(), label.c_str(),
                  static_cast<unsigned long long>(cell.sum));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count{%s=\"%s\"} %llu\n", metric.c_str(),
                  label_key.c_str(), label.c_str(),
                  static_cast<unsigned long long>(total));
    out += buf;
  }
}

// "node.3.remote_reqs" → rest "remote_reqs", node "3".
bool split_node(std::string_view name, std::string_view& node, std::string_view& rest) {
  if (name.substr(0, 5) != "node.") return false;
  std::string_view tail = name.substr(5);
  const size_t dot = tail.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  node = tail.substr(0, dot);
  for (const char c : node)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  rest = tail.substr(dot + 1);
  return !rest.empty();
}

// Unix time the process started, for the standard Prometheus
// process_start_time_seconds gauge (scrapers use it to detect restarts and
// un-skew counter rates). Real value from /proc (btime + starttime ticks);
// the first-call wall clock is the fallback when /proc is unreadable.
uint64_t process_start_time_seconds() {
  static const uint64_t v = [] {
    uint64_t btime = 0;
    if (std::FILE* f = std::fopen("/proc/stat", "r")) {
      char line[256];
      while (std::fgets(line, sizeof(line), f) != nullptr) {
        unsigned long long b = 0;
        if (std::sscanf(line, "btime %llu", &b) == 1) {
          btime = b;
          break;
        }
      }
      std::fclose(f);
    }
    unsigned long long start_ticks = 0;
    if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
      char buf[1024];
      const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
      std::fclose(f);
      buf[n] = '\0';
      // Field 2 (comm) may contain spaces; fields 3..22 follow the last ')'.
      if (const char* p = std::strrchr(buf, ')')) {
        std::sscanf(p + 1,
                    " %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s "
                    "%*s %*s %*s %*s %llu",
                    &start_ticks);
      }
    }
    const long hz = ::sysconf(_SC_CLK_TCK);
    if (btime != 0 && start_ticks != 0 && hz > 0)
      return static_cast<uint64_t>(btime + start_ticks / static_cast<unsigned long long>(hz));
    return static_cast<uint64_t>(std::time(nullptr));
  }();
  return v;
}

}  // namespace

std::string render_prometheus(const StatsSnapshot& snap, bool exemplars) {
  // Families keyed in first-seen order; histograms and node.* groups collect
  // across entries before rendering so each family's samples stay contiguous.
  std::vector<std::pair<std::string, HistCell>> op_cells, msg_cells, stage_cells;
  std::vector<std::pair<std::string, std::vector<std::string>>> node_families;
  std::string plain;

  auto hist_cell = [](std::vector<std::pair<std::string, HistCell>>& cells,
                      std::string_view name) -> HistCell& {
    for (auto& [n, c] : cells)
      if (n == name) return c;
    cells.emplace_back(std::string(name), HistCell{});
    return cells.back().second;
  };

  char buf[160];
  for (const StatEntry& e : snap.entries) {
    std::string_view family, cell, suffix;
    if (split_hist(e.name, family, cell, suffix)) {
      if (family != "op" && family != "msg" && family != "stage")
        continue;                                   // unknown hist plane
      if (stats_is_point_sample(e.name)) continue;  // quantiles: use buckets
      HistCell& h = hist_cell(
          family == "op" ? op_cells : family == "msg" ? msg_cells : stage_cells, cell);
      if (suffix == "count") {
        h.count = e.value;
      } else if (suffix == "sum_ns") {
        h.sum = e.value;
      } else if (suffix.substr(0, 4) == "bkt_") {
        h.buckets.emplace_back(
            std::strtoull(std::string(suffix.substr(4)).c_str(), nullptr, 10), e.value);
      }
      continue;
    }
    std::string_view node, rest;
    if (split_node(e.name, node, rest)) {
      const std::string metric = "darray_node_" + sanitize(rest) + "_total";
      auto it = std::find_if(node_families.begin(), node_families.end(),
                             [&](const auto& f) { return f.first == metric; });
      if (it == node_families.end()) {
        node_families.emplace_back(metric, std::vector<std::string>{});
        it = node_families.end() - 1;
      }
      std::snprintf(buf, sizeof(buf), "%s{node=\"%.*s\"} %llu\n", metric.c_str(),
                    static_cast<int>(node.size()), node.data(),
                    static_cast<unsigned long long>(e.value));
      it->second.push_back(buf);
      continue;
    }
    const bool counter = !stats_is_point_sample(e.name);
    const std::string metric =
        "darray_" + sanitize(e.name) + (counter ? "_total" : "");
    plain += "# TYPE " + metric + (counter ? " counter\n" : " gauge\n");
    std::snprintf(buf, sizeof(buf), "%s %llu\n", metric.c_str(),
                  static_cast<unsigned long long>(e.value));
    plain += buf;
  }

  std::string out = std::move(plain);
  for (const auto& [metric, lines] : node_families) {
    out += "# TYPE " + metric + " counter\n";
    for (const std::string& l : lines) out += l;
  }
  for (auto& cells : {&op_cells, &msg_cells, &stage_cells})
    for (auto& [name, cell] : *cells)
      std::sort(cell.buckets.begin(), cell.buckets.end());
  append_histogram_family(out, "darray_op_latency_ns", "op", op_cells);
  append_histogram_family(out, "darray_msg_latency_ns", "class", msg_cells);
  ExemplarFn stage_exemplar = nullptr;
  if (exemplars) {
    stage_exemplar = [](const std::string& label, uint64_t upper, std::string& suffix) {
      JourneyStage st = JourneyStage::kMaxStage;
      for (size_t i = 0; i < kNumJourneyStages; ++i)
        if (label == journey_stage_name(static_cast<JourneyStage>(i)))
          st = static_cast<JourneyStage>(i);
      JourneyCollector::Exemplar ex;
      if (st == JourneyStage::kMaxStage ||
          !journey_collector().exemplar_for_upper(st, upper, ex))
        return false;
      char buf[96];
      std::snprintf(buf, sizeof(buf), " # {trace_id=\"%016llx\"} %llu",
                    static_cast<unsigned long long>(ex.trace),
                    static_cast<unsigned long long>(ex.value_ns));
      suffix = buf;
      return true;
    };
  }
  append_histogram_family(out, "darray_stage_latency_ns", "stage", stage_cells,
                          stage_exemplar);
  // Process identity trailer: which build is serving these numbers, and when
  // the process came up (counter-rate de-skew across restarts).
  out += "# TYPE darray_build_info gauge\n";
  out += "darray_build_info{version=\"" DARRAY_VERSION "\",commit=\"" DARRAY_COMMIT
         "\"} 1\n";
  std::snprintf(buf, sizeof(buf),
                "# TYPE process_start_time_seconds gauge\n"
                "process_start_time_seconds %llu\n",
                static_cast<unsigned long long>(process_start_time_seconds()));
  out += buf;
  return out;
}

// --- HTTP listener -----------------------------------------------------------

namespace {

// One decoded query parameter ("metric", "prefix", "n") from "?a=b&c=d".
std::string query_param(const std::string& target, const std::string& key) {
  const size_t q = target.find('?');
  if (q == std::string::npos) return {};
  size_t pos = q + 1;
  while (pos < target.size()) {
    size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string kv = target.substr(pos, amp - pos);
    const size_t eq = kv.find('=');
    if (eq != std::string::npos && kv.substr(0, eq) == key) return kv.substr(eq + 1);
    pos = amp + 1;
  }
  return {};
}

}  // namespace

bool TelemetryServer::start() {
  if (listener_.running()) return true;
  net::SocketListener::Options lopts;
  lopts.bind_addr = opts_.bind_addr;
  lopts.port = opts_.port;
  lopts.name = "telemetry";
  if (!listener_.start(std::move(lopts), [this](int fd) { serve_conn(fd); }))
    return false;
  DLOG_INFO("telemetry: serving on http://%s:%u/metrics", opts_.bind_addr.c_str(),
            listener_.port());
  return true;
}

void TelemetryServer::serve_conn(int fd) {
  char req[2048];
  const ssize_t n = ::recv(fd, req, sizeof(req) - 1, 0);
  if (n <= 0) return;
  req[n] = '\0';
  // "GET <target> HTTP/1.x" — everything else is a 405.
  std::string target;
  int status = 405;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = "method not allowed\n";
  if (std::strncmp(req, "GET ", 4) == 0) {
    const char* start = req + 4;
    const char* end = std::strchr(start, ' ');
    if (end != nullptr) {
      target.assign(start, end);
      handle(target, status, content_type, body);
    } else {
      status = 400;
      body = "bad request\n";
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 405 ? "Method Not Allowed"
                                       : "Bad Request";
  std::string resp = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  net::send_all(fd, resp);
}

void TelemetryServer::handle(const std::string& target, int& status,
                             std::string& content_type, std::string& body) {
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/metrics") {
    status = 200;
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    const std::string ex = query_param(target, "exemplars");
    const bool exemplars = ex.empty() ? opts_.exemplars : ex == "1";
    body = render_prometheus(opts_.snapshot(), exemplars);
    return;
  }
  if (path == "/slow.json") {
    status = 200;
    content_type = "application/json";
    body = journey_collector().slow_json();
    return;
  }
  if (path == "/healthz") {
    status = 200;
    content_type = opts_.healthz ? "application/json" : "text/plain; charset=utf-8";
    body = opts_.healthz ? opts_.healthz() : std::string("ok\n");
    return;
  }
  if (path == "/stats.json") {
    status = 200;
    content_type = "application/json";
    body = opts_.snapshot().to_json() + "\n";
    return;
  }
  if (path == "/series.json") {
    if (opts_.store == nullptr) {
      status = 404;
      body = "no time-series store attached (telemetry sampler disabled)\n";
      return;
    }
    const std::string metric = query_param(target, "metric");
    const std::string prefix = query_param(target, "prefix");
    const std::string n_str = query_param(target, "n");
    const size_t last_n = n_str.empty() ? 0 : std::strtoull(n_str.c_str(), nullptr, 10);
    status = 200;
    content_type = "application/json";
    if (!metric.empty()) {
      std::vector<SeriesPoint> pts;
      if (!opts_.store->read(metric, pts)) {
        status = 404;
        content_type = "text/plain; charset=utf-8";
        body = "unknown metric: " + metric + "\n";
        return;
      }
      // Single-metric form reuses the multi-series shape with one element.
      body = opts_.store->to_json(metric, last_n);
      return;
    }
    body = opts_.store->to_json(prefix, last_n);
    return;
  }
  if (path == "/profile") {
    // On-demand profile: collapsed folded stacks, ready for flamegraph.pl /
    // speedscope. With a continuous session running (cfg.profiler_enabled)
    // this snapshots what the rings hold now; otherwise it runs a temporary
    // session for `seconds` (blocking this serving thread — HTTP/1.0, one
    // request at a time, so nothing else queues behind it invisibly).
    const std::string sec_s = query_param(target, "seconds");
    const std::string type = query_param(target, "type");
    if (!type.empty() && type != "cpu" && type != "wall") {
      status = 400;
      body = "unknown profile type '" + type + "'; want cpu or wall\n";
      return;
    }
    uint64_t seconds = sec_s.empty() ? 1 : std::strtoull(sec_s.c_str(), nullptr, 10);
    seconds = std::clamp<uint64_t>(seconds, 1, 10);
    if (!profiler_running()) {
      ProfilerOptions po;
      po.mode = type == "wall" ? ProfileMode::kWall : ProfileMode::kCpu;
      if (!profiler_start(po)) {
        status = 503;
        body = "profiler unavailable (session already starting elsewhere)\n";
        return;
      }
      std::this_thread::sleep_for(std::chrono::seconds(seconds));
      profiler_stop();
    }
    status = 200;
    content_type = "text/plain; charset=utf-8";
    body = profiler_collapsed();
    if (body.empty()) body = "# no samples\n";
    return;
  }
  status = 404;
  body = "not found; try /metrics, /stats.json, /series.json, /slow.json, "
         "/profile, /healthz\n";
}

}  // namespace darray::obs
