// Live telemetry, stage 2 of 2: a minimal embedded HTTP listener exposing the
// stats plane to scrapers and dashboards while the cluster runs. Loopback-only
// by default — this is an operator port, not a public one.
//
//   GET /metrics      Prometheus text exposition (version 0.0.4): counters as
//                     `darray_<name>_total`, point samples as gauges, and the
//                     hist.op.* / hist.msg.* cells as native histograms with
//                     cumulative `le` buckets rebuilt from the snapshot's
//                     sparse ".bkt_" entries.
//   GET /stats.json   the current StatsSnapshot as one JSON object.
//   GET /series.json  TimeSeriesStore contents; query params `metric=<name>`
//                     (exact), `prefix=<p>` (filter), `n=<k>` (newest k points
//                     per series). 404 when no store is attached.
//
// One dedicated thread runs a blocking accept loop; each request is parsed,
// answered, and the connection closed (HTTP/1.0 semantics). Handlers only
// call the snapshot closure and the lock-free store readers, so a slow or
// hostile client can stall the serving thread but never the data path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/stats_registry.hpp"
#include "obs/timeseries.hpp"

namespace darray::obs {

// Exposed for tests and offline rendering: the exact /metrics payload for one
// snapshot. `hist.*` summary entries (percentiles/mean/max) are omitted —
// Prometheus derives quantiles from the native buckets; everything else maps
// name-for-name with dots flattened to underscores, except `node.<i>.<rest>`,
// which becomes one `darray_node_<rest>_total{node="i"}` family per rest.
std::string render_prometheus(const StatsSnapshot& snap);

class TelemetryServer {
 public:
  struct Options {
    std::string bind_addr = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after start
    std::function<StatsSnapshot()> snapshot;  // required
    const TimeSeriesStore* store = nullptr;   // optional (/series.json 404s)
  };

  explicit TelemetryServer(Options opts) : opts_(std::move(opts)) {}
  ~TelemetryServer() { stop(); }

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Binds, listens, and spawns the serving thread. False (with the reason on
  // the error log) when the socket cannot be set up — e.g. the port is taken.
  bool start();
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void serve_loop();
  // Routes one request path (incl. query string) to status + body + type.
  void handle(const std::string& target, int& status, std::string& content_type,
              std::string& body);

  Options opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace darray::obs
