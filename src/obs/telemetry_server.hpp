// Live telemetry, stage 2 of 2: a minimal embedded HTTP listener exposing the
// stats plane to scrapers and dashboards while the cluster runs. Loopback-only
// by default — this is an operator port, not a public one.
//
//   GET /metrics      Prometheus text exposition (version 0.0.4): counters as
//                     `darray_<name>_total`, point samples as gauges, and the
//                     hist.op.* / hist.msg.* / hist.stage.* cells as native
//                     histograms with cumulative `le` buckets rebuilt from the
//                     snapshot's sparse ".bkt_" entries. `?exemplars=1` (or
//                     Options::exemplars) attaches OpenMetrics exemplars
//                     (`# {trace_id="..."} v`) to darray_stage_latency_ns
//                     buckets that retained a journey.
//   GET /stats.json   the current StatsSnapshot as one JSON object.
//   GET /series.json  TimeSeriesStore contents; query params `metric=<name>`
//                     (exact), `prefix=<p>` (filter), `n=<k>` (newest k points
//                     per series). 404 when no store is attached.
//   GET /slow.json    the journey collector's tail-retention ring: full stage
//                     chains of slow / shed / timed-out / errored requests.
//   GET /profile      collapsed folded stacks from the sampling profiler
//                     (obs/profiler). Query params `seconds=N` (1..10, only
//                     used when no continuous session is running — a
//                     temporary one is run for that long, blocking this
//                     serving thread) and `type=cpu|wall`.
//   GET /healthz      cheap liveness probe (node count, uptime, sampler lag).
//
// The socket plumbing lives in net::SocketListener (shared with the serving
// front end, src/serve); this class only parses "GET <target>" requests and
// renders responses (HTTP/1.0 semantics, one request per connection).
// Handlers only call the snapshot closure and the lock-free store readers, so
// a slow or hostile client can stall the serving thread but never the data
// path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "net/socket_listener.hpp"
#include "obs/stats_registry.hpp"
#include "obs/timeseries.hpp"

namespace darray::obs {

// Exposed for tests and offline rendering: the exact /metrics payload for one
// snapshot. `hist.*` summary entries (percentiles/mean/max) are omitted —
// Prometheus derives quantiles from the native buckets; everything else maps
// name-for-name with dots flattened to underscores, except `node.<i>.<rest>`,
// which becomes one `darray_node_<rest>_total{node="i"}` family per rest.
// With `exemplars` set, darray_stage_latency_ns bucket lines carry the most
// recent retained journey's trace id in OpenMetrics exemplar syntax.
std::string render_prometheus(const StatsSnapshot& snap, bool exemplars = false);

class TelemetryServer {
 public:
  struct Options {
    std::string bind_addr = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after start
    std::function<StatsSnapshot()> snapshot;  // required
    const TimeSeriesStore* store = nullptr;   // optional (/series.json 404s)
    std::function<std::string()> healthz;     // optional /healthz body provider
    bool exemplars = false;  // default for /metrics (query param overrides)
  };

  explicit TelemetryServer(Options opts) : opts_(std::move(opts)) {}
  ~TelemetryServer() { stop(); }

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Binds, listens, and spawns the serving thread. False (with the reason on
  // the error log) when the socket cannot be set up — e.g. the port is taken.
  bool start();
  void stop() { listener_.stop(); }

  bool running() const { return listener_.running(); }
  uint16_t port() const { return listener_.port(); }
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  // One connection: parse the request line, render, respond, return (the
  // listener closes the fd).
  void serve_conn(int fd);
  // Routes one request path (incl. query string) to status + body + type.
  void handle(const std::string& target, int& status, std::string& content_type,
              std::string& body);

  Options opts_;
  net::SocketListener listener_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace darray::obs
