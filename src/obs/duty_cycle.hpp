// Busy/idle duty-cycle sampling for the long-lived service threads (runtime
// engine loop, comm-layer Tx/Rx). The owning thread brackets every blocking
// park with park_begin()/park_end(); everything else counts as busy. Under
// full load the thread never parks, so the instrumented path costs nothing;
// per park the cost is two clock reads and two relaxed adds — noise next to
// a futex wait or sleep.
//
// Single-writer (the owning thread); any thread may sample() concurrently
// and gets a consistent-enough reading for reporting (each field read once,
// relaxed — the skew is one in-progress park at most).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/histogram.hpp"  // now_ns()
#include "obs/profiler.hpp"      // set_prof_phase: samples tag busy vs idle

namespace darray::obs {

struct DutyStats {
  uint64_t busy_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t parks = 0;

  DutyStats& operator+=(const DutyStats& o) {
    busy_ns += o.busy_ns;
    idle_ns += o.idle_ns;
    parks += o.parks;
    return *this;
  }
  double busy_fraction() const {
    const uint64_t total = busy_ns + idle_ns;
    return total ? static_cast<double>(busy_ns) / static_cast<double>(total) : 0.0;
  }
};

class DutyCycle {
 public:
  // Owning thread, at loop entry / exit. The park brackets double as the
  // profiler's phase context: a sample taken between park_begin and park_end
  // is tagged idle, everything else on a duty-cycled thread is busy.
  void on_start() {
    start_ns_.store(now_ns(), std::memory_order_relaxed);
    set_prof_phase(ProfPhase::kBusy);
  }
  void on_stop() { stop_ns_.store(now_ns(), std::memory_order_relaxed); }

  // Owning thread, around each blocking wait.
  uint64_t park_begin() const {
    set_prof_phase(ProfPhase::kIdle);
    return now_ns();
  }
  void park_end(uint64_t t0) {
    set_prof_phase(ProfPhase::kBusy);
    idle_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    parks_.fetch_add(1, std::memory_order_relaxed);
  }

  // Any thread. busy = wall time since start minus accumulated idle.
  DutyStats sample() const {
    DutyStats s;
    const uint64_t start = start_ns_.load(std::memory_order_relaxed);
    if (start == 0) return s;  // thread never ran
    const uint64_t stop = stop_ns_.load(std::memory_order_relaxed);
    const uint64_t end = stop != 0 ? stop : now_ns();
    const uint64_t wall = end > start ? end - start : 0;
    s.idle_ns = idle_ns_.load(std::memory_order_relaxed);
    s.busy_ns = wall > s.idle_ns ? wall - s.idle_ns : 0;
    s.parks = parks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> start_ns_{0};
  std::atomic<uint64_t> stop_ns_{0};
  std::atomic<uint64_t> idle_ns_{0};
  std::atomic<uint64_t> parks_{0};
};

}  // namespace darray::obs
