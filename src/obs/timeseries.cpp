#include "obs/timeseries.hpp"

#include <bit>
#include <cstdio>
#include <mutex>

namespace darray::obs {

// One metric's ring. Slots are (t, v) pairs of relaxed atomics; `head` counts
// points ever pushed and is published with release so a reader that sees
// head == h can safely load every slot of index < h. `reserved` is bumped
// (with a release fence) BEFORE the slot stores, so a reader that observed a
// clobbered slot is guaranteed to observe the reservation that clobbered it —
// without it, a reader racing the in-progress write at index `head` would see
// torn data for index head - capacity while head itself still looks idle.
// The writer owns `prev` (last raw counter value, for delta encoding) —
// readers never touch it.
struct TimeSeriesStore::Ring {
  std::string name;
  bool rate = false;
  uint64_t prev = 0;  // writer-only
  std::unique_ptr<std::atomic<uint64_t>[]> slots;  // 2 * capacity: t, v
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> reserved{0};  // highest index the writer may be writing, +1

  Ring(std::string n, bool is_rate, uint32_t capacity)
      : name(std::move(n)), rate(is_rate),
        slots(new std::atomic<uint64_t>[2 * size_t{capacity}]()) {}
};

namespace {

uint32_t round_up_pow2(uint32_t v) {
  return v <= 2 ? 2 : std::bit_ceil(v);
}

// Raw histogram bucket entries: counters for delta purposes, but deliberately
// not ring-buffered (see header).
bool is_bucket_entry(std::string_view name) {
  return name.find(".bkt_") != std::string_view::npos;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(uint32_t capacity)
    : capacity_(round_up_pow2(capacity)) {}

TimeSeriesStore::~TimeSeriesStore() = default;

TimeSeriesStore::Ring* TimeSeriesStore::find_or_create(const std::string& name) {
  std::lock_guard lk(mu_);
  for (const auto& r : rings_)
    if (r->name == name) return r.get();
  rings_.push_back(std::make_unique<Ring>(name, !stats_is_point_sample(name), capacity_));
  return rings_.back().get();
}

void TimeSeriesStore::record(uint64_t now_ns, const StatsSnapshot& snap) {
  for (const StatEntry& e : snap.entries) {
    if (is_bucket_entry(e.name)) continue;
    Ring* r = find_or_create(e.name);
    uint64_t v = e.value;
    if (r->rate) {
      v = e.value >= r->prev ? e.value - r->prev : 0;  // saturate on reset
      r->prev = e.value;
    }
    const uint64_t h = r->head.load(std::memory_order_relaxed);
    const size_t slot = static_cast<size_t>(h & (capacity_ - 1));
    r->reserved.store(h + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    r->slots[2 * slot].store(now_ns, std::memory_order_relaxed);
    r->slots[2 * slot + 1].store(v, std::memory_order_relaxed);
    r->head.store(h + 1, std::memory_order_release);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

// Copy the newest points, then re-read the reservation counter: slot of
// index i is only ever clobbered by the write of index i + capacity, and
// that write bumps `reserved` to i + capacity + 1 first (release fence), so
// after an acquire fence any copied index < reserved - capacity must be
// discarded — if a copy was torn, the reservation that tore it is visible.
// What survives is a contiguous, un-torn suffix of the series; a quiescent
// ring (reserved == head) loses nothing.
void TimeSeriesStore::read_ring(const Ring& r, size_t last_n,
                                std::vector<SeriesPoint>& out) const {
  out.clear();
  const uint64_t h1 = r.head.load(std::memory_order_acquire);
  const uint64_t n = h1 < capacity_ ? h1 : capacity_;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = h1 - n; i < h1; ++i) {
    const size_t slot = static_cast<size_t>(i & (capacity_ - 1));
    SeriesPoint p;
    p.t_ns = r.slots[2 * slot].load(std::memory_order_relaxed);
    p.value = r.slots[2 * slot + 1].load(std::memory_order_relaxed);
    out.push_back(p);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t res = r.reserved.load(std::memory_order_relaxed);
  if (res > capacity_) {
    const uint64_t first_valid = res - capacity_;
    const uint64_t first_copied = h1 - n;
    const size_t drop = static_cast<size_t>(
        first_valid > first_copied ? first_valid - first_copied : 0);
    out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(
                               drop < out.size() ? drop : out.size()));
  }
  if (last_n != 0 && out.size() > last_n)
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last_n));
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::vector<std::string> out;
  std::lock_guard lk(mu_);
  out.reserve(rings_.size());
  for (const auto& r : rings_) out.push_back(r->name);
  return out;
}

bool TimeSeriesStore::read(std::string_view name, std::vector<SeriesPoint>& out) const {
  const Ring* ring = nullptr;
  {
    std::lock_guard lk(mu_);
    for (const auto& r : rings_)
      if (r->name == name) {
        ring = r.get();
        break;
      }
  }
  if (!ring) return false;
  read_ring(*ring, 0, out);
  return true;
}

std::vector<TimeSeriesStore::Series> TimeSeriesStore::collect(std::string_view prefix,
                                                              size_t last_n) const {
  // Rings are never removed, so the raw pointers stay valid after the table
  // lock is dropped; the actual point copies then run lock-free.
  std::vector<const Ring*> picked;
  {
    std::lock_guard lk(mu_);
    for (const auto& r : rings_)
      if (prefix.empty() || std::string_view(r->name).substr(0, prefix.size()) == prefix)
        picked.push_back(r.get());
  }
  std::vector<Series> out;
  out.reserve(picked.size());
  for (const Ring* r : picked) {
    Series s;
    s.name = r->name;
    s.rate = r->rate;
    read_ring(*r, last_n, s.points);
    out.push_back(std::move(s));
  }
  return out;
}

std::string TimeSeriesStore::to_json(std::string_view prefix, size_t last_n) const {
  const std::vector<Series> series = collect(prefix, last_n);
  std::string out = "{\"sample_count\": " + std::to_string(samples()) + ", \"series\": [";
  char buf[64];
  for (size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    out += i ? ",\n" : "\n";
    out += "{\"metric\": \"" + s.name + "\", \"rate\": ";
    out += s.rate ? "true" : "false";
    out += ", \"points\": [";
    for (size_t j = 0; j < s.points.size(); ++j) {
      std::snprintf(buf, sizeof(buf), "%s[%llu,%llu]", j ? "," : "",
                    static_cast<unsigned long long>(s.points[j].t_ns),
                    static_cast<unsigned long long>(s.points[j].value));
      out += buf;
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace darray::obs
