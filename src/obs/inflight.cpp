#include "obs/inflight.hpp"

#include <memory>
#include <mutex>
#include <vector>

#include "common/spinlock.hpp"

namespace darray::obs {

namespace {

struct InflightSlot {
  std::atomic<uint64_t> corr{0};      // 0 = no op in flight
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> meta{0};      // kind << 48 | node << 32
  std::atomic<uint64_t> index{0};
  std::atomic<uint64_t> reported{0};  // watchdog-private: last corr reported
};

// Leaked like the trace-ring registry: a scan after the owning thread exited
// reads valid (idle) storage.
struct SlotRegistry {
  SpinLock mu;
  std::vector<std::unique_ptr<InflightSlot>> slots;
};

SlotRegistry& registry() {
  static SlotRegistry* r = new SlotRegistry;
  return *r;
}

#if DARRAY_TRACING
InflightSlot& thread_slot() {
  thread_local InflightSlot* slot = [] {
    auto owned = std::make_unique<InflightSlot>();
    InflightSlot* p = owned.get();
    SlotRegistry& reg = registry();
    std::lock_guard lk(reg.mu);
    reg.slots.push_back(std::move(owned));
    return p;
  }();
  return *slot;
}
#endif

}  // namespace

#if DARRAY_TRACING

bool inflight_begin(uint64_t corr, OpKind kind, uint16_t node, uint64_t index,
                    uint64_t start_ns) {
  InflightSlot& s = thread_slot();
  if (s.corr.load(std::memory_order_relaxed) != 0) return false;  // nested span
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.meta.store((static_cast<uint64_t>(kind) << 48) | (static_cast<uint64_t>(node) << 32),
               std::memory_order_relaxed);
  s.index.store(index, std::memory_order_relaxed);
  s.corr.store(corr, std::memory_order_release);
  return true;
}

void inflight_end() { thread_slot().corr.store(0, std::memory_order_release); }

#endif  // DARRAY_TRACING

size_t watchdog_scan(uint64_t now_ns, uint64_t deadline_ns,
                     const std::function<void(const SlowOp&)>& fn) {
  SlotRegistry& reg = registry();
  std::lock_guard lk(reg.mu);
  size_t reports = 0;
  for (const auto& s : reg.slots) {
    const uint64_t corr = s->corr.load(std::memory_order_acquire);
    if (corr == 0) continue;
    const uint64_t start = s->start_ns.load(std::memory_order_relaxed);
    const uint64_t meta = s->meta.load(std::memory_order_relaxed);
    const uint64_t index = s->index.load(std::memory_order_relaxed);
    // The op may have ended (and a new one begun) between the corr load and
    // the field loads; requiring the same corr afterwards rejects the torn
    // combination.
    if (s->corr.load(std::memory_order_acquire) != corr) continue;
    if (now_ns - start < deadline_ns) continue;
    if (s->reported.load(std::memory_order_relaxed) == corr) continue;
    s->reported.store(corr, std::memory_order_relaxed);
    SlowOp op;
    op.corr = corr;
    op.start_ns = start;
    op.index = index;
    op.kind = static_cast<OpKind>((meta >> 48) & 0xff);
    op.node = static_cast<uint16_t>(meta >> 32);
    ++reports;
    if (fn) fn(op);
  }
  return reports;
}

}  // namespace darray::obs
