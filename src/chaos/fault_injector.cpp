#include "chaos/fault_injector.hpp"

#include <mutex>

namespace darray::chaos {

uint64_t FaultInjector::epoch(uint64_t now) {
  uint64_t e = epoch_ns_.load(std::memory_order_acquire);
  if (e != 0) return e;
  uint64_t expected = 0;
  if (epoch_ns_.compare_exchange_strong(expected, now, std::memory_order_acq_rel))
    return now;
  return expected;
}

FaultInjector::QpStream& FaultInjector::stream(uint32_t qp_num) {
  std::scoped_lock lk(mu_);
  if (qp_num >= streams_.size()) streams_.resize(qp_num + 1);
  if (!streams_[qp_num]) {
    // splitmix inside Xoshiro256's constructor decorrelates adjacent seeds.
    streams_[qp_num] =
        std::make_unique<QpStream>(plan_.seed + 0x9e3779b97f4a7c15ull * (qp_num + 1));
  }
  return *streams_[qp_num];
}

FaultDecision FaultInjector::decide(uint32_t qp_num, uint32_t src_node,
                                    uint32_t dst_node, rdma::Opcode op,
                                    uint64_t now) {
  FaultDecision d;
  const uint64_t elapsed = now - epoch(now);

  // Scheduled node outages dominate the probabilistic faults.
  for (const FaultWindow& w : plan_.windows) {
    if (w.node != src_node && w.node != dst_node) continue;
    if (elapsed < w.start_ns || elapsed >= w.end_ns()) continue;
    if (w.blackhole) {
      blackholed_.fetch_add(1, std::memory_order_relaxed);
      d.status = rdma::WcStatus::kRetryExceeded;
      return d;
    }
    // Pause: hold the WR until the window closes.
    d.extra_latency_ns += w.end_ns() - elapsed;
    paused_.fetch_add(1, std::memory_order_relaxed);
  }

  QpStream& s = stream(qp_num);

  if (op == rdma::Opcode::kSend) {
    if (now < s.rnr_until_ns) {
      rnr_rejections_.fetch_add(1, std::memory_order_relaxed);
      d.status = rdma::WcStatus::kRnrError;
      return d;
    }
    if (plan_.p_rnr > 0.0 && s.rng.next_double() < plan_.p_rnr) {
      s.rnr_until_ns = now + plan_.rnr_window_ns;
      rnr_rejections_.fetch_add(1, std::memory_order_relaxed);
      d.status = rdma::WcStatus::kRnrError;
      return d;
    }
  }

  if (plan_.p_wc_error > 0.0 && s.rng.next_double() < plan_.p_wc_error) {
    wc_errors_.fetch_add(1, std::memory_order_relaxed);
    d.status = (s.rng.next() & 1) ? rdma::WcStatus::kRemoteAccessError
                                  : rdma::WcStatus::kRetryExceeded;
    return d;
  }

  if (plan_.p_delay > 0.0 && s.rng.next_double() < plan_.p_delay) {
    const uint64_t span = plan_.delay_max_ns > plan_.delay_min_ns
                              ? plan_.delay_max_ns - plan_.delay_min_ns
                              : 0;
    d.extra_latency_ns +=
        plan_.delay_min_ns + (span ? s.rng.next_below(span + 1) : 0);
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.wc_errors = wc_errors_.load(std::memory_order_relaxed);
  c.rnr_rejections = rnr_rejections_.load(std::memory_order_relaxed);
  c.delays = delays_.load(std::memory_order_relaxed);
  c.blackholed = blackholed_.load(std::memory_order_relaxed);
  c.paused = paused_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace darray::chaos
