// Declarative description of the faults a chaos run should inject. A plan is
// pure data: the same plan (same seed) drives the same per-QP decision
// sequences in FaultInjector, so failing runs can be replayed by seed.
//
// All probabilities are per posted work request. Off-by-default: a
// default-constructed plan injects nothing and `enabled()` is false.
#pragma once

#include <cstdint>
#include <vector>

namespace darray::chaos {

// One node-scoped outage, relative to the injector's epoch (the first WR the
// injector sees). While the window is open, every WR posted from or toward
// `node` is affected: a paused node's traffic is delayed until the window
// closes; a blackholed node's traffic completes with kRetryExceeded (the
// transport gave up, as RC does when retry_cnt is exhausted).
struct FaultWindow {
  uint32_t node = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  bool blackhole = false;  // false = pause (delay), true = drop with error

  uint64_t end_ns() const { return start_ns + duration_ns; }
};

struct FaultPlan {
  uint64_t seed = 1;

  // Completion-with-error: the WR does not execute and completes with an
  // error status (drawn errors alternate between kRemoteAccessError and
  // kRetryExceeded), which moves the posting QP to the ERROR state.
  double p_wc_error = 0.0;

  // Transient RNR backpressure: with probability p_rnr a SEND opens an RNR
  // window on its QP; every SEND on that QP completes with kRnrError until
  // the window closes. Posted RECVs are not consumed.
  double p_rnr = 0.0;
  uint64_t rnr_window_ns = 200'000;

  // Per-link latency spike, uniform in [delay_min_ns, delay_max_ns], added on
  // top of the fabric's base latency/bandwidth model.
  double p_delay = 0.0;
  uint64_t delay_min_ns = 0;
  uint64_t delay_max_ns = 0;

  // Scheduled node outages (pause / blackhole).
  std::vector<FaultWindow> windows;

  bool enabled() const {
    return p_wc_error > 0.0 || p_rnr > 0.0 || p_delay > 0.0 || !windows.empty();
  }
};

}  // namespace darray::chaos
