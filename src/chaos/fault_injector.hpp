// Deterministic fault injection for the simulated fabric.
//
// The fabric consults the injector on every posted WR. Decisions are drawn
// from a per-QP xoshiro stream seeded from (plan.seed, qp_num), and each QP is
// posted to by exactly one thread (the owning node's Tx thread), so the
// decision sequence a QP sees depends only on the seed and the sequence of
// WRs it posts — never on cross-thread interleaving. Node outage windows are
// evaluated against a shared epoch (the first WR the injector observes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "rdma/verbs.hpp"

namespace darray::chaos {

struct FaultDecision {
  rdma::WcStatus status = rdma::WcStatus::kSuccess;
  uint64_t extra_latency_ns = 0;

  bool faulted() const {
    return status != rdma::WcStatus::kSuccess || extra_latency_ns != 0;
  }
};

// Injector-side event counts (what was *injected*; the fabric's FabricStats
// counts what the stack *observed*, including genuine errors).
struct FaultCounters {
  uint64_t wc_errors = 0;
  uint64_t rnr_rejections = 0;
  uint64_t delays = 0;
  uint64_t blackholed = 0;
  uint64_t paused = 0;

  uint64_t total() const {
    return wc_errors + rnr_rejections + delays + blackholed + paused;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Decide the fate of one WR about to be posted on `qp_num` from `src_node`
  // toward `dst_node` at monotonic time `now`. Thread contract: concurrent
  // calls are fine as long as each qp_num is always passed by the same thread
  // (which is the fabric's posting contract).
  FaultDecision decide(uint32_t qp_num, uint32_t src_node, uint32_t dst_node,
                       rdma::Opcode op, uint64_t now);

  const FaultPlan& plan() const { return plan_; }
  FaultCounters counters() const;

 private:
  struct QpStream {
    explicit QpStream(uint64_t seed) : rng(seed) {}
    Xoshiro256 rng;
    uint64_t rnr_until_ns = 0;
  };

  QpStream& stream(uint32_t qp_num);
  uint64_t epoch(uint64_t now);

  const FaultPlan plan_;
  std::atomic<uint64_t> epoch_ns_{0};

  SpinLock mu_;  // guards growth of streams_; entries are thread-private after
  std::vector<std::unique_ptr<QpStream>> streams_;

  std::atomic<uint64_t> wc_errors_{0}, rnr_rejections_{0}, delays_{0},
      blackholed_{0}, paused_{0};
};

}  // namespace darray::chaos
