// The coherence engine: one instance per runtime thread, implementing the
// paper's extended directory protocol (§4.4, Fig. 9, Table 1) plus cache
// management (§4.2) and the home side of distributed locks.
//
// Concurrency model: each chunk is owned by exactly one runtime thread per
// node (chunk % runtime_threads). The engine therefore runs single-threaded
// over its chunks and never blocks: operations that must wait (dentry drains,
// invalidation acks, flush collection) are parked as continuations and
// resumed from tick() / message arrival. Per-QP FIFO delivery resolves the
// voluntary-eviction races (see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "net/message.hpp"
#include "runtime/array_state.hpp"
#include "runtime/cache_region.hpp"
#include "runtime/lock_table.hpp"
#include "runtime/stats.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

class NodeRuntime;

class Engine {
 public:
  Engine(NodeRuntime* node, uint32_t rt_index, CacheRegion* region, Doorbell* bell);

  // Entry points, called only from the owning runtime thread's loop.
  void handle_local(LocalRequest* r);
  void handle_rpc(net::RpcMessage m);

  // Advance parked work (drains, deferred allocations, pending cacheline
  // releases, watermark reclaim). Returns true if anything progressed.
  bool tick();

  // True when tick() must be polled (a parked allocation waits on refcounts
  // that drop without ringing the doorbell).
  bool needs_poll() const { return !alloc_retry_.empty(); }

  // Single-writer counters; read from other threads only for reporting.
  const RuntimeStats& stats() const { return stats_; }

 private:
  // --- normalised request view ----------------------------------------------
  enum class AccessKind : uint8_t { kRead, kWrite, kOperate };

  struct HomeReq {
    AccessKind kind;
    NodeId src;
    uint16_t op = kNoOp;
    uint64_t raddr = 0;  // requester cacheline address (remote src only)
    uint32_t rkey = 0;
    uint64_t trace = 0;  // obs correlation id of the originating op
    PendingReq orig;
  };

  static AccessKind kind_of(const PendingReq& req);
  HomeReq make_home_req(PendingReq req) const;

  // --- home side --------------------------------------------------------------
  void home_submit(NodeArrayState& as, ChunkId c, PendingReq req);
  void home_handle(NodeArrayState& as, ChunkId c, HomeReq req);
  void home_unshared(NodeArrayState& as, ChunkId c, HomeReq req);
  void home_shared(NodeArrayState& as, ChunkId c, HomeReq req);
  void home_dirty(NodeArrayState& as, ChunkId c, HomeReq req);
  void home_operated(NodeArrayState& as, ChunkId c, HomeReq req);
  void maybe_complete_txn(NodeArrayState& as, ChunkId c);
  void pump(NodeArrayState& as, ChunkId c);
  void complete_local(NodeArrayState& as, ChunkId c, const PendingReq& req);
  void perform_access(NodeArrayState& as, ChunkId c, LocalRequest* r);

  // --- requester side ----------------------------------------------------------
  void remote_miss(NodeArrayState& as, ChunkId c, LocalRequest* r);
  void try_issue_remote(NodeArrayState& as, ChunkId c);
  void on_fill(NodeArrayState& as, ChunkId c, const net::RpcMessage& m);
  void on_invalidate(NodeArrayState& as, ChunkId c, const net::RpcMessage& m);
  void on_fetch(NodeArrayState& as, ChunkId c, const net::RpcMessage& m);
  void on_flush_req(NodeArrayState& as, ChunkId c, const net::RpcMessage& m);
  void wake_parked(NodeArrayState& as, ChunkId c);
  void issue_prefetches(const NodeArrayState& as, ChunkId after);

  // --- flush/apply helpers -------------------------------------------------------
  net::PayloadBuf build_flush_payload(const NodeArrayState& as, ChunkId c,
                                      CacheLine* line) const;
  void apply_flush_payload(NodeArrayState& as, ChunkId c, uint16_t op_id,
                           const net::PayloadBuf& payload);
  void send_combine_flush(NodeArrayState& as, ChunkId c, ChunkCtl& ctl, uint16_t op_id,
                          uint64_t trace = 0);

  // --- locks -----------------------------------------------------------------
  void local_lock_acquire(LocalRequest* r);
  void local_lock_release(LocalRequest* r);
  void rpc_lock(const net::RpcMessage& m);
  void deliver_lock_grants(ArrayId array, uint64_t index, std::deque<LockWaiter>& grants);

  // --- cache management --------------------------------------------------------
  size_t reclaim();
  bool try_evict(CacheLine& line);

  // --- drains -----------------------------------------------------------------
  void start_drain(Dentry& d, DentryState target, std::function<void()> then);

  // --- messaging ---------------------------------------------------------------
  void send_msg(NodeId dst, net::MsgType type, ArrayId array, ChunkId chunk,
                uint16_t op = kNoOp, uint64_t addr = 0, uint32_t rkey = 0,
                uint32_t aux = 0, uint32_t txn = 0, uint64_t trace = 0,
                net::PayloadBuf payload = {});
  void send_chunk_data(NodeArrayState& as, ChunkId c, NodeId dst, net::MsgType type,
                       uint64_t raddr, uint32_t rkey, uint64_t trace = 0);

  NodeArrayState& state_of(ArrayId id) const;
  bool is_home(const NodeArrayState& as, ChunkId c) const;

  NodeRuntime* node_;
  const uint32_t rt_index_;
  CacheRegion* region_;
  Doorbell* bell_;
  NodeId self_;

  struct Drain {
    Dentry* dentry;
    std::function<void()> then;
  };
  std::vector<Drain> drains_;
  std::vector<std::pair<ArrayId, ChunkId>> alloc_retry_;

  LockTable locks_;
  std::unordered_map<uint32_t, LocalRequest*> pending_locks_;
  uint32_t next_txn_ = 1;
  RuntimeStats stats_;
};

}  // namespace darray::rt
