#include "runtime/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"
#include "runtime/combine.hpp"
#include "runtime/node.hpp"

namespace darray::rt {

using net::MsgType;

Engine::Engine(NodeRuntime* node, uint32_t rt_index, CacheRegion* region, Doorbell* bell)
    : node_(node), rt_index_(rt_index), region_(region), bell_(bell), self_(node->id()) {}

NodeArrayState& Engine::state_of(ArrayId id) const {
  NodeArrayState* st = node_->array_state(id);
  DARRAY_ASSERT_MSG(st != nullptr, "message for unknown array");
  return *st;
}

bool Engine::is_home(const NodeArrayState& as, ChunkId c) const {
  return as.meta->home_of_chunk(c) == self_;
}

Engine::AccessKind Engine::kind_of(const PendingReq& req) {
  if (req.is_local()) {
    switch (req.local->kind) {
      case LocalRequest::Kind::kRead:
      case LocalRequest::Kind::kPrefetch:
        return AccessKind::kRead;
      case LocalRequest::Kind::kWrite:
        return AccessKind::kWrite;
      case LocalRequest::Kind::kOperate:
        return AccessKind::kOperate;
      case LocalRequest::Kind::kPin:
        switch (req.local->pin_mode) {
          case PinMode::kRead: return AccessKind::kRead;
          case PinMode::kWrite: return AccessKind::kWrite;
          case PinMode::kOperate: return AccessKind::kOperate;
        }
        DARRAY_UNREACHABLE("bad pin mode");
      default:
        DARRAY_UNREACHABLE("not an access request");
    }
  }
  switch (req.msg.hdr.type) {
    case MsgType::kReadReq: return AccessKind::kRead;
    case MsgType::kWriteReq: return AccessKind::kWrite;
    case MsgType::kOperateReq: return AccessKind::kOperate;
    default: DARRAY_UNREACHABLE("not an access message");
  }
}

Engine::HomeReq Engine::make_home_req(PendingReq req) const {
  HomeReq h;
  h.kind = kind_of(req);
  if (req.is_local()) {
    h.src = self_;
    h.op = req.local->op_id;
    h.trace = req.local->trace_id;
  } else {
    h.src = req.msg.hdr.src_node;
    h.op = req.msg.hdr.op_id;
    h.raddr = req.msg.hdr.addr;
    h.rkey = req.msg.hdr.rkey;
    h.trace = req.msg.hdr.trace;
  }
  h.orig = std::move(req);
  return h;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void Engine::handle_local(LocalRequest* r) {
  switch (r->kind) {
    case LocalRequest::Kind::kLockAcq:
      local_lock_acquire(r);
      return;
    case LocalRequest::Kind::kLockRel:
      local_lock_release(r);
      return;
    default:
      break;
  }
  switch (r->kind) {
    case LocalRequest::Kind::kRead: stats_.local_read_misses++; break;
    case LocalRequest::Kind::kWrite: stats_.local_write_misses++; break;
    case LocalRequest::Kind::kOperate: stats_.local_operate_misses++; break;
    case LocalRequest::Kind::kPin:
      switch (r->pin_mode) {
        case PinMode::kRead: stats_.local_read_misses++; break;
        case PinMode::kWrite: stats_.local_write_misses++; break;
        case PinMode::kOperate: stats_.local_operate_misses++; break;
      }
      break;
    case LocalRequest::Kind::kPrefetch:
      // Counted here (not at creation) so the engine's own read-ahead and
      // application-driven prefetch_range() land in the same counter.
      stats_.prefetches_issued++;
      break;
    default: break;
  }
  obs::trace(obs::Ev::kMiss, r->trace_id, static_cast<uint8_t>(r->kind),
             static_cast<uint16_t>(self_), static_cast<uint32_t>(r->chunk), r->index);
  NodeArrayState& as = state_of(r->array);
  const ChunkId c = r->chunk;
  if (is_home(as, c)) {
    if (r->kind == LocalRequest::Kind::kPrefetch) {
      delete r;  // nothing to prefetch for home chunks
      return;
    }
    home_submit(as, c, PendingReq{.local = r, .msg = {}});
  } else {
    remote_miss(as, c, r);
  }
}

void Engine::handle_rpc(net::RpcMessage m) {
  const ChunkId c = m.hdr.chunk;
  switch (m.hdr.type) {
    case MsgType::kReadReq:
    case MsgType::kWriteReq:
    case MsgType::kOperateReq: {
      stats_.remote_reqs++;
      NodeArrayState& as = state_of(m.hdr.array_id);
      DARRAY_ASSERT(is_home(as, c));
      home_submit(as, c, PendingReq{.local = nullptr, .msg = std::move(m)});
      return;
    }
    case MsgType::kInvAck: {
      NodeArrayState& as = state_of(m.hdr.array_id);
      ChunkCtl& ctl = as.ctl[c];
      DARRAY_ASSERT(ctl.busy);
      ctl.awaiting.remove(m.hdr.src_node);
      maybe_complete_txn(as, c);
      return;
    }
    case MsgType::kFetchData: {
      NodeArrayState& as = state_of(m.hdr.array_id);
      ChunkCtl& ctl = as.ctl[c];
      DARRAY_ASSERT_MSG(ctl.busy, "FetchData without a pending fetch");
      ctl.awaiting.remove(m.hdr.src_node);
      maybe_complete_txn(as, c);
      return;
    }
    case MsgType::kWriteback: {
      NodeArrayState& as = state_of(m.hdr.array_id);
      ChunkCtl& ctl = as.ctl[c];
      if (ctl.busy && ctl.awaiting.contains(m.hdr.src_node)) {
        // Voluntary eviction raced with our fetch: the writeback IS the data.
        ctl.wb_voluntary = true;
        ctl.awaiting.remove(m.hdr.src_node);
        maybe_complete_txn(as, c);
        return;
      }
      DARRAY_ASSERT(ctl.g == GlobalState::kDirty && ctl.owner == m.hdr.src_node);
      ctl.g = GlobalState::kUnshared;
      ctl.owner = kNoNode;
      // Data already landed one-sidedly; home regains full permission.
      as.dentries[c].promote(DentryState::kWrite);
      return;
    }
    case MsgType::kOpFlush: {
      stats_.op_flushes_applied++;
      NodeArrayState& as = state_of(m.hdr.array_id);
      ChunkCtl& ctl = as.ctl[c];
      apply_flush_payload(as, c, m.hdr.op_id, m.payload);
      ctl.op_nodes.remove(m.hdr.src_node);
      if (ctl.busy && ctl.awaiting.contains(m.hdr.src_node)) {
        ctl.awaiting.remove(m.hdr.src_node);
        maybe_complete_txn(as, c);
      }
      return;
    }
    case MsgType::kReadData:
    case MsgType::kWriteData:
    case MsgType::kOperateResp:
      stats_.fills++;
      on_fill(state_of(m.hdr.array_id), c, m);
      return;
    case MsgType::kInvalidate:
      stats_.invalidations++;
      on_invalidate(state_of(m.hdr.array_id), c, m);
      return;
    case MsgType::kFetch:
      stats_.fetches++;
      on_fetch(state_of(m.hdr.array_id), c, m);
      return;
    case MsgType::kFlushReq:
      stats_.flush_reqs++;
      on_flush_req(state_of(m.hdr.array_id), c, m);
      return;
    case MsgType::kLockAcq:
    case MsgType::kLockRel:
    case MsgType::kLockGrant:
      rpc_lock(m);
      return;
    case MsgType::kReducePart:
      // Reduction-tree partial (src/compute): hdr.chunk is the collective
      // sequence number, present only to spread deliveries across runtime
      // threads; the board keys on (seq, src, fragment).
      stats_.reduce_parts_rx++;
      node_->reduce_board().deliver(
          ReduceBoard::key(m.hdr.txn_id, m.hdr.src_node, m.hdr.rkey),
          ReduceBoard::Part{m.hdr.addr, m.hdr.aux, std::move(m.payload)});
      return;
    case MsgType::kClientReq:
    case MsgType::kClientResp:
      // Client-serving plane (src/serve): hdr.chunk only spreads deliveries
      // across runtime threads; the front door does its own matching via
      // txn_id (session) and addr (sequence).
      node_->deliver_client_msg(std::move(m));
      return;
    default:
      DARRAY_UNREACHABLE("unexpected message type");
  }
}

bool Engine::tick() {
  bool progressed = region_->tick_pending_releases();

  // Complete drains whose reference counts have drained (Fig. 5 ③/④,
  // resumed asynchronously so this thread never blocks).
  for (size_t i = 0; i < drains_.size(); ++i) {
    if (!drains_[i].dentry) continue;
    if (!drains_[i].dentry->drained()) continue;
    Drain d = std::move(drains_[i]);
    drains_[i].dentry = nullptr;
    d.dentry->finish_drain();
    d.then();  // may append new drains; index loop stays valid
    progressed = true;
  }
  std::erase_if(drains_, [](const Drain& d) { return d.dentry == nullptr; });

  // Retry remote issues that stalled on cacheline allocation.
  if (!alloc_retry_.empty()) {
    auto retry = std::move(alloc_retry_);
    alloc_retry_.clear();
    for (auto [array, chunk] : retry) {
      try_issue_remote(state_of(array), chunk);
    }
    progressed |= alloc_retry_.size() < retry.size();
  }

  // Watermark-driven reclamation (§4.2): refill free lines to high watermark.
  if (region_->below_low_watermark()) progressed |= reclaim() > 0;

  return progressed;
}

// ---------------------------------------------------------------------------
// Home side
// ---------------------------------------------------------------------------

void Engine::home_submit(NodeArrayState& as, ChunkId c, PendingReq req) {
  ChunkCtl& ctl = as.ctl[c];
  if (ctl.busy) {
    ctl.waiting.push_back(std::move(req));
    return;
  }
  home_handle(as, c, make_home_req(std::move(req)));
}

void Engine::complete_local(NodeArrayState& as, ChunkId c, const PendingReq& req) {
  DARRAY_ASSERT(req.is_local());
  perform_access(as, c, req.local);
}

// Execute a granted slow-path access inside the runtime's exclusive window.
// Doing the access here (instead of waking the requester to retry) is what
// guarantees progress: by the time the requester would be scheduled, the
// permission could already have been revoked by the next remote request,
// livelocking hot chunks under cross-node contention.
void Engine::perform_access(NodeArrayState& as, ChunkId c, LocalRequest* r) {
  Dentry& d = as.dentries[c];
  if (r->kind == LocalRequest::Kind::kPrefetch) {
    delete r;
    return;
  }
  if (r->kind == LocalRequest::Kind::kPin) {
    // Acquire the chunk reference on the requester's behalf: held until the
    // application calls unpin(), it blocks every drain (the §4.1 guarantee).
    d.refcnt.fetch_add(1, std::memory_order_acq_rel);
    r->granted = d.state.load(std::memory_order_acquire);
    r->done.signal();
    return;
  }
  const uint32_t esz = as.meta->elem_size;
  const uint32_t off = as.meta->offset_in_chunk(r->index);
  std::byte* base = d.data.load(std::memory_order_acquire);
  DARRAY_ASSERT(base != nullptr);
  switch (r->kind) {
    case LocalRequest::Kind::kRead:
      r->operand = atomic_load_elem(base + size_t{off} * esz, esz);
      break;
    case LocalRequest::Kind::kWrite:
      atomic_store_elem(base + size_t{off} * esz, esz, r->operand);
      break;
    case LocalRequest::Kind::kOperate: {
      const OpDesc& op = node_->cluster().op(r->op_id);
      std::byte* cb = d.combine.load(std::memory_order_acquire);
      if (d.state.load(std::memory_order_acquire) == DentryState::kOperated && cb) {
        CombineView view{cb, d.combine_bitmap.load(std::memory_order_acquire),
                         as.meta->chunk_elems};
        combine_into(view, off, op, &r->operand);
      } else {
        atomic_apply(base + size_t{off} * esz, op, &r->operand);
      }
      break;
    }
    default:
      DARRAY_UNREACHABLE("not a data access");
  }
  r->done.signal();
}

void Engine::home_handle(NodeArrayState& as, ChunkId c, HomeReq req) {
  switch (as.ctl[c].g) {
    case GlobalState::kUnshared: home_unshared(as, c, std::move(req)); return;
    case GlobalState::kShared: home_shared(as, c, std::move(req)); return;
    case GlobalState::kDirty: home_dirty(as, c, std::move(req)); return;
    case GlobalState::kOperated: home_operated(as, c, std::move(req)); return;
  }
}

void Engine::home_unshared(NodeArrayState& as, ChunkId c, HomeReq req) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  if (req.src == self_) {
    // Home already holds R/W/O permission in Unshared — the miss raced with
    // a transition that has since resolved; let the caller retry.
    complete_local(as, c, req.orig);
    return;
  }
  ctl.busy = true;
  switch (req.kind) {
    case AccessKind::kRead:
      // Fig. 9: Unshared → Shared on remote R. Home dentry degrades W → R.
      start_drain(d, DentryState::kRead, [this, &as, c, req = std::move(req)] {
        ChunkCtl& ctl2 = as.ctl[c];
        ctl2.g = GlobalState::kShared;
        ctl2.sharers.add(req.src);
        send_chunk_data(as, c, req.src, MsgType::kReadData, req.raddr, req.rkey, req.trace);
        ctl2.busy = false;
        pump(as, c);
      });
      return;
    case AccessKind::kWrite:
      // Fig. 9: Unshared → Dirty on remote W. Home loses all permission.
      start_drain(d, DentryState::kInvalid, [this, &as, c, req = std::move(req)] {
        ChunkCtl& ctl2 = as.ctl[c];
        ctl2.g = GlobalState::kDirty;
        ctl2.owner = req.src;
        send_chunk_data(as, c, req.src, MsgType::kWriteData, req.raddr, req.rkey, req.trace);
        ctl2.busy = false;
        pump(as, c);
      });
      return;
    case AccessKind::kOperate:
      // Fig. 9: Unshared → Operated on remote O. Home keeps applying locally.
      d.op_id.store(req.op, std::memory_order_release);
      start_drain(d, DentryState::kOperated, [this, &as, c, req = std::move(req)] {
        ChunkCtl& ctl2 = as.ctl[c];
        ctl2.g = GlobalState::kOperated;
        ctl2.g_op = req.op;
        ctl2.op_nodes = NodeMask::single(req.src);
        send_msg(req.src, MsgType::kOperateResp, as.meta->id, c, req.op, 0, 0, 0, 0,
                 req.trace);
        ctl2.busy = false;
        pump(as, c);
      });
      return;
  }
}

void Engine::home_shared(NodeArrayState& as, ChunkId c, HomeReq req) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];

  if (req.kind == AccessKind::kRead) {
    if (req.src == self_) {
      complete_local(as, c, req.orig);  // home can already read in Shared
      return;
    }
    ctl.sharers.add(req.src);
    send_chunk_data(as, c, req.src, MsgType::kReadData, req.raddr, req.rkey, req.trace);
    return;
  }

  // Write or Operate: invalidate every remote sharer except the requester.
  ctl.busy = true;
  ctl.awaiting = ctl.sharers;
  if (req.src != self_) ctl.awaiting.remove(req.src);
  for (NodeId n : ctl.awaiting)
    send_msg(n, MsgType::kInvalidate, as.meta->id, c, kNoOp, 0, 0, 0, 0, req.trace);

  const bool operate = req.kind == AccessKind::kOperate;
  ctl.txn_then = [this, &as, c, req = std::move(req), operate] {
    ChunkCtl& ctl2 = as.ctl[c];
    Dentry& d2 = as.dentries[c];
    ctl2.sharers.clear();
    if (operate) {
      ctl2.g = GlobalState::kOperated;
      ctl2.g_op = req.op;
      ctl2.op_nodes.clear();
      if (req.src == self_) {
        complete_local(as, c, req.orig);
      } else {
        ctl2.op_nodes.add(req.src);
        send_msg(req.src, MsgType::kOperateResp, as.meta->id, c, req.op, 0, 0, 0, 0,
                 req.trace);
      }
    } else if (req.src == self_) {
      ctl2.g = GlobalState::kUnshared;
      d2.promote(DentryState::kWrite);  // Fig. 6: pure promotion, no drain
      complete_local(as, c, req.orig);
    } else {
      ctl2.g = GlobalState::kDirty;
      ctl2.owner = req.src;
      send_chunk_data(as, c, req.src, MsgType::kWriteData, req.raddr, req.rkey, req.trace);
    }
  };

  // Home dentry: R → Operated needs a drain (readers must finish before ops
  // begin); R → Invalid likewise for a remote write. R → W for a local write
  // is a promotion handled in txn_then.
  if (operate) {
    d.op_id.store(req.op, std::memory_order_release);
    ctl.self_drain_pending = true;
    start_drain(d, DentryState::kOperated, [this, &as, c] {
      as.ctl[c].self_drain_pending = false;
      maybe_complete_txn(as, c);
    });
  } else if (req.src != self_) {
    ctl.self_drain_pending = true;
    start_drain(d, DentryState::kInvalid, [this, &as, c] {
      as.ctl[c].self_drain_pending = false;
      maybe_complete_txn(as, c);
    });
  }
  maybe_complete_txn(as, c);
}

void Engine::home_dirty(NodeArrayState& as, ChunkId c, HomeReq req) {
  ChunkCtl& ctl = as.ctl[c];
  const NodeId prev_owner = ctl.owner;
  // FIFO per QP: had the owner evicted, its Writeback would have arrived (and
  // flipped us to Unshared) before any new request from it.
  DARRAY_ASSERT(req.src != prev_owner);

  ctl.busy = true;
  ctl.awaiting = NodeMask::single(prev_owner);
  ctl.wb_voluntary = false;
  const uint32_t target = req.kind == AccessKind::kRead
                              ? static_cast<uint32_t>(net::FetchTarget::kShared)
                              : static_cast<uint32_t>(net::FetchTarget::kInvalid);
  send_msg(prev_owner, MsgType::kFetch, as.meta->id, c, kNoOp, 0, 0, target, 0, req.trace);

  ctl.txn_then = [this, &as, c, req = std::move(req), prev_owner] {
    ChunkCtl& ctl2 = as.ctl[c];
    Dentry& d2 = as.dentries[c];
    ctl2.owner = kNoNode;
    switch (req.kind) {
      case AccessKind::kRead: {
        ctl2.g = GlobalState::kShared;
        ctl2.sharers.clear();
        if (!ctl2.wb_voluntary) ctl2.sharers.add(prev_owner);  // it kept a copy
        d2.promote(DentryState::kRead);  // home regains read (Fig. 9 Dirty→Shared)
        if (req.src == self_) {
          complete_local(as, c, req.orig);
        } else {
          ctl2.sharers.add(req.src);
          send_chunk_data(as, c, req.src, MsgType::kReadData, req.raddr, req.rkey,
                          req.trace);
        }
        return;
      }
      case AccessKind::kWrite: {
        if (req.src == self_) {
          ctl2.g = GlobalState::kUnshared;
          d2.promote(DentryState::kWrite);
          complete_local(as, c, req.orig);
        } else {
          ctl2.g = GlobalState::kDirty;
          ctl2.owner = req.src;
          send_chunk_data(as, c, req.src, MsgType::kWriteData, req.raddr, req.rkey,
                          req.trace);
        }
        return;
      }
      case AccessKind::kOperate: {
        ctl2.g = GlobalState::kOperated;
        ctl2.g_op = req.op;
        ctl2.op_nodes.clear();
        d2.op_id.store(req.op, std::memory_order_release);
        d2.promote(DentryState::kOperated);
        if (req.src == self_) {
          complete_local(as, c, req.orig);
        } else {
          ctl2.op_nodes.add(req.src);
          send_msg(req.src, MsgType::kOperateResp, as.meta->id, c, req.op, 0, 0, 0, 0,
                   req.trace);
        }
        return;
      }
    }
  };
  maybe_complete_txn(as, c);
}

void Engine::home_operated(NodeArrayState& as, ChunkId c, HomeReq req) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];

  if (req.kind == AccessKind::kOperate && req.op == ctl.g_op) {
    if (req.src == self_) {
      complete_local(as, c, req.orig);  // home dentry is already kOperated
      return;
    }
    ctl.op_nodes.add(req.src);
    send_msg(req.src, MsgType::kOperateResp, as.meta->id, c, req.op, 0, 0, 0, 0, req.trace);
    return;
  }

  // Fig. 9: any R/W (or a different operator) forces Operated → Unshared: the
  // home gathers every participant's combined operands, then retries the
  // request under Unshared.
  ctl.busy = true;
  ctl.awaiting = ctl.op_nodes;
  for (NodeId n : ctl.awaiting)
    send_msg(n, MsgType::kFlushReq, as.meta->id, c, ctl.g_op, 0, 0, 0, 0, req.trace);

  ctl.self_drain_pending = true;
  start_drain(d, DentryState::kInvalid, [this, &as, c] {
    as.ctl[c].self_drain_pending = false;
    maybe_complete_txn(as, c);
  });

  ctl.txn_then = [this, &as, c, req = std::move(req)]() mutable {
    ChunkCtl& ctl2 = as.ctl[c];
    Dentry& d2 = as.dentries[c];
    ctl2.g = GlobalState::kUnshared;
    ctl2.g_op = kNoOp;
    ctl2.op_nodes.clear();
    d2.op_id.store(kNoOp, std::memory_order_release);
    d2.promote(DentryState::kWrite);
    // Re-dispatch the original request against the Unshared state. busy has
    // been cleared by maybe_complete_txn before txn_then runs.
    home_handle(as, c, std::move(req));
  };
  maybe_complete_txn(as, c);
}

void Engine::maybe_complete_txn(NodeArrayState& as, ChunkId c) {
  ChunkCtl& ctl = as.ctl[c];
  if (!ctl.busy || !ctl.awaiting.empty() || ctl.self_drain_pending) return;
  if (!ctl.txn_then) return;
  auto then = std::move(ctl.txn_then);
  ctl.txn_then = nullptr;
  ctl.busy = false;
  then();  // may re-enter home_handle and set busy again
  pump(as, c);
}

void Engine::pump(NodeArrayState& as, ChunkId c) {
  ChunkCtl& ctl = as.ctl[c];
  while (!ctl.busy && !ctl.waiting.empty()) {
    PendingReq req = std::move(ctl.waiting.front());
    ctl.waiting.pop_front();
    home_handle(as, c, make_home_req(std::move(req)));
  }
}

// ---------------------------------------------------------------------------
// Requester side
// ---------------------------------------------------------------------------

namespace {
bool satisfies(DentryState s, uint16_t cur_op, const LocalRequest& r) {
  const bool operable =
      s == DentryState::kWrite || (s == DentryState::kOperated && cur_op == r.op_id);
  switch (r.kind) {
    case LocalRequest::Kind::kRead:
    case LocalRequest::Kind::kPrefetch:
      return dentry_readable(s);
    case LocalRequest::Kind::kWrite:
      return dentry_writable(s);
    case LocalRequest::Kind::kOperate:
      return operable;
    case LocalRequest::Kind::kPin:
      switch (r.pin_mode) {
        case PinMode::kRead: return dentry_readable(s);
        case PinMode::kWrite: return dentry_writable(s);
        case PinMode::kOperate: return operable;
      }
      return false;
    default:
      return false;
  }
}

// Maps any parked request to the access strength it needs from home.
LocalRequest::Kind access_kind_of(const LocalRequest& r) {
  if (r.kind == LocalRequest::Kind::kPin) {
    switch (r.pin_mode) {
      case PinMode::kRead: return LocalRequest::Kind::kRead;
      case PinMode::kWrite: return LocalRequest::Kind::kWrite;
      case PinMode::kOperate: return LocalRequest::Kind::kOperate;
    }
  }
  if (r.kind == LocalRequest::Kind::kPrefetch) return LocalRequest::Kind::kRead;
  return r.kind;
}
}  // namespace

void Engine::remote_miss(NodeArrayState& as, ChunkId c, LocalRequest* r) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  const DentryState s = d.state.load(std::memory_order_acquire);
  const uint16_t cur_op = d.op_id.load(std::memory_order_acquire);

  if (r->kind == LocalRequest::Kind::kPrefetch) {
    // Prefetch is best-effort: only start a read fill for a cold, idle chunk.
    if (s != DentryState::kInvalid || ctl.outstanding || !ctl.parked.empty()) {
      delete r;
      return;
    }
    ctl.parked.push_back(r);  // reclaimed (deleted) on wake
    try_issue_remote(as, c);
    return;
  }

  if (satisfies(s, cur_op, *r)) {
    perform_access(as, c, r);  // state improved since the fast-path failure
    return;
  }
  ctl.parked.push_back(r);
  if (!ctl.outstanding) try_issue_remote(as, c);
}

void Engine::try_issue_remote(NodeArrayState& as, ChunkId c) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  if (ctl.outstanding || ctl.parked.empty()) return;
  {
    // An issue drain may already be in flight (dentry parked in a pending
    // state while its refcount drains); don't double-issue.
    const DentryState cur = d.state.load(std::memory_order_acquire);
    if (cur == DentryState::kPendingRead || cur == DentryState::kPendingWrite ||
        cur == DentryState::kPendingOperate)
      return;
    // A foreign drain (invalidate / flush-request) may be mid-flight: its
    // continuation will free the cacheline, so issuing against it now would
    // hand the home a dangling fill target. The continuation re-invokes us.
    if (d.delay.load(std::memory_order_acquire)) return;
  }

  // The first *application* request decides what to ask for; others retry on
  // wake. A prefetch leads the list only if nothing else is parked behind it.
  LocalRequest* head = nullptr;
  for (LocalRequest* r : ctl.parked) {
    if (r->kind != LocalRequest::Kind::kPrefetch) {
      head = r;
      break;
    }
  }
  const bool only_prefetch = head == nullptr;
  if (only_prefetch) head = ctl.parked.front();

  if (!ctl.line) {
    CacheLine* line = region_->allocate(as.meta->id, c);
    if (!line) {
      reclaim();
      line = region_->allocate(as.meta->id, c);
    }
    if (!line) {
      if (only_prefetch) {  // don't stall prefetches on a full cache
        wake_parked(as, c);   // deletes the prefetch request(s)
        return;
      }
      alloc_retry_.emplace_back(as.meta->id, c);
      return;
    }
    ctl.line = line;
  }

  const NodeId home = as.meta->home_of_chunk(c);
  const auto issue = [this, &as, c, home](LocalRequest::Kind kind, uint16_t op,
                                          uint64_t trace) {
    ChunkCtl& ctl2 = as.ctl[c];
    ctl2.outstanding = true;
    const auto dir_req = [&](MsgType type) {
      obs::trace(obs::Ev::kDirReq, trace, static_cast<uint8_t>(type),
                 static_cast<uint16_t>(self_), static_cast<uint32_t>(c), home);
    };
    switch (kind) {
      case LocalRequest::Kind::kRead:
      case LocalRequest::Kind::kPrefetch:
        dir_req(MsgType::kReadReq);
        send_msg(home, MsgType::kReadReq, as.meta->id, c, kNoOp,
                 reinterpret_cast<uint64_t>(ctl2.line->data), region_->data_rkey(), 0, 0,
                 trace);
        return;
      case LocalRequest::Kind::kWrite:
        dir_req(MsgType::kWriteReq);
        send_msg(home, MsgType::kWriteReq, as.meta->id, c, kNoOp,
                 reinterpret_cast<uint64_t>(ctl2.line->data), region_->data_rkey(), 0, 0,
                 trace);
        return;
      case LocalRequest::Kind::kOperate:
        dir_req(MsgType::kOperateReq);
        send_msg(home, MsgType::kOperateReq, as.meta->id, c, op, 0, 0, 0, 0, trace);
        return;
      default:
        DARRAY_UNREACHABLE("bad issue kind");
    }
  };

  const DentryState s = d.state.load(std::memory_order_acquire);
  const auto kind = access_kind_of(*head);
  const DentryState pending = kind == LocalRequest::Kind::kWrite
                                  ? DentryState::kPendingWrite
                              : kind == LocalRequest::Kind::kOperate
                                  ? DentryState::kPendingOperate
                                  : DentryState::kPendingRead;
  const auto op = head->op_id;
  const uint64_t trace = head->trace_id;
  if (s == DentryState::kInvalid) {
    d.promote(pending);  // nothing accessible: no drain needed
    issue(kind, op, trace);
  } else {
    // Upgrade (kRead → W/O) or conversion out of kOperated: drain current
    // accessors first, then ask home.
    start_drain(d, pending, [issue, kind, op, trace] { issue(kind, op, trace); });
  }

  // Demand reads (including read pins — the sequential-scan hint) trigger
  // prefetch; prefetch-initiated fills must not cascade.
  if (head->kind == LocalRequest::Kind::kRead ||
      (head->kind == LocalRequest::Kind::kPin && head->pin_mode == PinMode::kRead))
    issue_prefetches(as, c);
}

void Engine::issue_prefetches(const NodeArrayState& as, ChunkId after) {
  const uint32_t n = node_->cluster().config().prefetch_chunks;
  for (uint32_t i = 1; i <= n; ++i) {
    const ChunkId c2 = after + i;
    if (c2 >= as.meta->n_chunks) return;
    if (as.meta->home_of_chunk(c2) == self_) continue;
    // Rough pre-filter; the owning runtime thread re-checks before issuing.
    if (as.dentries[c2].state.load(std::memory_order_relaxed) != DentryState::kInvalid)
      continue;
    auto* r = new LocalRequest();
    r->kind = LocalRequest::Kind::kPrefetch;
    r->array = as.meta->id;
    r->chunk = c2;
    node_->submit_local(r);  // counted in handle_local by the owning thread
  }
}

void Engine::wake_parked(NodeArrayState& as, ChunkId c) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  const DentryState s = d.state.load(std::memory_order_acquire);
  const uint16_t cur_op = d.op_id.load(std::memory_order_acquire);
  std::vector<LocalRequest*> leftover;
  for (LocalRequest* r : ctl.parked) {
    if (r->kind == LocalRequest::Kind::kPrefetch) {
      delete r;
    } else if (satisfies(s, cur_op, *r)) {
      perform_access(as, c, r);
    } else {
      leftover.push_back(r);  // needs a stronger grant (e.g. write after read)
    }
  }
  ctl.parked = std::move(leftover);
  if (!ctl.parked.empty()) try_issue_remote(as, c);
}

void Engine::on_fill(NodeArrayState& as, ChunkId c, const net::RpcMessage& m) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  DARRAY_ASSERT(ctl.outstanding);
  DARRAY_ASSERT(ctl.line != nullptr);
  ctl.outstanding = false;
  obs::trace(obs::Ev::kDirResp, m.hdr.trace, static_cast<uint8_t>(m.hdr.type),
             static_cast<uint16_t>(self_), static_cast<uint32_t>(c), m.hdr.src_node);

  d.data.store(ctl.line->data, std::memory_order_release);
  switch (m.hdr.type) {
    case MsgType::kReadData:
      d.promote(DentryState::kRead);
      break;
    case MsgType::kWriteData:
      d.promote(DentryState::kWrite);
      break;
    case MsgType::kOperateResp: {
      // Seed the combine buffer with the operator identity before publishing.
      const OpDesc& op = node_->cluster().op(m.hdr.op_id);
      CombineView cb{ctl.line->combine_slots, ctl.line->bitmap, as.meta->chunk_elems};
      cb.reset(op);
      ctl.combine_valid = true;
      d.op_id.store(m.hdr.op_id, std::memory_order_release);
      d.combine.store(ctl.line->combine_slots, std::memory_order_release);
      d.combine_bitmap.store(ctl.line->bitmap, std::memory_order_release);
      d.promote(DentryState::kOperated);
      break;
    }
    default:
      DARRAY_UNREACHABLE("bad fill type");
  }
  wake_parked(as, c);
}

void Engine::on_invalidate(NodeArrayState& as, ChunkId c, const net::RpcMessage& m) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  const NodeId home = m.hdr.src_node;
  const uint64_t trace = m.hdr.trace;
  const DentryState s = d.state.load(std::memory_order_acquire);
  if (s == DentryState::kRead) {
    start_drain(d, DentryState::kInvalid, [this, &as, c, home, trace] {
      ChunkCtl& ctl2 = as.ctl[c];
      Dentry& d2 = as.dentries[c];
      d2.data.store(nullptr, std::memory_order_release);
      if (ctl2.line) {
        region_->free(ctl2.line);
        ctl2.line = nullptr;
      }
      send_msg(home, MsgType::kInvAck, as.meta->id, c, kNoOp, 0, 0, 0, 0, trace);
      try_issue_remote(as, c);  // requests parked while we were draining
    });
    return;
  }
  // Already evicted silently, or a fill for a newer epoch is pending (our
  // request is queued behind the home's transaction): ack immediately.
  DARRAY_ASSERT(s != DentryState::kWrite && s != DentryState::kOperated);
  (void)ctl;
  send_msg(home, MsgType::kInvAck, as.meta->id, c, kNoOp, 0, 0, 0, 0, trace);
}

void Engine::on_fetch(NodeArrayState& as, ChunkId c, const net::RpcMessage& m) {
  Dentry& d = as.dentries[c];
  const NodeId home = m.hdr.src_node;
  if (d.state.load(std::memory_order_acquire) != DentryState::kWrite) {
    // Voluntary writeback already in flight; the home will treat it as our
    // response (per-QP FIFO guarantees it arrives).
    return;
  }
  const bool keep = m.hdr.aux == static_cast<uint32_t>(net::FetchTarget::kShared);
  const uint64_t trace = m.hdr.trace;
  const DentryState target = keep ? DentryState::kRead : DentryState::kInvalid;
  start_drain(d, target, [this, &as, c, home, keep, trace] {
    ChunkCtl& ctl = as.ctl[c];
    net::TxRequest t;
    t.dst = static_cast<uint16_t>(home);
    t.hdr.type = MsgType::kFetchData;
    t.hdr.array_id = as.meta->id;
    t.hdr.chunk = c;
    t.hdr.trace = trace;
    t.data_src = ctl.line->data;
    t.data_len = as.meta->elems_in_chunk(c) * as.meta->elem_size;
    t.data_lkey = region_->data_lkey();
    t.data_remote_addr = as.meta->home_chunk_addr(c);
    t.data_rkey = as.meta->subarrays[home].rkey;
    if (!keep) {
      Dentry& d2 = as.dentries[c];
      d2.data.store(nullptr, std::memory_order_release);
      ctl.line->tx_posted.store(0, std::memory_order_release);
      t.posted_flag = &ctl.line->tx_posted;
      region_->free_when_posted(ctl.line);
      ctl.line = nullptr;
    }
    node_->comm().post(std::move(t));
    try_issue_remote(as, c);
  });
}

void Engine::on_flush_req(NodeArrayState& as, ChunkId c, const net::RpcMessage& m) {
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];
  const DentryState s = d.state.load(std::memory_order_acquire);
  if (s == DentryState::kOperated) {
    const uint16_t op_id = d.op_id.load(std::memory_order_acquire);
    const uint64_t trace = m.hdr.trace;
    start_drain(d, DentryState::kInvalid, [this, &as, c, op_id, trace] {
      ChunkCtl& ctl2 = as.ctl[c];
      Dentry& d2 = as.dentries[c];
      d2.data.store(nullptr, std::memory_order_release);
      d2.combine.store(nullptr, std::memory_order_release);
      d2.combine_bitmap.store(nullptr, std::memory_order_release);
      d2.op_id.store(kNoOp, std::memory_order_release);
      send_combine_flush(as, c, ctl2, op_id, trace);
      region_->free(ctl2.line);
      ctl2.line = nullptr;
      try_issue_remote(as, c);  // requests parked while we were draining
    });
    return;
  }
  if (ctl.combine_valid) {
    // We are mid-upgrade (kPending*): the line is being reused as the fill
    // target but its combine area still holds our unflushed operands.
    send_combine_flush(as, c, ctl, m.hdr.op_id, m.hdr.trace);
    return;
  }
  // A voluntary OpFlush from us is already in flight; home counts that one.
}

// ---------------------------------------------------------------------------
// Operate flush plumbing
// ---------------------------------------------------------------------------

net::PayloadBuf Engine::build_flush_payload(const NodeArrayState& as, ChunkId c,
                                            CacheLine* line) const {
  const uint32_t elems = as.meta->elems_in_chunk(c);
  net::PayloadBuf payload;
  const uint32_t words = (as.meta->chunk_elems + 63) / 64;
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t bits = line->bitmap[w].load(std::memory_order_acquire);
    while (bits) {
      const uint32_t off = w * 64 + static_cast<uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (off >= elems) continue;
      net::OpFlushEntry e;
      e.offset = static_cast<uint16_t>(off);
      std::memcpy(&e.value_bits, line->combine_slots + size_t{off} * 8, 8);
      payload.append(&e, sizeof(e));
    }
  }
  return payload;
}

void Engine::send_combine_flush(NodeArrayState& as, ChunkId c, ChunkCtl& ctl,
                                uint16_t op_id, uint64_t trace) {
  const NodeId home = as.meta->home_of_chunk(c);
  net::PayloadBuf payload = build_flush_payload(as, c, ctl.line);
  ctl.combine_valid = false;
  stats_.combine_flushes++;
  obs::trace(obs::Ev::kCombineFlush, trace, 0, static_cast<uint16_t>(self_),
             static_cast<uint32_t>(c), payload.size() / sizeof(net::OpFlushEntry));
  send_msg(home, MsgType::kOpFlush, as.meta->id, c, op_id, 0, 0, 0, 0, trace,
           std::move(payload));
}

void Engine::apply_flush_payload(NodeArrayState& as, ChunkId c, uint16_t op_id,
                                 const net::PayloadBuf& payload) {
  if (payload.empty()) return;
  const OpDesc& op = node_->cluster().op(op_id);
  std::byte* base = as.chunk_data(c);
  const size_t n = payload.size() / sizeof(net::OpFlushEntry);
  for (size_t i = 0; i < n; ++i) {
    net::OpFlushEntry e;
    std::memcpy(&e, payload.data() + i * sizeof(e), sizeof(e));
    // Home-local appliers may be running concurrently (voluntary flush while
    // the chunk is still Operated), so the reduce must also be atomic.
    atomic_apply(base + size_t{e.offset} * op.elem_size, op, &e.value_bits);
  }
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

void Engine::local_lock_acquire(LocalRequest* r) {
  NodeArrayState& as = state_of(r->array);
  const NodeId home = as.meta->home_of_chunk(r->chunk);
  stats_.lock_acquires++;
  if (home == self_) {
    if (locks_.acquire(r->array, r->index,
                       LockWaiter{self_, r->lock_write != 0, 0, r, r->trace_id})) {
      r->done.signal();
    } else {
      stats_.lock_waits++;
    }
    return;  // queued waiters are signalled on release
  }
  const uint32_t txn = next_txn_++;
  pending_locks_[txn] = r;
  send_msg(home, MsgType::kLockAcq, r->array, r->chunk, kNoOp, r->index, 0,
           r->lock_write, txn, r->trace_id);
}

void Engine::local_lock_release(LocalRequest* r) {
  NodeArrayState& as = state_of(r->array);
  const NodeId home = as.meta->home_of_chunk(r->chunk);
  if (home == self_) {
    std::deque<LockWaiter> grants;
    locks_.release(r->array, r->index, self_, grants);
    deliver_lock_grants(r->array, r->index, grants);
  } else {
    send_msg(home, MsgType::kLockRel, r->array, r->chunk, kNoOp, r->index, 0, 0, 0,
             r->trace_id);
  }
  r->done.signal();
}

void Engine::rpc_lock(const net::RpcMessage& m) {
  switch (m.hdr.type) {
    case MsgType::kLockAcq: {
      const bool write = m.hdr.aux != 0;
      if (locks_.acquire(m.hdr.array_id, m.hdr.addr,
                         LockWaiter{m.hdr.src_node, write, m.hdr.txn_id, nullptr,
                                    m.hdr.trace})) {
        send_msg(m.hdr.src_node, MsgType::kLockGrant, m.hdr.array_id, m.hdr.chunk, kNoOp,
                 m.hdr.addr, 0, 0, m.hdr.txn_id, m.hdr.trace);
      } else {
        stats_.lock_waits++;
      }
      return;
    }
    case MsgType::kLockRel: {
      std::deque<LockWaiter> grants;
      locks_.release(m.hdr.array_id, m.hdr.addr, m.hdr.src_node, grants);
      deliver_lock_grants(m.hdr.array_id, m.hdr.addr, grants);
      return;
    }
    case MsgType::kLockGrant: {
      auto it = pending_locks_.find(m.hdr.txn_id);
      DARRAY_ASSERT_MSG(it != pending_locks_.end(), "grant for unknown lock txn");
      it->second->done.signal();
      pending_locks_.erase(it);
      return;
    }
    default:
      DARRAY_UNREACHABLE("not a lock message");
  }
}

void Engine::deliver_lock_grants(ArrayId array, uint64_t index,
                                 std::deque<LockWaiter>& grants) {
  NodeArrayState& as = state_of(array);
  const ChunkId c = as.meta->chunk_of(index);
  for (const LockWaiter& w : grants) {
    if (w.local) {
      w.local->done.signal();
    } else {
      send_msg(w.node, MsgType::kLockGrant, array, c, kNoOp, index, 0, 0, w.txn_id,
               w.trace);
    }
  }
}

// ---------------------------------------------------------------------------
// Cache eviction (§4.2, Fig. 7)
// ---------------------------------------------------------------------------

size_t Engine::reclaim() {
  // At least one line: tiny regions floor the watermark to zero, which would
  // make reclamation a no-op and wedge allocation retries forever.
  const size_t target = std::max<size_t>(1, region_->high_watermark_count());
  const size_t cap = region_->capacity();
  size_t freed = 0;
  size_t scanned = 0;
  while (region_->free_count() < target && scanned < cap) {
    CacheLine& line = region_->slot(region_->scan_ptr);
    region_->scan_ptr = (region_->scan_ptr + 1) % cap;
    scanned++;
    if (!line.used) continue;
    if (try_evict(line)) freed++;
  }
  return freed;
}

bool Engine::try_evict(CacheLine& line) {
  NodeArrayState& as = state_of(line.array);
  const ChunkId c = line.chunk;
  ChunkCtl& ctl = as.ctl[c];
  Dentry& d = as.dentries[c];

  const DentryState s = d.state.load(std::memory_order_acquire);
  if (s != DentryState::kRead && s != DentryState::kWrite && s != DentryState::kOperated)
    return false;  // intermediate state: skip (paper §4.2)
  if (!d.drained()) return false;  // someone is accessing (or pinned): skip

  // Fig. 5 steps, but non-blocking: re-check the refcount after raising the
  // delay flag and bail out rather than wait.
  d.delay.store(true, std::memory_order_release);
  if (!d.drained()) {
    d.finish_drain();
    return false;
  }
  d.state.store(DentryState::kInvalid, std::memory_order_release);
  d.data.store(nullptr, std::memory_order_release);

  switch (s) {
    case DentryState::kRead:
      // Silent drop; the home's sharer list goes stale, which a later
      // Invalidate tolerates.
      stats_.evict_clean++;
      d.finish_drain();
      region_->free(ctl.line);
      ctl.line = nullptr;
      return true;
    case DentryState::kWrite: {
      stats_.evict_writeback++;
      d.finish_drain();
      const NodeId home = as.meta->home_of_chunk(c);
      net::TxRequest t;
      t.dst = static_cast<uint16_t>(home);
      t.hdr.type = MsgType::kWriteback;
      t.hdr.array_id = as.meta->id;
      t.hdr.chunk = c;
      t.data_src = ctl.line->data;
      t.data_len = as.meta->elems_in_chunk(c) * as.meta->elem_size;
      t.data_lkey = region_->data_lkey();
      t.data_remote_addr = as.meta->home_chunk_addr(c);
      t.data_rkey = as.meta->subarrays[home].rkey;
      ctl.line->tx_posted.store(0, std::memory_order_release);
      t.posted_flag = &ctl.line->tx_posted;
      region_->free_when_posted(ctl.line);
      ctl.line = nullptr;
      node_->comm().post(std::move(t));
      return true;
    }
    case DentryState::kOperated: {
      stats_.evict_opflush++;
      const uint16_t op_id = d.op_id.load(std::memory_order_acquire);
      d.combine.store(nullptr, std::memory_order_release);
      d.combine_bitmap.store(nullptr, std::memory_order_release);
      d.op_id.store(kNoOp, std::memory_order_release);
      d.finish_drain();
      send_combine_flush(as, c, ctl, op_id);
      region_->free(ctl.line);
      ctl.line = nullptr;
      return true;
    }
    default:
      DARRAY_UNREACHABLE("filtered above");
  }
}

// ---------------------------------------------------------------------------
// Drains & messaging
// ---------------------------------------------------------------------------

void Engine::start_drain(Dentry& d, DentryState target, std::function<void()> then) {
  d.begin_drain(target);
  if (d.drained()) {
    d.finish_drain();
    then();
    return;
  }
  drains_.push_back({&d, std::move(then)});
}

void Engine::send_msg(NodeId dst, MsgType type, ArrayId array, ChunkId chunk, uint16_t op,
                      uint64_t addr, uint32_t rkey, uint32_t aux, uint32_t txn,
                      uint64_t trace, net::PayloadBuf payload) {
  DARRAY_ASSERT_MSG(dst != self_, "self messages must be handled locally");
  net::TxRequest t;
  t.dst = static_cast<uint16_t>(dst);
  t.hdr.type = type;
  t.hdr.array_id = array;
  t.hdr.op_id = op;
  t.hdr.chunk = chunk;
  t.hdr.addr = addr;
  t.hdr.rkey = rkey;
  t.hdr.aux = aux;
  t.hdr.txn_id = txn;
  t.hdr.trace = trace;
  t.payload = std::move(payload);
  node_->comm().post(std::move(t));
}

void Engine::send_chunk_data(NodeArrayState& as, ChunkId c, NodeId dst, MsgType type,
                             uint64_t raddr, uint32_t rkey, uint64_t trace) {
  net::TxRequest t;
  t.dst = static_cast<uint16_t>(dst);
  t.hdr.type = type;
  t.hdr.array_id = as.meta->id;
  t.hdr.chunk = c;
  t.hdr.trace = trace;
  t.data_src = as.chunk_data(c);
  t.data_len = as.meta->elems_in_chunk(c) * as.meta->elem_size;
  t.data_lkey = as.subarray_mr.lkey;
  t.data_remote_addr = raddr;
  t.data_rkey = rkey;
  node_->comm().post(std::move(t));
}

}  // namespace darray::rt
