// Cluster-wide operator registry (§4.3): applications register associative +
// commutative operators once and refer to them by id in apply() calls and in
// the Operated coherence state.
#pragma once

#include <deque>
#include <mutex>

#include "common/assert.hpp"
#include "common/spinlock.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

class OpRegistry {
 public:
  uint16_t register_op(OpDesc desc) {
    std::scoped_lock lk(mu_);
    DARRAY_ASSERT_MSG(ops_.size() < kNoOp, "operator id space exhausted");
    ops_.push_back(std::move(desc));
    return static_cast<uint16_t>(ops_.size() - 1);
  }

  // Stable reference: the deque never relocates existing elements.
  const OpDesc& get(uint16_t id) const {
    DARRAY_ASSERT_MSG(id < ops_.size(), "unregistered operator id");
    return ops_[id];
  }

  size_t size() const { return ops_.size(); }

 private:
  mutable SpinLock mu_;
  std::deque<OpDesc> ops_;
};

}  // namespace darray::rt
