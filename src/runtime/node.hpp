// A simulated cluster node: its RNIC device, communication layer, runtime
// threads, and per-array state.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/spinlock.hpp"
#include "net/comm_layer.hpp"
#include "runtime/array_state.hpp"
#include "runtime/reduce_board.hpp"
#include "runtime/runtime_thread.hpp"
#include "runtime/stats.hpp"

namespace darray::rt {

class Cluster;

inline constexpr size_t kMaxArrays = 256;

class NodeRuntime {
 public:
  NodeRuntime(Cluster* cluster, NodeId id, rdma::Device* device, const ClusterConfig& cfg);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  NodeId id() const { return id_; }
  Cluster& cluster() { return *cluster_; }
  net::CommLayer& comm() { return *comm_; }
  rdma::Device* device() { return device_; }

  uint32_t num_runtime_threads() const { return static_cast<uint32_t>(rts_.size()); }
  RuntimeThread& rt(uint32_t i) { return *rts_[i]; }
  RuntimeThread& rt_for_chunk(ChunkId c) { return *rts_[c % rts_.size()]; }

  // Route an application slow-path request to the owning runtime thread.
  void submit_local(LocalRequest* r) { rt_for_chunk(r->chunk).submit_local(r); }

  // Reduction-tree mailbox (src/compute collectives): runtime threads deposit
  // inbound kReducePart messages, the node's collective caller awaits them.
  ReduceBoard& reduce_board() { return reduce_board_; }

  // Client-serving plane (src/serve): the front door installs a sink for
  // kClientReq/kClientResp deliveries, keeping the runtime → serve dependency
  // inverted. The sink runs on runtime threads under a per-node lock (so an
  // uninstall can never race a delivery) and must route without blocking —
  // admission/shed decisions only, never KVS execution. With no sink
  // installed the message is dropped and counted: sessions only exist while
  // a front door is attached.
  using ClientMsgFn = std::function<void(net::RpcMessage&&)>;
  void set_client_msg_handler(ClientMsgFn fn);
  void deliver_client_msg(net::RpcMessage&& m);
  uint64_t client_msgs_dropped() const {
    return client_msgs_dropped_.load(std::memory_order_relaxed);
  }

  void start();
  void stop();

  NodeArrayState* array_state(ArrayId id) {
    return arrays_[id].load(std::memory_order_acquire);
  }
  void install_array(ArrayId id, std::unique_ptr<NodeArrayState> st);

  // Aggregate counters across this node's runtime threads.
  RuntimeStats runtime_stats() const {
    RuntimeStats s;
    for (const auto& rt : rts_) s += rt->stats();
    return s;
  }

  obs::DutyStats runtime_duty() const {
    obs::DutyStats s;
    for (const auto& rt : rts_) s += rt->duty().sample();
    return s;
  }

  CacheRegionStats cache_stats() const {
    CacheRegionStats s;
    for (const auto& rt : rts_) s += rt->region().stats();
    return s;
  }

 private:
  Cluster* cluster_;
  const NodeId id_;
  rdma::Device* device_;
  std::unique_ptr<net::CommLayer> comm_;
  std::vector<std::unique_ptr<RuntimeThread>> rts_;
  std::array<std::atomic<NodeArrayState*>, kMaxArrays> arrays_{};
  std::vector<std::unique_ptr<NodeArrayState>> array_storage_;
  ReduceBoard reduce_board_;
  mutable SpinLock client_mu_;  // guards client_fn_ against uninstall races
  ClientMsgFn client_fn_;
  std::atomic<uint64_t> client_msgs_dropped_{0};
  bool started_ = false;
};

}  // namespace darray::rt
