// Per-node mailbox for reduction-tree partials (src/compute collectives).
//
// A collective's partial results travel as kReducePart protocol messages; the
// Rx thread routes each to a runtime thread by hdr.chunk (the collective
// sequence number), which deposits it here. Application threads block in
// await() until the matching part lands. One board per node: runtime threads
// are producers, the node's collective caller is the consumer, and the
// (seq, src, frag) key makes every deposit unambiguous — a node receives at
// most one message per sender per fragment per collective (up-contributions
// come from children, the broadcast comes from the parent, and the child and
// parent sets of a binomial tree are disjoint).
//
// Sequence numbers come from next_seq(): collectives are SPMD (every node
// calls them in the same order), so the per-node counters agree without any
// cross-node coordination. A plain mutex + condvar is deliberate — reduction
// traffic is a handful of small messages per collective, nowhere near a rate
// where the runtime threads' brief producer-side critical section matters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/assert.hpp"
#include "net/payload_buf.hpp"

namespace darray::rt {

class ReduceBoard {
 public:
  struct Part {
    uint64_t bits = 0;        // hdr.addr: scalar partial (raw element bits)
    uint32_t frags = 1;       // hdr.aux: fragment count of this transfer
    net::PayloadBuf payload;  // deterministic mode: per-chunk partial entries
  };

  // Next collective sequence number for this node (see SPMD note above).
  uint32_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  static uint64_t key(uint32_t seq, uint32_t src, uint32_t frag = 0) {
    DARRAY_ASSERT(src < 256 && frag < (1u << 24));
    return (uint64_t{seq} << 32) | (uint64_t{frag} << 8) | src;
  }

  // Producer side (runtime threads): deposit one part and wake waiters.
  void deliver(uint64_t k, Part part) {
    {
      std::lock_guard lk(mu_);
      const bool inserted = parts_.emplace(k, std::move(part)).second;
      DARRAY_ASSERT_MSG(inserted, "duplicate reduce part for the same key");
    }
    cv_.notify_all();
  }

  // Consumer side (the node's collective caller): block until the part keyed
  // by `k` arrives, then take ownership of it.
  Part await(uint64_t k) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return parts_.contains(k); });
    auto it = parts_.find(k);
    Part p = std::move(it->second);
    parts_.erase(it);
    return p;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Part> parts_;
  std::atomic<uint32_t> seq_{0};
};

}  // namespace darray::rt
