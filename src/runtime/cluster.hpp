// The simulated cluster: fabric, nodes, the operator registry, and collective
// array creation. One Cluster per process stands in for the paper's testbed;
// "nodes" are thread bundles joined by the simulated RDMA fabric.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "common/config.hpp"
#include "common/spinlock.hpp"
#include "net/comm_layer.hpp"
#include "obs/inflight.hpp"
#include "obs/stats_registry.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/timeseries.hpp"
#include "rdma/fabric.hpp"
#include "runtime/array_meta.hpp"
#include "runtime/node.hpp"
#include "runtime/op_registry.hpp"

namespace darray::rt {

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return cfg_; }
  rdma::Fabric& fabric() { return fabric_; }
  uint32_t num_nodes() const { return cfg_.num_nodes; }
  NodeRuntime& node(NodeId i) { return *nodes_[i]; }

  // §4.3: register an associative + commutative operator; the returned id is
  // valid cluster-wide.
  uint16_t register_op(OpDesc desc) { return ops_.register_op(std::move(desc)); }
  const OpDesc& op(uint16_t id) const { return ops_.get(id); }

  // Collective array creation (paper Fig. 3 constructor). `partition` is the
  // optional partition_offset argument: element start offset per node,
  // chunk-aligned; empty means an even chunk-granular split.
  const ArrayMeta* create_array(uint64_t n_elems, uint32_t elem_size,
                                std::span<const uint64_t> partition = {});

  // Cluster-wide runtime-layer counters (approximate while traffic is live).
  RuntimeStats runtime_stats() const {
    RuntimeStats s;
    for (const auto& n : nodes_) s += n->runtime_stats();
    return s;
  }

  // Present iff cfg.fault_plan named an enabled plan at construction.
  chaos::FaultInjector* fault_injector() { return injector_.get(); }

  // Unified observability: every layer's counters under dotted names
  // (fabric.*, runtime.*, coherence.*, duty.*, cache.*, hist.*, pool.*,
  // chaos.*, comm.*, trace.*). snapshot() is safe while traffic is live;
  // values are then approximate per-counter.
  obs::StatsSnapshot stats() const { return stats_registry_.snapshot(); }
  // Extend with harness-specific sources (add_source) before reporting.
  obs::StatsRegistry& stats_registry() { return stats_registry_; }
  // Named-baseline deltas (satellite of the obs v2 PR): mark, run a phase,
  // then read only what that phase added.
  void mark_stats_baseline(const std::string& tag) { stats_registry_.mark_baseline(tag); }
  obs::StatsSnapshot stats_delta_since(const std::string& tag) const {
    return stats_registry_.delta_since(tag);
  }

  // --- live telemetry (cfg.telemetry_enabled) --------------------------------
  // The sampler's per-metric rings: counters as per-interval deltas,
  // percentile entries as point series. Null when telemetry is off.
  const obs::TimeSeriesStore* timeseries() const { return timeseries_.get(); }
  // The embedded /metrics listener. Null unless cfg.telemetry_serve and the
  // socket actually bound (a taken port logs an error instead of aborting).
  obs::TelemetryServer* telemetry_server() { return telemetry_server_.get(); }
  // Actual bound port (resolves cfg.telemetry_port == 0), or 0 if not serving.
  uint16_t telemetry_port() const {
    return telemetry_server_ ? telemetry_server_->port() : 0;
  }

  // --- slow-op watchdog (cfg.watchdog_enabled) -------------------------------
  // One in-flight API op exceeding cfg.watchdog_deadline_ns is reported
  // exactly once: by default its full cross-node correlated trace chain is
  // dumped to stderr as one structured JSON line; a handler installed here
  // replaces the dump. The handler runs on the watchdog thread and must not
  // block on the data path.
  struct WatchdogReport {
    uint64_t corr = 0;
    uint64_t start_ns = 0;
    uint64_t age_ns = 0;
    uint64_t index = 0;
    obs::OpKind kind = obs::OpKind::kGet;
    uint16_t node = 0;
  };
  using WatchdogFn = std::function<void(const WatchdogReport&)>;
  void set_watchdog_handler(WatchdogFn fn) {
    std::lock_guard lk(watchdog_mu_);
    watchdog_fn_ = std::move(fn);
  }
  uint64_t watchdog_reports() const {
    return watchdog_reports_.load(std::memory_order_relaxed);
  }

  // Unrecoverable comm failures (retry/deadline budget exhausted) land here,
  // on the failing node's Tx thread. Default: log + abort (fail-stop) — the
  // coherence protocol cannot survive a dropped message. Override before
  // traffic for tests/harnesses that expect losses. The handler must not
  // block.
  using CommErrorFn = std::function<void(uint32_t node, const net::CommError&)>;
  void set_comm_error_handler(CommErrorFn fn) { comm_error_fn_ = std::move(fn); }
  void handle_comm_error(uint32_t node, const net::CommError& err);
  uint64_t comm_error_count() const {
    return comm_errors_.load(std::memory_order_relaxed);
  }

 private:
  void register_default_stats_sources();
  void watchdog_main();
  void sampler_main();
  void dump_slow_op(const WatchdogReport& r);

  ClusterConfig cfg_;
  rdma::Fabric fabric_;
  obs::StatsRegistry stats_registry_;
  std::unique_ptr<chaos::FaultInjector> injector_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  OpRegistry ops_;
  SpinLock create_mu_;
  std::vector<std::unique_ptr<ArrayMeta>> metas_;
  CommErrorFn comm_error_fn_;
  std::atomic<uint64_t> comm_errors_{0};

  mutable SpinLock watchdog_mu_;   // guards watchdog_fn_
  WatchdogFn watchdog_fn_;
  std::atomic<uint64_t> watchdog_reports_{0};
  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_thread_;

  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  std::unique_ptr<obs::TelemetryServer> telemetry_server_;
  std::atomic<bool> sampler_stop_{false};
  std::atomic<uint64_t> last_sample_ns_{0};  // /healthz sampler-lag probe
  std::thread sampler_thread_;

  // True when this cluster armed the continuous profiler (profiler_enabled)
  // and must disarm it before joining its threads.
  bool profiler_owned_ = false;
};

}  // namespace darray::rt
