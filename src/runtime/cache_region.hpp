// Per-runtime-thread cache region (paper Fig. 7): a fixed pool of cachelines
// with a private scanning pointer, so eviction never contends with other
// runtime threads and never touches the application fast path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "rdma/device.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

struct CacheLine {
  std::byte* data = nullptr;                    // chunk data (registered MR)
  std::byte* combine_slots = nullptr;           // chunk_elems u64 slots
  std::atomic<uint64_t>* bitmap = nullptr;      // touched-element bitmap
  ArrayId array = 0;
  ChunkId chunk = 0;
  bool used = false;
  // 0 while an eviction's one-sided WRITE is still queued toward the Tx
  // thread; the slot may not be recycled until the Tx thread sets it to 1.
  std::atomic<uint32_t> tx_posted{1};
};

// Obs counters for one region, sampled from any thread (the region's vectors
// stay owner-private; only these relaxed atomics cross threads).
struct CacheRegionStats {
  uint64_t allocs = 0;
  uint64_t alloc_failures = 0;       // allocate() returned nullptr
  uint64_t releases = 0;             // immediate free()
  uint64_t deferred_releases = 0;    // free_when_posted()

  CacheRegionStats& operator+=(const CacheRegionStats& o) {
    allocs += o.allocs;
    alloc_failures += o.alloc_failures;
    releases += o.releases;
    deferred_releases += o.deferred_releases;
    return *this;
  }
};

class CacheRegion {
 public:
  CacheRegion(rdma::Device* device, const ClusterConfig& cfg);

  CacheRegion(const CacheRegion&) = delete;
  CacheRegion& operator=(const CacheRegion&) = delete;

  // nullptr when no slot is free — the engine must reclaim first.
  CacheLine* allocate(ArrayId array, ChunkId chunk);

  void free(CacheLine* line);

  // Release once the line's pending data WRITE has been posted (tx_posted).
  void free_when_posted(CacheLine* line);

  // Retire pending releases whose WRITE has been posted. Returns true if any
  // slot was freed.
  bool tick_pending_releases();

  size_t capacity() const { return lines_.size(); }
  size_t free_count() const { return free_.size() + pending_release_.size(); }

  bool below_low_watermark() const {
    return free_count() < static_cast<size_t>(low_wm_ * static_cast<double>(capacity()));
  }
  size_t high_watermark_count() const {
    return static_cast<size_t>(high_wm_ * static_cast<double>(capacity()));
  }

  // Eviction scan support (engine drives the policy).
  CacheLine& slot(size_t i) { return *lines_[i]; }
  size_t scan_ptr = 0;

  uint32_t data_rkey() const { return mr_.rkey; }
  uint32_t data_lkey() const { return mr_.lkey; }

  CacheRegionStats stats() const {
    CacheRegionStats s;
    s.allocs = allocs_.load(std::memory_order_relaxed);
    s.alloc_failures = alloc_failures_.load(std::memory_order_relaxed);
    s.releases = releases_.load(std::memory_order_relaxed);
    s.deferred_releases = deferred_releases_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Single-writer (the owning runtime thread); relaxed so cross-thread stats
  // sampling never touches the owner-private vectors.
  void bump(std::atomic<uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> alloc_failures_{0};
  std::atomic<uint64_t> releases_{0};
  std::atomic<uint64_t> deferred_releases_{0};

  const double low_wm_;
  const double high_wm_;
  std::unique_ptr<std::byte[]> arena_;
  std::unique_ptr<std::atomic<uint64_t>[]> bitmap_arena_;
  rdma::MemoryRegion mr_;
  std::vector<std::unique_ptr<CacheLine>> lines_;
  std::vector<CacheLine*> free_;
  std::vector<CacheLine*> pending_release_;
};

}  // namespace darray::rt
