#include "runtime/cache_region.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace darray::rt {

namespace {
// One slot holds chunk data (elements capped at 8 bytes) plus combine slots.
size_t slot_bytes(const ClusterConfig& cfg) { return size_t{cfg.chunk_elems} * 8 * 2; }
size_t bitmap_words(const ClusterConfig& cfg) { return (cfg.chunk_elems + 63) / 64; }
}  // namespace

CacheRegion::CacheRegion(rdma::Device* device, const ClusterConfig& cfg)
    : low_wm_(cfg.low_watermark), high_wm_(cfg.high_watermark) {
  const size_t n = cfg.cachelines_per_region;
  const size_t sbytes = slot_bytes(cfg);
  const size_t words = bitmap_words(cfg);
  arena_ = std::make_unique<std::byte[]>(n * sbytes);
  bitmap_arena_ = std::make_unique<std::atomic<uint64_t>[]>(n * words);
  mr_ = device->reg_mr(arena_.get(), n * sbytes);

  lines_.reserve(n);
  free_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto line = std::make_unique<CacheLine>();
    line->data = arena_.get() + i * sbytes;
    line->combine_slots = line->data + size_t{cfg.chunk_elems} * 8;
    line->bitmap = bitmap_arena_.get() + i * words;
    lines_.push_back(std::move(line));
    free_.push_back(lines_.back().get());
  }
}

CacheLine* CacheRegion::allocate(ArrayId array, ChunkId chunk) {
  if ((free_.empty() && !tick_pending_releases()) || free_.empty()) {
    bump(alloc_failures_);
    return nullptr;
  }
  CacheLine* line = free_.back();
  free_.pop_back();
  line->array = array;
  line->chunk = chunk;
  line->used = true;
  bump(allocs_);
  return line;
}

void CacheRegion::free(CacheLine* line) {
  DARRAY_ASSERT(line->used);
  DARRAY_ASSERT(line->tx_posted.load(std::memory_order_acquire) == 1);
  line->used = false;
  free_.push_back(line);
  bump(releases_);
}

void CacheRegion::free_when_posted(CacheLine* line) {
  DARRAY_ASSERT(line->used);
  line->used = false;
  pending_release_.push_back(line);
  bump(deferred_releases_);
}

bool CacheRegion::tick_pending_releases() {
  bool progressed = false;
  auto posted = [](CacheLine* l) {
    return l->tx_posted.load(std::memory_order_acquire) == 1;
  };
  for (CacheLine*& l : pending_release_) {
    if (posted(l)) {
      free_.push_back(l);
      l = nullptr;
      progressed = true;
    }
  }
  if (progressed)
    std::erase(pending_release_, nullptr);
  return progressed;
}

}  // namespace darray::rt
