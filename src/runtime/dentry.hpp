// Directory entry: the per-chunk, per-node state that the lock-free data
// access path (paper Fig. 4) and the runtime management path (Fig. 5/6) meet
// on. Application threads touch only the atomics; all state transitions are
// made by the single runtime thread that owns the chunk.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/mpsc_queue.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

struct alignas(64) Dentry {
  std::atomic<DentryState> state{DentryState::kInvalid};
  std::atomic<bool> delay{false};   // Fig. 5 ①/④: holds off incoming accesses
  std::atomic<uint32_t> refcnt{0};
  std::atomic<uint16_t> op_id{kNoOp};          // valid while state==kOperated
  std::atomic<std::byte*> data{nullptr};       // subarray chunk or cacheline
  std::atomic<std::byte*> combine{nullptr};    // remote Operated participants
  std::atomic<std::atomic<uint64_t>*> combine_bitmap{nullptr};
  bool is_home = false;             // immutable after array creation
  Doorbell* owner_bell = nullptr;   // rings the owning runtime thread

  // Per-target-state transition tallies (obs): written only by the owning
  // runtime thread (store of load+1, not an RMW — single-writer), read by the
  // stats plane from any thread. The initial home-side state set at array
  // creation is not a transition and is not counted.
  std::atomic<uint32_t> transitions[kNumDentryStates] = {};

  // --- application-thread side (Fig. 4) -------------------------------------

  // Fig. 4 lines 6-8: wait out the delay flag, then take a reference. The
  // caller must re-check `state` afterwards (time-of-check/time-of-use is
  // bridged by the reference).
  void acquire_ref() {
    for (;;) {
      if (delay.load(std::memory_order_acquire)) {
        spin_wait_until(delay, [](bool v) { return !v; });
      }
      refcnt.fetch_add(1, std::memory_order_acq_rel);
      // The runtime may have raised delay between our check and the
      // increment; back out so it is never forced to wait on late arrivals.
      if (!delay.load(std::memory_order_acquire)) return;
      release_ref();
    }
  }

  // Fig. 4 line 14. Wakes the runtime thread iff it is draining this chunk.
  void release_ref() {
    if (refcnt.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        delay.load(std::memory_order_relaxed)) {
      refcnt.notify_all();
      if (owner_bell) owner_bell->ring();
    }
  }

  // --- runtime-thread side (Fig. 5/6) ----------------------------------------

  // Fig. 5 ①+②: block new accessors and install the target state. The caller
  // completes the drain once refcnt reaches zero (asynchronously — see
  // Engine::start_drain) and then calls finish_drain().
  void begin_drain(DentryState target) {
    delay.store(true, std::memory_order_release);
    state.store(target, std::memory_order_release);
    count_transition(target);
  }

  bool drained() const { return refcnt.load(std::memory_order_acquire) == 0; }

  // Fig. 5 ④.
  void finish_drain() {
    delay.store(false, std::memory_order_release);
    delay.notify_all();
  }

  // Fig. 6: permission promotion needs no synchronisation with user threads.
  void promote(DentryState target) {
    state.store(target, std::memory_order_release);
    count_transition(target);
  }

  void count_transition(DentryState target) {
    std::atomic<uint32_t>& c = transitions[static_cast<size_t>(target)];
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  uint32_t transition_count(DentryState target) const {
    return transitions[static_cast<size_t>(target)].load(std::memory_order_relaxed);
  }
};

}  // namespace darray::rt
