#include "runtime/node.hpp"

#include "common/assert.hpp"
#include "runtime/cluster.hpp"

namespace darray::rt {

NodeRuntime::NodeRuntime(Cluster* cluster, NodeId id, rdma::Device* device,
                         const ClusterConfig& cfg)
    : cluster_(cluster), id_(id), device_(device) {
  comm_ = std::make_unique<net::CommLayer>(
      id, cfg.num_nodes, cfg, device,
      [this](net::RpcMessage&& m) { rt_for_chunk(m.hdr.chunk).submit_rpc(std::move(m)); });
  comm_->set_error_handler(
      [this](const net::CommError& err) { cluster_->handle_comm_error(id_, err); });
  for (uint32_t i = 0; i < cfg.runtime_threads_per_node; ++i)
    rts_.push_back(std::make_unique<RuntimeThread>(this, id, i, cfg, device));
}

NodeRuntime::~NodeRuntime() { stop(); }

void NodeRuntime::start() {
  DARRAY_ASSERT(!started_);
  started_ = true;
  comm_->start();
  for (auto& rt : rts_) rt->start();
}

void NodeRuntime::stop() {
  if (!started_) return;
  for (auto& rt : rts_) rt->stop();
  comm_->stop();
  started_ = false;
}

void NodeRuntime::set_client_msg_handler(ClientMsgFn fn) {
  std::lock_guard lk(client_mu_);
  client_fn_ = std::move(fn);
}

void NodeRuntime::deliver_client_msg(net::RpcMessage&& m) {
  // Delivery holds the same lock as install/uninstall: once
  // set_client_msg_handler(nullptr) returns, no runtime thread is inside the
  // old sink. The critical section is one routing decision — a queue push or
  // a shed reply — so contention between runtime threads stays negligible.
  std::lock_guard lk(client_mu_);
  if (!client_fn_) {
    client_msgs_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  client_fn_(std::move(m));
}

void NodeRuntime::install_array(ArrayId id, std::unique_ptr<NodeArrayState> st) {
  DARRAY_ASSERT(id < kMaxArrays);
  DARRAY_ASSERT(arrays_[id].load(std::memory_order_relaxed) == nullptr);
  arrays_[id].store(st.get(), std::memory_order_release);
  array_storage_.push_back(std::move(st));
}

}  // namespace darray::rt
