#include "runtime/cluster.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "chaos/fault_plan.hpp"
#include "common/assert.hpp"
#include "common/logging.hpp"
#include "net/payload_buf.hpp"
#include "obs/compute_stats.hpp"
#include "obs/journey.hpp"
#include "obs/profiler.hpp"
#include "obs/thread_registry.hpp"
#include "obs/trace.hpp"

namespace darray::rt {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg), fabric_(rdma::FabricConfig{cfg.fabric_latency_ns, cfg.fabric_ns_per_byte}) {
  if (const std::string err = cfg_.validate(); !err.empty()) {
    DLOG_ERROR("invalid ClusterConfig: %s", err.c_str());
    std::abort();
  }
  // Observability: size the trace rings and flip the runtime gate before any
  // node thread spins up, so the first traced op lands in a ring of the
  // configured size. With DARRAY_TRACING=0 both calls are no-ops.
  if (cfg_.trace_ring_events != 0)
    obs::set_trace_ring_capacity(cfg_.trace_ring_events);
  if (cfg_.tracing_enabled) obs::set_tracing(true);
  // Fault injection: attach before any device/QP exists so every WR ever
  // posted consults the injector. A null or all-zero plan costs nothing.
  if (cfg_.fault_plan != nullptr && cfg_.fault_plan->enabled()) {
    injector_ = std::make_unique<chaos::FaultInjector>(*cfg_.fault_plan);
    fabric_.set_fault_injector(injector_.get());
  }
  register_default_stats_sources();
  nodes_.reserve(cfg_.num_nodes);
  for (NodeId i = 0; i < cfg_.num_nodes; ++i) {
    rdma::Device* dev = fabric_.create_device(i);
    nodes_.push_back(std::make_unique<NodeRuntime>(this, i, dev, cfg_));
  }
  // Full-mesh RC connections, one QP pair per ordered node pair (Tx/Rx thread
  // design: QP count independent of application thread count — §4.5).
  for (NodeId a = 0; a < cfg_.num_nodes; ++a) {
    for (NodeId b = a + 1; b < cfg_.num_nodes; ++b) {
      net::CommLayer& ca = nodes_[a]->comm();
      net::CommLayer& cb = nodes_[b]->comm();
      auto [qa, qb] = fabric_.connect(nodes_[a]->device(), ca.send_cq(), ca.recv_cq(),
                                      nodes_[b]->device(), cb.send_cq(), cb.recv_cq());
      ca.set_qp(b, qa);
      cb.set_qp(a, qb);
    }
  }
  for (auto& n : nodes_) n->start();
  // The watchdog only reads the leaked obs registries, so it can outlive any
  // individual node thread; it starts last and stops first regardless.
  if (cfg_.watchdog_enabled)
    watchdog_thread_ = std::thread([this] { watchdog_main(); });
  // Live telemetry: the sampler snapshots the registry (which walks nodes_),
  // so it starts after the nodes and stops before them; the HTTP listener
  // snapshots too, so it brackets the sampler the same way.
  if (cfg_.telemetry_enabled) {
    timeseries_ = std::make_unique<obs::TimeSeriesStore>(cfg_.telemetry_ring_samples);
    if (cfg_.telemetry_serve) {
      obs::TelemetryServer::Options o;
      o.port = cfg_.telemetry_port;
      o.snapshot = [this] { return stats(); };
      o.store = timeseries_.get();
      const uint64_t start_ns = now_ns();
      o.healthz = [this, start_ns] {
        const uint64_t now = now_ns();
        const uint64_t last = last_sample_ns_.load(std::memory_order_relaxed);
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "{\"status\": \"ok\", \"nodes\": %u, \"uptime_ns\": %llu, "
                      "\"sampler_samples\": %llu, \"sampler_lag_ns\": %llu}\n",
                      cfg_.num_nodes, static_cast<unsigned long long>(now - start_ns),
                      static_cast<unsigned long long>(timeseries_->samples()),
                      static_cast<unsigned long long>(last ? now - last : 0));
        return std::string(buf);
      };
      auto server = std::make_unique<obs::TelemetryServer>(std::move(o));
      // A taken port is an operator inconvenience, not a correctness problem:
      // keep running without the listener rather than failing the cluster.
      if (server->start()) telemetry_server_ = std::move(server);
    }
    // The meta source captures raw pointers rather than reading the
    // unique_ptrs: the sampler and serve threads snapshot concurrently with
    // this constructor, and the owning pointers are not theirs to inspect.
    obs::TimeSeriesStore* ts = timeseries_.get();
    obs::TelemetryServer* srv = telemetry_server_.get();
    stats_registry_.add_source([ts, srv](obs::StatsSnapshot& s) {
      s.add("telemetry.samples", ts->samples());
      if (srv != nullptr) s.add("telemetry.requests", srv->requests());
    });
    sampler_thread_ = std::thread([this] { sampler_main(); });
  }
  // Continuous profiling: armed last, once every long-lived thread above has
  // registered (threads registering later still get rings on the fly). The
  // destructor disarms it before joining anything — the wall-mode ticker
  // signals registered threads and must never outlive them.
  if (cfg_.profiler_enabled) {
    obs::ProfilerOptions po;
    po.mode = obs::ProfileMode::kCpu;
    po.hz = cfg_.profiler_hz;
    po.max_frames = cfg_.profiler_max_frames;
    po.ring_samples = cfg_.profiler_ring_samples;
    if (!obs::profiler_start(po))
      DLOG_ERROR("profiler_enabled but profiler_start failed (session busy?)");
    else
      profiler_owned_ = true;
  }
}

Cluster::~Cluster() {
  // Disarm the sampling profiler before joining any thread it may signal.
  if (profiler_owned_) obs::profiler_stop();
  // Stop (join) the serving thread before touching the unique_ptr: both the
  // sampler and the serve thread read telemetry_server_ through the meta
  // stats source, so the pointer itself must stay unmodified until both are
  // joined.
  if (telemetry_server_) telemetry_server_->stop();
  if (sampler_thread_.joinable()) {
    sampler_stop_.store(true, std::memory_order_release);
    sampler_thread_.join();
  }
  telemetry_server_.reset();
  if (watchdog_thread_.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog_thread_.join();
  }
  for (auto& n : nodes_) n->stop();
}

void Cluster::sampler_main() {
  obs::register_current_thread("sampler");
  uint64_t next_sample = now_ns();  // first point immediately: t=0 baseline
  while (!sampler_stop_.load(std::memory_order_acquire)) {
    const uint64_t now = now_ns();
    if (now < next_sample) {
      // Short sleep slices so ~Cluster joins promptly at long sample periods.
      const uint64_t left = next_sample - now;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(left < 10'000'000 ? left : 10'000'000));
      continue;
    }
    next_sample = now + cfg_.telemetry_sample_ns;
    timeseries_->record(now, stats_registry_.snapshot());
    last_sample_ns_.store(now, std::memory_order_relaxed);
  }
}

void Cluster::watchdog_main() {
  obs::register_current_thread("watchdog");
  uint64_t next_scan = now_ns() + cfg_.watchdog_poll_ns;
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    // Sleep in short slices so stop() joins promptly even with a long poll.
    const uint64_t now = now_ns();
    if (now < next_scan) {
      const uint64_t left = next_scan - now;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(left < 10'000'000 ? left : 10'000'000));
      continue;
    }
    next_scan = now + cfg_.watchdog_poll_ns;
    WatchdogFn fn;
    {
      std::lock_guard lk(watchdog_mu_);
      fn = watchdog_fn_;
    }
    obs::watchdog_scan(now, cfg_.watchdog_deadline_ns, [&](const obs::SlowOp& op) {
      WatchdogReport r;
      r.corr = op.corr;
      r.start_ns = op.start_ns;
      r.age_ns = now > op.start_ns ? now - op.start_ns : 0;
      r.index = op.index;
      r.kind = op.kind;
      r.node = op.node;
      watchdog_reports_.fetch_add(1, std::memory_order_relaxed);
      if (fn)
        fn(r);
      else
        dump_slow_op(r);
    });
  }
}

// Default slow-op report: one structured JSON line on stderr carrying the
// op's identity and its full correlated trace chain (every ring, every node —
// MsgHeader.trace propagation makes remote-side work match the corr id).
void Cluster::dump_slow_op(const WatchdogReport& r) {
  std::string chain;
  char buf[192];
  size_t n_events = 0;
  for (const obs::TraceEvent& e : obs::collect_trace()) {
    if (e.corr != r.corr) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t\": %llu, \"ev\": \"%s\", \"k\": %u, \"node\": %u, \"a\": %u, "
                  "\"b\": %llu, \"r\": %u}",
                  n_events ? ", " : "", static_cast<unsigned long long>(e.ts_ns),
                  obs::ev_name(e.ev), e.kind, e.node, e.a,
                  static_cast<unsigned long long>(e.b), e.ring);
    chain += buf;
    ++n_events;
  }
  std::fprintf(stderr,
               "{\"watchdog_slow_op\": {\"corr\": %llu, \"op\": \"%s\", \"node\": %u, "
               "\"index\": %llu, \"age_ms\": %.1f, \"events\": %zu, \"chain\": [%s]}}\n",
               static_cast<unsigned long long>(r.corr), obs::op_kind_name(r.kind), r.node,
               static_cast<unsigned long long>(r.index),
               static_cast<double>(r.age_ns) / 1e6, n_events, chain.c_str());
}

// The default sources: one per layer, each flattening its counter struct
// under a dotted prefix. Captures `this`; the registry dies with the cluster.
void Cluster::register_default_stats_sources() {
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    const rdma::FabricStats f = fabric_.stats();
    s.add("fabric.writes", f.writes);
    s.add("fabric.reads", f.reads);
    s.add("fabric.sends", f.sends);
    s.add("fabric.bytes_written", f.bytes_written);
    s.add("fabric.bytes_read", f.bytes_read);
    s.add("fabric.bytes_sent", f.bytes_sent);
    s.add("fabric.wc_errors", f.wc_errors);
    s.add("fabric.rnr_events", f.rnr_events);
    s.add("fabric.retries", f.retries);
    s.add("fabric.flushed_wrs", f.flushed_wrs);
    s.add("fabric.coalesced_frames", f.coalesced_frames);
    s.add("fabric.batched_posts", f.batched_posts);
    s.add("fabric.rndz_transfers", f.rndz_transfers);
    s.add("fabric.bytes_rndz", f.bytes_rndz);
  });
  // Large-message engine plane (docs/perf.md): rendezvous negotiations summed
  // across every node's comm layer. started − completed − fallbacks = leases
  // currently pinned; bytes is the rendezvous subset of bulk traffic.
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    net::CommLayer::RndzStats total;
    for (const auto& n : nodes_) {
      const net::CommLayer::RndzStats r = n->comm().rndz_stats();
      total.started += r.started;
      total.completed += r.completed;
      total.fallbacks += r.fallbacks;
      total.bytes += r.bytes;
    }
    s.add("net.rndz.started", total.started);
    s.add("net.rndz.completed", total.completed);
    s.add("net.rndz.fallbacks", total.fallbacks);
    s.add("net.rndz.bytes", total.bytes);
  });
  // Per-node plane for live dashboards (darray-top): traffic split by node so
  // a hot or faulted node stands out from the cluster-wide sums below.
  // node.<i>.ops counts traced API ops recorded on node i (zero with tracing
  // off — the histograms are the only per-node op tally); the runtime
  // counters are always live.
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    for (uint32_t i = 0; i < cfg_.num_nodes; ++i) {
      uint64_t ops = 0;
      for (size_t k = 0; k < static_cast<size_t>(obs::OpKind::kMaxOpKind); ++k)
        ops += obs::op_latency_snapshot(static_cast<obs::OpKind>(k),
                                        static_cast<uint16_t>(i))
                   .count;
      const RuntimeStats r = nodes_[i]->runtime_stats();
      const std::string p = "node." + std::to_string(i) + ".";
      s.add(p + "ops", ops);
      s.add(p + "remote_reqs", r.remote_reqs);
      s.add(p + "local_misses",
            r.local_read_misses + r.local_write_misses + r.local_operate_misses);
      s.add(p + "fills", r.fills);
      s.add(p + "invalidations", r.invalidations);
      // Outbound protocol bytes by transfer mechanism (truthful bulk-path
      // accounting: eager WRITEs and rendezvous pulls are tallied apart).
      uint64_t tx_send = 0, tx_write = 0, tx_rndz = 0;
      for (uint32_t peer = 0; peer < cfg_.num_nodes; ++peer) {
        if (peer == i) continue;
        const net::CommLayer::PeerTxBytes b = nodes_[i]->comm().peer_tx_bytes(peer);
        tx_send += b.send_bytes;
        tx_write += b.write_bytes;
        tx_rndz += b.rndz_bytes;
      }
      s.add(p + "tx_send_bytes", tx_send);
      s.add(p + "tx_write_bytes", tx_write);
      s.add(p + "tx_rndz_bytes", tx_rndz);
    }
  });
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    const RuntimeStats r = runtime_stats();
    s.add("runtime.local_read_misses", r.local_read_misses);
    s.add("runtime.local_write_misses", r.local_write_misses);
    s.add("runtime.local_operate_misses", r.local_operate_misses);
    s.add("runtime.prefetches_issued", r.prefetches_issued);
    s.add("runtime.fills", r.fills);
    s.add("runtime.invalidations", r.invalidations);
    s.add("runtime.fetches", r.fetches);
    s.add("runtime.flush_reqs", r.flush_reqs);
    s.add("runtime.evict_clean", r.evict_clean);
    s.add("runtime.evict_writeback", r.evict_writeback);
    s.add("runtime.evict_opflush", r.evict_opflush);
    s.add("runtime.remote_reqs", r.remote_reqs);
    s.add("runtime.txns", r.txns);
    s.add("runtime.op_flushes_applied", r.op_flushes_applied);
    s.add("runtime.combine_flushes", r.combine_flushes);
    s.add("runtime.lock_acquires", r.lock_acquires);
    s.add("runtime.lock_waits", r.lock_waits);
    s.add("runtime.reduce_parts_rx", r.reduce_parts_rx);
  });
  // Array-compute plane (src/compute): cursor chunking, overlap hit rate, and
  // reduction-tree traffic. Process-global like pool.* — the compute layer
  // sits above the runtime, so the counters live in obs (see compute_stats.hpp).
  stats_registry_.add_source([](obs::StatsSnapshot& s) {
    const obs::ComputeCounters& c = obs::compute_counters();
    s.add("compute.chunks", c.chunks.load(std::memory_order_relaxed));
    s.add("compute.prefetch_hits", c.prefetch_hits.load(std::memory_order_relaxed));
    s.add("compute.prefetch_misses", c.prefetch_misses.load(std::memory_order_relaxed));
    s.add("compute.reduce_msgs", c.reduce_msgs.load(std::memory_order_relaxed));
    s.add("compute.collectives", c.collectives.load(std::memory_order_relaxed));
  });
  // Coherence plane: per-target-state dentry transition tallies, summed over
  // every array × node × chunk. The walk takes create_mu_ so the meta/state
  // lists are stable; the counters themselves are relaxed single-writer.
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    uint64_t by_state[kNumDentryStates] = {};
    {
      std::scoped_lock lk(create_mu_);
      for (const auto& meta : metas_) {
        for (const auto& n : nodes_) {
          const NodeArrayState* st = n->array_state(meta->id);
          if (st == nullptr) continue;
          for (const Dentry& d : st->dentries)
            for (size_t i = 0; i < kNumDentryStates; ++i)
              by_state[i] += d.transition_count(static_cast<DentryState>(i));
        }
      }
    }
    for (size_t i = 0; i < kNumDentryStates; ++i)
      s.add(std::string("coherence.enter_") +
                dentry_state_name(static_cast<DentryState>(i)),
            by_state[i]);
  });
  // Thread duty cycles: how busy the service threads actually are.
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    obs::DutyStats rt, tx, rx;
    for (const auto& n : nodes_) {
      rt += n->runtime_duty();
      tx += n->comm().tx_duty().sample();
      rx += n->comm().rx_duty().sample();
    }
    auto emit = [&s](const char* prefix, const obs::DutyStats& d) {
      s.add(std::string(prefix) + ".busy_ns", d.busy_ns);
      s.add(std::string(prefix) + ".idle_ns", d.idle_ns);
      s.add(std::string(prefix) + ".parks", d.parks);
    };
    emit("duty.runtime", rt);
    emit("duty.tx", tx);
    emit("duty.rx", rx);
  });
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    CacheRegionStats c;
    for (const auto& n : nodes_) c += n->cache_stats();
    s.add("cache.allocs", c.allocs);
    s.add("cache.alloc_failures", c.alloc_failures);
    s.add("cache.releases", c.releases);
    s.add("cache.deferred_releases", c.deferred_releases);
  });
  // Latency histograms (process-global registries; empty cells are skipped so
  // an untraced run adds no hist.* entries at all).
  stats_registry_.add_source([](obs::StatsSnapshot& s) {
    for (size_t k = 0; k < static_cast<size_t>(obs::OpKind::kMaxOpKind); ++k) {
      const auto kind = static_cast<obs::OpKind>(k);
      const obs::HistogramSnapshot h = obs::op_latency_snapshot(kind);
      if (h.count == 0) continue;
      s.add_histogram(std::string("hist.op.") + obs::op_kind_name(kind), h);
    }
    for (uint32_t c = 0; c < net::kNumMsgClasses; ++c) {
      const obs::HistogramSnapshot h = obs::msg_class_snapshot(static_cast<uint8_t>(c));
      if (h.count == 0) continue;
      s.add_histogram(std::string("hist.msg.") +
                          net::msg_class_name(static_cast<uint8_t>(c)),
                      h);
    }
    // Serve-path stage breakdown (obs v4). Same skip-if-empty rule: a cluster
    // with no serving front door adds no hist.stage.* entries.
    auto& jc = obs::journey_collector();
    for (size_t st = 0; st < obs::kNumJourneyStages; ++st) {
      const auto stage = static_cast<obs::JourneyStage>(st);
      const obs::HistogramSnapshot h = jc.stage_snapshot(stage);
      if (h.count == 0) continue;
      s.add_histogram(std::string("hist.stage.") + obs::journey_stage_name(stage), h);
    }
    if (jc.completed() != 0 || jc.retained() != 0) {
      s.add("journey.completed", jc.completed());
      s.add("journey.retained", jc.retained());
      s.add("journey.threshold_ns.gauge", jc.threshold_ns());
    }
  });
  if (cfg_.watchdog_enabled) {
    stats_registry_.add_source([this](obs::StatsSnapshot& s) {
      s.add("watchdog.reports", watchdog_reports());
    });
  }
  stats_registry_.add_source([](obs::StatsSnapshot& s) {
    const net::PayloadPoolStats p = net::payload_pool_stats();
    s.add("pool.hits", p.hits);
    s.add("pool.misses", p.misses);
  });
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    s.add("comm.dropped_requests", comm_error_count());
  });
  stats_registry_.add_source([this](obs::StatsSnapshot& s) {
    if (injector_ == nullptr) return;  // chaos.* only when a plan is armed
    const chaos::FaultCounters c = injector_->counters();
    s.add("chaos.wc_errors", c.wc_errors);
    s.add("chaos.rnr_rejections", c.rnr_rejections);
    s.add("chaos.delays", c.delays);
    s.add("chaos.blackholed", c.blackholed);
    s.add("chaos.paused", c.paused);
  });
  stats_registry_.add_source([](obs::StatsSnapshot& s) {
    const obs::TraceTotals t = obs::trace_totals();
    s.add("trace.recorded", t.recorded);
    s.add("trace.retained", t.retained);
    s.add("trace.dropped", t.dropped);
    s.add("trace.rings", t.rings);
  });
  // Sampling-profiler plane (docs/observability.md v5). All zero while no
  // session has ever run; signals − samples − unattributed ≈ deliveries the
  // handler declined (profiler momentarily off).
  stats_registry_.add_source([](obs::StatsSnapshot& s) {
    const obs::ProfileTotals p = obs::profile_totals();
    s.add("profile.samples", p.samples);
    s.add("profile.dropped", p.dropped);
    s.add("profile.signals", p.signals);
    s.add("profile.unattributed", p.unattributed);
    s.add("profile.rings", p.rings);
  });
}

void Cluster::handle_comm_error(uint32_t node, const net::CommError& err) {
  comm_errors_.fetch_add(1, std::memory_order_relaxed);
  if (comm_error_fn_) {
    comm_error_fn_(node, err);
    return;
  }
  // Fail-stop: a dropped protocol message would wedge the coherence protocol
  // (a requester parks forever on a reply that never comes), so dying loudly
  // here beats hanging silently there.
  DLOG_ERROR("node %u: abandoning message to peer %u (%s, %s after %u attempts) — "
             "fail-stop; install a comm error handler to override",
             node, err.peer, err.reason, rdma::wc_status_name(err.status), err.attempts);
  std::abort();
}

const ArrayMeta* Cluster::create_array(uint64_t n_elems, uint32_t elem_size,
                                       std::span<const uint64_t> partition) {
  DARRAY_ASSERT(n_elems > 0);
  DARRAY_ASSERT_MSG(elem_size == 1 || elem_size == 2 || elem_size == 4 || elem_size == 8,
                    "element size must be 1/2/4/8 bytes (see DESIGN.md §6)");
  std::scoped_lock lk(create_mu_);
  DARRAY_ASSERT_MSG(metas_.size() < kMaxArrays, "array id space exhausted");

  auto meta = std::make_unique<ArrayMeta>();
  meta->id = static_cast<ArrayId>(metas_.size());
  meta->n_elems = n_elems;
  meta->elem_size = elem_size;
  meta->chunk_elems = cfg_.chunk_elems;
  meta->n_chunks = (n_elems + cfg_.chunk_elems - 1) / cfg_.chunk_elems;

  const uint32_t n = cfg_.num_nodes;
  meta->chunk_begin.resize(n + 1);
  meta->elem_begin.resize(n + 1);
  if (partition.empty()) {
    // Even chunk-granular split (paper default).
    for (uint32_t i = 0; i <= n; ++i)
      meta->chunk_begin[i] = meta->n_chunks * i / n;
  } else {
    DARRAY_ASSERT_MSG(partition.size() == n, "partition needs one offset per node");
    DARRAY_ASSERT(partition[0] == 0);
    for (uint32_t i = 0; i < n; ++i) {
      DARRAY_ASSERT_MSG(partition[i] % cfg_.chunk_elems == 0,
                        "partition offsets must be chunk-aligned");
      meta->chunk_begin[i] = partition[i] / cfg_.chunk_elems;
      if (i > 0) DARRAY_ASSERT(meta->chunk_begin[i] >= meta->chunk_begin[i - 1]);
    }
    meta->chunk_begin[n] = meta->n_chunks;
  }
  for (uint32_t i = 0; i <= n; ++i) {
    meta->elem_begin[i] = std::min<uint64_t>(meta->chunk_begin[i] * cfg_.chunk_elems, n_elems);
  }
  meta->elem_begin[n] = n_elems;

  // Per-node subarrays + MR registration (the "control plane exchange").
  meta->subarrays.resize(n);
  std::vector<std::unique_ptr<NodeArrayState>> states(n);
  for (NodeId i = 0; i < n; ++i) {
    auto st = std::make_unique<NodeArrayState>();
    st->meta = meta.get();
    st->node = i;
    const uint64_t bytes =
        std::max<uint64_t>(1, (meta->elem_begin[i + 1] - meta->elem_begin[i]) * elem_size);
    st->subarray = std::make_unique<std::byte[]>(bytes);
    std::memset(st->subarray.get(), 0, bytes);
    st->subarray_mr = nodes_[i]->device()->reg_mr(st->subarray.get(), bytes);
    meta->subarrays[i] = {reinterpret_cast<uint64_t>(st->subarray.get()),
                          st->subarray_mr.rkey};
    states[i] = std::move(st);
  }

  // Dentries: home chunks start writable (global Unshared), remote invalid.
  for (NodeId i = 0; i < n; ++i) {
    NodeArrayState& st = *states[i];
    st.dentries = std::vector<Dentry>(meta->n_chunks);
    st.ctl.resize(meta->n_chunks);
    for (ChunkId c = 0; c < meta->n_chunks; ++c) {
      Dentry& d = st.dentries[c];
      d.owner_bell = &nodes_[i]->rt_for_chunk(c).bell();
      if (meta->home_of_chunk(c) == i) {
        d.is_home = true;
        d.data.store(st.chunk_data(c), std::memory_order_relaxed);
        d.state.store(DentryState::kWrite, std::memory_order_relaxed);
      }
    }
  }

  for (NodeId i = 0; i < n; ++i) nodes_[i]->install_array(meta->id, std::move(states[i]));
  metas_.push_back(std::move(meta));
  DLOG_INFO("created array %u: %llu elems x %uB, %llu chunks", metas_.back()->id,
            static_cast<unsigned long long>(n_elems), elem_size,
            static_cast<unsigned long long>(metas_.back()->n_chunks));
  return metas_.back().get();
}

}  // namespace darray::rt
