// Cluster-global metadata of one distributed array: geometry, partition, and
// the per-node registered subarray addresses used for one-sided writebacks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

struct ArrayMeta {
  ArrayId id = 0;
  uint64_t n_elems = 0;
  uint32_t elem_size = 8;
  uint32_t chunk_elems = 512;
  uint64_t n_chunks = 0;

  // Node i owns elements [elem_begin[i], elem_begin[i+1]); chunk-aligned.
  std::vector<uint64_t> elem_begin;   // size num_nodes + 1
  std::vector<uint64_t> chunk_begin;  // elem_begin / chunk_elems

  // One-sided addressing of every node's subarray (exchanged at creation, as
  // a real deployment would do over the control plane).
  struct SubarrayRef {
    uint64_t addr = 0;
    uint32_t rkey = 0;
  };
  std::vector<SubarrayRef> subarrays;

  ChunkId chunk_of(uint64_t index) const { return index / chunk_elems; }
  uint32_t offset_in_chunk(uint64_t index) const {
    return static_cast<uint32_t>(index % chunk_elems);
  }
  uint64_t chunk_bytes() const { return uint64_t{chunk_elems} * elem_size; }

  NodeId home_of_chunk(ChunkId c) const {
    DARRAY_ASSERT(c < n_chunks);
    auto it = std::upper_bound(chunk_begin.begin(), chunk_begin.end(), c);
    return static_cast<NodeId>(it - chunk_begin.begin() - 1);
  }

  // Number of elements in chunk c (the last chunk may be partial).
  uint32_t elems_in_chunk(ChunkId c) const {
    const uint64_t first = c * chunk_elems;
    return static_cast<uint32_t>(std::min<uint64_t>(chunk_elems, n_elems - first));
  }

  // Remote address of chunk c's data inside its home's subarray.
  uint64_t home_chunk_addr(ChunkId c) const {
    const NodeId home = home_of_chunk(c);
    const uint64_t elem0 = c * chunk_elems;
    return subarrays[home].addr + (elem0 - elem_begin[home]) * elem_size;
  }

  // Local element range of a node.
  uint64_t local_begin(NodeId n) const { return elem_begin[n]; }
  uint64_t local_end(NodeId n) const { return elem_begin[n + 1]; }
};

}  // namespace darray::rt
