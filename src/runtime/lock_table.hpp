// Home-side distributed reader/writer lock table (paper Fig. 3 lines 5-7).
// Each element's lock lives at its home node and is managed by the runtime
// thread that owns the element's chunk, so the table needs no internal
// locking. Writers are exclusive; waiters queue FIFO (readers at the head of
// the queue are granted as a batch).
#pragma once

#include <deque>
#include <unordered_map>

#include "common/assert.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

struct LockWaiter {
  NodeId node = kNoNode;
  bool write = false;
  uint32_t txn_id = 0;              // remote waiters: echoed in the grant
  LocalRequest* local = nullptr;    // local waiters: signalled directly
  uint64_t trace = 0;               // obs correlation id, echoed in the grant
};

class LockTable {
 public:
  // Try to acquire; returns true if granted immediately, otherwise queues the
  // waiter. FIFO: a new request is granted only when no one is queued ahead.
  bool acquire(ArrayId array, uint64_t index, LockWaiter w) {
    LockState& s = table_[key(array, index)];
    if (s.q.empty() && compatible(s, w.write)) {
      grant(s, w);
      return true;
    }
    s.q.push_back(w);
    return false;
  }

  // Release one hold by `node`; appends newly grantable waiters to `out`.
  // A reader release and a writer release are distinguishable by state: if a
  // writer holds the lock, the releasing node must be that writer.
  void release(ArrayId array, uint64_t index, NodeId node,
               std::deque<LockWaiter>& out) {
    auto it = table_.find(key(array, index));
    DARRAY_ASSERT_MSG(it != table_.end(), "release of a never-acquired lock");
    LockState& s = it->second;
    if (s.writer) {
      DARRAY_ASSERT_MSG(s.writer_node == node, "writer release from non-owner");
      s.writer = false;
      s.writer_node = kNoNode;
    } else {
      DARRAY_ASSERT_MSG(s.readers > 0, "reader release with zero readers");
      s.readers--;
    }
    // Hand over: one writer, or the batch of readers before the next writer.
    while (!s.q.empty() && compatible(s, s.q.front().write)) {
      const LockWaiter w = s.q.front();
      s.q.pop_front();
      grant(s, w);
      out.push_back(w);
      if (w.write) break;
    }
    if (s.readers == 0 && !s.writer && s.q.empty()) table_.erase(it);
  }

  size_t size() const { return table_.size(); }

 private:
  struct LockState {
    uint32_t readers = 0;
    bool writer = false;
    NodeId writer_node = kNoNode;
    std::deque<LockWaiter> q;
  };

  static uint64_t key(ArrayId array, uint64_t index) {
    DARRAY_ASSERT(index < (1ull << 48));
    return (uint64_t{array} << 48) | index;
  }

  static bool compatible(const LockState& s, bool write) {
    return write ? (!s.writer && s.readers == 0) : !s.writer;
  }

  static void grant(LockState& s, const LockWaiter& w) {
    if (w.write) {
      s.writer = true;
      s.writer_node = w.node;
    } else {
      s.readers++;
    }
  }

  std::unordered_map<uint64_t, LockState> table_;
};

}  // namespace darray::rt
