// Per-node state of one distributed array: the local subarray, the dentry per
// chunk, and the protocol control block per chunk (home directory fields +
// requester-side bookkeeping). Control blocks are touched only by the runtime
// thread that owns the chunk (chunk % runtime_threads), so they need no
// internal synchronisation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/node_mask.hpp"
#include "net/message.hpp"
#include "rdma/verbs.hpp"
#include "runtime/array_meta.hpp"
#include "runtime/cache_region.hpp"
#include "runtime/dentry.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

// A request a home chunk must process: either a remote protocol message or a
// local application miss.
struct PendingReq {
  LocalRequest* local = nullptr;  // set for local requests
  net::RpcMessage msg;            // set for remote requests
  bool is_local() const { return local != nullptr; }
};

struct ChunkCtl {
  // --- home-side directory (valid only on the chunk's home node) ------------
  GlobalState g = GlobalState::kUnshared;
  NodeMask sharers;          // remote readers (home's own R is implicit)
  NodeId owner = kNoNode;    // Dirty owner
  uint16_t g_op = kNoOp;     // Operated operator id
  NodeMask op_nodes;         // remote Operated participants

  // Per-chunk transaction serialisation: while busy, new requests queue.
  bool busy = false;
  NodeMask awaiting;              // nodes whose ack/data/flush is pending
  bool self_drain_pending = false;
  bool wb_voluntary = false;      // fetch answered by a voluntary writeback
  std::function<void()> txn_then;
  std::deque<PendingReq> waiting;

  // --- requester side (valid on non-home nodes) ------------------------------
  std::vector<LocalRequest*> parked;  // signalled when the next fill lands
  bool outstanding = false;           // one request to home at a time
  bool combine_valid = false;         // unflushed operands in line->combine
  CacheLine* line = nullptr;
};

struct NodeArrayState {
  const ArrayMeta* meta = nullptr;
  std::unique_ptr<std::byte[]> subarray;
  rdma::MemoryRegion subarray_mr;
  std::vector<Dentry> dentries;  // n_chunks
  std::vector<ChunkCtl> ctl;     // n_chunks

  std::byte* chunk_data(ChunkId c) const {
    // Valid only for chunks homed on this node.
    const uint64_t elem0 = c * meta->chunk_elems;
    return subarray.get() + (elem0 - meta->elem_begin[node]) * meta->elem_size;
  }

  NodeId node = 0;
};

}  // namespace darray::rt
