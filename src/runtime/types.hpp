// Core identifiers and the application↔runtime request vocabulary.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/config.hpp"
#include "common/wait.hpp"

namespace darray::rt {

using ::darray::ClusterConfig;

using NodeId = uint32_t;
using ArrayId = uint16_t;
using ChunkId = uint64_t;

inline constexpr NodeId kNoNode = ~0u;
inline constexpr uint16_t kNoOp = 0xffff;

// Local permission state of a chunk on one node, kept in its dentry. The
// paper's directory tracks "the state of data in both local subarray and
// cache at the chunk granularity"; pending states are the intermediate states
// of §4.2 footnote 4 (waiting for another node's reply).
enum class DentryState : uint8_t {
  kInvalid = 0,
  kRead,            // may Read
  kWrite,           // exclusive here: may Read/Write/Operate
  kOperated,        // may Operate with the dentry's op_id only
  kPendingRead,     // fill in flight
  kPendingWrite,
  kPendingOperate,
};
inline constexpr size_t kNumDentryStates = 7;

// Stats-plane names, indexed by DentryState ("coherence.enter_<name>").
inline const char* dentry_state_name(DentryState s) {
  switch (s) {
    case DentryState::kInvalid: return "invalid";
    case DentryState::kRead: return "read";
    case DentryState::kWrite: return "write";
    case DentryState::kOperated: return "operated";
    case DentryState::kPendingRead: return "pending_read";
    case DentryState::kPendingWrite: return "pending_write";
    case DentryState::kPendingOperate: return "pending_operate";
  }
  return "?";
}

inline bool dentry_readable(DentryState s) {
  return s == DentryState::kRead || s == DentryState::kWrite;
}
inline bool dentry_writable(DentryState s) { return s == DentryState::kWrite; }

// Directory (home-side) state of a chunk: Table 1 of the paper.
enum class GlobalState : uint8_t {
  kUnshared = 0,  // home alone: R/W/O at home
  kShared,        // home + sharers: R everywhere
  kDirty,         // one non-home owner: R/W there, nothing at home
  kOperated,      // all participants: O (same op) everywhere, merged at home
};

enum class PinMode : uint8_t { kRead = 0, kWrite = 1, kOperate = 2 };

// A slow-path request an application thread parks on (Fig. 2 local-req
// queue). The requester owns the storage (stack). For data accesses
// (kRead/kWrite/kOperate) the runtime PERFORMS the access itself at grant
// time, inside its exclusive window — this guarantees one miss completes in
// one grant, which a "wake and retry" scheme cannot (the permission can be
// revoked again before the woken thread is scheduled, livelocking under
// cross-node contention). For kPin the runtime acquires the chunk reference
// on the requester's behalf and reports the granted state.
struct LocalRequest {
  enum class Kind : uint8_t {
    kRead,
    kWrite,
    kOperate,
    kPin,
    kLockAcq,
    kLockRel,
    kPrefetch,  // runtime-internal, heap-owned, no completion
  };

  Kind kind = Kind::kRead;
  PinMode pin_mode = PinMode::kRead;
  uint8_t lock_write = 0;  // 1 = writer lock
  ArrayId array = 0;
  uint16_t op_id = kNoOp;
  ChunkId chunk = 0;
  uint64_t index = 0;   // element index
  uint64_t operand = 0; // in: value bits for kWrite/kOperate; out: kRead result
  uint64_t trace_id = 0;  // obs correlation id of the originating API op
  DentryState granted = DentryState::kInvalid;  // out: kPin
  Completion done;
};

// A registered Operate operator (§4.3). `fn` must be associative and
// commutative over the element type; `identity_bits` seed combine buffers
// (e.g. 0 for add, +inf bits for min).
struct OpDesc {
  std::function<void(void* acc, const void* operand)> fn;
  uint64_t identity_bits = 0;
  uint32_t elem_size = 8;
};

}  // namespace darray::rt
