// One runtime thread (paper Fig. 2): owns a private cache region and the
// protocol state of every chunk with (chunk % runtime_threads) == index,
// consuming its local-request and RPC-message queues.
#pragma once

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/config.hpp"
#include "common/mpsc_queue.hpp"
#include "net/message.hpp"
#include "obs/duty_cycle.hpp"
#include "runtime/cache_region.hpp"
#include "runtime/engine.hpp"

namespace darray::rt {

class NodeRuntime;

class RuntimeThread {
 public:
  RuntimeThread(NodeRuntime* node, uint32_t node_id, uint32_t index,
                const ClusterConfig& cfg, rdma::Device* device)
      : region_(device, cfg),
        engine_(node, index, &region_, &bell_),
        node_id_(node_id),
        index_(index) {}

  RuntimeThread(const RuntimeThread&) = delete;
  RuntimeThread& operator=(const RuntimeThread&) = delete;

  void start() { thread_ = std::thread([this] { main_loop(); }); }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    bell_.ring();
    thread_.join();
  }

  // Application threads (Fig. 2 local-req queue).
  void submit_local(LocalRequest* r) { local_q_.push(r); }

  // Rx thread (Fig. 2 RPC-msg queue).
  void submit_rpc(net::RpcMessage m) { rpc_q_.push(std::move(m)); }

  Doorbell& bell() { return bell_; }

  const RuntimeStats& stats() const { return engine_.stats(); }
  const obs::DutyCycle& duty() const { return duty_; }
  const CacheRegion& region() const { return region_; }

 private:
  // noinline keeps this frame out of the start() lambda so profiler samples
  // name the runtime loop (docs/observability.md v5).
  DARRAY_PROFILE_ANCHOR void main_loop() {
    char tname[16];
    std::snprintf(tname, sizeof tname, "rt.%u.%u", node_id_, index_);
    obs::register_current_thread(tname);
    duty_.on_start();
    for (;;) {
      const uint32_t snap = bell_.snapshot();
      bool work = false;
      LocalRequest* lr = nullptr;
      while (local_q_.pop(lr)) {
        engine_.handle_local(lr);
        work = true;
      }
      net::RpcMessage m;
      while (rpc_q_.pop(m)) {
        engine_.handle_rpc(std::move(m));
        work = true;
      }
      work |= engine_.tick();
      if (stop_.load(std::memory_order_acquire)) break;
      if (!work) {
        const uint64_t t0 = duty_.park_begin();
        if (engine_.needs_poll())
          std::this_thread::yield();  // waiting on refcounts that don't ring
        else
          bell_.wait_change(snap);
        duty_.park_end(t0);
      }
    }
    duty_.on_stop();
  }

  Doorbell bell_;
  MpscQueue<LocalRequest*> local_q_{&bell_};
  MpscQueue<net::RpcMessage> rpc_q_{&bell_};
  CacheRegion region_;
  Engine engine_;
  obs::DutyCycle duty_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  uint32_t node_id_ = 0;
  uint32_t index_ = 0;
};

}  // namespace darray::rt
