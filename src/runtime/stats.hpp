// Runtime-layer counters: single-writer per runtime thread, aggregated on
// demand. Used by the ablation benches and by tests that assert *behaviour*
// (e.g. "prefetch turned N demand misses into hits") rather than timing.
#pragma once

#include <atomic>
#include <cstdint>

namespace darray::rt {

// A uint64 counter with the syntax of a plain field but relaxed-atomic
// accesses, so the telemetry sampler can aggregate per-thread stats while
// their owner threads keep bumping them. Single writer per instance; relaxed
// is enough because each counter is independent and only ever summed.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t v) : v_(v) {}
  RelaxedCounter(const RelaxedCounter& o) : v_(o.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  operator uint64_t() const { return get(); }
  uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

struct RuntimeStats {
  // interface → runtime traffic
  RelaxedCounter local_read_misses;
  RelaxedCounter local_write_misses;
  RelaxedCounter local_operate_misses;
  RelaxedCounter prefetches_issued;

  // requester side
  RelaxedCounter fills;             // kReadData/kWriteData/kOperateResp received
  RelaxedCounter invalidations;     // kInvalidate handled
  RelaxedCounter fetches;           // kFetch handled
  RelaxedCounter flush_reqs;        // kFlushReq handled
  RelaxedCounter evict_clean;       // Shared line dropped silently
  RelaxedCounter evict_writeback;   // Dirty line written back
  RelaxedCounter evict_opflush;     // Operated line flushed

  // array-compute collectives
  RelaxedCounter reduce_parts_rx;   // kReducePart messages delivered

  // home side
  RelaxedCounter remote_reqs;       // kReadReq/kWriteReq/kOperateReq served
  RelaxedCounter txns;              // multi-party transactions started
  RelaxedCounter op_flushes_applied;
  RelaxedCounter combine_flushes;   // kOpFlush messages sent (combine buffer drains)

  // locks
  RelaxedCounter lock_acquires;
  RelaxedCounter lock_waits;        // acquires that had to queue

  RuntimeStats& operator+=(const RuntimeStats& o) {
    local_read_misses += o.local_read_misses;
    local_write_misses += o.local_write_misses;
    local_operate_misses += o.local_operate_misses;
    prefetches_issued += o.prefetches_issued;
    fills += o.fills;
    invalidations += o.invalidations;
    fetches += o.fetches;
    flush_reqs += o.flush_reqs;
    evict_clean += o.evict_clean;
    evict_writeback += o.evict_writeback;
    evict_opflush += o.evict_opflush;
    reduce_parts_rx += o.reduce_parts_rx;
    remote_reqs += o.remote_reqs;
    txns += o.txns;
    op_flushes_applied += o.op_flushes_applied;
    combine_flushes += o.combine_flushes;
    lock_acquires += o.lock_acquires;
    lock_waits += o.lock_waits;
    return *this;
  }

  uint64_t total_misses() const {
    return local_read_misses + local_write_misses + local_operate_misses;
  }
  uint64_t total_evictions() const { return evict_clean + evict_writeback + evict_opflush; }
};

}  // namespace darray::rt
