// Runtime-layer counters: single-writer per runtime thread, aggregated on
// demand. Used by the ablation benches and by tests that assert *behaviour*
// (e.g. "prefetch turned N demand misses into hits") rather than timing.
#pragma once

#include <cstdint>

namespace darray::rt {

struct RuntimeStats {
  // interface → runtime traffic
  uint64_t local_read_misses = 0;
  uint64_t local_write_misses = 0;
  uint64_t local_operate_misses = 0;
  uint64_t prefetches_issued = 0;

  // requester side
  uint64_t fills = 0;             // kReadData/kWriteData/kOperateResp received
  uint64_t invalidations = 0;     // kInvalidate handled
  uint64_t fetches = 0;           // kFetch handled
  uint64_t flush_reqs = 0;        // kFlushReq handled
  uint64_t evict_clean = 0;       // Shared line dropped silently
  uint64_t evict_writeback = 0;   // Dirty line written back
  uint64_t evict_opflush = 0;     // Operated line flushed

  // home side
  uint64_t remote_reqs = 0;       // kReadReq/kWriteReq/kOperateReq served
  uint64_t txns = 0;              // multi-party transactions started
  uint64_t op_flushes_applied = 0;
  uint64_t combine_flushes = 0;   // kOpFlush messages sent (combine buffer drains)

  // locks
  uint64_t lock_acquires = 0;
  uint64_t lock_waits = 0;        // acquires that had to queue

  RuntimeStats& operator+=(const RuntimeStats& o) {
    local_read_misses += o.local_read_misses;
    local_write_misses += o.local_write_misses;
    local_operate_misses += o.local_operate_misses;
    prefetches_issued += o.prefetches_issued;
    fills += o.fills;
    invalidations += o.invalidations;
    fetches += o.fetches;
    flush_reqs += o.flush_reqs;
    evict_clean += o.evict_clean;
    evict_writeback += o.evict_writeback;
    evict_opflush += o.evict_opflush;
    remote_reqs += o.remote_reqs;
    txns += o.txns;
    op_flushes_applied += o.op_flushes_applied;
    combine_flushes += o.combine_flushes;
    lock_acquires += o.lock_acquires;
    lock_waits += o.lock_waits;
    return *this;
  }

  uint64_t total_misses() const {
    return local_read_misses + local_write_misses + local_operate_misses;
  }
  uint64_t total_evictions() const { return evict_clean + evict_writeback + evict_opflush; }
};

}  // namespace darray::rt
