// Lock-free application of a registered operator to an element (CAS loop).
//
// Correctness leans on the operator contract: associativity + commutativity
// make "combine locally, reduce at home, in any order" equivalent to a single
// serialised sequence (paper Eq. 1). The CAS loop only needs per-element
// atomicity, which restricts Operate to elements of 1/2/4/8 bytes.
#pragma once

#include <atomic>
#include <cstring>

#include "common/assert.hpp"
#include "runtime/types.hpp"

namespace darray::rt {

namespace detail {

template <typename U>
inline void atomic_apply_int(std::byte* addr, const OpDesc& op, const void* operand) {
  std::atomic_ref<U> ref(*reinterpret_cast<U*>(addr));
  U old = ref.load(std::memory_order_relaxed);
  for (;;) {
    U next = old;
    op.fn(&next, operand);
    if (ref.compare_exchange_weak(old, next, std::memory_order_acq_rel,
                                  std::memory_order_relaxed))
      return;
    // old reloaded by CAS failure; retry with the fresh value.
  }
}

}  // namespace detail

// Apply op to the element at `addr` (element of op.elem_size bytes, naturally
// aligned). Safe against concurrent atomic_apply on the same element.
inline void atomic_apply(std::byte* addr, const OpDesc& op, const void* operand) {
  DARRAY_ASSERT((reinterpret_cast<uintptr_t>(addr) & (op.elem_size - 1)) == 0);
  switch (op.elem_size) {
    case 1: detail::atomic_apply_int<uint8_t>(addr, op, operand); return;
    case 2: detail::atomic_apply_int<uint16_t>(addr, op, operand); return;
    case 4: detail::atomic_apply_int<uint32_t>(addr, op, operand); return;
    case 8: detail::atomic_apply_int<uint64_t>(addr, op, operand); return;
    default: DARRAY_UNREACHABLE("Operate supports 1/2/4/8-byte elements only");
  }
}

// Element-granular atomic load/store (relaxed): application fast paths, the
// runtime's perform-at-grant path, and atomic_apply may all touch the same
// element concurrently, so every element access goes through atomics.
inline uint64_t atomic_load_elem(const std::byte* addr, uint32_t elem_size) {
  switch (elem_size) {
    case 1: return std::atomic_ref<const uint8_t>(*reinterpret_cast<const uint8_t*>(addr))
                .load(std::memory_order_relaxed);
    case 2: return std::atomic_ref<const uint16_t>(*reinterpret_cast<const uint16_t*>(addr))
                .load(std::memory_order_relaxed);
    case 4: return std::atomic_ref<const uint32_t>(*reinterpret_cast<const uint32_t*>(addr))
                .load(std::memory_order_relaxed);
    case 8: return std::atomic_ref<const uint64_t>(*reinterpret_cast<const uint64_t*>(addr))
                .load(std::memory_order_relaxed);
    default: DARRAY_UNREACHABLE("elements are 1/2/4/8 bytes");
  }
}

inline void atomic_store_elem(std::byte* addr, uint32_t elem_size, uint64_t bits) {
  switch (elem_size) {
    case 1:
      std::atomic_ref<uint8_t>(*reinterpret_cast<uint8_t*>(addr))
          .store(static_cast<uint8_t>(bits), std::memory_order_relaxed);
      return;
    case 2:
      std::atomic_ref<uint16_t>(*reinterpret_cast<uint16_t*>(addr))
          .store(static_cast<uint16_t>(bits), std::memory_order_relaxed);
      return;
    case 4:
      std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(addr))
          .store(static_cast<uint32_t>(bits), std::memory_order_relaxed);
      return;
    case 8:
      std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(addr))
          .store(bits, std::memory_order_relaxed);
      return;
    default: DARRAY_UNREACHABLE("elements are 1/2/4/8 bytes");
  }
}

// --- combine buffer ----------------------------------------------------------
//
// A remote Operated participant accumulates operands per element in a combine
// buffer: chunk_elems u64 slots (element bytes zero-extended) preceded by a
// touched bitmap. Slots are pre-seeded with the operator identity so combining
// is a plain atomic_apply; the bitmap only exists to keep flushes sparse.

struct CombineView {
  std::byte* slots;                 // chunk_elems * 8 bytes
  std::atomic<uint64_t>* bitmap;    // chunk_elems / 64 words
  uint32_t chunk_elems;

  std::byte* slot(uint32_t offset) const { return slots + size_t{offset} * 8; }

  void mark(uint32_t offset) const {
    bitmap[offset >> 6].fetch_or(1ull << (offset & 63), std::memory_order_release);
  }

  bool touched(uint32_t offset) const {
    return (bitmap[offset >> 6].load(std::memory_order_acquire) >> (offset & 63)) & 1;
  }

  // Runtime thread only (no concurrency): reseed identity + clear bitmap.
  void reset(const OpDesc& op) const {
    for (uint32_t i = 0; i < chunk_elems; ++i)
      std::memcpy(slot(i), &op.identity_bits, 8);
    for (uint32_t w = 0; w < chunk_elems / 64; ++w)
      bitmap[w].store(0, std::memory_order_relaxed);
  }
};

// Application-thread side of Operate on a remote participant: fold the
// operand into the combine slot. Slots are u64-wide regardless of elem_size,
// so the CAS is always on 8 bytes; op.fn touches only the low elem_size bytes.
inline void combine_into(const CombineView& cb, uint32_t offset, const OpDesc& op,
                         const void* operand) {
  std::atomic_ref<uint64_t> ref(*reinterpret_cast<uint64_t*>(cb.slot(offset)));
  uint64_t old = ref.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t next = old;
    op.fn(&next, operand);
    if (ref.compare_exchange_weak(old, next, std::memory_order_acq_rel,
                                  std::memory_order_relaxed))
      break;
  }
  cb.mark(offset);
}

}  // namespace darray::rt
