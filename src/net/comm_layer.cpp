#include "net/comm_layer.hpp"

#include <chrono>
#include <cstring>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace darray::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kReadReq: return "ReadReq";
    case MsgType::kWriteReq: return "WriteReq";
    case MsgType::kOperateReq: return "OperateReq";
    case MsgType::kWriteback: return "Writeback";
    case MsgType::kOpFlush: return "OpFlush";
    case MsgType::kReadData: return "ReadData";
    case MsgType::kWriteData: return "WriteData";
    case MsgType::kOperateResp: return "OperateResp";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kFetch: return "Fetch";
    case MsgType::kFlushReq: return "FlushReq";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kFetchData: return "FetchData";
    case MsgType::kLockAcq: return "LockAcq";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockRel: return "LockRel";
    case MsgType::kMaxMsgType: break;
  }
  return "?";
}

namespace {
// Largest possible payload: one OpFlushEntry per element in a chunk.
size_t compute_max_msg_bytes(const ClusterConfig& cfg) {
  return sizeof(MsgHeader) + size_t{cfg.chunk_elems} * sizeof(OpFlushEntry);
}
}  // namespace

CommLayer::CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
                     rdma::Device* device, DispatchFn dispatch)
    : node_id_(node_id),
      num_nodes_(num_nodes),
      cfg_(cfg),
      device_(device),
      dispatch_(std::move(dispatch)),
      max_msg_bytes_(compute_max_msg_bytes(cfg)),
      qp_to_peer_(num_nodes, nullptr),
      outstanding_(num_nodes),
      unsignaled_run_(num_nodes, 0) {
  // Send buffers: enough that every peer QP can hold a full unsignaled run
  // plus slack, so acquire_send_buffer rarely has to spin on the CQ.
  send_buf_count_ = num_nodes_ * cfg_.selective_signal_interval * 2 + 32;
  send_arena_ = std::make_unique<std::byte[]>(send_buf_count_ * max_msg_bytes_);
  send_mr_ = device_->reg_mr(send_arena_.get(), send_buf_count_ * max_msg_bytes_);
  send_free_.reserve(send_buf_count_);
  for (uint32_t i = 0; i < send_buf_count_; ++i) send_free_.push_back(i);

  const size_t recv_count = size_t{num_nodes_} * cfg_.qp_depth;
  recv_arena_ = std::make_unique<std::byte[]>(recv_count * max_msg_bytes_);
  recv_mr_ = device_->reg_mr(recv_arena_.get(), recv_count * max_msg_bytes_);
}

CommLayer::~CommLayer() { stop(); }

void CommLayer::set_qp(uint32_t peer, rdma::QueuePair* qp) {
  DARRAY_ASSERT(peer < num_nodes_ && peer != node_id_);
  qp_to_peer_[peer] = qp;
  if (qp->qp_num() >= qp_by_num_.size()) qp_by_num_.resize(qp->qp_num() + 1, nullptr);
  qp_by_num_[qp->qp_num()] = qp;
}

void CommLayer::start() {
  DARRAY_ASSERT(!started_);
  started_ = true;
  // Prepost the full recv ring, qp_depth buffers per peer QP.
  size_t buf = 0;
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if (peer == node_id_) continue;
    rdma::QueuePair* qp = qp_to_peer_[peer];
    DARRAY_ASSERT_MSG(qp != nullptr, "comm layer started before topology wiring");
    for (uint32_t i = 0; i < cfg_.qp_depth; ++i, ++buf) {
      rdma::RecvWr wr;
      wr.addr = recv_arena_.get() + buf * max_msg_bytes_;
      wr.length = static_cast<uint32_t>(max_msg_bytes_);
      wr.lkey = recv_mr_.lkey;
      wr.wr_id = reinterpret_cast<uint64_t>(wr.addr);
      qp->post_recv(wr);
    }
  }
  tx_thread_ = std::thread([this] { tx_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
}

void CommLayer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  tx_bell_.ring();
  rx_bell_.ring();
  tx_thread_.join();
  rx_thread_.join();
  started_ = false;
}

void CommLayer::post(TxRequest req) {
  DARRAY_ASSERT_MSG(req.dst != node_id_, "self-sends must be short-circuited in the runtime");
  tx_queue_.push(std::move(req));
}

void CommLayer::reclaim_send_buffers() {
  rdma::WorkCompletion wcs[32];
  for (;;) {
    const size_t n = send_cq_.poll(wcs);
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      const rdma::WorkCompletion& wc = wcs[i];
      DARRAY_ASSERT_MSG(wc.status == rdma::WcStatus::kSuccess, "send failed");
      if (wc.opcode != rdma::Opcode::kSend) continue;  // WRITEs are unsignaled
      // A signaled completion retires every earlier unsignaled send on the
      // same QP (per-QP FIFO) — the point of selective signaling.
      auto& fifo = outstanding_[wc.peer_node];
      while (!fifo.empty() && fifo.front().wr_id <= wc.wr_id) {
        send_free_.push_back(fifo.front().buf);
        fifo.pop_front();
      }
    }
  }
}

uint32_t CommLayer::acquire_send_buffer() {
  while (send_free_.empty()) {
    reclaim_send_buffers();
    if (!send_free_.empty()) break;
    cpu_relax();
  }
  const uint32_t buf = send_free_.back();
  send_free_.pop_back();
  return buf;
}

void CommLayer::post_one(TxRequest& req) {
  rdma::QueuePair* qp = qp_to_peer_[req.dst];
  DARRAY_ASSERT(qp != nullptr);

  // 1. Optional one-sided data WRITE; FIFO per QP orders it before the SEND.
  if (req.has_data()) {
    rdma::SendWr wr;
    wr.opcode = rdma::Opcode::kWrite;
    wr.sge = {req.data_src, req.data_len, req.data_lkey};
    wr.remote_addr = req.data_remote_addr;
    wr.rkey = req.data_rkey;
    wr.signaled = false;  // source buffer release is handled via posted_flag
    wr.wr_id = next_wr_id_++;
    const bool ok = qp->post_send(wr);
    DARRAY_ASSERT_MSG(ok, "data WRITE failed local validation");
    if (req.posted_flag) {
      req.posted_flag->store(1, std::memory_order_release);
      req.posted_flag->notify_all();
    }
  }

  // 2. The two-sided protocol message.
  const uint32_t buf = acquire_send_buffer();
  std::byte* p = send_arena_.get() + size_t{buf} * max_msg_bytes_;
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  std::memcpy(p, &req.hdr, sizeof(MsgHeader));
  if (!req.payload.empty())
    std::memcpy(p + sizeof(MsgHeader), req.payload.data(), req.payload.size());

  rdma::SendWr wr;
  wr.opcode = rdma::Opcode::kSend;
  wr.sge = {p, static_cast<uint32_t>(sizeof(MsgHeader) + req.payload.size()), send_mr_.lkey};
  wr.wr_id = next_wr_id_++;
  // Selective signaling: request a completion once per interval per QP so the
  // signaled CQE retires the whole unsignaled run behind it.
  uint32_t& run = unsignaled_run_[req.dst];
  wr.signaled = ++run >= cfg_.selective_signal_interval;
  if (wr.signaled) run = 0;
  outstanding_[req.dst].push_back({wr.wr_id, buf});
  const bool ok = qp->post_send(wr);
  DARRAY_ASSERT_MSG(ok, "protocol SEND failed local validation");
}

void CommLayer::tx_main() {
  for (;;) {
    const uint32_t snap = tx_bell_.snapshot();
    bool progressed = false;
    TxRequest req;
    while (tx_queue_.pop(req)) {
      post_one(req);
      progressed = true;
    }
    reclaim_send_buffers();
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) tx_bell_.wait_change(snap);
  }
}

void CommLayer::rx_main() {
  rdma::WorkCompletion wcs[32];
  for (;;) {
    const uint32_t snap = rx_bell_.snapshot();
    bool progressed = false;
    for (;;) {
      const size_t n = recv_cq_.poll(wcs);
      if (n == 0) break;
      progressed = true;
      for (size_t i = 0; i < n; ++i) {
        const rdma::WorkCompletion& wc = wcs[i];
        DARRAY_ASSERT(wc.status == rdma::WcStatus::kSuccess);
        DARRAY_ASSERT(wc.opcode == rdma::Opcode::kRecv);
        auto* bufp = reinterpret_cast<std::byte*>(wc.wr_id);
        RpcMessage msg;
        std::memcpy(&msg.hdr, bufp, sizeof(MsgHeader));
        DARRAY_ASSERT(sizeof(MsgHeader) + msg.hdr.payload_len == wc.byte_len);
        if (msg.hdr.payload_len > 0) {
          msg.payload.resize(msg.hdr.payload_len);
          std::memcpy(msg.payload.data(), bufp + sizeof(MsgHeader), msg.hdr.payload_len);
        }
        // Repost the buffer to the QP it came from before dispatching.
        rdma::QueuePair* qp = qp_by_num_[wc.qp_num];
        rdma::RecvWr rwr;
        rwr.addr = bufp;
        rwr.length = static_cast<uint32_t>(max_msg_bytes_);
        rwr.lkey = recv_mr_.lkey;
        rwr.wr_id = wc.wr_id;
        qp->post_recv(rwr);
        DLOG_DEBUG("node %u rx %s from %u chunk=%llu", node_id_,
                   msg_type_name(msg.hdr.type), msg.hdr.src_node,
                   static_cast<unsigned long long>(msg.hdr.chunk));
        dispatch_(std::move(msg));
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) {
      const uint64_t due = recv_cq_.next_due_in();
      if (due == ~0ull) {
        rx_bell_.wait_change(snap);
      } else if (due > 0) {
        // Latency model holdback. sleep_for has a scheduler-quantum floor far
        // above microsecond-scale link latencies, so short waits busy-poll.
        if (due < 20'000)
          cpu_relax();
        else
          std::this_thread::sleep_for(std::chrono::nanoseconds(due));
      }
    }
  }
}

}  // namespace darray::net
