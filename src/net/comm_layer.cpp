#include "net/comm_layer.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <span>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/trace.hpp"

namespace darray::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kReadReq: return "ReadReq";
    case MsgType::kWriteReq: return "WriteReq";
    case MsgType::kOperateReq: return "OperateReq";
    case MsgType::kWriteback: return "Writeback";
    case MsgType::kOpFlush: return "OpFlush";
    case MsgType::kReadData: return "ReadData";
    case MsgType::kWriteData: return "WriteData";
    case MsgType::kOperateResp: return "OperateResp";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kFetch: return "Fetch";
    case MsgType::kFlushReq: return "FlushReq";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kFetchData: return "FetchData";
    case MsgType::kLockAcq: return "LockAcq";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockRel: return "LockRel";
    case MsgType::kReducePart: return "ReducePart";
    case MsgType::kBatch: return "Batch";
    case MsgType::kMaxMsgType: break;
  }
  return "?";
}

const char* msg_class_name(uint8_t cls) {
  if (cls == kMsgClassDataWrite) return "DataWrite";
  return msg_type_name(static_cast<MsgType>(cls));
}

static_assert(kNumMsgClasses <= obs::kMaxMsgClasses,
              "message-class histogram registry too small for the protocol");

namespace {
// Largest possible payload: one OpFlushEntry per element in a chunk. Also an
// upper bound on a staged data WRITE (a chunk of ≤8-byte elements), which is
// what lets chaos mode stage WRITE payloads in the same arena.
size_t compute_max_msg_bytes(const ClusterConfig& cfg) {
  return sizeof(MsgHeader) + size_t{cfg.chunk_elems} * sizeof(OpFlushEntry);
}
}  // namespace

CommLayer::CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
                     rdma::Device* device, DispatchFn dispatch)
    : node_id_(node_id),
      num_nodes_(num_nodes),
      cfg_(cfg),
      device_(device),
      dispatch_(std::move(dispatch)),
      max_msg_bytes_(compute_max_msg_bytes(cfg)),
      qp_to_peer_(num_nodes, nullptr),
      outstanding_(num_nodes),
      recovery_(num_nodes),
      txb_(num_nodes),
      unsignaled_run_(num_nodes, 0),
      parked_recvs_(num_nodes) {
  // Send buffers: enough that every peer QP can hold a full unsignaled run
  // plus an open coalescing batch and slack, so acquire_send_buffer rarely
  // has to park on the CQ. Chaos mode also stages WRITE payloads here and
  // parks whole requests across backoff windows, so give it a deeper pool.
  send_buf_count_ = num_nodes_ * cfg_.selective_signal_interval * 2 + 32;
  if (cfg_.fault_plan != nullptr) send_buf_count_ *= 4;
  send_arena_ = std::make_unique<std::byte[]>(send_buf_count_ * max_msg_bytes_);
  send_mr_ = device_->reg_mr(send_arena_.get(), send_buf_count_ * max_msg_bytes_);
  send_free_.reserve(send_buf_count_);
  for (uint32_t i = 0; i < send_buf_count_; ++i) send_free_.push_back(i);
  post_wrs_.reserve(64);
  rx_scratch_.reserve(cfg_.coalesce_max_frames);

  const size_t recv_count = size_t{num_nodes_} * cfg_.qp_depth;
  recv_arena_ = std::make_unique<std::byte[]>(recv_count * max_msg_bytes_);
  recv_mr_ = device_->reg_mr(recv_arena_.get(), recv_count * max_msg_bytes_);
}

CommLayer::~CommLayer() { stop(); }

void CommLayer::set_qp(uint32_t peer, rdma::QueuePair* qp) {
  DARRAY_ASSERT(peer < num_nodes_ && peer != node_id_);
  qp_to_peer_[peer] = qp;
  if (qp->qp_num() >= qp_by_num_.size()) qp_by_num_.resize(qp->qp_num() + 1, nullptr);
  qp_by_num_[qp->qp_num()] = qp;
}

void CommLayer::start() {
  DARRAY_ASSERT(!started_);
  started_ = true;
  // Prepost the full recv ring, qp_depth buffers per peer QP.
  size_t buf = 0;
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if (peer == node_id_) continue;
    rdma::QueuePair* qp = qp_to_peer_[peer];
    DARRAY_ASSERT_MSG(qp != nullptr, "comm layer started before topology wiring");
    chaos_ = qp->fabric().fault_injector() != nullptr;
    for (uint32_t i = 0; i < cfg_.qp_depth; ++i, ++buf) {
      rdma::RecvWr wr;
      wr.addr = recv_arena_.get() + buf * max_msg_bytes_;
      wr.length = static_cast<uint32_t>(max_msg_bytes_);
      wr.lkey = recv_mr_.lkey;
      wr.wr_id = reinterpret_cast<uint64_t>(wr.addr);
      qp->post_recv(wr);
    }
  }
  tx_thread_ = std::thread([this] { tx_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
}

void CommLayer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  tx_bell_.ring();
  rx_bell_.ring();
  tx_thread_.join();
  rx_thread_.join();
  started_ = false;
}

void CommLayer::post(TxRequest req) {
  DARRAY_ASSERT_MSG(req.dst != node_id_, "self-sends must be short-circuited in the runtime");
  tx_queue_.push(std::move(req));
}

void CommLayer::fail(const CommError& err) {
  dropped_requests_.fetch_add(err.frames, std::memory_order_relaxed);
  if (error_fn_) {
    error_fn_(err);
    return;
  }
  DLOG_ERROR("node %u: unrecoverable comm failure to peer %u (%s, %s after %u attempts)",
             node_id_, err.peer, err.reason, rdma::wc_status_name(err.status),
             err.attempts);
  std::abort();
}

void CommLayer::fail_entry(uint32_t peer, Outstanding& e, const char* reason) {
  release_buf(e.buf);
  CommError err;
  err.peer = peer;
  err.opcode = e.op;
  err.status = e.last_status;
  err.attempts = e.attempts;
  err.frames = e.frames;
  err.reason = reason;
  fail(err);
}

uint64_t CommLayer::backoff_ns(uint32_t attempts) const {
  const uint32_t shift = attempts < 20 ? attempts : 20;
  const uint64_t d = cfg_.comm_backoff_base_ns << shift;
  return d < cfg_.comm_backoff_cap_ns ? d : cfg_.comm_backoff_cap_ns;
}

void CommLayer::handle_error_cqe(const rdma::WorkCompletion& wc) {
  const uint32_t peer = wc.peer_node;
  auto& fifo = outstanding_[peer];
  auto& rec = recovery_[peer];
  // Per-QP FIFO: everything ahead of the failed WR completed successfully.
  while (!fifo.empty() && fifo.front().wr_id < wc.wr_id) {
    release_buf(fifo.front().buf);
    fifo.pop_front();
  }
  if (fifo.empty() || fifo.front().wr_id != wc.wr_id) {
    // The failed WR was never tracked — a zero-copy WRITE posted outside
    // chaos mode (its source cacheline may already be recycled). Nothing to
    // replay from: surface as unrecoverable.
    CommError err;
    err.peer = peer;
    err.opcode = wc.opcode;
    err.status = wc.status;
    err.reason = "untracked WR failed";
    fail(err);
    return;
  }
  Outstanding e = std::move(fifo.front());
  fifo.pop_front();
  e.last_status = wc.status;
  if (wc.status != rdma::WcStatus::kFlushError) {
    // The entry that actually failed (flushed ones never ran) arms the
    // backoff clock for the whole peer.
    const uint64_t backoff = backoff_ns(e.attempts);
    rec.next_attempt_ns = now_ns() + backoff;
    obs::trace(obs::Ev::kFault, e.trace, static_cast<uint8_t>(wc.status),
               static_cast<uint16_t>(node_id_), peer, wc.wr_id);
    obs::trace(obs::Ev::kBackoff, e.trace, static_cast<uint8_t>(e.op),
               static_cast<uint16_t>(node_id_), peer, backoff);
    DLOG_DEBUG("node %u: wr %llu to peer %u failed (%s), retry #%u backing off",
               node_id_, static_cast<unsigned long long>(wc.wr_id), peer,
               rdma::wc_status_name(wc.status), e.attempts);
  }
  rec.moved.push_back(std::move(e));
}

void CommLayer::reclaim_send_buffers() {
  rdma::WorkCompletion wcs[32];
  for (;;) {
    const size_t n = send_cq_.poll(wcs);
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      const rdma::WorkCompletion& wc = wcs[i];
      if (wc.status != rdma::WcStatus::kSuccess) {
        handle_error_cqe(wc);
        continue;
      }
      // A signaled completion retires every earlier entry on the same QP
      // (per-QP FIFO) — the point of selective signaling.
      auto& fifo = outstanding_[wc.peer_node];
      const bool rec = obs::tracing_enabled();
      const uint64_t done_ns = rec ? now_ns() : 0;
      while (!fifo.empty() && fifo.front().wr_id <= wc.wr_id) {
        const Outstanding& front = fifo.front();
        obs::trace(obs::Ev::kWrComplete, front.trace, static_cast<uint8_t>(front.op),
                   static_cast<uint16_t>(node_id_), wc.peer_node, front.wr_id);
        if (rec) {
          // Staging time recovered from the deadline (deadline = staged +
          // comm_deadline), so retirement latency spans coalescing delay,
          // doorbell batching, the wire, and any retry backoffs.
          const uint64_t staged = front.deadline_ns - cfg_.comm_deadline_ns;
          obs::msg_class_hist(front.msg_class)
              .record(done_ns > staged ? done_ns - staged : 0);
        }
        release_buf(front.buf);
        fifo.pop_front();
      }
    }
  }
}

uint32_t CommLayer::acquire_send_buffer() {
  if (send_free_.empty()) {
    reclaim_send_buffers();
    pump_retries(now_ns());
  }
  if (send_free_.empty() && !in_flush_) {
    // Sealed-but-unposted batches may be holding every buffer; post them so
    // their signaled completions can come back and retire the arena.
    flush_all();
    reclaim_send_buffers();
  }
  while (send_free_.empty()) {
    // Park on the Tx doorbell with the send CQ armed (CQE arrivals ring the
    // bell), bounded by the earliest completion holdback or retry backoff —
    // recovery may be holding every buffer across a backoff window, and
    // nothing rings the bell when it expires.
    const uint32_t snap = tx_bell_.snapshot();
    reclaim_send_buffers();
    pump_retries(now_ns());
    if (!send_free_.empty()) break;
    uint64_t due = send_cq_.next_due_in();
    const uint64_t rdue = retry_due_in(now_ns());
    if (rdue < due) due = rdue;
    if (due == ~0ull) {
      const uint64_t t0 = tx_duty_.park_begin();
      tx_bell_.wait_change(snap);
      tx_duty_.park_end(t0);
    } else if (due > 0) {
      // sleep_for has a scheduler-quantum floor far above microsecond-scale
      // link latencies, so short waits busy-poll.
      if (due < 20'000) {
        cpu_relax();
      } else {
        const uint64_t t0 = tx_duty_.park_begin();
        std::this_thread::sleep_for(std::chrono::nanoseconds(due));
        tx_duty_.park_end(t0);
      }
    }
  }
  const uint32_t buf = send_free_.back();
  send_free_.pop_back();
  return buf;
}

void CommLayer::post_entry(uint32_t peer, Outstanding e) {
  rdma::QueuePair* qp = qp_to_peer_[peer];
  rdma::SendWr wr;
  wr.wr_id = e.wr_id;
  wr.opcode = e.op;
  wr.sge = {buf_ptr(e.buf), e.len, send_mr_.lkey};
  wr.remote_addr = e.remote_addr;
  wr.rkey = e.rkey;
  wr.signaled = true;  // recovery wants prompt retirement, not batching
  obs::trace(obs::Ev::kWrPost, e.trace, static_cast<uint8_t>(e.op),
             static_cast<uint16_t>(node_id_), peer, e.wr_id);
  outstanding_[peer].push_back(std::move(e));
  const bool ok = qp->post_send(wr);
  DARRAY_ASSERT_MSG(ok, "retry post failed local validation");
}

void CommLayer::pump_retries(uint64_t now) {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    auto& rec = recovery_[peer];
    if (rec.moved.empty() && rec.retry.empty()) continue;
    // Wait until the errored QP has flushed everything back to us — replaying
    // while CQEs are still inbound would reorder the stream.
    if (!outstanding_[peer].empty()) continue;
    if (!rec.moved.empty()) {
      // Failed/flushed entries predate anything staged in retry.
      rec.retry.insert(rec.retry.begin(), std::make_move_iterator(rec.moved.begin()),
                       std::make_move_iterator(rec.moved.end()));
      rec.moved.clear();
    }
    if (now < rec.next_attempt_ns) continue;
    rdma::QueuePair* qp = qp_to_peer_[peer];
    qp->reset();  // ERROR → RTS; no-op when already RTS
    while (!rec.retry.empty()) {
      Outstanding e = std::move(rec.retry.front());
      rec.retry.pop_front();
      if (e.attempts >= cfg_.comm_max_attempts) {
        fail_entry(peer, e, "retry attempts exhausted");
        continue;
      }
      if (now > e.deadline_ns) {
        fail_entry(peer, e, "request deadline exceeded");
        continue;
      }
      if (e.attempts > 0) {
        qp->fabric().count_retry();
        obs::trace(obs::Ev::kRetry, e.trace, static_cast<uint8_t>(e.op),
                   static_cast<uint16_t>(node_id_), peer, e.attempts);
      }
      e.attempts++;
      e.wr_id = next_wr_id_++;
      post_entry(peer, std::move(e));
      // Failed again (or a fresh injected fault): stop replaying — everything
      // just posted flows back through error/flush CQEs in order.
      if (qp->state() == rdma::QpState::kError) break;
    }
  }
}

uint64_t CommLayer::retry_due_in(uint64_t now) const {
  uint64_t best = ~0ull;
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    const auto& rec = recovery_[peer];
    if (rec.moved.empty() && rec.retry.empty()) continue;
    if (!outstanding_[peer].empty()) continue;  // waiting on CQEs, not time
    const uint64_t due = rec.next_attempt_ns > now ? rec.next_attempt_ns - now : 0;
    if (due < best) best = due;
  }
  return best;
}

uint32_t CommLayer::stage_send_msg(TxRequest& req) {
  const uint32_t buf = acquire_send_buffer();
  std::byte* p = buf_ptr(buf);
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  std::memcpy(p, &req.hdr, sizeof(MsgHeader));
  if (!req.payload.empty())
    std::memcpy(p + sizeof(MsgHeader), req.payload.data(), req.payload.size());
  return buf;
}

void CommLayer::stage_request(TxRequest& req, uint64_t now) {
  auto& rec = recovery_[req.dst];
  if (req.has_data()) {
    DARRAY_ASSERT(req.data_len <= max_msg_bytes_);
    Outstanding e;
    e.buf = acquire_send_buffer();
    e.len = req.data_len;
    e.op = rdma::Opcode::kWrite;
    e.remote_addr = req.data_remote_addr;
    e.rkey = req.data_rkey;
    e.deadline_ns = now + cfg_.comm_deadline_ns;
    e.trace = req.hdr.trace;
    e.msg_class = kMsgClassDataWrite;
    std::memcpy(buf_ptr(e.buf), req.data_src, req.data_len);
    // Payload captured: the source cacheline may be recycled.
    if (req.posted_flag) {
      req.posted_flag->store(1, std::memory_order_release);
      req.posted_flag->notify_all();
    }
    rec.retry.push_back(std::move(e));
  }
  Outstanding e;
  e.buf = stage_send_msg(req);
  e.len = static_cast<uint32_t>(sizeof(MsgHeader) + req.payload.size());
  e.op = rdma::Opcode::kSend;
  e.deadline_ns = now + cfg_.comm_deadline_ns;
  e.trace = req.hdr.trace;
  e.msg_class = static_cast<uint8_t>(req.hdr.type);
  rec.retry.push_back(std::move(e));
}

// --- coalescing Tx engine ----------------------------------------------------

void CommLayer::seal_batch(uint32_t peer) {
  TxBatch& b = txb_[peer];
  if (b.buf == kNoBuf) return;
  PendingWr p;
  std::byte* base = buf_ptr(b.buf);
  if (b.frames == 1) {
    // Singleton: strip the reserved envelope slot so the wire image is
    // byte-identical to the uncoalesced format.
    std::memmove(base, base + sizeof(MsgHeader), b.bytes - sizeof(MsgHeader));
    p.e.len = b.bytes - static_cast<uint32_t>(sizeof(MsgHeader));
  } else {
    write_batch_header(base, static_cast<uint16_t>(node_id_), b.frames,
                       b.bytes - sizeof(MsgHeader));
    p.e.len = b.bytes;
    qp_to_peer_[peer]->fabric().count_coalesced(b.frames);
  }
  p.e.buf = b.buf;
  p.e.op = rdma::Opcode::kSend;
  p.e.frames = static_cast<uint16_t>(b.frames);
  p.e.deadline_ns = b.open_ns + cfg_.comm_deadline_ns;
  p.e.trace = b.trace;
  p.e.msg_class = b.msg_class;
  p.tracked = true;
  p.wr.opcode = rdma::Opcode::kSend;
  p.wr.sge = {base, p.e.len, send_mr_.lkey};
  b.wrs.push_back(std::move(p));
  b.buf = kNoBuf;
  b.bytes = 0;
  b.frames = 0;
  b.trace = 0;
  b.msg_class = 0;
}

void CommLayer::append_frame(uint32_t peer, TxRequest& req, uint64_t now) {
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  const size_t fb = frame_bytes(req.payload.size());
  TxBatch& b = txb_[peer];

  // A frame too large to share a buffer with the kBatch envelope goes out
  // alone in the plain wire format.
  if (sizeof(MsgHeader) + fb > max_msg_bytes_) {
    DARRAY_ASSERT(fb <= max_msg_bytes_);
    seal_batch(peer);
    PendingWr p;
    p.e.buf = acquire_send_buffer();
    p.e.len = static_cast<uint32_t>(fb);
    p.e.op = rdma::Opcode::kSend;
    p.e.deadline_ns = now + cfg_.comm_deadline_ns;
    p.e.trace = req.hdr.trace;
    p.e.msg_class = static_cast<uint8_t>(req.hdr.type);
    write_frame(buf_ptr(p.e.buf), req.hdr, req.payload.data(), req.payload.size());
    p.tracked = true;
    p.wr.opcode = rdma::Opcode::kSend;
    p.wr.sge = {buf_ptr(p.e.buf), p.e.len, send_mr_.lkey};
    txb_[peer].wrs.push_back(std::move(p));
    return;
  }

  if (b.buf != kNoBuf &&
      (b.bytes + fb > max_msg_bytes_ || b.frames >= cfg_.coalesce_max_frames))
    seal_batch(peer);
  if (b.buf == kNoBuf) {
    b.buf = acquire_send_buffer();
    b.bytes = sizeof(MsgHeader);  // reserved kBatch envelope slot
    b.frames = 0;
    b.open_ns = now;
  }
  write_frame(buf_ptr(b.buf) + b.bytes, req.hdr, req.payload.data(), req.payload.size());
  b.bytes += static_cast<uint32_t>(fb);
  b.frames++;
  if (b.frames == 1) b.msg_class = static_cast<uint8_t>(req.hdr.type);
  if (b.trace == 0) b.trace = req.hdr.trace;
}

void CommLayer::enqueue_tx(TxRequest& req) {
  const uint32_t peer = req.dst;
  rdma::QueuePair* qp = qp_to_peer_[peer];
  DARRAY_ASSERT(qp != nullptr);
  const uint64_t now = now_ns();
  auto& rec = recovery_[peer];

  // Recovery in progress for this peer: everything staged but unposted lines
  // up in the retry queue first, then this request behind it, so the peer
  // still sees one FIFO stream.
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_pending(peer);
    stage_request(req, now);
    return;
  }

  if (req.has_data()) {
    // Wire order: frames already packed precede the WRITE, and the WRITE
    // precedes this request's notification SEND — so seal the open batch
    // before appending the WRITE to the pending run.
    seal_batch(peer);
    PendingWr p;
    p.wr.opcode = rdma::Opcode::kWrite;
    p.wr.remote_addr = req.data_remote_addr;
    p.wr.rkey = req.data_rkey;
    if (chaos_) {
      // Under fault injection the WRITE must be replayable after its source
      // cacheline is recycled, so stage the payload like a SEND's.
      DARRAY_ASSERT(req.data_len <= max_msg_bytes_);
      p.e.buf = acquire_send_buffer();
      p.e.len = req.data_len;
      p.e.op = rdma::Opcode::kWrite;
      p.e.remote_addr = req.data_remote_addr;
      p.e.rkey = req.data_rkey;
      p.e.deadline_ns = now + cfg_.comm_deadline_ns;
      p.e.trace = req.hdr.trace;
      p.e.msg_class = kMsgClassDataWrite;
      std::memcpy(buf_ptr(p.e.buf), req.data_src, req.data_len);
      p.wr.sge = {buf_ptr(p.e.buf), req.data_len, send_mr_.lkey};
      p.tracked = true;
      // Payload captured: the source cacheline may be recycled.
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
    } else {
      // Zero-copy: the source must stay live until the WR is actually posted,
      // so the release hook fires at flush time.
      p.wr.sge = {req.data_src, req.data_len, req.data_lkey};
      p.wr.signaled = false;
      p.posted_flag = req.posted_flag;
    }
    txb_[peer].wrs.push_back(std::move(p));
  }

  append_frame(peer, req, now);
}

void CommLayer::flush_peer(uint32_t peer, bool seal_open) {
  TxBatch& b = txb_[peer];
  if (seal_open) seal_batch(peer);
  if (b.wrs.empty()) return;
  const bool was_in_flush = in_flush_;
  in_flush_ = true;
  rdma::QueuePair* qp = qp_to_peer_[peer];
  auto& rec = recovery_[peer];
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_pending(peer);
    in_flush_ = was_in_flush;
    return;
  }
  // Assign wr_ids and signaling in post order, enter tracked entries into the
  // outstanding FIFO, then ring the doorbell once with the whole run.
  post_wrs_.clear();
  uint32_t& run = unsignaled_run_[peer];
  for (PendingWr& p : b.wrs) {
    p.wr.wr_id = next_wr_id_++;
    if (p.tracked) {
      if (p.e.op == rdma::Opcode::kSend) {
        // Selective signaling: request a completion once per interval per QP
        // so the signaled CQE retires the whole unsignaled run behind it.
        // (Errors are always signaled by the fabric.)
        p.wr.signaled = ++run >= cfg_.selective_signal_interval;
        if (p.wr.signaled) run = 0;
      }  // chaos-staged WRITEs stay signaled for prompt retirement
      p.e.wr_id = p.wr.wr_id;
      p.e.attempts = 1;
      obs::trace(obs::Ev::kWrPost, p.e.trace, static_cast<uint8_t>(p.e.op),
                 static_cast<uint16_t>(node_id_), peer, p.e.wr_id);
      outstanding_[peer].push_back(p.e);
    }
    post_wrs_.push_back(p.wr);
  }
  const bool ok = qp->post_send(std::span<const rdma::SendWr>(post_wrs_));
  DARRAY_ASSERT_MSG(ok, "doorbell-batched post failed local validation");
  // The fabric executes transfers at post time, so zero-copy sources are
  // consumed: release them.
  for (PendingWr& p : b.wrs) {
    if (p.posted_flag) {
      p.posted_flag->store(1, std::memory_order_release);
      p.posted_flag->notify_all();
    }
  }
  b.wrs.clear();
  in_flush_ = was_in_flush;
}

void CommLayer::flush_all() {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) flush_peer(peer);
}

void CommLayer::flush_due(uint64_t now) {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    TxBatch& b = txb_[peer];
    if (b.buf != kNoBuf && now - b.open_ns >= cfg_.coalesce_flush_ns)
      flush_peer(peer, /*seal_open=*/true);
    else if (!b.wrs.empty())
      flush_peer(peer, /*seal_open=*/false);  // post full batches, keep packing
  }
}

void CommLayer::stage_pending(uint32_t peer) {
  seal_batch(peer);
  TxBatch& b = txb_[peer];
  if (b.wrs.empty()) return;
  const bool was_in_flush = in_flush_;
  in_flush_ = true;
  auto& rec = recovery_[peer];
  const uint64_t now = now_ns();
  for (PendingWr& p : b.wrs) {
    if (!p.tracked) {
      // Zero-copy WRITE whose source is still live: capture the payload into
      // the arena so it can be replayed, then release the source.
      p.e.buf = acquire_send_buffer();
      p.e.len = p.wr.sge.length;
      p.e.op = rdma::Opcode::kWrite;
      p.e.remote_addr = p.wr.remote_addr;
      p.e.rkey = p.wr.rkey;
      p.e.deadline_ns = now + cfg_.comm_deadline_ns;
      p.e.msg_class = kMsgClassDataWrite;
      std::memcpy(buf_ptr(p.e.buf), p.wr.sge.addr, p.wr.sge.length);
      if (p.posted_flag) {
        p.posted_flag->store(1, std::memory_order_release);
        p.posted_flag->notify_all();
      }
    }
    rec.retry.push_back(std::move(p.e));
  }
  b.wrs.clear();
  in_flush_ = was_in_flush;
}

// --- legacy immediate-post path (cfg.coalesce_enabled == false) --------------

void CommLayer::post_one(TxRequest& req) {
  rdma::QueuePair* qp = qp_to_peer_[req.dst];
  DARRAY_ASSERT(qp != nullptr);
  const uint64_t now = now_ns();
  auto& rec = recovery_[req.dst];

  // Recovery in progress for this peer: new requests queue up behind the
  // replay so the peer still sees one FIFO stream.
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_request(req, now);
    return;
  }

  // 1. Optional one-sided data WRITE; FIFO per QP orders it before the SEND.
  if (req.has_data()) {
    if (chaos_) {
      // Under fault injection the WRITE must be replayable after its source
      // cacheline is recycled, so stage the payload like a SEND's.
      DARRAY_ASSERT(req.data_len <= max_msg_bytes_);
      Outstanding e;
      e.buf = acquire_send_buffer();
      e.len = req.data_len;
      e.op = rdma::Opcode::kWrite;
      e.remote_addr = req.data_remote_addr;
      e.rkey = req.data_rkey;
      e.attempts = 1;
      e.deadline_ns = now + cfg_.comm_deadline_ns;
      e.wr_id = next_wr_id_++;
      e.trace = req.hdr.trace;
      e.msg_class = kMsgClassDataWrite;
      std::memcpy(buf_ptr(e.buf), req.data_src, req.data_len);
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
      post_entry(req.dst, std::move(e));
      if (qp->state() == rdma::QpState::kError) {
        // The WRITE just drew a fault; the SEND must line up behind it.
        stage_request(req, now);
        return;
      }
    } else {
      rdma::SendWr wr;
      wr.opcode = rdma::Opcode::kWrite;
      wr.sge = {req.data_src, req.data_len, req.data_lkey};
      wr.remote_addr = req.data_remote_addr;
      wr.rkey = req.data_rkey;
      wr.signaled = false;  // source buffer release is handled via posted_flag
      wr.wr_id = next_wr_id_++;
      const bool ok = qp->post_send(wr);
      DARRAY_ASSERT_MSG(ok, "data WRITE failed local validation");
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
    }
  }

  // 2. The two-sided protocol message.
  Outstanding e;
  e.buf = stage_send_msg(req);
  e.len = static_cast<uint32_t>(sizeof(MsgHeader) + req.payload.size());
  e.op = rdma::Opcode::kSend;
  e.attempts = 1;
  e.deadline_ns = now + cfg_.comm_deadline_ns;
  e.wr_id = next_wr_id_++;
  e.trace = req.hdr.trace;
  e.msg_class = static_cast<uint8_t>(req.hdr.type);

  rdma::SendWr wr;
  wr.opcode = rdma::Opcode::kSend;
  wr.sge = {buf_ptr(e.buf), e.len, send_mr_.lkey};
  wr.wr_id = e.wr_id;
  // Selective signaling: request a completion once per interval per QP so the
  // signaled CQE retires the whole unsignaled run behind it. (Errors are
  // always signaled by the fabric, so recovery still sees every failure.)
  uint32_t& run = unsignaled_run_[req.dst];
  wr.signaled = ++run >= cfg_.selective_signal_interval;
  if (wr.signaled) run = 0;
  obs::trace(obs::Ev::kWrPost, e.trace, static_cast<uint8_t>(e.op),
             static_cast<uint16_t>(node_id_), req.dst, e.wr_id);
  outstanding_[req.dst].push_back(std::move(e));
  const bool ok = qp->post_send(wr);
  DARRAY_ASSERT_MSG(ok, "protocol SEND failed local validation");
}

void CommLayer::tx_main() {
  const bool coalesce = cfg_.coalesce_enabled;
  tx_duty_.on_start();
  for (;;) {
    const uint32_t snap = tx_bell_.snapshot();
    bool progressed = false;
    TxRequest req;
    uint32_t drained = 0;
    while (tx_queue_.pop(req)) {
      if (coalesce)
        enqueue_tx(req);
      else
        post_one(req);
      progressed = true;
      // Long drains must not hold frames past the coalescing deadline.
      if (coalesce && (++drained & 63u) == 0) flush_due(now_ns());
    }
    // Drain pass over: ring each peer's doorbell once with everything staged.
    if (coalesce) flush_all();
    reclaim_send_buffers();
    pump_retries(now_ns());
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) {
      // Completions may be held back by the latency model, and retries wait
      // out their backoff window; neither rings the bell again, so bound the
      // park by whichever is due first.
      uint64_t due = send_cq_.next_due_in();
      const uint64_t rdue = retry_due_in(now_ns());
      if (rdue < due) due = rdue;
      if (due == ~0ull) {
        const uint64_t t0 = tx_duty_.park_begin();
        tx_bell_.wait_change(snap);
        tx_duty_.park_end(t0);
      } else if (due > 0) {
        if (due < 20'000) {
          cpu_relax();
        } else {
          const uint64_t t0 = tx_duty_.park_begin();
          std::this_thread::sleep_for(std::chrono::nanoseconds(due));
          tx_duty_.park_end(t0);
        }
      }
    }
  }
  tx_duty_.on_stop();
}

void CommLayer::rx_main() {
  rdma::WorkCompletion wcs[32];
  rx_duty_.on_start();
  for (;;) {
    const uint32_t snap = rx_bell_.snapshot();
    bool progressed = false;
    for (;;) {
      const size_t n = recv_cq_.poll(wcs);
      if (n == 0) break;
      progressed = true;
      for (size_t i = 0; i < n; ++i) {
        const rdma::WorkCompletion& wc = wcs[i];
        DARRAY_ASSERT(wc.opcode == rdma::Opcode::kRecv);
        if (wc.status == rdma::WcStatus::kFlushError) {
          // Our QP errored and flushed its recv ring. Park the buffer; it is
          // reposted once the Tx side has reset the QP (reposting now would
          // just flush again).
          rdma::RecvWr rwr;
          rwr.addr = reinterpret_cast<std::byte*>(wc.wr_id);
          rwr.length = static_cast<uint32_t>(max_msg_bytes_);
          rwr.lkey = recv_mr_.lkey;
          rwr.wr_id = wc.wr_id;
          parked_recvs_[wc.peer_node].push_back(rwr);
          continue;
        }
        DARRAY_ASSERT(wc.status == rdma::WcStatus::kSuccess);
        auto* bufp = reinterpret_cast<std::byte*>(wc.wr_id);
        MsgHeader hdr;
        std::memcpy(&hdr, bufp, sizeof(MsgHeader));
        DARRAY_ASSERT(sizeof(MsgHeader) + hdr.payload_len == wc.byte_len);
        rx_scratch_.clear();
        if (hdr.type == MsgType::kBatch) {
          // Coalesced SEND: unpack every frame (copying payloads out of the
          // recv ring) so the buffer can be reposted before dispatch.
          BatchReader r(bufp + sizeof(MsgHeader), hdr.payload_len, hdr.aux);
          MsgHeader fh;
          const std::byte* fp = nullptr;
          while (r.next(fh, fp)) {
            RpcMessage m;
            m.hdr = fh;
            if (fh.payload_len > 0) m.payload.assign(fp, fh.payload_len);
            rx_scratch_.push_back(std::move(m));
          }
          DARRAY_ASSERT_MSG(r.valid(), "malformed coalesced batch image");
        } else {
          RpcMessage m;
          m.hdr = hdr;
          if (hdr.payload_len > 0) m.payload.assign(bufp + sizeof(MsgHeader), hdr.payload_len);
          rx_scratch_.push_back(std::move(m));
        }
        // Repost the buffer to the QP it came from before dispatching.
        rdma::QueuePair* qp = qp_by_num_[wc.qp_num];
        rdma::RecvWr rwr;
        rwr.addr = bufp;
        rwr.length = static_cast<uint32_t>(max_msg_bytes_);
        rwr.lkey = recv_mr_.lkey;
        rwr.wr_id = wc.wr_id;
        qp->post_recv(rwr);
        for (RpcMessage& m : rx_scratch_) {
          DLOG_DEBUG("node %u rx %s from %u chunk=%llu", node_id_,
                     msg_type_name(m.hdr.type), m.hdr.src_node,
                     static_cast<unsigned long long>(m.hdr.chunk));
          dispatch_(std::move(m));
        }
        rx_scratch_.clear();
      }
    }
    // Re-arm parked recv buffers once their QP is back in RTS. A lost race
    // (the QP errors again mid-repost) just parks them again via flush CQEs.
    bool any_parked = false;
    for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
      auto& parked = parked_recvs_[peer];
      if (parked.empty()) continue;
      rdma::QueuePair* qp = qp_to_peer_[peer];
      if (qp->state() != rdma::QpState::kRts) {
        any_parked = true;
        continue;
      }
      for (const rdma::RecvWr& r : parked) qp->post_recv(r);
      parked.clear();
      progressed = true;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) {
      uint64_t due = recv_cq_.next_due_in();
      // Parked buffers wait on the Tx thread's QP reset, which rings no bell
      // here — poll for it.
      if (any_parked && due > 20'000) due = 20'000;
      if (due == ~0ull) {
        const uint64_t t0 = rx_duty_.park_begin();
        rx_bell_.wait_change(snap);
        rx_duty_.park_end(t0);
      } else if (due > 0) {
        // Latency model holdback. sleep_for has a scheduler-quantum floor far
        // above microsecond-scale link latencies, so short waits busy-poll.
        if (due < 20'000) {
          cpu_relax();
        } else {
          const uint64_t t0 = rx_duty_.park_begin();
          std::this_thread::sleep_for(std::chrono::nanoseconds(due));
          rx_duty_.park_end(t0);
        }
      }
    }
  }
  rx_duty_.on_stop();
}

}  // namespace darray::net
