#include "net/comm_layer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/thread_registry.hpp"
#include "obs/trace.hpp"

namespace darray::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "Invalid";
    case MsgType::kReadReq: return "ReadReq";
    case MsgType::kWriteReq: return "WriteReq";
    case MsgType::kOperateReq: return "OperateReq";
    case MsgType::kWriteback: return "Writeback";
    case MsgType::kOpFlush: return "OpFlush";
    case MsgType::kReadData: return "ReadData";
    case MsgType::kWriteData: return "WriteData";
    case MsgType::kOperateResp: return "OperateResp";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kFetch: return "Fetch";
    case MsgType::kFlushReq: return "FlushReq";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kFetchData: return "FetchData";
    case MsgType::kLockAcq: return "LockAcq";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockRel: return "LockRel";
    case MsgType::kReducePart: return "ReducePart";
    case MsgType::kClientReq: return "ClientReq";
    case MsgType::kClientResp: return "ClientResp";
    case MsgType::kBatch: return "Batch";
    case MsgType::kRndzReq: return "RndzReq";
    case MsgType::kRndzAck: return "RndzAck";
    case MsgType::kRndzFin: return "RndzFin";
    case MsgType::kMaxMsgType: break;
  }
  return "?";
}

const char* msg_class_name(uint8_t cls) {
  if (cls == kMsgClassDataWrite) return "DataWrite";
  if (cls == kMsgClassRndzData) return "RndzData";
  return msg_type_name(static_cast<MsgType>(cls));
}

static_assert(kNumMsgClasses <= obs::kMaxMsgClasses,
              "message-class histogram registry too small for the protocol");

namespace {
// Largest possible payload: one OpFlushEntry per element in a chunk. Also an
// upper bound on a staged data WRITE (a chunk of ≤8-byte elements), which is
// what lets chaos mode stage WRITE payloads in the same arena.
size_t compute_max_msg_bytes(const ClusterConfig& cfg) {
  return sizeof(MsgHeader) + size_t{cfg.chunk_elems} * sizeof(OpFlushEntry);
}
}  // namespace

CommLayer::CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
                     rdma::Device* device, DispatchFn dispatch)
    : node_id_(node_id),
      num_nodes_(num_nodes),
      cfg_(cfg),
      device_(device),
      dispatch_(std::move(dispatch)),
      max_msg_bytes_(compute_max_msg_bytes(cfg)),
      qp_to_peer_(num_nodes, nullptr),
      outstanding_(num_nodes),
      recovery_(num_nodes),
      txb_(num_nodes),
      unsignaled_run_(num_nodes, 0),
      parked_recvs_(num_nodes) {
  // Send buffers: enough that every peer QP can hold a full unsignaled run
  // plus an open coalescing batch and slack, so acquire_send_buffer rarely
  // has to park on the CQ. Chaos mode also stages WRITE payloads here and
  // parks whole requests across backoff windows, so give it a deeper pool.
  send_buf_count_ = num_nodes_ * cfg_.selective_signal_interval * 2 + 32;
  if (cfg_.fault_plan != nullptr) {
    send_buf_count_ *= 4;
    // Chaos mode stages eager-fallback payloads (a NAKed rendezvous reverts
    // to chunked arena staging), so reserve room for a few concurrent
    // fallbacks of several-threshold size. Fallback payloads much larger
    // than 8× the threshold can exhaust the arena and wedge the Tx thread;
    // chaos tests must size transfers (or the threshold) accordingly.
    if (cfg_.rendezvous_enabled) {
      const size_t fallback_bytes = size_t{8} * cfg_.rendezvous_threshold_bytes;
      const size_t chunks = (fallback_bytes + max_msg_bytes_ - 1) / max_msg_bytes_;
      send_buf_count_ += static_cast<uint32_t>(4 * chunks);
    }
  }
  send_arena_ = std::make_unique<std::byte[]>(send_buf_count_ * max_msg_bytes_);
  send_mr_ = device_->reg_mr(send_arena_.get(), send_buf_count_ * max_msg_bytes_);
  send_free_.reserve(send_buf_count_);
  for (uint32_t i = 0; i < send_buf_count_; ++i) send_free_.push_back(i);
  post_wrs_.reserve(64);
  rx_scratch_.reserve(cfg_.coalesce_max_frames);

  const size_t recv_count = size_t{num_nodes_} * cfg_.qp_depth;
  recv_arena_ = std::make_unique<std::byte[]>(recv_count * max_msg_bytes_);
  recv_mr_ = device_->reg_mr(recv_arena_.get(), recv_count * max_msg_bytes_);

  // Rendezvous lease table (slot index rides in the low 16 bits of the wire
  // lease id) and per-peer Tx byte counters.
  DARRAY_ASSERT(cfg_.rendezvous_max_leases <= 0x10000);
  leases_.resize(cfg_.rendezvous_max_leases);
  peer_tx_ = std::make_unique<PeerTxCounters[]>(num_nodes_);
}

CommLayer::~CommLayer() { stop(); }

void CommLayer::set_qp(uint32_t peer, rdma::QueuePair* qp) {
  DARRAY_ASSERT(peer < num_nodes_ && peer != node_id_);
  qp_to_peer_[peer] = qp;
  if (qp->qp_num() >= qp_by_num_.size()) qp_by_num_.resize(qp->qp_num() + 1, nullptr);
  qp_by_num_[qp->qp_num()] = qp;
}

void CommLayer::start() {
  DARRAY_ASSERT(!started_);
  started_ = true;
  // Prepost the full recv ring, qp_depth buffers per peer QP.
  size_t buf = 0;
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if (peer == node_id_) continue;
    rdma::QueuePair* qp = qp_to_peer_[peer];
    DARRAY_ASSERT_MSG(qp != nullptr, "comm layer started before topology wiring");
    chaos_ = qp->fabric().fault_injector() != nullptr;
    for (uint32_t i = 0; i < cfg_.qp_depth; ++i, ++buf) {
      rdma::RecvWr wr;
      wr.addr = recv_arena_.get() + buf * max_msg_bytes_;
      wr.length = static_cast<uint32_t>(max_msg_bytes_);
      wr.lkey = recv_mr_.lkey;
      wr.wr_id = reinterpret_cast<uint64_t>(wr.addr);
      qp->post_recv(wr);
    }
  }
  tx_thread_ = std::thread([this] { tx_main(); });
  rx_thread_ = std::thread([this] { rx_main(); });
}

void CommLayer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  tx_bell_.ring();
  rx_bell_.ring();
  tx_thread_.join();
  rx_thread_.join();
  started_ = false;
}

void CommLayer::post(TxRequest req) {
  DARRAY_ASSERT_MSG(req.dst != node_id_, "self-sends must be short-circuited in the runtime");
  tx_queue_.push(std::move(req));
}

void CommLayer::fail(const CommError& err) {
  dropped_requests_.fetch_add(err.frames, std::memory_order_relaxed);
  if (error_fn_) {
    error_fn_(err);
    return;
  }
  DLOG_ERROR("node %u: unrecoverable comm failure to peer %u (%s, %s after %u attempts)",
             node_id_, err.peer, err.reason, rdma::wc_status_name(err.status),
             err.attempts);
  std::abort();
}

void CommLayer::fail_entry(uint32_t peer, Outstanding& e, const char* reason) {
  if (e.rndz_id != 0) {
    // An abandoned pull chunk abandons the whole pull, but loses nothing:
    // the message is still parked in the sender's lease, so NAK it back to
    // the eager path instead of surfacing an unrecoverable error. Sibling
    // chunks of the dead pull are dropped as they surface (map lookup miss).
    auto it = rndz_pulls_.find(e.rndz_id);
    if (it != rndz_pulls_.end()) {
      DLOG_DEBUG("node %u: rendezvous pull %u from peer %u abandoned (%s), NAKing",
                 node_id_, e.rndz_id, peer, reason);
      rndz_nak_.push_back({it->second.src, it->second.lease_id, it->second.trace});
      rndz_pulls_.erase(it);
    }
    return;
  }
  release_buf(e.buf);
  CommError err;
  err.peer = peer;
  err.opcode = e.op;
  err.status = e.last_status;
  err.attempts = e.attempts;
  err.frames = e.frames;
  err.reason = reason;
  fail(err);
}

uint64_t CommLayer::backoff_ns(uint32_t attempts) const {
  const uint32_t shift = attempts < 20 ? attempts : 20;
  const uint64_t d = cfg_.comm_backoff_base_ns << shift;
  return d < cfg_.comm_backoff_cap_ns ? d : cfg_.comm_backoff_cap_ns;
}

void CommLayer::handle_error_cqe(const rdma::WorkCompletion& wc) {
  const uint32_t peer = wc.peer_node;
  auto& fifo = outstanding_[peer];
  auto& rec = recovery_[peer];
  // Per-QP FIFO: everything ahead of the failed WR completed successfully.
  while (!fifo.empty() && fifo.front().wr_id < wc.wr_id) {
    if (fifo.front().rndz_last) rndz_done_.push_back(fifo.front().rndz_id);
    release_buf(fifo.front().buf);
    fifo.pop_front();
  }
  if (fifo.empty() || fifo.front().wr_id != wc.wr_id) {
    // The failed WR was never tracked — a zero-copy WRITE posted outside
    // chaos mode (its source cacheline may already be recycled). Nothing to
    // replay from: surface as unrecoverable.
    CommError err;
    err.peer = peer;
    err.opcode = wc.opcode;
    err.status = wc.status;
    err.reason = "untracked WR failed";
    fail(err);
    return;
  }
  Outstanding e = std::move(fifo.front());
  fifo.pop_front();
  e.last_status = wc.status;
  if (wc.status != rdma::WcStatus::kFlushError) {
    // The entry that actually failed (flushed ones never ran) arms the
    // backoff clock for the whole peer.
    const uint64_t backoff = backoff_ns(e.attempts);
    rec.next_attempt_ns = now_ns() + backoff;
    obs::trace(obs::Ev::kFault, e.trace, static_cast<uint8_t>(wc.status),
               static_cast<uint16_t>(node_id_), peer, wc.wr_id);
    obs::trace(obs::Ev::kBackoff, e.trace, static_cast<uint8_t>(e.op),
               static_cast<uint16_t>(node_id_), peer, backoff);
    DLOG_DEBUG("node %u: wr %llu to peer %u failed (%s), retry #%u backing off",
               node_id_, static_cast<unsigned long long>(wc.wr_id), peer,
               rdma::wc_status_name(wc.status), e.attempts);
  }
  rec.moved.push_back(std::move(e));
}

void CommLayer::reclaim_send_buffers() {
  rdma::WorkCompletion wcs[32];
  for (;;) {
    const size_t n = send_cq_.poll(wcs);
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      const rdma::WorkCompletion& wc = wcs[i];
      if (wc.status != rdma::WcStatus::kSuccess) {
        handle_error_cqe(wc);
        continue;
      }
      // A signaled completion retires every earlier entry on the same QP
      // (per-QP FIFO) — the point of selective signaling.
      auto& fifo = outstanding_[wc.peer_node];
      const bool rec = obs::tracing_enabled();
      const uint64_t done_ns = rec ? now_ns() : 0;
      while (!fifo.empty() && fifo.front().wr_id <= wc.wr_id) {
        const Outstanding& front = fifo.front();
        obs::trace(obs::Ev::kWrComplete, front.trace, static_cast<uint8_t>(front.op),
                   static_cast<uint16_t>(node_id_), wc.peer_node, front.wr_id);
        if (rec) {
          // Staging time recovered from the deadline (deadline = staged +
          // comm_deadline), so retirement latency spans coalescing delay,
          // doorbell batching, the wire, and any retry backoffs.
          const uint64_t staged = front.deadline_ns - cfg_.comm_deadline_ns;
          obs::msg_class_hist(front.msg_class)
              .record(done_ns > staged ? done_ns - staged : 0);
        }
        // A retired final READ chunk completes its rendezvous pull; the
        // dispatch + FIN happen at the Tx loop's top level (never nested
        // inside a flush), so just queue the id.
        if (front.rndz_last) rndz_done_.push_back(front.rndz_id);
        release_buf(front.buf);
        fifo.pop_front();
      }
    }
  }
}

uint32_t CommLayer::acquire_send_buffer() {
  if (send_free_.empty()) {
    reclaim_send_buffers();
    pump_retries(now_ns());
  }
  if (send_free_.empty() && !in_flush_) {
    // Sealed-but-unposted batches may be holding every buffer; post them so
    // their signaled completions can come back and retire the arena.
    flush_all();
    reclaim_send_buffers();
  }
  while (send_free_.empty()) {
    // Park on the Tx doorbell with the send CQ armed (CQE arrivals ring the
    // bell), bounded by the earliest completion holdback or retry backoff —
    // recovery may be holding every buffer across a backoff window, and
    // nothing rings the bell when it expires.
    const uint32_t snap = tx_bell_.snapshot();
    reclaim_send_buffers();
    pump_retries(now_ns());
    if (!send_free_.empty()) break;
    uint64_t due = send_cq_.next_due_in();
    const uint64_t rdue = retry_due_in(now_ns());
    if (rdue < due) due = rdue;
    if (due == ~0ull) {
      const uint64_t t0 = tx_duty_.park_begin();
      tx_bell_.wait_change(snap);
      tx_duty_.park_end(t0);
    } else if (due > 0) {
      // sleep_for has a scheduler-quantum floor far above microsecond-scale
      // link latencies, so short waits busy-poll.
      if (due < 20'000) {
        cpu_relax();
      } else {
        const uint64_t t0 = tx_duty_.park_begin();
        std::this_thread::sleep_for(std::chrono::nanoseconds(due));
        tx_duty_.park_end(t0);
      }
    }
  }
  const uint32_t buf = send_free_.back();
  send_free_.pop_back();
  return buf;
}

void CommLayer::post_entry(uint32_t peer, Outstanding e) {
  rdma::QueuePair* qp = qp_to_peer_[peer];
  rdma::SendWr wr;
  wr.wr_id = e.wr_id;
  wr.opcode = e.op;
  // READ pull chunks re-read into their original destination slice (an
  // idempotent replay); everything else replays from its arena buffer.
  wr.sge = e.op == rdma::Opcode::kRead
               ? rdma::Sge{e.read_dst, e.len, e.read_lkey}
               : rdma::Sge{buf_ptr(e.buf), e.len, send_mr_.lkey};
  wr.remote_addr = e.remote_addr;
  wr.rkey = e.rkey;
  wr.signaled = true;  // recovery wants prompt retirement, not batching
  obs::trace(obs::Ev::kWrPost, e.trace, static_cast<uint8_t>(e.op),
             static_cast<uint16_t>(node_id_), peer, e.wr_id);
  outstanding_[peer].push_back(std::move(e));
  const bool ok = qp->post_send(wr);
  DARRAY_ASSERT_MSG(ok, "retry post failed local validation");
}

void CommLayer::pump_retries(uint64_t now) {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    auto& rec = recovery_[peer];
    if (rec.moved.empty() && rec.retry.empty()) continue;
    // Wait until the errored QP has flushed everything back to us — replaying
    // while CQEs are still inbound would reorder the stream.
    if (!outstanding_[peer].empty()) continue;
    if (!rec.moved.empty()) {
      // Failed/flushed entries predate anything staged in retry.
      rec.retry.insert(rec.retry.begin(), std::make_move_iterator(rec.moved.begin()),
                       std::make_move_iterator(rec.moved.end()));
      rec.moved.clear();
    }
    if (now < rec.next_attempt_ns) continue;
    rdma::QueuePair* qp = qp_to_peer_[peer];
    qp->reset();  // ERROR → RTS; no-op when already RTS
    while (!rec.retry.empty()) {
      Outstanding e = std::move(rec.retry.front());
      rec.retry.pop_front();
      if (e.rndz_id != 0 && rndz_pulls_.find(e.rndz_id) == rndz_pulls_.end()) {
        // Chunk of a pull that was already abandoned (a sibling chunk NAKed
        // it): drop silently — the sender is re-sending eagerly.
        continue;
      }
      if (e.attempts >= cfg_.comm_max_attempts) {
        fail_entry(peer, e, "retry attempts exhausted");
        continue;
      }
      if (now > e.deadline_ns) {
        fail_entry(peer, e, "request deadline exceeded");
        continue;
      }
      if (e.attempts > 0) {
        qp->fabric().count_retry();
        obs::trace(obs::Ev::kRetry, e.trace, static_cast<uint8_t>(e.op),
                   static_cast<uint16_t>(node_id_), peer, e.attempts);
      }
      e.attempts++;
      e.wr_id = next_wr_id_++;
      post_entry(peer, std::move(e));
      // Failed again (or a fresh injected fault): stop replaying — everything
      // just posted flows back through error/flush CQEs in order.
      if (qp->state() == rdma::QpState::kError) break;
    }
  }
}

uint64_t CommLayer::retry_due_in(uint64_t now) const {
  uint64_t best = ~0ull;
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    const auto& rec = recovery_[peer];
    if (rec.moved.empty() && rec.retry.empty()) continue;
    if (!outstanding_[peer].empty()) continue;  // waiting on CQEs, not time
    const uint64_t due = rec.next_attempt_ns > now ? rec.next_attempt_ns - now : 0;
    if (due < best) best = due;
  }
  return best;
}

uint32_t CommLayer::stage_send_msg(TxRequest& req) {
  const uint32_t buf = acquire_send_buffer();
  std::byte* p = buf_ptr(buf);
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  std::memcpy(p, &req.hdr, sizeof(MsgHeader));
  if (!req.payload.empty())
    std::memcpy(p + sizeof(MsgHeader), req.payload.data(), req.payload.size());
  return buf;
}

void CommLayer::stage_data_chunks(TxRequest& req, uint64_t now,
                                  std::deque<Outstanding>& out) {
  // Chunked to the arena buffer size so payloads larger than one buffer
  // (eager fallback of a NAKed rendezvous) survive chaos staging; each chunk
  // is an independent replayable WRITE to its own remote slice.
  const uint32_t max_chunk = static_cast<uint32_t>(max_msg_bytes_);
  for (uint32_t off = 0; off < req.data_len; off += max_chunk) {
    const uint32_t n = std::min(max_chunk, req.data_len - off);
    Outstanding e;
    e.buf = acquire_send_buffer();
    e.len = n;
    e.op = rdma::Opcode::kWrite;
    e.remote_addr = req.data_remote_addr + off;
    e.rkey = req.data_rkey;
    e.deadline_ns = now + cfg_.comm_deadline_ns;
    e.trace = req.hdr.trace;
    e.msg_class = kMsgClassDataWrite;
    std::memcpy(buf_ptr(e.buf), req.data_src + off, n);
    out.push_back(std::move(e));
  }
  // Payload fully captured: the source cacheline may be recycled.
  if (req.posted_flag) {
    req.posted_flag->store(1, std::memory_order_release);
    req.posted_flag->notify_all();
  }
}

CommLayer::Outstanding CommLayer::make_send_entry(TxRequest& req, uint64_t now) {
  Outstanding e;
  e.buf = stage_send_msg(req);
  e.len = static_cast<uint32_t>(sizeof(MsgHeader) + req.payload.size());
  e.op = rdma::Opcode::kSend;
  e.deadline_ns = now + cfg_.comm_deadline_ns;
  e.trace = req.hdr.trace;
  e.msg_class = static_cast<uint8_t>(req.hdr.type);
  return e;
}

void CommLayer::stage_request(TxRequest& req, uint64_t now) {
  auto& rec = recovery_[req.dst];
  if (req.has_data()) stage_data_chunks(req, now, rec.retry);
  rec.retry.push_back(make_send_entry(req, now));
}

// --- coalescing Tx engine ----------------------------------------------------

void CommLayer::seal_batch(uint32_t peer) {
  TxBatch& b = txb_[peer];
  if (b.buf == kNoBuf) return;
  PendingWr p;
  std::byte* base = buf_ptr(b.buf);
  if (b.frames == 1) {
    // Singleton: strip the reserved envelope slot so the wire image is
    // byte-identical to the uncoalesced format.
    std::memmove(base, base + sizeof(MsgHeader), b.bytes - sizeof(MsgHeader));
    p.e.len = b.bytes - static_cast<uint32_t>(sizeof(MsgHeader));
  } else {
    write_batch_header(base, static_cast<uint16_t>(node_id_), b.frames,
                       b.bytes - sizeof(MsgHeader));
    p.e.len = b.bytes;
    qp_to_peer_[peer]->fabric().count_coalesced(b.frames);
  }
  p.e.buf = b.buf;
  p.e.op = rdma::Opcode::kSend;
  p.e.frames = static_cast<uint16_t>(b.frames);
  p.e.deadline_ns = b.open_ns + cfg_.comm_deadline_ns;
  p.e.trace = b.trace;
  p.e.msg_class = b.msg_class;
  p.tracked = true;
  p.wr.opcode = rdma::Opcode::kSend;
  p.wr.sge = {base, p.e.len, send_mr_.lkey};
  b.wrs.push_back(std::move(p));
  b.buf = kNoBuf;
  b.bytes = 0;
  b.frames = 0;
  b.trace = 0;
  b.msg_class = 0;
}

void CommLayer::append_frame(uint32_t peer, TxRequest& req, uint64_t now) {
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  const size_t fb = frame_bytes(req.payload.size());
  TxBatch& b = txb_[peer];

  // A frame too large to share a buffer with the kBatch envelope goes out
  // alone in the plain wire format.
  if (sizeof(MsgHeader) + fb > max_msg_bytes_) {
    DARRAY_ASSERT(fb <= max_msg_bytes_);
    seal_batch(peer);
    PendingWr p;
    p.e.buf = acquire_send_buffer();
    p.e.len = static_cast<uint32_t>(fb);
    p.e.op = rdma::Opcode::kSend;
    p.e.deadline_ns = now + cfg_.comm_deadline_ns;
    p.e.trace = req.hdr.trace;
    p.e.msg_class = static_cast<uint8_t>(req.hdr.type);
    write_frame(buf_ptr(p.e.buf), req.hdr, req.payload.data(), req.payload.size());
    p.tracked = true;
    p.wr.opcode = rdma::Opcode::kSend;
    p.wr.sge = {buf_ptr(p.e.buf), p.e.len, send_mr_.lkey};
    txb_[peer].wrs.push_back(std::move(p));
    return;
  }

  if (b.buf != kNoBuf &&
      (b.bytes + fb > max_msg_bytes_ || b.frames >= cfg_.coalesce_max_frames))
    seal_batch(peer);
  if (b.buf == kNoBuf) {
    b.buf = acquire_send_buffer();
    b.bytes = sizeof(MsgHeader);  // reserved kBatch envelope slot
    b.frames = 0;
    b.open_ns = now;
  }
  write_frame(buf_ptr(b.buf) + b.bytes, req.hdr, req.payload.data(), req.payload.size());
  b.bytes += static_cast<uint32_t>(fb);
  b.frames++;
  if (b.frames == 1) b.msg_class = static_cast<uint8_t>(req.hdr.type);
  if (b.trace == 0) b.trace = req.hdr.trace;
}

void CommLayer::enqueue_tx(TxRequest& req) {
  const uint32_t peer = req.dst;
  rdma::QueuePair* qp = qp_to_peer_[peer];
  DARRAY_ASSERT(qp != nullptr);
  const uint64_t now = now_ns();

  // Large-message engine: at or above the threshold, negotiate a rendezvous
  // (zero-copy one-sided pull by the peer) instead of moving bytes eagerly —
  // unless this request is already an eager fallback. Lease-table exhaustion
  // falls through to the eager path below.
  if (req.has_data() && !req.force_eager && cfg_.rendezvous_enabled &&
      req.data_len >= cfg_.rendezvous_threshold_bytes) {
    if (start_rndz(req, now)) return;
  }

  auto& pc = peer_tx_[peer];
  pc.send.fetch_add(sizeof(MsgHeader) + req.payload.size(), std::memory_order_relaxed);
  if (req.has_data()) pc.write.fetch_add(req.data_len, std::memory_order_relaxed);

  auto& rec = recovery_[peer];

  // Recovery in progress for this peer: everything staged but unposted lines
  // up in the retry queue first, then this request behind it, so the peer
  // still sees one FIFO stream.
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_pending(peer);
    stage_request(req, now);
    return;
  }

  if (req.has_data()) {
    // Wire order: frames already packed precede the WRITE, and the WRITE
    // precedes this request's notification SEND — so seal the open batch
    // before appending the WRITE to the pending run.
    seal_batch(peer);
    if (chaos_) {
      // Under fault injection the WRITE must be replayable after its source
      // cacheline is recycled, so stage the payload like a SEND's — chunked
      // to the arena buffer size (eager fallbacks exceed one buffer).
      const uint32_t max_chunk = static_cast<uint32_t>(max_msg_bytes_);
      for (uint32_t off = 0; off < req.data_len; off += max_chunk) {
        const uint32_t n = std::min(max_chunk, req.data_len - off);
        PendingWr p;
        p.e.buf = acquire_send_buffer();
        p.e.len = n;
        p.e.op = rdma::Opcode::kWrite;
        p.e.remote_addr = req.data_remote_addr + off;
        p.e.rkey = req.data_rkey;
        p.e.deadline_ns = now + cfg_.comm_deadline_ns;
        p.e.trace = req.hdr.trace;
        p.e.msg_class = kMsgClassDataWrite;
        std::memcpy(buf_ptr(p.e.buf), req.data_src + off, n);
        p.wr.opcode = rdma::Opcode::kWrite;
        p.wr.remote_addr = p.e.remote_addr;
        p.wr.rkey = p.e.rkey;
        p.wr.sge = {buf_ptr(p.e.buf), n, send_mr_.lkey};
        p.tracked = true;
        txb_[peer].wrs.push_back(std::move(p));
      }
      // Payload fully captured: the source cacheline may be recycled.
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
    } else {
      // Zero-copy: the source must stay live until the WR is actually posted,
      // so the release hook fires at flush time.
      PendingWr p;
      p.wr.opcode = rdma::Opcode::kWrite;
      p.wr.remote_addr = req.data_remote_addr;
      p.wr.rkey = req.data_rkey;
      p.wr.sge = {req.data_src, req.data_len, req.data_lkey};
      p.wr.signaled = false;
      p.posted_flag = req.posted_flag;
      txb_[peer].wrs.push_back(std::move(p));
    }
  }

  append_frame(peer, req, now);
}

void CommLayer::flush_peer(uint32_t peer, bool seal_open) {
  TxBatch& b = txb_[peer];
  if (seal_open) seal_batch(peer);
  if (b.wrs.empty()) return;
  const bool was_in_flush = in_flush_;
  in_flush_ = true;
  rdma::QueuePair* qp = qp_to_peer_[peer];
  auto& rec = recovery_[peer];
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_pending(peer);
    in_flush_ = was_in_flush;
    return;
  }
  // Assign wr_ids and signaling in post order, enter tracked entries into the
  // outstanding FIFO, then ring the doorbell once with the whole run.
  post_wrs_.clear();
  uint32_t& run = unsignaled_run_[peer];
  for (PendingWr& p : b.wrs) {
    p.wr.wr_id = next_wr_id_++;
    if (p.tracked) {
      if (p.e.op == rdma::Opcode::kSend) {
        // Selective signaling: request a completion once per interval per QP
        // so the signaled CQE retires the whole unsignaled run behind it.
        // (Errors are always signaled by the fabric.)
        p.wr.signaled = ++run >= cfg_.selective_signal_interval;
        if (p.wr.signaled) run = 0;
      }  // chaos-staged WRITEs stay signaled for prompt retirement
      p.e.wr_id = p.wr.wr_id;
      p.e.attempts = 1;
      obs::trace(obs::Ev::kWrPost, p.e.trace, static_cast<uint8_t>(p.e.op),
                 static_cast<uint16_t>(node_id_), peer, p.e.wr_id);
      outstanding_[peer].push_back(p.e);
    }
    post_wrs_.push_back(p.wr);
  }
  const bool ok = qp->post_send(std::span<const rdma::SendWr>(post_wrs_));
  DARRAY_ASSERT_MSG(ok, "doorbell-batched post failed local validation");
  // The fabric executes transfers at post time, so zero-copy sources are
  // consumed: release them.
  for (PendingWr& p : b.wrs) {
    if (p.posted_flag) {
      p.posted_flag->store(1, std::memory_order_release);
      p.posted_flag->notify_all();
    }
  }
  b.wrs.clear();
  in_flush_ = was_in_flush;
}

void CommLayer::flush_all() {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) flush_peer(peer);
}

void CommLayer::flush_due(uint64_t now) {
  for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
    TxBatch& b = txb_[peer];
    if (b.buf != kNoBuf && now - b.open_ns >= cfg_.coalesce_flush_ns)
      flush_peer(peer, /*seal_open=*/true);
    else if (!b.wrs.empty())
      flush_peer(peer, /*seal_open=*/false);  // post full batches, keep packing
  }
}

void CommLayer::stage_pending(uint32_t peer) {
  seal_batch(peer);
  TxBatch& b = txb_[peer];
  if (b.wrs.empty()) return;
  const bool was_in_flush = in_flush_;
  in_flush_ = true;
  auto& rec = recovery_[peer];
  const uint64_t now = now_ns();
  for (PendingWr& p : b.wrs) {
    if (!p.tracked) {
      // Zero-copy WRITE whose source is still live: capture the payload into
      // the arena so it can be replayed, then release the source. Chunked to
      // the arena buffer size (a zero-copy payload can exceed one buffer).
      const uint32_t max_chunk = static_cast<uint32_t>(max_msg_bytes_);
      const uint32_t total = p.wr.sge.length;
      for (uint32_t off = 0; off < total; off += max_chunk) {
        const uint32_t n = std::min(max_chunk, total - off);
        Outstanding e;
        e.buf = acquire_send_buffer();
        e.len = n;
        e.op = rdma::Opcode::kWrite;
        e.remote_addr = p.wr.remote_addr + off;
        e.rkey = p.wr.rkey;
        e.deadline_ns = now + cfg_.comm_deadline_ns;
        e.msg_class = kMsgClassDataWrite;
        std::memcpy(buf_ptr(e.buf), p.wr.sge.addr + off, n);
        rec.retry.push_back(std::move(e));
      }
      if (p.posted_flag) {
        p.posted_flag->store(1, std::memory_order_release);
        p.posted_flag->notify_all();
      }
      continue;
    }
    rec.retry.push_back(std::move(p.e));
  }
  b.wrs.clear();
  in_flush_ = was_in_flush;
}

// --- rendezvous large-message engine (docs/perf.md) ---------------------------

bool CommLayer::start_rndz(TxRequest& req, uint64_t now) {
  (void)now;
  const uint16_t dst = req.dst;
  const uint64_t trace = req.hdr.trace;
  // The embedded notification frame is dispatched verbatim by the peer once
  // its pull completes, bypassing the normal stage path — so its header must
  // be fully cooked here.
  req.hdr.src_node = static_cast<uint16_t>(node_id_);
  req.hdr.payload_len = static_cast<uint32_t>(req.payload.size());
  RndzDesc d;
  d.src_addr = reinterpret_cast<uint64_t>(req.data_src);
  d.dst_addr = req.data_remote_addr;
  d.src_rkey = req.data_lkey;  // lkey == rkey in the simulated fabric
  d.dst_rkey = req.data_rkey;
  d.len = req.data_len;
  PayloadBuf wp;
  wp.resize(sizeof(RndzDesc) + sizeof(MsgHeader) + req.payload.size());
  DARRAY_ASSERT_MSG(sizeof(MsgHeader) + wp.size() <= max_msg_bytes_,
                    "rendezvous inner payload too large for a control frame");
  {
    std::lock_guard<std::mutex> lk(lease_mu_);
    size_t slot = leases_.size();
    for (size_t i = 0; i < leases_.size(); ++i) {
      if (!leases_[i].active) {
        slot = i;
        break;
      }
    }
    if (slot == leases_.size()) {
      // Every lease is pinned: fall back to the eager path rather than block
      // the Tx thread on a network round trip.
      rndz_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    RndzLease& L = leases_[slot];
    d.lease_id = (L.gen << 16) | static_cast<uint32_t>(slot);
    // Assemble the wrapper payload before parking the request (the inner
    // frame needs the request's header and payload bytes).
    std::byte* p = wp.data();
    std::memcpy(p, &d, sizeof(RndzDesc));
    std::memcpy(p + sizeof(RndzDesc), &req.hdr, sizeof(MsgHeader));
    if (!req.payload.empty())
      std::memcpy(p + sizeof(RndzDesc) + sizeof(MsgHeader), req.payload.data(),
                  req.payload.size());
    L.active = true;
    L.req = std::move(req);
  }
  rndz_started_.fetch_add(1, std::memory_order_relaxed);
  TxRequest w;
  w.dst = dst;
  w.hdr.type = MsgType::kRndzReq;
  w.hdr.txn_id = d.lease_id;
  w.hdr.trace = trace;
  w.payload = std::move(wp);
  if (cfg_.coalesce_enabled)
    enqueue_tx(w);
  else
    post_one(w);
  return true;
}

void CommLayer::finish_lease(uint32_t id, bool completed) {
  const uint32_t slot = id & 0xffffu;
  TxRequest req;
  {
    std::lock_guard<std::mutex> lk(lease_mu_);
    if (slot >= leases_.size() || !leases_[slot].active ||
        ((leases_[slot].gen << 16) | slot) != id)
      return;  // stale FIN/ACK: the lease already fell back and was recycled
    RndzLease& L = leases_[slot];
    req = std::move(L.req);
    L.active = false;
    L.gen = (L.gen + 1) & 0xffffu;
  }
  if (completed) {
    rndz_completed_.fetch_add(1, std::memory_order_relaxed);
    rndz_bytes_.fetch_add(req.data_len, std::memory_order_relaxed);
    peer_tx_[req.dst].rndz.fetch_add(req.data_len, std::memory_order_relaxed);
    // The peer's READs are done: the pinned source may finally be recycled.
    if (req.posted_flag) {
      req.posted_flag->store(1, std::memory_order_release);
      req.posted_flag->notify_all();
    }
  } else {
    // NAK: the peer could not pull. Re-post through the Tx queue with the
    // rendezvous path disabled so the bytes move eagerly.
    rndz_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    req.force_eager = true;
    post(std::move(req));
  }
}

bool CommLayer::handle_rndz_msg(RpcMessage& m) {
  switch (m.hdr.type) {
    case MsgType::kRndzReq: {
      DARRAY_ASSERT_MSG(m.payload.size() >= sizeof(RndzDesc) + sizeof(MsgHeader),
                        "malformed kRndzReq payload");
      RndzJob job;
      const std::byte* p = m.payload.data();
      std::memcpy(&job.desc, p, sizeof(RndzDesc));
      std::memcpy(&job.inner_hdr, p + sizeof(RndzDesc), sizeof(MsgHeader));
      DARRAY_ASSERT_MSG(m.payload.size() == sizeof(RndzDesc) + sizeof(MsgHeader) +
                                                job.inner_hdr.payload_len,
                        "malformed kRndzReq inner frame");
      if (job.inner_hdr.payload_len > 0)
        job.inner_payload.assign(p + sizeof(RndzDesc) + sizeof(MsgHeader),
                                 job.inner_hdr.payload_len);
      job.src = m.hdr.src_node;
      job.trace = m.hdr.trace;
      rndz_jobs_.push(std::move(job));  // rings the Tx bell
      return true;
    }
    case MsgType::kRndzFin:
      finish_lease(m.hdr.txn_id, /*completed=*/true);
      return true;
    case MsgType::kRndzAck:
      finish_lease(m.hdr.txn_id, /*completed=*/false);
      return true;
    default:
      return false;
  }
}

void CommLayer::start_pull(RndzJob&& job, uint64_t now) {
  const uint32_t peer = job.src;
  DARRAY_ASSERT(peer < num_nodes_ && qp_to_peer_[peer] != nullptr);
  rdma::QueuePair* qp = qp_to_peer_[peer];
  std::byte* dst = device_->translate(job.desc.dst_addr, job.desc.dst_rkey, job.desc.len);
  if (dst == nullptr || job.desc.len == 0) {
    // Destination not registered here (or a degenerate advertisement): NAK so
    // the sender reverts to eager and its own validation paths.
    rndz_nak_.push_back({job.src, job.desc.lease_id, job.trace});
    return;
  }
  const uint32_t id = next_rndz_id_++;
  if (next_rndz_id_ == 0) next_rndz_id_ = 1;  // id 0 means "not a pull chunk"
  RndzPull pull;
  pull.src = job.src;
  pull.lease_id = job.desc.lease_id;
  pull.len = job.desc.len;
  pull.trace = job.trace;
  pull.inner_hdr = job.inner_hdr;
  pull.inner_payload = std::move(job.inner_payload);
  rndz_pulls_.emplace(id, std::move(pull));

  auto& rec = recovery_[peer];
  const bool recovering = qp->state() == rdma::QpState::kError ||
                          !rec.moved.empty() || !rec.retry.empty();
  if (recovering) stage_pending(peer);  // pulls line up behind staged work
  const uint32_t mtu = cfg_.rendezvous_mtu_bytes;
  post_wrs_.clear();
  for (uint32_t off = 0; off < job.desc.len; off += mtu) {
    const uint32_t n = std::min(mtu, job.desc.len - off);
    Outstanding e;
    e.op = rdma::Opcode::kRead;
    e.len = n;
    e.remote_addr = job.desc.src_addr + off;
    e.rkey = job.desc.src_rkey;
    e.read_dst = dst + off;
    e.read_lkey = job.desc.dst_rkey;
    e.deadline_ns = now + cfg_.comm_deadline_ns;
    e.trace = job.trace;
    e.msg_class = kMsgClassRndzData;
    e.rndz_id = id;
    e.rndz_last = off + n >= job.desc.len;
    if (recovering) {
      rec.retry.push_back(std::move(e));
      continue;
    }
    e.attempts = 1;
    e.wr_id = next_wr_id_++;
    rdma::SendWr wr;
    wr.wr_id = e.wr_id;
    wr.opcode = rdma::Opcode::kRead;
    wr.sge = {e.read_dst, n, e.read_lkey};
    wr.remote_addr = e.remote_addr;
    wr.rkey = e.rkey;
    // One signaled completion per pull: the final chunk's CQE retires the
    // whole run (per-QP FIFO). Errors are always signaled by the fabric.
    wr.signaled = e.rndz_last;
    obs::trace(obs::Ev::kWrPost, e.trace, static_cast<uint8_t>(e.op),
               static_cast<uint16_t>(node_id_), peer, e.wr_id);
    outstanding_[peer].push_back(std::move(e));
    post_wrs_.push_back(wr);
  }
  if (!post_wrs_.empty()) {
    const bool ok = qp->post_send(std::span<const rdma::SendWr>(post_wrs_));
    DARRAY_ASSERT_MSG(ok, "rendezvous READ post failed local validation");
    post_wrs_.clear();
  }
}

void CommLayer::send_ctl(uint16_t dst, MsgType type, uint32_t lease_id, uint64_t trace) {
  TxRequest req;
  req.dst = dst;
  req.hdr.type = type;
  req.hdr.txn_id = lease_id;
  req.hdr.trace = trace;
  if (cfg_.coalesce_enabled)
    enqueue_tx(req);
  else
    post_one(req);
}

bool CommLayer::process_rndz_actions(uint64_t now) {
  (void)now;
  if (rndz_done_.empty() && rndz_nak_.empty()) return false;
  // Swap the lists out first: the sends below can re-enter reclaim and append.
  std::vector<uint32_t> done;
  done.swap(rndz_done_);
  std::vector<RndzNak> naks;
  naks.swap(rndz_nak_);
  for (uint32_t id : done) {
    auto it = rndz_pulls_.find(id);
    if (it == rndz_pulls_.end()) continue;  // abandoned before retirement
    RndzPull pull = std::move(it->second);
    rndz_pulls_.erase(it);
    qp_to_peer_[pull.src]->fabric().count_rndz(pull.len);
    // The signaled CQE guarantees every READ chunk landed: deliver the
    // embedded notification, then release the sender's lease with a FIN.
    RpcMessage m;
    m.hdr = pull.inner_hdr;
    m.payload = std::move(pull.inner_payload);
    dispatch_(std::move(m));
    send_ctl(pull.src, MsgType::kRndzFin, pull.lease_id, pull.trace);
  }
  for (const RndzNak& n : naks)
    send_ctl(n.src, MsgType::kRndzAck, n.lease_id, n.trace);
  return true;
}

// --- legacy immediate-post path (cfg.coalesce_enabled == false) --------------

void CommLayer::post_one(TxRequest& req) {
  rdma::QueuePair* qp = qp_to_peer_[req.dst];
  DARRAY_ASSERT(qp != nullptr);
  const uint64_t now = now_ns();

  // Large-message engine: at or above the threshold, negotiate a rendezvous
  // (zero-copy one-sided pull by the peer) instead of moving bytes eagerly —
  // unless this request is already an eager fallback. Lease-table exhaustion
  // falls through to the eager path below.
  if (req.has_data() && !req.force_eager && cfg_.rendezvous_enabled &&
      req.data_len >= cfg_.rendezvous_threshold_bytes) {
    if (start_rndz(req, now)) return;
  }

  auto& pc = peer_tx_[req.dst];
  pc.send.fetch_add(sizeof(MsgHeader) + req.payload.size(), std::memory_order_relaxed);
  if (req.has_data()) pc.write.fetch_add(req.data_len, std::memory_order_relaxed);

  auto& rec = recovery_[req.dst];

  // Recovery in progress for this peer: new requests queue up behind the
  // replay so the peer still sees one FIFO stream.
  if (qp->state() == rdma::QpState::kError || !rec.moved.empty() || !rec.retry.empty()) {
    stage_request(req, now);
    return;
  }

  // 1. Optional one-sided data WRITE; FIFO per QP orders it before the SEND.
  if (req.has_data()) {
    if (chaos_) {
      // Under fault injection the WRITE must be replayable after its source
      // cacheline is recycled, so stage the payload like a SEND's — chunked
      // to the arena buffer size (eager fallbacks exceed one buffer). A
      // chunk that draws a fault flushes the rest behind it in order.
      const uint32_t max_chunk = static_cast<uint32_t>(max_msg_bytes_);
      for (uint32_t off = 0; off < req.data_len; off += max_chunk) {
        const uint32_t n = std::min(max_chunk, req.data_len - off);
        Outstanding e;
        e.buf = acquire_send_buffer();
        e.len = n;
        e.op = rdma::Opcode::kWrite;
        e.remote_addr = req.data_remote_addr + off;
        e.rkey = req.data_rkey;
        e.attempts = 1;
        e.deadline_ns = now + cfg_.comm_deadline_ns;
        e.wr_id = next_wr_id_++;
        e.trace = req.hdr.trace;
        e.msg_class = kMsgClassDataWrite;
        std::memcpy(buf_ptr(e.buf), req.data_src + off, n);
        post_entry(req.dst, std::move(e));
      }
      // Payload fully captured (in the arena, even if a chunk just faulted):
      // the source cacheline may be recycled.
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
      if (qp->state() == rdma::QpState::kError) {
        // A WRITE chunk drew a fault; the SEND must line up behind the
        // flushed chunks (already tracked — do not re-stage the data).
        rec.retry.push_back(make_send_entry(req, now));
        return;
      }
    } else {
      rdma::SendWr wr;
      wr.opcode = rdma::Opcode::kWrite;
      wr.sge = {req.data_src, req.data_len, req.data_lkey};
      wr.remote_addr = req.data_remote_addr;
      wr.rkey = req.data_rkey;
      wr.signaled = false;  // source buffer release is handled via posted_flag
      wr.wr_id = next_wr_id_++;
      const bool ok = qp->post_send(wr);
      DARRAY_ASSERT_MSG(ok, "data WRITE failed local validation");
      if (req.posted_flag) {
        req.posted_flag->store(1, std::memory_order_release);
        req.posted_flag->notify_all();
      }
    }
  }

  // 2. The two-sided protocol message.
  Outstanding e;
  e.buf = stage_send_msg(req);
  e.len = static_cast<uint32_t>(sizeof(MsgHeader) + req.payload.size());
  e.op = rdma::Opcode::kSend;
  e.attempts = 1;
  e.deadline_ns = now + cfg_.comm_deadline_ns;
  e.wr_id = next_wr_id_++;
  e.trace = req.hdr.trace;
  e.msg_class = static_cast<uint8_t>(req.hdr.type);

  rdma::SendWr wr;
  wr.opcode = rdma::Opcode::kSend;
  wr.sge = {buf_ptr(e.buf), e.len, send_mr_.lkey};
  wr.wr_id = e.wr_id;
  // Selective signaling: request a completion once per interval per QP so the
  // signaled CQE retires the whole unsignaled run behind it. (Errors are
  // always signaled by the fabric, so recovery still sees every failure.)
  uint32_t& run = unsignaled_run_[req.dst];
  wr.signaled = ++run >= cfg_.selective_signal_interval;
  if (wr.signaled) run = 0;
  obs::trace(obs::Ev::kWrPost, e.trace, static_cast<uint8_t>(e.op),
             static_cast<uint16_t>(node_id_), req.dst, e.wr_id);
  outstanding_[req.dst].push_back(std::move(e));
  const bool ok = qp->post_send(wr);
  DARRAY_ASSERT_MSG(ok, "protocol SEND failed local validation");
}

void CommLayer::tx_main() {
  char tname[16];
  std::snprintf(tname, sizeof tname, "tx.%u", node_id_);
  obs::register_current_thread(tname);
  const bool coalesce = cfg_.coalesce_enabled;
  tx_duty_.on_start();
  for (;;) {
    const uint32_t snap = tx_bell_.snapshot();
    bool progressed = false;
    TxRequest req;
    uint32_t drained = 0;
    while (tx_queue_.pop(req)) {
      if (coalesce)
        enqueue_tx(req);
      else
        post_one(req);
      progressed = true;
      // Long drains must not hold frames past the coalescing deadline.
      if (coalesce && (++drained & 63u) == 0) flush_due(now_ns());
    }
    // Rendezvous pulls handed over by the Rx thread (only the Tx thread may
    // post, and a pull is a doorbell-batched run of READ WRs).
    RndzJob job;
    while (rndz_jobs_.pop(job)) {
      start_pull(std::move(job), now_ns());
      progressed = true;
    }
    // Drain pass over: ring each peer's doorbell once with everything staged.
    if (coalesce) flush_all();
    reclaim_send_buffers();
    pump_retries(now_ns());
    // Completed/abandoned pulls surface here, at top level only (never nested
    // inside a flush): dispatch + FIN, or NAK. The control sends they stage
    // go out in a final flush pass.
    if (process_rndz_actions(now_ns())) {
      progressed = true;
      if (coalesce) flush_all();
      reclaim_send_buffers();
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) {
      // Completions may be held back by the latency model, and retries wait
      // out their backoff window; neither rings the bell again, so bound the
      // park by whichever is due first.
      uint64_t due = send_cq_.next_due_in();
      const uint64_t rdue = retry_due_in(now_ns());
      if (rdue < due) due = rdue;
      if (due == ~0ull) {
        const uint64_t t0 = tx_duty_.park_begin();
        tx_bell_.wait_change(snap);
        tx_duty_.park_end(t0);
      } else if (due > 0) {
        if (due < 20'000) {
          cpu_relax();
        } else {
          const uint64_t t0 = tx_duty_.park_begin();
          std::this_thread::sleep_for(std::chrono::nanoseconds(due));
          tx_duty_.park_end(t0);
        }
      }
    }
  }
  tx_duty_.on_stop();
}

void CommLayer::rx_main() {
  char tname[16];
  std::snprintf(tname, sizeof tname, "rx.%u", node_id_);
  obs::register_current_thread(tname);
  rdma::WorkCompletion wcs[32];
  rx_duty_.on_start();
  for (;;) {
    const uint32_t snap = rx_bell_.snapshot();
    bool progressed = false;
    for (;;) {
      const size_t n = recv_cq_.poll(wcs);
      if (n == 0) break;
      progressed = true;
      for (size_t i = 0; i < n; ++i) {
        const rdma::WorkCompletion& wc = wcs[i];
        DARRAY_ASSERT(wc.opcode == rdma::Opcode::kRecv);
        if (wc.status == rdma::WcStatus::kFlushError) {
          // Our QP errored and flushed its recv ring. Park the buffer; it is
          // reposted once the Tx side has reset the QP (reposting now would
          // just flush again).
          rdma::RecvWr rwr;
          rwr.addr = reinterpret_cast<std::byte*>(wc.wr_id);
          rwr.length = static_cast<uint32_t>(max_msg_bytes_);
          rwr.lkey = recv_mr_.lkey;
          rwr.wr_id = wc.wr_id;
          parked_recvs_[wc.peer_node].push_back(rwr);
          continue;
        }
        DARRAY_ASSERT(wc.status == rdma::WcStatus::kSuccess);
        auto* bufp = reinterpret_cast<std::byte*>(wc.wr_id);
        MsgHeader hdr;
        std::memcpy(&hdr, bufp, sizeof(MsgHeader));
        DARRAY_ASSERT(sizeof(MsgHeader) + hdr.payload_len == wc.byte_len);
        rx_scratch_.clear();
        if (hdr.type == MsgType::kBatch) {
          // Coalesced SEND: unpack every frame (copying payloads out of the
          // recv ring) so the buffer can be reposted before dispatch.
          BatchReader r(bufp + sizeof(MsgHeader), hdr.payload_len, hdr.aux);
          MsgHeader fh;
          const std::byte* fp = nullptr;
          while (r.next(fh, fp)) {
            RpcMessage m;
            m.hdr = fh;
            if (fh.payload_len > 0) m.payload.assign(fp, fh.payload_len);
            rx_scratch_.push_back(std::move(m));
          }
          DARRAY_ASSERT_MSG(r.valid(), "malformed coalesced batch image");
        } else {
          RpcMessage m;
          m.hdr = hdr;
          if (hdr.payload_len > 0) m.payload.assign(bufp + sizeof(MsgHeader), hdr.payload_len);
          rx_scratch_.push_back(std::move(m));
        }
        // Repost the buffer to the QP it came from before dispatching.
        rdma::QueuePair* qp = qp_by_num_[wc.qp_num];
        rdma::RecvWr rwr;
        rwr.addr = bufp;
        rwr.length = static_cast<uint32_t>(max_msg_bytes_);
        rwr.lkey = recv_mr_.lkey;
        rwr.wr_id = wc.wr_id;
        qp->post_recv(rwr);
        for (RpcMessage& m : rx_scratch_) {
          DLOG_DEBUG("node %u rx %s from %u chunk=%llu", node_id_,
                     msg_type_name(m.hdr.type), m.hdr.src_node,
                     static_cast<unsigned long long>(m.hdr.chunk));
          // Rendezvous control traffic is transport-internal: consume it here
          // instead of delivering it to the runtime.
          if (handle_rndz_msg(m)) continue;
          dispatch_(std::move(m));
        }
        rx_scratch_.clear();
      }
    }
    // Re-arm parked recv buffers once their QP is back in RTS. A lost race
    // (the QP errors again mid-repost) just parks them again via flush CQEs.
    bool any_parked = false;
    for (uint32_t peer = 0; peer < num_nodes_; ++peer) {
      auto& parked = parked_recvs_[peer];
      if (parked.empty()) continue;
      rdma::QueuePair* qp = qp_to_peer_[peer];
      if (qp->state() != rdma::QpState::kRts) {
        any_parked = true;
        continue;
      }
      for (const rdma::RecvWr& r : parked) qp->post_recv(r);
      parked.clear();
      progressed = true;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) {
      uint64_t due = recv_cq_.next_due_in();
      // Parked buffers wait on the Tx thread's QP reset, which rings no bell
      // here — poll for it.
      if (any_parked && due > 20'000) due = 20'000;
      if (due == ~0ull) {
        const uint64_t t0 = rx_duty_.park_begin();
        rx_bell_.wait_change(snap);
        rx_duty_.park_end(t0);
      } else if (due > 0) {
        // Latency model holdback. sleep_for has a scheduler-quantum floor far
        // above microsecond-scale link latencies, so short waits busy-poll.
        if (due < 20'000) {
          cpu_relax();
        } else {
          const uint64_t t0 = rx_duty_.park_begin();
          std::this_thread::sleep_for(std::chrono::nanoseconds(due));
          rx_duty_.park_end(t0);
        }
      }
    }
  }
  rx_duty_.on_stop();
}

}  // namespace darray::net
