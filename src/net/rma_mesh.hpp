// A synchronous one-sided RMA mesh: every node pair gets a dedicated QP, and
// callers issue blocking WRITE/READ from application threads (serialised per
// source node). This is the MPI-RMA-style substrate the Gemini-like baseline
// engine exchanges its bulk updates over — deliberately simpler than the
// DArray comm layer (no Tx/Rx threads, no selective signaling).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/spinlock.hpp"
#include "common/wait.hpp"
#include "rdma/fabric.hpp"

namespace darray::net {

class RmaMesh {
 public:
  RmaMesh(rdma::Fabric& fabric, const std::vector<rdma::Device*>& devices)
      : fabric_(fabric), per_node_(devices.size()) {
    const uint32_t n = static_cast<uint32_t>(devices.size());
    for (uint32_t i = 0; i < n; ++i) {
      per_node_[i].device = devices[i];
      per_node_[i].qps.resize(n, nullptr);
      per_node_[i].cq = std::make_unique<rdma::CompletionQueue>();
    }
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        auto [qa, qb] =
            fabric.connect(devices[a], per_node_[a].cq.get(), per_node_[a].cq.get(),
                           devices[b], per_node_[b].cq.get(), per_node_[b].cq.get());
        per_node_[a].qps[b] = qa;
        per_node_[b].qps[a] = qb;
      }
    }
  }

  rdma::MemoryRegion reg(uint32_t node, void* addr, size_t len) {
    return per_node_[node].device->reg_mr(addr, len);
  }

  // Blocking one-sided WRITE from src's memory into dst's registered region.
  void write(uint32_t src, uint32_t dst, const void* local, uint32_t lkey,
             uint64_t remote_addr, uint32_t rkey, uint32_t len) {
    PerNode& pn = per_node_[src];
    std::scoped_lock lk(pn.mu);
    rdma::SendWr wr;
    wr.opcode = rdma::Opcode::kWrite;
    wr.sge = {static_cast<const std::byte*>(local), len, lkey};
    wr.remote_addr = remote_addr;
    wr.rkey = rkey;
    wr.signaled = true;
    const bool ok = pn.qps[dst]->post_send(wr);
    DARRAY_ASSERT(ok);
    rdma::WorkCompletion wc;
    while (pn.cq->poll({&wc, 1}) == 0) cpu_relax();
    DARRAY_ASSERT(wc.status == rdma::WcStatus::kSuccess);
  }

 private:
  struct PerNode {
    rdma::Device* device = nullptr;
    std::vector<rdma::QueuePair*> qps;
    std::unique_ptr<rdma::CompletionQueue> cq;
    SpinLock mu;
  };

  [[maybe_unused]] rdma::Fabric& fabric_;
  std::vector<PerNode> per_node_;
};

}  // namespace darray::net
