// The paper's communication layer (Fig. 2, §4.5): per node, a Tx thread that
// drains the RDMA-request queue and posts work to the NIC with selective
// signaling, and an Rx thread that polls the completion queue and delivers
// parsed RPC messages to the runtime. Dedicated networking threads mean the
// QP count is nodes² × 1, independent of the number of application/runtime
// threads — the paper's n²·c (c = networking threads) instead of n²·t.
//
// Small-message engine (docs/perf.md): with cfg.coalesce_enabled the Tx
// thread packs every protocol message it finds queued for the same peer into
// one wire SEND (kBatch framing, bytes/frames/deadline cutoffs) and defers
// posting so each drain pass rings each peer QP's doorbell once with a span
// of work requests. The Rx thread unpacks frames in place and dispatches
// each. Payloads ride in pooled PayloadBufs, so the steady-state Tx/Rx path
// performs no heap allocation.
//
// Fault recovery (see docs/chaos.md): a completion-with-error moves the QP to
// ERROR and the Tx thread becomes the recovery driver for that peer. The
// fabric never half-executes a WR — an error status means no bytes moved — so
// re-posting is exactly-once. Ordering is preserved end to end: the error
// flushes everything behind the failed WR, the Tx thread collects failed and
// flushed requests into a per-peer retry queue in original order, stages any
// new requests for that peer behind them, and after a bounded-exponential
// backoff resets the QP and replays the queue front to back. A coalesced
// batch is one WR, so replay keeps its frames contiguous and in order.
// Requests that exhaust their attempt budget or wall-clock deadline are
// handed to the error handler (default: fail-stop) instead of retried.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/mpsc_queue.hpp"
#include "net/message.hpp"
#include "obs/duty_cycle.hpp"
#include "rdma/completion_queue.hpp"
#include "rdma/device.hpp"
#include "rdma/fabric.hpp"
#include "rdma/queue_pair.hpp"

namespace darray::net {

// An unrecoverable communication failure, delivered on the Tx thread.
struct CommError {
  uint32_t peer = 0;
  rdma::Opcode opcode = rdma::Opcode::kSend;
  rdma::WcStatus status = rdma::WcStatus::kSuccess;
  uint32_t attempts = 0;
  uint32_t frames = 1;  // protocol messages lost (a dropped batch loses several)
  const char* reason = "";
};

class CommLayer {
 public:
  // `dispatch` is invoked on the Rx thread for every inbound message; it must
  // only route (push to a runtime queue), never block.
  using DispatchFn = std::function<void(RpcMessage&&)>;
  // Invoked on the Tx thread when a request is abandoned (retry budget or
  // deadline exhausted, or an untracked WR failed). The handler must not
  // block; with no handler installed the comm layer fail-stops.
  using ErrorFn = std::function<void(const CommError&)>;

  CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
            rdma::Device* device, DispatchFn dispatch);
  ~CommLayer();

  CommLayer(const CommLayer&) = delete;
  CommLayer& operator=(const CommLayer&) = delete;

  rdma::Device* device() const { return device_; }
  rdma::CompletionQueue* send_cq() { return &send_cq_; }
  rdma::CompletionQueue* recv_cq() { return &recv_cq_; }

  // Topology wiring (before start()).
  void set_qp(uint32_t peer, rdma::QueuePair* qp);

  // Optional; before start().
  void set_error_handler(ErrorFn fn) { error_fn_ = std::move(fn); }

  void start();
  void stop();

  // Any runtime thread: enqueue an outbound request for the Tx thread.
  void post(TxRequest req);

  size_t max_msg_bytes() const { return max_msg_bytes_; }

  // Requests abandoned after exhausting recovery (diagnostics / tests).
  uint64_t dropped_requests() const {
    return dropped_requests_.load(std::memory_order_relaxed);
  }

  // Busy/idle duty cycle of the comm threads (obs; any thread may sample).
  const obs::DutyCycle& tx_duty() const { return tx_duty_; }
  const obs::DutyCycle& rx_duty() const { return rx_duty_; }

 private:
  static constexpr uint32_t kNoBuf = ~0u;

  // One posted (or to-be-posted) WR the Tx thread may have to replay. SENDs
  // always reference a send-arena buffer (a coalesced batch is one entry
  // covering `frames` protocol messages); WRITEs do too in chaos mode (the
  // payload is staged so the source cacheline can be recycled immediately),
  // while outside chaos mode WRITEs stay zero-copy/unsignaled and untracked.
  struct Outstanding {
    uint64_t wr_id = 0;
    uint32_t buf = kNoBuf;      // send-arena buffer index
    uint32_t len = 0;
    rdma::Opcode op = rdma::Opcode::kSend;
    uint64_t remote_addr = 0;   // WRITE only
    uint32_t rkey = 0;          // WRITE only
    uint32_t attempts = 0;      // post attempts so far
    uint16_t frames = 1;        // protocol messages carried (batch SENDs > 1)
    uint64_t deadline_ns = 0;
    uint64_t trace = 0;         // obs correlation id (first traced frame for a
                                //   batch), so retries attribute to their op
    uint8_t msg_class = 0;      // latency-histogram class (MsgType value, or
                                //   kMsgClassDataWrite for data WRITEs)
    rdma::WcStatus last_status = rdma::WcStatus::kSuccess;
  };

  // Per-peer recovery state (Tx-private). `moved` receives failed/flushed
  // entries in CQE order while their QP drains; once the outstanding FIFO is
  // empty they are prepended to `retry` (they predate anything staged there)
  // and replayed after the backoff expires.
  struct PeerRecovery {
    std::deque<Outstanding> moved;
    std::deque<Outstanding> retry;
    uint64_t next_attempt_ns = 0;
  };

  // A sealed work request awaiting its doorbell-batched post. Tracked
  // entries (SENDs, chaos-staged WRITEs) enter the outstanding FIFO at post
  // time; untracked zero-copy WRITEs carry the posted_flag to release their
  // source once actually posted.
  struct PendingWr {
    rdma::SendWr wr;
    Outstanding e;
    bool tracked = false;
    std::atomic<uint32_t>* posted_flag = nullptr;
  };

  // Per-peer Tx coalescing state: the open pack buffer (frames written
  // behind a reserved kBatch-envelope slot) plus sealed-but-unposted WRs for
  // this drain pass.
  struct TxBatch {
    uint32_t buf = kNoBuf;
    uint32_t bytes = 0;     // used bytes, including the reserved envelope slot
    uint32_t frames = 0;
    uint64_t open_ns = 0;   // when the first frame was staged
    uint64_t trace = 0;     // first traced frame in the open batch
    uint8_t msg_class = 0;  // class of a single-frame batch (mixed batches
                            //   keep the first frame's class)
    std::vector<PendingWr> wrs;
  };

  void tx_main();
  void rx_main();
  // Legacy immediate-post path (coalescing off; byte- and WR-identical to the
  // pre-coalescing engine).
  void post_one(TxRequest& req);
  // Coalescing path: stage the request into the per-peer batch state.
  void enqueue_tx(TxRequest& req);
  void append_frame(uint32_t peer, TxRequest& req, uint64_t now);
  void seal_batch(uint32_t peer);
  void flush_peer(uint32_t peer, bool seal_open = true);
  void flush_all();
  void flush_due(uint64_t now);
  void stage_pending(uint32_t peer);
  void stage_request(TxRequest& req, uint64_t now);
  void post_entry(uint32_t peer, Outstanding e);
  void reclaim_send_buffers();
  void handle_error_cqe(const rdma::WorkCompletion& wc);
  void pump_retries(uint64_t now);
  void fail_entry(uint32_t peer, Outstanding& e, const char* reason);
  void fail(const CommError& err);
  uint64_t retry_due_in(uint64_t now) const;
  uint64_t backoff_ns(uint32_t attempts) const;
  uint32_t acquire_send_buffer();  // parks on the Tx doorbell when exhausted
  uint32_t stage_send_msg(TxRequest& req);  // copy header+payload into a buffer
  void release_buf(uint32_t buf) {
    if (buf != kNoBuf) send_free_.push_back(buf);
  }
  std::byte* buf_ptr(uint32_t buf) {
    return send_arena_.get() + size_t{buf} * max_msg_bytes_;
  }

  const uint32_t node_id_;
  const uint32_t num_nodes_;
  const ClusterConfig cfg_;
  rdma::Device* device_;
  DispatchFn dispatch_;
  ErrorFn error_fn_;
  const size_t max_msg_bytes_;

  Doorbell tx_bell_;
  Doorbell rx_bell_;
  rdma::CompletionQueue send_cq_{&tx_bell_};
  rdma::CompletionQueue recv_cq_{&rx_bell_};
  MpscQueue<TxRequest> tx_queue_{&tx_bell_};

  std::vector<rdma::QueuePair*> qp_to_peer_;        // indexed by peer node id
  std::vector<rdma::QueuePair*> qp_by_num_;         // sparse, indexed by qp_num

  // Send-side message buffers: one registered arena, Tx-private freelist,
  // per-QP FIFO of outstanding buffers reclaimed by signaled completions.
  std::unique_ptr<std::byte[]> send_arena_;
  rdma::MemoryRegion send_mr_;
  uint32_t send_buf_count_ = 0;
  std::vector<uint32_t> send_free_;                  // Tx-private
  std::vector<std::deque<Outstanding>> outstanding_; // per peer
  std::vector<PeerRecovery> recovery_;               // per peer, Tx-private
  std::vector<TxBatch> txb_;                         // per peer, Tx-private
  std::vector<rdma::SendWr> post_wrs_;               // flush scratch, Tx-private
  std::vector<uint32_t> unsignaled_run_;             // per peer, for signaling
  uint64_t next_wr_id_ = 1;
  bool chaos_ = false;     // fabric has a fault injector (latched at start())
  bool in_flush_ = false;  // Tx-private: guards acquire→flush reentrancy

  // Recv-side buffers: preposted per QP, reposted by Rx after parsing.
  // Buffers flushed by a QP error are parked (Rx-private) until the Tx side
  // resets the QP, then reposted.
  std::unique_ptr<std::byte[]> recv_arena_;
  rdma::MemoryRegion recv_mr_;
  std::vector<std::vector<rdma::RecvWr>> parked_recvs_;  // per peer, Rx-private
  std::vector<RpcMessage> rx_scratch_;                   // Rx-private

  std::atomic<uint64_t> dropped_requests_{0};

  obs::DutyCycle tx_duty_;
  obs::DutyCycle rx_duty_;

  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace darray::net
