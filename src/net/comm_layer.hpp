// The paper's communication layer (Fig. 2, §4.5): per node, a Tx thread that
// drains the RDMA-request queue and posts work to the NIC with selective
// signaling, and an Rx thread that polls the completion queue and delivers
// parsed RPC messages to the runtime. Dedicated networking threads mean the
// QP count is nodes² × 1, independent of the number of application/runtime
// threads — the paper's n²·c (c = networking threads) instead of n²·t.
//
// Small-message engine (docs/perf.md): with cfg.coalesce_enabled the Tx
// thread packs every protocol message it finds queued for the same peer into
// one wire SEND (kBatch framing, bytes/frames/deadline cutoffs) and defers
// posting so each drain pass rings each peer QP's doorbell once with a span
// of work requests. The Rx thread unpacks frames in place and dispatches
// each. Payloads ride in pooled PayloadBufs, so the steady-state Tx/Rx path
// performs no heap allocation.
//
// Large-message engine (docs/perf.md): payload-bearing requests at or above
// cfg.rendezvous_threshold_bytes switch from the eager path to a rendezvous:
// the Tx thread parks the request in a lease and sends a small kRndzReq
// advertising the pinned source {addr, rkey, len}; the peer's Tx thread pulls
// the bytes with one-sided RDMA READs (MTU-chunked, one signaled completion),
// then dispatches the embedded notification and returns a piggybacked
// kRndzFin that releases the lease (fires the posted_flag). No send-arena
// staging touches the payload on either side — the transfer is zero-copy end
// to end. A failed pull (WC error after retry exhaustion, or no lease slot
// free) NAKs with kRndzAck and the sender falls back to the eager path, so
// rendezvous never loses a message — it only loses the zero-copy fast path.
//
// Fault recovery (see docs/chaos.md): a completion-with-error moves the QP to
// ERROR and the Tx thread becomes the recovery driver for that peer. The
// fabric never half-executes a WR — an error status means no bytes moved — so
// re-posting is exactly-once. Ordering is preserved end to end: the error
// flushes everything behind the failed WR, the Tx thread collects failed and
// flushed requests into a per-peer retry queue in original order, stages any
// new requests for that peer behind them, and after a bounded-exponential
// backoff resets the QP and replays the queue front to back. A coalesced
// batch is one WR, so replay keeps its frames contiguous and in order.
// Requests that exhaust their attempt budget or wall-clock deadline are
// handed to the error handler (default: fail-stop) instead of retried.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/mpsc_queue.hpp"
#include "net/message.hpp"
#include "obs/duty_cycle.hpp"
#include "rdma/completion_queue.hpp"
#include "rdma/device.hpp"
#include "rdma/fabric.hpp"
#include "rdma/queue_pair.hpp"

namespace darray::net {

// An unrecoverable communication failure, delivered on the Tx thread.
struct CommError {
  uint32_t peer = 0;
  rdma::Opcode opcode = rdma::Opcode::kSend;
  rdma::WcStatus status = rdma::WcStatus::kSuccess;
  uint32_t attempts = 0;
  uint32_t frames = 1;  // protocol messages lost (a dropped batch loses several)
  const char* reason = "";
};

class CommLayer {
 public:
  // `dispatch` is invoked on a comm thread for every inbound message — the Rx
  // thread normally, the Tx thread for notifications embedded in a completed
  // rendezvous pull; it must only route (push to a runtime queue), never block.
  using DispatchFn = std::function<void(RpcMessage&&)>;
  // Invoked on the Tx thread when a request is abandoned (retry budget or
  // deadline exhausted, or an untracked WR failed). The handler must not
  // block; with no handler installed the comm layer fail-stops.
  using ErrorFn = std::function<void(const CommError&)>;

  CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
            rdma::Device* device, DispatchFn dispatch);
  ~CommLayer();

  CommLayer(const CommLayer&) = delete;
  CommLayer& operator=(const CommLayer&) = delete;

  rdma::Device* device() const { return device_; }
  rdma::CompletionQueue* send_cq() { return &send_cq_; }
  rdma::CompletionQueue* recv_cq() { return &recv_cq_; }

  // Topology wiring (before start()).
  void set_qp(uint32_t peer, rdma::QueuePair* qp);

  // Optional; before start().
  void set_error_handler(ErrorFn fn) { error_fn_ = std::move(fn); }

  void start();
  void stop();

  // Any runtime thread: enqueue an outbound request for the Tx thread.
  void post(TxRequest req);

  size_t max_msg_bytes() const { return max_msg_bytes_; }

  // Requests abandoned after exhausting recovery (diagnostics / tests).
  uint64_t dropped_requests() const {
    return dropped_requests_.load(std::memory_order_relaxed);
  }

  // Large-message engine counters (sender side; any thread may sample).
  // started counts rendezvous negotiations begun; completed counts leases
  // released by a kRndzFin; fallbacks counts transfers that reverted to the
  // eager path (lease-table exhaustion or a peer NAK); bytes counts payload
  // bytes moved by completed rendezvous (excluded from eager accounting).
  struct RndzStats {
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t fallbacks = 0;
    uint64_t bytes = 0;
  };
  RndzStats rndz_stats() const {
    return {rndz_started_.load(std::memory_order_relaxed),
            rndz_completed_.load(std::memory_order_relaxed),
            rndz_fallbacks_.load(std::memory_order_relaxed),
            rndz_bytes_.load(std::memory_order_relaxed)};
  }

  // Per-peer outbound byte accounting (protocol bytes: header+payload for
  // SENDs, payload bytes for bulk data), split by transfer mechanism so
  // remote:local ratios and darray-top's per-peer columns stay truthful for
  // the bulk path. Indexed by peer node id; any thread may sample.
  struct PeerTxBytes {
    uint64_t send_bytes = 0;   // eager SEND traffic (headers + payloads)
    uint64_t write_bytes = 0;  // eager one-sided data WRITEs
    uint64_t rndz_bytes = 0;   // completed rendezvous pulls (sender side)
  };
  PeerTxBytes peer_tx_bytes(uint32_t peer) const {
    const auto& c = peer_tx_[peer];
    return {c.send.load(std::memory_order_relaxed),
            c.write.load(std::memory_order_relaxed),
            c.rndz.load(std::memory_order_relaxed)};
  }
  uint64_t total_tx_bytes() const {
    uint64_t total = 0;
    for (uint32_t p = 0; p < num_nodes_; ++p) {
      const auto& c = peer_tx_[p];
      total += c.send.load(std::memory_order_relaxed) +
               c.write.load(std::memory_order_relaxed) +
               c.rndz.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Busy/idle duty cycle of the comm threads (obs; any thread may sample).
  const obs::DutyCycle& tx_duty() const { return tx_duty_; }
  const obs::DutyCycle& rx_duty() const { return rx_duty_; }

 private:
  static constexpr uint32_t kNoBuf = ~0u;

  // One posted (or to-be-posted) WR the Tx thread may have to replay. SENDs
  // always reference a send-arena buffer (a coalesced batch is one entry
  // covering `frames` protocol messages); WRITEs do too in chaos mode (the
  // payload is staged so the source cacheline can be recycled immediately),
  // while outside chaos mode WRITEs stay zero-copy/unsignaled and untracked.
  struct Outstanding {
    uint64_t wr_id = 0;
    uint32_t buf = kNoBuf;      // send-arena buffer index
    uint32_t len = 0;
    rdma::Opcode op = rdma::Opcode::kSend;
    uint64_t remote_addr = 0;   // WRITE only
    uint32_t rkey = 0;          // WRITE only
    uint32_t attempts = 0;      // post attempts so far
    uint16_t frames = 1;        // protocol messages carried (batch SENDs > 1)
    uint64_t deadline_ns = 0;
    uint64_t trace = 0;         // obs correlation id (first traced frame for a
                                //   batch), so retries attribute to their op
    uint8_t msg_class = 0;      // latency-histogram class (MsgType value, or
                                //   kMsgClassDataWrite for data WRITEs)
    rdma::WcStatus last_status = rdma::WcStatus::kSuccess;

    // Rendezvous READ pulls only: the local destination slice this chunk
    // lands in (READs have no arena buffer; replay re-reads into the same
    // slice, which is idempotent), and the pull it belongs to. rndz_last
    // marks the final (signaled) chunk whose retirement completes the pull.
    std::byte* read_dst = nullptr;
    uint32_t read_lkey = 0;
    uint32_t rndz_id = 0;       // key into rndz_pulls_; 0 = not a pull chunk
    bool rndz_last = false;
  };

  // Per-peer recovery state (Tx-private). `moved` receives failed/flushed
  // entries in CQE order while their QP drains; once the outstanding FIFO is
  // empty they are prepended to `retry` (they predate anything staged there)
  // and replayed after the backoff expires.
  struct PeerRecovery {
    std::deque<Outstanding> moved;
    std::deque<Outstanding> retry;
    uint64_t next_attempt_ns = 0;
  };

  // A sealed work request awaiting its doorbell-batched post. Tracked
  // entries (SENDs, chaos-staged WRITEs) enter the outstanding FIFO at post
  // time; untracked zero-copy WRITEs carry the posted_flag to release their
  // source once actually posted.
  struct PendingWr {
    rdma::SendWr wr;
    Outstanding e;
    bool tracked = false;
    std::atomic<uint32_t>* posted_flag = nullptr;
  };

  // Per-peer Tx coalescing state: the open pack buffer (frames written
  // behind a reserved kBatch-envelope slot) plus sealed-but-unposted WRs for
  // this drain pass.
  struct TxBatch {
    uint32_t buf = kNoBuf;
    uint32_t bytes = 0;     // used bytes, including the reserved envelope slot
    uint32_t frames = 0;
    uint64_t open_ns = 0;   // when the first frame was staged
    uint64_t trace = 0;     // first traced frame in the open batch
    uint8_t msg_class = 0;  // class of a single-frame batch (mixed batches
                            //   keep the first frame's class)
    std::vector<PendingWr> wrs;
  };

  // --- rendezvous state -------------------------------------------------------

  // Sender side: one parked large-message request whose source region stays
  // pinned until the peer's kRndzFin (or a NAK reverts it to eager). The
  // lease id on the wire is (generation << 16) | slot so a stale FIN/ACK that
  // raced a fallback cannot release a recycled slot. Guarded by lease_mu_
  // (taken by the Tx thread to start and the Rx thread to release — both are
  // O(1) critical sections on a path already costing a network round trip).
  struct RndzLease {
    TxRequest req;
    uint32_t gen = 0;
    bool active = false;
  };

  // Receiver side: a parsed kRndzReq handed from the Rx thread to the Tx
  // thread (only the Tx thread may post, and the pull is a batch of READ
  // WRs). `inner` is the embedded notification dispatched once the pull's
  // signaled completion retires.
  struct RndzJob {
    RndzDesc desc;
    uint16_t src = 0;     // sender node (where FIN/NAK goes)
    uint64_t trace = 0;
    MsgHeader inner_hdr;
    PayloadBuf inner_payload;
  };

  // Receiver side, Tx-private: an in-flight pull (READ chunks posted, FIN not
  // yet sent). Keyed by a Tx-local id carried in each chunk's Outstanding so
  // chunk retirement/failure can find its pull.
  struct RndzPull {
    uint16_t src = 0;
    uint32_t lease_id = 0;
    uint32_t len = 0;
    uint64_t trace = 0;
    MsgHeader inner_hdr;
    PayloadBuf inner_payload;
  };

  // Profile anchors: keep the drain loops out of the std::thread lambdas so
  // sampled stacks name them (docs/observability.md v5).
  DARRAY_PROFILE_ANCHOR void tx_main();
  DARRAY_PROFILE_ANCHOR void rx_main();
  // Legacy immediate-post path (coalescing off; byte- and WR-identical to the
  // pre-coalescing engine).
  void post_one(TxRequest& req);
  // Coalescing path: stage the request into the per-peer batch state.
  void enqueue_tx(TxRequest& req);
  void append_frame(uint32_t peer, TxRequest& req, uint64_t now);
  void seal_batch(uint32_t peer);
  void flush_peer(uint32_t peer, bool seal_open = true);
  void flush_all();
  void flush_due(uint64_t now);
  void stage_pending(uint32_t peer);
  void stage_request(TxRequest& req, uint64_t now);
  // Stage the eager data WRITE of `req` into arena-backed entries (chunked to
  // max_msg_bytes_ so payloads larger than one arena buffer survive chaos
  // staging) and fire the posted_flag. Appends the entries to `out`.
  void stage_data_chunks(TxRequest& req, uint64_t now, std::deque<Outstanding>& out);
  Outstanding make_send_entry(TxRequest& req, uint64_t now);
  void post_entry(uint32_t peer, Outstanding e);
  // Rendezvous: sender-side negotiation start. Returns false (leaving `req`
  // intact) when no lease slot is free — the caller falls back to eager.
  bool start_rndz(TxRequest& req, uint64_t now);
  // Rendezvous: release lease `id`; returns the parked request if the id was
  // current. `completed` distinguishes FIN (fire flag, count bytes) from NAK.
  void finish_lease(uint32_t id, bool completed);
  // Rendezvous: receiver side (Tx thread). start_pull posts the READ chunks;
  // process_rndz_actions handles completed pulls (dispatch + FIN) and failed
  // ones (NAK) — deferred so they never run nested inside a flush.
  void start_pull(RndzJob&& job, uint64_t now);
  bool process_rndz_actions(uint64_t now);
  void send_ctl(uint16_t dst, MsgType type, uint32_t lease_id, uint64_t trace);
  // Rx-thread intercept for transport-internal rendezvous messages; returns
  // true when the message was consumed (not for the runtime).
  bool handle_rndz_msg(RpcMessage& m);
  void reclaim_send_buffers();
  void handle_error_cqe(const rdma::WorkCompletion& wc);
  void pump_retries(uint64_t now);
  void fail_entry(uint32_t peer, Outstanding& e, const char* reason);
  void fail(const CommError& err);
  uint64_t retry_due_in(uint64_t now) const;
  uint64_t backoff_ns(uint32_t attempts) const;
  uint32_t acquire_send_buffer();  // parks on the Tx doorbell when exhausted
  uint32_t stage_send_msg(TxRequest& req);  // copy header+payload into a buffer
  void release_buf(uint32_t buf) {
    if (buf != kNoBuf) send_free_.push_back(buf);
  }
  std::byte* buf_ptr(uint32_t buf) {
    return send_arena_.get() + size_t{buf} * max_msg_bytes_;
  }

  const uint32_t node_id_;
  const uint32_t num_nodes_;
  const ClusterConfig cfg_;
  rdma::Device* device_;
  DispatchFn dispatch_;
  ErrorFn error_fn_;
  const size_t max_msg_bytes_;

  Doorbell tx_bell_;
  Doorbell rx_bell_;
  rdma::CompletionQueue send_cq_{&tx_bell_};
  rdma::CompletionQueue recv_cq_{&rx_bell_};
  MpscQueue<TxRequest> tx_queue_{&tx_bell_};

  std::vector<rdma::QueuePair*> qp_to_peer_;        // indexed by peer node id
  std::vector<rdma::QueuePair*> qp_by_num_;         // sparse, indexed by qp_num

  // Send-side message buffers: one registered arena, Tx-private freelist,
  // per-QP FIFO of outstanding buffers reclaimed by signaled completions.
  std::unique_ptr<std::byte[]> send_arena_;
  rdma::MemoryRegion send_mr_;
  uint32_t send_buf_count_ = 0;
  std::vector<uint32_t> send_free_;                  // Tx-private
  std::vector<std::deque<Outstanding>> outstanding_; // per peer
  std::vector<PeerRecovery> recovery_;               // per peer, Tx-private
  std::vector<TxBatch> txb_;                         // per peer, Tx-private
  std::vector<rdma::SendWr> post_wrs_;               // flush scratch, Tx-private
  std::vector<uint32_t> unsignaled_run_;             // per peer, for signaling
  uint64_t next_wr_id_ = 1;
  bool chaos_ = false;     // fabric has a fault injector (latched at start())
  bool in_flush_ = false;  // Tx-private: guards acquire→flush reentrancy

  // Recv-side buffers: preposted per QP, reposted by Rx after parsing.
  // Buffers flushed by a QP error are parked (Rx-private) until the Tx side
  // resets the QP, then reposted.
  std::unique_ptr<std::byte[]> recv_arena_;
  rdma::MemoryRegion recv_mr_;
  std::vector<std::vector<rdma::RecvWr>> parked_recvs_;  // per peer, Rx-private
  std::vector<RpcMessage> rx_scratch_;                   // Rx-private

  std::atomic<uint64_t> dropped_requests_{0};

  // --- rendezvous state (see struct comments above) ---------------------------
  std::mutex lease_mu_;
  std::vector<RndzLease> leases_;                    // fixed size, cfg-bounded
  MpscQueue<RndzJob> rndz_jobs_{&tx_bell_};          // Rx → Tx pull handoff
  std::unordered_map<uint32_t, RndzPull> rndz_pulls_;  // Tx-private, in-flight
  uint32_t next_rndz_id_ = 1;                        // Tx-private
  std::vector<uint32_t> rndz_done_;                  // Tx-private, deferred
  struct RndzNak {
    uint16_t src = 0;
    uint32_t lease_id = 0;
    uint64_t trace = 0;
  };
  std::vector<RndzNak> rndz_nak_;                    // Tx-private, deferred
  std::atomic<uint64_t> rndz_started_{0}, rndz_completed_{0};
  std::atomic<uint64_t> rndz_fallbacks_{0}, rndz_bytes_{0};

  // Per-peer outbound byte counters (see PeerTxBytes).
  struct PeerTxCounters {
    std::atomic<uint64_t> send{0}, write{0}, rndz{0};
  };
  std::unique_ptr<PeerTxCounters[]> peer_tx_;

  obs::DutyCycle tx_duty_;
  obs::DutyCycle rx_duty_;

  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace darray::net
