// The paper's communication layer (Fig. 2, §4.5): per node, a Tx thread that
// drains the RDMA-request queue and posts work to the NIC with selective
// signaling, and an Rx thread that polls the completion queue and delivers
// parsed RPC messages to the runtime. Dedicated networking threads mean the
// QP count is nodes² × 1, independent of the number of application/runtime
// threads — the paper's n²·c (c = networking threads) instead of n²·t.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/mpsc_queue.hpp"
#include "net/message.hpp"
#include "rdma/completion_queue.hpp"
#include "rdma/device.hpp"
#include "rdma/fabric.hpp"
#include "rdma/queue_pair.hpp"

namespace darray::net {

class CommLayer {
 public:
  // `dispatch` is invoked on the Rx thread for every inbound message; it must
  // only route (push to a runtime queue), never block.
  using DispatchFn = std::function<void(RpcMessage&&)>;

  CommLayer(uint32_t node_id, uint32_t num_nodes, const ClusterConfig& cfg,
            rdma::Device* device, DispatchFn dispatch);
  ~CommLayer();

  CommLayer(const CommLayer&) = delete;
  CommLayer& operator=(const CommLayer&) = delete;

  rdma::Device* device() const { return device_; }
  rdma::CompletionQueue* send_cq() { return &send_cq_; }
  rdma::CompletionQueue* recv_cq() { return &recv_cq_; }

  // Topology wiring (before start()).
  void set_qp(uint32_t peer, rdma::QueuePair* qp);

  void start();
  void stop();

  // Any runtime thread: enqueue an outbound request for the Tx thread.
  void post(TxRequest req);

  size_t max_msg_bytes() const { return max_msg_bytes_; }

 private:
  void tx_main();
  void rx_main();
  void post_one(TxRequest& req);
  void reclaim_send_buffers();
  uint32_t acquire_send_buffer();  // may poll the send CQ until one frees up

  const uint32_t node_id_;
  const uint32_t num_nodes_;
  const ClusterConfig cfg_;
  rdma::Device* device_;
  DispatchFn dispatch_;
  const size_t max_msg_bytes_;

  Doorbell tx_bell_;
  Doorbell rx_bell_;
  rdma::CompletionQueue send_cq_{&tx_bell_};
  rdma::CompletionQueue recv_cq_{&rx_bell_};
  MpscQueue<TxRequest> tx_queue_{&tx_bell_};

  std::vector<rdma::QueuePair*> qp_to_peer_;        // indexed by peer node id
  std::vector<rdma::QueuePair*> qp_by_num_;         // sparse, indexed by qp_num

  // Send-side message buffers: one registered arena, Tx-private freelist,
  // per-QP FIFO of outstanding buffers reclaimed by signaled completions.
  std::unique_ptr<std::byte[]> send_arena_;
  rdma::MemoryRegion send_mr_;
  uint32_t send_buf_count_ = 0;
  std::vector<uint32_t> send_free_;                  // Tx-private
  struct Outstanding {
    uint64_t wr_id;
    uint32_t buf;
  };
  std::vector<std::deque<Outstanding>> outstanding_; // per peer
  std::vector<uint32_t> unsignaled_run_;             // per peer, for signaling
  uint64_t next_wr_id_ = 1;

  // Recv-side buffers: preposted per QP, reposted by Rx after parsing.
  std::unique_ptr<std::byte[]> recv_arena_;
  rdma::MemoryRegion recv_mr_;

  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace darray::net
