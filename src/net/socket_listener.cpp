#include "net/socket_listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "obs/thread_registry.hpp"

namespace darray::net {

bool send_all(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;  // client went away; nothing to clean up
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SocketListener::start(Options opts, ConnFn on_conn) {
  if (listen_fd_ >= 0) return true;
  opts_ = std::move(opts);
  on_conn_ = std::move(on_conn);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    DLOG_ERROR("%s: socket() failed: %s", opts_.name.c_str(), std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    DLOG_ERROR("%s: bad bind address '%s'", opts_.name.c_str(), opts_.bind_addr.c_str());
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, opts_.backlog) != 0) {
    DLOG_ERROR("%s: cannot listen on %s:%u: %s", opts_.name.c_str(),
               opts_.bind_addr.c_str(), opts_.port, std::strerror(errno));
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketListener::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocking accept(); close() alone can leave it parked.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;  // after the join: the accept thread reads this field
}

void SocketListener::accept_loop() {
  // The options name ("telemetry", "gateway", ...) doubles as the accept
  // thread's registered name in trace and profile dumps.
  obs::register_current_thread(opts_.name.c_str());
  const int listen_fd = listen_fd_;
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down (or fatally broken): exit
    connections_.fetch_add(1, std::memory_order_relaxed);
    on_conn_(fd);
    ::close(fd);
  }
}

}  // namespace darray::net
