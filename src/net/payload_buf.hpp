// Zero-allocation payload storage for protocol messages.
//
// The Tx/Rx hot path used to heap-allocate a std::vector<std::byte> per
// message (§4.5 makes per-op software overhead the whole ballgame for small
// ops). PayloadBuf removes that: payloads up to kInlineBytes live inside the
// object, larger ones borrow a fixed-size block from a process-wide freelist
// pool, and only payloads beyond the pool's block size fall back to the heap.
// Blocks cross threads freely (allocated on a runtime or Rx thread, released
// wherever the message dies), so the freelist is guarded by a spinlock —
// push/pop is a handful of instructions, far below a malloc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace darray::net {

struct PayloadPoolStats {
  uint64_t hits = 0;    // block served from the freelist
  uint64_t misses = 0;  // freelist empty or payload over block size → heap
};

// Process-wide pool counters (monotonic; read for stats/benches).
PayloadPoolStats payload_pool_stats();

// Internal: pool block size — payloads above this heap-allocate (a miss).
// Sized for the largest default protocol payload (a full-chunk OpFlush of
// 512 entries × 16 B) with headroom for larger configured chunks.
inline constexpr size_t kPayloadPoolBlockBytes = 16 * 1024;

std::byte* payload_pool_acquire();       // always returns a block (heap on miss)
void payload_pool_release(std::byte* p); // freelist capped; overflow is deleted

class PayloadBuf {
 public:
  // Inline capacity: covers acks, lock traffic, and small OpFlush batches
  // (7 entries) without touching the pool.
  static constexpr size_t kInlineBytes = 112;

  PayloadBuf() = default;
  explicit PayloadBuf(size_t n) { resize(n); }

  PayloadBuf(PayloadBuf&& o) noexcept { steal(o); }
  PayloadBuf& operator=(PayloadBuf&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  // Deep copy (vector semantics): a few protocol paths keep a message while
  // forwarding it.
  PayloadBuf(const PayloadBuf& o) { assign(o.data(), o.size_); }
  PayloadBuf& operator=(const PayloadBuf& o) {
    if (this != &o) {
      size_ = 0;
      assign(o.data(), o.size_);
    }
    return *this;
  }
  ~PayloadBuf() { release(); }

  std::byte* data() { return block_ ? block_ : inline_; }
  const std::byte* data() const { return block_ ? block_ : inline_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::byte& operator[](size_t i) { return data()[i]; }
  std::byte operator[](size_t i) const { return data()[i]; }

  // Grows preserving contents; freshly exposed bytes are zeroed (vector
  // semantics — callers pattern-fill over them).
  void resize(size_t n) {
    reserve(n);
    if (n > size_) std::memset(data() + size_, 0, n - size_);
    size_ = n;
  }

  void assign(const void* p, size_t n) {
    reserve(n);
    if (n) std::memcpy(data(), p, n);
    size_ = n;
  }

  void append(const void* p, size_t n) {
    reserve(size_ + n);
    std::memcpy(data() + size_, p, n);
    size_ += n;
  }

  void clear() {
    release();
    size_ = 0;
  }

  friend bool operator==(const PayloadBuf& a, const PayloadBuf& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }

 private:
  void reserve(size_t n) {
    if (n <= cap_) return;
    std::byte* nb;
    size_t ncap;
    if (n <= kPayloadPoolBlockBytes) {
      nb = payload_pool_acquire();
      ncap = kPayloadPoolBlockBytes;
    } else {
      nb = new std::byte[n];
      ncap = n;
    }
    if (size_) std::memcpy(nb, data(), size_);
    release();
    block_ = nb;
    cap_ = ncap;
  }

  void release() {
    if (!block_) return;
    if (cap_ == kPayloadPoolBlockBytes)
      payload_pool_release(block_);
    else
      delete[] block_;
    block_ = nullptr;
    cap_ = kInlineBytes;
  }

  void steal(PayloadBuf& o) {
    size_ = o.size_;
    if (o.block_) {
      block_ = o.block_;
      cap_ = o.cap_;
      o.block_ = nullptr;
      o.cap_ = kInlineBytes;
    } else if (size_) {
      std::memcpy(inline_, o.inline_, size_);
    }
    o.size_ = 0;
  }

  size_t size_ = 0;
  size_t cap_ = kInlineBytes;
  std::byte* block_ = nullptr;  // set iff cap_ > kInlineBytes
  std::byte inline_[kInlineBytes];
};

}  // namespace darray::net
