#include "net/payload_buf.hpp"

#include <atomic>
#include <mutex>
#include <vector>

#include "common/spinlock.hpp"

namespace darray::net {

namespace {

constexpr size_t kPoolMaxBlocks = 256;  // freelist cap: 4 MiB resident

struct Pool {
  SpinLock mu;
  std::vector<std::byte*> free;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

// Intentionally leaked: payload buffers live inside static fixtures in some
// benches, so the pool must outlive every static destructor.
Pool& pool() {
  static Pool* p = new Pool;
  return *p;
}

}  // namespace

std::byte* payload_pool_acquire() {
  Pool& p = pool();
  {
    std::scoped_lock lk(p.mu);
    if (!p.free.empty()) {
      std::byte* b = p.free.back();
      p.free.pop_back();
      p.hits.fetch_add(1, std::memory_order_relaxed);
      return b;
    }
  }
  p.misses.fetch_add(1, std::memory_order_relaxed);
  return new std::byte[kPayloadPoolBlockBytes];
}

void payload_pool_release(std::byte* b) {
  Pool& p = pool();
  {
    std::scoped_lock lk(p.mu);
    if (p.free.size() < kPoolMaxBlocks) {
      p.free.push_back(b);
      return;
    }
  }
  delete[] b;
}

PayloadPoolStats payload_pool_stats() {
  Pool& p = pool();
  PayloadPoolStats s;
  s.hits = p.hits.load(std::memory_order_relaxed);
  s.misses = p.misses.load(std::memory_order_relaxed);
  return s;
}

}  // namespace darray::net
