// Protocol message formats exchanged between nodes' runtime layers.
//
// Wire format of a two-sided message: [MsgHeader][payload bytes]. Bulk
// application data (cache fills, writebacks) never rides in payloads — it is
// moved by one-sided RDMA WRITE and the two-sided message is only the
// notification, as in the paper (§4.5). Payloads carry combined Operate
// operands and nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace darray::net {

enum class MsgType : uint8_t {
  kInvalid = 0,

  // --- coherence: requester → home -----------------------------------------
  kReadReq,      // addr/rkey: where home must WRITE the chunk data
  kWriteReq,     // addr/rkey: ditto; grants exclusive ownership
  kOperateReq,   // op_id: join the Operated participant set (no data moves)
  kWriteback,    // voluntary Dirty eviction; data WRITE precedes this message
  kOpFlush,      // payload = combined (offset, operand) pairs; voluntary
                 // eviction or reply to kFlushReq

  // --- coherence: home → others ---------------------------------------------
  kReadData,     // fill complete (data already WRITTEN into your cacheline)
  kWriteData,    // exclusive fill complete
  kOperateResp,  // you are now an Operated participant
  kInvalidate,   // drop your Shared copy, then ack
  kFetch,        // write your Dirty data back (one-sided) then kFetchData;
                 //   aux = target state for your copy (see FetchTarget)
  kFlushReq,     // flush your combine buffer (kOpFlush), drop the line

  // --- coherence: others → home ---------------------------------------------
  kInvAck,
  kFetchData,    // data WRITE into home subarray precedes this message

  // --- distributed reader/writer locks --------------------------------------
  kLockAcq,      // addr = element index, aux = LockMode
  kLockGrant,    // txn_id echoes the acquire
  kLockRel,      // addr = element index

  kMaxMsgType,
};

enum class FetchTarget : uint32_t { kInvalid = 0, kShared = 1 };
enum class LockMode : uint32_t { kRead = 0, kWrite = 1 };

struct MsgHeader {
  MsgType type = MsgType::kInvalid;
  uint8_t pad = 0;
  uint16_t src_node = 0;
  uint16_t array_id = 0;
  uint16_t op_id = 0;
  uint32_t txn_id = 0;      // requester-side matching (locks, diagnostics)
  uint32_t payload_len = 0;
  uint64_t chunk = 0;
  uint64_t addr = 0;        // data placement address / element index for locks
  uint32_t rkey = 0;
  uint32_t aux = 0;         // FetchTarget / LockMode / misc
};
static_assert(sizeof(MsgHeader) == 40);

// A parsed inbound message as delivered to a runtime thread.
struct RpcMessage {
  MsgHeader hdr;
  std::vector<std::byte> payload;
};

// An outbound request handed from a runtime thread to the Tx thread: an
// optional one-sided data WRITE followed (FIFO on the same QP) by the
// two-sided header+payload SEND.
struct TxRequest {
  uint16_t dst = 0;
  MsgHeader hdr;
  std::vector<std::byte> payload;

  // Optional preceding one-sided WRITE.
  const std::byte* data_src = nullptr;  // must lie in the MR named by data_lkey
  uint32_t data_len = 0;
  uint32_t data_lkey = 0;
  uint64_t data_remote_addr = 0;
  uint32_t data_rkey = 0;

  // Optional release hook: set to 1 by the Tx thread once the data WRITE has
  // been posted (payload copied), letting the runtime recycle the source
  // cacheline without a protocol-level ack.
  std::atomic<uint32_t>* posted_flag = nullptr;

  bool has_data() const { return data_src != nullptr; }
};

// Payload entry for kOpFlush: one touched element's combined operand.
// Operands are raw element bytes, at most 8 (Operate is restricted to
// lock-free-combinable element sizes).
struct OpFlushEntry {
  uint16_t offset;       // element offset within the chunk
  uint16_t pad = 0;
  uint32_t pad2 = 0;
  uint64_t value_bits;   // raw little-endian element bytes, zero-extended
};
static_assert(sizeof(OpFlushEntry) == 16);

const char* msg_type_name(MsgType t);

}  // namespace darray::net
