// Protocol message formats exchanged between nodes' runtime layers.
//
// Wire format of a two-sided message: [MsgHeader][payload bytes]. Bulk
// application data (cache fills, writebacks) never rides in payloads — it is
// moved by one-sided RDMA WRITE and the two-sided message is only the
// notification, as in the paper (§4.5). Payloads carry combined Operate
// operands and nothing else.
//
// Coalesced wire format (docs/perf.md): when the Tx thread packs several
// protocol messages for the same peer into one SEND, the wire image is
//   [MsgHeader type=kBatch, aux=frame count, payload_len=frame bytes]
//   [frame 0][frame 1]...
// where each frame is itself [MsgHeader][payload]. A batch of one frame is
// sent bare (no kBatch envelope), so singletons are byte-identical to the
// uncoalesced format. kBatch never reaches the runtime: the Rx thread
// unpacks frames and dispatches each as its own RpcMessage.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "net/payload_buf.hpp"

namespace darray::net {

enum class MsgType : uint8_t {
  kInvalid = 0,

  // --- coherence: requester → home -----------------------------------------
  kReadReq,      // addr/rkey: where home must WRITE the chunk data
  kWriteReq,     // addr/rkey: ditto; grants exclusive ownership
  kOperateReq,   // op_id: join the Operated participant set (no data moves)
  kWriteback,    // voluntary Dirty eviction; data WRITE precedes this message
  kOpFlush,      // payload = combined (offset, operand) pairs; voluntary
                 // eviction or reply to kFlushReq

  // --- coherence: home → others ---------------------------------------------
  kReadData,     // fill complete (data already WRITTEN into your cacheline)
  kWriteData,    // exclusive fill complete
  kOperateResp,  // you are now an Operated participant
  kInvalidate,   // drop your Shared copy, then ack
  kFetch,        // write your Dirty data back (one-sided) then kFetchData;
                 //   aux = target state for your copy (see FetchTarget)
  kFlushReq,     // flush your combine buffer (kOpFlush), drop the line

  // --- coherence: others → home ---------------------------------------------
  kInvAck,
  kFetchData,    // data WRITE into home subarray precedes this message

  // --- distributed reader/writer locks --------------------------------------
  kLockAcq,      // addr = element index, aux = LockMode
  kLockGrant,    // txn_id echoes the acquire
  kLockRel,      // addr = element index

  // --- array-compute collectives (src/compute) -------------------------------
  kReducePart,   // one edge of a reduction tree: txn_id/chunk = collective
                 //   sequence number (chunk doubles as the runtime-thread
                 //   routing key), addr = scalar partial bits, rkey = fragment
                 //   index, aux = fragment count, payload = per-chunk partials
                 //   (deterministic mode only)

  // --- client-serving plane (src/serve) --------------------------------------
  kClientReq,    // session → owner dispatcher: txn_id = session id, addr =
                 //   request sequence, chunk = hash spread (runtime-thread
                 //   routing only), payload = [WireReq][key][value]. Journey
                 //   piggyback (obs v4): trace = journey id, aux:rkey = the
                 //   origin's t_submit stamp split hi:lo (all zero when
                 //   journey tracing is off)
  kClientResp,   // owner dispatcher → session: txn_id/addr echo the request,
                 //   trace echoes the journey id, payload = [WireResp][value]
                 //   [WireJourney if WireResp.flags bit 0]

  // --- transport-internal ----------------------------------------------------
  kBatch,        // coalesced SEND envelope; aux = frame count (Rx unpacks,
                 // never delivered to the runtime)

  // Rendezvous large-message protocol (docs/perf.md). None of these reach the
  // runtime: the comm layer negotiates, pulls, and finally dispatches the
  // *embedded* notification carried by kRndzReq.
  kRndzReq,      // txn_id = lease id; payload = [RndzDesc][inner MsgHeader]
                 //   [inner payload] — the sender advertises its pinned
                 //   source region, the receiver pulls it with RDMA READs
  kRndzAck,      // NAK: txn_id echoes the lease id; the receiver could not
                 //   complete the pull — sender falls back to eager
  kRndzFin,      // txn_id echoes the lease id; pull complete, release the
                 //   lease (and fire the source's posted_flag)

  kMaxMsgType,
};

enum class FetchTarget : uint32_t { kInvalid = 0, kShared = 1 };
enum class LockMode : uint32_t { kRead = 0, kWrite = 1 };

struct MsgHeader {
  MsgType type = MsgType::kInvalid;
  uint8_t pad = 0;
  uint16_t src_node = 0;
  uint16_t array_id = 0;
  uint16_t op_id = 0;
  uint32_t txn_id = 0;      // requester-side matching (locks, diagnostics)
  uint32_t payload_len = 0;
  uint64_t chunk = 0;
  uint64_t addr = 0;        // data placement address / element index for locks
  uint32_t rkey = 0;
  uint32_t aux = 0;         // FetchTarget / LockMode / misc
  uint64_t trace = 0;       // obs correlation id; rides the wire so a home
                            //   node's work is attributed to the remote op
};
static_assert(sizeof(MsgHeader) == 48);

// A parsed inbound message as delivered to a runtime thread.
struct RpcMessage {
  MsgHeader hdr;
  PayloadBuf payload;
};

// An outbound request handed from a runtime thread to the Tx thread: an
// optional one-sided data WRITE followed (FIFO on the same QP) by the
// two-sided header+payload SEND.
struct TxRequest {
  uint16_t dst = 0;
  MsgHeader hdr;
  PayloadBuf payload;

  // Optional preceding one-sided WRITE.
  const std::byte* data_src = nullptr;  // must lie in the MR named by data_lkey
  uint32_t data_len = 0;
  uint32_t data_lkey = 0;
  uint64_t data_remote_addr = 0;
  uint32_t data_rkey = 0;

  // Optional release hook: set to 1 by the Tx thread once the data WRITE has
  // been posted (payload copied), letting the runtime recycle the source
  // cacheline without a protocol-level ack. Rendezvous defers the release to
  // the kRndzFin (the source stays pinned until the peer's READs complete).
  std::atomic<uint32_t>* posted_flag = nullptr;

  // Comm-layer internal: set when a rendezvous falls back (NAK or lease
  // exhaustion) so the re-post takes the eager path unconditionally.
  bool force_eager = false;

  bool has_data() const { return data_src != nullptr; }
};

// Region advertisement at the head of a kRndzReq payload: where the receiver
// must READ from (the sender's pinned source) and where the bytes must land
// (the receiver's own registered region, as named by the original request's
// data_remote_addr/data_rkey).
struct RndzDesc {
  uint64_t src_addr = 0;  // sender-side source address
  uint64_t dst_addr = 0;  // receiver-side destination address
  uint32_t src_rkey = 0;
  uint32_t dst_rkey = 0;
  uint32_t len = 0;
  uint32_t lease_id = 0;  // echoed in kRndzFin / kRndzAck
};
static_assert(sizeof(RndzDesc) == 32);

// Payload entry for kOpFlush: one touched element's combined operand.
// Operands are raw element bytes, at most 8 (Operate is restricted to
// lock-free-combinable element sizes).
struct OpFlushEntry {
  uint16_t offset;       // element offset within the chunk
  uint16_t pad = 0;
  uint32_t pad2 = 0;
  uint64_t value_bits;   // raw little-endian element bytes, zero-extended
};
static_assert(sizeof(OpFlushEntry) == 16);

const char* msg_type_name(MsgType t);

// Message-class axis for per-class latency histograms (obs v2): the class of
// a SEND is its MsgType value; a one-sided data WRITE uses the reserved class
// one past the last MsgType, and a rendezvous READ pull the one after that —
// so eager and rendezvous bulk bytes are distinguishable in hist.msg.*.
// kNumMsgClasses must stay ≤ obs::kMaxMsgClasses.
inline constexpr uint8_t kMsgClassDataWrite = static_cast<uint8_t>(MsgType::kMaxMsgType);
inline constexpr uint8_t kMsgClassRndzData = kMsgClassDataWrite + 1;
inline constexpr uint32_t kNumMsgClasses = kMsgClassRndzData + 1;

// Display name for a message class ("data_write" for the WRITE class,
// msg_type_name otherwise). Defined in comm_layer.cpp beside msg_type_name.
const char* msg_class_name(uint8_t cls);

// --- batch framing -----------------------------------------------------------
// Shared between the comm layer's Tx packer, the Rx unpacker, and the framing
// unit tests, so pack and unpack can never drift apart.

// Bytes one frame occupies on the wire.
inline size_t frame_bytes(size_t payload_len) { return sizeof(MsgHeader) + payload_len; }

// Writes one [MsgHeader][payload] frame at `dst` (caller sized the buffer;
// hdr.payload_len must already equal `payload_len`). Returns the frame size.
inline size_t write_frame(std::byte* dst, const MsgHeader& hdr, const std::byte* payload,
                          size_t payload_len) {
  std::memcpy(dst, &hdr, sizeof(MsgHeader));
  if (payload_len) std::memcpy(dst + sizeof(MsgHeader), payload, payload_len);
  return sizeof(MsgHeader) + payload_len;
}

// Writes the kBatch envelope header for `frames` frames spanning
// `frame_bytes_total` bytes, at the start of the wire buffer.
inline void write_batch_header(std::byte* dst, uint16_t src_node, uint32_t frames,
                               size_t frame_bytes_total) {
  MsgHeader bh;
  bh.type = MsgType::kBatch;
  bh.src_node = src_node;
  bh.aux = frames;
  bh.payload_len = static_cast<uint32_t>(frame_bytes_total);
  std::memcpy(dst, &bh, sizeof(MsgHeader));
}

// Iterates the frames of a batch payload (the bytes after the kBatch header).
// next() returns false when all frames were consumed or the image is
// malformed; valid() distinguishes the two after the loop.
class BatchReader {
 public:
  BatchReader(const std::byte* frames, size_t len, uint32_t count)
      : p_(frames), end_(frames + len), remaining_(count) {}

  // On success fills hdr and points payload at the in-place frame bytes.
  bool next(MsgHeader& hdr, const std::byte*& payload) {
    if (remaining_ == 0) return false;
    if (p_ + sizeof(MsgHeader) > end_) {
      malformed_ = true;
      return false;
    }
    std::memcpy(&hdr, p_, sizeof(MsgHeader));
    if (p_ + sizeof(MsgHeader) + hdr.payload_len > end_) {
      malformed_ = true;
      return false;
    }
    payload = p_ + sizeof(MsgHeader);
    p_ += sizeof(MsgHeader) + hdr.payload_len;
    --remaining_;
    return true;
  }

  // True iff every advertised frame was parsed and the image was fully
  // consumed with no trailing bytes.
  bool valid() const { return !malformed_ && remaining_ == 0 && p_ == end_; }

 private:
  const std::byte* p_;
  const std::byte* end_;
  uint32_t remaining_;
  bool malformed_ = false;
};

}  // namespace darray::net
