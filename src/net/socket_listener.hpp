// Minimal reusable loopback TCP listener: socket/bind/listen plus one
// dedicated blocking accept thread invoking a per-connection handler.
// Extracted from the telemetry server so the operator port (/metrics) and the
// serving front end (src/serve TcpGateway) share one listener implementation
// instead of two copies of the accept/read/write plumbing.
//
// Connections are handled serially on the accept thread: a slow or hostile
// client can stall the listener but never the data path (handlers must only
// touch thread-safe surfaces). The handler receives the connected fd and may
// read/write freely; the listener closes the fd after the handler returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

namespace darray::net {

// Writes all of `data` to `fd`, swallowing client-gone errors (the caller has
// nothing to clean up). Returns false when the peer went away mid-write.
bool send_all(int fd, std::string_view data);

class SocketListener {
 public:
  struct Options {
    std::string bind_addr = "127.0.0.1";  // operator/loopback by default
    uint16_t port = 0;                    // 0 = ephemeral; see port()
    int backlog = 16;
    std::string name = "listener";        // log prefix
  };

  using ConnFn = std::function<void(int fd)>;

  SocketListener() = default;
  ~SocketListener() { stop(); }

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds, listens, and spawns the accept thread. False (with the reason on
  // the error log) when the socket cannot be set up — e.g. the port is taken.
  bool start(Options opts, ConnFn on_conn);
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }
  uint64_t connections() const { return connections_.load(std::memory_order_relaxed); }

 private:
  void accept_loop();

  Options opts_;
  ConnFn on_conn_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<uint64_t> connections_{0};
  std::thread thread_;
};

}  // namespace darray::net
