// Log-bucketed latency histogram (nanosecond samples) with percentile and
// mean queries. Cheap enough to record on benchmark hot paths and mergeable
// across threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace darray {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(uint64_t nanos);
  void merge(const LatencyHistogram& other);
  void reset();

  uint64_t count() const { return count_; }
  double mean_ns() const;
  // q in [0, 1]; returns an upper bound of the bucket containing the quantile.
  uint64_t percentile_ns(double q) const;

  std::string summary() const;  // "n=... mean=...ns p50=... p99=..."

 private:
  // Buckets: [0,1), [1,2), ... with sub-bucket resolution of 1/16 per octave
  // (i.e. HDR-style with 4 significant bits).
  static constexpr int kSubBits = 4;
  static constexpr int kBuckets = 64 * (1 << kSubBits);
  static int bucket_index(uint64_t nanos);
  static uint64_t bucket_upper(int idx);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~0ull;
};

// Monotonic clock helper.
uint64_t now_ns();

}  // namespace darray
