// Minimal leveled logger.
//
// The simulator runs dozens of threads on one core, so logging is off by
// default (level = kWarn) and every call sites checks the level before
// formatting. Set DARRAY_LOG=debug|info|warn|error to change at startup.
#pragma once

#include <atomic>
#include <cstdarg>

namespace darray {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace detail {
// Initialised from the DARRAY_LOG environment variable on first use.
std::atomic<int>& log_level_storage();
}  // namespace detail

inline LogLevel log_level() {
  return static_cast<LogLevel>(detail::log_level_storage().load(std::memory_order_relaxed));
}

inline void set_log_level(LogLevel lvl) {
  detail::log_level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed);
}

inline bool log_enabled(LogLevel lvl) { return lvl >= log_level(); }

// printf-style; appends a newline and prefixes level + thread id.
void log_write(LogLevel lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace darray

#define DLOG_DEBUG(...)                                              \
  do {                                                               \
    if (::darray::log_enabled(::darray::LogLevel::kDebug))           \
      ::darray::log_write(::darray::LogLevel::kDebug, __VA_ARGS__);  \
  } while (0)
#define DLOG_INFO(...)                                              \
  do {                                                              \
    if (::darray::log_enabled(::darray::LogLevel::kInfo))           \
      ::darray::log_write(::darray::LogLevel::kInfo, __VA_ARGS__);  \
  } while (0)
#define DLOG_WARN(...)                                              \
  do {                                                              \
    if (::darray::log_enabled(::darray::LogLevel::kWarn))           \
      ::darray::log_write(::darray::LogLevel::kWarn, __VA_ARGS__);  \
  } while (0)
#define DLOG_ERROR(...)                                              \
  do {                                                               \
    if (::darray::log_enabled(::darray::LogLevel::kError))           \
      ::darray::log_write(::darray::LogLevel::kError, __VA_ARGS__);  \
  } while (0)
