// xoshiro256** PRNG (Blackman & Vigna) — fast, high quality, and seedable per
// thread so workload generation is deterministic and contention-free.
#pragma once

#include <cstdint>

namespace darray {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding as recommended by the authors.
    uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough bounded draw (Lemire multiply-shift).
  uint64_t next_below(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // UniformRandomBitGenerator interface for <random> interop.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return next(); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace darray
