// Hybrid spin/futex waiting.
//
// The whole cluster simulation is heavily oversubscribed (many nodes' worth of
// threads on few cores), so unbounded spinning would starve the thread that
// must make progress. Every wait here spins a short, bounded burst and then
// parks on the atomic via C++20 atomic::wait (a futex on Linux). Producers
// must call notify after their store.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace darray {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

// Spin budget before parking. Kept small: on an oversubscribed box the value
// we wait for is usually produced by a thread that needs our core.
inline constexpr int kSpinBudget = 128;

// Wait until pred(var.load(acquire)) is true. Pred is re-evaluated on wakeup.
template <typename T, typename Pred>
inline void spin_wait_until(const std::atomic<T>& var, Pred&& pred) {
  for (int i = 0; i < kSpinBudget; ++i) {
    if (pred(var.load(std::memory_order_acquire))) return;
    cpu_relax();
  }
  for (;;) {
    T v = var.load(std::memory_order_acquire);
    if (pred(v)) return;
    var.wait(v, std::memory_order_acquire);
  }
}

// One-shot completion flag an application thread parks on while the runtime
// services its slow-path request.
class Completion {
 public:
  void signal() {
    done_.store(1, std::memory_order_release);
    done_.notify_one();
  }

  void wait() const {
    spin_wait_until(done_, [](uint32_t v) { return v != 0; });
  }

  bool ready() const { return done_.load(std::memory_order_acquire) != 0; }

  void reset() { done_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint32_t> done_{0};
};

// Counts outstanding events; wait() returns when the count reaches zero.
class CountLatch {
 public:
  explicit CountLatch(uint32_t n = 0) : n_(n) {}

  void add(uint32_t k = 1) { n_.fetch_add(k, std::memory_order_relaxed); }

  void done(uint32_t k = 1) {
    if (n_.fetch_sub(k, std::memory_order_acq_rel) == k) n_.notify_all();
  }

  void wait() const {
    spin_wait_until(n_, [](uint32_t v) { return v == 0; });
  }

 private:
  std::atomic<uint32_t> n_;
};

}  // namespace darray
