// Unbounded multi-producer single-consumer queue (Vyukov style) plus the
// Doorbell used to park consumer threads.
//
// These queues are the arrows in the paper's Fig. 2: application threads →
// runtime (local-req queue), Rx thread → runtime (RPC-msg queue), runtime →
// Tx thread (RDMA-req queue). All are MPSC: each queue has exactly one
// consumer thread that owns its protocol state.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/wait.hpp"

namespace darray {

// Eventcount-style wakeup channel. One consumer may wait on one doorbell fed
// by any number of queues: producers ring after pushing; the consumer
// snapshots, drains everything, and only parks if the snapshot is unchanged.
//
// ring() skips the notify syscall while the consumer is known-awake: a
// consumer that is draining will observe the bumped sequence on its next
// snapshot without being woken, so hot-path producers pay one atomic
// increment and one load, no futex. The waiter flag uses Dekker-style seq_cst
// ordering: the consumer publishes waiting_ before re-checking seq_, the
// producer bumps seq_ before reading waiting_, so at least one side always
// sees the other and the wakeup cannot be lost.
class Doorbell {
 public:
  void ring() {
    seq_.fetch_add(1, std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_seq_cst)) seq_.notify_one();
  }

  uint32_t snapshot() const { return seq_.load(std::memory_order_acquire); }

  void wait_change(uint32_t old) const {
    for (int i = 0; i < kSpinBudget; ++i) {
      if (seq_.load(std::memory_order_acquire) != old) return;
      cpu_relax();
    }
    waiting_.store(true, std::memory_order_seq_cst);
    for (;;) {
      const uint32_t v = seq_.load(std::memory_order_seq_cst);
      if (v != old) break;
      seq_.wait(v, std::memory_order_acquire);
    }
    waiting_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> seq_{0};
  // Single-consumer; mutable so parking keeps the observer-style const API.
  mutable std::atomic<bool> waiting_{false};
};

// T must be default-constructible (for the stub node) and movable.
template <typename T>
class MpscQueue {
 public:
  // doorbell may be null; then consumers must poll.
  explicit MpscQueue(Doorbell* doorbell = nullptr) : doorbell_(doorbell) {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* n = tail_;
    while (n) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  void push(T v) {
    Node* n = new Node(std::move(v));
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
    if (doorbell_) doorbell_->ring();
  }

  // Single consumer only.
  bool pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (!next) return false;
    out = std::move(next->value);
    tail_ = next;
    delete tail;
    return true;
  }

  bool empty() const { return tail_->next.load(std::memory_order_acquire) == nullptr; }

  Doorbell* doorbell() const { return doorbell_; }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;           // producers CAS here
  alignas(64) Node* tail_;            // consumer-private
  Doorbell* doorbell_;
};

}  // namespace darray
