#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace darray {
namespace detail {

namespace {
int level_from_env() {
  const char* e = std::getenv("DARRAY_LOG");
  if (!e) return static_cast<int>(LogLevel::kWarn);
  if (!std::strcmp(e, "debug")) return static_cast<int>(LogLevel::kDebug);
  if (!std::strcmp(e, "info")) return static_cast<int>(LogLevel::kInfo);
  if (!std::strcmp(e, "warn")) return static_cast<int>(LogLevel::kWarn);
  if (!std::strcmp(e, "error")) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}
}  // namespace

std::atomic<int>& log_level_storage() {
  static std::atomic<int> level{level_from_env()};
  return level;
}

}  // namespace detail

void log_write(LogLevel lvl, const char* fmt, ...) {
  static std::mutex mu;  // keep lines whole; logging is not on any hot path
  static const char* names[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  std::scoped_lock lk(mu);
  std::fprintf(stderr, "[%s t=%zx] %s\n", names[static_cast<int>(lvl)],
               std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff, buf);
}

}  // namespace darray
