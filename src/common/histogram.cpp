#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "common/assert.hpp"

namespace darray {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::bucket_index(uint64_t nanos) {
  if (nanos < (1u << kSubBits)) return static_cast<int>(nanos);
  const int msb = 63 - std::countl_zero(nanos);
  const int sub = static_cast<int>((nanos >> (msb - kSubBits)) & ((1 << kSubBits) - 1));
  const int idx = ((msb - kSubBits + 1) << kSubBits) + sub;
  return std::min(idx, kBuckets - 1);
}

uint64_t LatencyHistogram::bucket_upper(int idx) {
  if (idx < (1 << kSubBits)) return static_cast<uint64_t>(idx);
  const int octave = (idx >> kSubBits) + kSubBits - 1;
  const int sub = idx & ((1 << kSubBits) - 1);
  const int shift = octave - kSubBits;
  const uint64_t base = (1ull << kSubBits) + static_cast<uint64_t>(sub) + 1;
  if (shift >= 59) return ~0ull;  // base <= 2^5: larger shifts would overflow
  return base << shift;
}

void LatencyHistogram::record(uint64_t nanos) {
  buckets_[static_cast<size_t>(bucket_index(nanos))]++;
  count_++;
  sum_ += static_cast<double>(nanos);
  max_ = std::max(max_, nanos);
  min_ = std::min(min_, nanos);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~0ull;
}

double LatencyHistogram::mean_ns() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

uint64_t LatencyHistogram::percentile_ns(double q) const {
  if (count_ == 0) return 0;
  DARRAY_ASSERT(q >= 0.0 && q <= 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(count_), mean_ns(),
                static_cast<unsigned long long>(percentile_ns(0.5)),
                static_cast<unsigned long long>(percentile_ns(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace darray
