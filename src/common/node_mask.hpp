// Set of node ids as a 64-bit mask: the directory's sharer / participant
// sets. Caps the cluster at 64 simulated nodes (documented in DESIGN.md §6).
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace darray {

class NodeMask {
 public:
  NodeMask() = default;
  explicit NodeMask(uint64_t bits) : bits_(bits) {}

  static NodeMask single(uint32_t node) {
    DARRAY_ASSERT(node < 64);
    return NodeMask(1ull << node);
  }

  void add(uint32_t node) {
    DARRAY_ASSERT(node < 64);
    bits_ |= 1ull << node;
  }
  void remove(uint32_t node) {
    DARRAY_ASSERT(node < 64);
    bits_ &= ~(1ull << node);
  }
  bool contains(uint32_t node) const {
    DARRAY_ASSERT(node < 64);
    return (bits_ >> node) & 1;
  }

  bool empty() const { return bits_ == 0; }
  int count() const { return std::popcount(bits_); }
  void clear() { bits_ = 0; }
  uint64_t bits() const { return bits_; }

  // True when the set is exactly {node}.
  bool is_only(uint32_t node) const { return bits_ == (1ull << node); }

  // Iterate set bits: for (uint32_t n : mask) ...
  class iterator {
   public:
    explicit iterator(uint64_t bits) : bits_(bits) {}
    uint32_t operator*() const { return static_cast<uint32_t>(std::countr_zero(bits_)); }
    iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };
  iterator begin() const { return iterator(bits_); }
  iterator end() const { return iterator(0); }

  friend bool operator==(const NodeMask&, const NodeMask&) = default;

 private:
  uint64_t bits_ = 0;
};

}  // namespace darray
