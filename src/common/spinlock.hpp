// TTAS spinlock with futex fallback, for runtime-side (non-critical-path)
// serialisation. The paper deliberately uses plain locks between runtime
// threads (§4.1): only the application-thread access path is lock-free.
#pragma once

#include <atomic>

#include "common/wait.hpp"

namespace darray {

class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Bounded spin on the cached value, then park.
      spin_wait_until(locked_, [](bool v) { return !v; });
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() {
    locked_.store(false, std::memory_order_release);
    locked_.notify_one();
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace darray
