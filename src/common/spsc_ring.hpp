// Bounded single-producer single-consumer ring buffer with cached indices.
// Used for per-queue-pair work queues in the simulated RDMA stack, where the
// bounded depth models the hardware send/receive queue depth.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace darray {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : mask_(std::bit_ceil(capacity) - 1), slots_(mask_ + 1) {
    DARRAY_ASSERT(capacity > 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(T v) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {  // looks full: refresh
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {  // looks empty: refresh
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

  // Approximate; exact only when called from the consumer or producer side.
  size_t size_approx() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

 private:
  const uint64_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<uint64_t> head_{0};  // producer side
  uint64_t cached_tail_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};  // consumer side
  uint64_t cached_head_{0};
};

}  // namespace darray
