// Typed result codes for the client-facing API surface (src/serve, range
// ops). The historical surface mixed conventions — bool returns from the KVS,
// optional<string> from get, DARRAY_ASSERT aborts on bad extents; Status is
// the one vocabulary every client-visible operation reports through.
//
// Placement note: this lives in common (not serve) so the core array API can
// return Status without depending on the serving layer.
#pragma once

#include <cstdint>

namespace darray {

enum class Status : uint8_t {
  kOk = 0,
  kNotFound,     // key absent
  kBusy,         // shed by admission control; retry with backoff
  kTimeout,      // client-side deadline expired before a response arrived
  kOutOfRange,   // array extent past the end (typed form of the old assert)
  kCapacity,     // value/overflow space exhausted (KVS put failure)
  kTooLarge,     // key/value exceeds the wire or encoding limit
  kUnavailable,  // service shut down while the request was in flight
  kMalformed,    // undecodable request frame
};

inline bool ok(Status s) { return s == Status::kOk; }

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kBusy: return "busy";
    case Status::kTimeout: return "timeout";
    case Status::kOutOfRange: return "out_of_range";
    case Status::kCapacity: return "capacity";
    case Status::kTooLarge: return "too_large";
    case Status::kUnavailable: return "unavailable";
    case Status::kMalformed: return "malformed";
  }
  return "unknown";
}

}  // namespace darray
