// Reusable sense-reversing barrier with futex parking, used by benchmarks and
// the BSP (Gemini-style) graph engine to synchronise worker threads across
// simulated nodes.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.hpp"
#include "common/wait.hpp"

namespace darray {

class SenseBarrier {
 public:
  explicit SenseBarrier(uint32_t parties) : parties_(parties), remaining_(parties) {
    DARRAY_ASSERT(parties > 0);
  }

  void arrive_and_wait() {
    const uint32_t my_sense = sense_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense + 1, std::memory_order_release);
      sense_.notify_all();
    } else {
      spin_wait_until(sense_, [my_sense](uint32_t s) { return s != my_sense; });
    }
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> remaining_;
  std::atomic<uint32_t> sense_{0};
};

}  // namespace darray
