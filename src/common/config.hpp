// Cluster-wide tunables. Defaults follow the paper where it states one
// (chunk = 512 elements, eviction watermarks 30 % / 50 %) and are sized for a
// small simulation host elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace darray::chaos {
struct FaultPlan;
}

namespace darray {

struct ClusterConfig {
  // --- topology -------------------------------------------------------------
  uint32_t num_nodes = 2;
  uint32_t runtime_threads_per_node = 1;  // paper uses several; 1 fits this host

  // --- array / cache --------------------------------------------------------
  uint32_t chunk_elems = 512;        // paper default granularity
  // Cachelines per runtime-thread cache region (a cacheline holds one chunk).
  uint32_t cachelines_per_region = 256;
  double low_watermark = 0.30;       // start reclaiming below this free ratio
  double high_watermark = 0.50;      // reclaim until this free ratio
  uint32_t prefetch_chunks = 2;      // issued on the slow path (§4.2)

  // --- simulated fabric -----------------------------------------------------
  // One-way latency added to every fabric message, and per-byte cost modelling
  // link bandwidth. Zero by default: on an oversubscribed host the inherent
  // cross-thread hop cost already dwarfs real RDMA latency.
  uint64_t fabric_latency_ns = 0;
  double fabric_ns_per_byte = 0.0;
  uint32_t qp_depth = 1024;          // send/recv queue depth per QP
  uint32_t selective_signal_interval = 16;  // signal 1 of every r sends (§4.5)

  // --- small-message engine (docs/perf.md) ----------------------------------
  // Per-peer SEND coalescing: the Tx thread packs every protocol message it
  // finds queued for the same peer into one wire SEND (kBatch framing) and
  // rings the NIC doorbell once per peer per drain pass. Off restores the
  // one-SEND-per-message pre-coalescing path exactly.
  bool coalesce_enabled = true;
  uint32_t coalesce_max_frames = 32;   // frames per wire batch (cap)
  // Deadline cutoff: an open batch older than this is flushed even while the
  // drain pass is still finding work, so a latency-sensitive singleton is
  // never held behind a long burst.
  uint64_t coalesce_flush_ns = 20'000;

  // --- large-message engine (docs/perf.md) -----------------------------------
  // Eager/rendezvous protocol split: a bulk data transfer (a TxRequest
  // carrying a one-sided data WRITE) at least this large is negotiated as a
  // rendezvous instead — the sender pins the source region in a lease and
  // advertises {addr, rkey, len} in a small kRndzReq SEND; the receiver pulls
  // the bytes with MTU-chunked one-sided RDMA READs (one signaled completion)
  // and a kRndzFin releases the lease. Below the threshold (or with
  // rendezvous_enabled off) the existing eager WRITE+SEND path is used.
  // The default sits at the measured crossover of bench/micro_fastpath
  // --json's sweep (BENCH_micro_fastpath.json): eager wins below ~16 KiB,
  // rendezvous wins above.
  bool rendezvous_enabled = true;
  uint32_t rendezvous_threshold_bytes = 32 * 1024;
  // Per-WR segment size of the receiver's READ pull (the simulated fabric
  // accepts any WR size; chunking bounds per-WR latency and models real
  // NIC MTU segmentation at a coarser grain).
  uint32_t rendezvous_mtu_bytes = 64 * 1024;
  // Source-region lease table depth per comm layer. A sender with every
  // lease busy falls back to eager for the overflow transfer (counted in
  // net.rndz.fallbacks) instead of blocking the Tx thread.
  uint32_t rendezvous_max_leases = 32;

  // --- fault injection & recovery -------------------------------------------
  // Chaos plan consulted by the fabric on every posted WR. Non-owning; the
  // caller keeps the plan alive for the cluster's lifetime. nullptr (or a
  // plan with nothing enabled) leaves the fault path entirely cold.
  const chaos::FaultPlan* fault_plan = nullptr;
  // Comm-layer recovery: bounded exponential backoff between re-post rounds
  // for a peer whose QP errored, a per-request post-attempt budget, and a
  // per-request wall-clock deadline after which the request is failed to the
  // error handler instead of retried.
  uint32_t comm_max_attempts = 64;
  uint64_t comm_backoff_base_ns = 20'000;       // first retry delay
  uint64_t comm_backoff_cap_ns = 2'000'000;     // backoff ceiling
  uint64_t comm_deadline_ns = 10'000'000'000;   // 10 s per request

  // --- observability (docs/observability.md) --------------------------------
  // Runtime switch for the obs trace ring. With the DARRAY_TRACING compile
  // option off this flag is ignored; with it on but this flag false the only
  // per-event cost is one relaxed load + branch.
  bool tracing_enabled = false;
  // Per-thread trace ring capacity in events (rounded up to a power of two).
  // 0 keeps the built-in default (or DARRAY_TRACE_RING from the environment).
  uint32_t trace_ring_events = 0;
  // Slow-op watchdog: a Cluster-owned thread that polls the in-flight op
  // registry every watchdog_poll_ns and, for each API-level op older than
  // watchdog_deadline_ns, dumps its correlated trace chain exactly once (or
  // invokes the handler installed via Cluster::set_watchdog_handler).
  // Requires tracing_enabled — the registry is fed by traced op spans.
  bool watchdog_enabled = false;
  uint64_t watchdog_deadline_ns = 1'000'000'000;  // 1 s before an op is "slow"
  uint64_t watchdog_poll_ns = 10'000'000;         // scan cadence (10 ms)

  // --- live telemetry (docs/observability.md v3) ----------------------------
  // Continuous sampler: a Cluster thread snapshots the StatsRegistry every
  // telemetry_sample_ns into fixed-size per-metric rings (counters as
  // per-interval deltas, percentiles as point series). Off: no thread, no
  // rings, zero cost.
  bool telemetry_enabled = false;
  uint64_t telemetry_sample_ns = 100'000'000;  // 100 ms
  // Points retained per metric (rounded up to a power of two); the default
  // holds one minute of history at the default sample period.
  uint32_t telemetry_ring_samples = 600;
  // Embedded HTTP listener serving /metrics (Prometheus text exposition),
  // /stats.json, and /series.json. Loopback-only. Requires the sampler.
  bool telemetry_serve = false;
  uint16_t telemetry_port = 0;  // 0 = ephemeral; Cluster::telemetry_port()

  // --- continuous profiling (docs/observability.md v5) ----------------------
  // Always-on CPU sampling profiler (obs/profiler): SIGPROF at profiler_hz,
  // frame-pointer backtraces into per-thread sample rings, attributed to the
  // registered thread names. Off: no timer, no signal handler overhead; the
  // /profile telemetry endpoint can still run temporary sessions on demand.
  bool profiler_enabled = false;
  uint32_t profiler_hz = 97;          // off the 100 Hz timer-tick beat
  uint32_t profiler_max_frames = 32;  // backtrace depth cap per sample
  uint32_t profiler_ring_samples = 4096;  // per-thread ring capacity

  // --- derived --------------------------------------------------------------
  size_t chunk_bytes(size_t elem_size) const { return size_t{chunk_elems} * elem_size; }

  // Returns an empty string when the configuration is usable, otherwise a
  // description of the first problem found. Cluster's constructor calls this
  // and fail-stops on error; call it yourself to surface the message cleanly.
  std::string validate() const {
    if (num_nodes < 1 || num_nodes > 64)
      return "num_nodes must be in [1, 64], got " + std::to_string(num_nodes);
    if (runtime_threads_per_node < 1)
      return "runtime_threads_per_node must be >= 1";
    if (chunk_elems == 0) return "chunk_elems must be > 0";
    if (cachelines_per_region == 0) return "cachelines_per_region must be > 0";
    if (!(low_watermark >= 0.0 && low_watermark <= 1.0))
      return "low_watermark must be in [0, 1]";
    if (!(high_watermark >= 0.0 && high_watermark <= 1.0))
      return "high_watermark must be in [0, 1]";
    if (low_watermark > high_watermark)
      return "low_watermark must not exceed high_watermark";
    if (qp_depth == 0) return "qp_depth must be > 0";
    if (selective_signal_interval == 0)
      return "selective_signal_interval must be > 0";
    if (selective_signal_interval > qp_depth)
      return "selective_signal_interval must not exceed qp_depth (the CQ could "
             "never retire a full unsignaled run)";
    if (coalesce_enabled && coalesce_max_frames == 0)
      return "coalesce_max_frames must be > 0 when coalescing is enabled";
    if (rendezvous_enabled && rendezvous_threshold_bytes == 0)
      return "rendezvous_threshold_bytes must be > 0 when rendezvous is "
             "enabled (a zero threshold would route empty transfers through "
             "the handshake)";
    if (rendezvous_enabled && rendezvous_mtu_bytes == 0)
      return "rendezvous_mtu_bytes must be > 0 when rendezvous is enabled";
    if (rendezvous_enabled && rendezvous_max_leases == 0)
      return "rendezvous_max_leases must be > 0 when rendezvous is enabled "
             "(an empty lease table would force every transfer to fall back)";
    if (comm_max_attempts == 0) return "comm_max_attempts must be > 0";
    if (comm_backoff_base_ns > comm_backoff_cap_ns)
      return "comm_backoff_base_ns must not exceed comm_backoff_cap_ns";
    if (watchdog_enabled && !tracing_enabled)
      return "watchdog_enabled requires tracing_enabled (the watchdog reads "
             "the traced in-flight op registry)";
    if (watchdog_enabled && watchdog_deadline_ns == 0)
      return "watchdog_deadline_ns must be > 0";
    if (watchdog_enabled && watchdog_poll_ns == 0)
      return "watchdog_poll_ns must be > 0";
    if (watchdog_enabled && watchdog_poll_ns > watchdog_deadline_ns)
      return "watchdog_poll_ns must not exceed watchdog_deadline_ns (an "
             "offender could outlive the op before the first scan)";
    if (telemetry_enabled && telemetry_sample_ns < 1'000'000)
      return "telemetry_sample_ns must be >= 1 ms (a faster sampler would "
             "contend with the data path it observes)";
    if (telemetry_enabled && telemetry_ring_samples < 2)
      return "telemetry_ring_samples must be >= 2";
    if (telemetry_serve && !telemetry_enabled)
      return "telemetry_serve requires telemetry_enabled (the endpoints serve "
             "the sampler's rings)";
    if (profiler_enabled && (profiler_hz < 1 || profiler_hz > 1000))
      return "profiler_hz must be in [1, 1000] (above 1 kHz the signal "
             "handler itself becomes the hot function)";
    if (profiler_enabled && (profiler_max_frames < 2 || profiler_max_frames > 64))
      return "profiler_max_frames must be in [2, 64]";
    if (profiler_enabled && profiler_ring_samples < 64)
      return "profiler_ring_samples must be >= 64 (a smaller ring wraps "
             "within one aggregation interval)";
    return {};
  }
};

}  // namespace darray
