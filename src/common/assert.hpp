// Lightweight always-on assertion macros.
//
// DARRAY_ASSERT stays enabled in release builds: the coherence protocol relies
// on invariants whose violation would otherwise surface as silent data
// corruption, and the cost of the checks is negligible next to queue hops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace darray {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "DARRAY_ASSERT failed: %s (%s:%d)%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace darray

#define DARRAY_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::darray::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DARRAY_ASSERT_MSG(expr, msg)                                  \
  do {                                                                \
    if (!(expr)) ::darray::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define DARRAY_UNREACHABLE(msg) ::darray::assert_fail("unreachable", __FILE__, __LINE__, msg)
