#include "common/zipf.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace darray {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  DARRAY_ASSERT(n > 0);
  DARRAY_ASSERT(theta > 0.0 && theta < 1.0);
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

uint64_t ZipfGenerator::next(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t item = static_cast<uint64_t>(v);
  return item >= n_ ? n_ - 1 : item;
}

}  // namespace darray
