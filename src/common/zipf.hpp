// Zipfian distribution generator (YCSB flavour: Gray et al. rejection-free
// inverse-CDF approximation with precomputed zeta). The paper's Operate and
// KVS experiments both use Zipfian(0.99), YCSB's default skew.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace darray {

class ZipfGenerator {
 public:
  // n items, skew theta in (0, 1); theta = 0.99 matches the paper.
  ZipfGenerator(uint64_t n, double theta = 0.99);

  // Draw an item in [0, n). Hot items are the small indices; callers that
  // want hot keys scattered across the key space should hash the result.
  uint64_t next(Xoshiro256& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace darray
