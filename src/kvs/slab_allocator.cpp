#include "kvs/slab_allocator.hpp"

#include <bit>
#include <mutex>

#include "common/assert.hpp"

namespace darray::kvs {

namespace {
constexpr uint32_t kMinShift = 4;  // log2(kMinClassBytes)
}

SlabAllocator::SlabAllocator(uint64_t base, uint64_t size) : base_(base), size_(size) {
  const uint32_t classes =
      std::bit_width(kMaxClassBytes) - std::bit_width(kMinClassBytes) + 1;
  free_lists_.resize(classes);
}

uint32_t SlabAllocator::class_bytes(uint32_t bytes) {
  return std::max<uint32_t>(kMinClassBytes, std::bit_ceil(bytes));
}

uint32_t SlabAllocator::class_index(uint32_t bytes) {
  DARRAY_ASSERT(bytes <= kMaxClassBytes);
  const uint32_t cb = class_bytes(bytes);
  return static_cast<uint32_t>(std::bit_width(cb)) - 1 - kMinShift;
}

uint64_t SlabAllocator::allocate(uint32_t bytes) {
  if (bytes == 0 || bytes > kMaxClassBytes) return kNullOffset;
  const uint32_t idx = class_index(bytes);
  const uint32_t cb = class_bytes(bytes);
  std::scoped_lock lk(mu_);
  auto& fl = free_lists_[idx];
  if (fl.empty()) {
    // Assign a fresh page to this class and split it.
    const uint64_t page_size = std::max<uint64_t>(kPageBytes, cb);
    if (bump_ + page_size > size_) return kNullOffset;
    const uint64_t page = base_ + bump_;
    bump_ += page_size;
    for (uint64_t off = page_size; off >= cb; off -= cb) fl.push_back(page + off - cb);
  }
  const uint64_t offset = fl.back();
  fl.pop_back();
  in_use_ += cb;
  return offset;
}

void SlabAllocator::free(uint64_t offset, uint32_t bytes) {
  DARRAY_ASSERT(offset != kNullOffset);
  const uint32_t idx = class_index(bytes);
  std::scoped_lock lk(mu_);
  free_lists_[idx].push_back(offset);
  in_use_ -= class_bytes(bytes);
}

uint64_t SlabAllocator::bytes_in_use() const {
  std::scoped_lock lk(mu_);
  return in_use_;
}

}  // namespace darray::kvs
