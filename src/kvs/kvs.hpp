// Distributed key-value store on the distributed-array abstraction (paper
// §5.2, Fig. 11): an entry array partitioned into buckets of 15 entries plus
// an overflow pointer, and a byte array managed by a Memcached-style slab
// allocator. Each 8-byte entry packs an 8-bit tag, 16-bit size and 40-bit
// offset. Bucket chains are protected by the array's distributed R/W locks.
//
// The implementation is templated over the array type so the DArray-based
// KVS and the GAM-based KVS (the paper's comparison pair, Fig. 17) share all
// logic and differ only in the underlying memory system:
//   using DKvs   = BasicKvs<DArray>;
//   using GamKvs = BasicKvs<gam::GamArray>;
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/gam/gam_array.hpp"
#include "core/darray.hpp"
#include "kvs/slab_allocator.hpp"

namespace darray::kvs {

struct KvsConfig {
  uint64_t n_main_buckets = 1 << 12;
  uint64_t n_overflow_buckets = 1 << 10;
  uint64_t byte_capacity = 32ull << 20;  // whole-cluster value storage
};

inline uint64_t fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

template <template <typename> class ArrayT>
class BasicKvs {
 public:
  static constexpr uint32_t kSlots = 16;             // 15 entries + overflow ptr
  static constexpr uint32_t kEntriesPerBucket = 15;  // paper §5.2

  static BasicKvs create(rt::Cluster& cluster, const KvsConfig& cfg = {}) {
    BasicKvs k;
    k.impl_ = std::make_shared<Impl>();
    Impl& im = *k.impl_;
    im.cfg = cfg;
    const uint64_t total_buckets = cfg.n_main_buckets + cfg.n_overflow_buckets;
    im.entries = ArrayT<uint64_t>::create(cluster, total_buckets * kSlots);
    im.bytes = ArrayT<uint8_t>::create(cluster, cfg.byte_capacity);

    // One slab allocator per node over its local range of the byte array, and
    // an even split of the overflow bucket space.
    const uint32_t nodes = cluster.num_nodes();
    im.byte_begin.resize(nodes + 1);
    for (uint32_t i = 0; i < nodes; ++i) im.byte_begin[i] = im.bytes.local_begin(i);
    im.byte_begin[nodes] = cfg.byte_capacity;
    for (uint32_t i = 0; i < nodes; ++i) {
      im.slabs.push_back(std::make_unique<SlabAllocator>(
          im.bytes.local_begin(i), im.bytes.local_end(i) - im.bytes.local_begin(i)));
      im.overflow_next.push_back(std::make_unique<std::atomic<uint64_t>>(
          cfg.n_main_buckets + cfg.n_overflow_buckets * i / nodes));
      im.overflow_limit.push_back(cfg.n_main_buckets +
                                  cfg.n_overflow_buckets * (i + 1) / nodes);
    }
    return k;
  }

  // Serving affinity for a key: the node whose partition holds the key's main
  // bucket. Deterministic per key, so the serve layer (src/serve) can route
  // every request for a key to one dispatcher — which is what makes the
  // owner-side hot-key cache coherent (the owner is the single write point
  // for serve-path traffic).
  rt::NodeId owner_of(std::string_view key) const {
    const Impl& im = *impl_;
    const uint64_t lock_idx = (fnv1a(key) % im.cfg.n_main_buckets) * kSlots;
    const uint32_t nodes = static_cast<uint32_t>(im.slabs.size());
    for (uint32_t n = 0; n < nodes; ++n)
      if (lock_idx < im.entries.local_end(n)) return n;
    return nodes - 1;
  }

  // NOTE: put/get/contains/erase below are the storage-engine internals.
  // Application traffic goes through darray::Client (src/serve), which adds
  // sessions, admission control, typed Status results, and hot-key caching;
  // calling these directly bypasses all of that (and, for hot keys, the
  // owner-side read-lease invalidation). kvs_demo and fig17 migrated to the
  // Client path; only the serve dispatcher and unit tests call these now.

  // Insert or update. Returns false when the key-value pair is too large or
  // value/overflow space is exhausted.
  bool put(std::string_view key, std::string_view value) {
    Impl& im = *impl_;
    const uint64_t blob_len = 2 + key.size() + value.size();
    if (key.size() > 0xffff || blob_len > 0xffff) return false;

    const uint64_t h = fnv1a(key);
    const uint64_t main_bucket = h % im.cfg.n_main_buckets;
    const uint8_t tag = tag_of(h);
    const uint64_t lock_idx = main_bucket * kSlots;

    // Write the blob first (outside the bucket lock: the entry is the commit
    // point), allocated from the caller's node for locality.
    const rt::NodeId me = this_thread_ctx().node;
    const uint64_t offset = im.slabs[me]->allocate(static_cast<uint32_t>(blob_len));
    if (offset == kNullOffset) return false;
    write_blob(offset, key, value);

    im.entries.wlock(lock_idx);
    uint64_t bucket = main_bucket;
    int64_t empty_slot = -1;  // first free slot seen while probing the chain
    for (;;) {
      for (uint32_t s = 0; s < kEntriesPerBucket; ++s) {
        const uint64_t idx = bucket * kSlots + s;
        const uint64_t entry = im.entries.get(idx);
        if (entry == 0) {
          if (empty_slot < 0) empty_slot = static_cast<int64_t>(idx);
          continue;
        }
        if (entry_tag(entry) != tag) continue;
        if (key_matches(entry, key)) {
          // Update in place: free the old blob, commit the new entry.
          free_blob(entry);
          im.entries.set(idx, encode(tag, blob_len, offset));
          im.entries.unlock(lock_idx);
          return true;
        }
      }
      const uint64_t next = im.entries.get(bucket * kSlots + kSlots - 1);
      if (next == 0) break;
      bucket = next - 1;
    }

    if (empty_slot < 0) {
      // Chain full: link a fresh overflow bucket and take its first slot.
      const uint64_t ob = alloc_overflow_bucket(me);
      if (ob == kNullOffset) {
        im.entries.unlock(lock_idx);
        im.slabs[me]->free(offset, static_cast<uint32_t>(blob_len));
        return false;
      }
      im.entries.set(bucket * kSlots + kSlots - 1, ob + 1);
      empty_slot = static_cast<int64_t>(ob * kSlots);
    }
    im.entries.set(static_cast<uint64_t>(empty_slot), encode(tag, blob_len, offset));
    im.entries.unlock(lock_idx);
    return true;
  }

  // Lookup (paper Fig. 11). Returns the value, or nullopt when absent.
  std::optional<std::string> get(std::string_view key) {
    Impl& im = *impl_;
    const uint64_t h = fnv1a(key);
    const uint64_t main_bucket = h % im.cfg.n_main_buckets;
    const uint8_t tag = tag_of(h);
    const uint64_t lock_idx = main_bucket * kSlots;

    im.entries.rlock(lock_idx);
    std::optional<std::string> result;
    uint64_t bucket = main_bucket;
    for (;;) {
      for (uint32_t s = 0; s < kEntriesPerBucket && !result; ++s) {
        const uint64_t entry = im.entries.get(bucket * kSlots + s);
        if (entry == 0 || entry_tag(entry) != tag) continue;
        result = read_if_match(entry, key);
      }
      if (result) break;
      const uint64_t next = im.entries.get(bucket * kSlots + kSlots - 1);  // overflow ptr
      if (next == 0) break;
      bucket = next - 1;
    }
    im.entries.unlock(lock_idx);
    return result;
  }

  // Existence probe: like get() but transfers only the key bytes for
  // comparison, never the value.
  bool contains(std::string_view key) {
    Impl& im = *impl_;
    const uint64_t h = fnv1a(key);
    const uint64_t main_bucket = h % im.cfg.n_main_buckets;
    const uint8_t tag = tag_of(h);
    const uint64_t lock_idx = main_bucket * kSlots;

    im.entries.rlock(lock_idx);
    bool found = false;
    uint64_t bucket = main_bucket;
    for (;;) {
      for (uint32_t s = 0; s < kEntriesPerBucket && !found; ++s) {
        const uint64_t entry = im.entries.get(bucket * kSlots + s);
        if (entry != 0 && entry_tag(entry) == tag && key_matches(entry, key)) found = true;
      }
      if (found) break;
      const uint64_t next = im.entries.get(bucket * kSlots + kSlots - 1);
      if (next == 0) break;
      bucket = next - 1;
    }
    im.entries.unlock(lock_idx);
    return found;
  }

  // Remove a key. Returns false when absent.
  bool erase(std::string_view key) {
    Impl& im = *impl_;
    const uint64_t h = fnv1a(key);
    const uint64_t main_bucket = h % im.cfg.n_main_buckets;
    const uint8_t tag = tag_of(h);
    const uint64_t lock_idx = main_bucket * kSlots;

    im.entries.wlock(lock_idx);
    bool erased = false;
    uint64_t bucket = main_bucket;
    for (;;) {
      for (uint32_t s = 0; s < kEntriesPerBucket; ++s) {
        const uint64_t idx = bucket * kSlots + s;
        const uint64_t entry = im.entries.get(idx);
        if (entry == 0 || entry_tag(entry) != tag) continue;
        if (key_matches(entry, key)) {
          free_blob(entry);
          im.entries.set(idx, 0);
          erased = true;
          break;
        }
      }
      if (erased) break;
      const uint64_t next = im.entries.get(bucket * kSlots + kSlots - 1);
      if (next == 0) break;
      bucket = next - 1;
    }
    im.entries.unlock(lock_idx);
    return erased;
  }

  uint64_t bytes_in_use() const {
    uint64_t total = 0;
    for (const auto& s : impl_->slabs) total += s->bytes_in_use();
    return total;
  }

 private:
  struct Impl {
    KvsConfig cfg;
    ArrayT<uint64_t> entries;
    ArrayT<uint8_t> bytes;
    std::vector<std::unique_ptr<SlabAllocator>> slabs;
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> overflow_next;
    std::vector<uint64_t> overflow_limit;
    std::vector<uint64_t> byte_begin;
  };

  static uint8_t tag_of(uint64_t h) { return static_cast<uint8_t>((h >> 56) | 0x01); }

  static uint64_t encode(uint8_t tag, uint64_t size, uint64_t offset) {
    DARRAY_ASSERT(offset < (1ull << 40));
    return (uint64_t{tag} << 56) | (size << 40) | offset;
  }
  static uint8_t entry_tag(uint64_t e) { return static_cast<uint8_t>(e >> 56); }
  static uint32_t entry_size(uint64_t e) { return static_cast<uint32_t>((e >> 40) & 0xffff); }
  static uint64_t entry_offset(uint64_t e) { return e & ((1ull << 40) - 1); }

  void write_blob(uint64_t offset, std::string_view key, std::string_view value) {
    Impl& im = *impl_;
    std::vector<uint8_t> blob(2 + key.size() + value.size());
    blob[0] = static_cast<uint8_t>(key.size() & 0xff);
    blob[1] = static_cast<uint8_t>(key.size() >> 8);
    std::memcpy(blob.data() + 2, key.data(), key.size());
    std::memcpy(blob.data() + 2 + key.size(), value.data(), value.size());
    im.bytes.write_bulk(offset, blob.data(), blob.size());
  }

  bool key_matches(uint64_t entry, std::string_view key) {
    Impl& im = *impl_;
    const uint32_t size = entry_size(entry);
    if (size < 2 + key.size()) return false;
    std::vector<uint8_t> hdr(2 + key.size());
    im.bytes.read_bulk(entry_offset(entry), hdr.data(), hdr.size());
    const uint32_t klen = hdr[0] | (uint32_t{hdr[1]} << 8);
    if (klen != key.size()) return false;
    return std::memcmp(hdr.data() + 2, key.data(), key.size()) == 0;
  }

  std::optional<std::string> read_if_match(uint64_t entry, std::string_view key) {
    Impl& im = *impl_;
    const uint32_t size = entry_size(entry);
    std::vector<uint8_t> blob(size);
    im.bytes.read_bulk(entry_offset(entry), blob.data(), size);
    if (size < 2) return std::nullopt;
    const uint32_t klen = blob[0] | (uint32_t{blob[1]} << 8);
    if (klen != key.size() || 2 + klen > size) return std::nullopt;
    if (std::memcmp(blob.data() + 2, key.data(), key.size()) != 0) return std::nullopt;
    return std::string(reinterpret_cast<char*>(blob.data()) + 2 + klen, size - 2 - klen);
  }

  void free_blob(uint64_t entry) {
    Impl& im = *impl_;
    const uint64_t off = entry_offset(entry);
    // Find the owning node's allocator by the byte-array partition.
    auto it = std::upper_bound(im.byte_begin.begin(), im.byte_begin.end(), off);
    const size_t owner = static_cast<size_t>(it - im.byte_begin.begin() - 1);
    im.slabs[owner]->free(off, entry_size(entry));
  }

  uint64_t alloc_overflow_bucket(rt::NodeId me) {
    Impl& im = *impl_;
    const size_t nodes = im.overflow_next.size();
    // Prefer the local quota, then steal from other nodes' quotas.
    for (size_t k = 0; k < nodes; ++k) {
      const size_t n = (me + k) % nodes;
      const uint64_t b = im.overflow_next[n]->fetch_add(1, std::memory_order_relaxed);
      if (b < im.overflow_limit[n]) return b;
      im.overflow_next[n]->store(im.overflow_limit[n], std::memory_order_relaxed);
    }
    return kNullOffset;
  }

  std::shared_ptr<Impl> impl_;
};

using DKvs = BasicKvs<DArray>;
using GamKvs = BasicKvs<gam::GamArray>;

}  // namespace darray::kvs
