// Slab allocator in the style of Memcached's (paper §5.2: "We port the
// SlabAllocator from Memcached to manage the byte array"). Manages one node's
// range of the KVS byte array: memory is carved into fixed-size pages, each
// page is assigned to a power-of-two size class, and freed objects return to
// their class's free list.
#pragma once

#include <cstdint>
#include <vector>

#include "common/spinlock.hpp"

namespace darray::kvs {

inline constexpr uint64_t kNullOffset = ~0ull;

class SlabAllocator {
 public:
  static constexpr uint32_t kMinClassBytes = 16;
  static constexpr uint32_t kMaxClassBytes = 64 * 1024;
  static constexpr uint64_t kPageBytes = 64 * 1024;

  // Manages global offsets [base, base + size).
  SlabAllocator(uint64_t base, uint64_t size);

  // Returns a global offset with at least `bytes` capacity, or kNullOffset
  // when the region is exhausted. bytes must be <= kMaxClassBytes.
  uint64_t allocate(uint32_t bytes);

  // Return an allocation of `bytes` (the original request size) at `offset`.
  void free(uint64_t offset, uint32_t bytes);

  // Capacity actually reserved for a request of `bytes`.
  static uint32_t class_bytes(uint32_t bytes);

  uint64_t bytes_in_use() const;

 private:
  static uint32_t class_index(uint32_t bytes);

  const uint64_t base_;
  const uint64_t size_;
  mutable SpinLock mu_;
  uint64_t bump_ = 0;  // next unassigned page offset (relative to base_)
  std::vector<std::vector<uint64_t>> free_lists_;  // per class, global offsets
  uint64_t in_use_ = 0;
};

}  // namespace darray::kvs
