// YCSB-style workload driver for the distributed KVS (paper §6.5): keys drawn
// from a Zipfian(0.99) distribution, a configurable get/put mix, measured as
// total Kops/s across all nodes and threads.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/context.hpp"

namespace darray::kvs {

struct YcsbConfig {
  uint64_t n_keys = 20000;
  double get_ratio = 0.95;       // fraction of get requests
  double zipf_theta = 0.99;      // paper default
  uint32_t value_bytes = 100;    // YCSB default value size
  uint64_t ops_per_thread = 2000;
  uint32_t threads_per_node = 1;
  uint64_t seed = 42;
};

struct YcsbResult {
  double kops = 0;               // total throughput, Kops/s
  uint64_t gets = 0, puts = 0, misses = 0;
  double elapsed_s = 0;
};

inline std::string ycsb_key(uint64_t id) { return "user" + std::to_string(id); }

inline std::string ycsb_value(uint64_t id, uint32_t bytes) {
  std::string v = "val" + std::to_string(id) + ":";
  v.resize(bytes, 'x');
  return v;
}

// Preload every key (round-robin across nodes, like YCSB's load phase).
template <typename Kvs>
void ycsb_load(rt::Cluster& cluster, Kvs& kvs, const YcsbConfig& cfg) {
  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ts.emplace_back([&, n] {
      bind_thread(cluster, n);
      for (uint64_t k = n; k < cfg.n_keys; k += cluster.num_nodes()) {
        const bool ok = kvs.put(ycsb_key(k), ycsb_value(k, cfg.value_bytes));
        DARRAY_ASSERT_MSG(ok, "YCSB load phase ran out of KVS space");
      }
    });
  }
  for (auto& t : ts) t.join();
}

template <typename Kvs>
YcsbResult run_ycsb(rt::Cluster& cluster, Kvs& kvs, const YcsbConfig& cfg) {
  const uint32_t total_threads = cluster.num_nodes() * cfg.threads_per_node;
  SenseBarrier barrier(total_threads + 1);
  std::atomic<uint64_t> gets{0}, puts{0}, misses{0};

  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < cfg.threads_per_node; ++t) {
      ts.emplace_back([&, n, t] {
        bind_thread(cluster, n);
        Xoshiro256 rng(cfg.seed * 1000003 + n * 131 + t);
        ZipfGenerator zipf(cfg.n_keys, cfg.zipf_theta);
        uint64_t my_gets = 0, my_puts = 0, my_misses = 0;
        barrier.arrive_and_wait();  // start together
        for (uint64_t i = 0; i < cfg.ops_per_thread; ++i) {
          const uint64_t k = zipf.next(rng);
          if (rng.next_double() < cfg.get_ratio) {
            my_gets++;
            if (!kvs.get(ycsb_key(k))) my_misses++;
          } else {
            my_puts++;
            kvs.put(ycsb_key(k), ycsb_value(k ^ i, cfg.value_bytes));
          }
        }
        gets.fetch_add(my_gets);
        puts.fetch_add(my_puts);
        misses.fetch_add(my_misses);
        barrier.arrive_and_wait();  // end together
      });
    }
  }

  barrier.arrive_and_wait();
  const uint64_t t0 = now_ns();
  barrier.arrive_and_wait();
  const uint64_t t1 = now_ns();
  for (auto& t : ts) t.join();

  YcsbResult r;
  r.gets = gets.load();
  r.puts = puts.load();
  r.misses = misses.load();
  r.elapsed_s = static_cast<double>(t1 - t0) / 1e9;
  r.kops = static_cast<double>(r.gets + r.puts) / r.elapsed_s / 1e3;
  return r;
}

}  // namespace darray::kvs
