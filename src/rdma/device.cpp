#include "rdma/device.hpp"

#include <mutex>

#include "common/assert.hpp"

namespace darray::rdma {

MemoryRegion Device::reg_mr(void* addr, size_t length) {
  DARRAY_ASSERT(addr != nullptr);
  DARRAY_ASSERT(length > 0);
  std::unique_lock lk(mu_);
  MemoryRegion mr;
  mr.addr = static_cast<std::byte*>(addr);
  mr.length = length;
  mr.lkey = next_key_++;
  mr.rkey = mr.lkey;  // the sim uses one key space; real verbs may differ
  mrs_.emplace(mr.lkey, mr);
  return mr;
}

void Device::dereg_mr(uint32_t lkey) {
  std::unique_lock lk(mu_);
  mrs_.erase(lkey);
}

std::byte* Device::translate(uint64_t remote_addr, uint32_t rkey, size_t len) const {
  std::shared_lock lk(mu_);
  auto it = mrs_.find(rkey);
  if (it == mrs_.end()) return nullptr;
  const MemoryRegion& mr = it->second;
  auto* p = reinterpret_cast<std::byte*>(remote_addr);
  if (p < mr.addr || p + len > mr.addr + mr.length) return nullptr;
  return p;
}

bool Device::validate_local(const Sge& sge) const {
  std::shared_lock lk(mu_);
  auto it = mrs_.find(sge.lkey);
  if (it == mrs_.end()) return false;
  const MemoryRegion& mr = it->second;
  return sge.addr >= mr.addr && sge.addr + sge.length <= mr.addr + mr.length;
}

}  // namespace darray::rdma
