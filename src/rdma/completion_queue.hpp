// Completion queue for the simulated fabric. Producers are remote posting
// threads; the consumer is the single Tx or Rx thread that owns the CQ.
// Entries carrying a future deliver_at_ns deadline are held back on the
// consumer side, which is how the fabric injects link latency without
// blocking the poster.
//
// Ordering contract: a CQ may be shared by several QPs, and chaos-injected
// delay spikes can give a WR from one QP a much later deadline than a WR
// posted after it on another QP. The holdback is therefore kept sorted by
// deliver_at_ns (a delayed entry must not head-of-line-block other QPs'
// completions). Per-QP FIFO — the ordering the coherence protocol relies on —
// is preserved because QueuePair clamps each QP's completion timestamps to be
// monotone non-decreasing and the sort is stable for equal deadlines.
#pragma once

#include <algorithm>
#include <deque>
#include <span>

#include "common/histogram.hpp"
#include "common/mpsc_queue.hpp"
#include "rdma/verbs.hpp"

namespace darray::rdma {

class CompletionQueue {
 public:
  // The CQ rings `bell` on every push; pass the consumer thread's doorbell so
  // one thread can park on several queues at once. Defaults to a private bell.
  explicit CompletionQueue(Doorbell* bell = nullptr)
      : bell_(bell ? bell : &own_bell_), queue_(bell_) {}

  // Fabric-internal: enqueue a completion (any thread).
  void push(WorkCompletion wc) { queue_.push(wc); }

  // Consumer only. Returns the number of due completions written to `out`.
  size_t poll(std::span<WorkCompletion> out) {
    const uint64_t now = now_ns();
    size_t n = 0;
    WorkCompletion wc;
    // Fast path: nothing held back, emit due entries straight off the queue.
    while (holdback_.empty() && n < out.size()) {
      if (!queue_.pop(wc)) return n;
      if (wc.deliver_at_ns > now) {
        holdback_insert(wc);
        break;
      }
      out[n++] = wc;
    }
    if (holdback_.empty()) return n;
    // Slow path: merge the whole queue into the sorted holdback so an undue
    // entry from one QP cannot block due entries from another, then emit from
    // the front.
    while (queue_.pop(wc)) holdback_insert(wc);
    while (n < out.size() && !holdback_.empty() &&
           holdback_.front().deliver_at_ns <= now) {
      out[n++] = holdback_.front();
      holdback_.pop_front();
    }
    return n;
  }

  // Nanoseconds until the next held-back completion is due; 0 when something
  // may already be ready, ~0 when nothing is pending at all.
  uint64_t next_due_in() const {
    if (!holdback_.empty()) {
      const uint64_t now = now_ns();
      const uint64_t at = holdback_.front().deliver_at_ns;
      return at > now ? at - now : 0;
    }
    return queue_.empty() ? ~0ull : 0;
  }

  // Wakes the consumer whenever a completion is pushed; consumers park here.
  Doorbell& doorbell() { return *bell_; }

 private:
  // Stable insert by deadline: equal deadlines keep arrival (push) order,
  // which together with per-QP monotone timestamps preserves per-QP FIFO.
  void holdback_insert(const WorkCompletion& wc) {
    auto it = std::upper_bound(holdback_.begin(), holdback_.end(), wc,
                               [](const WorkCompletion& a, const WorkCompletion& b) {
                                 return a.deliver_at_ns < b.deliver_at_ns;
                               });
    holdback_.insert(it, wc);
  }

  Doorbell own_bell_;
  Doorbell* bell_;
  MpscQueue<WorkCompletion> queue_;
  std::deque<WorkCompletion> holdback_;  // consumer-private, sorted by deadline
};

}  // namespace darray::rdma
