// Completion queue for the simulated fabric. Producers are remote posting
// threads; the consumer is the single Tx or Rx thread that owns the CQ.
// Entries carrying a future deliver_at_ns deadline are held back on the
// consumer side, which is how the fabric injects link latency without
// blocking the poster.
#pragma once

#include <deque>
#include <span>

#include "common/histogram.hpp"
#include "common/mpsc_queue.hpp"
#include "rdma/verbs.hpp"

namespace darray::rdma {

class CompletionQueue {
 public:
  // The CQ rings `bell` on every push; pass the consumer thread's doorbell so
  // one thread can park on several queues at once. Defaults to a private bell.
  explicit CompletionQueue(Doorbell* bell = nullptr)
      : bell_(bell ? bell : &own_bell_), queue_(bell_) {}

  // Fabric-internal: enqueue a completion (any thread).
  void push(WorkCompletion wc) { queue_.push(wc); }

  // Consumer only. Returns the number of due completions written to `out`.
  size_t poll(std::span<WorkCompletion> out) {
    const uint64_t now = now_ns();
    size_t n = 0;
    while (n < out.size()) {
      if (!holdback_.empty()) {
        if (holdback_.front().deliver_at_ns > now) break;
        out[n++] = holdback_.front();
        holdback_.pop_front();
        continue;
      }
      WorkCompletion wc;
      if (!queue_.pop(wc)) break;
      if (wc.deliver_at_ns > now) {
        holdback_.push_back(wc);  // FIFO per CQ: later entries are later still
        break;
      }
      out[n++] = wc;
    }
    return n;
  }

  // Nanoseconds until the next held-back completion is due; 0 when something
  // may already be ready, ~0 when nothing is pending at all.
  uint64_t next_due_in() const {
    if (!holdback_.empty()) {
      const uint64_t now = now_ns();
      const uint64_t at = holdback_.front().deliver_at_ns;
      return at > now ? at - now : 0;
    }
    return queue_.empty() ? ~0ull : 0;
  }

  // Wakes the consumer whenever a completion is pushed; consumers park here.
  Doorbell& doorbell() { return *bell_; }

 private:
  Doorbell own_bell_;
  Doorbell* bell_;
  MpscQueue<WorkCompletion> queue_;
  std::deque<WorkCompletion> holdback_;  // consumer-private
};

}  // namespace darray::rdma
