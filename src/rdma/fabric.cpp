#include "rdma/fabric.hpp"

#include <cstring>
#include <mutex>

#include "common/assert.hpp"
#include "common/histogram.hpp"
#include "common/logging.hpp"

namespace darray::rdma {

Device* Fabric::create_device(uint32_t node_id) {
  std::scoped_lock lk(mu_);
  devices_.push_back(std::make_unique<Device>(node_id));
  return devices_.back().get();
}

std::pair<QueuePair*, QueuePair*> Fabric::connect(Device* a, CompletionQueue* a_send_cq,
                                                  CompletionQueue* a_recv_cq, Device* b,
                                                  CompletionQueue* b_send_cq,
                                                  CompletionQueue* b_recv_cq) {
  std::scoped_lock lk(mu_);
  const uint32_t qpn_a = static_cast<uint32_t>(qps_.size());
  qps_.push_back(std::make_unique<QueuePair>(this, a, a_send_cq, a_recv_cq, qpn_a));
  qps_.push_back(std::make_unique<QueuePair>(this, b, b_send_cq, b_recv_cq, qpn_a + 1));
  QueuePair* qa = qps_[qpn_a].get();
  QueuePair* qb = qps_[qpn_a + 1].get();
  qa->peer_ = qb;
  qb->peer_ = qa;
  return {qa, qb};
}

void Fabric::count(Opcode op, size_t bytes) {
  switch (op) {
    case Opcode::kWrite:
      writes_.fetch_add(1, std::memory_order_relaxed);
      bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kRead:
      reads_.fetch_add(1, std::memory_order_relaxed);
      bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kSend:
      sends_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kRecv:
      break;
  }
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.writes = writes_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.sends = sends_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::reset_stats() {
  writes_ = reads_ = sends_ = 0;
  bytes_written_ = bytes_read_ = bytes_sent_ = 0;
}

uint32_t QueuePair::peer_node() const { return peer_->device_->node_id(); }

bool QueuePair::post_send(const SendWr& wr) {
  DARRAY_ASSERT_MSG(peer_ != nullptr, "QP not connected");
  if (!device_->validate_local(wr.sge)) {
    DLOG_ERROR("post_send: local SGE validation failed (lkey=%u len=%u)", wr.sge.lkey,
               wr.sge.length);
    return false;
  }

  const uint64_t now = now_ns();
  const uint64_t one_way = fabric_->one_way_ns(wr.sge.length);
  WcStatus status = WcStatus::kSuccess;

  switch (wr.opcode) {
    case Opcode::kWrite: {
      std::byte* dst = peer_->device_->translate(wr.remote_addr, wr.rkey, wr.sge.length);
      if (!dst) {
        status = WcStatus::kRemoteAccessError;
        break;
      }
      // The "DMA": bytes land in the peer's registered memory with no peer CPU
      // involvement. Visibility races are prevented by the coherence protocol,
      // which always chases a data WRITE with a two-sided notification.
      std::memcpy(dst, wr.sge.addr, wr.sge.length);
      fabric_->count(Opcode::kWrite, wr.sge.length);
      break;
    }
    case Opcode::kRead: {
      const std::byte* src = peer_->device_->translate(wr.remote_addr, wr.rkey, wr.sge.length);
      if (!src) {
        status = WcStatus::kRemoteAccessError;
        break;
      }
      std::memcpy(const_cast<std::byte*>(wr.sge.addr), src, wr.sge.length);
      fabric_->count(Opcode::kRead, wr.sge.length);
      break;
    }
    case Opcode::kSend: {
      RecvWr recv;
      if (!peer_->posted_recvs_.pop(recv)) {
        // Real RC would RNR-retry; the comm layer preposts deep enough that
        // hitting this means a protocol bug, so surface it loudly.
        DLOG_ERROR("post_send: RNR — peer node %u has no posted RECV", peer_node());
        status = WcStatus::kRnrError;
        break;
      }
      DARRAY_ASSERT_MSG(recv.length >= wr.sge.length, "recv buffer too small");
      std::memcpy(recv.addr, wr.sge.addr, wr.sge.length);
      fabric_->count(Opcode::kSend, wr.sge.length);
      WorkCompletion rwc;
      rwc.wr_id = recv.wr_id;
      rwc.opcode = Opcode::kRecv;
      rwc.status = WcStatus::kSuccess;
      rwc.byte_len = wr.sge.length;
      rwc.peer_node = device_->node_id();
      rwc.qp_num = peer_->qp_num_;
      rwc.deliver_at_ns = now + one_way;
      peer_->recv_cq_->push(rwc);
      break;
    }
    case Opcode::kRecv:
      DARRAY_UNREACHABLE("kRecv is not a send opcode");
  }

  if (wr.signaled || status != WcStatus::kSuccess) {
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = wr.opcode;
    wc.status = status;
    wc.byte_len = wr.sge.length;
    wc.peer_node = peer_node();
    wc.qp_num = qp_num_;
    // RC semantics: READ completes after a round trip carrying the payload;
    // a signaled WRITE completes on the remote HCA's transport ACK (also a
    // round trip). SENDs complete locally — the comm layer's selective
    // signaling only uses them to recycle buffers.
    wc.deliver_at_ns =
        (wr.opcode == Opcode::kRead || wr.opcode == Opcode::kWrite) ? now + 2 * one_way : now;
    send_cq_->push(wc);
  }
  return true;
}

}  // namespace darray::rdma
