#include "rdma/fabric.hpp"

#include <cstring>
#include <mutex>
#include <thread>

#include "chaos/fault_injector.hpp"
#include "common/assert.hpp"
#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "common/wait.hpp"

namespace darray::rdma {

const char* wc_status_name(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "Success";
    case WcStatus::kRemoteAccessError: return "RemoteAccessError";
    case WcStatus::kRnrError: return "RnrError";
    case WcStatus::kRetryExceeded: return "RetryExceeded";
    case WcStatus::kFlushError: return "FlushError";
  }
  return "?";
}

Device* Fabric::create_device(uint32_t node_id) {
  std::scoped_lock lk(mu_);
  devices_.push_back(std::make_unique<Device>(node_id));
  return devices_.back().get();
}

std::pair<QueuePair*, QueuePair*> Fabric::connect(Device* a, CompletionQueue* a_send_cq,
                                                  CompletionQueue* a_recv_cq, Device* b,
                                                  CompletionQueue* b_send_cq,
                                                  CompletionQueue* b_recv_cq) {
  std::scoped_lock lk(mu_);
  const uint32_t qpn_a = static_cast<uint32_t>(qps_.size());
  qps_.push_back(std::make_unique<QueuePair>(this, a, a_send_cq, a_recv_cq, qpn_a));
  qps_.push_back(std::make_unique<QueuePair>(this, b, b_send_cq, b_recv_cq, qpn_a + 1));
  QueuePair* qa = qps_[qpn_a].get();
  QueuePair* qb = qps_[qpn_a + 1].get();
  qa->peer_ = qb;
  qb->peer_ = qa;
  return {qa, qb};
}

void Fabric::count(Opcode op, size_t bytes) {
  switch (op) {
    case Opcode::kWrite:
      writes_.fetch_add(1, std::memory_order_relaxed);
      bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kRead:
      reads_.fetch_add(1, std::memory_order_relaxed);
      bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kSend:
      sends_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
      break;
    case Opcode::kRecv:
      break;
  }
}

void Fabric::count_error(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess:
      break;
    case WcStatus::kFlushError:
      flushed_wrs_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WcStatus::kRnrError:
      rnr_events_.fetch_add(1, std::memory_order_relaxed);
      wc_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case WcStatus::kRemoteAccessError:
    case WcStatus::kRetryExceeded:
      wc_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.writes = writes_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.sends = sends_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.wc_errors = wc_errors_.load(std::memory_order_relaxed);
  s.rnr_events = rnr_events_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.flushed_wrs = flushed_wrs_.load(std::memory_order_relaxed);
  s.coalesced_frames = coalesced_frames_.load(std::memory_order_relaxed);
  s.batched_posts = batched_posts_.load(std::memory_order_relaxed);
  s.rndz_transfers = rndz_transfers_.load(std::memory_order_relaxed);
  s.bytes_rndz = bytes_rndz_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::reset_stats() {
  writes_ = reads_ = sends_ = 0;
  bytes_written_ = bytes_read_ = bytes_sent_ = 0;
  wc_errors_ = rnr_events_ = retries_ = flushed_wrs_ = 0;
  coalesced_frames_ = batched_posts_ = 0;
  rndz_transfers_ = bytes_rndz_ = 0;
}

uint32_t QueuePair::peer_node() const { return peer_->device_->node_id(); }

bool QueuePair::post_send(std::span<const SendWr> wrs) {
  if (wrs.size() > 1) fabric_->batched_posts_.fetch_add(1, std::memory_order_relaxed);
  bool ok = true;
  for (const SendWr& wr : wrs) ok = post_send(wr) && ok;
  return ok;
}

// Success completions are clamped monotone so per-QP FIFO survives the
// sorted-holdback CQ. Error completions are NOT clamped: they deliver at
// detection time, possibly overtaking earlier (still held back) successes on
// the same QP. Consumers already handle that positionally — a CQE for wr_id X
// retires everything before X — and prompt error visibility is what lets the
// comm layer stop feeding new WRs in behind a failed one.
void QueuePair::push_recv_cqe(WorkCompletion wc) {
  if (wc.status == WcStatus::kSuccess) {
    if (wc.deliver_at_ns < last_recv_cqe_ns_) wc.deliver_at_ns = last_recv_cqe_ns_;
    last_recv_cqe_ns_ = wc.deliver_at_ns;
  }
  fabric_->count_error(wc.status);
  recv_cq_->push(wc);
}

void QueuePair::push_send_cqe(WorkCompletion wc) {
  if (wc.status == WcStatus::kSuccess) {
    if (wc.deliver_at_ns < last_send_cqe_ns_) wc.deliver_at_ns = last_send_cqe_ns_;
    last_send_cqe_ns_ = wc.deliver_at_ns;
  }
  fabric_->count_error(wc.status);
  send_cq_->push(wc);
}

void QueuePair::complete_send(const SendWr& wr, WcStatus status, uint64_t deliver_at_ns) {
  WorkCompletion wc;
  wc.wr_id = wr.wr_id;
  wc.opcode = wr.opcode;
  wc.status = status;
  wc.byte_len = wr.sge.length;
  wc.peer_node = peer_node();
  wc.qp_num = qp_num_;
  wc.deliver_at_ns = deliver_at_ns;
  push_send_cqe(wc);
}

void QueuePair::post_recv(const RecvWr& wr) {
  if (state() == QpState::kError) {
    // Verbs: WRs posted to an ERROR-state QP flush immediately.
    std::scoped_lock lk(recv_mu_);
    WorkCompletion wc;
    wc.wr_id = wr.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.status = WcStatus::kFlushError;
    wc.peer_node = peer_node();
    wc.qp_num = qp_num_;
    wc.deliver_at_ns = now_ns();
    push_recv_cqe(wc);
    return;
  }
  posted_recvs_.push(wr);
}

void QueuePair::set_error() {
  QpState expected = QpState::kRts;
  if (!state_.compare_exchange_strong(expected, QpState::kError,
                                      std::memory_order_acq_rel))
    return;  // already in ERROR
  // Flush outstanding RECVs with kFlushError. The peer's Tx thread is the
  // normal consumer of posted_recvs_, so serialise with it via recv_mu_.
  // (A recv posted concurrently with the transition may survive in the queue;
  // it simply remains posted after reset, as with real HW timing windows.)
  std::scoped_lock lk(recv_mu_);
  const uint64_t now = now_ns();
  RecvWr r;
  while (posted_recvs_.pop(r)) {
    WorkCompletion wc;
    wc.wr_id = r.wr_id;
    wc.opcode = Opcode::kRecv;
    wc.status = WcStatus::kFlushError;
    wc.peer_node = peer_node();
    wc.qp_num = qp_num_;
    wc.deliver_at_ns = now;
    push_recv_cqe(wc);
  }
}

bool QueuePair::reset() {
  QpState expected = QpState::kError;
  return state_.compare_exchange_strong(expected, QpState::kRts,
                                        std::memory_order_acq_rel);
}

bool QueuePair::post_send(const SendWr& wr) {
  DARRAY_ASSERT_MSG(peer_ != nullptr, "QP not connected");
  if (!device_->validate_local(wr.sge)) {
    DLOG_ERROR("post_send: local SGE validation failed (lkey=%u len=%u)", wr.sge.lkey,
               wr.sge.length);
    return false;
  }

  const uint64_t now = now_ns();
  if (state() == QpState::kError) {
    complete_send(wr, WcStatus::kFlushError, now);
    return true;
  }

  uint64_t one_way = fabric_->one_way_ns(wr.sge.length);
  WcStatus status = WcStatus::kSuccess;

  // Chaos: decide this WR's fate before any bytes move. An injected error
  // means the transfer did not happen (the transport gave up), so retrying it
  // is always safe; an injected delay only stretches the completion deadline.
  if (chaos::FaultInjector* inj = fabric_->fault_injector()) {
    const chaos::FaultDecision d =
        inj->decide(qp_num_, device_->node_id(), peer_node(), wr.opcode, now);
    status = d.status;
    one_way += d.extra_latency_ns;
  }

  if (status == WcStatus::kSuccess) {
    switch (wr.opcode) {
      case Opcode::kWrite: {
        std::byte* dst = peer_->device_->translate(wr.remote_addr, wr.rkey, wr.sge.length);
        if (!dst) {
          status = WcStatus::kRemoteAccessError;
          break;
        }
        // The "DMA": bytes land in the peer's registered memory with no peer CPU
        // involvement. Visibility races are prevented by the coherence protocol,
        // which always chases a data WRITE with a two-sided notification.
        std::memcpy(dst, wr.sge.addr, wr.sge.length);
        fabric_->count(Opcode::kWrite, wr.sge.length);
        break;
      }
      case Opcode::kRead: {
        const std::byte* src = peer_->device_->translate(wr.remote_addr, wr.rkey, wr.sge.length);
        if (!src) {
          status = WcStatus::kRemoteAccessError;
          break;
        }
        std::memcpy(const_cast<std::byte*>(wr.sge.addr), src, wr.sge.length);
        fabric_->count(Opcode::kRead, wr.sge.length);
        break;
      }
      case Opcode::kSend: {
        // An empty receive ring makes the target RNR-NAK; the RC transport
        // retries on its rnr_retry timer, so wait (bounded, without holding
        // the peer's recv lock) for the receiver to re-arm. Exhaustion
        // completes with kRnrError and stops the QP, as real RC does; the
        // comm layer then recovers with backoff + re-post.
        const uint64_t rnr_deadline = now + fabric_->config().rnr_retry_budget_ns;
        for (;;) {
          bool delivered = false;
          {
            std::scoped_lock lk(peer_->recv_mu_);
            RecvWr recv;
            if (peer_->posted_recvs_.pop(recv)) {
              DARRAY_ASSERT_MSG(recv.length >= wr.sge.length, "recv buffer too small");
              std::memcpy(recv.addr, wr.sge.addr, wr.sge.length);
              WorkCompletion rwc;
              rwc.wr_id = recv.wr_id;
              rwc.opcode = Opcode::kRecv;
              rwc.status = WcStatus::kSuccess;
              rwc.byte_len = wr.sge.length;
              rwc.peer_node = device_->node_id();
              rwc.qp_num = peer_->qp_num_;
              rwc.deliver_at_ns = now + one_way;
              peer_->push_recv_cqe(rwc);
              delivered = true;
            }
          }
          if (delivered) {
            fabric_->count(Opcode::kSend, wr.sge.length);
            break;
          }
          // No fast-exit while the peer QP sits in ERROR: the peer's Tx
          // thread resets it within its backoff cap and its Rx re-arms the
          // ring right after, both far inside the budget. Exiting early
          // instead livelocks two mutually-recovering peers, each erroring
          // the other's replays while it is itself mid-backoff.
          if (now_ns() >= rnr_deadline) {
            DLOG_DEBUG("post_send: RNR — peer node %u has no posted RECV", peer_node());
            status = WcStatus::kRnrError;
            break;
          }
          // Spin briefly for the common re-arm-in-microseconds case, then
          // yield: the receiver's Rx thread needs the core to repost.
          if (now_ns() - now < 50'000)
            cpu_relax();
          else
            std::this_thread::yield();
        }
        break;
      }
      case Opcode::kRecv:
        DARRAY_UNREACHABLE("kRecv is not a send opcode");
    }
  }

  // RC semantics: the first completion-with-error moves the QP to ERROR, so
  // every WR behind it flushes instead of overtaking it — the comm layer's
  // in-order recovery depends on this.
  if (status != WcStatus::kSuccess) set_error();

  if (wr.signaled || status != WcStatus::kSuccess) {
    // READ completes after a round trip carrying the payload; a signaled
    // WRITE completes on the remote HCA's transport ACK (also a round trip).
    // SENDs complete locally — selective signaling only recycles buffers.
    // Errors are detected at the transport and complete without the payload
    // round trip.
    const bool round_trip = status == WcStatus::kSuccess &&
                            (wr.opcode == Opcode::kRead || wr.opcode == Opcode::kWrite);
    complete_send(wr, status, round_trip ? now + 2 * one_way : now);
  }
  return true;
}

}  // namespace darray::rdma
