// Reliable-connected queue pair for the simulated fabric.
//
// Threading contract (matches how the comm layer uses real QPs):
//   - post_send: only the owning node's Tx thread
//   - post_recv: only the owning node's Rx thread
// The posted-receive queue is produced by the local Rx thread and consumed by
// the peer's Tx thread during its post_send. Error-state flushes also drain
// it (from whichever thread observed the error), so pops are serialised by
// recv_mu_ rather than by the single-consumer contract alone.
//
// State machine: QPs come out of Fabric::connect in RTS. Any completion with
// an error status moves the QP to ERROR — posted RECVs flush with
// kFlushError, and every WR posted while in ERROR flushes likewise, matching
// verbs semantics where an errored RC QP stops transmitting. reset() stands
// in for the RESET→INIT→RTR→RTS reconnect cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "common/mpsc_queue.hpp"
#include "common/spinlock.hpp"
#include "rdma/verbs.hpp"

namespace darray::rdma {

class Device;
class Fabric;
class CompletionQueue;

class QueuePair {
 public:
  QueuePair(Fabric* fabric, Device* device, CompletionQueue* send_cq,
            CompletionQueue* recv_cq, uint32_t qp_num)
      : fabric_(fabric),
        device_(device),
        send_cq_(send_cq),
        recv_cq_(recv_cq),
        qp_num_(qp_num) {}

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  // Post a work request toward the peer. Executes the transfer synchronously
  // (the "DMA"), with latency surfaced through completion deadlines. Returns
  // false only on local validation failure; transport-level failures surface
  // as error completions (which move the QP to ERROR).
  bool post_send(const SendWr& wr);

  // Doorbell-batched posting: submit a run of work requests with one call
  // (one doorbell ring on real hardware). WRs execute in span order, so
  // per-QP FIFO is exactly as if each were posted individually — chaos-mode
  // retry replay stays frame-exact. Returns false if any WR failed local
  // validation (the rest are still attempted, as verbs does with a bad_wr
  // chain cut).
  bool post_send(std::span<const SendWr> wrs);

  // Post a receive buffer. On an ERROR-state QP the buffer flushes straight
  // back through the recv CQ with kFlushError.
  void post_recv(const RecvWr& wr);

  QpState state() const { return state_.load(std::memory_order_acquire); }

  // RTS → ERROR: flush all posted RECVs to the recv CQ with kFlushError.
  // Idempotent; callable from any thread.
  void set_error();

  // ERROR → RTS. Posted RECVs were flushed on the transition, so the owner
  // re-posts them (the comm layer's Rx thread does this on the flush CQEs).
  // Returns true when the QP was in ERROR.
  bool reset();

  uint32_t qp_num() const { return qp_num_; }
  uint32_t peer_node() const;
  Device* device() const { return device_; }
  CompletionQueue* send_cq() const { return send_cq_; }
  CompletionQueue* recv_cq() const { return recv_cq_; }
  Fabric& fabric() const { return *fabric_; }

 private:
  friend class Fabric;

  // Push a completion onto this QP's recv CQ, clamping the deadline so the
  // QP's recv-CQE timestamps are monotone (per-QP FIFO under sorted-holdback
  // CQs). Caller holds recv_mu_.
  void push_recv_cqe(WorkCompletion wc);

  // Push onto the send CQ with the same clamp; poster thread only.
  void push_send_cqe(WorkCompletion wc);

  void complete_send(const SendWr& wr, WcStatus status, uint64_t deliver_at_ns);

  Fabric* fabric_;
  Device* device_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  const uint32_t qp_num_;
  QueuePair* peer_ = nullptr;  // wired by Fabric::connect
  MpscQueue<RecvWr> posted_recvs_;

  std::atomic<QpState> state_{QpState::kRts};
  SpinLock recv_mu_;             // serialises posted_recvs_ pops + recv-CQE pushes
  uint64_t last_send_cqe_ns_ = 0;  // poster-thread private
  uint64_t last_recv_cqe_ns_ = 0;  // guarded by recv_mu_
};

}  // namespace darray::rdma
