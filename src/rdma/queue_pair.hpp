// Reliable-connected queue pair for the simulated fabric.
//
// Threading contract (matches how the comm layer uses real QPs):
//   - post_send: only the owning node's Tx thread
//   - post_recv: only the owning node's Rx thread
// The posted-receive queue is therefore produced by the local Rx thread and
// consumed by the peer's Tx thread during its post_send — single consumer, so
// an MPSC queue suffices.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/mpsc_queue.hpp"
#include "rdma/verbs.hpp"

namespace darray::rdma {

class Device;
class Fabric;
class CompletionQueue;

class QueuePair {
 public:
  QueuePair(Fabric* fabric, Device* device, CompletionQueue* send_cq,
            CompletionQueue* recv_cq, uint32_t qp_num)
      : fabric_(fabric),
        device_(device),
        send_cq_(send_cq),
        recv_cq_(recv_cq),
        qp_num_(qp_num) {}

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  // Post a work request toward the peer. Executes the transfer synchronously
  // (the "DMA"), with latency surfaced through completion deadlines. Returns
  // false only on local validation failure.
  bool post_send(const SendWr& wr);

  void post_recv(const RecvWr& wr) { posted_recvs_.push(wr); }

  uint32_t qp_num() const { return qp_num_; }
  uint32_t peer_node() const;
  Device* device() const { return device_; }
  CompletionQueue* send_cq() const { return send_cq_; }
  CompletionQueue* recv_cq() const { return recv_cq_; }

 private:
  friend class Fabric;

  Fabric* fabric_;
  Device* device_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  const uint32_t qp_num_;
  QueuePair* peer_ = nullptr;  // wired by Fabric::connect
  MpscQueue<RecvWr> posted_recvs_;
};

}  // namespace darray::rdma
