// Per-node "RNIC": owns the registered-memory-region table and validates all
// remote access against it, like the real NIC's MTT/MPT would.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "rdma/verbs.hpp"

namespace darray::rdma {

class Device {
 public:
  explicit Device(uint32_t node_id) : node_id_(node_id) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  uint32_t node_id() const { return node_id_; }

  MemoryRegion reg_mr(void* addr, size_t length);
  void dereg_mr(uint32_t lkey);

  // Validate and translate a remote access; nullptr on rkey/bounds failure.
  std::byte* translate(uint64_t remote_addr, uint32_t rkey, size_t len) const;

  // Validate a local SGE against its lkey (posting-side check).
  bool validate_local(const Sge& sge) const;

 private:
  const uint32_t node_id_;
  mutable std::shared_mutex mu_;  // registration is rare; lookups are frequent
  uint32_t next_key_ = 1;
  std::unordered_map<uint32_t, MemoryRegion> mrs_;  // keyed by lkey (== rkey here)
};

}  // namespace darray::rdma
