// The simulated switch: creates devices, wires reliable-connected queue
// pairs, executes transfers, injects latency (and, when a FaultInjector is
// attached, faults), and counts traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spinlock.hpp"
#include "rdma/completion_queue.hpp"
#include "rdma/device.hpp"
#include "rdma/queue_pair.hpp"
#include "rdma/verbs.hpp"

namespace darray::chaos {
class FaultInjector;
}

namespace darray::rdma {

struct FabricConfig {
  uint64_t latency_ns = 0;     // one-way base latency per message
  double ns_per_byte = 0.0;    // bandwidth model (100 Gbps ≈ 0.08 ns/B)
  // RNR-NAK absorption: how long a SEND waits for the receiver to re-arm its
  // ring before completing with kRnrError (models the RC transport's
  // rnr_retry timer; exhaustion errors the QP, as real RC does). Must exceed
  // the comm layer's backoff cap — during recovery the receiver re-arms only
  // after its Tx thread's next backoff expiry — and leave slack for OS
  // descheduling of the receiver's Rx thread on oversubscribed hosts.
  uint64_t rnr_retry_budget_ns = 100'000'000;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig cfg = {}) : cfg_(cfg) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Device* create_device(uint32_t node_id);

  // Create an RC connection; returns {a-side, b-side}. The caller supplies
  // each side's CQs (CQs may be shared across QPs, as with real verbs).
  std::pair<QueuePair*, QueuePair*> connect(Device* a, CompletionQueue* a_send_cq,
                                            CompletionQueue* a_recv_cq, Device* b,
                                            CompletionQueue* b_send_cq,
                                            CompletionQueue* b_recv_cq);

  const FabricConfig& config() const { return cfg_; }

  uint64_t one_way_ns(size_t bytes) const {
    return cfg_.latency_ns + static_cast<uint64_t>(cfg_.ns_per_byte * static_cast<double>(bytes));
  }

  // Attach a chaos fault injector (non-owning; nullptr disables injection).
  // Set before traffic starts; every posted WR consults it.
  void set_fault_injector(chaos::FaultInjector* injector) { injector_ = injector; }
  chaos::FaultInjector* fault_injector() const { return injector_; }

  // Comm-layer hook: record one recovery re-post so fault activity is visible
  // in a single place alongside the error counters.
  void count_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }

  // Comm-layer hook: n protocol frames were packed into one wire SEND.
  void count_coalesced(uint64_t n) {
    coalesced_frames_.fetch_add(n, std::memory_order_relaxed);
  }

  // Comm-layer hook: one rendezvous pull of `bytes` completed (the READ WRs
  // themselves are already in reads/bytes_read; this breaks the rendezvous
  // subset out so bulk accounting can distinguish it from eager traffic).
  void count_rndz(uint64_t bytes) {
    rndz_transfers_.fetch_add(1, std::memory_order_relaxed);
    bytes_rndz_.fetch_add(bytes, std::memory_order_relaxed);
  }

  FabricStats stats() const;
  void reset_stats();

 private:
  friend class QueuePair;

  void count(Opcode op, size_t bytes);
  void count_error(WcStatus status);

  FabricConfig cfg_;
  chaos::FaultInjector* injector_ = nullptr;
  SpinLock mu_;  // guards topology construction only
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<QueuePair>> qps_;

  std::atomic<uint64_t> writes_{0}, reads_{0}, sends_{0};
  std::atomic<uint64_t> bytes_written_{0}, bytes_read_{0}, bytes_sent_{0};
  std::atomic<uint64_t> wc_errors_{0}, rnr_events_{0}, retries_{0}, flushed_wrs_{0};
  std::atomic<uint64_t> coalesced_frames_{0}, batched_posts_{0};
  std::atomic<uint64_t> rndz_transfers_{0}, bytes_rndz_{0};
};

}  // namespace darray::rdma
