// The simulated switch: creates devices, wires reliable-connected queue
// pairs, executes transfers, injects latency, and counts traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spinlock.hpp"
#include "rdma/completion_queue.hpp"
#include "rdma/device.hpp"
#include "rdma/queue_pair.hpp"
#include "rdma/verbs.hpp"

namespace darray::rdma {

struct FabricConfig {
  uint64_t latency_ns = 0;     // one-way base latency per message
  double ns_per_byte = 0.0;    // bandwidth model (100 Gbps ≈ 0.08 ns/B)
};

class Fabric {
 public:
  explicit Fabric(FabricConfig cfg = {}) : cfg_(cfg) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  Device* create_device(uint32_t node_id);

  // Create an RC connection; returns {a-side, b-side}. The caller supplies
  // each side's CQs (CQs may be shared across QPs, as with real verbs).
  std::pair<QueuePair*, QueuePair*> connect(Device* a, CompletionQueue* a_send_cq,
                                            CompletionQueue* a_recv_cq, Device* b,
                                            CompletionQueue* b_send_cq,
                                            CompletionQueue* b_recv_cq);

  uint64_t one_way_ns(size_t bytes) const {
    return cfg_.latency_ns + static_cast<uint64_t>(cfg_.ns_per_byte * static_cast<double>(bytes));
  }

  FabricStats stats() const;
  void reset_stats();

 private:
  friend class QueuePair;

  void count(Opcode op, size_t bytes);

  FabricConfig cfg_;
  SpinLock mu_;  // guards topology construction only
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<QueuePair>> qps_;

  std::atomic<uint64_t> writes_{0}, reads_{0}, sends_{0};
  std::atomic<uint64_t> bytes_written_{0}, bytes_read_{0}, bytes_sent_{0};
};

}  // namespace darray::rdma
