// Verbs-shaped types for the simulated RDMA fabric.
//
// The API mirrors the subset of ibverbs the paper's communication layer needs:
// registered memory regions with rkeys, reliable-connected queue pairs,
// one-sided WRITE/READ, two-sided SEND/RECV, completion queues, and selective
// signaling. See DESIGN.md §1 for why this substitution preserves the paper's
// behaviour.
#pragma once

#include <cstddef>
#include <cstdint>

namespace darray::rdma {

enum class Opcode : uint8_t { kWrite, kRead, kSend, kRecv };

enum class WcStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,  // rkey/bounds validation failed at the target
  kRnrError,           // SEND found no posted RECV (RNR retries exhausted)
  kRetryExceeded,      // transport retries exhausted (unreachable/blackholed peer)
  kFlushError,         // WR flushed because the QP was in the ERROR state
};

const char* wc_status_name(WcStatus s);

// QP state machine (the subset of the verbs RESET/INIT/RTR/RTS/ERR machine
// the simulation needs): Fabric::connect hands out QPs already in RTS; any
// completion-with-error moves the QP to ERROR, where outstanding and newly
// posted WRs flush with kFlushError; reset() models the teardown/reconnect
// cycle back to RTS.
enum class QpState : uint8_t { kRts, kError };

// A registered memory region. lkey/rkey are generated on registration and
// every remote access is validated against them, like a real RNIC would.
struct MemoryRegion {
  std::byte* addr = nullptr;
  size_t length = 0;
  uint32_t lkey = 0;
  uint32_t rkey = 0;
};

// Scatter/gather element (single-SGE work requests only, which is all the
// comm layer uses).
struct Sge {
  const std::byte* addr = nullptr;
  uint32_t length = 0;
  uint32_t lkey = 0;
};

struct SendWr {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  Sge sge;                    // local buffer (source for WRITE/SEND, dest for READ)
  uint64_t remote_addr = 0;   // WRITE/READ only
  uint32_t rkey = 0;          // WRITE/READ only
  bool signaled = true;       // selective signaling: unsignaled → no send CQE
};

struct RecvWr {
  uint64_t wr_id = 0;
  std::byte* addr = nullptr;
  uint32_t length = 0;
  uint32_t lkey = 0;
};

struct WorkCompletion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  uint32_t byte_len = 0;
  uint32_t peer_node = 0;   // node at the other end of the QP
  uint32_t qp_num = 0;
  // Simulation detail: the CQ withholds this entry until this steady-clock
  // deadline, which is how link latency is modelled (see Fabric).
  uint64_t deliver_at_ns = 0;
};

struct FabricStats {
  uint64_t writes = 0;
  uint64_t reads = 0;
  uint64_t sends = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_sent = 0;

  // Fault/recovery activity. wc_errors counts completions with a non-success,
  // non-flush status (kRemoteAccessError/kRnrError/kRetryExceeded, injected or
  // genuine); rnr_events is the kRnrError subset; flushed_wrs counts WRs
  // flushed through an ERROR-state QP; retries counts comm-layer re-posts.
  uint64_t wc_errors = 0;
  uint64_t rnr_events = 0;
  uint64_t retries = 0;
  uint64_t flushed_wrs = 0;

  // Small-message engine activity (docs/perf.md). coalesced_frames counts
  // protocol messages that shared a multi-frame wire SEND (singletons are not
  // counted); batched_posts counts doorbell-batched post calls that carried
  // more than one WR.
  uint64_t coalesced_frames = 0;
  uint64_t batched_posts = 0;

  // Large-message engine activity (docs/perf.md): transfers negotiated as a
  // rendezvous and the bytes they moved by one-sided READ pull. bytes_rndz is
  // a subset of bytes_read, broken out so bulk-path accounting can tell
  // rendezvous traffic from eager WRITE traffic at the fabric level.
  uint64_t rndz_transfers = 0;
  uint64_t bytes_rndz = 0;

  uint64_t total_messages() const { return writes + reads + sends; }
  uint64_t total_bytes() const { return bytes_written + bytes_read + bytes_sent; }
  uint64_t total_faults() const { return wc_errors + flushed_wrs; }
};

}  // namespace darray::rdma
