// Distributed key-value store demo (paper §5.2), served through the client
// front door: a KvsService wraps the storage engine, and all application
// traffic — basic ops, cross-node visibility, a short YCSB mix — goes through
// darray::Client sessions with typed Status results.
//
//   build/examples/kvs_demo [nodes] [threads_per_node]
#include <cstdio>
#include <cstdlib>

#include "kvs/kvs.hpp"
#include "serve/client.hpp"
#include "serve/ycsb_serve.hpp"

using namespace darray;
using namespace darray::kvs;
using namespace darray::serve;

int main(int argc, char** argv) {
  const uint32_t nodes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;
  const uint32_t threads = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2;

  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  rt::Cluster cluster(cfg);

  // The storage engine, then the front door over it. Applications only ever
  // touch the service via Client from here on.
  auto svc = KvsService::create(cluster, DKvs::create(cluster));

  // Basic operations from a session on node 0.
  Client cli = Client::connect(svc, {.node = 0});
  cli.put("language", "C++20");
  cli.put("paper", "DArray (ICPP 2023)");
  cli.put("language", "C++23");  // update in place
  std::string v;
  cli.get("language", v);
  std::printf("get(language) = %s\n", v.c_str());
  cli.get("paper", v);
  std::printf("get(paper)    = %s\n", v.c_str());
  std::printf("get(missing)  = %s\n",
              cli.get("missing", v) == Status::kNotFound ? "(not found)" : "?");
  cli.erase("paper");
  std::printf("after erase, get(paper) found: %s\n",
              cli.get("paper", v) == Status::kOk ? "yes" : "no");

  // Cross-node visibility: a session on the last node sees node 0's writes
  // and vice versa (every key is served by its owner's dispatcher).
  std::thread other([&] {
    Client remote = Client::connect(svc, {.node = nodes - 1});
    std::string rv;
    remote.get("language", rv);
    std::printf("node %u sees language = %s\n", nodes - 1, rv.c_str());
    remote.put("from-node", std::to_string(nodes - 1));
  });
  other.join();
  cli.get("from-node", v);
  std::printf("node 0 sees from-node = %s\n", v.c_str());

  // Pipelined submission: several gets in flight on one session, harvested
  // in order.
  serve::OpHandle h1 = cli.async_get("language");
  serve::OpHandle h2 = cli.async_get("from-node");
  serve::OpHandle h3 = cli.async_get("missing");
  std::printf("pipelined: %s / %s / %s\n", h1.get().value.c_str(),
              h2.get().value.c_str(), status_name(h3.get().status));

  // A short YCSB run through the serve path (95% gets, zipfian 0.99 — the
  // paper's §6.5 setup).
  YcsbConfig ycfg;
  ycfg.n_keys = 5000;
  ycfg.ops_per_thread = 1000;
  ycfg.threads_per_node = threads;
  ycfg.get_ratio = 0.95;
  ycsb_load_serve(svc, ycfg);
  ServeYcsbResult r = run_ycsb_serve(svc, ycfg);
  std::printf("YCSB: %.1f Kops/s (%llu gets, %llu puts, %llu misses) in %.2fs\n", r.kops,
              static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.puts),
              static_cast<unsigned long long>(r.misses), r.elapsed_s);
  std::printf("serve: accepted=%llu hot_hits=%llu shed=%llu\n",
              static_cast<unsigned long long>(svc.counters().accepted.load()),
              static_cast<unsigned long long>(svc.counters().hot_hits.load()),
              static_cast<unsigned long long>(svc.counters().shed.load()));
  svc.shutdown();
  return 0;
}
