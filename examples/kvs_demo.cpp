// Distributed key-value store demo (paper §5.2): puts/gets/deletes from
// multiple nodes, then a short YCSB mix.
//
//   build/examples/kvs_demo [nodes] [threads_per_node]
#include <cstdio>
#include <cstdlib>

#include "kvs/kvs.hpp"
#include "kvs/ycsb.hpp"

using namespace darray;
using namespace darray::kvs;

int main(int argc, char** argv) {
  const uint32_t nodes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;
  const uint32_t threads = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2;

  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  rt::Cluster cluster(cfg);

  DKvs kvs = DKvs::create(cluster);

  // Basic operations from node 0.
  bind_thread(cluster, 0);
  kvs.put("language", "C++20");
  kvs.put("paper", "DArray (ICPP 2023)");
  kvs.put("language", "C++23");  // update in place
  std::printf("get(language) = %s\n", kvs.get("language")->c_str());
  std::printf("get(paper)    = %s\n", kvs.get("paper")->c_str());
  std::printf("get(missing)  = %s\n", kvs.get("missing") ? "?" : "(not found)");
  kvs.erase("paper");
  std::printf("after erase, get(paper) found: %s\n", kvs.get("paper") ? "yes" : "no");

  // Cross-node visibility.
  std::thread other([&] {
    bind_thread(cluster, nodes - 1);
    std::printf("node %u sees language = %s\n", nodes - 1, kvs.get("language")->c_str());
    kvs.put("from-node", std::to_string(nodes - 1));
  });
  other.join();
  std::printf("node 0 sees from-node = %s\n", kvs.get("from-node")->c_str());

  // A short YCSB run (95% gets, zipfian 0.99 — the paper's §6.5 setup).
  YcsbConfig ycfg;
  ycfg.n_keys = 5000;
  ycfg.ops_per_thread = 1000;
  ycfg.threads_per_node = threads;
  ycfg.get_ratio = 0.95;
  ycsb_load(cluster, kvs, ycfg);
  YcsbResult r = run_ycsb(cluster, kvs, ycfg);
  std::printf("YCSB: %.1f Kops/s (%llu gets, %llu puts, %llu misses) in %.2fs\n", r.kops,
              static_cast<unsigned long long>(r.gets),
              static_cast<unsigned long long>(r.puts),
              static_cast<unsigned long long>(r.misses), r.elapsed_s);
  return 0;
}
