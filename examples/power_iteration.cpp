// Power iteration on a distributed matrix: the array-compute layer's
// mini-solver. Each step is three chunked collectives — gemv, norm2, scale —
// with every node computing only the rows/extents it owns and remote operands
// streamed through prefetch-overlapped cursors (src/compute).
//
//   build/examples/power_iteration [nodes] [n]
//
// The matrix is A = 2·I + (1/n)·1·1ᵀ, whose dominant eigenvalue is exactly 3,
// so the printed estimates visibly converge to a known answer.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "compute/collectives.hpp"
#include "core/darray.hpp"

using namespace darray;

int main(int argc, char** argv) {
  const uint32_t nodes = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 3;
  const uint64_t n = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 256;

  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.chunk_elems = static_cast<uint32_t>(n);  // one matrix row per chunk:
  rt::Cluster cluster(cfg);                    // any partition is row-aligned

  auto A = DArray<double>::create(cluster, n * n);
  auto x = DArray<double>::create(cluster, n);
  auto y = DArray<double>::create(cluster, n);

  // Each node fills the rows it owns; x starts as the all-ones vector.
  std::vector<std::thread> setup;
  for (uint32_t node = 0; node < nodes; ++node) {
    setup.emplace_back([&, node] {
      bind_thread(cluster, node);
      std::vector<double> row(n);
      for (uint64_t i = A.local_begin(node); i < A.local_end(node); i += n) {
        const uint64_t r = i / n;
        for (uint64_t c = 0; c < n; ++c)
          row[c] = (r == c ? 2.0 : 0.0) + 1.0 / static_cast<double>(n);
        A.set_range(i, std::span<const double>(row));
      }
      // Start away from the dominant eigenvector so convergence is visible.
      for (uint64_t i = x.local_begin(node); i < x.local_end(node); ++i)
        x.set(i, 1.0 + static_cast<double>(i % 7));
    });
  }
  for (auto& t : setup) t.join();

  std::printf("power iteration: %llu×%llu on %u nodes (exact λ₁ = 3)\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(n),
              nodes);
  std::vector<std::thread> workers;
  for (uint32_t node = 0; node < nodes; ++node) {
    workers.emplace_back([&, node] {
      bind_thread(cluster, node);
      double lambda = 0;
      for (int it = 1; it <= 20; ++it) {
        compute::gemv(1.0, A, x, 0.0, y, n, n);  // y ← A·x
        lambda = compute::norm2(y);              // λ  ← ‖y‖₂
        compute::copy(y, x);                     // x  ← y / λ
        compute::scale(1.0 / lambda, x);
        if (node == 0 && (it <= 5 || it % 5 == 0))
          std::printf("  iter %2d: λ ≈ %.12f\n", it, lambda);
      }
      if (node == 0)
        std::printf("converged: λ = %.12f (error %.2e)\n", lambda,
                    std::fabs(lambda - 3.0));
    });
  }
  for (auto& t : workers) t.join();
  return 0;
}
