// Graph traversal demo: BFS and weighted SSSP on a distributed R-MAT graph,
// both built on DArray's write_min Operate pattern (paper §4.3/§5.1).
//
//   build/examples/shortest_paths [scale] [nodes]
#include <cstdio>
#include <cstdlib>

#include "graph/bfs.hpp"
#include "graph/rmat.hpp"
#include "graph/sssp.hpp"

using namespace darray;
using namespace darray::graph;

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 10;
  const uint32_t nodes = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 3;

  RmatParams params;
  params.scale = scale;
  const auto edges = rmat_edges(params);
  Csr g = Csr::symmetric_from_edges(uint64_t{1} << scale, edges);
  std::printf("graph: %llu vertices, %llu (symmetric) edges\n",
              static_cast<unsigned long long>(g.n_vertices()),
              static_cast<unsigned long long>(g.n_edges()));

  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  rt::Cluster cluster(cfg);
  GraphRunOptions opt;
  opt.threads_per_node = 1;

  // Start from the highest-degree vertex so the traversal covers the graph's
  // giant component (R-MAT leaves many low-degree/isolated vertices).
  Vertex source = 0;
  for (Vertex v = 1; v < g.n_vertices(); ++v)
    if (g.out_degree(v) > g.out_degree(source)) source = v;

  const auto bfs = bfs_darray(cluster, g, source, opt);
  const auto bfs_ref = bfs_reference(g, source);
  uint64_t reached = 0, max_depth = 0, mismatches = 0;
  for (uint64_t v = 0; v < g.n_vertices(); ++v) {
    if (bfs[v] != kUnreached) {
      reached++;
      max_depth = std::max(max_depth, bfs[v]);
    }
    mismatches += bfs[v] != bfs_ref[v];
  }
  std::printf("BFS from v%u: reached %llu vertices, eccentricity %llu, "
              "%llu mismatches vs serial reference\n",
              source, static_cast<unsigned long long>(reached),
              static_cast<unsigned long long>(max_depth),
              static_cast<unsigned long long>(mismatches));

  const auto dist = sssp_darray(cluster, g, source, opt);
  const auto dist_ref = sssp_reference(g, source);
  uint64_t sssp_mismatches = 0, sum = 0;
  for (uint64_t v = 0; v < g.n_vertices(); ++v) {
    sssp_mismatches += dist[v] != dist_ref[v];
    if (dist[v] != kInfDist) sum += dist[v];
  }
  std::printf("SSSP from v%u: total weighted distance %llu, %llu mismatches vs Dijkstra\n",
              source, static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(sssp_mismatches));

  return (mismatches == 0 && sssp_mismatches == 0) ? 0 : 1;
}
