// Quickstart: the full DArray API tour on a small simulated cluster.
//
//   build/examples/quickstart
//
// Creates a 4-node cluster, a distributed array, and demonstrates Read/Write,
// the Operate interface (write_add), distributed R/W locks, and the Pin hint.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/darray.hpp"

using namespace darray;

int main() {
  // 1. A simulated 4-node RDMA cluster (each "node" = runtime + Tx/Rx threads
  //    joined by the simulated fabric).
  rt::ClusterConfig cfg;
  cfg.num_nodes = 4;
  rt::Cluster cluster(cfg);

  // 2. A global array of 100k doubles, evenly partitioned across the nodes.
  auto arr = DArray<double>::create(cluster, 100'000);
  std::printf("created DArray with %llu elements over %u nodes\n",
              static_cast<unsigned long long>(arr.size()), cluster.num_nodes());

  // 3. Register an associative+commutative operator for the Operate API. The
  //    handle is typed: applying it through a non-double array won't compile.
  const OpHandle<double> add =
      arr.register_op(+[](double& acc, double v) { acc += v; }, 0.0);

  // 4. Each node's application thread writes its local range, then applies
  //    concurrent write_adds to a shared "counter" element — no locks needed.
  std::vector<std::thread> threads;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    threads.emplace_back([&, n] {
      bind_thread(cluster, n);  // this thread is an app thread of node n

      // Plain writes to the local partition (fast path, no network).
      for (uint64_t i = arr.local_begin(n); i < arr.local_end(n); ++i)
        arr.set(i, static_cast<double>(i));

      // Concurrent Operate on one hot element from every node: operands are
      // combined locally and reduced at the home node (§4.3 of the paper).
      for (int k = 0; k < 1000; ++k) arr.apply(0, add, 1.0);

      // Distributed writer lock protecting a read-modify-write; the guard
      // releases on scope exit (even if an exception unwinds through it).
      {
        auto g = arr.scoped_wlock(1);
        arr.set(1, arr.get(1) + 10.0);
      }

      // Pin a remote chunk and sweep it with zero atomics (§4.1), pulling the
      // elements out in one bounds-checked bulk read.
      const uint64_t remote = arr.local_begin((n + 1) % cluster.num_nodes());
      if (auto p = arr.scoped_pin(remote, PinMode::kRead)) {
        double vals[64];
        arr.get_range(remote, vals);
        double sum = 0;
        for (double v : vals) sum += v;
        std::printf("node %u pinned-read sum over 64 remote elems: %.0f\n", n, sum);
      }
    });
  }
  for (auto& t : threads) t.join();

  // 5. Verify from node 0: reads force every node's combined operands home.
  bind_thread(cluster, 0);
  std::printf("arr[0] after 4 nodes x 1000 write_add(1.0): %.0f (expect 4000)\n",
              arr.get(0));
  std::printf("arr[1] after 4 locked +10 updates:          %.0f (expect 41)\n", arr.get(1));
  std::printf("arr[99999]:                                 %.0f (expect 99999)\n",
              arr.get(99'999));
  return 0;
}
