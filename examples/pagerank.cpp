// PageRank on an R-MAT graph with the DArray-backed graph engine (paper §5.1)
// — the simplified Fig. 8 pattern, fleshed out: the single-machine engine's
// shared arrays become DArrays and the scatter phase uses write_add.
//
//   build/examples/pagerank [scale] [nodes] [iterations]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "graph/pagerank.hpp"
#include "graph/reference.hpp"
#include "graph/rmat.hpp"

using namespace darray;
using namespace darray::graph;

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 12;
  const uint32_t nodes = argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 3;
  const int iters = argc > 3 ? std::atoi(argv[3]) : 10;

  RmatParams params;
  params.scale = scale;
  Csr g = rmat_graph(params);
  std::printf("rMat%u: %llu vertices, %llu edges\n", scale,
              static_cast<unsigned long long>(g.n_vertices()),
              static_cast<unsigned long long>(g.n_edges()));

  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  rt::Cluster cluster(cfg);

  GraphRunOptions opt;
  opt.iterations = iters;
  opt.use_pin = true;  // the DArray-Pin variant of the paper

  const uint64_t t0 = now_ns();
  std::vector<double> ranks = pagerank_darray(cluster, g, opt);
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  std::printf("distributed PageRank: %d iterations on %u nodes in %.2fs\n", iters, nodes,
              secs);

  // Validate against the serial reference.
  std::vector<double> ref = pagerank_reference(g, iters);
  double max_err = 0;
  for (uint64_t v = 0; v < g.n_vertices(); ++v)
    max_err = std::max(max_err, std::abs(ranks[v] - ref[v]));
  std::printf("max |rank - serial reference| = %.3g\n", max_err);

  // Top-5 ranked vertices.
  std::vector<uint32_t> order(g.n_vertices());
  for (uint32_t i = 0; i < g.n_vertices(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](uint32_t a, uint32_t b) { return ranks[a] > ranks[b]; });
  std::printf("top vertices by rank:\n");
  for (int i = 0; i < 5; ++i)
    std::printf("  v%-8u rank=%.3e out_degree=%llu\n", order[i], ranks[order[i]],
                static_cast<unsigned long long>(g.out_degree(order[i])));
  return max_err < 1e-9 ? 0 : 1;
}
