#include "net/rma_mesh.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "tests/test_util.hpp"

namespace darray::net {
namespace {

TEST(RmaMesh, BlockingWriteDelivers) {
  rt::Cluster cluster(darray::testing::small_cfg(3));
  std::vector<rdma::Device*> devs;
  for (uint32_t i = 0; i < 3; ++i) devs.push_back(cluster.node(i).device());
  RmaMesh mesh(cluster.fabric(), devs);

  std::vector<std::byte> src(128), dst(128);
  std::memset(src.data(), 0x3C, src.size());
  rdma::MemoryRegion ms = mesh.reg(0, src.data(), src.size());
  rdma::MemoryRegion md = mesh.reg(2, dst.data(), dst.size());

  mesh.write(0, 2, src.data(), ms.lkey, reinterpret_cast<uint64_t>(dst.data()), md.rkey,
             128);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 128), 0);
}

TEST(RmaMesh, AllPairs) {
  rt::Cluster cluster(darray::testing::small_cfg(3));
  std::vector<rdma::Device*> devs;
  for (uint32_t i = 0; i < 3; ++i) devs.push_back(cluster.node(i).device());
  RmaMesh mesh(cluster.fabric(), devs);

  std::vector<std::vector<std::byte>> bufs(3, std::vector<std::byte>(24));
  std::vector<rdma::MemoryRegion> mrs;
  for (uint32_t i = 0; i < 3; ++i) mrs.push_back(mesh.reg(i, bufs[i].data(), 24));

  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      std::byte payload[8];
      std::memset(payload, static_cast<int>(a * 3 + b), sizeof(payload));
      rdma::MemoryRegion pm = mesh.reg(a, payload, sizeof(payload));
      mesh.write(a, b, payload, pm.lkey,
                 reinterpret_cast<uint64_t>(bufs[b].data() + a * 8), mrs[b].rkey, 8);
      EXPECT_EQ(static_cast<int>(bufs[b][a * 8]), static_cast<int>(a * 3 + b));
    }
  }
}

}  // namespace
}  // namespace darray::net
