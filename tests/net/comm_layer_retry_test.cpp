// Comm-layer recovery under injected faults: transparent in-order retry,
// staged data WRITEs, RNR re-posting, and surfacing of exhausted requests
// through the error handler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "common/wait.hpp"
#include "net/comm_layer.hpp"

namespace darray::net {
namespace {

// Two nodes' comm layers over one fabric with a fault injector attached
// before any traffic.
struct ChaosHarness {
  ClusterConfig cfg;
  chaos::FaultPlan plan;
  std::unique_ptr<chaos::FaultInjector> injector;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::unique_ptr<CommLayer> c0, c1;

  std::mutex mu;
  std::vector<RpcMessage> inbox0, inbox1;
  std::atomic<int> received{0};

  explicit ChaosHarness(chaos::FaultPlan p, ClusterConfig base = {}) : cfg(base), plan(p) {
    cfg.num_nodes = 2;
    cfg.qp_depth = 64;
    cfg.fault_plan = &plan;
    if (plan.enabled()) {
      injector = std::make_unique<chaos::FaultInjector>(plan);
      fabric.set_fault_injector(injector.get());
    }
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<CommLayer>(0, 2, cfg, d0, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox0.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
    c1 = std::make_unique<CommLayer>(1, 2, cfg, d1, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox1.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
  }

  void start() {
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~ChaosHarness() {
    c0->stop();
    c1->stop();
  }

  void wait_for(int n) {
    spin_wait_until(received, [n](int v) { return v >= n; });
  }
};

chaos::FaultPlan flaky_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.05;
  p.p_rnr = 0.03;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 50'000;
  return p;
}

TEST(CommLayerRetry, FaultyLinkStillDeliversEverythingInOrder) {
  ChaosHarness h(flaky_plan(13));
  h.start();
  constexpr int kEach = 400;
  for (int i = 0; i < kEach; ++i) {
    TxRequest a;
    a.dst = 1;
    a.hdr.type = MsgType::kInvAck;
    a.hdr.chunk = static_cast<uint64_t>(i);
    h.c0->post(std::move(a));
    TxRequest b;
    b.dst = 0;
    b.hdr.type = MsgType::kInvAck;
    b.hdr.chunk = static_cast<uint64_t>(i);
    h.c1->post(std::move(b));
  }
  h.wait_for(2 * kEach);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox0.size(), static_cast<size_t>(kEach));
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kEach));
  // Transparent recovery must preserve per-QP FIFO: chunks in posting order,
  // no duplicates, no losses.
  for (int i = 0; i < kEach; ++i) {
    EXPECT_EQ(h.inbox0[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  }
  // The plan makes at least one fault on 800 messages a near-certainty; every
  // one of them must have been retried (nothing was dropped).
  const rdma::FabricStats s = h.fabric.stats();
  EXPECT_GT(s.wc_errors, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
  EXPECT_EQ(h.c1->dropped_requests(), 0u);
}

TEST(CommLayerRetry, StagedWriteSurvivesSourceRecycling) {
  // Under chaos the data WRITE must be replayable after the runtime recycles
  // the source cacheline, so the Tx thread stages the payload.
  ChaosHarness h(flaky_plan(99));
  h.start();
  std::vector<std::byte> src(256), dst(256);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());

  constexpr int kRounds = 60;
  for (int r = 0; r < kRounds; ++r) {
    std::memset(src.data(), 0x40 + (r & 0x3F), src.size());
    std::atomic<uint32_t> posted{0};
    TxRequest t;
    t.dst = 1;
    t.hdr.type = MsgType::kReadData;
    t.hdr.chunk = static_cast<uint64_t>(r);
    t.data_src = src.data();
    t.data_len = 256;
    t.data_lkey = ms.lkey;
    t.data_remote_addr = reinterpret_cast<uint64_t>(dst.data());
    t.data_rkey = md.rkey;
    t.posted_flag = &posted;
    h.c0->post(std::move(t));
    // The moment the flag is set the source is "recycled": clobber it.
    spin_wait_until(posted, [](uint32_t v) { return v != 0; });
    std::memset(src.data(), 0xFF, src.size());
    // The notification arrives only after the WRITE landed (FIFO), and the
    // data must be the staged original, not the clobbered source.
    h.wait_for(r + 1);
    for (size_t i = 0; i < dst.size(); ++i)
      ASSERT_EQ(dst[i], static_cast<std::byte>(0x40 + (r & 0x3F)))
          << "round " << r << " byte " << i;
  }
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
}

TEST(CommLayerRetry, ExhaustedRetriesSurfaceThroughErrorHandler) {
  // A permanently blackholed peer: every WR toward node 1 is dropped, so the
  // request must burn its attempt budget and land in the error handler.
  chaos::FaultPlan p;
  p.seed = 5;
  chaos::FaultWindow w;
  w.node = 1;
  w.start_ns = 0;
  w.duration_ns = ~0ull / 2;  // effectively forever
  w.blackhole = true;
  p.windows.push_back(w);

  ClusterConfig base;
  base.comm_max_attempts = 4;
  base.comm_backoff_base_ns = 5'000;
  base.comm_backoff_cap_ns = 40'000;
  ChaosHarness h(p, base);

  std::atomic<int> failures{0};
  CommError last{};
  h.c0->set_error_handler([&](const CommError& err) {
    last = err;
    failures.fetch_add(1, std::memory_order_release);
    failures.notify_all();
  });
  h.start();

  TxRequest t;
  t.dst = 1;
  t.hdr.type = MsgType::kInvAck;
  t.hdr.chunk = 7;
  h.c0->post(std::move(t));

  spin_wait_until(failures, [](int v) { return v >= 1; });
  EXPECT_EQ(last.peer, 1u);
  EXPECT_EQ(last.attempts, 4u);
  EXPECT_EQ(last.status, rdma::WcStatus::kRetryExceeded);
  EXPECT_STREQ(last.reason, "retry attempts exhausted");
  EXPECT_GE(h.c0->dropped_requests(), 1u);
  EXPECT_GE(h.fabric.stats().retries, 3u);
}

TEST(CommLayerRetry, CleanLinkKeepsFaultCountersAtZero) {
  // No injector ⇒ the whole fault path stays cold: counters all zero.
  ChaosHarness h(chaos::FaultPlan{});  // disabled plan — no injector attached
  h.start();
  constexpr int kEach = 200;
  for (int i = 0; i < kEach; ++i) {
    TxRequest a;
    a.dst = 1;
    a.hdr.type = MsgType::kInvAck;
    a.hdr.chunk = static_cast<uint64_t>(i);
    h.c0->post(std::move(a));
  }
  h.wait_for(kEach);
  const rdma::FabricStats s = h.fabric.stats();
  // Coalescing may pack several messages per wire SEND, so bound rather than
  // pin the SEND count; every message must still arrive exactly once.
  EXPECT_GE(s.sends, 1u);
  EXPECT_LE(s.sends, static_cast<uint64_t>(kEach));
  EXPECT_EQ(s.wc_errors, 0u);
  EXPECT_EQ(s.rnr_events, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.flushed_wrs, 0u);
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
}

}  // namespace
}  // namespace darray::net
