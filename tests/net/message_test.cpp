#include "net/message.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

namespace darray::net {
namespace {

TEST(Message, HeaderIsFixedSize) {
  // The wire format depends on this layout; catch accidental growth.
  EXPECT_EQ(sizeof(MsgHeader), 48u);
  EXPECT_EQ(sizeof(OpFlushEntry), 16u);
}

TEST(Message, TypeNamesUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int t = 1; t < static_cast<int>(MsgType::kMaxMsgType); ++t) {
    const char* name = msg_type_name(static_cast<MsgType>(t));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "missing name for type " << t;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(Message, HeaderRoundTripsThroughBytes) {
  MsgHeader h;
  h.type = MsgType::kOpFlush;
  h.src_node = 7;
  h.array_id = 3;
  h.op_id = 11;
  h.txn_id = 0xabcd;
  h.payload_len = 48;
  h.chunk = 1234567;
  h.addr = 0xdeadbeefcafeull;
  h.rkey = 99;
  h.aux = 1;
  std::byte buf[sizeof(MsgHeader)];
  std::memcpy(buf, &h, sizeof(h));
  MsgHeader out;
  std::memcpy(&out, buf, sizeof(out));
  EXPECT_EQ(out.type, h.type);
  EXPECT_EQ(out.src_node, h.src_node);
  EXPECT_EQ(out.chunk, h.chunk);
  EXPECT_EQ(out.addr, h.addr);
  EXPECT_EQ(out.payload_len, h.payload_len);
}

TEST(Message, TxRequestDataFlag) {
  TxRequest t;
  EXPECT_FALSE(t.has_data());
  std::byte b;
  t.data_src = &b;
  EXPECT_TRUE(t.has_data());
}

TEST(Message, OpFlushEntryPacksOffsetsAndBits) {
  OpFlushEntry e;
  e.offset = 511;
  e.value_bits = 0x1122334455667788ull;
  std::byte buf[sizeof(e)];
  std::memcpy(buf, &e, sizeof(e));
  OpFlushEntry out;
  std::memcpy(&out, buf, sizeof(out));
  EXPECT_EQ(out.offset, 511);
  EXPECT_EQ(out.value_bits, 0x1122334455667788ull);
}

}  // namespace
}  // namespace darray::net
