// Large-message engine: eager/rendezvous protocol selection, zero-copy READ
// pulls, MTU chunking, lease lifecycle, NAK/fallback semantics, and chaos
// behaviour (docs/perf.md, "Large-message engine").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "common/wait.hpp"
#include "net/comm_layer.hpp"

namespace darray::net {
namespace {

// Two nodes' comm layers over one fabric, with configurable fabric latency,
// rendezvous knobs, and an optional fault plan attached before traffic.
struct RndzHarness {
  ClusterConfig cfg;
  chaos::FaultPlan plan;
  std::unique_ptr<chaos::FaultInjector> injector;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::unique_ptr<CommLayer> c0, c1;

  std::mutex mu;
  std::vector<RpcMessage> inbox0, inbox1;
  std::atomic<int> received{0};

  explicit RndzHarness(ClusterConfig base = {}, chaos::FaultPlan p = {},
                       rdma::FabricConfig fc = {})
      : cfg(base), plan(p), fabric(fc) {
    cfg.num_nodes = 2;
    cfg.qp_depth = 64;
    if (plan.enabled()) {
      cfg.fault_plan = &plan;
      injector = std::make_unique<chaos::FaultInjector>(plan);
      fabric.set_fault_injector(injector.get());
    }
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<CommLayer>(0, 2, cfg, d0, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox0.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
    c1 = std::make_unique<CommLayer>(1, 2, cfg, d1, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox1.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
  }

  void start() {
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~RndzHarness() {
    c0->stop();
    c1->stop();
  }

  void wait_for(int n) {
    spin_wait_until(received, [n](int v) { return v >= n; });
  }

  // Sender-side rendezvous completion is asynchronous to the receiver's
  // notification (the FIN rides back separately), so poll for it.
  void wait_rndz_completed(uint64_t n) {
    while (c0->rndz_stats().completed < n) std::this_thread::yield();
  }
};

// Index-dependent pattern so any chunk-offset mixup corrupts comparisons.
void fill_pattern(std::byte* p, size_t n, uint32_t salt) {
  for (size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::byte>((i * 31 + salt * 7 + 3) & 0xFF);
}

::testing::AssertionResult matches_pattern(const std::byte* p, size_t n, uint32_t salt) {
  for (size_t i = 0; i < n; ++i) {
    const auto want = static_cast<std::byte>((i * 31 + salt * 7 + 3) & 0xFF);
    if (p[i] != want)
      return ::testing::AssertionFailure()
             << "byte " << i << ": got " << std::to_integer<int>(p[i]) << " want "
             << std::to_integer<int>(want) << " (salt " << salt << ")";
  }
  return ::testing::AssertionSuccess();
}

TxRequest bulk_req(uint16_t dst, const std::byte* src, uint32_t len, uint32_t lkey,
                   const std::byte* dst_addr, uint32_t rkey, uint64_t seq) {
  TxRequest t;
  t.dst = dst;
  t.hdr.type = MsgType::kReadData;
  t.hdr.chunk = seq;
  t.data_src = src;
  t.data_len = len;
  t.data_lkey = lkey;
  t.data_remote_addr = reinterpret_cast<uint64_t>(dst_addr);
  t.data_rkey = rkey;
  return t;
}

TEST(Rendezvous, LargeTransferPullsZeroCopy) {
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  RndzHarness h(base);
  h.start();
  constexpr uint32_t kLen = 256 * 1024;
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  fill_pattern(src.data(), kLen, 1);

  std::atomic<uint32_t> posted{0};
  TxRequest t = bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey, 0);
  t.posted_flag = &posted;
  h.c0->post(std::move(t));

  h.wait_for(1);
  {
    std::scoped_lock lk(h.mu);
    ASSERT_EQ(h.inbox1.size(), 1u);
    EXPECT_EQ(h.inbox1[0].hdr.type, MsgType::kReadData);
    EXPECT_EQ(h.inbox1[0].hdr.src_node, 0u);
  }
  // The notification is dispatched only after the pull's signaled completion,
  // so the destination is fully populated by the time it arrives.
  EXPECT_TRUE(matches_pattern(dst.data(), kLen, 1));

  h.wait_rndz_completed(1);
  const auto rs = h.c0->rndz_stats();
  EXPECT_EQ(rs.started, 1u);
  EXPECT_EQ(rs.completed, 1u);
  EXPECT_EQ(rs.fallbacks, 0u);
  EXPECT_EQ(rs.bytes, kLen);
  // The FIN released the pinned source.
  EXPECT_EQ(posted.load(), 1u);

  const rdma::FabricStats s = h.fabric.stats();
  EXPECT_EQ(s.writes, 0u) << "rendezvous must not move bulk bytes by eager WRITE";
  EXPECT_GE(s.reads, 1u);
  EXPECT_EQ(s.bytes_rndz, kLen);
  EXPECT_EQ(s.rndz_transfers, 1u);
  EXPECT_GE(s.bytes_read, uint64_t{kLen});

  // Per-peer Tx accounting: bulk bytes are rendezvous, not eager WRITE.
  const auto ptx = h.c0->peer_tx_bytes(1);
  EXPECT_EQ(ptx.rndz_bytes, kLen);
  EXPECT_EQ(ptx.write_bytes, 0u);
  EXPECT_GT(ptx.send_bytes, 0u);  // the kRndzReq control frame
}

TEST(Rendezvous, BelowThresholdStaysEager) {
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  RndzHarness h(base);
  h.start();
  constexpr uint32_t kLen = 32 * 1024 - 1;
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  fill_pattern(src.data(), kLen, 2);

  h.c0->post(bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey, 0));
  h.wait_for(1);
  EXPECT_TRUE(matches_pattern(dst.data(), kLen, 2));
  EXPECT_EQ(h.c0->rndz_stats().started, 0u);
  const rdma::FabricStats s = h.fabric.stats();
  EXPECT_GE(s.writes, 1u);
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.bytes_rndz, 0u);
  const auto ptx = h.c0->peer_tx_bytes(1);
  EXPECT_EQ(ptx.write_bytes, kLen);
  EXPECT_EQ(ptx.rndz_bytes, 0u);
}

TEST(Rendezvous, ExactlyAtThresholdGoesRendezvous) {
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  RndzHarness h(base);
  h.start();
  constexpr uint32_t kLen = 32 * 1024;  // boundary: >= threshold → rendezvous
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  fill_pattern(src.data(), kLen, 3);

  h.c0->post(bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey, 0));
  h.wait_for(1);
  EXPECT_TRUE(matches_pattern(dst.data(), kLen, 3));
  h.wait_rndz_completed(1);
  EXPECT_EQ(h.c0->rndz_stats().started, 1u);
  EXPECT_EQ(h.fabric.stats().bytes_rndz, kLen);
}

TEST(Rendezvous, MtuChunkingHandlesMisalignedLength) {
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  base.rendezvous_mtu_bytes = 16 * 1024;
  RndzHarness h(base);
  h.start();
  constexpr uint32_t kLen = 100'000;  // not a multiple of the MTU
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  fill_pattern(src.data(), kLen, 4);

  h.c0->post(bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey, 0));
  h.wait_for(1);
  EXPECT_TRUE(matches_pattern(dst.data(), kLen, 4));
  const rdma::FabricStats s = h.fabric.stats();
  EXPECT_EQ(s.reads, (kLen + base.rendezvous_mtu_bytes - 1) / base.rendezvous_mtu_bytes);
  EXPECT_EQ(s.bytes_read, uint64_t{kLen});
  EXPECT_EQ(s.bytes_rndz, uint64_t{kLen});
}

TEST(Rendezvous, LeaseExhaustionFallsBackToEager) {
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  base.rendezvous_max_leases = 1;
  rdma::FabricConfig fc;
  fc.latency_ns = 200'000;  // FIN needs ≥2 round trips: leases stay pinned
  RndzHarness h(base, {}, fc);
  h.start();
  constexpr uint32_t kLen = 64 * 1024;
  constexpr int kXfers = 4;
  std::vector<std::vector<std::byte>> src(kXfers), dst(kXfers);
  std::vector<rdma::MemoryRegion> ms(kXfers), md(kXfers);
  for (int i = 0; i < kXfers; ++i) {
    src[i].resize(kLen);
    dst[i].resize(kLen);
    ms[i] = h.d0->reg_mr(src[i].data(), kLen);
    md[i] = h.d1->reg_mr(dst[i].data(), kLen);
    fill_pattern(src[i].data(), kLen, static_cast<uint32_t>(10 + i));
  }
  for (int i = 0; i < kXfers; ++i)
    h.c0->post(bulk_req(1, src[i].data(), kLen, ms[i].lkey, dst[i].data(), md[i].rkey,
                        static_cast<uint64_t>(i)));

  h.wait_for(kXfers);
  for (int i = 0; i < kXfers; ++i)
    EXPECT_TRUE(matches_pattern(dst[i].data(), kLen, static_cast<uint32_t>(10 + i)))
        << "transfer " << i;
  const auto rs = h.c0->rndz_stats();
  // With one lease and a slow FIN, later transfers must have fallen back; no
  // transfer may be lost either way.
  EXPECT_GE(rs.started, 1u);
  EXPECT_GE(rs.fallbacks, 1u);
  EXPECT_EQ(rs.started + rs.fallbacks, static_cast<uint64_t>(kXfers));
  h.wait_rndz_completed(rs.started);
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
}

TEST(Rendezvous, UnpullableDestinationNaksBackToEagerPath) {
  // The receiver cannot translate the advertised destination (bogus rkey):
  // it must NAK, and the sender must re-drive the transfer down the eager
  // path — where the same bogus rkey surfaces through the error handler
  // instead of hanging the lease forever.
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  RndzHarness h(base);
  std::atomic<int> failures{0};
  h.c0->set_error_handler([&](const CommError&) {
    failures.fetch_add(1, std::memory_order_release);
    failures.notify_all();
  });
  h.start();
  constexpr uint32_t kLen = 64 * 1024;
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  h.d1->reg_mr(dst.data(), dst.size());

  h.c0->post(bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), /*rkey=*/0xdead, 0));
  spin_wait_until(failures, [](int v) { return v >= 1; });

  const auto rs = h.c0->rndz_stats();
  EXPECT_EQ(rs.started, 1u);
  EXPECT_EQ(rs.fallbacks, 1u);
  EXPECT_EQ(rs.completed, 0u);
  EXPECT_EQ(h.fabric.stats().bytes_rndz, 0u);
}

// Chaos: WC errors, RNR windows, and latency spikes land mid-rendezvous. The
// pull must re-arm (retried READs) or fall back to eager; either way every
// transfer's bytes arrive intact before its notification, small-message FIFO
// is preserved, and nothing is dropped or duplicated.
void chaos_rendezvous_round_trip(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.05;
  p.p_rnr = 0.03;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 50'000;
  ClusterConfig base;
  base.rendezvous_threshold_bytes = 32 * 1024;
  base.rendezvous_mtu_bytes = 16 * 1024;  // several READ WRs per pull
  RndzHarness h(base, p);
  h.start();

  constexpr uint32_t kLen = 128 * 1024;
  constexpr int kRounds = 20;
  constexpr int kSmallPerRound = 5;
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());

  int seq = 0;
  for (int r = 0; r < kRounds; ++r) {
    fill_pattern(src.data(), kLen, static_cast<uint32_t>(r));
    std::atomic<uint32_t> released{0};
    // Small eager messages interleaved with the bulk transfer: their FIFO
    // order must survive rendezvous traffic sharing the QP.
    for (int i = 0; i < kSmallPerRound; ++i) {
      TxRequest s;
      s.dst = 1;
      s.hdr.type = MsgType::kInvAck;
      s.hdr.chunk = static_cast<uint64_t>(seq++);
      h.c0->post(std::move(s));
    }
    TxRequest t = bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey,
                           static_cast<uint64_t>(1000 + r));
    t.posted_flag = &released;
    h.c0->post(std::move(t));
    h.wait_for((r + 1) * (kSmallPerRound + 1));
    EXPECT_TRUE(matches_pattern(dst.data(), kLen, static_cast<uint32_t>(r)))
        << "round " << r << " seed " << seed;
    // The source stays pinned until FIN (or eager staging on fallback);
    // reusing it next round requires the release flag.
    spin_wait_until(released, [](uint32_t v) { return v != 0; });
  }

  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kRounds * (kSmallPerRound + 1)));
  // Per-type FIFO: the small-message sequence numbers appear in order, and
  // each round's notification arrives exactly once.
  uint64_t next_small = 0;
  uint64_t next_bulk = 1000;
  for (const RpcMessage& m : h.inbox1) {
    if (m.hdr.type == MsgType::kInvAck) {
      EXPECT_EQ(m.hdr.chunk, next_small++) << "seed " << seed;
    } else {
      ASSERT_EQ(m.hdr.type, MsgType::kReadData);
      EXPECT_EQ(m.hdr.chunk, next_bulk++) << "seed " << seed;
    }
  }
  EXPECT_EQ(next_small, static_cast<uint64_t>(kRounds * kSmallPerRound));
  EXPECT_EQ(next_bulk, static_cast<uint64_t>(1000 + kRounds));
  const auto rs = h.c0->rndz_stats();
  // Sequential rounds never exhaust the lease table, so every fallback is a
  // NAK and every started rendezvous has resolved by now (FIN or NAK).
  EXPECT_EQ(rs.started, rs.completed + rs.fallbacks) << "seed " << seed;
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
  EXPECT_EQ(h.c1->dropped_requests(), 0u);
  EXPECT_GT(h.fabric.stats().wc_errors, 0u) << "plan should have injected faults";
}

TEST(RendezvousChaos, Seed1PreservesIntegrityAndFifo) { chaos_rendezvous_round_trip(1); }
TEST(RendezvousChaos, Seed7PreservesIntegrityAndFifo) { chaos_rendezvous_round_trip(7); }
TEST(RendezvousChaos, Seed42PreservesIntegrityAndFifo) { chaos_rendezvous_round_trip(42); }

TEST(Rendezvous, DisabledConfigNeverNegotiates) {
  ClusterConfig base;
  base.rendezvous_enabled = false;
  RndzHarness h(base);
  h.start();
  constexpr uint32_t kLen = 256 * 1024;
  std::vector<std::byte> src(kLen), dst(kLen);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  fill_pattern(src.data(), kLen, 9);
  h.c0->post(bulk_req(1, src.data(), kLen, ms.lkey, dst.data(), md.rkey, 0));
  h.wait_for(1);
  EXPECT_TRUE(matches_pattern(dst.data(), kLen, 9));
  EXPECT_EQ(h.c0->rndz_stats().started, 0u);
  EXPECT_EQ(h.fabric.stats().reads, 0u);
}

}  // namespace
}  // namespace darray::net
