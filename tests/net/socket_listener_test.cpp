// net::SocketListener: the loopback accept loop shared by the telemetry
// server and the serve gateway.
#include "net/socket_listener.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace darray::net {
namespace {

int dial(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(SocketListener, EphemeralPortEchoAndCounts) {
  SocketListener l;
  SocketListener::Options opts;
  opts.port = 0;  // ephemeral
  ASSERT_TRUE(l.start(std::move(opts), [](int fd) {
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) send_all(fd, std::string_view(buf, static_cast<size_t>(n)));
  }));
  ASSERT_TRUE(l.running());
  ASSERT_NE(l.port(), 0);

  for (int i = 0; i < 3; ++i) {
    const int fd = dial(l.port());
    const std::string msg = "ping" + std::to_string(i);
    ASSERT_EQ(::send(fd, msg.data(), msg.size(), 0), static_cast<ssize_t>(msg.size()));
    char buf[64];
    std::string got;
    // The listener closes the connection after the handler returns, so read
    // to EOF.
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      got.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(got, msg);
    ::close(fd);
  }
  EXPECT_EQ(l.connections(), 3u);

  l.stop();
  EXPECT_FALSE(l.running());
}

TEST(SocketListener, StopIsIdempotentAndRestartable) {
  SocketListener l;
  l.stop();  // never started: no-op
  SocketListener::Options opts;
  ASSERT_TRUE(l.start(std::move(opts), [](int) {}));
  const uint16_t p1 = l.port();
  EXPECT_NE(p1, 0);
  // Second start while running is a no-op success on the existing socket.
  SocketListener::Options again;
  EXPECT_TRUE(l.start(std::move(again), [](int) {}));
  EXPECT_EQ(l.port(), p1);
  l.stop();
  l.stop();  // double stop: no-op

  // Restart binds a fresh socket.
  SocketListener::Options opts2;
  ASSERT_TRUE(l.start(std::move(opts2), [](int) {}));
  EXPECT_TRUE(l.running());
  l.stop();
}

}  // namespace
}  // namespace darray::net
