// Small-message coalescing engine (docs/perf.md): batch framing round-trip,
// Tx cutoff behaviour (bytes / frame count / oversize split), the off-config
// matching the uncoalesced engine, and frame-exact replay order under
// injected QP errors.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "common/wait.hpp"
#include "net/comm_layer.hpp"

namespace darray::net {
namespace {

// Two nodes' comm layers over one fabric, configurable, with messages
// optionally queued before start() so the Tx thread's first drain pass sees
// them all at once — that makes batch formation deterministic.
struct Harness {
  ClusterConfig cfg;
  chaos::FaultPlan plan;
  std::unique_ptr<chaos::FaultInjector> injector;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::unique_ptr<CommLayer> c0, c1;

  std::mutex mu;
  std::vector<RpcMessage> inbox0, inbox1;
  std::atomic<int> received{0};

  explicit Harness(ClusterConfig base = {}, chaos::FaultPlan p = {}) : cfg(base), plan(p) {
    cfg.num_nodes = 2;
    if (plan.enabled()) {
      cfg.fault_plan = &plan;
      cfg.qp_depth = 64;
      injector = std::make_unique<chaos::FaultInjector>(plan);
      fabric.set_fault_injector(injector.get());
    }
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<CommLayer>(0, 2, cfg, d0, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox0.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
    c1 = std::make_unique<CommLayer>(1, 2, cfg, d1, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox1.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
  }

  void start() {
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~Harness() {
    c0->stop();
    c1->stop();
  }

  void wait_for(int n) {
    spin_wait_until(received, [n](int v) { return v >= n; });
  }
};

TxRequest inv_ack(uint16_t dst, uint64_t chunk) {
  TxRequest t;
  t.dst = dst;
  t.hdr.type = MsgType::kInvAck;
  t.hdr.chunk = chunk;
  return t;
}

// --- framing round-trip (no comm layer) --------------------------------------

TEST(BatchFraming, PackUnpackRoundTrip) {
  constexpr int kFrames = 5;
  std::vector<std::byte> wire(4096);
  size_t off = sizeof(MsgHeader);  // envelope slot
  std::vector<MsgHeader> hdrs;
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < kFrames; ++i) {
    MsgHeader h;
    h.type = MsgType::kOpFlush;
    h.src_node = 3;
    h.chunk = static_cast<uint64_t>(100 + i);
    std::vector<std::byte> pl(static_cast<size_t>(i) * 17);
    for (size_t j = 0; j < pl.size(); ++j) pl[j] = static_cast<std::byte>(i + j);
    h.payload_len = static_cast<uint32_t>(pl.size());
    off += write_frame(wire.data() + off, h, pl.data(), pl.size());
    hdrs.push_back(h);
    payloads.push_back(std::move(pl));
  }
  const size_t frame_bytes_total = off - sizeof(MsgHeader);
  write_batch_header(wire.data(), 3, kFrames, frame_bytes_total);

  MsgHeader bh;
  std::memcpy(&bh, wire.data(), sizeof(MsgHeader));
  EXPECT_EQ(bh.type, MsgType::kBatch);
  EXPECT_EQ(bh.src_node, 3u);
  EXPECT_EQ(bh.aux, static_cast<uint32_t>(kFrames));
  EXPECT_EQ(bh.payload_len, frame_bytes_total);

  BatchReader r(wire.data() + sizeof(MsgHeader), frame_bytes_total, kFrames);
  MsgHeader fh;
  const std::byte* fp = nullptr;
  int i = 0;
  while (r.next(fh, fp)) {
    ASSERT_LT(i, kFrames);
    EXPECT_EQ(fh.type, hdrs[static_cast<size_t>(i)].type);
    EXPECT_EQ(fh.chunk, hdrs[static_cast<size_t>(i)].chunk);
    ASSERT_EQ(fh.payload_len, payloads[static_cast<size_t>(i)].size());
    EXPECT_EQ(std::memcmp(fp, payloads[static_cast<size_t>(i)].data(), fh.payload_len), 0);
    ++i;
  }
  EXPECT_EQ(i, kFrames);
  EXPECT_TRUE(r.valid());
}

TEST(BatchFraming, DetectsTruncationAndTrailingBytes) {
  std::vector<std::byte> wire(1024);
  MsgHeader h;
  h.type = MsgType::kInvAck;
  h.payload_len = 64;
  std::vector<std::byte> pl(64, std::byte{0xAB});
  const size_t fb = write_frame(wire.data(), h, pl.data(), pl.size());

  // Image cut short of the advertised payload: malformed, not valid.
  {
    BatchReader r(wire.data(), fb - 10, 1);
    MsgHeader fh;
    const std::byte* fp = nullptr;
    EXPECT_FALSE(r.next(fh, fp));
    EXPECT_FALSE(r.valid());
  }
  // Trailing bytes beyond the advertised frame count: parses but not valid.
  {
    BatchReader r(wire.data(), fb + 8, 1);
    MsgHeader fh;
    const std::byte* fp = nullptr;
    EXPECT_TRUE(r.next(fh, fp));
    EXPECT_FALSE(r.next(fh, fp));
    EXPECT_FALSE(r.valid());
  }
  // Exact image: valid.
  {
    BatchReader r(wire.data(), fb, 1);
    MsgHeader fh;
    const std::byte* fp = nullptr;
    EXPECT_TRUE(r.next(fh, fp));
    EXPECT_TRUE(r.valid());
  }
}

// --- Tx engine behaviour -----------------------------------------------------

TEST(Coalesce, BurstSharesWireSends) {
  Harness h;
  constexpr int kMsgs = 100;
  // Queue the burst before the Tx thread exists: its first drain pass sees
  // every message and must pack them (default coalesce_max_frames = 32).
  for (int i = 0; i < kMsgs; ++i) h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
  h.start();
  h.wait_for(kMsgs);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  const rdma::FabricStats s = h.fabric.stats();
  // 100 header-only frames at 32/batch → 4 wire SENDs in one doorbell span.
  EXPECT_LT(s.sends, static_cast<uint64_t>(kMsgs) / 2);
  EXPECT_GE(s.coalesced_frames, static_cast<uint64_t>(kMsgs) - 32);
  EXPECT_GE(s.batched_posts, 1u);
}

TEST(Coalesce, ByteCutoffSplitsAtMaxMsgBytes) {
  ClusterConfig cfg;
  cfg.chunk_elems = 8;  // max_msg_bytes = 48 + 8*16 = 176
  Harness h(cfg);
  ASSERT_EQ(h.c0->max_msg_bytes(), 176u);
  // Header-only frames are 48 B; envelope (48) + 2 frames = 144 ≤ 176, a 3rd
  // would need 192 → batches of exactly 2.
  constexpr int kMsgs = 7;
  for (int i = 0; i < kMsgs; ++i) h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
  h.start();
  h.wait_for(kMsgs);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  const rdma::FabricStats s = h.fabric.stats();
  // [2][2][2][1]: three multi-frame batches plus a bare singleton.
  EXPECT_EQ(s.sends, 4u);
  EXPECT_EQ(s.coalesced_frames, 6u);
}

TEST(Coalesce, OversizeFrameGoesOutAloneInPlainFormat) {
  ClusterConfig cfg;
  cfg.chunk_elems = 8;  // max_msg_bytes = 176
  Harness h(cfg);
  // A max-size payload (128 B → 176 B frame) cannot share a buffer with the
  // envelope; it must ship bare, between its neighbours, in order.
  TxRequest big;
  big.dst = 1;
  big.hdr.type = MsgType::kOpFlush;
  big.hdr.chunk = 1;
  big.payload.resize(128);
  for (size_t i = 0; i < 128; ++i) big.payload[i] = static_cast<std::byte>(i ^ 0x5A);
  const PayloadBuf expect = big.payload;

  h.c0->post(inv_ack(1, 0));
  h.c0->post(std::move(big));
  h.c0->post(inv_ack(1, 2));
  h.start();
  h.wait_for(3);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(h.inbox1[i].hdr.chunk, i);
  EXPECT_EQ(h.inbox1[1].payload, expect);
  const rdma::FabricStats s = h.fabric.stats();
  // Singleton, oversize, singleton — nothing shared a SEND.
  EXPECT_EQ(s.sends, 3u);
  EXPECT_EQ(s.coalesced_frames, 0u);
}

TEST(Coalesce, FrameCountCutoff) {
  ClusterConfig cfg;
  cfg.coalesce_max_frames = 2;
  Harness h(cfg);
  constexpr int kMsgs = 5;
  for (int i = 0; i < kMsgs; ++i) h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
  h.start();
  h.wait_for(kMsgs);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  const rdma::FabricStats s = h.fabric.stats();
  // [2][2][1]
  EXPECT_EQ(s.sends, 3u);
  EXPECT_EQ(s.coalesced_frames, 4u);
}

TEST(Coalesce, DisabledMatchesUncoalescedWireBehaviour) {
  ClusterConfig cfg;
  cfg.coalesce_enabled = false;
  Harness h(cfg);
  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
  h.start();
  h.wait_for(kMsgs);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  const rdma::FabricStats s = h.fabric.stats();
  // Pre-coalescing contract: one wire SEND per message, engine never batches.
  EXPECT_EQ(s.sends, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(s.coalesced_frames, 0u);
  EXPECT_EQ(s.batched_posts, 0u);
}

// --- chaos: QP-error replay preserves frame order ----------------------------

chaos::FaultPlan replay_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.15;  // coalescing shrinks the WR count, so inject harder
  p.p_rnr = 0.05;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 50'000;
  return p;
}

class CoalesceReplay : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoalesceReplay, QpErrorReplayPreservesFrameOrder) {
  ClusterConfig cfg;
  cfg.coalesce_max_frames = 8;  // more wire SENDs → more injected faults
  Harness h(cfg, replay_plan(GetParam()));
  // Half the stream queued before start (guarantees multi-frame batches in
  // the first drain), half posted live (overlaps recovery staging, so frame
  // order must hold both inside a replayed batch and across batches).
  constexpr int kEach = 800;
  for (int i = 0; i < kEach / 2; ++i) {
    h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
    h.c1->post(inv_ack(0, static_cast<uint64_t>(i)));
  }
  h.start();
  for (int i = kEach / 2; i < kEach; ++i) {
    h.c0->post(inv_ack(1, static_cast<uint64_t>(i)));
    h.c1->post(inv_ack(0, static_cast<uint64_t>(i)));
  }
  h.wait_for(2 * kEach);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox0.size(), static_cast<size_t>(kEach));
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kEach));
  for (int i = 0; i < kEach; ++i) {
    EXPECT_EQ(h.inbox0[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  }
  const rdma::FabricStats s = h.fabric.stats();
  EXPECT_GT(s.coalesced_frames, 0u);  // batches actually formed
  EXPECT_GT(s.wc_errors, 0u);        // faults actually fired
  EXPECT_GT(s.retries, 0u);          // and were replayed, not dropped
  EXPECT_EQ(h.c0->dropped_requests(), 0u);
  EXPECT_EQ(h.c1->dropped_requests(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceReplay, ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace darray::net
