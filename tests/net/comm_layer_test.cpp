#include "net/comm_layer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "common/wait.hpp"

namespace darray::net {
namespace {

// Two nodes' comm layers over one fabric, with a thread-safe inbox per node.
struct Harness {
  ClusterConfig cfg;
  rdma::Fabric fabric;
  rdma::Device* d0;
  rdma::Device* d1;
  std::unique_ptr<CommLayer> c0, c1;

  std::mutex mu;
  std::vector<RpcMessage> inbox0, inbox1;
  std::atomic<int> received{0};

  Harness() {
    cfg.num_nodes = 2;
    d0 = fabric.create_device(0);
    d1 = fabric.create_device(1);
    c0 = std::make_unique<CommLayer>(0, 2, cfg, d0, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox0.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
    c1 = std::make_unique<CommLayer>(1, 2, cfg, d1, [this](RpcMessage&& m) {
      std::scoped_lock lk(mu);
      inbox1.push_back(std::move(m));
      received.fetch_add(1, std::memory_order_release);
      received.notify_all();
    });
    auto [qa, qb] = fabric.connect(d0, c0->send_cq(), c0->recv_cq(), d1, c1->send_cq(),
                                   c1->recv_cq());
    c0->set_qp(1, qa);
    c1->set_qp(0, qb);
    c0->start();
    c1->start();
  }

  ~Harness() {
    c0->stop();
    c1->stop();
  }

  void wait_for(int n) {
    spin_wait_until(received, [n](int v) { return v >= n; });
  }
};

TEST(CommLayer, DeliversHeader) {
  Harness h;
  TxRequest t;
  t.dst = 1;
  t.hdr.type = MsgType::kReadReq;
  t.hdr.array_id = 3;
  t.hdr.chunk = 42;
  t.hdr.addr = 0xdeadbeef;
  h.c0->post(std::move(t));
  h.wait_for(1);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), 1u);
  EXPECT_EQ(h.inbox1[0].hdr.type, MsgType::kReadReq);
  EXPECT_EQ(h.inbox1[0].hdr.src_node, 0u);
  EXPECT_EQ(h.inbox1[0].hdr.array_id, 3u);
  EXPECT_EQ(h.inbox1[0].hdr.chunk, 42u);
  EXPECT_EQ(h.inbox1[0].hdr.addr, 0xdeadbeefu);
}

TEST(CommLayer, DeliversPayload) {
  Harness h;
  TxRequest t;
  t.dst = 1;
  t.hdr.type = MsgType::kOpFlush;
  t.payload.resize(48);
  for (size_t i = 0; i < 48; ++i) t.payload[i] = static_cast<std::byte>(i * 3);
  auto expect = t.payload;
  h.c0->post(std::move(t));
  h.wait_for(1);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox1.size(), 1u);
  EXPECT_EQ(h.inbox1[0].payload, expect);
}

TEST(CommLayer, DataWritePrecedesNotification) {
  Harness h;
  // Register a destination buffer at node 1 and a source at node 0.
  std::vector<std::byte> src(256), dst(256);
  rdma::MemoryRegion ms = h.d0->reg_mr(src.data(), src.size());
  rdma::MemoryRegion md = h.d1->reg_mr(dst.data(), dst.size());
  std::memset(src.data(), 0x7E, src.size());

  std::atomic<uint32_t> posted{0};
  TxRequest t;
  t.dst = 1;
  t.hdr.type = MsgType::kReadData;
  t.data_src = src.data();
  t.data_len = 256;
  t.data_lkey = ms.lkey;
  t.data_remote_addr = reinterpret_cast<uint64_t>(dst.data());
  t.data_rkey = md.rkey;
  t.posted_flag = &posted;
  h.c0->post(std::move(t));
  h.wait_for(1);
  // By the time the notification is delivered, the data must be in place and
  // the source buffer released.
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 256), 0);
  EXPECT_EQ(posted.load(), 1u);
}

TEST(CommLayer, ManyMessagesBothDirections) {
  Harness h;
  constexpr int kEach = 500;  // > selective_signal_interval buffers' worth
  for (int i = 0; i < kEach; ++i) {
    TxRequest a;
    a.dst = 1;
    a.hdr.type = MsgType::kInvAck;
    a.hdr.chunk = static_cast<uint64_t>(i);
    h.c0->post(std::move(a));
    TxRequest b;
    b.dst = 0;
    b.hdr.type = MsgType::kInvAck;
    b.hdr.chunk = static_cast<uint64_t>(i);
    h.c1->post(std::move(b));
  }
  h.wait_for(2 * kEach);
  std::scoped_lock lk(h.mu);
  ASSERT_EQ(h.inbox0.size(), static_cast<size_t>(kEach));
  ASSERT_EQ(h.inbox1.size(), static_cast<size_t>(kEach));
  // Per-QP FIFO: chunks must arrive in posting order.
  for (int i = 0; i < kEach; ++i) {
    EXPECT_EQ(h.inbox0[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
    EXPECT_EQ(h.inbox1[static_cast<size_t>(i)].hdr.chunk, static_cast<uint64_t>(i));
  }
}

TEST(CommLayer, MaxMsgBytesCoversChunkFlush) {
  Harness h;
  EXPECT_GE(h.c0->max_msg_bytes(),
            sizeof(MsgHeader) + h.cfg.chunk_elems * sizeof(OpFlushEntry));
}

}  // namespace
}  // namespace darray::net
