// QP state machine semantics: error transitions, flush-with-error of
// outstanding and newly posted WRs, reset/reconnect, and how injected faults
// surface as completions.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "rdma/fabric.hpp"

namespace darray::rdma {
namespace {

struct Wired {
  Fabric fabric;
  Device* da;
  Device* db;
  CompletionQueue a_send, a_recv, b_send, b_recv;
  QueuePair* qa;
  QueuePair* qb;

  explicit Wired(FabricConfig cfg = {}) : fabric(cfg) {
    da = fabric.create_device(0);
    db = fabric.create_device(1);
    auto [x, y] = fabric.connect(da, &a_send, &a_recv, db, &b_send, &b_recv);
    qa = x;
    qb = y;
  }
};

// A fabric whose SENDs fail fast on an empty ring instead of waiting out the
// (100 ms default) RNR absorption budget.
FabricConfig fast_rnr() {
  FabricConfig cfg;
  cfg.rnr_retry_budget_ns = 1'000;
  return cfg;
}

RecvWr recv_into(std::vector<std::byte>& buf, const MemoryRegion& mr, uint64_t id) {
  RecvWr r;
  r.addr = buf.data();
  r.length = static_cast<uint32_t>(buf.size());
  r.lkey = mr.lkey;
  r.wr_id = id;
  return r;
}

TEST(QpState, StartsInRtsAndErrorFlushesPostedRecvs) {
  Wired w;
  EXPECT_EQ(w.qb->state(), QpState::kRts);
  std::vector<std::byte> buf(64);
  MemoryRegion mr = w.db->reg_mr(buf.data(), buf.size());
  for (uint64_t i = 1; i <= 3; ++i) w.qb->post_recv(recv_into(buf, mr, i));

  w.qb->set_error();
  EXPECT_EQ(w.qb->state(), QpState::kError);

  WorkCompletion wcs[8];
  ASSERT_EQ(w.b_recv.poll(wcs), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(wcs[i].status, WcStatus::kFlushError);
    EXPECT_EQ(wcs[i].opcode, Opcode::kRecv);
    EXPECT_EQ(wcs[i].wr_id, i + 1);
  }
  EXPECT_EQ(w.fabric.stats().flushed_wrs, 3u);
  // Flushes are accounted separately from completion errors.
  EXPECT_EQ(w.fabric.stats().wc_errors, 0u);
}

TEST(QpState, PostsOnErroredQpFlushImmediately) {
  Wired w;
  w.qa->set_error();

  std::vector<std::byte> src(32);
  MemoryRegion ms = w.da->reg_mr(src.data(), src.size());
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 32, ms.lkey};
  wr.wr_id = 9;
  wr.signaled = false;  // errors are signaled regardless
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kFlushError);
  EXPECT_EQ(wc.wr_id, 9u);
  // Nothing was transferred.
  EXPECT_EQ(w.fabric.stats().sends, 0u);

  std::vector<std::byte> rbuf(32);
  MemoryRegion mr = w.da->reg_mr(rbuf.data(), rbuf.size());
  w.qa->post_recv(recv_into(rbuf, mr, 10));
  ASSERT_EQ(w.a_recv.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kFlushError);
  EXPECT_EQ(wc.wr_id, 10u);
}

TEST(QpState, ResetRestoresTraffic) {
  Wired w;
  w.qa->set_error();
  EXPECT_TRUE(w.qa->reset());
  EXPECT_FALSE(w.qa->reset());  // already RTS
  EXPECT_EQ(w.qa->state(), QpState::kRts);

  // Post-reset the QP carries traffic again.
  std::vector<std::byte> src(16), dst(16);
  MemoryRegion ms = w.da->reg_mr(src.data(), 16);
  MemoryRegion md = w.db->reg_mr(dst.data(), 16);
  std::memset(src.data(), 0x5C, 16);
  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {src.data(), 16, ms.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = md.rkey;
  wr.wr_id = 1;
  ASSERT_TRUE(w.qa->post_send(wr));
  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), 16), 0);
}

TEST(QpState, BadRkeyErrorsTheQpAndFlushesFollowers) {
  Wired w;
  std::vector<std::byte> src(64), dst(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 64);
  (void)w.db->reg_mr(dst.data(), 64);

  SendWr bad;
  bad.opcode = Opcode::kWrite;
  bad.sge = {src.data(), 64, ms.lkey};
  bad.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  bad.rkey = 0xBAD;
  bad.wr_id = 1;
  ASSERT_TRUE(w.qa->post_send(bad));
  EXPECT_EQ(w.qa->state(), QpState::kError);

  // The next WR — perfectly valid — flushes instead of overtaking.
  SendWr good = bad;
  good.rkey = 0;  // never executed anyway
  good.wr_id = 2;
  ASSERT_TRUE(w.qa->post_send(good));

  WorkCompletion wcs[4];
  ASSERT_EQ(w.a_send.poll(wcs), 2u);
  EXPECT_EQ(wcs[0].wr_id, 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(wcs[1].wr_id, 2u);
  EXPECT_EQ(wcs[1].status, WcStatus::kFlushError);

  const FabricStats s = w.fabric.stats();
  EXPECT_EQ(s.wc_errors, 1u);
  EXPECT_EQ(s.flushed_wrs, 1u);
  EXPECT_EQ(s.writes, 0u);
}

TEST(QpState, RnrExhaustionErrorsTheQp) {
  Wired w(fast_rnr());
  std::vector<std::byte> src(32);
  MemoryRegion ms = w.da->reg_mr(src.data(), 32);
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 32, ms.lkey};
  wr.wr_id = 1;
  ASSERT_TRUE(w.qa->post_send(wr));  // no RECV posted at b — RNR

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kRnrError);
  EXPECT_EQ(w.qa->state(), QpState::kError);
  const FabricStats s = w.fabric.stats();
  EXPECT_EQ(s.rnr_events, 1u);
  EXPECT_EQ(s.wc_errors, 1u);  // RNR is a completion error too
}

TEST(QpState, RnrAbsorptionWaitsForLateRecv) {
  Wired w;  // default 100 ms budget
  std::vector<std::byte> src(32), dst(32);
  MemoryRegion ms = w.da->reg_mr(src.data(), 32);
  MemoryRegion md = w.db->reg_mr(dst.data(), 32);
  std::memset(src.data(), 0x11, 32);

  // Re-arm the ring from another thread while the SEND is waiting out its
  // RNR-NAK budget.
  std::thread rearm([&] { w.qb->post_recv(recv_into(dst, md, 77)); });
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sge = {src.data(), 32, ms.lkey};
  wr.wr_id = 1;
  wr.signaled = true;
  ASSERT_TRUE(w.qa->post_send(wr));
  rearm.join();

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(w.qa->state(), QpState::kRts);
  ASSERT_EQ(w.b_recv.poll({&wc, 1}), 1u);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 32), 0);
}

TEST(QpState, InjectedErrorCompletesWithoutTransfer) {
  chaos::FaultPlan plan;
  plan.p_wc_error = 1.0;  // every WR fails
  chaos::FaultInjector inj(plan);
  Wired w;
  w.fabric.set_fault_injector(&inj);

  std::vector<std::byte> src(64), dst(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 64);
  MemoryRegion md = w.db->reg_mr(dst.data(), 64);
  std::memset(src.data(), 0x3D, 64);

  SendWr wr;
  wr.opcode = Opcode::kWrite;
  wr.sge = {src.data(), 64, ms.lkey};
  wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
  wr.rkey = md.rkey;
  wr.wr_id = 1;
  wr.signaled = false;
  ASSERT_TRUE(w.qa->post_send(wr));

  WorkCompletion wc;
  ASSERT_EQ(w.a_send.poll({&wc, 1}), 1u);
  EXPECT_NE(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(w.qa->state(), QpState::kError);
  // The injected error preceded the transfer: destination untouched.
  std::vector<std::byte> zeros(64);
  EXPECT_EQ(std::memcmp(dst.data(), zeros.data(), 64), 0);
  EXPECT_EQ(w.fabric.stats().writes, 0u);
  EXPECT_EQ(w.fabric.stats().wc_errors, 1u);
  EXPECT_EQ(inj.counters().wc_errors, 1u);
}

TEST(QpState, NoInjectorMeansZeroFaultCounters) {
  Wired w;
  std::vector<std::byte> src(64), dst(64);
  MemoryRegion ms = w.da->reg_mr(src.data(), 64);
  MemoryRegion md = w.db->reg_mr(dst.data(), 64);
  for (uint64_t i = 0; i < 50; ++i) {
    SendWr wr;
    wr.opcode = Opcode::kWrite;
    wr.sge = {src.data(), 64, ms.lkey};
    wr.remote_addr = reinterpret_cast<uint64_t>(dst.data());
    wr.rkey = md.rkey;
    wr.wr_id = i;
    ASSERT_TRUE(w.qa->post_send(wr));
  }
  const FabricStats s = w.fabric.stats();
  EXPECT_EQ(s.writes, 50u);
  EXPECT_EQ(s.wc_errors, 0u);
  EXPECT_EQ(s.rnr_events, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.flushed_wrs, 0u);
  EXPECT_EQ(s.total_faults(), 0u);
}

}  // namespace
}  // namespace darray::rdma
