// Chaos soak: full darray / kvs workloads running over a fabric that injects
// errors, RNR windows, latency spikes, and node outages from a seeded plan.
// The workloads must converge to exactly the fault-free result — transparent
// recovery, no lost or reordered protocol messages — across several seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "core/darray.hpp"
#include "kvs/kvs.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

chaos::FaultPlan soak_plan(uint64_t seed) {
  chaos::FaultPlan p;
  p.seed = seed;
  p.p_wc_error = 0.02;
  p.p_rnr = 0.02;
  p.rnr_window_ns = 100'000;
  p.p_delay = 0.05;
  p.delay_min_ns = 5'000;
  p.delay_max_ns = 100'000;
  // A 2 ms pause of node 1 early on, and a 1 ms blackhole of node 0 a little
  // later (short enough that the retry budget rides it out).
  p.windows.push_back({1, 2'000'000, 2'000'000, false});
  p.windows.push_back({0, 6'000'000, 1'000'000, true});
  return p;
}

// Mixed read/write workload: element i is written only by node (i % nodes),
// in rounds, then read back by every node. Returns the fabric stats so the
// caller can check fault/recovery activity.
rdma::FabricStats run_darray_soak(const chaos::FaultPlan* plan) {
  rt::ClusterConfig cfg = small_cfg(3);
  cfg.fault_plan = plan;
  rt::Cluster cluster(cfg);
  const uint64_t n = 1536;
  auto a = DArray<uint64_t>::create(cluster, n);
  constexpr uint64_t kRounds = 4;
  for (uint64_t r = 1; r <= kRounds; ++r) {
    run_on_nodes(cluster, [&](rt::NodeId node) {
      for (uint64_t i = node; i < n; i += cluster.num_nodes())
        a.set(i, i * 7 + r);
    });
  }
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < n; ++i)
      ASSERT_EQ(a.get(i), i * 7 + kRounds) << "element " << i;
  });
  EXPECT_EQ(cluster.comm_error_count(), 0u);
  return cluster.fabric().stats();
}

TEST(ChaosSoak, DArrayConvergesUnderSeededFaults) {
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const chaos::FaultPlan plan = soak_plan(seed);
    const rdma::FabricStats s = run_darray_soak(&plan);
    // The plan must actually have bitten: injected faults observed and
    // recovered from, not a silently clean run.
    EXPECT_GT(s.total_faults(), 0u);
    EXPECT_GT(s.retries, 0u);
  }
}

TEST(ChaosSoak, DArrayCleanRunInjectsNothing) {
  const rdma::FabricStats s = run_darray_soak(nullptr);
  EXPECT_EQ(s.wc_errors, 0u);
  EXPECT_EQ(s.rnr_events, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.flushed_wrs, 0u);
}

TEST(ChaosSoak, KvsConvergesUnderSeededFaults) {
  for (const uint64_t seed : {1ull, 7ull, 42ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const chaos::FaultPlan plan = soak_plan(seed);
    rt::ClusterConfig cfg = small_cfg(2);
    cfg.fault_plan = &plan;
    rt::Cluster cluster(cfg);
    kvs::KvsConfig kc;
    kc.n_main_buckets = 64;
    kc.n_overflow_buckets = 32;
    kc.byte_capacity = 4 << 20;
    auto store = kvs::DKvs::create(cluster, kc);

    constexpr int kKeys = 150;
    run_on_nodes(cluster, [&](rt::NodeId node) {
      for (int i = static_cast<int>(node); i < kKeys;
           i += static_cast<int>(cluster.num_nodes())) {
        ASSERT_TRUE(store.put("key-" + std::to_string(i), "val-" + std::to_string(i * 3)));
      }
    });
    run_on_nodes(cluster, [&](rt::NodeId) {
      for (int i = 0; i < kKeys; ++i) {
        auto v = store.get("key-" + std::to_string(i));
        ASSERT_TRUE(v.has_value()) << "key " << i;
        EXPECT_EQ(*v, "val-" + std::to_string(i * 3));
      }
    });
    EXPECT_EQ(cluster.comm_error_count(), 0u);
    EXPECT_GT(cluster.fabric().stats().total_faults(), 0u);
  }
}

}  // namespace
}  // namespace darray
