#include "chaos/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace darray::chaos {
namespace {

using rdma::Opcode;
using rdma::WcStatus;

// Replay a fixed WR schedule against an injector and record the decisions.
std::vector<FaultDecision> replay(FaultInjector& inj, uint32_t qp, size_t n,
                                  uint64_t start_ns = 1'000, uint64_t step_ns = 500) {
  std::vector<FaultDecision> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Opcode op = (i % 3 == 0) ? Opcode::kSend : Opcode::kWrite;
    out.push_back(inj.decide(qp, 0, 1, op, start_ns + i * step_ns));
  }
  return out;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.p_wc_error = 0.1;
  plan.p_rnr = 0.05;
  plan.p_delay = 0.2;
  plan.delay_min_ns = 100;
  plan.delay_max_ns = 5'000;

  FaultInjector a(plan), b(plan);
  const auto da = replay(a, 3, 2'000);
  const auto db = replay(b, 3, 2'000);
  ASSERT_EQ(da.size(), db.size());
  size_t faults = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].status, db[i].status) << "at WR " << i;
    EXPECT_EQ(da[i].extra_latency_ns, db[i].extra_latency_ns) << "at WR " << i;
    if (da[i].faulted()) ++faults;
  }
  // With these probabilities a 2000-WR schedule faults with near certainty.
  EXPECT_GT(faults, 0u);
  EXPECT_EQ(a.counters().total(), b.counters().total());
}

TEST(FaultInjector, QpStreamsAreIndependent) {
  FaultPlan plan;
  plan.seed = 7;
  plan.p_wc_error = 0.1;
  FaultInjector a(plan), b(plan);
  // Interleaving traffic on another QP must not perturb QP 5's sequence.
  const auto da = replay(a, 5, 500);
  for (size_t i = 0; i < 500; ++i) (void)b.decide(9, 2, 3, Opcode::kWrite, 1'000 + i);
  const auto db = replay(b, 5, 500);
  for (size_t i = 0; i < da.size(); ++i) EXPECT_EQ(da[i].status, db[i].status);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.p_wc_error = p2.p_wc_error = 0.1;
  FaultInjector a(p1), b(p2);
  const auto da = replay(a, 0, 1'000);
  const auto db = replay(b, 0, 1'000);
  size_t differing = 0;
  for (size_t i = 0; i < da.size(); ++i)
    if (da[i].status != db[i].status) ++differing;
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, DisabledPlanInjectsNothing) {
  FaultPlan plan;  // all zero
  EXPECT_FALSE(plan.enabled());
  FaultInjector inj(plan);
  const auto d = replay(inj, 0, 1'000);
  for (const auto& dec : d) {
    EXPECT_EQ(dec.status, WcStatus::kSuccess);
    EXPECT_EQ(dec.extra_latency_ns, 0u);
  }
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(FaultInjector, RnrWindowRejectsSendsUntilItCloses) {
  FaultPlan plan;
  plan.p_rnr = 1.0;  // first SEND opens a window deterministically
  plan.rnr_window_ns = 10'000;
  FaultInjector inj(plan);

  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kSend, 1'000).status, WcStatus::kRnrError);
  // Inside the window: rejected without a fresh draw.
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kSend, 5'000).status, WcStatus::kRnrError);
  // One-sided traffic is not receiver-limited.
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kWrite, 6'000).status, WcStatus::kSuccess);
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kRead, 7'000).status, WcStatus::kSuccess);
  // Another QP is unaffected.
  EXPECT_EQ(inj.decide(1, 1, 0, Opcode::kWrite, 8'000).status, WcStatus::kSuccess);
  EXPECT_EQ(inj.counters().rnr_rejections, 2u);
}

TEST(FaultInjector, BlackholeWindowDropsTraffic) {
  FaultPlan plan;
  FaultWindow w;
  w.node = 1;
  w.start_ns = 1'000;
  w.duration_ns = 10'000;
  w.blackhole = true;
  plan.windows.push_back(w);
  ASSERT_TRUE(plan.enabled());
  FaultInjector inj(plan);

  const uint64_t epoch = 50'000;  // first decide() pins the epoch
  // Before the window opens.
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kWrite, epoch).status, WcStatus::kSuccess);
  // Inside: traffic from or toward node 1 is dropped with kRetryExceeded.
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kWrite, epoch + 2'000).status,
            WcStatus::kRetryExceeded);
  EXPECT_EQ(inj.decide(1, 1, 0, Opcode::kSend, epoch + 2'000).status,
            WcStatus::kRetryExceeded);
  // Unrelated nodes are untouched.
  EXPECT_EQ(inj.decide(2, 2, 3, Opcode::kWrite, epoch + 2'000).status,
            WcStatus::kSuccess);
  // After the window closes.
  EXPECT_EQ(inj.decide(0, 0, 1, Opcode::kWrite, epoch + 20'000).status,
            WcStatus::kSuccess);
  EXPECT_EQ(inj.counters().blackholed, 2u);
}

TEST(FaultInjector, PauseWindowDelaysUntilItCloses) {
  FaultPlan plan;
  FaultWindow w;
  w.node = 0;
  w.start_ns = 0;
  w.duration_ns = 10'000;
  w.blackhole = false;
  plan.windows.push_back(w);
  FaultInjector inj(plan);

  // Pin the epoch with traffic between unrelated nodes.
  const uint64_t epoch = 1'000;
  EXPECT_EQ(inj.decide(5, 2, 3, Opcode::kWrite, epoch).status, WcStatus::kSuccess);
  const FaultDecision d = inj.decide(0, 0, 1, Opcode::kWrite, epoch + 4'000);
  EXPECT_EQ(d.status, WcStatus::kSuccess);
  // Held until the window closes: 10'000 - 4'000 elapsed.
  EXPECT_EQ(d.extra_latency_ns, 6'000u);
  EXPECT_EQ(inj.counters().paused, 1u);
}

TEST(FaultInjector, DelaysFallWithinConfiguredRange) {
  FaultPlan plan;
  plan.p_delay = 1.0;
  plan.delay_min_ns = 2'000;
  plan.delay_max_ns = 9'000;
  FaultInjector inj(plan);
  for (int i = 0; i < 200; ++i) {
    const FaultDecision d = inj.decide(0, 0, 1, Opcode::kWrite, 1'000 + i);
    EXPECT_EQ(d.status, WcStatus::kSuccess);
    EXPECT_GE(d.extra_latency_ns, 2'000u);
    EXPECT_LE(d.extra_latency_ns, 9'000u);
  }
  EXPECT_EQ(inj.counters().delays, 200u);
}

}  // namespace
}  // namespace darray::chaos
