// Shared helpers for cluster-based tests: small configurations sized for a
// one-core host and a helper that runs one bound application thread per node.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "runtime/cluster.hpp"

namespace darray::testing {

inline rt::ClusterConfig small_cfg(uint32_t nodes, uint32_t chunk_elems = 64,
                                   uint32_t cachelines = 64) {
  rt::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.chunk_elems = chunk_elems;
  cfg.cachelines_per_region = cachelines;
  cfg.qp_depth = 64;
  return cfg;
}

// Run fn(node) on one application thread per node, in parallel, and join.
inline void run_on_nodes(rt::Cluster& cluster,
                         const std::function<void(rt::NodeId)>& fn) {
  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    ts.emplace_back([&cluster, &fn, n] {
      bind_thread(cluster, n);
      fn(n);
    });
  }
  for (auto& t : ts) t.join();
}

// Run fn(node, thread) with `threads` application threads per node.
inline void run_on_nodes_mt(rt::Cluster& cluster, uint32_t threads,
                            const std::function<void(rt::NodeId, uint32_t)>& fn) {
  std::vector<std::thread> ts;
  for (rt::NodeId n = 0; n < cluster.num_nodes(); ++n) {
    for (uint32_t t = 0; t < threads; ++t) {
      ts.emplace_back([&cluster, &fn, n, t] {
        bind_thread(cluster, n);
        fn(n, t);
      });
    }
  }
  for (auto& t : ts) t.join();
}

}  // namespace darray::testing
