#include "baselines/bcl/bcl_array.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace darray::bcl {
namespace {

using darray::testing::run_on_nodes;
using darray::testing::small_cfg;

TEST(BclArray, LocalSetGet) {
  rt::Cluster cluster(small_cfg(1));
  auto a = BclArray<uint64_t>::create(cluster, 100);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < 100; ++i) a.set(i, i * 2);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(a.get(i), i * 2);
}

TEST(BclArray, RemoteRoundTrip) {
  rt::Cluster cluster(small_cfg(2));
  auto a = BclArray<uint64_t>::create(cluster, 100);
  std::thread w([&] {
    bind_thread(cluster, 0);
    a.set(75, 4242);  // element homed at node 1
  });
  w.join();
  std::thread r([&] {
    bind_thread(cluster, 1);
    EXPECT_EQ(a.get(75), 4242u);  // local at node 1
    a.set(10, 7);                 // remote write back to node 0
  });
  r.join();
  bind_thread(cluster, 0);
  EXPECT_EQ(a.get(10), 7u);
}

TEST(BclArray, EveryAccessIsARoundTrip) {
  // The defining BCL property: remote accesses are never cached.
  rt::Cluster cluster(small_cfg(2));
  auto a = BclArray<uint64_t>::create(cluster, 100);
  bind_thread(cluster, 0);
  cluster.fabric().reset_stats();
  const uint64_t remote_idx = 99;
  for (int i = 0; i < 10; ++i) (void)a.get(remote_idx);
  const rdma::FabricStats s = cluster.fabric().stats();
  EXPECT_EQ(s.reads, 10u) << "each remote get must be one RDMA READ";
  for (int i = 0; i < 5; ++i) a.set(remote_idx, 1);
  EXPECT_EQ(cluster.fabric().stats().writes, 5u);
}

TEST(BclArray, LocalAccessTouchesNoNetwork) {
  rt::Cluster cluster(small_cfg(2));
  auto a = BclArray<uint64_t>::create(cluster, 100);
  bind_thread(cluster, 0);
  cluster.fabric().reset_stats();
  for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.set(i, i);
  EXPECT_EQ(cluster.fabric().stats().total_messages(), 0u);
}

TEST(BclArray, ConcurrentNodesDisjointRanges) {
  rt::Cluster cluster(small_cfg(3));
  auto a = BclArray<uint64_t>::create(cluster, 300);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    // Each node writes the next node's range remotely.
    const rt::NodeId peer = (n + 1) % 3;
    for (uint64_t i = a.local_begin(peer); i < a.local_end(peer); ++i) a.set(i, i + 1);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.get(i), i + 1);
  });
}

}  // namespace
}  // namespace darray::bcl
