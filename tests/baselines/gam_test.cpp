#include "baselines/gam/gam_array.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace darray::gam {
namespace {

using darray::testing::run_on_nodes;
using darray::testing::small_cfg;

TEST(GamArray, SetGetAcrossNodes) {
  rt::Cluster cluster(small_cfg(2));
  auto a = GamArray<uint64_t>::create(cluster, 200);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i) a.set(i, i * 3);
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.get(i), i * 3);
  });
}

TEST(GamArray, AtomicRmwIsAtomicAcrossNodes) {
  // GAM's exclusive-ownership atomic: concurrent increments from every node
  // must all land (this is the baseline the Operate interface beats).
  rt::Cluster cluster(small_cfg(3));
  auto a = GamArray<uint64_t>::create(cluster, 192);
  constexpr int kPerNode = 100;
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < kPerNode; ++i)
      a.atomic_rmw(5, +[](uint64_t x, uint64_t d) { return x + d; }, uint64_t{1});
  });
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(5), 3u * kPerNode); });
}

TEST(GamArray, AtomicRmwIsAtomicAcrossThreads) {
  rt::Cluster cluster(small_cfg(2));
  auto a = GamArray<uint64_t>::create(cluster, 128);
  darray::testing::run_on_nodes_mt(cluster, 3, [&](rt::NodeId, uint32_t) {
    for (int i = 0; i < 50; ++i)
      a.atomic_rmw(0, +[](uint64_t x, uint64_t d) { return x + d; }, uint64_t{1});
  });
  bind_thread(cluster, 0);
  EXPECT_EQ(a.get(0), 2u * 3 * 50);
}

TEST(GamArray, BulkTransfers) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/32));
  auto a = GamArray<uint8_t>::create(cluster, 512);
  std::vector<uint8_t> src(200);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  std::thread w([&] {
    bind_thread(cluster, 1);
    a.write_bulk(100, src.data(), src.size());  // spans several chunks
  });
  w.join();
  std::thread r([&] {
    bind_thread(cluster, 0);
    std::vector<uint8_t> dst(200);
    a.read_bulk(100, dst.data(), dst.size());
    EXPECT_EQ(dst, src);
  });
  r.join();
}

TEST(GamArray, LocksWork) {
  rt::Cluster cluster(small_cfg(2));
  auto a = GamArray<uint64_t>::create(cluster, 128);
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < 40; ++i) {
      a.wlock(9);
      a.set(9, a.get(9) + 1);
      a.unlock(9);
    }
  });
  bind_thread(cluster, 0);
  EXPECT_EQ(a.get(9), 80u);
}

}  // namespace
}  // namespace darray::gam
