// ChunkCursor: chunked iteration with double buffering and prefetch overlap.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "compute/chunk_cursor.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using compute::ChunkCursor;
using compute::Options;
using testing::run_on_nodes;
using testing::small_cfg;

uint64_t load(const std::atomic<uint64_t>& c) { return c.load(std::memory_order_relaxed); }

TEST(ComputeCursor, VisitsEveryElementOnce) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 500);  // not a multiple of 64
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < a.size(); ++i) a.set(i, i + 1);
  for (uint32_t buf : {0u, 16u, 37u, 64u, 100u, 1024u}) {
    Options opt;
    opt.chunk_elems = buf;
    ChunkCursor<uint64_t> cur(a, 0, a.size(), opt);
    ChunkCursor<uint64_t>::View v;
    uint64_t expect = 0;
    while (cur.next(v)) {
      EXPECT_EQ(v.first, expect) << "buf=" << buf;
      for (uint64_t i = 0; i < v.count; ++i) EXPECT_EQ(v.data[i], v.first + i + 1);
      expect += v.count;
    }
    EXPECT_EQ(expect, a.size()) << "buf=" << buf;
    EXPECT_FALSE(cur.next(v));
  }
}

TEST(ComputeCursor, PreviousViewSurvivesOneAdvance) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < a.size(); ++i) a.set(i, i);
  ChunkCursor<uint64_t> cur(a, 0, a.size(), {});
  ChunkCursor<uint64_t>::View prev, v;
  ASSERT_TRUE(cur.next(prev));
  while (cur.next(v)) {
    // The double buffer keeps the previous view's storage intact until the
    // *next* advance — the property comm/compute overlap relies on.
    for (uint64_t i = 0; i < prev.count; ++i) EXPECT_EQ(prev.data[i], prev.first + i);
    prev = v;
  }
}

TEST(ComputeCursor, SubExtentRespectsBounds) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 512);
  bind_thread(cluster, 0);
  for (uint64_t i = 0; i < a.size(); ++i) a.set(i, i * 2);
  Options opt;
  opt.chunk_elems = 50;
  ChunkCursor<uint64_t> cur(a, 33, 431, opt);
  ChunkCursor<uint64_t>::View v;
  uint64_t pos = 33, total = 0;
  while (cur.next(v)) {
    EXPECT_EQ(v.first, pos);
    for (uint64_t i = 0; i < v.count; ++i) EXPECT_EQ(v.data[i], (v.first + i) * 2);
    pos += v.count;
    total += v.count;
  }
  EXPECT_EQ(total, 431u - 33u);
}

TEST(ComputeCursor, CountsChunksAndPrefetchOutcomes) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 1024);
  obs::ComputeCounters& c = obs::compute_counters();
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < a.local_begin(1); ++i) a.set(i, i);
  });
  const uint64_t chunks0 = load(c.chunks);
  const uint64_t hits0 = load(c.prefetch_hits);
  const uint64_t miss0 = load(c.prefetch_misses);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    // Stream node 0's half: every view covers remote chunks, so each one
    // lands in either the hit or the miss counter.
    ChunkCursor<uint64_t> cur(a, 0, a.local_begin(1), {});
    ChunkCursor<uint64_t>::View v;
    uint64_t views = 0;
    while (cur.next(v)) ++views;
    EXPECT_EQ(load(c.chunks) - chunks0, views);
    EXPECT_EQ((load(c.prefetch_hits) - hits0) + (load(c.prefetch_misses) - miss0), views);
  });
  // A home-only walk bumps chunks but neither prefetch counter.
  const uint64_t chunks1 = load(c.chunks);
  const uint64_t hits1 = load(c.prefetch_hits);
  const uint64_t miss1 = load(c.prefetch_misses);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    ChunkCursor<uint64_t> cur(a, 0, a.local_begin(1), {});
    ChunkCursor<uint64_t>::View v;
    while (cur.next(v)) {
    }
    EXPECT_GT(load(c.chunks), chunks1);
    EXPECT_EQ(load(c.prefetch_hits), hits1);
    EXPECT_EQ(load(c.prefetch_misses), miss1);
  });
}

TEST(ComputeCursor, OverlapPrefetchesAhead) {
  // With overlap on, a second pass over a remote extent should be all hits;
  // and even the first pass should record hits once the pipeline fills
  // (depth 4 read-ahead outruns a kernel that does no work). We only assert
  // the weaker, scheduling-independent property: the second pass is clean.
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 2048);
  obs::ComputeCounters& c = obs::compute_counters();
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < a.local_begin(1); ++i) a.set(i, i);
  });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    ChunkCursor<uint64_t> warm(a, 0, a.local_begin(1), {});
    ChunkCursor<uint64_t>::View v;
    while (warm.next(v)) {
    }
    const uint64_t miss0 = load(c.prefetch_misses);
    const uint64_t hits0 = load(c.prefetch_hits);
    ChunkCursor<uint64_t> again(a, 0, a.local_begin(1), {});
    uint64_t views = 0;
    while (again.next(v)) ++views;
    EXPECT_EQ(load(c.prefetch_misses), miss0);
    EXPECT_EQ(load(c.prefetch_hits) - hits0, views);
  });
}

}  // namespace
}  // namespace darray
