// Deterministic reduction mode: dot must be bitwise identical across node
// counts, partitions, and repeated runs. Per-array-chunk partials are computed
// by pairwise summation and folded at the root in a fixed chunk-indexed
// order, so the association never depends on how the array is distributed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "compute/collectives.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using compute::Options;
using testing::run_on_nodes;
using testing::small_cfg;

uint64_t bits_of(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(d));
  return b;
}

// Ill-conditioned values: magnitudes spanning ~2^40, signs alternating in a
// pattern coprime to the chunk size, so any change of summation order is
// overwhelmingly likely to change the low mantissa bits.
double val(uint64_t seed, uint64_t i) {
  uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ull + seed * 0xd1b54a32d192ed03ull;
  h ^= h >> 29;
  const double m = static_cast<double>(h % 100003) / 100003.0 + 0.5;
  const int e = static_cast<int>(h >> 32) % 41 - 20;
  return ((i % 3) ? m : -m) * std::ldexp(1.0, e);
}

uint64_t det_dot_bits(uint32_t nodes, uint64_t seed, uint64_t n_elems,
                      std::span<const uint64_t> part = {}) {
  rt::Cluster cluster(small_cfg(nodes));
  auto x = DArray<double>::create(cluster, n_elems);
  auto y = DArray<double>::create(cluster, n_elems, part);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    std::vector<double> vx(n_elems), vy(n_elems);
    for (uint64_t i = 0; i < n_elems; ++i) {
      vx[i] = val(seed, i);
      vy[i] = val(seed + 1, i);
    }
    x.set_range(0, std::span<const double>(vx));
    y.set_range(0, std::span<const double>(vy));
  });
  std::vector<uint64_t> bits(nodes, 0);
  Options opt;
  opt.deterministic = true;
  run_on_nodes(cluster,
               [&](rt::NodeId n) { bits[n] = bits_of(compute::dot(x, y, opt)); });
  // Every node got the identical broadcast total.
  for (uint32_t n = 1; n < nodes; ++n) EXPECT_EQ(bits[n], bits[0]);
  return bits[0];
}

TEST(ComputeDeterministic, BitwiseIdenticalAcrossNodeCounts) {
  const uint64_t n_elems = 1000;  // misaligned: 15 full chunks + a 40-elem tail
  for (uint64_t seed : {1ull, 42ull, 1234567ull}) {
    const uint64_t ref = det_dot_bits(1, seed, n_elems);
    for (uint32_t nodes : {2u, 3u, 4u, 5u}) {
      EXPECT_EQ(det_dot_bits(nodes, seed, n_elems), ref)
          << "nodes=" << nodes << " seed=" << seed;
    }
  }
}

TEST(ComputeDeterministic, BitwiseIdenticalAcrossPartitions) {
  const uint64_t seed = 7;
  const uint64_t n_elems = 512;
  const uint64_t ref = det_dot_bits(2, seed, n_elems);
  const std::vector<uint64_t> skew = {0, 64};  // node 1 owns 7 of 8 chunks
  EXPECT_EQ(det_dot_bits(2, seed, n_elems, skew), ref);
}

TEST(ComputeDeterministic, FragmentedPartialsReassemble) {
  // 130 chunks on 2 nodes: node 1's 65 chunk partials exceed the 64-entry
  // message budget and travel as two kReducePart fragments.
  const uint64_t n_elems = 130 * 64;
  EXPECT_EQ(det_dot_bits(2, 11, n_elems), det_dot_bits(1, 11, n_elems));
}

TEST(ComputeDeterministic, RepeatedRunsAgree) {
  const uint64_t a = det_dot_bits(3, 99, 777);
  const uint64_t b = det_dot_bits(3, 99, 777);
  EXPECT_EQ(a, b);
}

TEST(ComputeDeterministic, NonDeterministicModeStillAccurate) {
  // Sanity check that both modes agree to rounding error on the same data.
  const uint64_t n_elems = 640;
  rt::Cluster cluster(small_cfg(2));
  auto x = DArray<double>::create(cluster, n_elems);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < n_elems; ++i) x.set(i, val(3, i));
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    Options det;
    det.deterministic = true;
    const double d0 = compute::dot(x, x);
    const double d1 = compute::dot(x, x, det);
    EXPECT_NEAR(d0, d1, std::abs(d0) * 1e-9);
  });
}

}  // namespace
}  // namespace darray
