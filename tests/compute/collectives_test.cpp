// Chunked collectives: dot/norm2/axpy/scale/copy/gemv against serial
// references, across node counts (including a non-power-of-two tree) and
// operand partitions that force remote streaming.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "compute/collectives.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using compute::Options;
using testing::run_on_nodes;
using testing::small_cfg;

// Deterministic pseudo-random doubles of mixed magnitude.
double val(uint64_t i) {
  const double m = static_cast<double>((i * 2654435761u) % 1000) / 499.5 - 1.0;
  return m * static_cast<double>(1ull << (i % 11));
}

void fill_from_node0(const DArray<double>& a, rt::Cluster& cluster) {
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    std::vector<double> v(a.size());
    for (uint64_t i = 0; i < a.size(); ++i) v[i] = val(i);
    a.set_range(0, std::span<const double>(v));
  });
}

TEST(ComputeCollectives, DotMatchesSerialAcrossNodeCounts) {
  const uint64_t n_elems = 777;  // partial last chunk
  double serial = 0;
  for (uint64_t i = 0; i < n_elems; ++i) serial += val(i) * val(i + 1);
  for (uint32_t nodes : {1u, 2u, 3u, 4u}) {
    rt::Cluster cluster(small_cfg(nodes));
    auto x = DArray<double>::create(cluster, n_elems);
    auto y = DArray<double>::create(cluster, n_elems);
    run_on_nodes(cluster, [&](rt::NodeId n) {
      if (n != 0) return;
      for (uint64_t i = 0; i < n_elems; ++i) {
        x.set(i, val(i));
        y.set(i, val(i + 1));
      }
    });
    run_on_nodes(cluster, [&](rt::NodeId n) {
      const double d = compute::dot(x, y);
      EXPECT_NEAR(d, serial, std::abs(serial) * 1e-12 + 1e-9) << "nodes=" << nodes;
    });
  }
}

TEST(ComputeCollectives, DotWithShiftedPartitionStreamsRemote) {
  // y's partition is skewed (node 3 owns most of it), so the other nodes'
  // x-owned extents read y from remote homes — the overlap path, not just
  // local memcpy.
  rt::Cluster cluster(small_cfg(4));
  const uint64_t n_elems = 4 * 4 * 64;
  auto x = DArray<double>::create(cluster, n_elems);
  std::vector<uint64_t> part = {0, 64, 128, 192};
  auto y = DArray<double>::create(cluster, n_elems, part);
  fill_from_node0(x, cluster);
  fill_from_node0(y, cluster);
  double serial = 0;
  for (uint64_t i = 0; i < n_elems; ++i) serial += val(i) * val(i);
  run_on_nodes(cluster, [&](rt::NodeId) {
    EXPECT_NEAR(compute::dot(x, y), serial, std::abs(serial) * 1e-12);
  });
}

TEST(ComputeCollectives, Norm2) {
  rt::Cluster cluster(small_cfg(2));
  auto x = DArray<double>::create(cluster, 300);
  fill_from_node0(x, cluster);
  double ss = 0;
  for (uint64_t i = 0; i < 300; ++i) ss += val(i) * val(i);
  run_on_nodes(cluster, [&](rt::NodeId) {
    EXPECT_NEAR(compute::norm2(x), std::sqrt(ss), std::sqrt(ss) * 1e-12);
  });
}

TEST(ComputeCollectives, AxpyUpdatesEveryExtent) {
  rt::Cluster cluster(small_cfg(3));
  const uint64_t n_elems = 700;
  auto x = DArray<double>::create(cluster, n_elems);
  auto y = DArray<double>::create(cluster, n_elems);
  fill_from_node0(x, cluster);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < n_elems; ++i) y.set(i, val(i + 5));
  });
  run_on_nodes(cluster, [&](rt::NodeId) { compute::axpy(2.5, x, y); });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 2) return;
    for (uint64_t i = 0; i < n_elems; i += 13)
      EXPECT_NEAR(y.get(i), val(i + 5) + 2.5 * val(i), 1e-9) << "element " << i;
  });
}

TEST(ComputeCollectives, ScaleInPlace) {
  rt::Cluster cluster(small_cfg(2));
  const uint64_t n_elems = 400;
  auto x = DArray<double>::create(cluster, n_elems);
  fill_from_node0(x, cluster);
  run_on_nodes(cluster, [&](rt::NodeId) { compute::scale(-0.5, x); });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    for (uint64_t i = 0; i < n_elems; i += 7)
      EXPECT_NEAR(x.get(i), -0.5 * val(i), 1e-12) << "element " << i;
  });
}

TEST(ComputeCollectives, CopyAcrossPartitions) {
  rt::Cluster cluster(small_cfg(2));
  const uint64_t n_elems = 2 * 4 * 64;
  auto src = DArray<double>::create(cluster, n_elems);
  std::vector<uint64_t> part = {0, 64};  // dst is mostly homed on node 1
  auto dst = DArray<double>::create(cluster, n_elems, part);
  fill_from_node0(src, cluster);
  run_on_nodes(cluster, [&](rt::NodeId) { compute::copy(src, dst); });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    for (uint64_t i = 0; i < n_elems; i += 17) EXPECT_EQ(dst.get(i), val(i));
  });
}

TEST(ComputeCollectives, GemvMatchesSerial) {
  // 8×8-chunk grid: chunk_elems = 64 divides n_cols = 64, so the default
  // partition is row-aligned on any node count.
  for (uint32_t nodes : {1u, 3u}) {
    rt::Cluster cluster(small_cfg(nodes));
    const uint64_t n_rows = 48, n_cols = 64;
    auto A = DArray<double>::create(cluster, n_rows * n_cols);
    auto x = DArray<double>::create(cluster, n_cols);
    auto y = DArray<double>::create(cluster, n_rows);
    fill_from_node0(A, cluster);
    fill_from_node0(x, cluster);
    run_on_nodes(cluster, [&](rt::NodeId n) {
      if (n != 0) return;
      for (uint64_t r = 0; r < n_rows; ++r) y.set(r, val(r + 3));
    });
    run_on_nodes(cluster,
                 [&](rt::NodeId) { compute::gemv(2.0, A, x, 0.5, y, n_rows, n_cols); });
    run_on_nodes(cluster, [&](rt::NodeId n) {
      if (n != 0) return;
      for (uint64_t r = 0; r < n_rows; ++r) {
        double acc = 0;
        for (uint64_t k = 0; k < n_cols; ++k) acc += val(r * n_cols + k) * val(k);
        EXPECT_NEAR(y.get(r), 2.0 * acc + 0.5 * val(r + 3), std::abs(acc) * 1e-11 + 1e-9)
            << "row " << r << " nodes " << nodes;
      }
    });
  }
}

TEST(ComputeCollectives, PowerIterationConverges) {
  // The mini-solver loop from examples/power_iteration, shrunk: dominant
  // eigenvalue of a diagonal-plus-rank-one matrix via gemv/norm2/scale.
  rt::Cluster cluster(small_cfg(2));
  const uint64_t n = 64;
  auto A = DArray<double>::create(cluster, n * n);
  auto x = DArray<double>::create(cluster, n);
  auto y = DArray<double>::create(cluster, n);
  run_on_nodes(cluster, [&](rt::NodeId node) {
    if (node != 0) return;
    for (uint64_t r = 0; r < n; ++r)
      for (uint64_t c = 0; c < n; ++c)
        A.set(r * n + c, (r == c ? 2.0 : 0.0) + 1.0 / static_cast<double>(n));
    for (uint64_t i = 0; i < n; ++i) x.set(i, 1.0);
  });
  std::vector<double> lambda(cluster.num_nodes(), 0.0);
  run_on_nodes(cluster, [&](rt::NodeId node) {
    double l = 0;
    for (int it = 0; it < 30; ++it) {
      compute::gemv(1.0, A, x, 0.0, y, n, n);
      l = compute::norm2(y);
      compute::copy(y, x);
      compute::scale(1.0 / l, x);
    }
    lambda[node] = l;
  });
  // A = 2I + (1/n)·11ᵀ has dominant eigenvalue 2 + 1 = 3.
  for (double l : lambda) EXPECT_NEAR(l, 3.0, 1e-6);
}

TEST(ComputeCollectives, CountersAndStatsExport) {
  rt::Cluster cluster(small_cfg(2));
  auto x = DArray<double>::create(cluster, 512);
  fill_from_node0(x, cluster);
  obs::ComputeCounters& c = obs::compute_counters();
  const uint64_t coll0 = c.collectives.load(std::memory_order_relaxed);
  const uint64_t red0 = c.reduce_msgs.load(std::memory_order_relaxed);
  run_on_nodes(cluster, [&](rt::NodeId) { (void)compute::dot(x, x); });
  // One collective per node; at least one tree edge each way.
  EXPECT_EQ(c.collectives.load(std::memory_order_relaxed) - coll0, 2u);
  EXPECT_GE(c.reduce_msgs.load(std::memory_order_relaxed) - red0, 2u);
  obs::StatsSnapshot snap = cluster.stats_registry().snapshot();
  bool found_chunks = false, found_reduce = false;
  for (const auto& e : snap.entries) {
    if (e.name == "compute.chunks") found_chunks = true;
    if (e.name == "compute.reduce_msgs") found_reduce = true;
  }
  EXPECT_TRUE(found_chunks);
  EXPECT_TRUE(found_reduce);
}

}  // namespace
}  // namespace darray
