// ReduceBoard: the per-node mailbox reduction partials travel through.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/reduce_board.hpp"

namespace darray::rt {
namespace {

TEST(ComputeReduceBoard, KeysAreUnambiguous) {
  // (seq, src, frag) triples must map to distinct keys.
  std::vector<uint64_t> keys;
  for (uint32_t seq : {0u, 1u, 77u})
    for (uint32_t src : {0u, 1u, 255u})
      for (uint32_t frag : {0u, 1u, 1000u}) keys.push_back(ReduceBoard::key(seq, src, frag));
  for (size_t i = 0; i < keys.size(); ++i)
    for (size_t j = i + 1; j < keys.size(); ++j) EXPECT_NE(keys[i], keys[j]);
}

TEST(ComputeReduceBoard, DeliverThenAwait) {
  ReduceBoard b;
  ReduceBoard::Part in;
  in.bits = 42;
  in.frags = 3;
  in.payload.assign("abc", 3);
  b.deliver(ReduceBoard::key(7, 1, 2), std::move(in));
  ReduceBoard::Part out = b.await(ReduceBoard::key(7, 1, 2));
  EXPECT_EQ(out.bits, 42u);
  EXPECT_EQ(out.frags, 3u);
  ASSERT_EQ(out.payload.size(), 3u);
  EXPECT_EQ(std::memcmp(out.payload.data(), "abc", 3), 0);
}

TEST(ComputeReduceBoard, AwaitBlocksUntilDelivered) {
  ReduceBoard b;
  std::thread producer([&] {
    for (uint32_t i = 0; i < 100; ++i)
      b.deliver(ReduceBoard::key(i, 3), ReduceBoard::Part{uint64_t{i} * 11, 1, {}});
  });
  for (uint32_t i = 0; i < 100; ++i)
    EXPECT_EQ(b.await(ReduceBoard::key(i, 3)).bits, uint64_t{i} * 11);
  producer.join();
}

TEST(ComputeReduceBoard, SequenceNumbersAreMonotonic) {
  ReduceBoard b;
  EXPECT_EQ(b.next_seq(), 0u);
  EXPECT_EQ(b.next_seq(), 1u);
  EXPECT_EQ(b.next_seq(), 2u);
}

}  // namespace
}  // namespace darray::rt
