#include "kvs/slab_allocator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace darray::kvs {
namespace {

TEST(Slab, ClassBytesRounding) {
  EXPECT_EQ(SlabAllocator::class_bytes(1), 16u);
  EXPECT_EQ(SlabAllocator::class_bytes(16), 16u);
  EXPECT_EQ(SlabAllocator::class_bytes(17), 32u);
  EXPECT_EQ(SlabAllocator::class_bytes(100), 128u);
  EXPECT_EQ(SlabAllocator::class_bytes(65536), 65536u);
}

TEST(Slab, AllocationsWithinRegionAndDisjoint) {
  SlabAllocator s(1000, 1 << 20);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const uint64_t off = s.allocate(100);
    ASSERT_NE(off, kNullOffset);
    EXPECT_GE(off, 1000u);
    EXPECT_LE(off + 128, 1000u + (1 << 20));
    EXPECT_TRUE(seen.insert(off).second) << "duplicate allocation";
    // No overlap with any other allocation of the same class.
    for (uint64_t other : seen) {
      if (other != off) {
        EXPECT_GE(std::max(off, other) - std::min(off, other), 128u);
      }
    }
  }
}

TEST(Slab, FreeEnablesReuse) {
  SlabAllocator s(0, SlabAllocator::kPageBytes);  // exactly one page
  std::vector<uint64_t> offs;
  for (;;) {
    const uint64_t o = s.allocate(1000);  // class 1024: 64 objects per page
    if (o == kNullOffset) break;
    offs.push_back(o);
  }
  EXPECT_EQ(offs.size(), SlabAllocator::kPageBytes / 1024);
  s.free(offs[0], 1000);
  EXPECT_EQ(s.allocate(1000), offs[0]);
}

TEST(Slab, ExhaustionReturnsNull) {
  SlabAllocator s(0, 1024);  // smaller than a page
  EXPECT_EQ(s.allocate(100), kNullOffset);
}

TEST(Slab, ZeroAndOversizeRejected) {
  SlabAllocator s(0, 1 << 20);
  EXPECT_EQ(s.allocate(0), kNullOffset);
  EXPECT_EQ(s.allocate(SlabAllocator::kMaxClassBytes + 1), kNullOffset);
}

TEST(Slab, BytesInUseTracksAllocations) {
  SlabAllocator s(0, 1 << 20);
  EXPECT_EQ(s.bytes_in_use(), 0u);
  const uint64_t a = s.allocate(100);  // class 128
  EXPECT_EQ(s.bytes_in_use(), 128u);
  const uint64_t b = s.allocate(17);  // class 32
  EXPECT_EQ(s.bytes_in_use(), 160u);
  s.free(a, 100);
  EXPECT_EQ(s.bytes_in_use(), 32u);
  s.free(b, 17);
  EXPECT_EQ(s.bytes_in_use(), 0u);
}

TEST(Slab, DifferentClassesDoNotOverlap) {
  SlabAllocator s(0, 4 << 20);
  struct Alloc {
    uint64_t off;
    uint32_t cap;
  };
  std::vector<Alloc> allocs;
  for (uint32_t sz : {10u, 100u, 1000u, 10000u, 60000u}) {
    for (int i = 0; i < 5; ++i) {
      const uint64_t o = s.allocate(sz);
      ASSERT_NE(o, kNullOffset);
      allocs.push_back({o, SlabAllocator::class_bytes(sz)});
    }
  }
  for (size_t i = 0; i < allocs.size(); ++i)
    for (size_t j = i + 1; j < allocs.size(); ++j) {
      const bool disjoint = allocs[i].off + allocs[i].cap <= allocs[j].off ||
                            allocs[j].off + allocs[j].cap <= allocs[i].off;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
}

TEST(Slab, ThreadSafety) {
  SlabAllocator s(0, 8 << 20);
  std::vector<std::thread> ts;
  std::vector<std::vector<uint64_t>> per_thread(4);
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&s, &v = per_thread[static_cast<size_t>(t)]] {
      for (int i = 0; i < 500; ++i) {
        const uint64_t o = s.allocate(64);
        ASSERT_NE(o, kNullOffset);
        v.push_back(o);
      }
    });
  for (auto& t : ts) t.join();
  std::set<uint64_t> all;
  for (const auto& v : per_thread)
    for (uint64_t o : v) EXPECT_TRUE(all.insert(o).second) << "duplicate under contention";
}

}  // namespace
}  // namespace darray::kvs
