// Typed tests: the DArray-backed KVS and the GAM-backed KVS must behave
// identically (the paper compares their performance, not semantics).
#include "kvs/kvs.hpp"

#include <gtest/gtest.h>

#include "kvs/ycsb.hpp"
#include "tests/test_util.hpp"

namespace darray::kvs {
namespace {

using darray::testing::run_on_nodes;
using darray::testing::small_cfg;

template <typename K>
class KvsTest : public ::testing::Test {};

using KvsTypes = ::testing::Types<DKvs, GamKvs>;

class KvsNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, DKvs>) return "DArrayKvs";
    return "GamKvs";
  }
};

TYPED_TEST_SUITE(KvsTest, KvsTypes, KvsNames);

KvsConfig tiny_cfg() {
  KvsConfig c;
  c.n_main_buckets = 64;
  c.n_overflow_buckets = 32;
  c.byte_capacity = 4 << 20;
  return c;
}

TYPED_TEST(KvsTest, PutGetRoundTrip) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_TRUE(kvs.put("hello", "world"));
  auto v = kvs.get("hello");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "world");
}

TYPED_TEST(KvsTest, MissingKeyNotFound) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_FALSE(kvs.get("nope").has_value());
}

TYPED_TEST(KvsTest, UpdateReplacesValue) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_TRUE(kvs.put("k", "v1"));
  EXPECT_TRUE(kvs.put("k", "a-much-longer-second-value"));
  EXPECT_EQ(*kvs.get("k"), "a-much-longer-second-value");
  // The old blob must have been freed (no leak): usage equals one blob.
  EXPECT_EQ(kvs.bytes_in_use(),
            SlabAllocator::class_bytes(2 + 1 + 26));
}

TYPED_TEST(KvsTest, EraseRemoves) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_TRUE(kvs.put("k", "v"));
  EXPECT_TRUE(kvs.erase("k"));
  EXPECT_FALSE(kvs.get("k").has_value());
  EXPECT_FALSE(kvs.erase("k"));
  EXPECT_EQ(kvs.bytes_in_use(), 0u);
}

TYPED_TEST(KvsTest, ManyKeysWithOverflowChains) {
  rt::Cluster cluster(small_cfg(2));
  KvsConfig cfg = tiny_cfg();
  cfg.n_main_buckets = 4;        // force long chains: 600 keys over 4 buckets
  cfg.n_overflow_buckets = 64;   // 600/4 keys per chain needs 9 overflow buckets each
  auto kvs = TypeParam::create(cluster, cfg);
  bind_thread(cluster, 0);
  for (int i = 0; i < 600; ++i)
    ASSERT_TRUE(kvs.put("key" + std::to_string(i), "value" + std::to_string(i * 7)));
  for (int i = 0; i < 600; ++i) {
    auto v = kvs.get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, "value" + std::to_string(i * 7));
  }
}

TYPED_TEST(KvsTest, CrossNodeVisibility) {
  rt::Cluster cluster(small_cfg(3));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  run_on_nodes(cluster, [&](rt::NodeId n) {
    ASSERT_TRUE(kvs.put("node" + std::to_string(n), "from" + std::to_string(n)));
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (rt::NodeId n = 0; n < 3; ++n) {
      auto v = kvs.get("node" + std::to_string(n));
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "from" + std::to_string(n));
    }
  });
}

TYPED_TEST(KvsTest, ConcurrentMixedWorkload) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  darray::testing::run_on_nodes_mt(cluster, 2, [&](rt::NodeId n, uint32_t t) {
    for (int i = 0; i < 50; ++i) {
      const std::string key = "k" + std::to_string(i % 10);
      if ((i + n + t) % 3 == 0) {
        kvs.put(key, "v" + std::to_string(n) + std::to_string(t) + std::to_string(i));
      } else {
        auto v = kvs.get(key);  // value varies; must never crash or tear
        if (v) {
          EXPECT_EQ((*v)[0], 'v');
        }
      }
    }
  });
}

TYPED_TEST(KvsTest, LargeValues) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  const std::string big(40'000, 'B');
  EXPECT_TRUE(kvs.put("big", big));
  EXPECT_EQ(*kvs.get("big"), big);
  // Over the 16-bit size limit: rejected, not corrupted.
  EXPECT_FALSE(kvs.put("huge", std::string(70'000, 'H')));
  EXPECT_EQ(*kvs.get("big"), big);
}

TYPED_TEST(KvsTest, ContainsProbesWithoutValue) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_FALSE(kvs.contains("k"));
  EXPECT_TRUE(kvs.put("k", std::string(5000, 'v')));
  EXPECT_TRUE(kvs.contains("k"));
  EXPECT_TRUE(kvs.erase("k"));
  EXPECT_FALSE(kvs.contains("k"));
}

TYPED_TEST(KvsTest, EmptyValue) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = TypeParam::create(cluster, tiny_cfg());
  bind_thread(cluster, 0);
  EXPECT_TRUE(kvs.put("k", ""));
  auto v = kvs.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "");
}

TEST(Ycsb, SmokeRunOnDArrayKvs) {
  rt::Cluster cluster(small_cfg(2));
  auto kvs = DKvs::create(cluster, KvsConfig{1 << 8, 1 << 6, 8 << 20});
  YcsbConfig cfg;
  cfg.n_keys = 500;
  cfg.ops_per_thread = 300;
  cfg.threads_per_node = 2;
  cfg.get_ratio = 0.9;
  ycsb_load(cluster, kvs, cfg);
  YcsbResult r = run_ycsb(cluster, kvs, cfg);
  EXPECT_EQ(r.gets + r.puts, 2u * 2 * 300);
  EXPECT_EQ(r.misses, 0u) << "all keys were preloaded";
  EXPECT_GT(r.kops, 0.0);
}

}  // namespace
}  // namespace darray::kvs
