#include "kvs/ycsb.hpp"

#include <gtest/gtest.h>

#include "kvs/kvs.hpp"
#include "tests/test_util.hpp"

namespace darray::kvs {
namespace {

TEST(YcsbUnit, KeyFormat) {
  EXPECT_EQ(ycsb_key(0), "user0");
  EXPECT_EQ(ycsb_key(123456), "user123456");
  EXPECT_NE(ycsb_key(1), ycsb_key(10));
}

TEST(YcsbUnit, ValueSizedAndTagged) {
  const std::string v = ycsb_value(42, 100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.substr(0, 6), "val42:");
  EXPECT_EQ(v.back(), 'x');
}

TEST(YcsbUnit, LoadInsertsEveryKey) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  auto kvs = DKvs::create(cluster, KvsConfig{1 << 8, 1 << 6, 8 << 20});
  YcsbConfig cfg;
  cfg.n_keys = 300;
  ycsb_load(cluster, kvs, cfg);
  bind_thread(cluster, 0);
  for (uint64_t k = 0; k < cfg.n_keys; ++k)
    ASSERT_TRUE(kvs.contains(ycsb_key(k))) << k;
}

TEST(YcsbUnit, GetRatioRespectedApproximately) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  auto kvs = DKvs::create(cluster, KvsConfig{1 << 8, 1 << 6, 8 << 20});
  YcsbConfig cfg;
  cfg.n_keys = 200;
  cfg.ops_per_thread = 1000;
  cfg.threads_per_node = 1;
  cfg.get_ratio = 0.8;
  ycsb_load(cluster, kvs, cfg);
  YcsbResult r = run_ycsb(cluster, kvs, cfg);
  const double ratio = static_cast<double>(r.gets) / static_cast<double>(r.gets + r.puts);
  EXPECT_NEAR(ratio, 0.8, 0.05);
  EXPECT_EQ(r.misses, 0u);
}

TEST(YcsbUnit, PureGetWorkloadHasNoPuts) {
  rt::Cluster cluster(darray::testing::small_cfg(2));
  auto kvs = DKvs::create(cluster, KvsConfig{1 << 8, 1 << 6, 8 << 20});
  YcsbConfig cfg;
  cfg.n_keys = 100;
  cfg.ops_per_thread = 200;
  cfg.get_ratio = 1.0;
  ycsb_load(cluster, kvs, cfg);
  YcsbResult r = run_ycsb(cluster, kvs, cfg);
  EXPECT_EQ(r.puts, 0u);
  EXPECT_GT(r.kops, 0.0);
  EXPECT_GT(r.elapsed_s, 0.0);
}

}  // namespace
}  // namespace darray::kvs
