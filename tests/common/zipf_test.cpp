#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace darray {
namespace {

TEST(Zipf, InRange) {
  ZipfGenerator z(1000, 0.99);
  Xoshiro256 r(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(r), 1000u);
}

TEST(Zipf, SkewFavoursSmallIndices) {
  ZipfGenerator z(10000, 0.99);
  Xoshiro256 r(2);
  int head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) head += z.next(r) < 100;  // top 1% of keys
  // With theta=0.99 the head is vastly overrepresented vs. uniform (~1%).
  EXPECT_GT(head, kDraws / 4);
}

TEST(Zipf, RankFrequencyMonotonic) {
  ZipfGenerator z(100, 0.99);
  Xoshiro256 r(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 200000; ++i) counts[z.next(r)]++;
  // Coarse rank check: item 0 >> item 10 >> item 90.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, LowSkewIsFlatter) {
  ZipfGenerator hi(1000, 0.99), lo(1000, 0.2);
  Xoshiro256 r1(4), r2(4);
  int hi_head = 0, lo_head = 0;
  for (int i = 0; i < 20000; ++i) {
    hi_head += hi.next(r1) < 10;
    lo_head += lo.next(r2) < 10;
  }
  EXPECT_GT(hi_head, lo_head * 2);
}

}  // namespace
}  // namespace darray
