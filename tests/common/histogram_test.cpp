#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace darray {
namespace {

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0.99), 0u);
}

TEST(Histogram, SingleSample) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.mean_ns(), 1000.0);
  // Log buckets: percentile is an upper bound within ~1/16 relative error.
  EXPECT_GE(h.percentile_ns(0.5), 1000u);
  EXPECT_LE(h.percentile_ns(0.5), 1100u);
}

TEST(Histogram, MeanExact) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 50.5);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  for (uint64_t i = 0; i < 10000; ++i) h.record(i * 17 % 100000);
  EXPECT_LE(h.percentile_ns(0.5), h.percentile_ns(0.9));
  EXPECT_LE(h.percentile_ns(0.9), h.percentile_ns(0.99));
  EXPECT_LE(h.percentile_ns(0.99), h.percentile_ns(1.0));
}

TEST(Histogram, PercentileApproximation) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const uint64_t p50 = h.percentile_ns(0.5);
  EXPECT_GE(p50, 450u);
  EXPECT_LE(p50, 560u);  // within one log bucket of 500
}

TEST(Histogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(10);
  a.record(20);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean_ns(), 20.0);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(0.99), 0u);
}

TEST(Histogram, LargeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.record(~0ull);
  h.record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile_ns(1.0), 1ull << 62);
}

TEST(NowNs, Monotonic) {
  const uint64_t a = now_ns();
  const uint64_t b = now_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace darray
