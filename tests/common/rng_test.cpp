#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace darray {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, NextBelowInRange) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(Xoshiro, NextBelowRoughlyUniform) {
  Xoshiro256 r(123);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[r.next_below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro, NoShortCycles) {
  Xoshiro256 r(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(r.next());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace darray
