#include "common/node_mask.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace darray {
namespace {

TEST(NodeMask, StartsEmpty) {
  NodeMask m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count(), 0);
}

TEST(NodeMask, AddRemoveContains) {
  NodeMask m;
  m.add(3);
  m.add(63);
  EXPECT_TRUE(m.contains(3));
  EXPECT_TRUE(m.contains(63));
  EXPECT_FALSE(m.contains(4));
  EXPECT_EQ(m.count(), 2);
  m.remove(3);
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.count(), 1);
}

TEST(NodeMask, RemoveAbsentIsNoop) {
  NodeMask m;
  m.add(5);
  m.remove(7);
  EXPECT_EQ(m.count(), 1);
}

TEST(NodeMask, Single) {
  NodeMask m = NodeMask::single(9);
  EXPECT_TRUE(m.is_only(9));
  m.add(10);
  EXPECT_FALSE(m.is_only(9));
}

TEST(NodeMask, IterationVisitsAllInOrder) {
  NodeMask m;
  m.add(0);
  m.add(7);
  m.add(42);
  std::vector<uint32_t> seen;
  for (uint32_t n : m) seen.push_back(n);
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 7, 42}));
}

TEST(NodeMask, IterationOfEmpty) {
  NodeMask m;
  for (uint32_t n : m) FAIL() << "unexpected node " << n;
}

TEST(NodeMask, Equality) {
  NodeMask a, b;
  a.add(1);
  b.add(1);
  EXPECT_EQ(a, b);
  b.add(2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace darray
