#include "common/wait.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace darray {
namespace {

TEST(SpinWait, ReturnsImmediatelyWhenSatisfied) {
  std::atomic<int> v{5};
  spin_wait_until(v, [](int x) { return x == 5; });  // must not hang
}

TEST(SpinWait, WakesOnNotify) {
  std::atomic<int> v{0};
  std::thread t([&] {
    v.store(1, std::memory_order_release);
    v.notify_all();
  });
  spin_wait_until(v, [](int x) { return x == 1; });
  t.join();
}

TEST(Completion, SignalThenWait) {
  Completion c;
  EXPECT_FALSE(c.ready());
  c.signal();
  EXPECT_TRUE(c.ready());
  c.wait();  // immediate
}

TEST(Completion, WaitBlocksUntilSignal) {
  Completion c;
  std::thread t([&] { c.signal(); });
  c.wait();
  t.join();
  EXPECT_TRUE(c.ready());
}

TEST(Completion, Reusable) {
  Completion c;
  c.signal();
  c.wait();
  c.reset();
  EXPECT_FALSE(c.ready());
  c.signal();
  c.wait();
}

TEST(CountLatch, ZeroIsImmediatelyDone) {
  CountLatch l(0);
  l.wait();
}

TEST(CountLatch, WaitsForAll) {
  CountLatch l(3);
  std::atomic<int> fired{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i)
    ts.emplace_back([&] {
      fired.fetch_add(1);
      l.done();
    });
  l.wait();
  EXPECT_EQ(fired.load(), 3);
  for (auto& t : ts) t.join();
}

}  // namespace
}  // namespace darray
