#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace darray {
namespace {

TEST(SpscRing, CapacityRoundedToPowerOfTwo) {
  SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
}

TEST(SpscRing, FillAndDrain) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99)) << "ring should be full";
  int v;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(r.try_pop(v));
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> r(4);
  int v;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(r.try_push(round));
    EXPECT_TRUE(r.try_push(round + 1000));
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, round);
    ASSERT_TRUE(r.try_pop(v));
    EXPECT_EQ(v, round + 1000);
  }
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kN = 100000;
  SpscRing<int> r(64);
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      while (!r.try_push(i)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  for (int i = 0; i < kN; ++i) {
    int v;
    while (!r.try_pop(v)) std::this_thread::yield();
    EXPECT_EQ(v, i);  // SPSC preserves order
    sum += v;
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

}  // namespace
}  // namespace darray
