#include "common/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace darray {
namespace {

TEST(MpscQueue, EmptyPopFails) {
  MpscQueue<int> q;
  int v = 0;
  EXPECT_FALSE(q.pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, FifoSingleThread) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  int v;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
}

TEST(MpscQueue, MoveOnlyValues) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(7));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(*out, 7);
}

TEST(MpscQueue, MultiProducerTotalSum) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  Doorbell bell;
  MpscQueue<int> q(&bell);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }

  long long sum = 0;
  int received = 0;
  while (received < kProducers * kPerProducer) {
    const uint32_t snap = bell.snapshot();
    int v;
    bool got = false;
    while (q.pop(v)) {
      sum += v;
      received++;
      got = true;
    }
    if (!got && received < kProducers * kPerProducer) bell.wait_change(snap);
  }
  for (auto& t : producers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(MpscQueue, PerProducerOrderPreserved) {
  constexpr int kPerProducer = 5000;
  MpscQueue<std::pair<int, int>> q;
  std::thread p1([&] {
    for (int i = 0; i < kPerProducer; ++i) q.push({1, i});
  });
  std::thread p2([&] {
    for (int i = 0; i < kPerProducer; ++i) q.push({2, i});
  });

  int next1 = 0, next2 = 0, received = 0;
  while (received < 2 * kPerProducer) {
    std::pair<int, int> v;
    if (!q.pop(v)) {
      std::this_thread::yield();
      continue;
    }
    received++;
    if (v.first == 1) {
      EXPECT_EQ(v.second, next1++);
    } else {
      EXPECT_EQ(v.second, next2++);
    }
  }
  p1.join();
  p2.join();
}

TEST(Doorbell, WaitReturnsAfterRing) {
  Doorbell bell;
  const uint32_t snap = bell.snapshot();
  std::thread t([&] { bell.ring(); });
  bell.wait_change(snap);  // must not hang
  t.join();
  EXPECT_NE(bell.snapshot(), snap);
}

}  // namespace
}  // namespace darray
