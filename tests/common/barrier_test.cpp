#include "common/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace darray {
namespace {

TEST(SenseBarrier, SinglePartyNeverBlocks) {
  SenseBarrier b(1);
  for (int i = 0; i < 10; ++i) b.arrive_and_wait();
}

TEST(SenseBarrier, PhasesStayAligned) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SenseBarrier b(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counter.fetch_add(1);
        b.arrive_and_wait();
        // After the barrier, every thread of this phase has incremented.
        if (counter.load() < (phase + 1) * kThreads) failed.store(true);
        b.arrive_and_wait();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kPhases);
}

}  // namespace
}  // namespace darray
