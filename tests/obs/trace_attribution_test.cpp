// End-to-end observability: the correlation id minted at the DArray API
// boundary must survive the LocalRequest → engine → comm layer → fabric
// journey, so a fault injected deep in the transport attributes back to the
// originating op, and Cluster::stats() must expose every layer's counters.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "core/darray.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(ClusterStats, SnapshotCoversEveryLayer) {
  rt::ClusterConfig cfg = small_cfg(2);
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 256);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = 0; i < 256; ++i) a.set(i, i + n);
  });
  const obs::StatsSnapshot s = cluster.stats();
  // Cross-node writes force remote misses, so traffic counters are nonzero.
  EXPECT_GT(s.value_or("fabric.sends"), 0u);
  EXPECT_GT(s.value_or("runtime.local_write_misses"), 0u);
  // Presence (not magnitude) for the rest of the unified plane.
  EXPECT_NE(s.find("fabric.bytes_sent"), nullptr);
  EXPECT_NE(s.find("runtime.fills"), nullptr);
  EXPECT_NE(s.find("pool.hits"), nullptr);
  EXPECT_NE(s.find("comm.dropped_requests"), nullptr);
  EXPECT_NE(s.find("trace.recorded"), nullptr);
  // No chaos plan armed: the chaos.* block is absent, not zero-filled.
  EXPECT_EQ(s.find("chaos.rnr_rejections"), nullptr);
  // Custom sources extend the same snapshot.
  cluster.stats_registry().add_source(
      [](obs::StatsSnapshot& out) { out.add("harness.custom", 5); });
  EXPECT_EQ(cluster.stats().value_or("harness.custom"), 5u);
}

TEST(ClusterStats, ContinuousProfilerArmsAndExposesCounters) {
  {
    rt::ClusterConfig cfg = small_cfg(2);
    cfg.profiler_enabled = true;
    cfg.profiler_hz = 499;  // dense sampling so a short test still lands hits
    rt::Cluster cluster(cfg);
    EXPECT_TRUE(obs::profiler_running());
    auto a = DArray<uint64_t>::create(cluster, 256);
    run_on_nodes(cluster, [&](rt::NodeId n) {
      for (uint64_t i = 0; i < 2048; ++i) a.set(i % 256, i + n);
    });
    const obs::StatsSnapshot s = cluster.stats();
    // The profile.* plane is present and the registry saw the cluster's
    // named threads (rt/tx/rx at minimum — 2 nodes' worth of rings).
    EXPECT_NE(s.find("profile.samples"), nullptr);
    EXPECT_NE(s.find("profile.signals"), nullptr);
    EXPECT_NE(s.find("profile.unattributed"), nullptr);
    EXPECT_GE(s.value_or("profile.rings"), 6u);
  }  // cluster dtor disarms the session before joining its threads
  EXPECT_FALSE(obs::profiler_running());
}

#if DARRAY_TRACING

TEST(TraceAttribution, InjectedRnrRetryMapsBackToApiOp) {
  chaos::FaultPlan plan;
  plan.seed = 11;
  plan.p_rnr = 0.05;
  plan.rnr_window_ns = 50'000;

  obs::reset_trace();
  {
    rt::ClusterConfig cfg = small_cfg(2);
    cfg.fault_plan = &plan;
    cfg.tracing_enabled = true;
    rt::Cluster cluster(cfg);
    auto a = DArray<uint64_t>::create(cluster, 1024);
    run_on_nodes(cluster, [&](rt::NodeId n) {
      // Every op touches the other node's partition, so each one crosses the
      // wire and is exposed to the injector.
      const uint64_t base = a.local_begin(1 - n);
      for (uint64_t i = 0; i < 512; ++i) {
        a.set(base + (i % 512), i);
        (void)a.get(base + (i % 512));
      }
    });
    ASSERT_GT(cluster.stats().value_or("chaos.rnr_rejections"), 0u)
        << "plan injected nothing; raise p_rnr or the op count";
  }  // all recording threads joined: rings are quiescent and exact
  obs::set_tracing(false);

  const std::vector<obs::TraceEvent> evs = obs::collect_trace();
  ASSERT_FALSE(evs.empty());

  std::unordered_map<uint64_t, obs::TraceEvent> begin_of;
  std::unordered_set<uint64_t> retried;
  for (const obs::TraceEvent& e : evs) {
    if (e.ev == obs::Ev::kOpBegin) begin_of[e.corr] = e;
    if (e.ev == obs::Ev::kRetry && e.corr != 0) retried.insert(e.corr);
  }

  int attributed = 0;
  for (const obs::TraceEvent& e : evs) {
    if (e.ev != obs::Ev::kFault || e.corr == 0) continue;
    if (static_cast<rdma::WcStatus>(e.kind) != rdma::WcStatus::kRnrError) continue;
    const auto it = begin_of.find(e.corr);
    if (it == begin_of.end() || !retried.count(e.corr)) continue;
    // The originating op is a real API-level op recorded on an app thread.
    const obs::TraceEvent& b = it->second;
    EXPECT_LT(b.kind, static_cast<uint8_t>(obs::OpKind::kMaxOpKind));
    EXPECT_LE(b.ts_ns, e.ts_ns);
    ++attributed;
  }
  EXPECT_GT(attributed, 0)
      << "no injected RNR retry could be walked back to a DArray op";
}

TEST(TraceDump, JsonRoundTripsEventCount) {
  obs::reset_trace();
  obs::set_tracing(true);
  for (int i = 0; i < 10; ++i)
    obs::trace(obs::Ev::kMiss, obs::new_corr_id(), 1, 0, 2, 3);
  obs::set_tracing(false);
  const char* path = "trace_dump_test.json";
  ASSERT_TRUE(obs::dump_trace_json(path));
  // Count event lines (one per line, by construction of the dump format).
  std::FILE* f = std::fopen(path, "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  int events = 0;
  while (std::fgets(line, sizeof(line), f))
    if (std::strstr(line, "\"ev\": \"miss\"")) ++events;
  std::fclose(f);
  std::remove(path);
  EXPECT_EQ(events, 10);
}

#endif  // DARRAY_TRACING

}  // namespace
}  // namespace darray
