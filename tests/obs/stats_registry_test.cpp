// StatsRegistry / StatsSnapshot: naming, lookup, JSON shape, and snapshot
// consistency while sources are being bumped and registered concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/histogram.hpp"
#include "obs/stats_registry.hpp"

namespace darray::obs {
namespace {

TEST(StatsSnapshot, AddFindValueOr) {
  StatsSnapshot s;
  s.add("fabric.sends", 12);
  s.add("pool.hits", 0);
  ASSERT_NE(s.find("fabric.sends"), nullptr);
  EXPECT_EQ(*s.find("fabric.sends"), 12u);
  EXPECT_EQ(s.find("fabric.nope"), nullptr);
  EXPECT_EQ(s.value_or("pool.hits", 99), 0u);
  EXPECT_EQ(s.value_or("missing", 99), 99u);
}

TEST(StatsSnapshot, HistogramFlattensToPercentileEntries) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 100; ++i) h.record(i * 1000);
  StatsSnapshot s;
  s.add_histogram("op.get", h);
  EXPECT_EQ(s.value_or("op.get.count"), 100u);
  EXPECT_GT(s.value_or("op.get.mean_ns"), 0u);
  EXPECT_GT(s.value_or("op.get.p99_ns"), s.value_or("op.get.p50_ns"));
}

TEST(StatsSnapshot, ToJsonIsWellFormed) {
  StatsSnapshot s;
  s.add("a.x", 1);
  s.add("a.y", 2);
  EXPECT_EQ(s.to_json(), "{\n  \"a.x\": 1,\n  \"a.y\": 2\n}");
  // Empty snapshots still produce a valid object.
  EXPECT_EQ(StatsSnapshot{}.to_json(), "{\n}");
}

TEST(StatsRegistry, SourcesRunInRegistrationOrder) {
  StatsRegistry reg;
  reg.add_source([](StatsSnapshot& s) { s.add("first", 1); });
  reg.add_source([](StatsSnapshot& s) { s.add("second", 2); });
  const StatsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].name, "first");
  EXPECT_EQ(s.entries[1].name, "second");
}

// Snapshots taken while counters advance and new sources register must stay
// internally consistent: every registered source contributes exactly once,
// and a monotonic counter never appears to run backwards across snapshots.
TEST(StatsRegistry, SnapshotConsistentUnderConcurrentOps) {
  StatsRegistry reg;
  std::atomic<uint64_t> counter{0};
  reg.add_source([&](StatsSnapshot& s) {
    s.add("test.counter", counter.load(std::memory_order_relaxed));
  });

  std::atomic<bool> stop{false};
  std::thread bump([&] {
    while (!stop.load(std::memory_order_relaxed))
      counter.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread registrar([&] {
    for (int i = 0; i < 100; ++i)
      reg.add_source([](StatsSnapshot& s) { s.add("test.extra", 7); });
  });

  uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const StatsSnapshot s = reg.snapshot();
    const uint64_t v = s.value_or("test.counter", ~0ull);
    ASSERT_NE(v, ~0ull);          // the counter source always reports
    EXPECT_GE(v, last);           // monotonic across snapshots
    last = v;
    for (const StatEntry& e : s.entries) {
      if (e.name == "test.extra") {
        EXPECT_EQ(e.value, 7u);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  bump.join();
  registrar.join();

  // All 100 late sources made it in; each contributes exactly one entry.
  const StatsSnapshot fin = reg.snapshot();
  size_t extras = 0;
  for (const StatEntry& e : fin.entries)
    if (e.name == "test.extra") ++extras;
  EXPECT_EQ(extras, 100u);
}

TEST(StatsSnapshot, DeltaSubtractsCountersButPassesPointSamples) {
  StatsSnapshot base;
  base.add("fabric.sends", 100);
  base.add("hist.op.get.p99_ns", 5'000);
  base.add("hist.op.get.count", 10);
  StatsSnapshot now;
  now.add("fabric.sends", 130);
  now.add("hist.op.get.p99_ns", 9'000);
  now.add("hist.op.get.count", 25);
  now.add("runtime.fills", 4);  // absent from base: kept as-is

  const StatsSnapshot d = now.delta_from(base);
  EXPECT_EQ(d.value_or("fabric.sends"), 30u);
  EXPECT_EQ(d.value_or("hist.op.get.count"), 15u);
  // A percentile is a point sample, not a monotonic counter: subtracting two
  // of them is meaningless, so the current value passes through.
  EXPECT_EQ(d.value_or("hist.op.get.p99_ns"), 9'000u);
  EXPECT_EQ(d.value_or("runtime.fills"), 4u);
}

TEST(StatsSnapshot, DeltaSaturatesInsteadOfUnderflowing) {
  // A counter going backwards (a reset between snapshots) must clamp to 0,
  // not wrap to ~2^64.
  StatsSnapshot base, now;
  base.add("test.counter", 50);
  now.add("test.counter", 20);
  EXPECT_EQ(now.delta_from(base).value_or("test.counter"), 0u);
}

TEST(StatsRegistry, NamedBaselinesIsolatePhases) {
  StatsRegistry reg;
  uint64_t counter = 100;
  reg.add_source([&](StatsSnapshot& s) { s.add("test.ops", counter); });

  reg.mark_baseline("phase1");
  counter += 40;
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 40u);

  // A second mark under the same tag replaces the first.
  reg.mark_baseline("phase1");
  counter += 5;
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 5u);

  // Tags are independent.
  reg.mark_baseline("phase2");
  counter += 7;
  EXPECT_EQ(reg.delta_since("phase2").value_or("test.ops"), 7u);
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 12u);

  // An unknown tag degrades to a plain snapshot rather than failing.
  EXPECT_EQ(reg.delta_since("never_marked").value_or("test.ops"), counter);
}

}  // namespace
}  // namespace darray::obs
