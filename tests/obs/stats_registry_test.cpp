// StatsRegistry / StatsSnapshot: naming, lookup, JSON shape, and snapshot
// consistency while sources are being bumped and registered concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/histogram.hpp"
#include "obs/stats_registry.hpp"

namespace darray::obs {
namespace {

TEST(StatsSnapshot, AddFindValueOr) {
  StatsSnapshot s;
  s.add("fabric.sends", 12);
  s.add("pool.hits", 0);
  ASSERT_NE(s.find("fabric.sends"), nullptr);
  EXPECT_EQ(*s.find("fabric.sends"), 12u);
  EXPECT_EQ(s.find("fabric.nope"), nullptr);
  EXPECT_EQ(s.value_or("pool.hits", 99), 0u);
  EXPECT_EQ(s.value_or("missing", 99), 99u);
}

TEST(StatsSnapshot, HistogramFlattensToPercentileEntries) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 100; ++i) h.record(i * 1000);
  StatsSnapshot s;
  s.add_histogram("op.get", h);
  EXPECT_EQ(s.value_or("op.get.count"), 100u);
  EXPECT_GT(s.value_or("op.get.mean_ns"), 0u);
  EXPECT_GT(s.value_or("op.get.p99_ns"), s.value_or("op.get.p50_ns"));
}

TEST(StatsSnapshot, ToJsonIsWellFormed) {
  StatsSnapshot s;
  s.add("a.x", 1);
  s.add("a.y", 2);
  EXPECT_EQ(s.to_json(), "{\n  \"a.x\": 1,\n  \"a.y\": 2\n}");
  // Empty snapshots still produce a valid object.
  EXPECT_EQ(StatsSnapshot{}.to_json(), "{\n}");
}

TEST(StatsRegistry, SourcesRunInRegistrationOrder) {
  StatsRegistry reg;
  reg.add_source([](StatsSnapshot& s) { s.add("first", 1); });
  reg.add_source([](StatsSnapshot& s) { s.add("second", 2); });
  const StatsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].name, "first");
  EXPECT_EQ(s.entries[1].name, "second");
}

// Snapshots taken while counters advance and new sources register must stay
// internally consistent: every registered source contributes exactly once,
// and a monotonic counter never appears to run backwards across snapshots.
TEST(StatsRegistry, SnapshotConsistentUnderConcurrentOps) {
  StatsRegistry reg;
  std::atomic<uint64_t> counter{0};
  reg.add_source([&](StatsSnapshot& s) {
    s.add("test.counter", counter.load(std::memory_order_relaxed));
  });

  std::atomic<bool> stop{false};
  std::thread bump([&] {
    while (!stop.load(std::memory_order_relaxed))
      counter.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread registrar([&] {
    for (int i = 0; i < 100; ++i)
      reg.add_source([](StatsSnapshot& s) { s.add("test.extra", 7); });
  });

  uint64_t last = 0;
  for (int i = 0; i < 2000; ++i) {
    const StatsSnapshot s = reg.snapshot();
    const uint64_t v = s.value_or("test.counter", ~0ull);
    ASSERT_NE(v, ~0ull);          // the counter source always reports
    EXPECT_GE(v, last);           // monotonic across snapshots
    last = v;
    for (const StatEntry& e : s.entries) {
      if (e.name == "test.extra") {
        EXPECT_EQ(e.value, 7u);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  bump.join();
  registrar.join();

  // All 100 late sources made it in; each contributes exactly one entry.
  const StatsSnapshot fin = reg.snapshot();
  size_t extras = 0;
  for (const StatEntry& e : fin.entries)
    if (e.name == "test.extra") ++extras;
  EXPECT_EQ(extras, 100u);
}

TEST(StatsSnapshot, DeltaSubtractsCountersButPassesPointSamples) {
  StatsSnapshot base;
  base.add("fabric.sends", 100);
  base.add("hist.op.get.p99_ns", 5'000);
  base.add("hist.op.get.count", 10);
  StatsSnapshot now;
  now.add("fabric.sends", 130);
  now.add("hist.op.get.p99_ns", 9'000);
  now.add("hist.op.get.count", 25);
  now.add("runtime.fills", 4);  // absent from base: kept as-is

  const StatsSnapshot d = now.delta_from(base);
  EXPECT_EQ(d.value_or("fabric.sends"), 30u);
  EXPECT_EQ(d.value_or("hist.op.get.count"), 15u);
  // A percentile is a point sample, not a monotonic counter: subtracting two
  // of them is meaningless, so the current value passes through.
  EXPECT_EQ(d.value_or("hist.op.get.p99_ns"), 9'000u);
  EXPECT_EQ(d.value_or("runtime.fills"), 4u);
}

// Regression (obs v3): histogram cells flatten into ".bkt_<upper>" entries
// carrying each bucket's own (non-cumulative) count, and stats_delta_since /
// delta_from must subtract them like any counter while still passing the
// percentile point samples through. With cumulative bucket entries a bucket
// first appearing after the baseline would double-count everything below it;
// the sparse own-count encoding keeps deltas exact.
TEST(StatsSnapshot, HistogramBucketEntriesSubtractLikeCounters) {
  AtomicLatencyHistogram h;
  for (int i = 0; i < 5; ++i) h.record(100);
  StatsSnapshot base;
  base.add_histogram("hist.op.get", h.snapshot());

  for (int i = 0; i < 3; ++i) h.record(100);
  for (int i = 0; i < 2; ++i) h.record(1'000'000);  // new bucket, post-baseline
  StatsSnapshot now;
  now.add_histogram("hist.op.get", h.snapshot());

  const std::string fast_bkt =
      "hist.op.get.bkt_" +
      std::to_string(AtomicLatencyHistogram::bucket_upper(
          AtomicLatencyHistogram::bucket_index(100)));
  const std::string slow_bkt =
      "hist.op.get.bkt_" +
      std::to_string(AtomicLatencyHistogram::bucket_upper(
          AtomicLatencyHistogram::bucket_index(1'000'000)));
  ASSERT_EQ(base.value_or(fast_bkt), 5u);
  ASSERT_EQ(base.find(slow_bkt), nullptr);  // sparse: empty buckets absent
  ASSERT_EQ(now.value_or(fast_bkt), 8u);
  ASSERT_EQ(now.value_or(slow_bkt), 2u);

  const StatsSnapshot d = now.delta_from(base);
  EXPECT_EQ(d.value_or("hist.op.get.count"), 5u);
  EXPECT_EQ(d.value_or("hist.op.get.sum_ns"), 3u * 100u + 2u * 1'000'000u);
  EXPECT_EQ(d.value_or(fast_bkt), 3u);
  // Bucket absent from the baseline: its full count is the delta, with no
  // spill-over into other buckets.
  EXPECT_EQ(d.value_or(slow_bkt), 2u);
  // Percentiles remain point samples and pass through untouched.
  EXPECT_EQ(d.value_or("hist.op.get.p50_ns"), now.value_or("hist.op.get.p50_ns"));
  // Delta buckets sum to delta count: nothing double-counted.
  uint64_t bucket_total = 0;
  for (const StatEntry& e : d.entries)
    if (e.name.find(".bkt_") != std::string::npos) bucket_total += e.value;
  EXPECT_EQ(bucket_total, 5u);
}

TEST(StatsSnapshot, IsPointSampleClassification) {
  EXPECT_TRUE(stats_is_point_sample("hist.op.get.p50_ns"));
  EXPECT_TRUE(stats_is_point_sample("hist.op.get.p999_ns"));
  EXPECT_TRUE(stats_is_point_sample("hist.msg.ReadReq.mean_ns"));
  EXPECT_TRUE(stats_is_point_sample("hist.op.get.max_ns"));
  EXPECT_FALSE(stats_is_point_sample("hist.op.get.count"));
  EXPECT_FALSE(stats_is_point_sample("hist.op.get.sum_ns"));
  EXPECT_FALSE(stats_is_point_sample("hist.op.get.bkt_1024"));
  EXPECT_FALSE(stats_is_point_sample("fabric.sends"));
}

TEST(StatsSnapshot, DeltaSaturatesInsteadOfUnderflowing) {
  // A counter going backwards (a reset between snapshots) must clamp to 0,
  // not wrap to ~2^64.
  StatsSnapshot base, now;
  base.add("test.counter", 50);
  now.add("test.counter", 20);
  EXPECT_EQ(now.delta_from(base).value_or("test.counter"), 0u);
}

TEST(StatsRegistry, NamedBaselinesIsolatePhases) {
  StatsRegistry reg;
  uint64_t counter = 100;
  reg.add_source([&](StatsSnapshot& s) { s.add("test.ops", counter); });

  reg.mark_baseline("phase1");
  counter += 40;
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 40u);

  // A second mark under the same tag replaces the first.
  reg.mark_baseline("phase1");
  counter += 5;
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 5u);

  // Tags are independent.
  reg.mark_baseline("phase2");
  counter += 7;
  EXPECT_EQ(reg.delta_since("phase2").value_or("test.ops"), 7u);
  EXPECT_EQ(reg.delta_since("phase1").value_or("test.ops"), 12u);

  // An unknown tag degrades to a plain snapshot rather than failing.
  EXPECT_EQ(reg.delta_since("never_marked").value_or("test.ops"), counter);
}

}  // namespace
}  // namespace darray::obs
