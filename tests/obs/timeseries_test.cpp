// TimeSeriesStore: counter-vs-gauge point semantics, ring wraparound, the
// ".bkt_" skip, JSON shape, and lock-free concurrent readers against the
// single sampler writer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.hpp"

namespace darray::obs {
namespace {

StatsSnapshot snap_of(std::initializer_list<std::pair<const char*, uint64_t>> kv) {
  StatsSnapshot s;
  for (const auto& [k, v] : kv) s.add(k, v);
  return s;
}

TEST(TimeSeries, CountersStoreIntervalDeltas) {
  TimeSeriesStore ts(8);
  ts.record(100, snap_of({{"fabric.sends", 10}}));
  ts.record(200, snap_of({{"fabric.sends", 25}}));
  ts.record(300, snap_of({{"fabric.sends", 25}}));

  std::vector<SeriesPoint> pts;
  ASSERT_TRUE(ts.read("fabric.sends", pts));
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].t_ns, 100u);
  EXPECT_EQ(pts[0].value, 10u);  // first interval: delta from zero
  EXPECT_EQ(pts[1].value, 15u);
  EXPECT_EQ(pts[2].value, 0u);
  EXPECT_EQ(ts.samples(), 3u);
}

TEST(TimeSeries, CounterResetClampsToZeroInsteadOfWrapping) {
  TimeSeriesStore ts(8);
  ts.record(1, snap_of({{"c", 50}}));
  ts.record(2, snap_of({{"c", 20}}));  // reset between samples
  std::vector<SeriesPoint> pts;
  ASSERT_TRUE(ts.read("c", pts));
  EXPECT_EQ(pts[1].value, 0u);
}

TEST(TimeSeries, PointSamplesPassThroughRaw) {
  TimeSeriesStore ts(8);
  ts.record(1, snap_of({{"hist.op.get.p99_ns", 9000}}));
  ts.record(2, snap_of({{"hist.op.get.p99_ns", 4000}}));  // may go down freely

  const auto all = ts.collect("hist.op.get.");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_FALSE(all[0].rate);
  ASSERT_EQ(all[0].points.size(), 2u);
  EXPECT_EQ(all[0].points[0].value, 9000u);
  EXPECT_EQ(all[0].points[1].value, 4000u);
}

TEST(TimeSeries, BucketEntriesAreSkipped) {
  TimeSeriesStore ts(8);
  ts.record(1, snap_of({{"hist.op.get.bkt_1024", 3}, {"hist.op.get.count", 3}}));
  std::vector<SeriesPoint> pts;
  EXPECT_FALSE(ts.read("hist.op.get.bkt_1024", pts));
  EXPECT_TRUE(ts.read("hist.op.get.count", pts));
}

TEST(TimeSeries, RingKeepsNewestCapacityPoints) {
  TimeSeriesStore ts(4);  // already a power of two
  ASSERT_EQ(ts.capacity(), 4u);
  for (uint64_t i = 1; i <= 10; ++i)
    ts.record(i * 100, snap_of({{"c", i}}));  // deltas: 1 at i==1, else 1 each
  std::vector<SeriesPoint> pts;
  ASSERT_TRUE(ts.read("c", pts));
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts.front().t_ns, 700u);  // samples 7..10 survive
  EXPECT_EQ(pts.back().t_ns, 1000u);
  for (size_t i = 1; i < pts.size(); ++i) EXPECT_GT(pts[i].t_ns, pts[i - 1].t_ns);
}

TEST(TimeSeries, CollectFiltersByPrefixAndTruncates) {
  TimeSeriesStore ts(8);
  for (uint64_t i = 1; i <= 5; ++i)
    ts.record(i, snap_of({{"a.x", i}, {"a.y", i}, {"b.z", i}}));
  EXPECT_EQ(ts.collect().size(), 3u);
  const auto a = ts.collect("a.", /*last_n=*/2);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].points.size(), 2u);
  EXPECT_EQ(a[0].points.back().t_ns, 5u);
}

TEST(TimeSeries, MetricAppearingMidStreamStartsItsOwnSeries) {
  // hist.* cells materialize when tracing turns on; the late metric must not
  // inherit other rings' history.
  TimeSeriesStore ts(8);
  ts.record(1, snap_of({{"a", 5}}));
  ts.record(2, snap_of({{"a", 6}, {"late", 40}}));
  std::vector<SeriesPoint> pts;
  ASSERT_TRUE(ts.read("late", pts));
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].t_ns, 2u);
  EXPECT_EQ(pts[0].value, 40u);  // first delta is from zero
}

TEST(TimeSeries, ToJsonShape) {
  TimeSeriesStore ts(8);
  ts.record(10, snap_of({{"a.x", 1}, {"hist.op.get.p50_ns", 7}}));
  ts.record(20, snap_of({{"a.x", 3}, {"hist.op.get.p50_ns", 8}}));
  const std::string j = ts.to_json();
  EXPECT_NE(j.find("\"sample_count\": 2"), std::string::npos);
  EXPECT_NE(j.find("{\"metric\": \"a.x\", \"rate\": true, \"points\": [[10,1],[20,2]]}"),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("{\"metric\": \"hist.op.get.p50_ns\", \"rate\": false, "
                   "\"points\": [[10,7],[20,8]]}"),
            std::string::npos)
      << j;
  // Unknown prefix: an empty but well-formed payload, not a crash.
  EXPECT_NE(ts.to_json("nope.").find("\"series\": ["), std::string::npos);
}

// Readers race the single writer across many wraps: every point a reader gets
// back must be internally consistent (monotonic timestamps, plausible values)
// even when the writer laps the ring mid-copy. Run under TSan in CI.
TEST(TimeSeries, ConcurrentReadersSeeConsistentPoints) {
  TimeSeriesStore ts(16);
  std::atomic<bool> stop{false};
  constexpr uint64_t kWrites = 20'000;

  std::thread writer([&] {
    for (uint64_t i = 1; i <= kWrites; ++i)
      ts.record(i * 10, snap_of({{"c", i * 3}, {"g.p50_ns", i}}));
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<SeriesPoint> pts;
      while (!stop.load(std::memory_order_acquire)) {
        if (!ts.read("c", pts)) continue;  // ring may not exist yet
        ASSERT_LE(pts.size(), ts.capacity());
        for (size_t i = 0; i < pts.size(); ++i) {
          ASSERT_EQ(pts[i].t_ns % 10, 0u);
          // Every interval delta is exactly 3 except the very first sample.
          ASSERT_TRUE(pts[i].value == 3 || pts[i].t_ns == 10) << pts[i].value;
          if (i > 0) {
            ASSERT_EQ(pts[i].t_ns, pts[i - 1].t_ns + 10);
          }
        }
        ts.collect("g.");  // exercise the gauge path concurrently too
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(ts.samples(), kWrites);
}

}  // namespace
}  // namespace darray::obs
