// The slow-op watchdog: validate() guards its knobs, a stalled op is
// reported exactly once (not once per poll tick), the report carries the
// op's identity, and distinct stalls each get their own report.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/darray.hpp"
#include "obs/trace.hpp"
#include "tests/test_util.hpp"

using namespace darray;
using darray::testing::small_cfg;

TEST(Watchdog, ValidateRequiresTracingAndSaneKnobs) {
  rt::ClusterConfig cfg;
  cfg.watchdog_enabled = true;
  // Watchdog without tracing cannot correlate anything: rejected.
  cfg.tracing_enabled = false;
  EXPECT_NE(cfg.validate().find("watchdog"), std::string::npos) << cfg.validate();

  cfg.tracing_enabled = true;
  EXPECT_EQ(cfg.validate(), "");

  cfg.watchdog_deadline_ns = 0;
  EXPECT_NE(cfg.validate().find("watchdog_deadline_ns"), std::string::npos);
  cfg.watchdog_deadline_ns = 1'000'000;
  cfg.watchdog_poll_ns = 0;
  EXPECT_NE(cfg.validate().find("watchdog_poll_ns"), std::string::npos);
  cfg.watchdog_poll_ns = 2'000'000;  // poll slower than the deadline
  EXPECT_NE(cfg.validate().find("watchdog_poll_ns"), std::string::npos);
}

#if !DARRAY_TRACING

TEST(Watchdog, SkippedWithoutTracing) {
  GTEST_SKIP() << "DARRAY_TRACING=0: the watchdog has no inflight table";
}

#else  // DARRAY_TRACING

namespace {

rt::ClusterConfig watchdog_cfg() {
  rt::ClusterConfig cfg = small_cfg(1);
  cfg.tracing_enabled = true;
  cfg.watchdog_enabled = true;
  cfg.watchdog_deadline_ns = 60'000'000;  // 60 ms
  cfg.watchdog_poll_ns = 5'000'000;       // 12 chances to double-report
  return cfg;
}

// Holds the element's wlock on one app thread for `hold_ms`, while a second
// app thread blocks acquiring it — a deterministic in-flight op far past the
// deadline, with no fault injector in the loop.
void stall_one_op(rt::Cluster& cluster, DArray<uint64_t>& arr, uint64_t index,
                  int hold_ms) {
  std::atomic<bool> held{false};
  std::thread holder([&] {
    bind_thread(cluster, 0);
    arr.wlock(index);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    arr.unlock(index);
  });
  std::thread blocked([&] {
    bind_thread(cluster, 0);
    while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
    arr.wlock(index);  // blocks until the holder releases
    arr.unlock(index);
  });
  holder.join();
  blocked.join();
}

}  // namespace

TEST(Watchdog, ReportsAStalledOpExactlyOnce) {
  rt::Cluster cluster(watchdog_cfg());
  auto arr = DArray<uint64_t>::create(cluster, 256);

  rt::Cluster::WatchdogReport last{};
  std::atomic<uint64_t> fired{0};
  cluster.set_watchdog_handler([&](const rt::Cluster::WatchdogReport& r) {
    last = r;
    // release pairs with the acquire below: it publishes `last` to the main
    // thread, which reads it only after observing the count.
    fired.fetch_add(1, std::memory_order_release);
  });

  // 250 ms stall vs a 60 ms deadline: the scanner passes the stalled op many
  // times, and must report it on the first pass only.
  stall_one_op(cluster, arr, 7, 250);
  EXPECT_EQ(fired.load(std::memory_order_acquire), 1u);
  EXPECT_EQ(cluster.watchdog_reports(), 1u);
  EXPECT_EQ(last.kind, obs::OpKind::kWlock);
  EXPECT_EQ(last.node, 0u);
  EXPECT_EQ(last.index, 7u);
  EXPECT_NE(last.corr, 0u);
  EXPECT_GE(last.age_ns, cluster.config().watchdog_deadline_ns);
}

TEST(Watchdog, DistinctStallsEachReportOnce) {
  rt::Cluster cluster(watchdog_cfg());
  auto arr = DArray<uint64_t>::create(cluster, 256);
  std::atomic<uint64_t> fired{0};
  std::atomic<uint64_t> corrs[2] = {};
  cluster.set_watchdog_handler([&](const rt::Cluster::WatchdogReport& r) {
    const uint64_t i = fired.fetch_add(1, std::memory_order_relaxed);
    if (i < 2) corrs[i].store(r.corr, std::memory_order_relaxed);
  });

  stall_one_op(cluster, arr, 1, 150);
  stall_one_op(cluster, arr, 2, 150);
  EXPECT_EQ(fired.load(), 2u);
  EXPECT_EQ(cluster.watchdog_reports(), 2u);
  // Two different ops, two different correlation ids.
  EXPECT_NE(corrs[0].load(), corrs[1].load());
}

TEST(Watchdog, FastOpsNeverFire) {
  rt::Cluster cluster(watchdog_cfg());
  auto arr = DArray<uint64_t>::create(cluster, 256);
  darray::testing::run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < 256; ++i) {
      arr.set(i, i);
      (void)arr.get(i);
    }
  });
  // Give the poller a couple of ticks to (wrongly) find something.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(cluster.watchdog_reports(), 0u);
}

#endif  // DARRAY_TRACING
