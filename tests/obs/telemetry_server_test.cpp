// TelemetryServer + render_prometheus: exposition correctness (counter/gauge
// split, node labels, cumulative histogram buckets rebuilt from sparse
// non-cumulative snapshot entries) and the HTTP surface end to end over a
// real loopback socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/journey.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/timeseries.hpp"

namespace darray::obs {
namespace {

StatsSnapshot demo_snapshot() {
  StatsSnapshot s;
  s.add("fabric.sends", 120);
  s.add("runtime.remote_reqs", 40);
  s.add("node.0.ops", 70);
  s.add("node.1.ops", 30);
  s.add("hist.op.get.count", 10);
  s.add("hist.op.get.sum_ns", 5'000);
  s.add("hist.op.get.mean_ns", 500);  // point sample: must not render
  s.add("hist.op.get.p99_ns", 900);   // point sample: must not render
  s.add("hist.op.get.bkt_256", 4);    // sparse, NON-cumulative per-bucket counts
  s.add("hist.op.get.bkt_1024", 6);
  return s;
}

TEST(RenderPrometheus, CountersGaugesAndNodeLabels) {
  StatsSnapshot s;
  s.add("fabric.sends", 12);
  s.add("hist.op.get.p99_ns", 900);  // hist quantile: dropped entirely
  s.add("duty.tx.busy_ns", 5);
  s.add("node.2.remote_reqs", 7);
  const std::string out = render_prometheus(s);
  EXPECT_NE(out.find("# TYPE darray_fabric_sends_total counter\n"
                     "darray_fabric_sends_total 12\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE darray_node_remote_reqs_total counter\n"
                     "darray_node_remote_reqs_total{node=\"2\"} 7\n"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("p99"), std::string::npos) << out;
}

TEST(RenderPrometheus, HistogramBucketsAreCumulativeAndCapped) {
  const std::string out = render_prometheus(demo_snapshot());
  // Sparse own-counts 4 and 6 re-accumulate to le-cumulative 4 and 10.
  EXPECT_NE(out.find("# TYPE darray_op_latency_ns histogram"), std::string::npos) << out;
  EXPECT_NE(out.find("darray_op_latency_ns_bucket{op=\"get\",le=\"256\"} 4"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_op_latency_ns_bucket{op=\"get\",le=\"1024\"} 10"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_op_latency_ns_bucket{op=\"get\",le=\"+Inf\"} 10"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_op_latency_ns_sum{op=\"get\"} 5000"), std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_op_latency_ns_count{op=\"get\"} 10"), std::string::npos)
      << out;
  // The quantile/mean point samples never leak out as separate families.
  EXPECT_EQ(out.find("mean_ns"), std::string::npos) << out;
}

TEST(RenderPrometheus, LiveSkewPinsInfBucketToCount) {
  // A cell whose .count raced ahead of the bucket loads: +Inf and _count must
  // still agree (both take the larger total).
  StatsSnapshot s;
  s.add("hist.op.set.count", 12);
  s.add("hist.op.set.sum_ns", 100);
  s.add("hist.op.set.bkt_512", 10);
  const std::string out = render_prometheus(s);
  EXPECT_NE(out.find("darray_op_latency_ns_bucket{op=\"set\",le=\"+Inf\"} 12"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_op_latency_ns_count{op=\"set\"} 12"), std::string::npos)
      << out;
}

// Regression: the +Inf/_sum/_count trailer once went through one bounded
// snprintf; a long family name plus a 20-digit sum overflowed the buffer and
// truncated the exposition mid-line. Every line must come out whole.
TEST(RenderPrometheus, LargeSumsAndLongLabelsAreNeverTruncated) {
  StatsSnapshot s;
  s.add("hist.msg.InvalidateBroadcast.count", 123'456'789);
  s.add("hist.msg.InvalidateBroadcast.sum_ns", 18'000'000'000'000'000'000ull);
  s.add("hist.msg.InvalidateBroadcast.bkt_123456789012", 123'456'789);
  const std::string out = render_prometheus(s);
  EXPECT_NE(
      out.find("darray_msg_latency_ns_bucket{class=\"InvalidateBroadcast\","
               "le=\"+Inf\"} 123456789\n"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_msg_latency_ns_sum{class=\"InvalidateBroadcast\"} "
                     "18000000000000000000\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("darray_msg_latency_ns_count{class=\"InvalidateBroadcast\"} "
                     "123456789\n"),
            std::string::npos)
      << out;
}

// --- HTTP surface ------------------------------------------------------------

std::string fetch(uint16_t port, const std::string& target, int& status) {
  status = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, static_cast<size_t>(n));
  ::close(fd);
  const size_t sp = resp.find(' ');
  if (sp != std::string::npos) status = std::atoi(resp.c_str() + sp + 1);
  const size_t hdr = resp.find("\r\n\r\n");
  return hdr == std::string::npos ? std::string{} : resp.substr(hdr + 4);
}

struct ServerFixture : ::testing::Test {
  TimeSeriesStore store{8};
  TelemetryServer server{[this] {
    TelemetryServer::Options o;
    o.port = 0;  // ephemeral: parallel test runs must not collide
    o.snapshot = [] { return demo_snapshot(); };
    o.store = &store;
    return o;
  }()};

  void SetUp() override {
    store.record(100, demo_snapshot());
    store.record(200, demo_snapshot());
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.port(), 0);
  }
};

TEST_F(ServerFixture, ServesMetrics) {
  int status = 0;
  const std::string body = fetch(server.port(), "/metrics", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("darray_fabric_sends_total 120"), std::string::npos) << body;
  EXPECT_NE(body.find("darray_node_ops_total{node=\"0\"} 70"), std::string::npos) << body;
  EXPECT_NE(body.find("darray_op_latency_ns_bucket{op=\"get\",le=\"+Inf\"} 10"),
            std::string::npos)
      << body;
}

TEST_F(ServerFixture, ServesStatsJson) {
  int status = 0;
  const std::string body = fetch(server.port(), "/stats.json", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"fabric.sends\": 120"), std::string::npos) << body;
}

TEST_F(ServerFixture, ServesSeriesJsonWithQueryParams) {
  int status = 0;
  std::string body = fetch(server.port(), "/series.json", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"sample_count\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"metric\": \"fabric.sends\""), std::string::npos) << body;

  body = fetch(server.port(), "/series.json?metric=fabric.sends&n=1", status);
  EXPECT_EQ(status, 200);
  // Counter series: first delta 120, second 0; n=1 keeps only the newest.
  EXPECT_NE(body.find("\"points\": [[200,0]]"), std::string::npos) << body;

  body = fetch(server.port(), "/series.json?metric=no.such.metric", status);
  EXPECT_EQ(status, 404);
}

TEST_F(ServerFixture, ServesSlowJsonFromJourneyCollector) {
  JourneyCollector& jc = journey_collector();
  jc.reset();
  jc.configure(true, 8, 1);  // floor 1 ns: the completion below is retained
  RequestJourney j;
  j.trace = 0x42;
  j.t_submit = 1000;
  j.t_admit = 1100;
  j.t_dequeue = 1300;
  j.t_backend = 1900;
  j.t_resp_rx = 2100;
  j.t_deliver = 2200;
  jc.complete(j);

  int status = 0;
  const std::string body = fetch(server.port(), "/slow.json", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"retained\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"trace\": \"0000000000000042\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"total_ns\": 1200"), std::string::npos) << body;
  jc.reset();
  jc.configure(false, 8, 0);
}

TEST_F(ServerFixture, HealthzDefaultsToPlainOk) {
  int status = 0;
  const std::string body = fetch(server.port(), "/healthz", status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
}

TEST(TelemetryServerStandalone, HealthzUsesProvidedClosure) {
  TelemetryServer::Options o;
  o.snapshot = [] { return StatsSnapshot{}; };
  o.healthz = [] { return std::string("{\"status\": \"ok\", \"nodes\": 2}\n"); };
  TelemetryServer server(std::move(o));
  ASSERT_TRUE(server.start());
  int status = 0;
  const std::string body = fetch(server.port(), "/healthz", status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "{\"status\": \"ok\", \"nodes\": 2}\n");
  server.stop();
}

TEST(TelemetryServerStandalone, ExemplarsQueryParamTogglesTraceIds) {
  JourneyCollector& jc = journey_collector();
  jc.reset();
  jc.configure(true, 8, 1);
  RequestJourney j;
  j.trace = 0xfeed;
  j.t_submit = 1000;
  j.t_admit = 1100;
  j.t_dequeue = 1300;
  j.t_backend = 1'001'300;  // backend ~1 ms
  j.t_resp_rx = 1'001'400;
  j.t_deliver = 1'001'500;
  jc.complete(j);

  TelemetryServer::Options o;
  o.snapshot = [] {
    StatsSnapshot s;
    const HistogramSnapshot b =
        journey_collector().stage_snapshot(JourneyStage::kBackend);
    s.add("hist.stage.backend.count", b.count);
    s.add("hist.stage.backend.sum_ns", b.sum_ns);
    for (int i = 0; i < kHistBuckets; ++i)
      if (b.buckets[static_cast<size_t>(i)])
        s.add("hist.stage.backend.bkt_" +
                  std::to_string(AtomicLatencyHistogram::bucket_upper(i)),
              b.buckets[static_cast<size_t>(i)]);
    return s;
  };
  TelemetryServer server(std::move(o));
  ASSERT_TRUE(server.start());
  int status = 0;
  // Options.exemplars defaults off; the query param turns them on per scrape.
  std::string body = fetch(server.port(), "/metrics", status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body.find("trace_id"), std::string::npos) << body;
  body = fetch(server.port(), "/metrics?exemplars=1", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("# {trace_id=\"000000000000feed\"}"), std::string::npos) << body;
  server.stop();
  jc.reset();
  jc.configure(false, 8, 0);
}

TEST_F(ServerFixture, UnknownPathAndMethodAreRejected) {
  int status = 0;
  fetch(server.port(), "/nope", status);
  EXPECT_EQ(status, 404);
  EXPECT_GE(server.requests(), 1u);
}

// Like fetch() but keeps the whole response, headers included.
std::string raw_fetch(uint16_t port, const std::string& target, int& status) {
  status = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, static_cast<size_t>(n));
  ::close(fd);
  const size_t sp = resp.find(' ');
  if (sp != std::string::npos) status = std::atoi(resp.c_str() + sp + 1);
  return resp;
}

// Regression guard: error responses must carry a Content-Length that matches
// the actual body, or keep-alive-ish clients mis-frame the next response.
TEST_F(ServerFixture, NotFoundContentLengthMatchesBody) {
  int status = 0;
  const std::string resp = raw_fetch(server.port(), "/definitely-not-here", status);
  EXPECT_EQ(status, 404);
  const size_t hdr_end = resp.find("\r\n\r\n");
  ASSERT_NE(hdr_end, std::string::npos) << resp;
  const std::string headers = resp.substr(0, hdr_end);
  const std::string body = resp.substr(hdr_end + 4);
  const size_t cl = headers.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos) << headers;
  const size_t declared =
      std::strtoull(headers.c_str() + cl + std::strlen("Content-Length: "), nullptr, 10);
  EXPECT_EQ(declared, body.size()) << resp;
  EXPECT_NE(body.find("/profile"), std::string::npos)
      << "404 body should advertise the endpoint list: " << body;
  // The error body is plain text, not an empty stub.
  EXPECT_NE(headers.find("Content-Type: text/plain"), std::string::npos) << headers;
}

// Several clients hammering different endpoints at once: every response must
// be complete and internally consistent (the accept loop serves connections
// sequentially, but the snapshot closure and journey collector are shared).
TEST_F(ServerFixture, ConcurrentScrapesAllSucceed) {
  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([this, i, &failures] {
      for (int r = 0; r < kReps; ++r) {
        int status = 0;
        const std::string target = (i % 2 == 0) ? "/metrics" : "/series.json";
        const std::string body = fetch(server.port(), target, status);
        if (status != 200) {
          ++failures;
          continue;
        }
        const char* want =
            (i % 2 == 0) ? "darray_fabric_sends_total 120" : "\"sample_count\": 2";
        if (body.find(want) == std::string::npos) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests(), static_cast<uint64_t>(kThreads * kReps));
}

TEST_F(ServerFixture, ExpositionCarriesBuildInfoAndStartTime) {
  int status = 0;
  const std::string body = fetch(server.port(), "/metrics", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("# TYPE darray_build_info gauge"), std::string::npos) << body;
  EXPECT_NE(body.find("darray_build_info{version=\""), std::string::npos) << body;
  EXPECT_NE(body.find("\",commit=\""), std::string::npos) << body;
  EXPECT_NE(body.find("# TYPE process_start_time_seconds gauge"), std::string::npos)
      << body;
  // The value itself is machine-dependent; it just has to be a sane epoch
  // (after 2020-01-01, i.e. not 0 from a parse failure).
  const size_t pos = body.find("\nprocess_start_time_seconds ");
  ASSERT_NE(pos, std::string::npos) << body;
  const uint64_t start = std::strtoull(
      body.c_str() + pos + std::strlen("\nprocess_start_time_seconds "), nullptr, 10);
  EXPECT_GT(start, 1'577'836'800u) << body;
}

TEST_F(ServerFixture, ProfileEndpointValidatesTypeParam) {
  int status = 0;
  const std::string body = fetch(server.port(), "/profile?type=heap", status);
  EXPECT_EQ(status, 400);
  EXPECT_NE(body.find("cpu or wall"), std::string::npos) << body;
}

TEST_F(ServerFixture, ProfileEndpointRunsATemporarySession) {
  // No continuous session: the endpoint runs its own 1 s cpu capture and
  // returns folded stacks (or the "# no samples" comment on an idle process —
  // either way a 200 with a text/plain body).
  int status = 0;
  const std::string body = fetch(server.port(), "/profile?seconds=1&type=cpu", status);
  EXPECT_EQ(status, 200);
  EXPECT_FALSE(body.empty());
}

TEST_F(ServerFixture, StopJoinsAndFurtherConnectsFail) {
  server.stop();
  EXPECT_FALSE(server.running());
  int status = 0;
  fetch(server.port(), "/metrics", status);
  EXPECT_EQ(status, 0);  // connection refused
}

TEST(TelemetryServerStandalone, SeriesEndpointWithoutStoreIs404) {
  TelemetryServer::Options o;
  o.snapshot = [] { return StatsSnapshot{}; };
  TelemetryServer server(std::move(o));
  ASSERT_TRUE(server.start());
  int status = 0;
  fetch(server.port(), "/series.json", status);
  EXPECT_EQ(status, 404);
  server.stop();
}

TEST(TelemetryServerStandalone, PortCollisionFailsStartCleanly) {
  TelemetryServer::Options o1;
  o1.snapshot = [] { return StatsSnapshot{}; };
  TelemetryServer first(std::move(o1));
  ASSERT_TRUE(first.start());

  TelemetryServer::Options o2;
  o2.port = first.port();  // deliberately taken
  o2.snapshot = [] { return StatsSnapshot{}; };
  TelemetryServer second(std::move(o2));
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
}

}  // namespace
}  // namespace darray::obs
