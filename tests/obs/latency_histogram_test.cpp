// AtomicLatencyHistogram: bucket math at the edges, percentile queries on
// known distributions, snapshot merging, registry cell isolation, and — the
// property the lock-free design exists for — no lost or invented samples
// under concurrent record + snapshot (run under TSan in the obs CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/latency_histogram.hpp"

using namespace darray::obs;

TEST(LatencyHistogram, BucketIndexIsMonotoneAndInRange) {
  int prev = -1;
  for (uint64_t n : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull, 1'000ull,
                     1'000'000ull, 1'000'000'000ull, 10'000'000'000ull, ~0ull}) {
    const int idx = AtomicLatencyHistogram::bucket_index(n);
    ASSERT_GE(idx, 0) << n;
    ASSERT_LT(idx, kHistBuckets) << n;
    ASSERT_GE(idx, prev) << n;  // larger values never map to lower buckets
    prev = idx;
  }
}

TEST(LatencyHistogram, BucketUpperBoundsItsOwnIndex) {
  // Every value must fall in a bucket whose upper bound is >= the value and
  // within 12.5% of it (3 significant bits), the resolution the header
  // comment promises.
  for (uint64_t n : {1ull, 12ull, 999ull, 4'096ull, 123'456ull, 987'654'321ull,
                     10'000'000'000ull}) {
    const int idx = AtomicLatencyHistogram::bucket_index(n);
    const uint64_t upper = AtomicLatencyHistogram::bucket_upper(idx);
    ASSERT_GE(upper, n);
    EXPECT_LE(static_cast<double>(upper - n), 0.125 * static_cast<double>(n) + 1.0)
        << "value " << n << " bucket upper " << upper;
  }
}

TEST(LatencyHistogram, PercentilesOnKnownDistribution) {
  AtomicLatencyHistogram h;
  // 900 fast ops at ~1 µs, 90 at ~100 µs, 10 at ~10 ms.
  for (int i = 0; i < 900; ++i) h.record(1'000);
  for (int i = 0; i < 90; ++i) h.record(100'000);
  for (int i = 0; i < 10; ++i) h.record(10'000'000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1'000u);
  EXPECT_EQ(s.sum_ns, 900u * 1'000 + 90u * 100'000 + 10u * 10'000'000);

  auto near = [](uint64_t got, uint64_t want) {
    return got >= want && static_cast<double>(got) <= 1.13 * static_cast<double>(want);
  };
  EXPECT_TRUE(near(s.percentile_ns(0.50), 1'000)) << s.percentile_ns(0.50);
  EXPECT_TRUE(near(s.percentile_ns(0.90), 1'000)) << s.percentile_ns(0.90);
  EXPECT_TRUE(near(s.percentile_ns(0.99), 100'000)) << s.percentile_ns(0.99);
  EXPECT_TRUE(near(s.percentile_ns(0.999), 10'000'000)) << s.percentile_ns(0.999);
  EXPECT_TRUE(near(s.max_ns(), 10'000'000)) << s.max_ns();
  EXPECT_NEAR(s.mean_ns(), 109'900.0, 1.0);
}

TEST(LatencyHistogram, EmptySnapshotIsAllZero) {
  AtomicLatencyHistogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile_ns(0.99), 0u);
  EXPECT_EQ(s.max_ns(), 0u);
  EXPECT_EQ(s.mean_ns(), 0.0);
}

TEST(LatencyHistogram, ExtremeValuesClampIntoTheTopBucket) {
  AtomicLatencyHistogram h;
  h.record(~0ull);
  h.record(~0ull - 1);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[kHistBuckets - 1], 2u);  // clamped, not lost
}

TEST(LatencyHistogram, MergeAddsCountsAndSums) {
  AtomicLatencyHistogram a, b;
  for (int i = 0; i < 10; ++i) a.record(1'000);
  for (int i = 0; i < 5; ++i) b.record(2'000'000);
  HistogramSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 15u);
  EXPECT_EQ(s.sum_ns, 10u * 1'000 + 5u * 2'000'000);
  EXPECT_GE(s.max_ns(), 2'000'000u);
}

TEST(LatencyHistogram, RegistryCellsAreIsolated) {
  reset_latency_histograms();
  record_op_latency(OpKind::kGet, /*node=*/0, 5'000);
  record_op_latency(OpKind::kGet, /*node=*/1, 7'000);
  record_op_latency(OpKind::kSet, /*node=*/0, 9'000);
  EXPECT_EQ(op_latency_snapshot(OpKind::kGet, 0).count, 1u);
  EXPECT_EQ(op_latency_snapshot(OpKind::kGet, 1).count, 1u);
  EXPECT_EQ(op_latency_snapshot(OpKind::kGet).count, 2u);  // merged across nodes
  EXPECT_EQ(op_latency_snapshot(OpKind::kSet).count, 1u);
  EXPECT_EQ(op_latency_snapshot(OpKind::kApply).count, 0u);
  // Out-of-range node: dropped, not aliased onto a real cell.
  record_op_latency(OpKind::kGet, kHistMaxNodes, 1'000);
  EXPECT_EQ(op_latency_snapshot(OpKind::kGet).count, 2u);
  reset_latency_histograms();
  EXPECT_EQ(op_latency_snapshot(OpKind::kGet).count, 0u);
}

// The concurrency contract: writers never lose a sample, and a reader
// snapshotting mid-flight sees a prefix (never garbage). Exact counts are
// asserted after the writers join. TSan verifies the absence of data races.
TEST(LatencyHistogram, ConcurrentRecordAndSnapshotLosesNothing) {
  AtomicLatencyHistogram h;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  ts.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    ts.emplace_back([&h, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i)
        h.record(1'000 + static_cast<uint64_t>(w) * 100'000 + (i & 1023));
    });
  }
  // A reader hammering snapshots while the writers run: count must only grow.
  ts.emplace_back([&h, &stop] {
    uint64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t c = h.snapshot().count;
      ASSERT_GE(c, prev);
      prev = c;
    }
  });
  for (int w = 0; w < kWriters; ++w) ts[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  ts.back().join();

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kWriters * kPerWriter);
}

TEST(LatencyHistogram, ConcurrentRecordToSharedRegistryCell) {
  reset_latency_histograms();
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20'000;
  std::vector<std::thread> ts;
  for (int w = 0; w < kWriters; ++w)
    ts.emplace_back([] {
      for (uint64_t i = 0; i < kPerWriter; ++i)
        record_op_latency(OpKind::kApply, /*node=*/2, 10'000 + i);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(op_latency_snapshot(OpKind::kApply, 2).count, kWriters * kPerWriter);
  EXPECT_EQ(op_latency_snapshot(OpKind::kApply).count, kWriters * kPerWriter);
  reset_latency_histograms();
}
