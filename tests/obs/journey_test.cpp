// Request-journey tracing (obs v4): stage arithmetic on RequestJourney, the
// JourneyCollector's histogram/retention/threshold behavior, and the exemplar
// lookups that back the /metrics OpenMetrics suffixes.
#include <gtest/gtest.h>

#include <string>

#include "obs/journey.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/telemetry_server.hpp"

namespace darray::obs {
namespace {

// A journey whose stamps are base + the five requested stage durations laid
// end to end, so stage_ns() must hand back exactly what went in.
RequestJourney make_journey(uint64_t trace, uint64_t base, uint64_t admit,
                            uint64_t queue, uint64_t backend, uint64_t net,
                            uint64_t deliver) {
  RequestJourney j;
  j.trace = trace;
  j.t_submit = base;
  j.t_admit = base + admit;
  j.t_dequeue = j.t_admit + queue;
  j.t_backend = j.t_dequeue + backend;
  j.t_resp_rx = j.t_backend + net;
  j.t_deliver = j.t_resp_rx + deliver;
  return j;
}

TEST(JourneyStages, FiveStagesPartitionEndToEnd) {
  const RequestJourney j = make_journey(1, 1000, 150, 450, 800, 300, 200);
  EXPECT_EQ(j.stage_ns(JourneyStage::kAdmit), 150u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kQueue), 450u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kBackend), 800u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kNet), 300u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kDeliver), 200u);
  uint64_t sum = 0;
  for (size_t i = 0; i < kNumJourneyStages; ++i)
    sum += j.stage_ns(static_cast<JourneyStage>(i));
  EXPECT_EQ(sum, j.total_ns());  // no residual bucket, by construction
  EXPECT_EQ(j.dominant_stage(), JourneyStage::kBackend);
}

TEST(JourneyStages, MissingOrOutOfOrderStampsYieldZero) {
  RequestJourney j = make_journey(1, 1000, 100, 100, 100, 100, 100);
  j.t_dequeue = 0;  // e.g. shed before a worker ever saw it
  EXPECT_EQ(j.stage_ns(JourneyStage::kQueue), 0u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kBackend), 0u);
  EXPECT_EQ(j.stage_ns(JourneyStage::kAdmit), 100u);  // earlier stamps unaffected

  RequestJourney rev;
  rev.t_submit = 500;
  rev.t_deliver = 400;  // clock can't run backwards; treat as unmeasurable
  EXPECT_EQ(rev.total_ns(), 0u);

  const RequestJourney empty;
  EXPECT_EQ(empty.total_ns(), 0u);
  EXPECT_EQ(empty.dominant_stage(), JourneyStage::kMaxStage);
}

TEST(JourneyCollectorTest, DisabledCollectorRecordsNothing) {
  JourneyCollector c;  // enabled defaults to false
  c.complete(make_journey(7, 1000, 10, 10, 10, 10, 10));
  c.retain_exceptional(make_journey(8, 1000, 10, 10, 10, 10, 10));
  EXPECT_EQ(c.completed(), 0u);
  EXPECT_EQ(c.retained(), 0u);
  EXPECT_EQ(c.e2e_snapshot().count, 0u);
}

TEST(JourneyCollectorTest, CompleteFeedsStageAndEndToEndHistograms) {
  JourneyCollector c;
  c.configure(true, 8, 0);
  for (int i = 0; i < 10; ++i)
    c.complete(make_journey(i + 1, 1000, 100, 200, 400, 300, 150));
  EXPECT_EQ(c.completed(), 10u);
  for (size_t i = 0; i < kNumJourneyStages; ++i)
    EXPECT_EQ(c.stage_snapshot(static_cast<JourneyStage>(i)).count, 10u);
  const HistogramSnapshot e2e = c.e2e_snapshot();
  EXPECT_EQ(e2e.count, 10u);
  EXPECT_EQ(e2e.sum_ns, 10u * 1150u);
  EXPECT_EQ(c.stage_snapshot(JourneyStage::kBackend).sum_ns, 10u * 400u);
  // No floor and a cold threshold: nothing qualifies as tail-slow yet.
  EXPECT_EQ(c.retained(), 0u);
}

TEST(JourneyCollectorTest, FloorRetainsSlowJourneysOnly) {
  JourneyCollector c;
  c.configure(true, 8, 1'000'000);  // 1 ms floor
  RequestJourney fast = make_journey(1, 1000, 10'000, 10'000, 50'000, 10'000, 5'000);
  fast.seq = 11;
  RequestJourney slow = make_journey(2, 1000, 10'000, 10'000, 2'000'000, 10'000, 5'000);
  slow.seq = 22;
  c.complete(fast);
  c.complete(slow);
  EXPECT_EQ(c.completed(), 2u);
  EXPECT_EQ(c.retained(), 1u);
  const auto kept = c.snapshot_retained();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].seq, 22u);
  EXPECT_EQ(kept[0].trace, 2u);
}

TEST(JourneyCollectorTest, ThresholdWarmsUpToLiveP99) {
  JourneyCollector c;
  c.configure(true, 16, 0);
  // 64 completions trigger the first p99 recompute; all totals ~= 500 us.
  for (int i = 0; i < 64; ++i)
    c.complete(make_journey(i + 1, 1000, 100'000, 100'000, 100'000, 100'000, 100'000));
  EXPECT_GT(c.threshold_ns(), 0u);
  const uint64_t before = c.retained();
  // A 10 ms outlier is far above the warmed-up p99: retained.
  c.complete(make_journey(99, 1000, 100'000, 100'000, 9'600'000, 100'000, 100'000));
  EXPECT_EQ(c.retained(), before + 1);
}

TEST(JourneyCollectorTest, ExceptionalJourneysSkipHistograms) {
  JourneyCollector c;
  c.configure(true, 8, 0);
  RequestJourney shed;
  shed.trace = 5;
  shed.t_submit = 1000;  // no later stamps: refused at admission
  shed.flags = RequestJourney::kFlagShed;
  c.retain_exceptional(shed);
  EXPECT_EQ(c.completed(), 0u);
  EXPECT_EQ(c.retained(), 1u);
  EXPECT_EQ(c.e2e_snapshot().count, 0u);
  const auto kept = c.snapshot_retained();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].flags, RequestJourney::kFlagShed);
}

TEST(JourneyCollectorTest, RingWrapsAtCapOldestFirst) {
  JourneyCollector c;
  c.configure(true, 4, 0);
  for (uint64_t s = 10; s < 16; ++s) {  // six retains into a cap-4 ring
    RequestJourney j = make_journey(s, 1000, 10, 10, 10, 10, 10);
    j.seq = s;
    j.flags = RequestJourney::kFlagError;
    c.retain_exceptional(j);
  }
  EXPECT_EQ(c.retained(), 6u);
  const auto kept = c.snapshot_retained();
  ASSERT_EQ(kept.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(kept[i].seq, 12u + i);
}

TEST(JourneyCollectorTest, SlowJsonIsLineParseable) {
  JourneyCollector c;
  c.configure(true, 8, 1);  // floor 1 ns: every completion retained
  RequestJourney j = make_journey(0xab, 1000, 150, 450, 800, 300, 200);
  j.origin = 0;
  j.owner = 1;
  j.session = 3;
  j.seq = 42;
  j.op = 1;  // put
  c.complete(j);
  const std::string out = c.slow_json();
  EXPECT_NE(out.find("\"completed\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"retained\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"trace\": \"00000000000000ab\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"op\": \"put\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"backend_ns\": 800"), std::string::npos) << out;
  EXPECT_NE(out.find("\"total_ns\": 1900"), std::string::npos) << out;
  // One journey object per line, and the payload terminates cleanly: the
  // line-oriented consumer (darray-trace --journeys) depends on both.
  EXPECT_EQ(out.substr(out.size() - 3), "]}\n") << out;
  size_t lines = 0;
  for (const char ch : out)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 3u) << out;  // header, one journey, terminator
}

TEST(JourneyCollectorTest, ResetClearsEverything) {
  JourneyCollector c;
  c.configure(true, 8, 1);
  c.complete(make_journey(1, 1000, 10, 10, 10, 10, 10));
  ASSERT_EQ(c.completed(), 1u);
  ASSERT_EQ(c.retained(), 1u);
  c.reset();
  EXPECT_EQ(c.completed(), 0u);
  EXPECT_EQ(c.retained(), 0u);
  EXPECT_EQ(c.threshold_ns(), 0u);
  EXPECT_EQ(c.e2e_snapshot().count, 0u);
  EXPECT_TRUE(c.snapshot_retained().empty());
  EXPECT_TRUE(c.enabled());  // reset clears data, not policy
}

// --- exemplars ---------------------------------------------------------------

TEST(ExemplarLookup, BucketKeyedLookupFindsRetainedJourney) {
  JourneyCollector c;
  c.configure(true, 8, 1);
  const uint64_t backend = 1'000'000;
  c.complete(make_journey(0xbeef, 1000, 100, 200, backend, 300, 150));
  JourneyCollector::Exemplar ex;
  ASSERT_TRUE(
      c.exemplar_for(JourneyStage::kBackend, AtomicLatencyHistogram::bucket_index(backend), ex));
  EXPECT_EQ(ex.trace, 0xbeefu);
  EXPECT_EQ(ex.value_ns, backend);
  // A stage that retained nothing in this bucket has no exemplar.
  EXPECT_FALSE(
      c.exemplar_for(JourneyStage::kNet, AtomicLatencyHistogram::bucket_index(backend), ex));
}

TEST(ExemplarLookup, UpperKeyedLookupStaysWithinBucket) {
  JourneyCollector c;
  c.configure(true, 8, 1);
  const uint64_t backend = 1'000'000;  // log-linear row: upper is exclusive
  const uint64_t admit = 5;            // linear row: upper is inclusive
  c.complete(make_journey(0xcafe, 1000, admit, 200, backend, 300, 150));

  JourneyCollector::Exemplar ex;
  const int bkt = AtomicLatencyHistogram::bucket_index(backend);
  const uint64_t upper = AtomicLatencyHistogram::bucket_upper(bkt);
  ASSERT_TRUE(c.exemplar_for_upper(JourneyStage::kBackend, upper, ex));
  EXPECT_EQ(ex.value_ns, backend);
  // The exemplar's value must render under the le it is attached to
  // (OpenMetrics: an exemplar belongs to its bucket).
  EXPECT_EQ(AtomicLatencyHistogram::bucket_upper(
                AtomicLatencyHistogram::bucket_index(ex.value_ns)),
            upper);
  // The neighboring bucket's upper must NOT steal this exemplar.
  EXPECT_FALSE(c.exemplar_for_upper(JourneyStage::kBackend,
                                    AtomicLatencyHistogram::bucket_upper(bkt + 1), ex));

  // Linear-row value: upper == value (inclusive edge).
  const uint64_t admit_upper =
      AtomicLatencyHistogram::bucket_upper(AtomicLatencyHistogram::bucket_index(admit));
  ASSERT_TRUE(c.exemplar_for_upper(JourneyStage::kAdmit, admit_upper, ex));
  EXPECT_EQ(ex.value_ns, admit);
}

TEST(ExemplarRender, MetricsBucketLinesCarryTraceIds) {
  // render_prometheus reads the process-global collector, so this test uses it
  // (each ctest entry is its own process; no cross-test bleed).
  JourneyCollector& c = journey_collector();
  c.reset();
  c.configure(true, 16, 1);
  const uint64_t backend = 1'000'000;
  c.complete(make_journey(0x1234abcd, 1000, 100, 200, backend, 300, 150));

  const uint64_t upper =
      AtomicLatencyHistogram::bucket_upper(AtomicLatencyHistogram::bucket_index(backend));
  StatsSnapshot s;
  s.add("hist.stage.backend.count", 1);
  s.add("hist.stage.backend.sum_ns", backend);
  s.add("hist.stage.backend.bkt_" + std::to_string(upper), 1);

  const std::string with = render_prometheus(s, /*exemplars=*/true);
  const std::string expect = "le=\"" + std::to_string(upper) +
                             "\"} 1 # {trace_id=\"000000001234abcd\"} " +
                             std::to_string(backend);
  EXPECT_NE(with.find("# TYPE darray_stage_latency_ns histogram"), std::string::npos)
      << with;
  EXPECT_NE(with.find(expect), std::string::npos) << with;

  const std::string without = render_prometheus(s, /*exemplars=*/false);
  EXPECT_EQ(without.find("trace_id"), std::string::npos) << without;
  c.reset();
  c.configure(false, 16, 0);
}

}  // namespace
}  // namespace darray::obs
