// DutyCycle: busy/idle/park accounting across park-unpark cycles, the
// never-ran and stopped states, and concurrent sample() against the owning
// thread (single-writer contract) — the latter matters under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/duty_cycle.hpp"

namespace darray::obs {
namespace {

TEST(DutyCycle, NeverStartedSamplesAllZero) {
  DutyCycle d;
  const DutyStats s = d.sample();
  EXPECT_EQ(s.busy_ns, 0u);
  EXPECT_EQ(s.idle_ns, 0u);
  EXPECT_EQ(s.parks, 0u);
  EXPECT_EQ(s.busy_fraction(), 0.0);
}

TEST(DutyCycle, ParkUnparkCyclesAccumulateIdleAndParks) {
  DutyCycle d;
  d.on_start();
  for (int i = 0; i < 3; ++i) {
    const uint64_t t0 = d.park_begin();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    d.park_end(t0);
  }
  d.on_stop();
  const DutyStats s = d.sample();
  EXPECT_EQ(s.parks, 3u);
  EXPECT_GE(s.idle_ns, 3u * 1'000'000u);  // ≥ 3 × ~2 ms parked (timer slack)
  // busy = wall - idle: the loop body between parks is cheap but nonzero,
  // and never exceeds the wall clock.
  EXPECT_LE(s.busy_ns + s.idle_ns, now_ns());
  EXPECT_GT(s.busy_fraction(), 0.0);
  EXPECT_LT(s.busy_fraction(), 1.0);
}

TEST(DutyCycle, StoppedCycleIsFrozen) {
  DutyCycle d;
  d.on_start();
  const uint64_t t0 = d.park_begin();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  d.park_end(t0);
  d.on_stop();
  const DutyStats a = d.sample();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const DutyStats b = d.sample();  // wall stopped advancing at on_stop()
  EXPECT_EQ(a.busy_ns, b.busy_ns);
  EXPECT_EQ(a.idle_ns, b.idle_ns);
  EXPECT_EQ(a.parks, b.parks);
}

TEST(DutyCycle, BusyOnlyThreadReportsFullDuty) {
  DutyCycle d;
  d.on_start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  d.on_stop();
  const DutyStats s = d.sample();
  EXPECT_EQ(s.parks, 0u);
  EXPECT_EQ(s.idle_ns, 0u);
  EXPECT_GT(s.busy_ns, 0u);
  EXPECT_EQ(s.busy_fraction(), 1.0);
}

// The single-writer / many-sampler contract: one thread parks and unparks in
// a tight loop while samplers hammer sample(). Checked properties: parks
// never runs backwards across samples, idle never exceeds the wall clock by
// more than one in-progress park, and (under TSan) no data race is flagged.
TEST(DutyCycle, ConcurrentSampleDuringParkCycles) {
  DutyCycle d;
  std::atomic<bool> stop{false};

  std::thread owner([&] {
    d.on_start();
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t t0 = d.park_begin();
      std::this_thread::yield();
      d.park_end(t0);
    }
    d.on_stop();
  });

  std::thread samplers[2];
  for (auto& t : samplers) {
    t = std::thread([&] {
      uint64_t last_parks = 0;
      uint64_t last_idle = 0;
      for (int i = 0; i < 5000; ++i) {
        const DutyStats s = d.sample();
        EXPECT_GE(s.parks, last_parks);
        EXPECT_GE(s.idle_ns, last_idle);
        last_parks = s.parks;
        last_idle = s.idle_ns;
      }
    });
  }
  for (auto& t : samplers) t.join();
  stop.store(true, std::memory_order_relaxed);
  owner.join();

  const DutyStats fin = d.sample();
  EXPECT_GT(fin.parks, 0u);
  EXPECT_LE(fin.busy_ns + fin.idle_ns, now_ns());
}

}  // namespace
}  // namespace darray::obs
