// Sampling profiler (obs v5): ring wrap accounting, thread registration,
// live cpu/wall sessions against registered spinner threads, collapsed-stack
// rendering, and the offline dump format round-trip.
//
// Sessions are process-wide (one SIGPROF disposition), so every test that
// starts one stops it before returning; gtest runs tests in one process
// sequentially, which serializes them naturally.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/thread_registry.hpp"
#include "obs/trace.hpp"  // OpKind

namespace darray::obs {
namespace {

TEST(ProfilerRing, WrapKeepsNewestAndCountsDrops) {
  ProfileRing ring(/*min_samples=*/4, /*max_frames=*/4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    const uintptr_t pcs[2] = {static_cast<uintptr_t>(0x1000 + i), 0x2000};
    ring.push(/*phase=*/1, /*op=*/kProfNoOp, pcs, 2);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<ProfileRing::Sample> got = ring.collect();
  ASSERT_EQ(got.size(), 4u);
  // Oldest retained sample is push #6 (0-based), newest is #9.
  EXPECT_EQ(got.front().pcs[0], 0x1000u + 6);
  EXPECT_EQ(got.back().pcs[0], 0x1000u + 9);
  EXPECT_EQ(got.back().phase, 1);
  EXPECT_EQ(got.back().op, kProfNoOp);
  EXPECT_EQ(got.back().pcs.size(), 2u);
}

TEST(ProfilerRing, FrameCountClampedToBudget) {
  ProfileRing ring(4, /*max_frames=*/2);
  const uintptr_t pcs[5] = {0x10, 0x20, 0x30, 0x40, 0x50};
  ring.push(0, kProfNoOp, pcs, 5);
  const auto got = ring.collect();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].pcs.size(), 2u);  // silently truncated, leaf kept first
  EXPECT_EQ(got[0].pcs[0], 0x10u);
}

TEST(ProfilerRegistry, RegisterIsIdempotentAndRenames) {
  ThreadEntry* e1 = register_current_thread("prof.test");
  ASSERT_NE(e1, nullptr);
  EXPECT_STREQ(current_thread_name(), "prof.test");
  EXPECT_NE(e1->tid, 0u);
  ThreadEntry* e2 = register_current_thread("prof.renamed");
  EXPECT_EQ(e1, e2);  // same entry, renamed in place
  EXPECT_STREQ(current_thread_name(), "prof.renamed");
  // Registered entries are visible to the global walk.
  bool found = false;
  for (const ThreadEntry* te : all_thread_entries())
    if (te == e1) found = true;
  EXPECT_TRUE(found);
}

TEST(ProfilerStart, RejectsUnusableOptions) {
  ProfilerOptions bad_hz;
  bad_hz.hz = 0;
  EXPECT_FALSE(profiler_start(bad_hz));
  bad_hz.hz = 5000;
  EXPECT_FALSE(profiler_start(bad_hz));
  ProfilerOptions bad_frames;
  bad_frames.max_frames = 1;
  EXPECT_FALSE(profiler_start(bad_frames));
  ProfilerOptions bad_ring;
  bad_ring.ring_samples = 8;
  EXPECT_FALSE(profiler_start(bad_ring));
  EXPECT_FALSE(profiler_running());
}

// A registered spinner burning real CPU so ITIMER_PROF deliveries land on it.
struct Spinner {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::thread t;

  explicit Spinner(const char* name) {
    t = std::thread([this, name] {
      register_current_thread(name);
      set_prof_phase(ProfPhase::kBusy);
      uint64_t x = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 2862933555777941757ull + 3037000493ull;
        sink.store(x, std::memory_order_relaxed);
      }
    });
  }
  ~Spinner() {
    stop.store(true);
    t.join();
  }
};

TEST(ProfilerCpuSession, SamplesABusyRegisteredThread) {
  Spinner spin("prof.spin");
  ProfilerOptions po;
  po.hz = 997;  // dense sampling keeps the test short
  ASSERT_TRUE(profiler_start(po));
  EXPECT_TRUE(profiler_running());
  EXPECT_FALSE(profiler_start(po));  // one session at a time

  // Wait until samples arrive (bounded: CI machines can be slow).
  ProfileTotals t;
  for (int i = 0; i < 400; ++i) {
    t = profile_totals();
    if (t.samples >= 5) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  profiler_stop();
  EXPECT_FALSE(profiler_running());
  t = profile_totals();
  EXPECT_GE(t.signals, t.samples);
  ASSERT_GT(t.samples, 0u) << "no SIGPROF samples on a spinning thread";
  EXPECT_GT(t.rings, 0u);

  // The spinner's cell must fold under its registered name and busy phase.
  bool spin_seen = false;
  for (const ProfileStack& s : collect_profile()) {
    ASSERT_NE(s.thread, nullptr);
    if (std::string(s.thread->name) == "prof.spin") {
      spin_seen = true;
      EXPECT_EQ(s.phase, static_cast<uint8_t>(ProfPhase::kBusy));
      EXPECT_FALSE(s.pcs.empty());
      EXPECT_GT(s.count, 0u);
    }
  }
  EXPECT_TRUE(spin_seen);

  const std::string folded = profiler_collapsed();
  EXPECT_NE(folded.find("prof.spin;(busy)"), std::string::npos) << folded;
}

TEST(ProfilerWallSession, TickerSamplesRegisteredThreads) {
  Spinner spin("prof.wall");
  ProfilerOptions po;
  po.mode = ProfileMode::kWall;
  po.hz = 199;
  ASSERT_TRUE(profiler_start(po));
  ProfileTotals t;
  for (int i = 0; i < 400; ++i) {
    t = profile_totals();
    if (t.samples >= 5) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  profiler_stop();
  t = profile_totals();
  EXPECT_GT(t.samples, 0u) << "wall ticker produced no samples";
}

TEST(ProfilerOpTag, OpScopeShowsUpInTheFold) {
  std::atomic<bool> stop{false};
  std::thread t([&] {
    register_current_thread("prof.op");
    set_prof_phase(ProfPhase::kBusy);
    ProfOpScope scope(static_cast<uint8_t>(OpKind::kGet));
    uint64_t x = 1;
    while (!stop.load(std::memory_order_relaxed)) x = x * 6364136223846793005ull + 1;
    if (x == 42) std::printf("?");  // keep the loop alive under -O3
  });
  ProfilerOptions po;
  po.hz = 997;
  ASSERT_TRUE(profiler_start(po));
  for (int i = 0; i < 400; ++i) {
    bool seen = false;
    for (const ProfileStack& s : collect_profile())
      if (std::string(s.thread->name) == "prof.op" &&
          s.op == static_cast<uint8_t>(OpKind::kGet))
        seen = true;
    if (seen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  profiler_stop();
  stop.store(true);
  t.join();
  const std::string folded = profiler_collapsed();
  EXPECT_NE(folded.find("prof.op;(busy:get)"), std::string::npos) << folded;
}

TEST(ProfilerDump, WritesParseableV1Dump) {
  Spinner spin("prof.dump");
  ProfilerOptions po;
  po.hz = 997;
  ASSERT_TRUE(profiler_start(po));
  for (int i = 0; i < 400; ++i) {
    if (profile_totals().samples >= 5) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  profiler_stop();

  const std::string path =
      ::testing::TempDir() + "darray_profiler_test_dump.prof";
  ASSERT_TRUE(dump_profile(path.c_str()));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(contents.rfind("darray_profile v1\n", 0), 0u) << contents.substr(0, 200);
  EXPECT_NE(contents.find("mode cpu hz 997"), std::string::npos);
  EXPECT_NE(contents.find("totals samples "), std::string::npos);
  EXPECT_NE(contents.find("phase 1 busy"), std::string::npos);
  EXPECT_NE(contents.find("op 0 get"), std::string::npos);
  EXPECT_NE(contents.find("name prof.dump"), std::string::npos);
  EXPECT_NE(contents.find("\nmap "), std::string::npos);
  EXPECT_NE(contents.find("\nsym 0x"), std::string::npos);
  EXPECT_NE(contents.find("\nstack t"), std::string::npos);
}

TEST(ProfilerSymbols, SymbolizeResolvesOwnFunctions) {
  // A PC inside this very test body must at least resolve to the test
  // binary's module (dladdr may or may not find a dynamic symbol for a
  // static function, but it must never return an empty string).
  const std::string s =
      symbolize_pc(reinterpret_cast<uintptr_t>(&register_current_thread));
  EXPECT_FALSE(s.empty());
  // register_current_thread is an exported (non-static) symbol and the test
  // binary links with -rdynamic (CMAKE_ENABLE_EXPORTS): expect its name.
  EXPECT_NE(s.find("register_current_thread"), std::string::npos) << s;
}

}  // namespace
}  // namespace darray::obs
