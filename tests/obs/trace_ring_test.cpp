// TraceRing mechanics: wraparound, drop accounting, collect ordering, and the
// process-wide gate/corr-id helpers.
#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/trace.hpp"

namespace darray::obs {
namespace {

TraceEvent ev(uint64_t ts, uint64_t b) {
  TraceEvent e;
  e.ts_ns = ts;
  e.corr = 7;
  e.ev = Ev::kWrPost;
  e.kind = 3;
  e.node = 1;
  e.a = 42;
  e.b = b;
  return e;
}

TEST(TraceRing, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(4).capacity(), 4u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
}

TEST(TraceRing, CollectBelowCapacityKeepsEverythingInOrder) {
  TraceRing r(8);
  for (uint64_t i = 0; i < 5; ++i) r.push(ev(100 + i, i));
  EXPECT_EQ(r.pushed(), 5u);
  EXPECT_EQ(r.dropped(), 0u);
  const std::vector<TraceEvent> got = r.collect();
  ASSERT_EQ(got.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].ts_ns, 100 + i);
    EXPECT_EQ(got[i].b, i);
    EXPECT_EQ(got[i].corr, 7u);
    EXPECT_EQ(got[i].ev, Ev::kWrPost);
    EXPECT_EQ(got[i].kind, 3u);
    EXPECT_EQ(got[i].node, 1u);
    EXPECT_EQ(got[i].a, 42u);
  }
}

TEST(TraceRing, WraparoundKeepsTheNewestAndCountsDrops) {
  TraceRing r(4);
  ASSERT_EQ(r.capacity(), 4u);
  for (uint64_t i = 0; i < 11; ++i) r.push(ev(i, i));
  EXPECT_EQ(r.pushed(), 11u);
  EXPECT_EQ(r.dropped(), 7u);  // 11 pushed - 4 retained
  const std::vector<TraceEvent> got = r.collect();
  ASSERT_EQ(got.size(), 4u);
  // The survivors are the last 4, oldest first.
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].b, 7 + i);
}

TEST(TraceRing, CollectStampsTheRingId) {
  TraceRing r(4);
  EXPECT_EQ(r.id(), 0u);  // standalone rings default to 0
  r.set_id(17);
  EXPECT_EQ(r.id(), 17u);
  r.push(ev(1, 1));
  r.push(ev(2, 2));
  for (const TraceEvent& e : r.collect()) EXPECT_EQ(e.ring, 17u);
}

TEST(TraceRing, ResetForgetsHistory) {
  TraceRing r(4);
  for (uint64_t i = 0; i < 9; ++i) r.push(ev(i, i));
  r.reset();
  EXPECT_EQ(r.pushed(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_TRUE(r.collect().empty());
  r.push(ev(1, 1));
  EXPECT_EQ(r.collect().size(), 1u);
}

#if DARRAY_TRACING

TEST(TraceGate, RuntimeFlagGatesRecording) {
  set_tracing(false);
  EXPECT_FALSE(tracing_enabled());
  const uint64_t before = trace_totals().recorded;
  trace(Ev::kMiss, 1, 0, 0, 0, 0);  // gated off: must not record
  EXPECT_EQ(trace_totals().recorded, before);
  set_tracing(true);
  trace(Ev::kMiss, 1, 0, 0, 0, 0);
  EXPECT_EQ(trace_totals().recorded, before + 1);
  set_tracing(false);
}

TEST(TraceGate, CorrIdsAreUniqueAcrossThreads) {
  std::vector<std::vector<uint64_t>> per_thread(4);
  std::vector<std::thread> ts;
  for (size_t t = 0; t < per_thread.size(); ++t) {
    ts.emplace_back([&ids = per_thread[t]] {
      for (int i = 0; i < 1000; ++i) ids.push_back(new_corr_id());
    });
  }
  for (auto& t : ts) t.join();
  std::unordered_set<uint64_t> all;
  for (const auto& ids : per_thread)
    for (uint64_t id : ids) {
      EXPECT_NE(id, 0u);  // 0 is reserved for "not attributed"
      EXPECT_TRUE(all.insert(id).second) << "duplicate corr id " << id;
    }
}

// Per-ring accounting behind the honest-drops fix in darray-trace: every
// registered ring reports its own pushed/dropped counts under a unique id,
// and the per-ring rows sum to the aggregate totals.
TEST(TraceRingInfos, PerRingRowsSumToTotalsWithUniqueIds) {
  reset_trace();
  set_tracing(true);
  // This thread records (registering its ring on first use), as do two
  // short-lived workers; rings from earlier tests persist but were reset.
  trace(Ev::kMiss, 1, 0, 0, 0, 0);
  std::vector<std::thread> ts;
  for (int w = 0; w < 2; ++w)
    ts.emplace_back([] {
      for (int i = 0; i < 10; ++i) trace(Ev::kWrPost, 2, 0, 0, 0, 0);
    });
  for (auto& t : ts) t.join();
  set_tracing(false);

  const TraceTotals totals = trace_totals();
  const std::vector<TraceRingInfo> infos = trace_ring_infos();
  ASSERT_GE(infos.size(), 3u);
  EXPECT_EQ(infos.size(), totals.rings);
  std::unordered_set<uint16_t> ids;
  uint64_t pushed = 0, retained = 0, dropped = 0;
  for (const TraceRingInfo& ri : infos) {
    EXPECT_TRUE(ids.insert(ri.id).second) << "duplicate ring id " << ri.id;
    pushed += ri.pushed;
    retained += ri.retained;
    dropped += ri.dropped;
  }
  EXPECT_EQ(pushed, totals.recorded);
  EXPECT_EQ(retained, totals.retained);
  EXPECT_EQ(dropped, totals.dropped);
  EXPECT_EQ(pushed, 21u);

  // Collected events carry their ring id, and those ids are registered ones.
  for (const TraceEvent& e : collect_trace()) EXPECT_TRUE(ids.count(e.ring)) << e.ring;
  reset_trace();
}

#endif  // DARRAY_TRACING

}  // namespace
}  // namespace darray::obs
