// The dentry's reference/delay machinery in isolation (paper Fig. 4/5/6).
#include "runtime/dentry.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace darray::rt {
namespace {

TEST(Dentry, InitialState) {
  Dentry d;
  EXPECT_EQ(d.state.load(), DentryState::kInvalid);
  EXPECT_FALSE(d.delay.load());
  EXPECT_TRUE(d.drained());
}

TEST(Dentry, AcquireReleaseBalance) {
  Dentry d;
  d.acquire_ref();
  d.acquire_ref();
  EXPECT_FALSE(d.drained());
  d.release_ref();
  EXPECT_FALSE(d.drained());
  d.release_ref();
  EXPECT_TRUE(d.drained());
}

TEST(Dentry, BeginDrainInstallsTargetAndBlocks) {
  Dentry d;
  d.promote(DentryState::kRead);
  d.begin_drain(DentryState::kInvalid);
  EXPECT_TRUE(d.delay.load());
  EXPECT_EQ(d.state.load(), DentryState::kInvalid);  // Fig. 5 ②: state first
  d.finish_drain();
  EXPECT_FALSE(d.delay.load());
}

TEST(Dentry, AcquireWaitsOutDelay) {
  Dentry d;
  d.begin_drain(DentryState::kRead);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    d.acquire_ref();  // must block until finish_drain
    acquired.store(true);
    d.release_ref();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load()) << "acquire_ref slipped past the delay flag";
  d.finish_drain();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Dentry, ReleaseWakesDrainingRuntime) {
  Dentry d;
  Doorbell bell;
  d.owner_bell = &bell;
  d.acquire_ref();
  d.begin_drain(DentryState::kInvalid);  // runtime wants the chunk
  const uint32_t snap = bell.snapshot();
  std::thread t([&] { d.release_ref(); });  // last release must ring
  bell.wait_change(snap);                   // must not hang
  t.join();
  EXPECT_TRUE(d.drained());
}

TEST(Dentry, ReleaseWithoutDelayDoesNotRing) {
  Dentry d;
  Doorbell bell;
  d.owner_bell = &bell;
  const uint32_t snap = bell.snapshot();
  d.acquire_ref();
  d.release_ref();
  EXPECT_EQ(bell.snapshot(), snap) << "fast path must not wake the runtime";
}

TEST(Dentry, PromoteSkipsDrain) {
  Dentry d;
  d.promote(DentryState::kRead);
  d.acquire_ref();  // an active reader
  d.promote(DentryState::kWrite);  // Fig. 6: no synchronisation needed
  EXPECT_EQ(d.state.load(), DentryState::kWrite);
  EXPECT_FALSE(d.delay.load());
  d.release_ref();
}

}  // namespace
}  // namespace darray::rt
