#include "runtime/array_meta.hpp"

#include <gtest/gtest.h>

namespace darray::rt {
namespace {

ArrayMeta make_meta(uint64_t n_elems, uint32_t nodes, uint32_t chunk_elems = 512,
                    uint32_t elem_size = 8) {
  ArrayMeta m;
  m.n_elems = n_elems;
  m.elem_size = elem_size;
  m.chunk_elems = chunk_elems;
  m.n_chunks = (n_elems + chunk_elems - 1) / chunk_elems;
  m.chunk_begin.resize(nodes + 1);
  m.elem_begin.resize(nodes + 1);
  for (uint32_t i = 0; i <= nodes; ++i) {
    m.chunk_begin[i] = m.n_chunks * i / nodes;
    m.elem_begin[i] = std::min<uint64_t>(m.chunk_begin[i] * chunk_elems, n_elems);
  }
  m.elem_begin[nodes] = n_elems;
  m.subarrays.resize(nodes);
  return m;
}

TEST(ArrayMeta, ChunkAndOffset) {
  ArrayMeta m = make_meta(10000, 4);
  EXPECT_EQ(m.chunk_of(0), 0u);
  EXPECT_EQ(m.chunk_of(511), 0u);
  EXPECT_EQ(m.chunk_of(512), 1u);
  EXPECT_EQ(m.offset_in_chunk(512), 0u);
  EXPECT_EQ(m.offset_in_chunk(515), 3u);
}

TEST(ArrayMeta, HomeCoversAllChunksMonotonically) {
  ArrayMeta m = make_meta(512 * 40, 6);
  NodeId prev = 0;
  for (ChunkId c = 0; c < m.n_chunks; ++c) {
    const NodeId h = m.home_of_chunk(c);
    ASSERT_LT(h, 6u);
    ASSERT_GE(h, prev);
    prev = h;
    // Consistency with elem_begin:
    const uint64_t e = c * m.chunk_elems;
    EXPECT_GE(e, m.elem_begin[h]);
    EXPECT_LT(e, m.elem_begin[h + 1]);
  }
}

TEST(ArrayMeta, EvenSplitIsBalanced) {
  ArrayMeta m = make_meta(512 * 12, 4);
  for (uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(m.chunk_begin[i + 1] - m.chunk_begin[i], 3u);
}

TEST(ArrayMeta, PartialLastChunk) {
  ArrayMeta m = make_meta(1000, 2);  // 2 chunks: 512 + 488
  EXPECT_EQ(m.n_chunks, 2u);
  EXPECT_EQ(m.elems_in_chunk(0), 512u);
  EXPECT_EQ(m.elems_in_chunk(1), 488u);
}

TEST(ArrayMeta, SingleNodeOwnsEverything) {
  ArrayMeta m = make_meta(5000, 1);
  for (ChunkId c = 0; c < m.n_chunks; ++c) EXPECT_EQ(m.home_of_chunk(c), 0u);
  EXPECT_EQ(m.local_begin(0), 0u);
  EXPECT_EQ(m.local_end(0), 5000u);
}

TEST(ArrayMeta, HomeChunkAddr) {
  ArrayMeta m = make_meta(512 * 4, 2);
  m.subarrays[0] = {1000, 1};
  m.subarrays[1] = {9000, 2};
  EXPECT_EQ(m.home_chunk_addr(0), 1000u);
  EXPECT_EQ(m.home_chunk_addr(1), 1000u + 512 * 8);
  EXPECT_EQ(m.home_chunk_addr(2), 9000u);
  EXPECT_EQ(m.home_chunk_addr(3), 9000u + 512 * 8);
}

TEST(ArrayMeta, MoreNodesThanChunks) {
  ArrayMeta m = make_meta(100, 4);  // one chunk, four nodes
  EXPECT_EQ(m.n_chunks, 1u);
  // Under the n_chunks*i/nodes split, the single chunk falls to the last
  // node; the earlier nodes own empty ranges.
  EXPECT_EQ(m.home_of_chunk(0), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(m.local_begin(i), m.local_end(i));
  EXPECT_EQ(m.local_begin(3), 0u);
  EXPECT_EQ(m.local_end(3), 100u);
}

}  // namespace
}  // namespace darray::rt
