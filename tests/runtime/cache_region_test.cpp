#include "runtime/cache_region.hpp"

#include <gtest/gtest.h>

#include "rdma/fabric.hpp"

namespace darray::rt {
namespace {

ClusterConfig cfg_with(uint32_t lines, uint32_t chunk_elems = 64) {
  ClusterConfig cfg;
  cfg.cachelines_per_region = lines;
  cfg.chunk_elems = chunk_elems;
  return cfg;
}

struct RegionFixture {
  rdma::Fabric fabric;
  rdma::Device* dev = fabric.create_device(0);
};

TEST(CacheRegion, AllocateUntilExhausted) {
  RegionFixture f;
  CacheRegion region(f.dev, cfg_with(4));
  EXPECT_EQ(region.capacity(), 4u);
  std::vector<CacheLine*> lines;
  for (int i = 0; i < 4; ++i) {
    CacheLine* l = region.allocate(0, static_cast<ChunkId>(i));
    ASSERT_NE(l, nullptr);
    EXPECT_TRUE(l->used);
    EXPECT_EQ(l->chunk, static_cast<ChunkId>(i));
    lines.push_back(l);
  }
  EXPECT_EQ(region.allocate(0, 99), nullptr);
  EXPECT_EQ(region.free_count(), 0u);
  region.free(lines[2]);
  EXPECT_EQ(region.free_count(), 1u);
  EXPECT_NE(region.allocate(0, 100), nullptr);
}

TEST(CacheRegion, BuffersAreDistinctAndSized) {
  RegionFixture f;
  const uint32_t chunk_elems = 64;
  CacheRegion region(f.dev, cfg_with(8, chunk_elems));
  CacheLine* a = region.allocate(0, 0);
  CacheLine* b = region.allocate(0, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Data and combine areas must not overlap between or within lines.
  EXPECT_NE(a->data, b->data);
  EXPECT_EQ(a->combine_slots, a->data + chunk_elems * 8);
  const auto dist = a->data < b->data ? b->data - a->data : a->data - b->data;
  EXPECT_GE(static_cast<size_t>(dist), size_t{chunk_elems} * 8 * 2);
  // Buffers are registered: writes must not fault and bitmap is aligned.
  a->data[0] = std::byte{1};
  a->bitmap[0].store(5, std::memory_order_relaxed);
  EXPECT_EQ(a->bitmap[0].load(std::memory_order_relaxed), 5u);
}

TEST(CacheRegion, WatermarksTrack) {
  RegionFixture f;
  ClusterConfig cfg = cfg_with(10);
  cfg.low_watermark = 0.3;
  cfg.high_watermark = 0.5;
  CacheRegion region(f.dev, cfg);
  EXPECT_FALSE(region.below_low_watermark());
  std::vector<CacheLine*> lines;
  for (int i = 0; i < 8; ++i) lines.push_back(region.allocate(0, static_cast<ChunkId>(i)));
  // 2 of 10 free = 20% < 30%.
  EXPECT_TRUE(region.below_low_watermark());
  EXPECT_EQ(region.high_watermark_count(), 5u);
  region.free(lines[0]);
  region.free(lines[1]);
  // 4 free = 40% >= 30%.
  EXPECT_FALSE(region.below_low_watermark());
}

TEST(CacheRegion, PendingReleaseWaitsForTxFlag) {
  RegionFixture f;
  CacheRegion region(f.dev, cfg_with(2));
  CacheLine* l = region.allocate(0, 0);
  ASSERT_NE(l, nullptr);
  l->tx_posted.store(0, std::memory_order_release);  // pretend a WRITE is queued
  region.free_when_posted(l);
  EXPECT_EQ(region.free_count(), 2u);  // counted as free capacity...
  EXPECT_FALSE(region.tick_pending_releases());
  // ...but not allocatable until the Tx thread posts the data.
  CacheLine* a = region.allocate(0, 1);
  CacheLine* b = region.allocate(0, 2);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(b, nullptr) << "pending line must not be recycled yet";
  l->tx_posted.store(1, std::memory_order_release);
  EXPECT_TRUE(region.tick_pending_releases());
  EXPECT_NE(region.allocate(0, 3), nullptr);
}

TEST(CacheRegion, ScanSlotsCoverCapacity) {
  RegionFixture f;
  CacheRegion region(f.dev, cfg_with(4));
  for (size_t i = 0; i < region.capacity(); ++i) {
    CacheLine& l = region.slot(i);
    EXPECT_FALSE(l.used);
    EXPECT_NE(l.data, nullptr);
  }
}

}  // namespace
}  // namespace darray::rt
