// ClusterConfig::validate(): defaults pass; each broken knob produces a
// descriptive, non-empty message naming the field.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "tests/test_util.hpp"

namespace darray::rt {
namespace {

TEST(ConfigValidate, DefaultAndSmallConfigsAreValid) {
  EXPECT_EQ(ClusterConfig{}.validate(), "");
  EXPECT_EQ(darray::testing::small_cfg(2).validate(), "");
  EXPECT_EQ(darray::testing::small_cfg(64).validate(), "");
}

TEST(ConfigValidate, EachBadFieldIsNamedInTheMessage) {
  const auto expect_mentions = [](const ClusterConfig& cfg, const char* field) {
    const std::string err = cfg.validate();
    ASSERT_FALSE(err.empty()) << "expected a complaint about " << field;
    EXPECT_NE(err.find(field), std::string::npos) << "got: " << err;
  };

  ClusterConfig cfg;
  cfg.num_nodes = 0;
  expect_mentions(cfg, "num_nodes");
  cfg = {};
  cfg.num_nodes = 65;
  expect_mentions(cfg, "num_nodes");
  cfg = {};
  cfg.runtime_threads_per_node = 0;
  expect_mentions(cfg, "runtime_threads_per_node");
  cfg = {};
  cfg.chunk_elems = 0;
  expect_mentions(cfg, "chunk_elems");
  cfg = {};
  cfg.cachelines_per_region = 0;
  expect_mentions(cfg, "cachelines_per_region");
  cfg = {};
  cfg.low_watermark = 0.9;
  cfg.high_watermark = 0.5;
  expect_mentions(cfg, "watermark");
  cfg = {};
  cfg.high_watermark = 1.5;
  expect_mentions(cfg, "high_watermark");
  cfg = {};
  cfg.low_watermark = -0.1;
  expect_mentions(cfg, "low_watermark");
  cfg = {};
  cfg.qp_depth = 0;
  expect_mentions(cfg, "qp_depth");
  cfg = {};
  cfg.selective_signal_interval = 0;
  expect_mentions(cfg, "selective_signal_interval");
  cfg = {};
  cfg.selective_signal_interval = cfg.qp_depth + 1;
  expect_mentions(cfg, "selective_signal_interval");
  cfg = {};
  cfg.coalesce_enabled = true;
  cfg.coalesce_max_frames = 0;
  expect_mentions(cfg, "coalesce_max_frames");
  cfg = {};
  cfg.comm_max_attempts = 0;
  expect_mentions(cfg, "comm_max_attempts");
  cfg = {};
  cfg.comm_backoff_base_ns = cfg.comm_backoff_cap_ns + 1;
  expect_mentions(cfg, "comm_backoff");
  cfg = {};
  cfg.telemetry_enabled = true;
  cfg.telemetry_sample_ns = 500'000;  // below the 1 ms floor
  expect_mentions(cfg, "telemetry_sample_ns");
  cfg = {};
  cfg.telemetry_enabled = true;
  cfg.telemetry_ring_samples = 1;
  expect_mentions(cfg, "telemetry_ring_samples");
  cfg = {};
  cfg.telemetry_serve = true;  // without the sampler
  expect_mentions(cfg, "telemetry_serve");
  cfg = {};
  cfg.profiler_enabled = true;
  cfg.profiler_hz = 0;
  expect_mentions(cfg, "profiler_hz");
  cfg = {};
  cfg.profiler_enabled = true;
  cfg.profiler_hz = 2000;  // above the 1 kHz handler-overhead ceiling
  expect_mentions(cfg, "profiler_hz");
  cfg = {};
  cfg.profiler_enabled = true;
  cfg.profiler_max_frames = 1;
  expect_mentions(cfg, "profiler_max_frames");
  cfg = {};
  cfg.profiler_enabled = true;
  cfg.profiler_max_frames = 65;
  expect_mentions(cfg, "profiler_max_frames");
  cfg = {};
  cfg.profiler_enabled = true;
  cfg.profiler_ring_samples = 8;  // wraps within one aggregation interval
  expect_mentions(cfg, "profiler_ring_samples");
}

TEST(ConfigValidate, ProfilerKnobsOnlyCheckedWhenEnabled) {
  ClusterConfig cfg;
  cfg.profiler_hz = 0;  // ignored while the profiler is off
  cfg.profiler_max_frames = 0;
  cfg.profiler_ring_samples = 0;
  EXPECT_EQ(cfg.validate(), "");
  cfg.profiler_enabled = true;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigValidate, TelemetryKnobsOnlyCheckedWhenEnabled) {
  ClusterConfig cfg;
  cfg.telemetry_sample_ns = 0;  // ignored while telemetry is off
  cfg.telemetry_ring_samples = 0;
  EXPECT_EQ(cfg.validate(), "");
  cfg.telemetry_enabled = true;
  EXPECT_NE(cfg.validate(), "");
}

TEST(ConfigValidate, ReportsTheFirstProblemOnly) {
  ClusterConfig cfg;
  cfg.num_nodes = 0;
  cfg.qp_depth = 0;
  const std::string err = cfg.validate();
  EXPECT_NE(err.find("num_nodes"), std::string::npos) << "got: " << err;
  EXPECT_EQ(err.find("qp_depth"), std::string::npos) << "got: " << err;
}

}  // namespace
}  // namespace darray::rt
