// Runtime-layer counters: assert the *behavioural* claims of the paper's
// design through the telemetry rather than timing.
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray::rt {
namespace {

using darray::testing::small_cfg;

void add_u64(uint64_t& a, uint64_t v) { a += v; }

TEST(RuntimeStats, AccumulateAndAdd) {
  RuntimeStats a, b;
  a.fills = 3;
  a.evict_clean = 1;
  b.fills = 4;
  b.evict_writeback = 2;
  a += b;
  EXPECT_EQ(a.fills, 7u);
  EXPECT_EQ(a.total_evictions(), 3u);
}

TEST(RuntimeStats, FastPathHitsProduceNoMisses) {
  rt::Cluster cluster(small_cfg(2));
  auto arr = darray::DArray<uint64_t>::create(cluster, 256);
  std::thread t([&] {
    darray::bind_thread(cluster, 0);
    for (int rep = 0; rep < 10; ++rep)
      for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  EXPECT_EQ(cluster.runtime_stats().total_misses(), 0u)
      << "home accesses with full permission never enter the slow path";
}

TEST(RuntimeStats, MissesAreChunkGranular) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/64, /*cachelines=*/256));
  auto arr = darray::DArray<uint64_t>::create(cluster, 64 * 16);
  std::thread t([&] {
    darray::bind_thread(cluster, 1);
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  const RuntimeStats s = cluster.runtime_stats();
  const uint64_t chunks = (arr.local_end(0) - arr.local_begin(0)) / 64;
  EXPECT_GE(s.local_read_misses, 1u);  // prefetch absorbs most sequential misses
  EXPECT_LE(s.local_read_misses, 2 * chunks);
  EXPECT_GE(s.fills + 0, chunks);  // every chunk filled exactly once (+prefetch)
}

TEST(RuntimeStats, PrefetchIssuedOnSequentialMisses) {
  rt::ClusterConfig cfg = small_cfg(2, 64, 256);
  cfg.prefetch_chunks = 2;
  rt::Cluster cluster(cfg);
  auto arr = darray::DArray<uint64_t>::create(cluster, 64 * 16);
  std::thread t([&] {
    darray::bind_thread(cluster, 1);
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  EXPECT_GT(cluster.runtime_stats().prefetches_issued, 0u);
}

TEST(RuntimeStats, PrefetchDisabledIssuesNone) {
  rt::ClusterConfig cfg = small_cfg(2, 64, 256);
  cfg.prefetch_chunks = 0;
  rt::Cluster cluster(cfg);
  auto arr = darray::DArray<uint64_t>::create(cluster, 64 * 8);
  std::thread t([&] {
    darray::bind_thread(cluster, 1);
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  EXPECT_EQ(cluster.runtime_stats().prefetches_issued, 0u);
}

TEST(RuntimeStats, EvictionKindsMatchUsage) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/16, /*cachelines=*/8));
  auto arr = darray::DArray<uint64_t>::create(cluster, 16 * 64);
  const auto add = arr.register_op(&add_u64, 0);
  std::thread t([&] {
    darray::bind_thread(cluster, 1);
    // Read sweep: clean evictions.
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
    // Write sweep: writeback evictions.
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) arr.set(i, i);
    // Operate sweep: op-flush evictions.
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) arr.apply(i, add, 1);
  });
  t.join();
  const RuntimeStats s = cluster.runtime_stats();
  EXPECT_GT(s.evict_clean, 0u);
  EXPECT_GT(s.evict_writeback, 0u);
  EXPECT_GT(s.evict_opflush, 0u);
}

TEST(RuntimeStats, LockWaitsUnderContention) {
  rt::Cluster cluster(small_cfg(2));
  auto arr = darray::DArray<uint64_t>::create(cluster, 64);
  darray::testing::run_on_nodes_mt(cluster, 2, [&](rt::NodeId, uint32_t) {
    for (int k = 0; k < 25; ++k) {
      arr.wlock(0);
      arr.set(0, arr.get(0) + 1);
      arr.unlock(0);
    }
  });
  const RuntimeStats s = cluster.runtime_stats();
  EXPECT_GT(s.lock_acquires, 0u);
  EXPECT_GT(s.lock_waits, 0u) << "four threads on one lock must queue sometimes";
}

}  // namespace
}  // namespace darray::rt
