// Coherence observability: a scripted miss -> invalidate -> operate ->
// combine-flush sequence across two nodes must light up the per-state
// directory transition counters (coherence.enter_*) and the combine-flush
// tally, with values that match what the protocol was forced to do.
#include <gtest/gtest.h>

#include "core/darray.hpp"
#include "obs/stats_registry.hpp"
#include "runtime/types.hpp"
#include "tests/test_util.hpp"

using namespace darray;
using darray::testing::small_cfg;

namespace {

// One app thread bound to `node` runs fn and joins.
void on_node(rt::Cluster& cluster, rt::NodeId node, const std::function<void()>& fn) {
  std::thread t([&] {
    bind_thread(cluster, node);
    fn();
  });
  t.join();
}

}  // namespace

TEST(CoherenceMetrics, DentryStateNamesCoverEveryState) {
  for (size_t i = 0; i < rt::kNumDentryStates; ++i) {
    const char* name = rt::dentry_state_name(static_cast<rt::DentryState>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
  }
}

TEST(CoherenceMetrics, ScriptedSequenceCountsEveryTransition) {
  rt::Cluster cluster(small_cfg(3));
  auto arr = DArray<uint64_t>::create(cluster, 256);
  const auto add = arr.register_op(+[](uint64_t& a, uint64_t v) { a += v; }, 0);
  const uint64_t idx = 3;  // in chunk 0, homed on node 0

  cluster.mark_stats_baseline("pre_script");

  // 1. Remote read misses: nodes 1 and 2 pull the chunk -> their cache-side
  //    dentries walk invalid -> pending_read -> read.
  on_node(cluster, 1, [&] { EXPECT_EQ(arr.get(idx), 0u); });
  on_node(cluster, 2, [&] { EXPECT_EQ(arr.get(idx), 0u); });
  {
    const obs::StatsSnapshot d = cluster.stats_delta_since("pre_script");
    EXPECT_GE(d.value_or("runtime.local_read_misses"), 2u);
    EXPECT_GE(d.value_or("runtime.fills"), 2u);
    EXPECT_GE(d.value_or("coherence.enter_pending_read"), 2u);
    EXPECT_GE(d.value_or("coherence.enter_read"), 2u);
    EXPECT_GE(d.value_or("cache.allocs"), 2u);  // both remote cached copies
  }

  // 2. Conflicting write: node 1 upgrades to write ownership, which must
  //    invalidate the other sharer's read copy.
  cluster.mark_stats_baseline("pre_invalidate");
  on_node(cluster, 1, [&] { arr.set(idx, 41); });
  {
    const obs::StatsSnapshot d = cluster.stats_delta_since("pre_invalidate");
    EXPECT_GE(d.value_or("runtime.invalidations"), 1u);
    EXPECT_GE(d.value_or("coherence.enter_pending_write"), 1u);
    EXPECT_GE(d.value_or("coherence.enter_write"), 1u);
  }

  // 3. Remote operate: node 2 applies a combinable op -> operated state.
  cluster.mark_stats_baseline("pre_operate");
  on_node(cluster, 2, [&] { arr.apply(idx, add, 1); });
  {
    const obs::StatsSnapshot d = cluster.stats_delta_since("pre_operate");
    EXPECT_GE(d.value_or("coherence.enter_operated"), 1u);
  }

  // 4. Read-back at the home: forces the combine buffer to flush and apply,
  //    and the directory to transition back through a read fill.
  cluster.mark_stats_baseline("pre_flush");
  on_node(cluster, 0, [&] { EXPECT_EQ(arr.get(idx), 42u); });
  {
    const obs::StatsSnapshot d = cluster.stats_delta_since("pre_flush");
    EXPECT_GE(d.value_or("runtime.combine_flushes"), 1u);
    EXPECT_GE(d.value_or("runtime.op_flushes_applied"), 1u);
  }

  // Whole-script view: per-state transition counters are cluster-wide sums of
  // per-dentry counts, so the total must cover each scripted phase.
  const obs::StatsSnapshot all = cluster.stats_delta_since("pre_script");
  EXPECT_GE(all.value_or("coherence.enter_pending_read"), 1u);
  EXPECT_GE(all.value_or("coherence.enter_read"), 1u);
  EXPECT_GE(all.value_or("coherence.enter_pending_write"), 1u);
  EXPECT_GE(all.value_or("coherence.enter_write"), 1u);
  EXPECT_GE(all.value_or("coherence.enter_operated"), 1u);
}

TEST(CoherenceMetrics, QuiescentClusterAddsNoTransitions) {
  rt::Cluster cluster(small_cfg(2));
  auto arr = DArray<uint64_t>::create(cluster, 256);
  (void)arr;
  cluster.mark_stats_baseline("idle");
  const obs::StatsSnapshot d = cluster.stats_delta_since("idle");
  for (const auto& e : d.entries) {
    if (e.name.rfind("coherence.", 0) == 0) {
      EXPECT_EQ(e.value, 0u) << e.name;
    }
  }
}
