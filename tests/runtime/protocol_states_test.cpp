// White-box validation of Table 1 / Fig. 9: after each access pattern, the
// per-node dentry permissions must match the protocol state the directory is
// supposed to be in. (Dentry states are the observable projection of the
// global state: Unshared → home kWrite/others kInvalid, Shared → readable
// everywhere, Dirty → owner kWrite/home kInvalid, Operated → kOperated.)
#include <gtest/gtest.h>

#include <thread>

#include "common/histogram.hpp"
#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray::rt {
namespace {

using darray::testing::small_cfg;

void add_u64(uint64_t& a, uint64_t v) { a += v; }

class ProtocolStates : public ::testing::Test {
 protected:
  ProtocolStates() : cluster(small_cfg(3)) {
    arr = darray::DArray<uint64_t>::create(cluster, 192);
    add = arr.register_op(&add_u64, 0);
  }

  DentryState state_at(NodeId n, ChunkId c = 0) {
    return cluster.node(n).array_state(arr.meta().id)->dentries[c].state.load(
        std::memory_order_acquire);
  }

  // Transitions triggered by our op may settle asynchronously on other nodes
  // (invalidations, flushes): wait for the expected state with a deadline.
  ::testing::AssertionResult eventually(NodeId n, DentryState want, ChunkId c = 0) {
    const uint64_t deadline = now_ns() + 5'000'000'000ull;
    while (now_ns() < deadline) {
      if (state_at(n, c) == want) return ::testing::AssertionSuccess();
      std::this_thread::yield();
    }
    return ::testing::AssertionFailure()
           << "node " << n << " state " << static_cast<int>(state_at(n, c)) << " != want "
           << static_cast<int>(want);
  }

  void on_node(NodeId n, const std::function<void()>& fn) {
    std::thread t([&, n] {
      darray::bind_thread(cluster, n);
      fn();
    });
    t.join();
  }

  rt::Cluster cluster;
  darray::DArray<uint64_t> arr;
  darray::OpHandle<uint64_t> add;
};

TEST_F(ProtocolStates, InitialUnshared) {
  // Chunk 0 is homed at node 0: home holds full permission, others nothing.
  EXPECT_EQ(state_at(0), DentryState::kWrite);
  EXPECT_EQ(state_at(1), DentryState::kInvalid);
  EXPECT_EQ(state_at(2), DentryState::kInvalid);
}

TEST_F(ProtocolStates, RemoteReadMakesShared) {
  on_node(1, [&] { (void)arr.get(0); });
  EXPECT_TRUE(eventually(0, DentryState::kRead));   // home degraded W → R
  EXPECT_TRUE(eventually(1, DentryState::kRead));   // requester fills as reader
  EXPECT_EQ(state_at(2), DentryState::kInvalid);
  on_node(2, [&] { (void)arr.get(0); });
  EXPECT_TRUE(eventually(2, DentryState::kRead));   // more sharers join
  EXPECT_TRUE(eventually(1, DentryState::kRead));   // existing sharers keep R
}

TEST_F(ProtocolStates, RemoteWriteMakesDirty) {
  on_node(1, [&] { arr.set(0, 1); });
  EXPECT_TRUE(eventually(1, DentryState::kWrite));    // exclusive owner
  EXPECT_TRUE(eventually(0, DentryState::kInvalid));  // home loses permission
  EXPECT_EQ(state_at(2), DentryState::kInvalid);
}

TEST_F(ProtocolStates, WriteInvalidatesSharers) {
  on_node(1, [&] { (void)arr.get(0); });
  on_node(2, [&] { (void)arr.get(0); });
  on_node(1, [&] { arr.set(0, 5); });  // upgrade: node 2 and home must drop
  EXPECT_TRUE(eventually(1, DentryState::kWrite));
  EXPECT_TRUE(eventually(0, DentryState::kInvalid));
  EXPECT_TRUE(eventually(2, DentryState::kInvalid));
}

TEST_F(ProtocolStates, OperateMakesAllParticipantsOperated) {
  on_node(1, [&] { arr.apply(0, add, 1); });
  EXPECT_TRUE(eventually(1, DentryState::kOperated));
  EXPECT_TRUE(eventually(0, DentryState::kOperated));  // home participates too
  on_node(2, [&] { arr.apply(0, add, 1); });
  EXPECT_TRUE(eventually(2, DentryState::kOperated));
  EXPECT_TRUE(eventually(1, DentryState::kOperated));  // non-exclusive: 1 keeps it
}

TEST_F(ProtocolStates, ReadFlushesOperatedToUnshared) {
  on_node(1, [&] { arr.apply(0, add, 7); });
  on_node(2, [&] { arr.apply(0, add, 8); });
  // Fig. 9: Operated → Unshared on a local read at home; afterwards a fresh
  // Shared forms for the reader.
  on_node(0, [&] { EXPECT_EQ(arr.get(0), 15u); });
  EXPECT_TRUE(eventually(0, DentryState::kWrite));     // back to Unshared at home
  EXPECT_TRUE(eventually(1, DentryState::kInvalid));   // participants dropped
  EXPECT_TRUE(eventually(2, DentryState::kInvalid));
}

TEST_F(ProtocolStates, DirtyReadFetchMakesShared) {
  on_node(1, [&] { arr.set(0, 9); });                 // Dirty at node 1
  on_node(2, [&] { EXPECT_EQ(arr.get(0), 9u); });     // remote read fetches
  EXPECT_TRUE(eventually(0, DentryState::kRead));     // home regains R
  EXPECT_TRUE(eventually(1, DentryState::kRead));     // old owner downgraded
  EXPECT_TRUE(eventually(2, DentryState::kRead));
}

TEST_F(ProtocolStates, DirtyToOperatedWritesBackFirst) {
  on_node(1, [&] { arr.set(0, 100); });
  on_node(2, [&] { arr.apply(0, add, 1); });  // forces 1's dirty data home
  EXPECT_TRUE(eventually(2, DentryState::kOperated));
  EXPECT_TRUE(eventually(0, DentryState::kOperated));
  EXPECT_TRUE(eventually(1, DentryState::kInvalid));  // old owner invalidated
  on_node(0, [&] { EXPECT_EQ(arr.get(0), 101u); });   // 100 written back + 1 op
}

TEST_F(ProtocolStates, OperatorSwitchRequiresFlush) {
  const auto mx = arr.register_op(
      +[](uint64_t& a, uint64_t v) {
        if (v > a) a = v;
      },
      0);
  on_node(1, [&] { arr.apply(0, add, 5); });
  on_node(2, [&] { arr.apply(0, mx, 3); });  // different op: flush round first
  EXPECT_TRUE(eventually(2, DentryState::kOperated));
  EXPECT_TRUE(eventually(1, DentryState::kInvalid));  // add participant flushed
  on_node(0, [&] { EXPECT_EQ(arr.get(0), 5u); });     // max(5, 3)
}

TEST_F(ProtocolStates, HomeWriteRecallsDirty) {
  on_node(1, [&] { arr.set(0, 3); });
  on_node(0, [&] { arr.set(0, 4); });  // local write: fetch-invalidate owner
  EXPECT_TRUE(eventually(0, DentryState::kWrite));
  EXPECT_TRUE(eventually(1, DentryState::kInvalid));
  on_node(2, [&] { EXPECT_EQ(arr.get(0), 4u); });
}

}  // namespace
}  // namespace darray::rt
