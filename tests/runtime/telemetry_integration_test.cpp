// End-to-end telemetry through a live Cluster: the sampler thread fills the
// TimeSeriesStore while traffic runs, the per-node stats plane shows up, and
// with telemetry_serve the embedded listener answers /metrics with content
// that matches the cluster's own snapshot families.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

rt::ClusterConfig telemetry_cfg(uint32_t nodes, bool serve = false) {
  rt::ClusterConfig cfg = testing::small_cfg(nodes);
  cfg.telemetry_enabled = true;
  cfg.telemetry_sample_ns = 1'000'000;  // the validation floor: fast tests
  cfg.telemetry_ring_samples = 64;
  cfg.telemetry_serve = serve;
  cfg.telemetry_port = 0;  // ephemeral
  return cfg;
}

std::string fetch_metrics(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req, sizeof(req) - 1, 0);
  std::string resp;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) resp.append(buf, static_cast<size_t>(n));
  ::close(fd);
  const size_t hdr = resp.find("\r\n\r\n");
  return hdr == std::string::npos ? std::string{} : resp.substr(hdr + 4);
}

TEST(TelemetryIntegration, DisabledByDefaultCostsNothing) {
  rt::Cluster cluster(testing::small_cfg(1));
  EXPECT_EQ(cluster.timeseries(), nullptr);
  EXPECT_EQ(cluster.telemetry_server(), nullptr);
  EXPECT_EQ(cluster.telemetry_port(), 0);
  EXPECT_EQ(cluster.stats().find("telemetry.samples"), nullptr);
}

TEST(TelemetryIntegration, SamplerFillsRingsWhileTrafficRuns) {
  rt::Cluster cluster(telemetry_cfg(2));
  ASSERT_NE(cluster.timeseries(), nullptr);
  auto arr = DArray<uint64_t>::create(cluster, 256);
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = 0; i < 256; ++i) arr.set(i, i + n);
  });
  // A few sample periods; the sampler's first point lands immediately.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.timeseries()->samples() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(cluster.timeseries()->samples(), 3u);

  // Counter families became rate series; per-node plane present for each node.
  std::vector<obs::SeriesPoint> pts;
  EXPECT_TRUE(cluster.timeseries()->read("fabric.sends", pts));
  ASSERT_GE(pts.size(), 3u);
  for (size_t i = 1; i < pts.size(); ++i) EXPECT_GT(pts[i].t_ns, pts[i - 1].t_ns);
  EXPECT_TRUE(cluster.timeseries()->read("node.0.ops", pts));
  EXPECT_TRUE(cluster.timeseries()->read("node.1.ops", pts));
  EXPECT_FALSE(cluster.timeseries()->read("node.2.ops", pts));  // only 2 nodes

  // The self-describing source: sample count visible in the stats plane.
  EXPECT_GT(cluster.stats().value_or("telemetry.samples"), 0u);
}

TEST(TelemetryIntegration, ServeExposesMetricsMatchingClusterStats) {
  rt::Cluster cluster(telemetry_cfg(2, /*serve=*/true));
  ASSERT_NE(cluster.telemetry_server(), nullptr);
  ASSERT_NE(cluster.telemetry_port(), 0);
  auto arr = DArray<uint64_t>::create(cluster, 256);
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = 0; i < 256; ++i) arr.set(i, i + n);
  });

  const std::string body = fetch_metrics(cluster.telemetry_port());
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("# TYPE darray_fabric_sends_total counter"), std::string::npos);
  EXPECT_NE(body.find("darray_node_remote_reqs_total{node=\"0\"}"), std::string::npos)
      << body.substr(0, 2000);
  EXPECT_NE(body.find("darray_runtime_remote_reqs_total"), std::string::npos);
  EXPECT_GT(cluster.telemetry_server()->requests(), 0u);
  // The request counter itself feeds back into the stats plane.
  EXPECT_GT(cluster.stats().value_or("telemetry.requests"), 0u);
}

// Teardown while the sampler and listener are mid-flight must join cleanly;
// run a short-lived cluster repeatedly to shake races out (TSan job).
TEST(TelemetryIntegration, RepeatedStartupShutdownIsClean) {
  for (int round = 0; round < 5; ++round) {
    rt::Cluster cluster(telemetry_cfg(1, /*serve=*/true));
    auto arr = DArray<uint64_t>::create(cluster, 64);
    bind_thread(cluster, 0);
    for (uint64_t i = 0; i < 64; ++i) arr.set(i, i);
  }
}

}  // namespace
}  // namespace darray
