#include "runtime/combine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace darray::rt {
namespace {

OpDesc add64_op() {
  OpDesc d;
  d.fn = [](void* acc, const void* operand) {
    *static_cast<uint64_t*>(acc) += *static_cast<const uint64_t*>(operand);
  };
  d.identity_bits = 0;
  d.elem_size = 8;
  return d;
}

OpDesc min_double_op() {
  OpDesc d;
  d.fn = [](void* acc, const void* operand) {
    double a, b;
    std::memcpy(&a, acc, 8);
    std::memcpy(&b, operand, 8);
    a = std::min(a, b);
    std::memcpy(acc, &a, 8);
  };
  double inf = std::numeric_limits<double>::infinity();
  std::memcpy(&d.identity_bits, &inf, 8);
  d.elem_size = 8;
  return d;
}

TEST(AtomicApply, Add64) {
  OpDesc op = add64_op();
  alignas(8) uint64_t v = 10;
  uint64_t operand = 32;
  atomic_apply(reinterpret_cast<std::byte*>(&v), op, &operand);
  EXPECT_EQ(v, 42u);
}

TEST(AtomicApply, Add32) {
  OpDesc op;
  op.fn = [](void* acc, const void* operand) {
    *static_cast<uint32_t*>(acc) += *static_cast<const uint32_t*>(operand);
  };
  op.elem_size = 4;
  alignas(4) uint32_t v = 1;
  uint32_t operand = 2;
  atomic_apply(reinterpret_cast<std::byte*>(&v), op, &operand);
  EXPECT_EQ(v, 3u);
}

TEST(AtomicApply, ConcurrentAddsAllLand) {
  OpDesc op = add64_op();
  alignas(8) uint64_t v = 0;
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      uint64_t one = 1;
      for (int i = 0; i < kPer; ++i)
        atomic_apply(reinterpret_cast<std::byte*>(&v), op, &one);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(v, static_cast<uint64_t>(kThreads) * kPer);
}

struct CombineFixture {
  static constexpr uint32_t kElems = 128;
  alignas(8) std::byte slots[kElems * 8];
  std::atomic<uint64_t> bitmap[(kElems + 63) / 64];
  CombineView view{slots, bitmap, kElems};
};

TEST(CombineBuffer, ResetSeedsIdentity) {
  CombineFixture f;
  OpDesc op = min_double_op();
  f.view.reset(op);
  for (uint32_t i = 0; i < CombineFixture::kElems; ++i) {
    double d;
    std::memcpy(&d, f.view.slot(i), 8);
    EXPECT_EQ(d, std::numeric_limits<double>::infinity());
    EXPECT_FALSE(f.view.touched(i));
  }
}

TEST(CombineBuffer, CombineMarksAndAccumulates) {
  CombineFixture f;
  OpDesc op = add64_op();
  f.view.reset(op);
  uint64_t five = 5, seven = 7;
  combine_into(f.view, 3, op, &five);
  combine_into(f.view, 3, op, &seven);
  EXPECT_TRUE(f.view.touched(3));
  EXPECT_FALSE(f.view.touched(2));
  uint64_t got;
  std::memcpy(&got, f.view.slot(3), 8);
  EXPECT_EQ(got, 12u);
}

TEST(CombineBuffer, MinCombines) {
  CombineFixture f;
  OpDesc op = min_double_op();
  f.view.reset(op);
  double a = 4.5, b = 2.25, c = 9.0;
  combine_into(f.view, 0, op, &a);
  combine_into(f.view, 0, op, &b);
  combine_into(f.view, 0, op, &c);
  double got;
  std::memcpy(&got, f.view.slot(0), 8);
  EXPECT_EQ(got, 2.25);
}

TEST(CombineBuffer, ConcurrentCombinesEquivalentToSum) {
  CombineFixture f;
  OpDesc op = add64_op();
  f.view.reset(op);
  constexpr int kThreads = 4;
  constexpr int kPer = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        uint64_t inc = 1;
        combine_into(f.view, static_cast<uint32_t>((t + i) % CombineFixture::kElems), op, &inc);
      }
    });
  for (auto& t : ts) t.join();
  uint64_t total = 0;
  for (uint32_t i = 0; i < CombineFixture::kElems; ++i) {
    uint64_t v;
    std::memcpy(&v, f.view.slot(i), 8);
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace darray::rt
