#include "runtime/lock_table.hpp"

#include <gtest/gtest.h>

namespace darray::rt {
namespace {

LockWaiter reader(NodeId n, uint32_t txn = 0) { return {n, false, txn, nullptr}; }
LockWaiter writer(NodeId n, uint32_t txn = 0) { return {n, true, txn, nullptr}; }

TEST(LockTable, ReadersShare) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 5, reader(0)));
  EXPECT_TRUE(t.acquire(0, 5, reader(1)));
  EXPECT_TRUE(t.acquire(0, 5, reader(2)));
}

TEST(LockTable, WriterExcludesWriter) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 5, writer(0)));
  EXPECT_FALSE(t.acquire(0, 5, writer(1)));
}

TEST(LockTable, WriterExcludesReader) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 5, writer(0)));
  EXPECT_FALSE(t.acquire(0, 5, reader(1)));
}

TEST(LockTable, ReaderExcludesWriter) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 5, reader(0)));
  EXPECT_FALSE(t.acquire(0, 5, writer(1)));
}

TEST(LockTable, DistinctIndicesIndependent) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 1, writer(0)));
  EXPECT_TRUE(t.acquire(0, 2, writer(1)));
  EXPECT_TRUE(t.acquire(1, 1, writer(2)));  // different array, same index
}

TEST(LockTable, ReleaseGrantsQueuedWriter) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 9, writer(0)));
  EXPECT_FALSE(t.acquire(0, 9, writer(1, 111)));
  std::deque<LockWaiter> grants;
  t.release(0, 9, 0, grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, 1u);
  EXPECT_EQ(grants[0].txn_id, 111u);
  // The grantee now holds it.
  EXPECT_FALSE(t.acquire(0, 9, reader(2)));
}

TEST(LockTable, ReleaseGrantsReaderBatch) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 9, writer(0)));
  EXPECT_FALSE(t.acquire(0, 9, reader(1)));
  EXPECT_FALSE(t.acquire(0, 9, reader(2)));
  EXPECT_FALSE(t.acquire(0, 9, writer(3)));
  std::deque<LockWaiter> grants;
  t.release(0, 9, 0, grants);
  ASSERT_EQ(grants.size(), 2u);  // both readers, but not the writer behind them
  EXPECT_FALSE(grants[0].write);
  EXPECT_FALSE(grants[1].write);
}

TEST(LockTable, WriterWaitsForAllReaders) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 9, reader(0)));
  EXPECT_TRUE(t.acquire(0, 9, reader(1)));
  EXPECT_FALSE(t.acquire(0, 9, writer(2)));
  std::deque<LockWaiter> grants;
  t.release(0, 9, 0, grants);
  EXPECT_TRUE(grants.empty()) << "writer granted while a reader still holds";
  t.release(0, 9, 1, grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].write);
}

TEST(LockTable, FifoPreventsReaderOvertake) {
  // A reader arriving after a queued writer must queue behind it.
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 9, reader(0)));
  EXPECT_FALSE(t.acquire(0, 9, writer(1)));
  EXPECT_FALSE(t.acquire(0, 9, reader(2)));
  std::deque<LockWaiter> grants;
  t.release(0, 9, 0, grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].write);
  grants.clear();
  t.release(0, 9, 1, grants);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_FALSE(grants[0].write);
}

TEST(LockTable, TableShrinksWhenFree) {
  LockTable t;
  EXPECT_TRUE(t.acquire(0, 9, writer(0)));
  EXPECT_EQ(t.size(), 1u);
  std::deque<LockWaiter> grants;
  t.release(0, 9, 0, grants);
  EXPECT_EQ(t.size(), 0u);
}

TEST(LockTable, ReacquireAfterFullRelease) {
  LockTable t;
  std::deque<LockWaiter> grants;
  EXPECT_TRUE(t.acquire(0, 9, writer(0)));
  t.release(0, 9, 0, grants);
  EXPECT_TRUE(t.acquire(0, 9, writer(1)));
}

}  // namespace
}  // namespace darray::rt
