// Runtime-level coverage for the large-message engine (docs/perf.md): with
// chunks bigger than rendezvous_threshold_bytes, engine chunk-data replies
// negotiate a rendezvous pull instead of an eager staged WRITE, and the
// net.rndz.* / fabric.bytes_rndz stats families account for it. Also pins the
// zero-length range contract (no chunks touched, no op recorded) and
// misaligned bulk extents straddling chunk boundaries while the transfers
// underneath go through the rendezvous path.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

// 16384 × 8-byte elements = 128 KiB per chunk: four times the default 32 KiB
// rendezvous threshold, so every remote chunk fill is a rendezvous pull.
rt::ClusterConfig big_chunk_cfg(uint32_t nodes) {
  rt::ClusterConfig cfg = small_cfg(nodes, /*chunk_elems=*/16384);
  EXPECT_TRUE(cfg.rendezvous_enabled);
  EXPECT_GE(cfg.chunk_elems * sizeof(uint64_t), cfg.rendezvous_threshold_bytes);
  return cfg;
}

TEST(DArrayRangeRendezvous, ZeroLengthRangeIsNoOp) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 256);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    a.set(10, 77);
  });
  const uint64_t ops_before = cluster.stats().value_or("node.0.ops");
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    // Empty spans at the start, middle, and one-past-the-end of the array:
    // all legal, none may touch a chunk or record an op.
    a.get_range(0, std::span<uint64_t>());
    a.get_range(a.size(), std::span<uint64_t>());
    a.set_range(128, std::span<const uint64_t>());
    a.set_range(a.size(), std::span<const uint64_t>());
  });
  EXPECT_EQ(cluster.stats().value_or("node.0.ops"), ops_before);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    EXPECT_EQ(a.get(10), 77u);  // the empty set_range wrote nothing
  });
}

// A remote get_range over big chunks makes the home node's chunk-data replies
// exceed the threshold: the transfer must arrive via rendezvous READ pulls,
// not eager staged WRITEs, and the cluster stats must say so.
TEST(DArrayRangeRendezvous, RemoteBulkFillGoesRendezvous) {
  rt::Cluster cluster(big_chunk_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 4 * 16384);  // 2 chunks per node
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    std::vector<uint64_t> in(2 * 16384);
    std::iota(in.begin(), in.end(), 1);
    a.set_range(0, std::span<const uint64_t>(in));  // home-local, no traffic
  });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    std::vector<uint64_t> out(2 * 16384, 0);
    a.get_range(0, std::span<uint64_t>(out));  // both chunks homed on node 0
    for (uint64_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i + 1) << i;
  });
  // The reader returns when the inner notification dispatches; the kRndzFin
  // that retires the sender's lease (and bumps completed/bytes) can still be
  // in flight, so poll until every negotiation resolves.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto resolved = [&] {
    const obs::StatsSnapshot s = cluster.stats();
    return s.value_or("net.rndz.started") > 0 &&
           s.value_or("net.rndz.completed") + s.value_or("net.rndz.fallbacks") ==
               s.value_or("net.rndz.started");
  };
  while (!resolved() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const obs::StatsSnapshot s = cluster.stats();
  const uint64_t started = s.value_or("net.rndz.started");
  EXPECT_GE(started, 2u);  // one negotiation per remote chunk fill
  EXPECT_EQ(s.value_or("net.rndz.completed") + s.value_or("net.rndz.fallbacks"),
            started);
  EXPECT_GE(s.value_or("net.rndz.bytes"), 2ull * 16384 * sizeof(uint64_t));
  EXPECT_GE(s.value_or("fabric.bytes_rndz"), 2ull * 16384 * sizeof(uint64_t));
  EXPECT_GE(s.value_or("fabric.rndz_transfers"), 2u);
}

// Misaligned extents straddling chunk boundaries, with every underlying
// chunk transfer large enough to ride the rendezvous path: data integrity
// must be bit-exact in both directions.
TEST(DArrayRangeRendezvous, MisalignedStraddleOverRendezvousChunks) {
  rt::Cluster cluster(big_chunk_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 4 * 16384);
  const uint64_t chunk = 16384;
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    // Starts mid-chunk 0 (homed on node 0), ends mid-chunk 2 (homed on
    // node 1): straddles two chunk boundaries and the ownership boundary.
    const uint64_t first = chunk - 37;
    std::vector<uint64_t> in(2 * chunk + 101);
    std::iota(in.begin(), in.end(), 9000);
    a.set_range(first, std::span<const uint64_t>(in));
    std::vector<uint64_t> out(in.size(), 0);
    a.get_range(first, std::span<uint64_t>(out));
    EXPECT_EQ(out, in);
    EXPECT_EQ(a.get(first - 1), 0u);
    EXPECT_EQ(a.get(first + in.size()), 0u);
  });
  // The other node re-reads the same extent through its own cold cache.
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    const uint64_t first = chunk - 37;
    std::vector<uint64_t> out(2 * chunk + 101, 0);
    a.get_range(first, std::span<uint64_t>(out));
    for (uint64_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], 9000 + i) << i;
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.stats().value_or("net.rndz.completed") == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(cluster.stats().value_or("net.rndz.completed"), 1u);
}

// With rendezvous disabled the same workload must produce identical data and
// zero net.rndz.* activity — the config switch really gates the protocol.
TEST(DArrayRangeRendezvous, DisabledConfigStaysEager) {
  rt::ClusterConfig cfg = big_chunk_cfg(2);
  cfg.rendezvous_enabled = false;
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 2 * 16384);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    std::vector<uint64_t> in(16384);
    std::iota(in.begin(), in.end(), 5);
    a.set_range(0, std::span<const uint64_t>(in));
  });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    std::vector<uint64_t> out(16384, 0);
    a.get_range(0, std::span<uint64_t>(out));
    for (uint64_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i + 5) << i;
  });
  const obs::StatsSnapshot s = cluster.stats();
  EXPECT_EQ(s.value_or("net.rndz.started"), 0u);
  EXPECT_EQ(s.value_or("fabric.rndz_transfers"), 0u);
}

}  // namespace
}  // namespace darray
