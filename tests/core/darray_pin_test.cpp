// The Pin optimization hint (§4.1): pinned chunks are accessed with zero
// atomics and their state cannot change until unpin.
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

void add_u64(uint64_t& acc, uint64_t v) { acc += v; }

TEST(DArrayPin, PinnedReadSweep) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/64));
  auto a = DArray<uint64_t>::create(cluster, 64 * 8);
  std::thread init([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = 0; i < a.size(); ++i) a.set(i, i * 2);
  });
  init.join();
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (uint64_t c = 0; c < 8; ++c) {
      const uint64_t base = c * 64;
      ASSERT_TRUE(a.pin(base, PinMode::kRead));
      for (uint64_t i = base; i < base + 64; ++i) ASSERT_EQ(a.get(i), i * 2);
      a.unpin(base);
    }
  });
  t.join();
}

TEST(DArrayPin, PinnedWriteSweep) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint64_t>::create(cluster, 64 * 4);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (uint64_t c = 0; c < 4; ++c) {
      const uint64_t base = c * 64;
      ASSERT_TRUE(a.pin(base, PinMode::kWrite));
      for (uint64_t i = base; i < base + 64; ++i) a.set(i, i + 9);
      a.unpin(base);
    }
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.get(i), i + 9);
  });
  check.join();
}

TEST(DArrayPin, PinnedOperate) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint64_t>::create(cluster, 64 * 2);
  const auto add = a.register_op(&add_u64, 0);
  std::thread t([&] {
    bind_thread(cluster, 1);
    ASSERT_TRUE(a.pin(0, PinMode::kOperate, add.id()));
    for (int i = 0; i < 100; ++i) a.apply(5, add, 1);
    a.unpin(0);
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(5), 100u);
  });
  check.join();
}

TEST(DArrayPin, PinBlocksEvictionUnderPressure) {
  // A pinned chunk must survive a cache sweep that evicts everything else.
  rt::ClusterConfig cfg = small_cfg(2, /*chunk_elems=*/16, /*cachelines=*/8);
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 16 * 64);
  std::thread init([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.set(i, i);
  });
  init.join();
  std::thread t([&] {
    bind_thread(cluster, 1);
    const uint64_t pinned_base = 0;
    ASSERT_TRUE(a.pin(pinned_base, PinMode::kRead));
    // Thrash the cache with the rest of node 0's half.
    for (uint64_t i = 16; i < a.local_end(0); ++i) ASSERT_EQ(a.get(i), i);
    // Pinned chunk still readable (and was never invalidated under us).
    for (uint64_t i = 0; i < 16; ++i) ASSERT_EQ(a.get(i), i);
    a.unpin(pinned_base);
  });
  t.join();
}

TEST(DArrayPin, RepinSameChunkIsIdempotent) {
  rt::Cluster cluster(small_cfg(1, 64));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  ASSERT_TRUE(a.pin(0, PinMode::kWrite));
  ASSERT_TRUE(a.pin(5, PinMode::kWrite));  // same chunk
  a.set(3, 33);
  EXPECT_EQ(a.get(3), 33u);
  a.unpin(0);
}

TEST(DArrayPin, PinSlotsExhaust) {
  rt::Cluster cluster(small_cfg(1, 16));
  auto a = DArray<uint64_t>::create(cluster, 16 * (kMaxPins + 2));
  bind_thread(cluster, 0);
  for (size_t i = 0; i < kMaxPins; ++i)
    ASSERT_TRUE(a.pin(i * 16, PinMode::kRead));
  EXPECT_FALSE(a.pin(kMaxPins * 16, PinMode::kRead));
  for (size_t i = 0; i < kMaxPins; ++i) a.unpin(i * 16);
  EXPECT_TRUE(a.pin(kMaxPins * 16, PinMode::kRead));
  a.unpin(kMaxPins * 16);
}

TEST(DArrayPin, HomePinnedWrite) {
  rt::Cluster cluster(small_cfg(2, 64));
  auto a = DArray<uint64_t>::create(cluster, 64 * 4);
  std::thread t([&] {
    bind_thread(cluster, 0);
    ASSERT_TRUE(a.pin(0, PinMode::kWrite));  // home chunk, Unshared
    for (uint64_t i = 0; i < 64; ++i) a.set(i, i * 7);
    a.unpin(0);
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 1);
    for (uint64_t i = 0; i < 64; ++i) ASSERT_EQ(a.get(i), i * 7);
  });
  check.join();
}

}  // namespace
}  // namespace darray
