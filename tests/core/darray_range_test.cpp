// get_range / set_range: span-based bulk accessors must agree with the
// per-element API across chunk boundaries and node partition boundaries.
#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <vector>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(DArrayRange, RoundTripWithinOneChunk) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  std::vector<uint64_t> in(16);
  std::iota(in.begin(), in.end(), 100);
  a.set_range(8, std::span<const uint64_t>(in));
  std::vector<uint64_t> out(16, 0);
  a.get_range(8, std::span<uint64_t>(out));
  EXPECT_EQ(out, in);
  for (uint64_t i = 0; i < in.size(); ++i) EXPECT_EQ(a.get(8 + i), in[i]);
}

TEST(DArrayRange, CrossesChunkBoundaries) {
  // small_cfg uses chunk_elems = 64: a range of 200 starting at 40 spans
  // four chunks (40..239).
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 512);
  bind_thread(cluster, 0);
  std::vector<uint64_t> in(200);
  std::iota(in.begin(), in.end(), 1);
  a.set_range(40, std::span<const uint64_t>(in));
  // Neighbours on both sides are untouched.
  EXPECT_EQ(a.get(39), 0u);
  EXPECT_EQ(a.get(240), 0u);
  std::vector<uint64_t> out(200, 0);
  a.get_range(40, std::span<uint64_t>(out));
  EXPECT_EQ(out, in);
  for (uint64_t i : {0ull, 23ull, 64ull, 127ull, 128ull, 199ull})
    EXPECT_EQ(a.get(40 + i), in[i]) << "element " << i;
}

TEST(DArrayRange, CrossesNodePartitionBoundary) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 1024);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    // Node 1's partition starts at local_begin(1); straddle it.
    const uint64_t boundary = a.local_begin(1);
    ASSERT_GT(boundary, 96u);
    std::vector<uint64_t> in(192);
    std::iota(in.begin(), in.end(), 7);
    a.set_range(boundary - 96, std::span<const uint64_t>(in));
    std::vector<uint64_t> out(192, 0);
    a.get_range(boundary - 96, std::span<uint64_t>(out));
    EXPECT_EQ(out, in);
  });
  // The writes are visible element-wise from the other node too.
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    const uint64_t boundary = a.local_begin(1);
    for (uint64_t i = 0; i < 192; ++i)
      EXPECT_EQ(a.get(boundary - 96 + i), 7 + i) << "element " << i;
  });
}

TEST(DArrayRange, EmptySpanIsANoOp) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  a.set(0, 5);
  a.set_range(0, std::span<const uint64_t>());
  std::span<uint64_t> empty;
  a.get_range(0, empty);
  EXPECT_EQ(a.get(0), 5u);
}

TEST(DArrayRange, ConcurrentDisjointRangesLandIntact) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 1024);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    // Each node writes the *other* node's half in 128-element strides.
    const uint64_t base = a.local_begin(1 - n);
    std::vector<uint64_t> in(128);
    for (uint64_t s = 0; s < 4; ++s) {
      std::iota(in.begin(), in.end(), base + s * 1000);
      a.set_range(base + s * 128, std::span<const uint64_t>(in));
    }
  });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    const uint64_t base = a.local_begin(n);  // written by the peer
    std::vector<uint64_t> out(128);
    for (uint64_t s = 0; s < 4; ++s) {
      a.get_range(base + s * 128, std::span<uint64_t>(out));
      for (uint64_t i = 0; i < 128; ++i)
        EXPECT_EQ(out[i], base + s * 1000 + i) << "stride " << s << " elt " << i;
    }
  });
}

}  // namespace
}  // namespace darray
