// Exercises the protocol state machine: Shared/Dirty transfers, invalidation,
// eviction + writeback under a deliberately tiny cache, and mixed sharing.
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

// Dirty ownership ping-pong: alternating writers force repeated fetches.
TEST(DArrayCoherence, WritePingPong) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  const uint64_t idx = 5;
  for (int round = 0; round < 20; ++round) {
    const rt::NodeId writer = round % 2;
    std::thread t([&, writer, round] {
      bind_thread(cluster, writer);
      EXPECT_EQ(a.get(idx), static_cast<uint64_t>(round));  // sees prior write
      a.set(idx, static_cast<uint64_t>(round + 1));
    });
    t.join();
  }
  std::thread t([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(idx), 20u);
  });
  t.join();
}

// Readers on all nodes share; a subsequent write invalidates them.
TEST(DArrayCoherence, WriteAfterSharedReaders) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 192);
  const uint64_t idx = 7;  // homed at node 0
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(idx), 0u); });
  std::thread w([&] {
    bind_thread(cluster, 2);
    a.set(idx, 31337);  // invalidates node 1's (and home's) read copies
  });
  w.join();
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(idx), 31337u); });
}

// A cache far smaller than the working set forces eviction + writeback; every
// written value must survive the round trip through the home node.
TEST(DArrayCoherence, EvictionWritebackPreservesData) {
  rt::ClusterConfig cfg = small_cfg(2, /*chunk_elems=*/16, /*cachelines=*/8);
  rt::Cluster cluster(cfg);
  // 64 chunks per node's half — node 1 can cache at most 8 at a time.
  auto a = DArray<uint64_t>::create(cluster, 16 * 128);
  std::thread t([&] {
    bind_thread(cluster, 1);
    // Write node 0's entire half remotely.
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.set(i, i * 11);
  });
  t.join();
  std::thread t2([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i)
      ASSERT_EQ(a.get(i), i * 11) << "lost update at " << i;
  });
  t2.join();
}

// Read-only eviction: repeated sweeps re-fetch silently dropped chunks.
TEST(DArrayCoherence, ReadEvictionRefetches) {
  rt::ClusterConfig cfg = small_cfg(2, 16, 8);
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 16 * 64);
  std::thread home([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.set(i, i + 1);
  });
  home.join();
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (int sweep = 0; sweep < 3; ++sweep)
      for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i)
        ASSERT_EQ(a.get(i), i + 1);
  });
  t.join();
}

// Concurrent readers on the same chunk from many threads (lock-free path).
TEST(DArrayCoherence, ConcurrentReadersSameChunk) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  std::thread init([&] {
    bind_thread(cluster, 0);
    a.set(3, 777);
  });
  init.join();
  testing::run_on_nodes_mt(cluster, 3, [&](rt::NodeId, uint32_t) {
    for (int i = 0; i < 200; ++i) ASSERT_EQ(a.get(3), 777u);
  });
}

// Interleaved writers on different elements of the same remote chunk
// (ownership bounces, but updates must all survive).
TEST(DArrayCoherence, InterleavedWritersSameChunkDifferentElems) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 192);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (int round = 0; round < 30; ++round) a.set(n, static_cast<uint64_t>(round * 3 + n));
  });
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (rt::NodeId n = 0; n < 3; ++n) EXPECT_EQ(a.get(n), 29u * 3 + n);
  });
}

// Home reading back a chunk that a remote node dirtied (fetch to Shared).
TEST(DArrayCoherence, HomeReadAfterRemoteWrite) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  std::thread w([&] {
    bind_thread(cluster, 1);
    a.set(0, 1001);
  });
  w.join();
  std::thread r([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(0), 1001u);
  });
  r.join();
  // Node 1's copy (downgraded to Shared) must still read correctly.
  std::thread r2([&] {
    bind_thread(cluster, 1);
    EXPECT_EQ(a.get(0), 1001u);
  });
  r2.join();
}

// Home writing a chunk a remote node dirtied (fetch to Invalid).
TEST(DArrayCoherence, HomeWriteAfterRemoteWrite) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  std::thread w([&] {
    bind_thread(cluster, 1);
    a.set(9, 55);
  });
  w.join();
  std::thread h([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(9), 55u);
    a.set(9, 56);
  });
  h.join();
  std::thread r([&] {
    bind_thread(cluster, 1);
    EXPECT_EQ(a.get(9), 56u);
  });
  r.join();
}

// Sequential-consistency smoke: message-passing pattern through two elements
// in different chunks, repeated; the flag must never be observed without the
// data.
TEST(DArrayCoherence, MessagePassingPattern) {
  rt::Cluster cluster(small_cfg(2, 16));
  auto a = DArray<uint64_t>::create(cluster, 256);
  const uint64_t data_idx = 1;        // chunk 0
  const uint64_t flag_idx = 17;       // chunk 1
  for (uint64_t round = 1; round <= 10; ++round) {
    std::thread producer([&] {
      bind_thread(cluster, 1);
      a.set(data_idx, round * 100);
      a.set(flag_idx, round);
    });
    std::thread consumer([&] {
      bind_thread(cluster, 0);
      while (a.get(flag_idx) < round) std::this_thread::yield();
      EXPECT_EQ(a.get(data_idx), round * 100);
    });
    producer.join();
    consumer.join();
  }
}

}  // namespace
}  // namespace darray
