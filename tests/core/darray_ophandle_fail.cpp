// Compile-fail probe: applying an OpHandle<uint64_t> to a DArray<double> must
// be rejected at compile time by the deleted cross-type apply overload. This
// file is NOT part of the default build; ctest builds it expecting failure
// (see tests/CMakeLists.txt, WILL_FAIL).
#include "core/darray.hpp"
#include "runtime/cluster.hpp"

int main() {
  darray::rt::ClusterConfig cfg;
  cfg.num_nodes = 1;
  darray::rt::Cluster cluster(cfg);
  auto ints = darray::DArray<uint64_t>::create(cluster, 64);
  auto doubles = darray::DArray<double>::create(cluster, 64);
  darray::bind_thread(cluster, 0);
  const darray::OpHandle<uint64_t> add =
      ints.register_op(+[](uint64_t& a, uint64_t v) { a += v; }, 0);
  doubles.apply(0, add, 1.0);  // must not compile: handle is typed to uint64_t
  return 0;
}
