// scoped_rlock / scoped_wlock / scoped_pin RAII guards: release on scope
// exit (including exception unwinds), move-only ownership transfer, and the
// typed OpHandle returned by register_op.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(DArrayGuard, WlockGuardReleasesOnScopeExit) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  {
    auto g = a.scoped_wlock(3);
    EXPECT_TRUE(g.held());
    EXPECT_EQ(g.index(), 3u);
  }
  // Released: re-acquiring immediately must not deadlock.
  a.wlock(3);
  a.unlock(3);
}

TEST(DArrayGuard, GuardReleasesWhenAnExceptionUnwinds) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  EXPECT_THROW(
      {
        auto g = a.scoped_wlock(5);
        a.set(5, 1);
        throw std::runtime_error("unwind through the guard");
      },
      std::runtime_error);
  // The unwind released the writer lock; a second writer gets it.
  auto g = a.scoped_wlock(5);
  EXPECT_TRUE(g.held());
}

TEST(DArrayGuard, EarlyUnlockIsIdempotent) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  auto g = a.scoped_rlock(1);
  g.unlock();
  EXPECT_FALSE(g.held());
  g.unlock();  // second unlock is a no-op, not a double release
  a.wlock(1);  // lock is actually free (readers would block a writer)
  a.unlock(1);
}

TEST(DArrayGuard, MoveTransfersOwnership) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  auto g1 = a.scoped_wlock(2);
  auto g2 = std::move(g1);
  EXPECT_FALSE(g1.held());  // NOLINT(bugprone-use-after-move): probing the moved-from state
  EXPECT_TRUE(g2.held());
  g2.unlock();
  // Move-assignment releases the destination's lock before stealing.
  auto ga = a.scoped_wlock(10);
  auto gb = a.scoped_wlock(11);
  ga = std::move(gb);
  EXPECT_EQ(ga.index(), 11u);
  a.wlock(10);  // 10 was released by the assignment
  a.unlock(10);
}

TEST(DArrayGuard, WlockGuardExcludesOtherNodes) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  constexpr int kPerNode = 40;
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < kPerNode; ++i) {
      auto g = a.scoped_wlock(2);
      a.set(2, a.get(2) + 1);
    }
  });
  bind_thread(cluster, 0);
  EXPECT_EQ(a.get(2), static_cast<uint64_t>(2 * kPerNode));
}

TEST(DArrayGuard, ScopedPinHoldsAndReleases) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  {
    auto p = a.scoped_pin(0, PinMode::kRead);
    ASSERT_TRUE(p);
    EXPECT_TRUE(p.pinned());
    (void)a.get(0);
  }
  // Released: pinning the same chunk again succeeds from a clean slate.
  auto p2 = a.scoped_pin(0, PinMode::kWrite);
  ASSERT_TRUE(p2);
  a.set(0, 9);
  p2.release();
  EXPECT_FALSE(p2.pinned());
  EXPECT_EQ(a.get(0), 9u);
}

TEST(DArrayOpHandle, TypedHandleAppliesAndExposesRawId) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  const OpHandle<uint64_t> add =
      a.register_op(+[](uint64_t& acc, uint64_t v) { acc += v; }, 0);
  a.apply(7, add, 5);
  // The implicit uint16_t shim is gone; raw-id interop is explicit via id().
  static_assert(!std::is_convertible_v<OpHandle<uint64_t>, uint16_t>,
                "OpHandle must not implicitly convert to a raw op id");
  a.apply(7, add.id(), 5);
  EXPECT_EQ(a.get(7), 10u);
}

}  // namespace
}  // namespace darray
