// get_range/set_range out-of-bounds extents return Status::kOutOfRange
// instead of aborting the process — the death-test-to-Status migration. The
// serve path forwards client-supplied extents into these calls, so a
// malformed request must surface as a typed error, never crash the cluster.
#include <gtest/gtest.h>

#include <vector>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(DArrayRangeStatus, OutOfBoundsReturnsTypedError) {
  rt::Cluster cluster(small_cfg(2));
  const uint64_t n = 256;
  auto a = DArray<uint64_t>::create(cluster, n);
  bind_thread(cluster, 0);

  std::vector<uint64_t> buf(16, 7);

  // Entirely past the end.
  EXPECT_EQ(a.get_range(n, std::span<uint64_t>(buf)), Status::kOutOfRange);
  EXPECT_EQ(a.set_range(n, std::span<const uint64_t>(buf)), Status::kOutOfRange);
  // Straddling the end.
  EXPECT_EQ(a.get_range(n - 8, std::span<uint64_t>(buf)), Status::kOutOfRange);
  EXPECT_EQ(a.set_range(n - 8, std::span<const uint64_t>(buf)), Status::kOutOfRange);
  // first + count overflow must not wrap around to "valid".
  EXPECT_EQ(a.get_range(~0ull - 4, std::span<uint64_t>(buf)), Status::kOutOfRange);
  // Span longer than the whole array.
  std::vector<uint64_t> big(n + 1);
  EXPECT_EQ(a.get_range(0, std::span<uint64_t>(big)), Status::kOutOfRange);

  // A failed set_range must not have written anything.
  for (uint64_t i = n - 16; i < n; ++i) EXPECT_EQ(a.get(i), 0u);
}

TEST(DArrayRangeStatus, ValidExtentsReturnOkAndRoundTrip) {
  rt::Cluster cluster(small_cfg(2));
  const uint64_t n = 256;
  auto a = DArray<uint64_t>::create(cluster, n);
  bind_thread(cluster, 0);

  std::vector<uint64_t> src(64);
  for (size_t i = 0; i < src.size(); ++i) src[i] = 1000 + i;
  ASSERT_EQ(a.set_range(100, std::span<const uint64_t>(src)), Status::kOk);

  std::vector<uint64_t> dst(64, 0);
  ASSERT_EQ(a.get_range(100, std::span<uint64_t>(dst)), Status::kOk);
  EXPECT_EQ(dst, src);

  // Boundary cases: the exact tail, and the empty range anywhere valid.
  std::vector<uint64_t> tail(16);
  EXPECT_EQ(a.get_range(n - 16, std::span<uint64_t>(tail)), Status::kOk);
  EXPECT_EQ(a.get_range(n, std::span<uint64_t>()), Status::kOk);
  EXPECT_EQ(a.set_range(0, std::span<const uint64_t>()), Status::kOk);
}

}  // namespace
}  // namespace darray
