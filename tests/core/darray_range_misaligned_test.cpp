// Regression tests for ranges deliberately misaligned with the chunk grid:
// extents that straddle a subarray-ownership boundary mid-range, range sizes
// with no relation to chunk_elems, and — the bug this file pins down — a
// range that straddles into a chunk the calling thread holds a pin on. The
// old bulk_op fast path trusted any pin unconditionally, so a set_range
// straddling into a read pin wrote into the Shared copy and the writes were
// silently lost; it now enforces the same permission contract as get()/set().
// Also covers the chunk-granular read-ahead hooks (prefetch_range /
// range_cached) the compute layer's overlap is built on.
#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DARRAY_TEST_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define DARRAY_TEST_TSAN 1
#endif

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

// Range sizes coprime to chunk_elems = 64, at offsets that put the chunk
// straddle mid-buffer, across a 3-node partition.
TEST(DArrayRangeMisaligned, OddSizesAcrossOwnershipBoundaries) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 1024);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 2) return;
    // 37 and 101 share no factor with 64; walk writes over both partition
    // boundaries from a node that owns neither.
    uint64_t base = 1;
    for (uint64_t first = 5; first + 101 < a.size(); first += 157) {
      std::vector<uint64_t> in(101);
      std::iota(in.begin(), in.end(), base);
      base += in.size();
      a.set_range(first, std::span<const uint64_t>(in));
      std::vector<uint64_t> out(in.size(), 0);
      a.get_range(first, std::span<uint64_t>(out));
      EXPECT_EQ(out, in) << "range at " << first;
    }
  });
  // Every element is visible from the other nodes too.
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    uint64_t base = 1;
    for (uint64_t first = 5; first + 101 < a.size(); first += 157) {
      for (uint64_t i = 0; i < 101; ++i)
        EXPECT_EQ(a.get(first + i), base + i) << "element " << first + i;
      base += 101;
    }
  });
}

// A range that starts mid-chunk inside one node's subarray and ends mid-chunk
// inside the next node's: the straddle point sits at neither a range nor a
// chunk boundary.
TEST(DArrayRangeMisaligned, StraddleOwnershipMidChunk) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 512);
  const uint64_t boundary = a.local_begin(1);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    std::vector<uint64_t> in(37);
    std::iota(in.begin(), in.end(), 1000);
    a.set_range(boundary - 13, std::span<const uint64_t>(in));  // 13 before, 24 after
    std::vector<uint64_t> out(in.size(), 0);
    a.get_range(boundary - 13, std::span<uint64_t>(out));
    EXPECT_EQ(out, in);
    EXPECT_EQ(a.get(boundary - 14), 0u);
    EXPECT_EQ(a.get(boundary + 24), 0u);
  });
}

// A write pin grants range writes through the fast path, and the data lands.
TEST(DArrayRangeMisaligned, SetRangeThroughWritePin) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 256);
  bind_thread(cluster, 0);
  ASSERT_TRUE(a.pin(64, PinMode::kWrite));
  std::vector<uint64_t> in(40);
  std::iota(in.begin(), in.end(), 7);
  a.set_range(100, std::span<const uint64_t>(in));  // 100..139: straddles 64..127|128..191
  a.unpin(64);
  for (uint64_t i = 0; i < in.size(); ++i) EXPECT_EQ(a.get(100 + i), in[i]);
}

// Writing through a read pin must trip the permission assert instead of
// silently updating the Shared copy (the data-loss regression).
TEST(DArrayRangeMisaligned, SetRangeThroughReadPinAsserts) {
#ifdef DARRAY_TEST_TSAN
  GTEST_SKIP() << "death tests fork; skipped under TSan";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 512);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    // Pin a chunk homed on node 1: the fetched copy is read-only (kRead).
    const uint64_t remote = a.local_begin(1);
    ASSERT_TRUE(a.pin(remote, PinMode::kRead));
    std::vector<uint64_t> v(8, 9);
    // The range starts inside the pinned chunk, so the assert fires before
    // any runtime round trip (death-test child has no helper threads).
    EXPECT_DEATH(a.set_range(remote + 4, std::span<const uint64_t>(v)),
                 "range write through a non-write pin");
    a.unpin(remote);
  });
#endif
}

TEST(DArrayRangeMisaligned, PrefetchRangeWarmsRemoteChunks) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 512);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    // The home node writes its own subarray, so node 1's copies stay cold.
    if (n != 0) return;
    for (uint64_t i = 0; i < a.local_begin(1); ++i) a.set(i, i * 3);
  });
  run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    // Home chunks are always "cached"; remote extents start cold.
    EXPECT_TRUE(a.range_cached(a.local_begin(1), 64));
    const uint64_t first = 5;   // node 0's subarray, misaligned extent
    const uint64_t count = 150;
    ASSERT_FALSE(a.range_cached(first, count));
    a.prefetch_range(first, count);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!a.range_cached(first, count) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(a.range_cached(first, count));
    std::vector<uint64_t> out(count, 0);
    a.get_range(first, std::span<uint64_t>(out));
    for (uint64_t i = 0; i < count; ++i) EXPECT_EQ(out[i], (first + i) * 3);
  });
}

}  // namespace
}  // namespace darray
