// Behavioural assertions via fabric statistics: the cache must absorb remote
// accesses (the paper's core motivation, §2) and the Operate path must
// combine locally rather than emit per-apply traffic (§4.3).
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

void add_u64(uint64_t& a, uint64_t v) { a += v; }

TEST(DArrayStats, LocalAccessesUseNoNetwork) {
  rt::Cluster cluster(small_cfg(2));
  auto arr = DArray<uint64_t>::create(cluster, 512);
  std::thread t([&] {
    bind_thread(cluster, 0);
    cluster.fabric().reset_stats();
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) arr.set(i, i);
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  EXPECT_EQ(cluster.fabric().stats().total_messages(), 0u);
}

TEST(DArrayStats, CacheAmortisesRemoteReads) {
  // Sweeping a remote range must cost O(chunks) messages, not O(elements).
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/64, /*cachelines=*/256));
  auto arr = DArray<uint64_t>::create(cluster, 64 * 32);
  std::thread t([&] {
    bind_thread(cluster, 1);
    cluster.fabric().reset_stats();
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  const uint64_t elems = arr.local_end(0) - arr.local_begin(0);
  const uint64_t chunks = elems / 64;
  const rdma::FabricStats s = cluster.fabric().stats();
  // Each fill = 1 request SEND + 1 data WRITE + 1 notify SEND (plus a few
  // prefetch fills); far below one message per element.
  EXPECT_LE(s.total_messages(), 4 * chunks);
  EXPECT_GE(s.writes, chunks);  // data moved one-sidedly, once per chunk
  EXPECT_LT(s.total_messages(), elems / 4);
}

TEST(DArrayStats, SecondSweepIsFreeWhenCacheFits) {
  rt::Cluster cluster(small_cfg(2, 64, 256));
  auto arr = DArray<uint64_t>::create(cluster, 64 * 16);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
    cluster.fabric().reset_stats();
    for (int sweep = 0; sweep < 3; ++sweep)
      for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) (void)arr.get(i);
  });
  t.join();
  EXPECT_EQ(cluster.fabric().stats().total_messages(), 0u)
      << "cached chunks must be re-read without any network traffic";
}

TEST(DArrayStats, OperateCombinesLocally) {
  // 10k applies to one remote chunk must produce a handful of messages
  // (join + flush), not 10k.
  rt::Cluster cluster(small_cfg(2, 64));
  auto arr = DArray<uint64_t>::create(cluster, 256);
  const auto add = arr.register_op(&add_u64, 0);
  std::thread t([&] {
    bind_thread(cluster, 1);
    cluster.fabric().reset_stats();
    for (int k = 0; k < 10000; ++k) arr.apply(3, add, 1);
  });
  t.join();
  EXPECT_LE(cluster.fabric().stats().total_messages(), 8u);
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(arr.get(3), 10000u);
  });
  check.join();
}

TEST(DArrayStats, WritebackHappensOncePerEvictedChunk) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/16, /*cachelines=*/8));
  auto arr = DArray<uint64_t>::create(cluster, 16 * 64);
  std::thread t([&] {
    bind_thread(cluster, 1);
    cluster.fabric().reset_stats();
    for (uint64_t i = arr.local_begin(0); i < arr.local_end(0); ++i) arr.set(i, i);
  });
  t.join();
  const uint64_t chunks = (arr.local_end(0) - arr.local_begin(0)) / 16;
  const rdma::FabricStats s = cluster.fabric().stats();
  // Every chunk is fetched once (WRITE to the requester) and most are
  // written back once (WRITE to home); allow slack for timing, but the total
  // must stay linear in chunks with a small constant.
  EXPECT_LE(s.writes, 3 * chunks);
  EXPECT_LE(s.total_messages(), 8 * chunks);
}

TEST(DArrayStats, PinDoesNotAddTraffic) {
  rt::Cluster cluster(small_cfg(2, 64, 256));
  auto arr = DArray<uint64_t>::create(cluster, 64 * 8);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (uint64_t c = 0; c < 8; ++c) {
      arr.pin(c * 64, PinMode::kRead);
      for (uint64_t i = c * 64; i < (c + 1) * 64; ++i) (void)arr.get(i);
      arr.unpin(c * 64);
    }
    cluster.fabric().reset_stats();
    // Re-sweep pinned: everything cached, zero traffic.
    for (uint64_t c = 0; c < 8; ++c) {
      arr.pin(c * 64, PinMode::kRead);
      for (uint64_t i = c * 64; i < (c + 1) * 64; ++i) (void)arr.get(i);
      arr.unpin(c * 64);
    }
  });
  t.join();
  EXPECT_EQ(cluster.fabric().stats().total_messages(), 0u);
}

}  // namespace
}  // namespace darray
