// Multiple runtime threads per node: chunks are sharded across engines
// (chunk % R), each with its own cache region and protocol state.
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

rt::ClusterConfig multi_rt_cfg(uint32_t nodes, uint32_t rts) {
  rt::ClusterConfig cfg = testing::small_cfg(nodes, /*chunk_elems=*/16, /*cachelines=*/32);
  cfg.runtime_threads_per_node = rts;
  return cfg;
}

void add_u64(uint64_t& a, uint64_t v) { a += v; }

TEST(DArrayMultiRt, SweepAcrossChunksAndNodes) {
  rt::Cluster cluster(multi_rt_cfg(2, 2));
  auto a = DArray<uint64_t>::create(cluster, 16 * 16);
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = a.local_begin(n); i < a.local_end(n); ++i) a.set(i, i * 5);
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId) {
    for (uint64_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.get(i), i * 5);
  });
}

TEST(DArrayMultiRt, OperateAcrossEngineShards) {
  rt::Cluster cluster(multi_rt_cfg(3, 2));
  auto a = DArray<uint64_t>::create(cluster, 16 * 12);
  const auto add = a.register_op(&add_u64, 0);
  testing::run_on_nodes(cluster, [&](rt::NodeId) {
    // Touch both even and odd chunks (different runtime threads).
    for (uint64_t i = 0; i < a.size(); i += 7) a.apply(i, add, 1);
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 1) return;
    for (uint64_t i = 0; i < a.size(); i += 7) ASSERT_EQ(a.get(i), 3u);
  });
}

TEST(DArrayMultiRt, LocksRouteToOwningEngine) {
  rt::Cluster cluster(multi_rt_cfg(2, 3));
  auto a = DArray<uint64_t>::create(cluster, 16 * 9);
  constexpr int kPerNode = 30;
  testing::run_on_nodes(cluster, [&](rt::NodeId) {
    for (int k = 0; k < kPerNode; ++k) {
      const uint64_t idx = static_cast<uint64_t>(k % 5) * 16;  // spans engines
      a.wlock(idx);
      a.set(idx, a.get(idx) + 1);
      a.unlock(idx);
    }
  });
  testing::run_on_nodes(cluster, [&](rt::NodeId n) {
    if (n != 0) return;
    uint64_t total = 0;
    for (int k = 0; k < 5; ++k) total += a.get(static_cast<uint64_t>(k) * 16);
    EXPECT_EQ(total, 2u * kPerNode);
  });
}

TEST(DArrayMultiRt, EvictionPerRegion) {
  // Each runtime thread has its own small region; a sweep larger than the
  // combined capacity forces both engines to evict independently.
  rt::ClusterConfig cfg = multi_rt_cfg(2, 2);
  cfg.cachelines_per_region = 4;
  rt::Cluster cluster(cfg);
  auto a = DArray<uint64_t>::create(cluster, 16 * 64);
  std::thread t([&] {
    bind_thread(cluster, 1);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i) a.set(i, i + 3);
  });
  t.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = a.local_begin(0); i < a.local_end(0); ++i)
      ASSERT_EQ(a.get(i), i + 3);
  });
  check.join();
}

}  // namespace
}  // namespace darray
