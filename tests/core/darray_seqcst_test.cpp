// Sequential-consistency litmus tests (§4.4 claims SC: no buffered/reordered
// reads or writes, Operate visible to subsequent reads with happens-before).
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::small_cfg;

// Store buffering (SB): under SC, (r1, r2) == (0, 0) is forbidden.
//   node0: x = 1; r1 = y        node1: y = 1; r2 = x
TEST(DArraySeqCst, StoreBufferingForbidden) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/16));
  // x and y in different chunks homed on different nodes.
  auto a = DArray<uint64_t>::create(cluster, 64);
  const uint64_t x = 0, y = 40;
  for (int round = 0; round < 30; ++round) {
    uint64_t r1 = 99, r2 = 99;
    std::thread t0([&] {
      bind_thread(cluster, 0);
      a.set(x, 1);
      r1 = a.get(y);
    });
    std::thread t1([&] {
      bind_thread(cluster, 1);
      a.set(y, 1);
      r2 = a.get(x);
    });
    t0.join();
    t1.join();
    EXPECT_FALSE(r1 == 0 && r2 == 0) << "SB violation in round " << round;
    std::thread reset([&] {
      bind_thread(cluster, 0);
      a.set(x, 0);
      a.set(y, 0);
    });
    reset.join();
  }
}

// Peterson's algorithm needs sequential consistency to provide mutual
// exclusion; lost increments would reveal reordering.
TEST(DArraySeqCst, PetersonMutualExclusion) {
  rt::Cluster cluster(small_cfg(2, /*chunk_elems=*/16));
  auto a = DArray<uint64_t>::create(cluster, 64);
  // flag[0]=idx0, flag[1]=idx16 (different chunks), turn=idx32, counter=idx48.
  const uint64_t flag0 = 0, flag1 = 16, turn = 32, counter = 48;
  constexpr int kIters = 15;

  auto worker = [&](rt::NodeId me) {
    bind_thread(cluster, me);
    const uint64_t my_flag = me == 0 ? flag0 : flag1;
    const uint64_t other_flag = me == 0 ? flag1 : flag0;
    const uint64_t other = 1 - me;
    for (int i = 0; i < kIters; ++i) {
      a.set(my_flag, 1);
      a.set(turn, other);
      while (a.get(other_flag) == 1 && a.get(turn) == other) {
      }
      // Critical section: unprotected read-modify-write.
      a.set(counter, a.get(counter) + 1);
      a.set(my_flag, 0);
    }
  };
  std::thread t0(worker, 0), t1(worker, 1);
  t0.join();
  t1.join();
  std::thread check([&] {
    bind_thread(cluster, 0);
    EXPECT_EQ(a.get(counter), 2u * kIters);
  });
  check.join();
}

// Operate visibility: everything applied before a read must be included
// (happens-before through the flush-all), per §4.4.
TEST(DArraySeqCst, OperateVisibleToSubsequentReads) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 64);
  const auto add = a.register_op(+[](uint64_t& x, uint64_t v) { x += v; }, 0);
  for (int round = 1; round <= 10; ++round) {
    testing::run_on_nodes(cluster, [&](rt::NodeId) { a.apply(1, add, 1); });
    // All applies joined (threads joined above): any node's read sees them.
    std::thread check([&] {
      bind_thread(cluster, (round % 3));
      EXPECT_EQ(a.get(1), static_cast<uint64_t>(3 * round));
    });
    check.join();
  }
}

}  // namespace
}  // namespace darray
