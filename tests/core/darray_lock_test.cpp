// Distributed reader/writer locks (Fig. 3 concurrency control).
#include <gtest/gtest.h>

#include <thread>

#include "core/darray.hpp"
#include "tests/test_util.hpp"

namespace darray {
namespace {

using testing::run_on_nodes;
using testing::small_cfg;

TEST(DArrayLock, LocalLockRoundTrip) {
  rt::Cluster cluster(small_cfg(1));
  auto a = DArray<uint64_t>::create(cluster, 64);
  bind_thread(cluster, 0);
  a.wlock(3);
  a.unlock(3);
  a.rlock(3);
  a.rlock(3);  // readers share, even from the same thread
  a.unlock(3);
  a.unlock(3);
}

TEST(DArrayLock, RemoteLockRoundTrip) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 128);
  std::thread t([&] {
    bind_thread(cluster, 1);
    a.wlock(0);  // element homed at node 0
    a.unlock(0);
  });
  t.join();
}

// The classic mutual-exclusion test: unprotected read-modify-write would lose
// updates; under wlock it must not.
TEST(DArrayLock, WlockProtectsReadModifyWrite) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 192);
  constexpr int kPerNode = 60;
  const uint64_t idx = 2;
  run_on_nodes(cluster, [&](rt::NodeId) {
    for (int i = 0; i < kPerNode; ++i) {
      a.wlock(idx);
      a.set(idx, a.get(idx) + 1);
      a.unlock(idx);
    }
  });
  run_on_nodes(cluster, [&](rt::NodeId) { EXPECT_EQ(a.get(idx), 3u * kPerNode); });
}

TEST(DArrayLock, WriterBlocksUntilReaderReleases) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  std::atomic<bool> writer_acquired{false};
  std::atomic<bool> reader_released{false};

  std::thread reader([&] {
    bind_thread(cluster, 0);
    a.rlock(1);
    // Give the writer a chance to (incorrectly) slip through.
    for (int i = 0; i < 50 && !writer_acquired.load(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(writer_acquired.load()) << "writer acquired while reader held";
    reader_released.store(true);
    a.unlock(1);
  });
  std::thread writer([&] {
    bind_thread(cluster, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    a.wlock(1);
    writer_acquired.store(true);
    EXPECT_TRUE(reader_released.load());
    a.unlock(1);
  });
  reader.join();
  writer.join();
  EXPECT_TRUE(writer_acquired.load());
}

TEST(DArrayLock, ManyElementsManyNodes) {
  rt::Cluster cluster(small_cfg(3));
  auto a = DArray<uint64_t>::create(cluster, 192);
  run_on_nodes(cluster, [&](rt::NodeId n) {
    for (uint64_t i = 0; i < 30; ++i) {
      const uint64_t idx = (i * 7 + n) % a.size();
      a.wlock(idx);
      a.set(idx, a.get(idx) + 1);
      a.unlock(idx);
    }
  });
  uint64_t total = 0;
  std::thread sum([&] {
    bind_thread(cluster, 0);
    for (uint64_t i = 0; i < a.size(); ++i) total += a.get(i);
  });
  sum.join();
  EXPECT_EQ(total, 3u * 30);
}

TEST(DArrayLock, ReadersDontExcludeEachOtherAcrossNodes) {
  rt::Cluster cluster(small_cfg(2));
  auto a = DArray<uint64_t>::create(cluster, 64);
  std::atomic<int> holding{0};
  std::atomic<int> max_seen{0};
  run_on_nodes(cluster, [&](rt::NodeId) {
    a.rlock(0);
    const int now = holding.fetch_add(1) + 1;
    int prev = max_seen.load();
    while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    holding.fetch_sub(1);
    a.unlock(0);
  });
  EXPECT_EQ(max_seen.load(), 2) << "both readers should have held concurrently";
}

}  // namespace
}  // namespace darray
